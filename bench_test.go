// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus real-fabric microbenchmarks and
// the ablations called out in DESIGN.md §4. The modeled experiments
// report paper-shape metrics through b.ReportMetric; the real-fabric
// benchmarks measure this host.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/fsmon"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/testbed"
	"repro/internal/trigger"
	"repro/internal/wfmon"
	"repro/internal/wire"
)

// --- Table I: use-case workloads on the real fabric ---

// BenchmarkTable1UseCases drives each use case's event profile (size,
// rate shape) through the real fabric and reports events/s.
func BenchmarkTable1UseCases(b *testing.B) {
	cases := []struct {
		name string
		size int
	}{
		{"SDL_512B", 512},
		{"DataAuto_4KB", 4096},
		{"Scheduling_1KB", 1024},
		{"Epidemic_1KB", 1024},
		{"Workflow_1KB", 1024},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			f := newBenchFabric(b, 2, 2)
			payload := make([]byte, c.size)
			batch := []event.Event{{Value: payload}}
			b.SetBytes(int64(c.size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// --- Table III ---

// BenchmarkTable3Model regenerates every Table III cell from the
// calibrated model and reports the headline cells as metrics.
func BenchmarkTable3Model(b *testing.B) {
	var rows []testbed.Table3Row
	for i := 0; i < b.N; i++ {
		rows = testbed.RunTable3()
	}
	b.ReportMetric(rows[0].ProdThru, "exp1_local_prod_ev/s")
	b.ReportMetric(rows[0].ConsThru, "exp1_local_cons_ev/s")
	b.ReportMetric(rows[2].ProdThru, "exp2_local_prod_ev/s")
}

// BenchmarkTable3RealAcks runs the acks sweep of experiments 2-4 on the
// real in-process fabric at this host's scale (absolute numbers are the
// host's; the ordering is the paper's).
func BenchmarkTable3RealAcks(b *testing.B) {
	for _, acks := range []broker.Acks{broker.AcksNone, broker.AcksLeader, broker.AcksAll} {
		b.Run("acks="+acks.String(), func(b *testing.B) {
			f := newBenchFabric(b, 2, 2)
			payload := make([]byte, 1024)
			batch := make([]event.Event, 64)
			for i := range batch {
				batch[i] = event.Event{Value: payload}
			}
			b.SetBytes(int64(64 * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Produce("", "bench", -1, batch, acks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkTable3RealReadVsWrite measures the consumer/producer
// throughput ratio on the real fabric (paper: reads ≈ 2x writes).
func BenchmarkTable3RealReadVsWrite(b *testing.B) {
	b.Run("produce", func(b *testing.B) {
		f := newBenchFabric(b, 2, 2)
		batch := oneKBBatch(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Produce("", "bench", -1, batch, broker.AcksNone); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("consume", func(b *testing.B) {
		f := newBenchFabric(b, 2, 2)
		batch := oneKBBatch(64)
		for i := 0; i < 256; i++ {
			if _, err := f.Produce("", "bench", -1, batch, broker.AcksNone); err != nil {
				b.Fatal(err)
			}
		}
		end0, _ := f.EndOffset("bench", 0)
		end1, _ := f.EndOffset("bench", 1)
		b.ResetTimer()
		consumed := 0
		for i := 0; i < b.N; i++ {
			var off0, off1 int64
			for off0 < end0 || off1 < end1 {
				r0, err := f.Fetch("", "bench", 0, off0, 1024, 0)
				if err != nil {
					b.Fatal(err)
				}
				off0 = r0.HighWatermark
				consumed += len(r0.Events)
				r1, err := f.Fetch("", "bench", 1, off1, 1024, 0)
				if err != nil {
					b.Fatal(err)
				}
				off1 = r1.HighWatermark
				consumed += len(r1.Events)
			}
		}
		b.ReportMetric(float64(consumed)/b.Elapsed().Seconds(), "events/s")
	})
}

// --- Figure 3 ---

// BenchmarkFigure3Sweep regenerates the producer sweeps and reports the
// saturation point of the 1 KB acks=0 series.
func BenchmarkFigure3Sweep(b *testing.B) {
	var series []testbed.Fig3Series
	for i := 0; i < b.N; i++ {
		series = testbed.RunFigure3()
	}
	s := series[1] // Exp 2: 1 KB acks=0
	b.ReportMetric(s.Points[len(s.Points)-1].Throughput, "peak_ev/s")
	b.ReportMetric(s.Points[len(s.Points)-1].MedianMs, "sat_median_ms")
}

// --- Figure 4 ---

// BenchmarkFigure4TriggerScaling runs the full 5120-task autoscaling
// simulation per iteration (23 virtual minutes in ~ms of real time).
func BenchmarkFigure4TriggerScaling(b *testing.B) {
	var res testbed.Fig4Result
	for i := 0; i < b.N; i++ {
		res = testbed.RunFigure4(testbed.DefaultFig4Config())
	}
	b.ReportMetric(res.TimeToMaxConc.Seconds(), "s_to_max_conc")
	b.ReportMetric(res.Completed.Seconds(), "s_to_complete")
	b.ReportMetric(float64(res.PeakConcurrency), "peak_concurrency")
}

// BenchmarkTriggerRealThroughput measures the live trigger runtime
// (pattern filter + batch + commit) on the real fabric, the §V-D
// counterpart.
func BenchmarkTriggerRealThroughput(b *testing.B) {
	for _, parts := range []int{1, 8} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			f := newBenchFabricTopic(b, 2, parts, "trig")
			var delivered sync.WaitGroup
			tr, err := trigger.New(f, trigger.Config{
				ID: "bench", Topic: "trig", BatchSize: 1000,
				BatchWindow: 100 * time.Microsecond, MaxConcurrency: parts,
				MinConcurrency: parts,
			}, func(inv *trigger.Invocation) error {
				delivered.Add(-len(inv.Events))
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			tr.Start()
			defer tr.Stop()
			batch := oneKBBatch(100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delivered.Add(100)
				if _, err := f.Produce("", "trig", -1, batch, broker.AcksLeader); err != nil {
					b.Fatal(err)
				}
			}
			delivered.Wait()
			b.ReportMetric(float64(b.N*100)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// --- Figure 5 ---

// BenchmarkFigure5Tenancy regenerates the multi-tenancy sweep.
func BenchmarkFigure5Tenancy(b *testing.B) {
	var pts []testbed.Fig5Point
	for i := 0; i < b.N; i++ {
		pts = testbed.RunFigure5()
	}
	b.ReportMetric(pts[2].ProdThru, "prod_at_4_topics_ev/s")
	b.ReportMetric(pts[4].ConsThru, "cons_at_16_topics_ev/s")
}

// --- Figure 7 ---

// BenchmarkFigure7DataAutomation runs the hierarchical FS pipeline
// simulation per iteration.
func BenchmarkFigure7DataAutomation(b *testing.B) {
	var res testbed.Fig7Result
	for i := 0; i < b.N; i++ {
		res = testbed.RunFigure7(testbed.DefaultFig7Config())
	}
	b.ReportMetric(res.Reduction, "aggregation_reduction_x")
	b.ReportMetric(float64(res.Transfers), "transfers")
}

// --- Figure 8 ---

// BenchmarkFigure8Workflow computes the full HTEX-vs-Octopus grid per
// iteration and reports the 64-worker sleep10ms cells.
func BenchmarkFigure8Workflow(b *testing.B) {
	var cells []testbed.Fig8Cell
	for i := 0; i < b.N; i++ {
		cells = testbed.RunFigure8()
	}
	for _, c := range cells {
		if c.Workers == 64 && c.Duration == 10*time.Millisecond {
			switch c.System {
			case "HTEX":
				b.ReportMetric(c.Overhead, "htex_ms_per_event")
			case "Octopus":
				b.ReportMetric(c.Overhead, "octopus_ms_per_event")
			}
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationProducerBatching compares per-event produce against
// SDK batching, the throughput-vs-latency trade §VI-E leans on.
func BenchmarkAblationProducerBatching(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			f := newBenchFabric(b, 2, 2)
			evs := oneKBBatch(batch)
			b.SetBytes(int64(batch * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Produce("", "bench", -1, evs, broker.AcksLeader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkAblationFetchBytesBudget varies the consumer receive budget
// (the paper tunes receive.buffer.bytes to 2 MB).
func BenchmarkAblationFetchBytesBudget(b *testing.B) {
	for _, budget := range []int{64 << 10, 2 << 20} {
		b.Run(fmt.Sprintf("budget=%dKB", budget>>10), func(b *testing.B) {
			f := newBenchFabric(b, 2, 1)
			evs := oneKBBatch(256)
			for i := 0; i < 16; i++ {
				if _, err := f.Produce("", "bench", 0, evs, broker.AcksNone); err != nil {
					b.Fatal(err)
				}
			}
			end, _ := f.EndOffset("bench", 0)
			b.ResetTimer()
			consumed := 0
			for i := 0; i < b.N; i++ {
				var off int64
				for off < end {
					res, err := f.Fetch("", "bench", 0, off, 1<<20, budget)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Events) == 0 {
						break
					}
					off = res.Events[len(res.Events)-1].Offset + 1
					consumed += len(res.Events)
				}
			}
			b.ReportMetric(float64(consumed)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkAblationAggregation compares trigger load with and without
// the hierarchical aggregator (§VII-C's cost mitigation).
func BenchmarkAblationAggregation(b *testing.B) {
	gen := fsmon.NewGenerator(fsmon.GeneratorConfig{FilesPerBurst: 16, ModifiesPerFile: 16})
	bursts := make([][]fsmon.FSEvent, 64)
	t0 := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := range bursts {
		bursts[i] = gen.Burst(t0.Add(time.Duration(i) * time.Second))
	}
	b.Run("without-aggregator", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			for _, burst := range bursts {
				n += len(burst) // every raw event reaches the cloud
			}
		}
		b.ReportMetric(float64(n)/float64(b.N), "cloud_events_per_run")
	})
	b.Run("with-aggregator", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			agg := fsmon.NewAggregator(time.Hour)
			for _, burst := range bursts {
				n += len(agg.Filter(burst))
			}
		}
		b.ReportMetric(float64(n)/float64(b.N), "cloud_events_per_run")
	})
}

// BenchmarkAblationPatternAtFabricVsConsumer compares filtering inside
// the trigger runtime against shipping everything to a consumer.
func BenchmarkAblationPatternAtFabricVsConsumer(b *testing.B) {
	pat := pattern.MustCompile(`{"value": {"event_type": ["created"]}}`)
	docs := make([][]byte, 1000)
	for i := range docs {
		kind := "modified"
		if i%10 == 0 {
			kind = "created"
		}
		docs[i] = event.New("", map[string]any{"value": map[string]any{"event_type": kind}}).Value
	}
	b.Run("filter-at-fabric", func(b *testing.B) {
		matched := 0
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				if pat.MatchJSON(d) {
					matched++ // only matches would be delivered
				}
			}
		}
		b.ReportMetric(float64(matched)/float64(b.N), "delivered_per_run")
	})
	b.Run("filter-at-consumer", func(b *testing.B) {
		delivered := 0
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				delivered++ // every event crosses the network first
				_ = pat.MatchJSON(d)
			}
		}
		b.ReportMetric(float64(delivered)/float64(b.N), "delivered_per_run")
	})
}

// BenchmarkAblationTriggerBatchSize sweeps the Figure-4 simulation's
// batch size, showing why batch=1 needs 128 concurrent functions.
func BenchmarkAblationTriggerBatchSize(b *testing.B) {
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var conc int
			for i := 0; i < b.N; i++ {
				conc = trigger.NextConcurrency(3, 5000, batch, 128, 1, 128, 3.5)
			}
			b.ReportMetric(float64(conc), "first_step_concurrency")
		})
	}
}

// --- Core microbenchmarks ---

func BenchmarkEventMarshal(b *testing.B) {
	ev := event.Event{
		Key:     []byte("instrument-7"),
		Value:   make([]byte, 1024),
		Headers: map[string]string{"experiment": "e-12"},
	}
	b.SetBytes(int64(ev.Size()))
	for i := 0; i < b.N; i++ {
		buf := ev.Marshal()
		if _, _, err := event.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternMatch(b *testing.B) {
	pat := pattern.MustCompile(`{"value": {"event_type": ["created"], "size": [{"numeric": [">", 0]}]}}`)
	doc := []byte(`{"value": {"event_type": "created", "size": 4096, "path": "/data/x.tif"}}`)
	for i := 0; i < b.N; i++ {
		if !pat.MatchJSON(doc) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic("w", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(f)
	srv.AllowAnonymous = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.DialAnonymous(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	batch := oneKBBatch(64)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Produce("", "w", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSDKProducerPipeline(b *testing.B) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic("sdk", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		b.Fatal(err)
	}
	p := client.NewProducer(client.NewDirect(f), "sdk", client.ProducerConfig{
		BatchEvents: 256, Linger: time.Millisecond,
	})
	defer p.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(event.Event{Value: payload}); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkWorkflowModel runs one SimulateRun cell (128 tasks).
func BenchmarkWorkflowModel(b *testing.B) {
	cfg := wfmon.RunConfig{Tasks: 128, Nodes: 8, Workers: 32, TaskDuration: 10 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		wfmon.SimulateRun(cfg, wfmon.HTEXModel())
	}
}

// BenchmarkModelEvaluation measures one full Table III evaluation.
func BenchmarkModelEvaluation(b *testing.B) {
	w := model.Workload{EventSize: 1024, Acks: broker.AcksNone, Partitions: 2, ReplicationFactor: 2, Locality: model.Local}
	for i := 0; i < b.N; i++ {
		model.ProducerThroughput(model.Baseline, w)
		model.MedianLatency(model.Baseline, w)
	}
}

// --- helpers ---

func newBenchFabric(b *testing.B, brokers, partitions int) *broker.Fabric {
	return newBenchFabricTopic(b, brokers, partitions, "bench")
}

func newBenchFabricTopic(b *testing.B, brokers, partitions int, topic string) *broker.Fabric {
	b.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(brokers, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: partitions, ReplicationFactor: 2}); err != nil {
		b.Fatal(err)
	}
	return f
}

func oneKBBatch(n int) []event.Event {
	payload := make([]byte, 1024)
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{Value: payload}
	}
	return out
}
