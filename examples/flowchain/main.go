// Flowchain reproduces the rule-chain example from the paper's
// introduction: "data acquisition at an instrument should trigger a
// workflow to transfer the data to an HPC system; ... completion of the
// transfer should trigger analysis on the HPC; and ... conclusion of
// the analysis should trigger an email to a researcher with results."
// Three rules, three triggers, all composed from Octopus primitives.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/flows"
)

func main() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	pi, err := oct.Register("pi@beamline.anl.gov", "globus")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := oct.CreateTopic(pi, "acquisition", core.TopicOptions{Partitions: 2}); err != nil {
		log.Fatal(err)
	}

	var emailed []string
	flow := flows.Flow{
		Name:   "beamline",
		Source: "acquisition",
		Steps: []flows.Step{
			{
				Name:    "transfer",
				Pattern: `{"event_type": ["acquired"]}`, // rule 1: only acquisitions
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					doc["hpc_path"] = "/eagle/proj/" + run + ".h5"
					fmt.Printf("rule 1: transferring %s -> %s\n", run, doc["hpc_path"])
					return doc, nil
				},
			},
			{
				Name: "analyze",
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					doc["peak_intensity"] = 7421.5
					fmt.Printf("rule 2: analyzing %s on HPC\n", doc["hpc_path"])
					return doc, nil
				},
			},
			{
				Name: "email",
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					emailed = append(emailed, run)
					fmt.Printf("rule 3: emailing researcher: run %s peak=%v\n", run, doc["peak_intensity"])
					return doc, nil
				},
			},
		},
	}
	d, err := flows.Deploy(oct.Fabric, oct.Triggers, flow, "")
	if err != nil {
		log.Fatal(err)
	}
	defer d.Remove()

	// The instrument acquires three scans (and emits a heartbeat that
	// must not start a flow run).
	for _, scan := range []string{"scan-001", "scan-002", "scan-003"} {
		_, err := oct.Fabric.Produce("", "acquisition", -1,
			[]event.Event{event.New(scan, map[string]any{"event_type": "acquired", "instrument": "xrd-2"})},
			broker.AcksLeader)
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := oct.Fabric.Produce("", "acquisition", -1,
		[]event.Event{event.New("hb", map[string]any{"event_type": "heartbeat"})}, broker.AcksLeader); err != nil {
		log.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(emailed) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(emailed) != 3 {
		log.Fatalf("only %d runs completed", len(emailed))
	}
	if d.CompletedSteps("hb") != 0 {
		log.Fatal("heartbeat started a flow run")
	}
	fmt.Println("\nall three acquisition runs flowed through transfer -> analyze -> email")
}
