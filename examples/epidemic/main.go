// Epidemic reproduces the Epidemic Modeling and Response use case
// (§VI-D, Figure 6 right): synthetic public-health data sources publish
// daily updates into Octopus; a trigger ingests, cleans and validates
// them into a common schema; the SIR model retrains as data arrives and
// publishes R estimates; and threshold alerts notify decision makers.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/epidemic"
	"repro/internal/trigger"
)

func main() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	team, err := oct.Register("epi-team@uchicago.edu", "globus")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := oct.CreateTopic(team, "raw-reports", core.TopicOptions{Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	results, err := oct.CreateTopic(team, "model-results", core.TopicOptions{Partitions: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The modeling trigger: every raw update is cleaned/validated; valid
	// reports retrain the SIR model; each retraining publishes an R
	// estimate and alert level to the results topic.
	var mu sync.Mutex
	model := epidemic.NewSIRModel("metro", 8_000_000)
	rejected := 0
	resultsProducer := results.Producer()
	defer resultsProducer.Close()
	_, err = raw.AddTrigger("model", core.TriggerOptions{BatchSize: 32}, func(inv *trigger.Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range inv.Events {
			doc, err := ev.JSON()
			if err != nil {
				rejected++
				continue
			}
			fields, _ := doc["fields"].(map[string]any)
			rep, err := epidemic.Clean(epidemic.RawRecord{Source: doc["source"].(string), Fields: fields})
			if err != nil {
				rejected++ // validation stage rejects corrupt records
				continue
			}
			model.Observe(rep.NewCases)
			if r, err := model.REstimate(); err == nil {
				alert := epidemic.Evaluate(rep.Region, r)
				if err := resultsProducer.SendJSON(rep.Region, alert); err != nil {
					return err
				}
			}
		}
		// Push alerts out before acknowledging the batch so a consumer
		// observing "all raw data processed" also sees the alerts.
		return resultsProducer.Flush()
	})
	if err != nil {
		log.Fatal(err)
	}

	// The data source publishes 90 days of updates.
	src := epidemic.NewSource("public-health-feed", "metro", 8_000_000, 2.2)
	p := raw.Producer()
	defer p.Close()
	day0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for d := 0; d < 90; d++ {
		rec := src.Next(day0.AddDate(0, 0, d))
		if err := p.SendJSON("metro", rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		log.Fatal(err)
	}

	// Decision makers consume the alert stream.
	c := results.Consumer(core.FromEarliest())
	defer c.Close()
	var lastAlert map[string]any
	alerts := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		evs, err := c.Poll(100)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range evs {
			doc, _ := ev.JSON()
			lastAlert = doc
			alerts++
		}
		mu.Lock()
		days := model.Days()
		mu.Unlock()
		if days+rejected >= 90 && len(evs) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("raw updates published:  90\n")
	fmt.Printf("rejected by validation: %d\n", rejected)
	fmt.Printf("days modeled:           %d\n", model.Days())
	fmt.Printf("R alerts published:     %d\n", alerts)
	if lastAlert != nil {
		fmt.Printf("latest: region=%v R=%.2f level=%v\n", lastAlert["region"], lastAlert["r"], lastAlert["level"])
	}
	if proj, err := model.Project(14); err == nil {
		fmt.Printf("14-day projection:      %v\n", proj)
	}
	if alerts == 0 {
		log.Fatal("no alerts flowed through the pipeline")
	}
	fmt.Println("epidemic pipeline complete")
}
