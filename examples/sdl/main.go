// SDL reproduces the Self-Driving Laboratory use case (§VI-A): a
// simulated lab runs autonomous experiment loops, every instrument and
// robot action lands in a global event log, and the log answers both
// dashboard queries (events per stage) and provenance traces — including
// pinpointing where a failed run stopped.
package main

import (
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sdl"
)

func main() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	pi, err := oct.Register("pi@lab.anl.gov", "globus")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := oct.CreateTopic(pi, "lab-log", core.TopicOptions{Partitions: 2}); err != nil {
		log.Fatal(err)
	}

	tr := client.NewDirect(oct.Fabric)
	lab := sdl.NewLab(tr, "lab-log", nil)
	defer lab.Close()
	// Every 4th synthesis action faults, as real robots do.
	lab.Instruments[sdl.StageSynthesize].FailEvery = 4

	var failed []string
	for i := 0; i < 8; i++ {
		exp, ok, err := lab.RunExperiment()
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !ok {
			status = "FAILED"
			failed = append(failed, exp)
		}
		fmt.Printf("experiment %s: %s\n", exp, status)
	}

	// Dashboard: events per workflow stage.
	counts, err := sdl.StageCounts(tr, "lab-log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevents per stage (dashboard view):")
	for _, stage := range sdl.Stages() {
		fmt.Printf("  %-13s %d\n", stage, counts[string(stage)])
	}

	// Provenance: trace a failed run back through its event log.
	if len(failed) > 0 {
		prov, err := sdl.TraceExperiment(tr, "lab-log", failed[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprovenance of failed run %s (%d events):\n", failed[0], len(prov.Events))
		for _, ev := range prov.Events {
			fmt.Printf("  %-18s %-13s %s\n", ev.Instrument, ev.Stage, ev.Action)
		}
		if !prov.Failed {
			log.Fatal("provenance lost the failure")
		}
	}
	fmt.Println("\nSDL event log demo complete")
}
