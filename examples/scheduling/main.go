// Scheduling reproduces the Online Task Scheduling use case (§VI-C,
// Figure 6 middle): resource monitors publish power/utilization
// telemetry through Octopus; a FaaS scheduler consumes it to model each
// resource's energy envelope and place tasks. The demo compares
// telemetry-blind round-robin against the energy-aware policy on the
// same fleet and reports the estimated energy of each schedule.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

const tasks = 60

func main() {
	for _, policy := range []sched.Policy{sched.PolicyRoundRobin, sched.PolicyEnergyAware} {
		watts, placements := runPolicy(policy)
		fmt.Printf("%-13s estimated fleet draw %.0f W, placements %v\n", policy, watts, placements)
	}
	fmt.Println("\nthe energy-aware schedule avoids the power-hungry node (resource-02)")
}

func runPolicy(policy sched.Policy) (float64, map[string]int) {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	admin, err := oct.Register("hpc-ops@uchicago.edu", "globus")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := oct.CreateTopic(admin, "telemetry", core.TopicOptions{Partitions: 3}); err != nil {
		log.Fatal(err)
	}
	tr := client.NewDirect(oct.Fabric)
	fleet := telemetry.NewFleet(3)
	p := client.NewProducer(tr, "telemetry", client.ProducerConfig{Linger: time.Millisecond})
	defer p.Close()

	s, err := sched.New(tr, "telemetry", policy, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	for _, smp := range fleet.Samplers {
		s.RegisterResource(smp.Spec.Name, smp.Spec.Cores)
	}

	// Warm-up: several telemetry rounds at varying load let the
	// scheduler regress each resource's power envelope online.
	now := time.Now()
	for round := 0; round < 6; round++ {
		for _, smp := range fleet.Samplers {
			smp.SetRunning(round * smp.Spec.Cores / 6)
		}
		if err := sched.PublishSamples(p, fleet, now.Add(time.Duration(round)*time.Minute)); err != nil {
			log.Fatal(err)
		}
	}
	for _, smp := range fleet.Samplers {
		smp.SetRunning(0)
	}
	if err := sched.PublishSamples(p, fleet, now.Add(time.Hour)); err != nil {
		log.Fatal(err)
	}
	drainTelemetry(s, 7*len(fleet.Samplers))

	// Place the task burst; reflect placements back into the fleet so
	// the energy estimate is honest.
	for i := 0; i < tasks; i++ {
		r, err := s.Place()
		if err != nil {
			log.Fatal(err)
		}
		smp := fleet.ByName(r)
		smp.SetRunning(smp.Running() + 1)
	}
	return fleet.TotalPower(now.Add(2 * time.Hour)), s.Placements
}

func drainTelemetry(s *sched.Scheduler, want int) {
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < want && time.Now().Before(deadline) {
		n, err := s.Ingest()
		if err != nil {
			log.Fatal(err)
		}
		got += n
		if n == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if got < want {
		log.Fatalf("ingested %d of %d telemetry events", got, want)
	}
}
