// Datapipeline reproduces the Scientific Data Automation use case
// (§VI-B, Figure 6 left): a filesystem monitor feeds a local topic, an
// aggregator forwards unique events to the global fabric, and a trigger
// filtered on file-creation events launches transfer actions that
// replicate new files to a second filesystem.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsmon"
	"repro/internal/trigger"
)

func main() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	ops, err := oct.Register("data-admin@anl.gov", "globus")
	if err != nil {
		log.Fatal(err)
	}
	global, err := oct.CreateTopic(ops, "fs-events", core.TopicOptions{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	// The "destination filesystem": transfers land here.
	var mu sync.Mutex
	fs2 := map[string]bool{}
	transfers := 0

	// Trigger: Listing 1's pattern — only created files start transfers.
	_, err = global.AddTrigger("replicate", core.TriggerOptions{
		Pattern:   `{"value": {"event_type": ["created"]}}`,
		BatchSize: 16,
	}, func(inv *trigger.Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range inv.Events {
			doc, err := ev.JSON()
			if err != nil {
				return err
			}
			path := doc["value"].(map[string]any)["path"].(string)
			fs2[path] = true // the Globus Transfer request
			transfers++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// FSMon + hierarchical aggregator: modify storms collapse locally
	// so the cloud sees orders of magnitude fewer events (§VII-C).
	gen := fsmon.NewGenerator(fsmon.GeneratorConfig{FilesPerBurst: 12, ModifiesPerFile: 16})
	agg := fsmon.NewAggregator(time.Minute)
	p := global.Producer()
	defer p.Close()
	created := 0
	for burst := 0; burst < 4; burst++ {
		raw := gen.Burst(time.Now())
		for _, ev := range agg.Filter(raw) {
			if ev.Type == fsmon.OpCreate {
				created++
			}
			if err := p.SendJSON(ev.Path, ev.Doc()); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := p.Flush(); err != nil {
		log.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := transfers
		mu.Unlock()
		if n == created {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("raw FS events:        %d\n", agg.In)
	fmt.Printf("forwarded to cloud:   %d (%.1fx reduction)\n", agg.Out, agg.ReductionFactor())
	fmt.Printf("created files:        %d\n", created)
	fmt.Printf("transfers executed:   %d\n", transfers)
	fmt.Printf("files now on FS2:     %d\n", len(fs2))
	if transfers != created {
		log.Fatal("some creations were not replicated")
	}
	fmt.Println("all new files replicated to FS2")
}
