// Workflow reproduces the Dynamic Workflow Management use case (§VI-E):
// a Parsl-like executor runs a task batch while its monitoring layer
// publishes task events. The demo runs the same workload under
// HTEX-style synchronous DB monitoring and Octopus-style async batched
// publishing, prints the per-event overhead of each (the Figure 8
// comparison, live at small scale), and then shows the monitoring
// stream being used the way the paper intends: detecting task failures
// from the event log.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wfmon"
)

func main() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()
	user, err := oct.Register("wf-user@tamu.edu", "globus")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := oct.CreateTopic(user, "wf-monitoring", core.TopicOptions{Partitions: 4}); err != nil {
		log.Fatal(err)
	}
	tr := client.NewDirect(oct.Fabric)

	cfg := wfmon.RunConfig{Tasks: 64, Nodes: 8, Workers: 16, TaskDuration: 2 * time.Millisecond}

	// HTEX-style: each event is a synchronous DB write on the worker's
	// critical path (1 ms here; tens of ms on HPC shared filesystems).
	htex := wfmon.NewHTEXMonitor(time.Millisecond)
	htexRes := wfmon.Run(cfg, htex)
	fmt.Printf("HTEX     makespan %-10v overhead %.3f ms/event (%d events)\n",
		htexRes.Makespan.Round(time.Millisecond), htexRes.OverheadPerEventMs, htexRes.Events)

	// Octopus-style: batched async publish through the SDK producer.
	octMon := wfmon.NewOctopusMonitor(tr, "wf-monitoring")
	octRes := wfmon.Run(cfg, octMon)
	octMon.Close()
	fmt.Printf("Octopus  makespan %-10v overhead %.3f ms/event (%d events)\n",
		octRes.Makespan.Round(time.Millisecond), octRes.OverheadPerEventMs, octRes.Events)
	if octRes.OverheadPerEventMs >= htexRes.OverheadPerEventMs {
		fmt.Println("note: at this tiny scale the difference can be noisy; Figure 8 uses the full grid")
	}

	// The monitoring stream is a real event log: count events by kind,
	// the input to the paper's planned retry/blacklist/reschedule logic.
	c := client.NewConsumer(tr, client.ConsumerConfig{Start: client.StartEarliest})
	defer c.Close()
	for p := 0; p < 4; p++ {
		if err := c.Assign("wf-monitoring", p); err != nil {
			log.Fatal(err)
		}
	}
	kinds := map[string]int{}
	total := 0
	deadline := time.Now().Add(5 * time.Second)
	for total < octRes.Events && time.Now().Before(deadline) {
		evs, err := c.Poll(200)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range evs {
			doc, err := ev.JSON()
			if err != nil {
				continue
			}
			if k, ok := doc["kind"].(string); ok {
				kinds[k]++
				total++
			}
		}
		if len(evs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Printf("monitoring events in fabric: %d by kind %v\n", total, kinds)
	if total != octRes.Events {
		log.Fatalf("fabric holds %d of %d monitoring events", total, octRes.Events)
	}

	// Figure 8 at full scale, from the deterministic model.
	fmt.Println("\nFigure 8 (sleep10ms) from the calibrated model:")
	for _, w := range []int{1, 4, 16, 64} {
		mc := wfmon.RunConfig{Tasks: 128, Nodes: 8, Workers: w, TaskDuration: 10 * time.Millisecond}
		h := wfmon.SimulateRun(mc, wfmon.HTEXModel())
		o := wfmon.SimulateRun(mc, wfmon.OctopusModel())
		fmt.Printf("  workers=%-3d HTEX %.2f ms/event   Octopus %.2f ms/event\n",
			w, h.OverheadPerEventMs, o.OverheadPerEventMs)
	}
	fmt.Println("workflow monitoring demo complete")
}
