// Quickstart: launch an in-process Octopus deployment, provision a
// topic, publish events, consume them, and attach a pattern-filtered
// trigger — the walkthrough-notebook flow of the paper's SDK.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/trigger"
)

func main() {
	// 1. Launch a two-broker fabric (the MSK minimum).
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oct.Shutdown()

	// 2. Authenticate, as Globus Auth would.
	alice, err := oct.Register("alice@uchicago.edu", "globus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged in as %s (token %.16s...)\n", alice.Identity.Username, alice.Token.Value)

	// 3. Provision a topic (PUT /topic/instrument-data).
	topic, err := oct.CreateTopic(alice, "instrument-data", core.TopicOptions{Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created topic", topic.Name)

	// 4. Attach a trigger that fires only on file-creation events —
	// the exact pattern of the paper's Listing 1.
	done := make(chan string, 8)
	_, err = topic.AddTrigger("on-create", core.TriggerOptions{
		Pattern: `{"value": {"event_type": ["created"]}}`,
	}, func(inv *trigger.Invocation) error {
		for _, ev := range inv.Events {
			doc, err := ev.JSON()
			if err != nil {
				return err
			}
			done <- doc["value"].(map[string]any)["path"].(string)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Publish a mix of events.
	p := topic.Producer()
	defer p.Close()
	for i, kind := range []string{"created", "modified", "created", "deleted"} {
		err := p.SendJSON("", map[string]any{
			"value": map[string]any{
				"event_type": kind,
				"path":       fmt.Sprintf("/data/run7/frame-%03d.tif", i),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		log.Fatal(err)
	}

	// 6. Consume everything from the beginning.
	c := topic.Consumer(core.FromEarliest())
	defer c.Close()
	consumed := 0
	deadline := time.Now().Add(3 * time.Second)
	for consumed < 4 && time.Now().Before(deadline) {
		evs, err := c.Poll(10)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range evs {
			fmt.Printf("consumed %s/%d@%d: %s\n", ev.Topic, ev.Partition, ev.Offset, ev.Value)
			consumed++
		}
	}

	// 7. The trigger fired only for the two "created" events.
	for i := 0; i < 2; i++ {
		select {
		case path := <-done:
			fmt.Println("trigger fired for", path)
		case <-time.After(3 * time.Second):
			log.Fatal("trigger did not fire")
		}
	}
	fmt.Println("quickstart complete")
}
