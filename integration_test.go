package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/mirror"
	"repro/internal/netsim"
	"repro/internal/ows"
	"repro/internal/store"
	"repro/internal/trigger"
	"repro/internal/wire"
)

// TestFullStackScenario drives the complete system the way a paper user
// would: REST provisioning with OAuth tokens, key issuance, remote
// (WAN-profiled) production over the TCP wire protocol, pattern-filtered
// triggers chaining into a derived topic, group consumption, geo
// mirroring to a second fabric, and archival to durable storage.
func TestFullStackScenario(t *testing.T) {
	// --- Region A: full deployment ---
	oct, err := core.Launch(core.Config{Brokers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer oct.Shutdown()
	web := httptest.NewServer(oct.Web)
	defer web.Close()
	wireAddr, err := oct.ListenWire("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// 1. Authenticate and provision over REST.
	alice, err := oct.Register("alice@uchicago.edu", "globus")
	if err != nil {
		t.Fatal(err)
	}
	code, body := restCall(t, web.URL, "PUT", "/topic/instrument", alice.Token.Value,
		ows.TopicConfigRequest{Partitions: 4, ReplicationFactor: 2})
	if code != http.StatusOK {
		t.Fatalf("provision: %d %v", code, body)
	}
	code, body = restCall(t, web.URL, "GET", "/create_key", alice.Token.Value, nil)
	if code != http.StatusOK {
		t.Fatalf("create_key: %d %v", code, body)
	}
	keyID := body["access_key_id"].(string)
	secret := body["secret_access_key"].(string)

	// 2. Deploy a trigger through OWS: chain created-events to a
	// derived topic (the multi-stage automation of §I).
	if _, err := oct.CreateTopic(alice, "instrument-derived", core.TopicOptions{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	oct.Triggers.RegisterAction("chain-derived", trigger.Chain(oct.Fabric, "instrument-derived"))
	code, body = restCall(t, web.URL, "PUT", "/trigger", alice.Token.Value, ows.TriggerRequest{
		ID: "derive", Topic: "instrument", Action: "chain-derived",
		Pattern: `{"value": {"event_type": ["created"]}}`, BatchWindowMs: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("trigger deploy: %d %v", code, body)
	}

	// 3. A remote producer: authenticated wire connection wrapped in
	// the 46.5 ms Chameleon profile, driving the SDK producer.
	wc, err := wire.Dial(wireAddr, keyID, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	remote := netsim.New(wc, netsim.Remote(), nil)
	prod := client.NewProducer(remote, "instrument", client.ProducerConfig{
		BatchEvents: 32, Linger: 2 * time.Millisecond,
	})
	const created, modified = 12, 24
	start := time.Now()
	for i := 0; i < created; i++ {
		mustSend(t, prod, map[string]any{"value": map[string]any{"event_type": "created", "path": fmt.Sprintf("/d/%d", i)}})
	}
	for i := 0; i < modified; i++ {
		mustSend(t, prod, map[string]any{"value": map[string]any{"event_type": "modified", "path": fmt.Sprintf("/d/%d", i%created)}})
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := prod.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 46*time.Millisecond {
		t.Fatalf("remote WAN profile not applied: %v", elapsed)
	}

	// 4. The trigger chained exactly the created events.
	waitForCount(t, func() int64 {
		var n int64
		for p := 0; p < 2; p++ {
			end, _ := oct.Fabric.EndOffset("instrument-derived", p)
			n += end
		}
		return n
	}, created, "chained events")

	// 5. Group consumers split the derived topic and see every event.
	tr := client.NewDirect(oct.Fabric)
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := client.NewConsumer(tr, client.ConsumerConfig{
				Group: "analysts", MemberID: fmt.Sprintf("analyst-%d", id),
				Start: client.StartEarliest, AutoCommit: true,
			})
			defer c.Close()
			if err := c.Subscribe("instrument-derived"); err != nil {
				t.Error(err)
				return
			}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				evs, err := c.Poll(50)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, ev := range evs {
					doc, _ := ev.JSON()
					seen[doc["value"].(map[string]any)["path"].(string)] = true
				}
				done := len(seen) == created
				mu.Unlock()
				if done {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if len(seen) != created {
		t.Fatalf("analysts saw %d of %d derived events", len(seen), created)
	}

	// 6. Geo-replication: mirror the raw topic to region B.
	regionB := broker.NewFabric(nil)
	if err := regionB.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	m, err := mirror.New(tr, client.NewDirect(regionB), regionB,
		mirror.Config{Topic: "instrument", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	waitForCount(t, m.Copied, created+modified, "mirrored events")
	m.Stop()

	// 7. Archive region A and restore into a disaster-recovery fabric.
	arch, err := store.NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := arch.ArchiveTopic(oct.Fabric, "instrument")
	if err != nil || n != created+modified {
		t.Fatalf("archived %d, %v", n, err)
	}
	dr := broker.NewFabric(nil)
	if err := dr.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	restored, err := arch.RestoreTopic(dr, "instrument", cluster.TopicConfig{Partitions: 4})
	if err != nil || restored != created+modified {
		t.Fatalf("restored %d, %v", restored, err)
	}

	// 8. Broker failure mid-flight: kill a leader, produce again, and
	// verify zero loss through failover.
	pm, _ := oct.Fabric.Ctl.Partition("instrument", 0)
	if err := oct.Fabric.StopBroker(pm.Leader); err != nil {
		t.Fatal(err)
	}
	post := client.NewProducer(tr, "instrument", client.ProducerConfig{Retries: 5})
	if _, err := post.SendSync(event.New("", map[string]any{"value": map[string]any{"event_type": "created", "path": "/after-failover"}})); err != nil {
		t.Fatalf("produce after leader kill: %v", err)
	}
	_ = post.Close()
	waitForCount(t, func() int64 {
		var n int64
		for p := 0; p < 2; p++ {
			end, _ := oct.Fabric.EndOffset("instrument-derived", p)
			n += end
		}
		return n
	}, created+1, "trigger kept firing through failover")
}

func restCall(t *testing.T, base, method, path, token string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func mustSend(t *testing.T, p *client.Producer, doc map[string]any) {
	t.Helper()
	if err := p.SendJSON("", doc); err != nil {
		t.Fatal(err)
	}
}

func waitForCount(t *testing.T, get func() int64, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= int64(want) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s: have %d, want %d", what, get(), want)
}
