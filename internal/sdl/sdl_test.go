package sdl

import (
	"testing"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
)

func newLabFixture(t *testing.T) (*broker.Fabric, client.Transport, *Lab) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("lab-log", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	tr := client.NewDirect(f)
	lab := NewLab(tr, "lab-log", nil)
	t.Cleanup(func() { _ = lab.Close() })
	return f, tr, lab
}

func TestExperimentEmitsAllStages(t *testing.T) {
	_, tr, lab := newLabFixture(t)
	exp, ok, err := lab.RunExperiment()
	if err != nil || !ok {
		t.Fatalf("run: ok=%v err=%v", ok, err)
	}
	prov, err := TraceExperiment(tr, "lab-log", exp)
	if err != nil {
		t.Fatal(err)
	}
	// 5 stages x (start + complete) = 10 events.
	if len(prov.Events) != 10 {
		t.Fatalf("events = %d", len(prov.Events))
	}
	if prov.Failed {
		t.Fatal("successful run marked failed")
	}
	// Stage ordering: design first, decide last.
	if prov.Events[0].Stage != "design" || prov.Events[len(prov.Events)-1].Stage != "decide" {
		t.Fatalf("order: first=%s last=%s", prov.Events[0].Stage, prov.Events[len(prov.Events)-1].Stage)
	}
}

func TestProvenanceIsolatesExperiments(t *testing.T) {
	_, tr, lab := newLabFixture(t)
	exp1, _, err := lab.RunExperiment()
	if err != nil {
		t.Fatal(err)
	}
	exp2, _, err := lab.RunExperiment()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := TraceExperiment(tr, "lab-log", exp1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range p1.Events {
		if ev.Experiment != exp1 {
			t.Fatalf("leaked event from %s into %s trace", ev.Experiment, exp1)
		}
	}
	if exp1 == exp2 {
		t.Fatal("experiment ids not unique")
	}
}

func TestFailureAppearsInProvenance(t *testing.T) {
	_, tr, lab := newLabFixture(t)
	lab.Instruments[StageSynthesize].FailEvery = 1 // fail immediately
	exp, ok, err := lab.RunExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("run should have failed")
	}
	prov, err := TraceExperiment(tr, "lab-log", exp)
	if err != nil {
		t.Fatal(err)
	}
	if !prov.Failed {
		t.Fatal("failure not visible in provenance")
	}
	// The workflow stopped at synthesis: no characterize events.
	for _, ev := range prov.Events {
		if ev.Stage == string(StageCharacterize) {
			t.Fatal("stages continued past the failure")
		}
	}
}

func TestStageCountsDashboard(t *testing.T) {
	_, tr, lab := newLabFixture(t)
	for i := 0; i < 5; i++ {
		if _, _, err := lab.RunExperiment(); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := StageCounts(tr, "lab-log")
	if err != nil {
		t.Fatal(err)
	}
	// 5 experiments x 2 events per stage.
	for _, stage := range Stages() {
		if counts[string(stage)] != 10 {
			t.Fatalf("stage %s count = %d, want 10 (%v)", stage, counts[string(stage)], counts)
		}
	}
}

func TestEventsAreKeyedByExperiment(t *testing.T) {
	f, _, lab := newLabFixture(t)
	exp, _, err := lab.RunExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// All events of one experiment share a key, so they landed on one
	// partition in order.
	nonEmpty := 0
	for p := 0; p < 2; p++ {
		res, err := f.Fetch("", "lab-log", p, 0, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) > 0 {
			nonEmpty++
			for _, ev := range res.Events {
				if string(ev.Key) != exp {
					t.Fatalf("key = %q, want %q", ev.Key, exp)
				}
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one experiment spread over %d partitions", nonEmpty)
	}
}
