// Package sdl implements the Self-Driving Laboratory use case (§VI-A):
// instruments, robotic actions and computational stages emitting a
// global event log through Octopus, giving "transparent and real-time
// insights into ongoing experiment workflows" plus provenance that can
// be traced back "through the decision-making and experiment processes".
//
// The lab is simulated: instruments take configurable step durations and
// can fail with a configurable probability, which is exactly what the
// event log must surface.
package sdl

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/vclock"
)

// Stage is one step of an SDL experiment workflow.
type Stage string

// Workflow stages of a typical materials-discovery loop.
const (
	StageDesign       Stage = "design"
	StageSynthesize   Stage = "synthesize"
	StageCharacterize Stage = "characterize"
	StageAnalyze      Stage = "analyze"
	StageDecide       Stage = "decide"
)

// Stages returns the canonical stage order.
func Stages() []Stage {
	return []Stage{StageDesign, StageSynthesize, StageCharacterize, StageAnalyze, StageDecide}
}

// LogEvent is one entry in the global lab log: the paper's event schema
// ("name of the instrument, timestamp, experiment identifier, action
// description, and ... associated metadata or results").
type LogEvent struct {
	Instrument string         `json:"instrument"`
	Experiment string         `json:"experiment"`
	Stage      string         `json:"stage"`
	Action     string         `json:"action"` // "start", "complete", "error"
	Time       time.Time      `json:"time"`
	Metadata   map[string]any `json:"metadata,omitempty"`
}

// Instrument is one lab device (robot arm, synthesis line, XRD...).
type Instrument struct {
	Name string
	// StepTime is how long one action takes.
	StepTime time.Duration
	// FailEvery makes every Nth action fail (0 = never), exercising the
	// error-detection role of the log.
	FailEvery int
	steps     int
}

// Lab drives experiments and publishes every transition to the log
// topic through the SDK producer.
type Lab struct {
	Instruments map[Stage]*Instrument
	producer    *client.Producer
	clock       vclock.Clock
	expSeq      int
}

// NewLab wires a lab over a transport, publishing to topic.
func NewLab(t client.Transport, topic string, clock vclock.Clock) *Lab {
	if clock == nil {
		clock = vclock.Real{}
	}
	instruments := map[Stage]*Instrument{
		StageDesign:       {Name: "campaign-planner", StepTime: time.Millisecond},
		StageSynthesize:   {Name: "synthesis-robot", StepTime: 3 * time.Millisecond},
		StageCharacterize: {Name: "xrd-spectrometer", StepTime: 2 * time.Millisecond},
		StageAnalyze:      {Name: "hpc-analysis", StepTime: 2 * time.Millisecond},
		StageDecide:       {Name: "al-optimizer", StepTime: time.Millisecond},
	}
	return &Lab{
		Instruments: instruments,
		producer: client.NewProducer(t, topic, client.ProducerConfig{
			BatchEvents: 16,
			Linger:      time.Millisecond,
		}),
		clock: clock,
	}
}

// RunExperiment executes one full workflow iteration, emitting start /
// complete (or error) events per stage. It returns the experiment id
// and whether every stage succeeded.
func (l *Lab) RunExperiment() (string, bool, error) {
	l.expSeq++
	exp := fmt.Sprintf("exp-%04d", l.expSeq)
	ok := true
	for _, stage := range Stages() {
		inst := l.Instruments[stage]
		if err := l.emit(inst.Name, exp, stage, "start", nil); err != nil {
			return exp, false, err
		}
		l.clock.Sleep(inst.StepTime)
		inst.steps++
		if inst.FailEvery > 0 && inst.steps%inst.FailEvery == 0 {
			ok = false
			if err := l.emit(inst.Name, exp, stage, "error", map[string]any{"reason": "actuation fault"}); err != nil {
				return exp, false, err
			}
			break
		}
		meta := map[string]any{"step": inst.steps}
		if stage == StageAnalyze {
			meta["score"] = 0.5 + float64(l.expSeq%50)/100
		}
		if err := l.emit(inst.Name, exp, stage, "complete", meta); err != nil {
			return exp, false, err
		}
	}
	if err := l.producer.Flush(); err != nil {
		return exp, ok, err
	}
	return exp, ok, nil
}

func (l *Lab) emit(instrument, exp string, stage Stage, action string, meta map[string]any) error {
	return l.producer.Send(event.New(exp, LogEvent{
		Instrument: instrument,
		Experiment: exp,
		Stage:      string(stage),
		Action:     action,
		Time:       l.clock.Now(),
		Metadata:   meta,
	}))
}

// Close flushes and stops the lab's producer.
func (l *Lab) Close() error { return l.producer.Close() }

// Provenance is the reconstructed timeline of one experiment.
type Provenance struct {
	Experiment string
	Events     []LogEvent
	// Failed reports whether the trace contains an error event.
	Failed bool
}

// TraceExperiment consumes the log topic from the earliest offset and
// reconstructs the given experiment's provenance — the "trace back
// through the decision-making and experiment processes" capability.
func TraceExperiment(t client.Transport, topic, experiment string) (*Provenance, error) {
	c := client.NewConsumer(t, client.ConsumerConfig{Start: client.StartEarliest})
	defer c.Close()
	meta, err := t.TopicMeta(topic)
	if err != nil {
		return nil, err
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(topic, p); err != nil {
			return nil, err
		}
	}
	prov := &Provenance{Experiment: experiment}
	for {
		evs, err := c.Poll(500)
		if err != nil {
			return nil, err
		}
		if len(evs) == 0 {
			break
		}
		for _, ev := range evs {
			var le LogEvent
			doc, err := ev.JSON()
			if err != nil {
				continue
			}
			// Cheap decode via the typed event payload.
			if doc["experiment"] != experiment {
				continue
			}
			le.Instrument, _ = doc["instrument"].(string)
			le.Experiment = experiment
			le.Stage, _ = doc["stage"].(string)
			le.Action, _ = doc["action"].(string)
			le.Time = ev.Timestamp
			prov.Events = append(prov.Events, le)
			if le.Action == "error" {
				prov.Failed = true
			}
		}
	}
	sort.SliceStable(prov.Events, func(i, j int) bool {
		return prov.Events[i].Time.Before(prov.Events[j].Time)
	})
	return prov, nil
}

// StageCounts summarizes a log for dashboarding: events per stage, the
// "graphical representations of the experiment" admins consume.
func StageCounts(t client.Transport, topic string) (map[string]int, error) {
	c := client.NewConsumer(t, client.ConsumerConfig{Start: client.StartEarliest})
	defer c.Close()
	meta, err := t.TopicMeta(topic)
	if err != nil {
		return nil, err
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(topic, p); err != nil {
			return nil, err
		}
	}
	counts := make(map[string]int)
	for {
		evs, err := c.Poll(500)
		if err != nil {
			return nil, err
		}
		if len(evs) == 0 {
			return counts, nil
		}
		for _, ev := range evs {
			doc, err := ev.JSON()
			if err != nil {
				continue
			}
			if stage, ok := doc["stage"].(string); ok {
				counts[stage]++
			}
		}
	}
}
