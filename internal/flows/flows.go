// Package flows implements the rule-chain programming model of the
// paper's introduction: "a first rule might state that data acquisition
// at an instrument should trigger a workflow to transfer the data to an
// HPC system; a second that completion of the transfer should trigger
// analysis on the HPC; and a third that conclusion of the analysis
// should trigger an email to a researcher with results."
//
// A Flow is an ordered list of steps. Each step is a trigger on a
// topic: events matching the step's pattern invoke the step's action,
// and on success a completion event is published to the next step's
// topic, carrying the flow name, step name, run id, and the step's
// output. Flows therefore compose entirely out of Octopus primitives —
// topics, patterns, triggers — exactly as the paper's applications do.
package flows

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/trigger"
)

// StepFunc is the work of one step. It receives the triggering event's
// JSON document and returns the step's output, which is forwarded to
// the next step. A non-nil error retries the batch per the trigger's
// retry policy.
type StepFunc func(run string, doc map[string]any) (map[string]any, error)

// Step is one rule of a flow.
type Step struct {
	// Name labels the step ("transfer", "analyze", "notify").
	Name string
	// Pattern optionally filters which events run the step (an
	// EventBridge-style pattern over the incoming document).
	Pattern string
	// Do is the step's action.
	Do StepFunc
}

// Flow is an ordered automation.
type Flow struct {
	// Name namespaces the flow's intermediate topics.
	Name string
	// Source is the topic whose events start runs of the flow.
	Source string
	// Steps run in order; step i+1 listens to step i's completions.
	Steps []Step
}

// StepEvent is the completion record published between steps.
type StepEvent struct {
	Flow string         `json:"flow"`
	Step string         `json:"step"`
	Run  string         `json:"run"`
	Out  map[string]any `json:"out,omitempty"`
	// Doc is the document the next step receives (the step output
	// merged over the original payload keys it chooses to forward).
	Doc map[string]any `json:"doc"`
}

// Deployment is a deployed flow's handle.
type Deployment struct {
	Flow     Flow
	runtime  *trigger.Runtime
	fabric   *broker.Fabric
	triggers []string

	mu        sync.Mutex
	completed map[string]int // run -> steps completed
}

// StepTopic returns the internal topic feeding step i (i = 0 is the
// source topic).
func (d *Deployment) StepTopic(i int) string {
	if i <= 0 {
		return d.Flow.Source
	}
	return fmt.Sprintf("%s.step%d", d.Flow.Name, i)
}

// FinalTopic is where completions of the last step land; consumers can
// subscribe to observe finished runs.
func (d *Deployment) FinalTopic() string {
	return fmt.Sprintf("%s.done", d.Flow.Name)
}

// Errors returned by Deploy.
var (
	// ErrNoSteps reports an empty flow.
	ErrNoSteps = errors.New("flows: flow has no steps")
	// ErrNoSource reports a flow without a source topic.
	ErrNoSource = errors.New("flows: flow has no source topic")
)

// Deploy provisions the flow's intermediate topics and triggers. The
// owner identity is granted on intermediate topics so triggers acting
// on their behalf pass ACL checks; empty owner means trusted in-process.
func Deploy(f *broker.Fabric, rt *trigger.Runtime, flow Flow, owner string) (*Deployment, error) {
	if len(flow.Steps) == 0 {
		return nil, ErrNoSteps
	}
	if flow.Source == "" {
		return nil, ErrNoSource
	}
	if flow.Name == "" {
		flow.Name = "flow"
	}
	d := &Deployment{Flow: flow, runtime: rt, fabric: f, completed: make(map[string]int)}
	// Intermediate + final topics.
	for i := 1; i < len(flow.Steps); i++ {
		if _, err := f.CreateTopic(d.StepTopic(i), owner, cluster.TopicConfig{Partitions: 2, ReplicationFactor: 1}); err != nil {
			return nil, fmt.Errorf("flows: step topic %d: %w", i, err)
		}
	}
	if _, err := f.CreateTopic(d.FinalTopic(), owner, cluster.TopicConfig{Partitions: 2, ReplicationFactor: 1}); err != nil {
		return nil, fmt.Errorf("flows: final topic: %w", err)
	}
	// One trigger per step.
	for i := range flow.Steps {
		i := i
		step := flow.Steps[i]
		next := d.FinalTopic()
		if i+1 < len(flow.Steps) {
			next = d.StepTopic(i + 1)
		}
		id := fmt.Sprintf("%s.%s", flow.Name, step.Name)
		cfg := trigger.Config{
			ID:          id,
			Topic:       d.StepTopic(i),
			PatternJSON: step.Pattern,
			BatchSize:   32,
			OnBehalfOf:  owner,
		}
		action := d.stepAction(i, step, next)
		if _, err := rt.DeployFunc(cfg, action); err != nil {
			// Roll back already-deployed triggers.
			for _, tid := range d.triggers {
				_ = rt.Remove(tid)
			}
			return nil, fmt.Errorf("flows: deploy step %s: %w", step.Name, err)
		}
		d.triggers = append(d.triggers, id)
	}
	return d, nil
}

// stepAction wraps a StepFunc: decode, run, publish completion.
func (d *Deployment) stepAction(idx int, step Step, next string) trigger.Action {
	return func(inv *trigger.Invocation) error {
		var completions []event.Event
		for _, ev := range inv.Events {
			doc, err := ev.JSON()
			if err != nil {
				continue // non-JSON events cannot run flows
			}
			run := runID(idx, ev, doc)
			// Completion events from the previous step wrap the working
			// document; hand the step the document itself.
			if idx > 0 {
				if inner, ok := doc["doc"].(map[string]any); ok {
					doc = inner
				}
			}
			out, err := step.Do(run, doc)
			if err != nil {
				return fmt.Errorf("flows: step %s run %s: %w", step.Name, run, err)
			}
			se := StepEvent{Flow: d.Flow.Name, Step: step.Name, Run: run, Out: out, Doc: out}
			if se.Doc == nil {
				se.Doc = doc
			}
			completions = append(completions, event.New(run, se))
			d.mu.Lock()
			d.completed[run]++
			d.mu.Unlock()
		}
		if len(completions) == 0 {
			return nil
		}
		_, err := d.fabric.Produce(d.Flow.Steps[idx].propagateIdentity(), next, -1, completions, broker.AcksLeader)
		return err
	}
}

// propagateIdentity: steps act as the deployment owner; the trusted
// in-process identity is used when no owner was set. (Kept as a method
// for future per-step identities.)
func (s Step) propagateIdentity() string { return "" }

// runID derives the flow-run correlation id: the event key if present,
// a "run" field if the document carries one, else topic/partition@offset.
func runID(stepIdx int, ev event.Event, doc map[string]any) string {
	if stepIdx > 0 {
		// Completion events carry the run explicitly.
		if r, ok := doc["run"].(string); ok && r != "" {
			return r
		}
	}
	if len(ev.Key) > 0 {
		return string(ev.Key)
	}
	if r, ok := doc["run"].(string); ok && r != "" {
		return r
	}
	return fmt.Sprintf("%s/%d@%d", ev.Topic, ev.Partition, ev.Offset)
}

// CompletedSteps reports how many steps have completed for a run.
func (d *Deployment) CompletedSteps(run string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.completed[run]
}

// Remove tears down the flow's triggers (topics are retained, as data
// outlives automation).
func (d *Deployment) Remove() {
	for _, id := range d.triggers {
		_ = d.runtime.Remove(id)
	}
}

// DecodeStepEvent parses a completion record from the final topic.
func DecodeStepEvent(ev event.Event) (StepEvent, error) {
	var se StepEvent
	if err := json.Unmarshal(ev.Value, &se); err != nil {
		return se, fmt.Errorf("flows: bad step event: %w", err)
	}
	return se, nil
}
