package flows

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/trigger"
)

func fixture(t *testing.T) (*broker.Fabric, *trigger.Runtime) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("acquisition", "", cluster.TopicConfig{Partitions: 2, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	rt := trigger.NewRuntime(f)
	t.Cleanup(rt.StopAll)
	return f, rt
}

func produceDoc(t *testing.T, f *broker.Fabric, topic, key string, doc map[string]any) {
	t.Helper()
	if _, err := f.Produce("", topic, -1, []event.Event{event.New(key, doc)}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

// TestThreeRuleChain reproduces the paper's §I example: acquisition →
// transfer → analysis → email.
func TestThreeRuleChain(t *testing.T) {
	f, rt := fixture(t)
	var mu sync.Mutex
	var transfers, analyses, emails []string
	flow := Flow{
		Name:   "beamline",
		Source: "acquisition",
		Steps: []Step{
			{
				Name:    "transfer",
				Pattern: `{"event_type": ["acquired"]}`,
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					mu.Lock()
					defer mu.Unlock()
					transfers = append(transfers, run)
					doc["hpc_path"] = "/scratch/" + run
					return doc, nil
				},
			},
			{
				Name: "analyze",
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					mu.Lock()
					defer mu.Unlock()
					analyses = append(analyses, run)
					if doc["hpc_path"] == nil {
						return nil, errors.New("transfer output missing")
					}
					doc["score"] = 0.93
					return doc, nil
				},
			},
			{
				Name: "email",
				Do: func(run string, doc map[string]any) (map[string]any, error) {
					mu.Lock()
					defer mu.Unlock()
					emails = append(emails, run)
					return doc, nil
				},
			},
		},
	}
	d, err := Deploy(f, rt, flow, "")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Remove()
	produceDoc(t, f, "acquisition", "scan-42", map[string]any{"event_type": "acquired", "instrument": "xrd"})
	// A non-matching event must not start a run.
	produceDoc(t, f, "acquisition", "scan-43", map[string]any{"event_type": "heartbeat"})

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(emails) == 1
	}, "three-rule chain")
	mu.Lock()
	defer mu.Unlock()
	if len(transfers) != 1 || len(analyses) != 1 {
		t.Fatalf("chain = %v %v %v", transfers, analyses, emails)
	}
	if transfers[0] != "scan-42" || emails[0] != "scan-42" {
		t.Fatalf("run id lost: %v", emails)
	}
	if d.CompletedSteps("scan-42") != 3 {
		t.Fatalf("completed = %d", d.CompletedSteps("scan-42"))
	}
	if d.CompletedSteps("scan-43") != 0 {
		t.Fatal("heartbeat started a run")
	}
}

func TestFinalTopicCarriesCompletions(t *testing.T) {
	f, rt := fixture(t)
	flow := Flow{
		Name:   "simple",
		Source: "acquisition",
		Steps: []Step{{
			Name: "only",
			Do: func(run string, doc map[string]any) (map[string]any, error) {
				doc["done"] = true
				return doc, nil
			},
		}},
	}
	d, err := Deploy(f, rt, flow, "")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Remove()
	produceDoc(t, f, "acquisition", "r1", map[string]any{"x": 1})
	var got StepEvent
	waitFor(t, func() bool {
		for p := 0; p < 2; p++ {
			res, err := f.Fetch("", d.FinalTopic(), p, 0, 10, 0)
			if err != nil {
				continue
			}
			if len(res.Events) > 0 {
				se, err := DecodeStepEvent(res.Events[0])
				if err != nil {
					t.Error(err)
					return true
				}
				got = se
				return true
			}
		}
		return false
	}, "final completion")
	if got.Flow != "simple" || got.Step != "only" || got.Run != "r1" {
		t.Fatalf("completion = %+v", got)
	}
	if got.Doc["done"] != true {
		t.Fatalf("doc = %v", got.Doc)
	}
}

func TestStepErrorRetriesThenRuns(t *testing.T) {
	f, rt := fixture(t)
	var mu sync.Mutex
	attempts := 0
	flow := Flow{
		Name:   "flaky",
		Source: "acquisition",
		Steps: []Step{{
			Name: "transfer",
			Do: func(run string, doc map[string]any) (map[string]any, error) {
				mu.Lock()
				defer mu.Unlock()
				attempts++
				if attempts == 1 {
					return nil, errors.New("transient transfer failure")
				}
				return doc, nil
			},
		}},
	}
	d, err := Deploy(f, rt, flow, "")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Remove()
	produceDoc(t, f, "acquisition", "r", map[string]any{"x": 1})
	waitFor(t, func() bool { return d.CompletedSteps("r") == 1 }, "retry then complete")
	mu.Lock()
	defer mu.Unlock()
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
}

func TestParallelRunsKeepDistinctIDs(t *testing.T) {
	f, rt := fixture(t)
	var mu sync.Mutex
	runs := map[string]int{}
	flow := Flow{
		Name:   "par",
		Source: "acquisition",
		Steps: []Step{
			{Name: "a", Do: func(run string, doc map[string]any) (map[string]any, error) { return doc, nil }},
			{Name: "b", Do: func(run string, doc map[string]any) (map[string]any, error) {
				mu.Lock()
				defer mu.Unlock()
				runs[run]++
				return doc, nil
			}},
		},
	}
	d, err := Deploy(f, rt, flow, "")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Remove()
	for i := 0; i < 8; i++ {
		produceDoc(t, f, "acquisition", "", map[string]any{"run": string(rune('a' + i))})
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(runs) == 8
	}, "parallel runs")
	mu.Lock()
	defer mu.Unlock()
	for run, n := range runs {
		if n != 1 {
			t.Fatalf("run %q executed step b %d times", run, n)
		}
	}
}

func TestDeployValidation(t *testing.T) {
	f, rt := fixture(t)
	if _, err := Deploy(f, rt, Flow{Source: "acquisition"}, ""); !errors.Is(err, ErrNoSteps) {
		t.Fatalf("no steps: %v", err)
	}
	if _, err := Deploy(f, rt, Flow{Steps: []Step{{Name: "s", Do: func(string, map[string]any) (map[string]any, error) { return nil, nil }}}}, ""); !errors.Is(err, ErrNoSource) {
		t.Fatalf("no source: %v", err)
	}
}

func TestRemoveStopsTriggers(t *testing.T) {
	f, rt := fixture(t)
	var mu sync.Mutex
	count := 0
	flow := Flow{
		Name:   "rm",
		Source: "acquisition",
		Steps: []Step{{Name: "s", Do: func(run string, doc map[string]any) (map[string]any, error) {
			mu.Lock()
			defer mu.Unlock()
			count++
			return doc, nil
		}}},
	}
	d, err := Deploy(f, rt, flow, "")
	if err != nil {
		t.Fatal(err)
	}
	produceDoc(t, f, "acquisition", "one", map[string]any{"x": 1})
	waitFor(t, func() bool { return d.CompletedSteps("one") == 1 }, "first run")
	d.Remove()
	produceDoc(t, f, "acquisition", "two", map[string]any{"x": 2})
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("flow ran after Remove: count = %d", count)
	}
}
