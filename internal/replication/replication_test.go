package replication

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// testCluster assembles a 3-broker fabric with the replication
// subsystem attached in-process: one Tracker, one Manager per broker
// pulling through LocalClient.
func testCluster(t *testing.T, cfg Config, minISR int) (*broker.Fabric, *Tracker, map[int]*Manager) {
	t.Helper()
	f := broker.NewFabric(nil)
	f.MinInsyncReplicas = minISR
	if err := f.AddBrokers(3, 4, 16); err != nil {
		t.Fatalf("AddBrokers: %v", err)
	}
	tr := NewTracker(f, cfg)
	f.SetReplicator(tr)
	mgrs := make(map[int]*Manager)
	for _, id := range f.NodeIDs() {
		mgrs[id] = NewManager(f, id, LocalClient{F: f}, cfg)
	}
	t.Cleanup(func() {
		for _, m := range mgrs {
			m.Stop()
		}
	})
	return f, tr, mgrs
}

func startAll(mgrs map[int]*Manager) {
	for _, m := range mgrs {
		m.Start()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func produceN(t *testing.T, f *broker.Fabric, topic string, n int, acks broker.Acks) {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	if _, err := f.Produce("", topic, 0, evs, acks); err != nil {
		t.Fatalf("produce: %v", err)
	}
}

func partMeta(t *testing.T, f *broker.Fabric, topic string) cluster.PartitionMeta {
	t.Helper()
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		t.Fatalf("Topic: %v", err)
	}
	return meta.Partitions[0]
}

func TestReplicateAcksAll(t *testing.T) {
	f, tr, mgrs := testCluster(t, Config{}, 2)
	if _, err := f.CreateTopic("orders", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	startAll(mgrs)

	produceN(t, f, "orders", 20, broker.AcksAll)

	pm := partMeta(t, f, "orders")
	tp := broker.TP{Topic: "orders", Partition: 0}
	hw, ok := tr.HighWatermark(tp)
	if !ok || hw != 20 {
		t.Fatalf("hw = %d, %v; want 20", hw, ok)
	}
	// Every replica's log converged to the leader's 20 events, at the
	// leader-assigned offsets.
	for _, id := range pm.Replicas {
		n, _ := f.Node(id)
		waitFor(t, fmt.Sprintf("broker %d catch-up", id), func() bool {
			l, ok := n.ReplicaLog(tp)
			return ok && l.EndOffset() == 20
		})
		l, _ := n.ReplicaLog(tp)
		evs, err := l.Read(0, 20)
		if err != nil || len(evs) != 20 {
			t.Fatalf("broker %d read: %d events, %v", id, len(evs), err)
		}
		for i, ev := range evs {
			if ev.Offset != int64(i) || string(ev.Value) != fmt.Sprintf("v%03d", i) {
				t.Fatalf("broker %d event %d: offset %d value %q", id, i, ev.Offset, ev.Value)
			}
		}
	}
	st, ok := tr.Status(tp)
	if !ok || st.HighWatermark != 20 || st.LogEnd != 20 {
		t.Fatalf("status = %+v, %v", st, ok)
	}
	if got := f.Metrics.Gauge("replication.under_replicated").Value(); got != 0 {
		t.Fatalf("under_replicated = %d", got)
	}
}

func TestAcksAllShrinksLaggardsToMin(t *testing.T) {
	// No managers running: followers never ack. With min.insync=1 the
	// commit timeout shrinks the ISR down to the leader and the produce
	// still succeeds — the interop fallback to single-replica operation.
	f, tr, _ := testCluster(t, Config{CommitTimeout: 50 * time.Millisecond}, 1)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	produceN(t, f, "t", 5, broker.AcksAll)

	pm := partMeta(t, f, "t")
	if len(pm.ISR) != 1 || pm.ISR[0] != pm.Leader {
		t.Fatalf("ISR = %v, leader %d; want leader only", pm.ISR, pm.Leader)
	}
	tp := broker.TP{Topic: "t", Partition: 0}
	if hw, _ := tr.HighWatermark(tp); hw != 5 {
		t.Fatalf("hw = %d after shrink; want 5", hw)
	}
	if got := f.Metrics.Gauge("replication.under_replicated").Value(); got != 1 {
		t.Fatalf("under_replicated = %d; want 1", got)
	}
}

func TestAcksAllFailsBelowMinISR(t *testing.T) {
	// min.insync=2 with no followers acking: the shrink stops at 2 but
	// the HW cannot pass the batch, so acks=all fails.
	f, _, _ := testCluster(t, Config{CommitTimeout: 50 * time.Millisecond}, 2)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	evs := []event.Event{{Value: []byte("x")}}
	_, err := f.Produce("", "t", 0, evs, broker.AcksAll)
	if !errors.Is(err, broker.ErrNotEnoughReplicas) {
		t.Fatalf("err = %v; want ErrNotEnoughReplicas", err)
	}
	// acks=leader still works: the leader log took the append.
	if _, err := f.Produce("", "t", 0, evs, broker.AcksLeader); err != nil {
		t.Fatalf("acks=leader after failed acks=all: %v", err)
	}
}

func TestReplicaFetchFencesStaleEpoch(t *testing.T) {
	f, _, _ := testCluster(t, Config{}, 1)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	pm := partMeta(t, f, "t")
	follower := -1
	for _, id := range pm.Replicas {
		if id != pm.Leader {
			follower = id
			break
		}
	}
	if _, err := f.ReplicaFetch(follower, "t", 0, pm.LeaderEpoch+1, 0, 10, 0, 0, nil, nil); !errors.Is(err, broker.ErrFencedEpoch) {
		t.Fatalf("future epoch fetch: %v; want ErrFencedEpoch", err)
	}
	if err := f.ReplicaAck(follower, "t", 0, pm.LeaderEpoch-1, 3); !errors.Is(err, broker.ErrFencedEpoch) {
		t.Fatalf("stale epoch ack: %v; want ErrFencedEpoch", err)
	}
	if _, err := f.ReplicaFetch(follower, "t", 0, pm.LeaderEpoch, 0, 10, 0, 0, nil, nil); err != nil {
		t.Fatalf("current epoch fetch: %v", err)
	}
}

func TestEvictedFollowerCatchesUpAndRejoins(t *testing.T) {
	cfg := Config{CommitTimeout: 50 * time.Millisecond}
	f, tr, mgrs := testCluster(t, cfg, 1)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	// Phase 1: no managers. acks=all evicts both followers.
	produceN(t, f, "t", 10, broker.AcksAll)
	pm := partMeta(t, f, "t")
	if len(pm.ISR) != 1 {
		t.Fatalf("ISR after eviction = %v", pm.ISR)
	}
	// Phase 2: start the fetch loops. Followers catch up to the leader
	// log end and the tracker expands them back into the ISR.
	startAll(mgrs)
	waitFor(t, "ISR re-expansion", func() bool {
		return len(partMeta(t, f, "t").ISR) == 3
	})
	tp := broker.TP{Topic: "t", Partition: 0}
	if hw, _ := tr.HighWatermark(tp); hw != 10 {
		t.Fatalf("hw = %d; want 10", hw)
	}
	// And acks=all is healthy again end to end.
	produceN(t, f, "t", 5, broker.AcksAll)
	if hw, _ := tr.HighWatermark(tp); hw != 15 {
		t.Fatalf("hw after second produce = %d; want 15", hw)
	}
}

func TestFollowerTruncatesDivergedTail(t *testing.T) {
	f, _, mgrs := testCluster(t, Config{}, 1)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	// Replicate 5 records everywhere, then stop one follower's loops and
	// fabricate a diverged tail on it: records past the leader's log end
	// that were never acked (an un-replicated tail from a dead leader).
	startAll(mgrs)
	produceN(t, f, "t", 5, broker.AcksAll)
	pm := partMeta(t, f, "t")
	follower := -1
	for _, id := range pm.Replicas {
		if id != pm.Leader {
			follower = id
			break
		}
	}
	mgrs[follower].Stop()
	fl, err := f.BrokerLog(follower, "t", 0)
	if err != nil {
		t.Fatalf("BrokerLog: %v", err)
	}
	waitFor(t, "follower baseline", func() bool { return fl.EndOffset() == 5 })
	stale := make([]event.Event, 8)
	for i := range stale {
		stale[i] = event.Event{Offset: int64(5 + i), Value: []byte("stale")}
	}
	if err := fl.AppendReplicated(stale); err != nil {
		t.Fatalf("seed diverged tail: %v", err)
	}
	if fl.EndOffset() != 13 {
		t.Fatalf("diverged end = %d", fl.EndOffset())
	}
	mgrs[follower].Start()
	waitFor(t, "diverged tail truncation", func() bool {
		return fl.EndOffset() == 5
	})
	evs, err := fl.Read(0, 10)
	if err != nil || len(evs) != 5 {
		t.Fatalf("post-truncate read: %d events, %v", len(evs), err)
	}
	for i, ev := range evs {
		if string(ev.Value) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("event %d = %q; want leader's record", i, ev.Value)
		}
	}
}

func TestLeaderFailoverNewEpochFencesOldFetches(t *testing.T) {
	f, _, mgrs := testCluster(t, Config{}, 1)
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	startAll(mgrs)
	produceN(t, f, "t", 10, broker.AcksAll)
	pm := partMeta(t, f, "t")
	oldLeader, oldEpoch := pm.Leader, pm.LeaderEpoch

	if err := f.CrashBroker(oldLeader); err != nil {
		t.Fatalf("CrashBroker: %v", err)
	}
	waitFor(t, "new leader election", func() bool {
		pm := partMeta(t, f, "t")
		return pm.Leader >= 0 && pm.Leader != oldLeader
	})
	pm = partMeta(t, f, "t")
	if pm.LeaderEpoch <= oldEpoch {
		t.Fatalf("epoch %d after failover; want > %d", pm.LeaderEpoch, oldEpoch)
	}
	// A fetch still carrying the old epoch is fenced by the new leader.
	if _, err := f.ReplicaFetch(oldLeader, "t", 0, oldEpoch, 10, 10, 0, 0, nil, nil); !errors.Is(err, broker.ErrFencedEpoch) {
		t.Fatalf("stale epoch after failover: %v; want ErrFencedEpoch", err)
	}
	// The surviving replicas keep serving: all 10 acked events are on
	// the new leader, and new produces land.
	res, err := f.Fetch("", "t", 0, 0, 100, 0)
	if err != nil || len(res.Events) != 10 {
		t.Fatalf("fetch after failover: %d events, %v", len(res.Events), err)
	}
	produceN(t, f, "t", 3, broker.AcksAll)
	waitFor(t, "post-failover replication", func() bool {
		pm := partMeta(t, f, "t")
		for _, id := range pm.ISR {
			if id == pm.Leader {
				continue
			}
			n, _ := f.Node(id)
			l, ok := n.ReplicaLog(broker.TP{Topic: "t", Partition: 0})
			if !ok || l.EndOffset() != 13 {
				return false
			}
		}
		return len(pm.ISR) >= 2
	})
}
