package replication

import (
	"errors"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
)

// Client is the transport a Manager pulls replication batches
// through. wire.Client satisfies it via the WireClient adapter; tests
// and single-process fabrics use LocalClient, which dispatches into
// the fabric directly with identical semantics.
type Client interface {
	ReplicaFetch(follower int, topic string, partition int, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.ReplicaFetchResult, error)
	ReplicaAck(follower int, topic string, partition int, epoch, leo int64) error
}

// LocalClient is the in-process Client: replica fetches run against
// the local fabric's tracker without a wire round trip.
type LocalClient struct {
	F *broker.Fabric
}

// ReplicaFetch implements Client.
func (c LocalClient) ReplicaFetch(follower int, topic string, partition int, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.ReplicaFetchResult, error) {
	res, err := c.F.ReplicaFetch(follower, topic, partition, epoch, offset, maxEvents, maxBytes, wait, nil, buf.Events[:0])
	if err == nil {
		buf.Events = res.Events
	}
	return res, err
}

// ReplicaAck implements Client.
func (c LocalClient) ReplicaAck(follower int, topic string, partition int, epoch, leo int64) error {
	return c.F.ReplicaAck(follower, topic, partition, epoch, leo)
}

// Manager is the follower half of replication for one broker: a fetch
// loop per partition the broker follows, started and stopped as the
// controller's metadata changes (leadership moves, partitions grow,
// the broker itself is elected leader).
type Manager struct {
	f        *broker.Fabric
	brokerID int
	cli      Client
	cfg      Config

	// Pre-resolved follower-side instrumentation: the replica-fetch
	// round trip (fetch + local append + ack) and per-round batch size,
	// observed only for data-carrying rounds so lapsed long polls do not
	// drown the distribution.
	hRtt   *metrics.BucketHist
	hBatch *metrics.BucketHist

	mu    sync.Mutex
	loops map[broker.TP]*fetchLoop
	stop  chan struct{}
	wg    sync.WaitGroup
}

// fetchLoop is one partition's running follower loop.
type fetchLoop struct {
	stop chan struct{}
}

// NewManager creates the replication manager for broker brokerID,
// pulling through cli.
func NewManager(f *broker.Fabric, brokerID int, cli Client, cfg Config) *Manager {
	cfg.fill()
	return &Manager{
		f: f, brokerID: brokerID, cli: cli, cfg: cfg,
		hRtt:   f.Metrics.BucketHist("replication.fetch_rtt_ns"),
		hBatch: f.Metrics.BucketHist("replication.fetch_batch_events"),
		loops:  make(map[broker.TP]*fetchLoop),
	}
}

// Start reconciles once and then keeps reconciling on every controller
// epoch bump until Stop.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	stop := m.stop
	m.mu.Unlock()
	m.reconcile()
	ch, cancel := m.f.Ctl.WatchEpoch()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		for {
			select {
			case <-stop:
				return
			case <-ch:
				m.reconcile()
			}
		}
	}()
}

// Stop halts every fetch loop and the reconciler. The manager can be
// Started again (broker restart).
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stop == nil {
		m.mu.Unlock()
		return
	}
	close(m.stop)
	m.stop = nil
	loops := m.loops
	m.loops = make(map[broker.TP]*fetchLoop)
	m.mu.Unlock()
	for _, l := range loops {
		close(l.stop)
	}
	m.wg.Wait()
}

// follows reports whether this broker should be running a fetch loop
// for the partition: it hosts a replica, someone else leads, and the
// broker itself is up.
func (m *Manager) follows(tp broker.TP) (epoch int64, ok bool) {
	if n, up := m.f.Node(m.brokerID); !up || n.Down() {
		return 0, false
	}
	meta, err := m.f.Ctl.Topic(tp.Topic)
	if err != nil || tp.Partition >= len(meta.Partitions) {
		return 0, false
	}
	pm := &meta.Partitions[tp.Partition]
	if !pm.HasReplica(m.brokerID) || pm.Leader == m.brokerID || pm.Leader < 0 {
		return 0, false
	}
	return pm.LeaderEpoch, true
}

// reconcile aligns the running fetch loops with the current metadata.
func (m *Manager) reconcile() {
	m.mu.Lock()
	if m.stop == nil {
		m.mu.Unlock()
		return
	}
	want := make(map[broker.TP]bool)
	for _, topic := range m.f.Ctl.Topics() {
		meta, err := m.f.Ctl.Topic(topic)
		if err != nil {
			continue
		}
		for i := range meta.Partitions {
			tp := broker.TP{Topic: topic, Partition: i}
			if _, ok := m.follows(tp); ok {
				want[tp] = true
			}
		}
	}
	var stopLoops []*fetchLoop
	for tp, l := range m.loops {
		if !want[tp] {
			stopLoops = append(stopLoops, l)
			delete(m.loops, tp)
		}
	}
	for tp := range want {
		if m.loops[tp] == nil {
			l := &fetchLoop{stop: make(chan struct{})}
			m.loops[tp] = l
			m.wg.Add(1)
			go m.run(tp, l)
		}
	}
	m.mu.Unlock()
	for _, l := range stopLoops {
		close(l.stop)
	}
}

// sleep pauses the loop, returning false when it should exit.
func sleepOr(d time.Duration, stop chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// run is one partition's follower fetch loop: pull at the local log
// end, append preserving offsets, ack. Epoch fencing and divergence
// reconcile in-line; the loop exits when reconciliation stops it.
func (m *Manager) run(tp broker.TP, l *fetchLoop) {
	defer m.wg.Done()
	buf := &broker.FetchBuffer{}
	epoch, ok := m.follows(tp)
	if !ok {
		return
	}
	for {
		select {
		case <-l.stop:
			return
		default:
		}
		log, err := m.f.BrokerLog(m.brokerID, tp.Topic, tp.Partition)
		if err != nil {
			if !sleepOr(m.cfg.RetryBackoff, l.stop) {
				return
			}
			continue
		}
		pos := log.EndOffset()
		t0 := time.Now()
		batch, err := m.cli.ReplicaFetch(m.brokerID, tp.Topic, tp.Partition, epoch, pos, m.cfg.MaxEvents, m.cfg.MaxBytes, m.cfg.FetchWait, buf)
		switch {
		case err == nil:
			if len(batch.Events) > 0 {
				if aerr := log.AppendReplicated(batch.Events); aerr != nil {
					if !sleepOr(m.cfg.RetryBackoff, l.stop) {
						return
					}
					continue
				}
				// Push the new log end to the leader immediately: the HW
				// (and any acks=all producer waiting on it) advances half
				// a round trip sooner than the next fetch.
				_ = m.cli.ReplicaAck(m.brokerID, tp.Topic, tp.Partition, epoch, log.EndOffset())
				// The full replicate round: wire fetch + local append +
				// ack. A round that long-polled before data arrived
				// includes that park, so the low quantiles of a busy
				// partition are the meaningful replication-speed signal.
				m.hRtt.Observe(int64(time.Since(t0)))
				m.hBatch.Observe(int64(len(batch.Events)))
				continue
			}
			if batch.LogEnd < pos {
				// Diverged: this replica carries records the leader never
				// acked (an un-replicated tail from before a failover).
				// Truncate to the leader's end and re-fetch.
				_ = log.Truncate(batch.LogEnd)
				continue
			}
			// Caught up (the long poll lapsed empty); loop re-fetches.
			// A LogStart above pos needs no action here: the next
			// fetch returns the post-gap records and AppendReplicated
			// rolls the local log over the gap.
		case errors.Is(err, broker.ErrFencedEpoch):
			// A newer leader exists. Adopt the new epoch; if the local
			// log diverged, the next fetch's LogEnd reconciles it.
			newEpoch, stillFollower := m.follows(tp)
			if !stillFollower {
				return
			}
			epoch = newEpoch
		default:
			// Leader unavailable, re-election in progress, transport
			// trouble: back off and retry. The epoch may have moved.
			if e, stillFollower := m.follows(tp); stillFollower {
				epoch = e
			} else {
				return
			}
			if !sleepOr(m.cfg.RetryBackoff, l.stop) {
				return
			}
		}
	}
}

// Lag reports the follower's local lag behind the leader for tp: the
// leader log end minus the local log end. Observability only.
func (m *Manager) Lag(tp broker.TP) (int64, error) {
	log, err := m.f.BrokerLog(m.brokerID, tp.Topic, tp.Partition)
	if err != nil {
		return 0, err
	}
	leader, _, err := m.f.LeaderLogInfo(tp.Topic, tp.Partition)
	if err != nil {
		return 0, err
	}
	lag := leader.EndOffset() - log.EndOffset()
	if lag < 0 {
		lag = 0
	}
	return lag, nil
}
