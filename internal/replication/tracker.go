package replication

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/metrics"
)

// Tracker is the leader/controller half of replication, attached to
// the fabric via Fabric.SetReplicator. One Tracker serves the whole
// fabric (it is keyed by partition, not broker): the paper's
// controller tracks follower progress for every partition, and the
// per-broker wire servers all dispatch into it.
type Tracker struct {
	f   *broker.Fabric
	cfg Config

	mu    sync.Mutex
	parts map[broker.TP]*partState

	// underRepl gauges the number of tracked partitions whose ISR is
	// smaller than their replica set.
	underRepl *metrics.Gauge
	// Pre-resolved hot-path histograms (see ISSUE 10): HW advance batch
	// sizes, acks=all wait latency, and leader-side replica fetch batch
	// sizes. Resolved once; the tracker never touches the registry map
	// on a produce or fetch path.
	hHwAdvance    *metrics.BucketHist
	hCommitWaitNs *metrics.BucketHist
	hFetchServed  *metrics.BucketHist
}

// partState is one partition's tracked replication state.
type partState struct {
	// Metadata cache, refreshed when the controller epoch moves.
	metaEpoch   int64
	leaderEpoch int64
	leader      int
	isr         []int
	replicas    int

	// leaderLEO is the leader's log end; followers maps each follower
	// broker to the log end it has acked (via fetch offset or explicit
	// ack).
	leaderLEO int64
	followers map[int]int64
	// hw is the partition high watermark: max(previous hw, min over
	// ISR members' tracked LEOs). Monotonic.
	hw int64
	// waitCh wakes WaitCommitted callers on HW advance; nil when no
	// one waits.
	waitCh chan struct{}

	hwGauge *metrics.Gauge
	lag     map[int]*metrics.Gauge
}

// NewTracker creates the tracker for a fabric. Attach it with
// f.SetReplicator(t).
func NewTracker(f *broker.Fabric, cfg Config) *Tracker {
	cfg.fill()
	return &Tracker{
		f: f, cfg: cfg,
		parts:         make(map[broker.TP]*partState),
		underRepl:     f.Metrics.Gauge("replication.under_replicated"),
		hHwAdvance:    f.Metrics.BucketHist("replication.hw_advance_events"),
		hCommitWaitNs: f.Metrics.BucketHist("replication.wait_committed_ns"),
		hFetchServed:  f.Metrics.BucketHist("replication.replica_fetch_events"),
	}
}

// stateLocked returns (creating and refreshing as needed) tp's state.
// Callers hold t.mu.
func (t *Tracker) stateLocked(tp broker.TP) *partState {
	st := t.parts[tp]
	if st == nil {
		st = &partState{
			metaEpoch: -1,
			followers: make(map[int]int64),
			hwGauge:   t.f.Metrics.Gauge(fmt.Sprintf("replication.hw.%s", tp)),
			lag:       make(map[int]*metrics.Gauge),
		}
		t.parts[tp] = st
		// Seed the leader LEO from the live log so a partition tracked
		// for the first time after appends (tracker attached late, or a
		// leader elected with data) does not report a zero log end.
		if log, _, err := t.f.LeaderLogInfo(tp.Topic, tp.Partition); err == nil {
			st.leaderLEO = log.EndOffset()
		}
	}
	t.refreshLocked(tp, st)
	return st
}

// refreshLocked re-reads the partition's metadata when the controller
// epoch moved since the last refresh, then recomputes the HW (an ISR
// shrink can advance it) and the under-replicated gauge.
func (t *Tracker) refreshLocked(tp broker.TP, st *partState) {
	e := t.f.Ctl.Epoch()
	if st.metaEpoch == e {
		return
	}
	meta, err := t.f.Ctl.Topic(tp.Topic)
	if err != nil || tp.Partition < 0 || tp.Partition >= len(meta.Partitions) {
		return
	}
	pm := &meta.Partitions[tp.Partition]
	st.metaEpoch = e
	st.leaderEpoch = pm.LeaderEpoch
	st.leader = pm.Leader
	st.isr = append(st.isr[:0], pm.ISR...)
	st.replicas = len(pm.Replicas)
	t.recomputeLocked(st)

	under := int64(0)
	for _, s := range t.parts {
		if s.metaEpoch >= 0 && len(s.isr) < s.replicas {
			under++
		}
	}
	t.underRepl.Set(under)
}

// recomputeLocked applies the HW advance rule and wakes committed-wait
// callers when it moved. Callers hold t.mu.
func (t *Tracker) recomputeLocked(st *partState) {
	if len(st.isr) == 0 {
		return
	}
	min := int64(-1)
	for _, id := range st.isr {
		leo := st.followers[id]
		if id == st.leader {
			leo = st.leaderLEO
		}
		if min < 0 || leo < min {
			min = leo
		}
	}
	if min > st.hw {
		// The advance size distribution answers "does the HW move in
		// produce-batch strides or crawl record by record" — the shape
		// behind the acks=all latency number.
		t.hHwAdvance.Observe(min - st.hw)
		st.hw = min
		st.hwGauge.Set(min)
		if st.waitCh != nil {
			close(st.waitCh)
			st.waitCh = nil
		}
	}
}

// lagGaugeLocked returns the per-follower lag gauge, creating it on
// first use.
func (t *Tracker) lagGaugeLocked(tp broker.TP, st *partState, followerID int) *metrics.Gauge {
	g := st.lag[followerID]
	if g == nil {
		g = t.f.Metrics.Gauge(fmt.Sprintf("replication.lag.%s.broker%d", tp, followerID))
		st.lag[followerID] = g
	}
	return g
}

// ackLocked records a follower's replicated log end and expands it
// back into the ISR once it has caught up to the leader's log end.
// Returns the controller expansion to run outside the lock (nil when
// none is due).
func (t *Tracker) ackLocked(tp broker.TP, st *partState, followerID int, leo int64) (expand bool) {
	if leo > st.followers[followerID] {
		st.followers[followerID] = leo
	}
	lag := st.leaderLEO - st.followers[followerID]
	if lag < 0 {
		lag = 0
	}
	t.lagGaugeLocked(tp, st, followerID).Set(lag)
	t.recomputeLocked(st)
	if followerID == st.leader || st.followers[followerID] < st.leaderLEO {
		return false
	}
	for _, id := range st.isr {
		if id == followerID {
			return false
		}
	}
	return true
}

// LeaderAppended implements broker.Replicator: the leader's own log
// end feeds the HW computation exactly like a follower ack.
func (t *Tracker) LeaderAppended(tp broker.TP, end int64) {
	t.mu.Lock()
	st := t.stateLocked(tp)
	if end > st.leaderLEO {
		st.leaderLEO = end
	}
	t.recomputeLocked(st)
	t.mu.Unlock()
}

// HighWatermark implements broker.Replicator.
func (t *Tracker) HighWatermark(tp broker.TP) (int64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.parts[tp]
	if st == nil {
		return 0, false
	}
	return st.hw, true
}

// WaitCommitted implements broker.Replicator: block until the HW
// passes lastOffset. On timeout, followers still below the batch are
// shrunk out of the ISR — but never below min.insync.replicas, where
// the wait fails with ErrNotEnoughReplicas instead. This doubles as
// the interop fallback: against peers without FeatReplication the
// followers never ack, the ISR shrinks to the leader, and (with the
// default min of 1) the cluster keeps serving as a single replica.
func (t *Tracker) WaitCommitted(tp broker.TP, lastOffset int64) error {
	t0 := time.Now()
	defer func() { t.hCommitWaitNs.Observe(int64(time.Since(t0))) }()
	timer := time.NewTimer(t.cfg.CommitTimeout)
	defer timer.Stop()
	for {
		t.mu.Lock()
		st := t.stateLocked(tp)
		if st.hw > lastOffset {
			t.mu.Unlock()
			return nil
		}
		if st.waitCh == nil {
			st.waitCh = make(chan struct{})
		}
		ch := st.waitCh
		t.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return t.evictLaggards(tp, lastOffset)
		}
	}
}

// evictLaggards shrinks ISR followers that have not replicated past
// lastOffset, stopping at min.insync.replicas, then re-checks the HW.
func (t *Tracker) evictLaggards(tp broker.TP, lastOffset int64) error {
	t.mu.Lock()
	st := t.stateLocked(tp)
	var laggards []int
	for _, id := range st.isr {
		if id != st.leader && st.followers[id] <= lastOffset {
			laggards = append(laggards, id)
		}
	}
	isrSize := len(st.isr)
	t.mu.Unlock()

	min := t.f.MinInsyncReplicas
	if min < 1 {
		min = 1
	}
	for _, id := range laggards {
		if isrSize <= min {
			break
		}
		if _, err := t.f.Ctl.ShrinkISR(tp.Topic, tp.Partition, id); err == nil {
			isrSize--
		}
	}

	t.mu.Lock()
	st = t.stateLocked(tp)
	hw := st.hw
	isrSize = len(st.isr)
	t.mu.Unlock()
	if hw > lastOffset {
		return nil
	}
	return fmt.Errorf("%w: hw %d after shrink, isr=%d min=%d",
		broker.ErrNotEnoughReplicas, hw, isrSize, min)
}

// fence validates a replication op's leader epoch against the
// partition's current one.
func fence(tp broker.TP, have, want int64) error {
	if have != want {
		return fmt.Errorf("%w: %s epoch %d, current %d", broker.ErrFencedEpoch, tp, have, want)
	}
	return nil
}

// ReplicaFetch implements broker.Replicator: serve one follower pull
// from the leader log. The fetch offset acks everything below it. A
// fetch outside the leader log's range is answered with empty events
// and the log's framing offsets — the follower reconciles (reset to
// LogStart, or truncate to LogEnd) and re-fetches.
func (t *Tracker) ReplicaFetch(followerID int, tp broker.TP, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, stop <-chan struct{}, dst []event.Event) (broker.ReplicaFetchResult, error) {
	log, curEpoch, err := t.f.LeaderLogInfo(tp.Topic, tp.Partition)
	if err != nil {
		return broker.ReplicaFetchResult{}, err
	}
	if err := fence(tp, epoch, curEpoch); err != nil {
		return broker.ReplicaFetchResult{}, err
	}

	t.mu.Lock()
	st := t.stateLocked(tp)
	if end := log.EndOffset(); end > st.leaderLEO {
		st.leaderLEO = end
	}
	expand := t.ackLocked(tp, st, followerID, offset)
	t.mu.Unlock()
	if expand {
		// Caught up: rejoin the ISR. Controller call outside t.mu — it
		// takes registry locks and bumps the epoch, which re-enters the
		// tracker through the next refresh.
		_, _ = t.f.Ctl.ExpandISR(tp.Topic, tp.Partition, followerID)
	}

	res := broker.ReplicaFetchResult{LeaderEpoch: curEpoch}
	evs, rerr := log.ReadBudgetInto(offset, maxEvents, maxBytes, dst)
	if rerr == nil && len(evs) == 0 && wait > 0 {
		// Caught up: park on the leader's tail waiter like a long-poll
		// consumer, then take one more non-blocking read.
		if _, werr := log.WaitAppend(offset, wait, stop); werr == nil {
			evs, rerr = log.ReadBudgetInto(offset, maxEvents, maxBytes, dst)
		}
	}
	if rerr == nil {
		res.Events = evs
		if len(evs) > 0 {
			// Data-carrying serves only: a lapsed long poll says nothing
			// about replication batch sizing.
			t.hFetchServed.Observe(int64(len(evs)))
		}
	}
	// Out-of-range reads fall through with no events: the framing
	// offsets below tell the follower how to reconcile.
	hw, _ := t.HighWatermark(tp)
	res.HighWatermark = hw
	res.LogStart = log.StartOffset()
	res.LogEnd = log.EndOffset()
	return res, nil
}

// ReplicaAck implements broker.Replicator: an explicit post-append ack
// that advances the HW without waiting for the follower's next fetch.
func (t *Tracker) ReplicaAck(followerID int, tp broker.TP, epoch, leo int64) error {
	_, curEpoch, err := t.f.LeaderLogInfo(tp.Topic, tp.Partition)
	if err != nil {
		return err
	}
	if err := fence(tp, epoch, curEpoch); err != nil {
		return err
	}
	t.mu.Lock()
	st := t.stateLocked(tp)
	expand := t.ackLocked(tp, st, followerID, leo)
	t.mu.Unlock()
	if expand {
		_, _ = t.f.Ctl.ExpandISR(tp.Topic, tp.Partition, followerID)
	}
	return nil
}

// Status implements broker.Replicator.
func (t *Tracker) Status(tp broker.TP) (broker.ReplicaStatus, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.parts[tp]
	if st == nil {
		return broker.ReplicaStatus{}, false
	}
	t.refreshLocked(tp, st)
	s := broker.ReplicaStatus{
		LeaderEpoch:   st.leaderEpoch,
		HighWatermark: st.hw,
		LogEnd:        st.leaderLEO,
	}
	for id, leo := range st.followers {
		s.Followers = append(s.Followers, broker.FollowerState{Broker: id, LogEnd: leo})
	}
	sort.Slice(s.Followers, func(i, j int) bool { return s.Followers[i].Broker < s.Followers[j].Broker })
	return s, true
}
