// Package replication is the inter-broker replication subsystem: the
// machinery that turns the fabric's per-broker replica logs into a
// replicated partition with Kafka's guarantees (§IV-A of the paper).
//
// It splits into two halves:
//
//   - Tracker (tracker.go) is the leader/controller side, attached to
//     the fabric as its broker.Replicator. It tracks every follower's
//     replicated log end offset (fetch offsets double as acks),
//     advances each partition's high watermark — the largest offset
//     every in-sync replica has durably appended — and gates acks=all
//     produces on it. Followers that stop keeping up are shrunk out of
//     the ISR (down to min.insync.replicas, below which acks=all fails
//     with ErrNotEnoughReplicas); followers that catch back up to the
//     leader's log end are expanded back in.
//
//   - Manager (manager.go) is the follower side, one per broker. It
//     watches the controller's metadata epoch and runs one fetch loop
//     per partition its broker follows: pull a batch from the leader
//     at the local log end (over wire-v2 OpReplicaFetch in a real
//     cluster, or in-process for tests), append it preserving the
//     leader-assigned offsets, and ack the new log end. Every fetch is
//     fenced by the leader epoch: a deposed leader rejects stale
//     fetches with ErrFencedEpoch, and a fenced (or diverged) follower
//     truncates its log to the new leader's end before re-fetching.
//
// High-watermark advance rule: HW = max(previous HW, min over ISR
// members of their tracked log end). The min makes acks=all mean
// "every in-sync replica has it"; the max keeps the HW monotonic
// across ISR changes, so a shrink never un-commits acked records.
package replication

import "time"

// Config tunes both halves of the subsystem. The zero value is ready
// for use; fill() applies the defaults.
type Config struct {
	// CommitTimeout bounds WaitCommitted: an acks=all produce whose
	// followers have not replicated the batch within it shrinks the
	// laggards out of the ISR and re-evaluates (default 2s).
	CommitTimeout time.Duration
	// MaxEvents and MaxBytes bound one replica fetch batch
	// (defaults 2048 events, 1 MiB).
	MaxEvents int
	MaxBytes  int
	// FetchWait is the follower's long-poll: a caught-up follower
	// parks on the leader's tail waiter this long instead of spinning
	// (default 200ms).
	FetchWait time.Duration
	// RetryBackoff paces a fetch loop after an error (default 20ms).
	RetryBackoff time.Duration
}

func (c *Config) fill() {
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 2 * time.Second
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2048
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 20
	}
	if c.FetchWait <= 0 {
		c.FetchWait = 200 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
}
