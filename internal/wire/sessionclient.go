// Client side of multiplexed fetch sessions: many topic-partitions
// behind one session per connection (FeatSessionFetch), behind the same
// BufferedFetcher surface as streams and plain fetch.
//
// Where the stream path (streamclient.go) opens one stream — and the
// server one pump goroutine — per topic-partition, the session path
// opens ONE session per connection and adds a subscription per
// topic-partition to it. The server runs a single pump for the whole
// session under one shared byte window, so a consumer subscribed to 64
// partitions on one connection costs the broker one goroutine, not 64.
// Pushed batches arrive tagged sessionID<<32|subID; the connection's
// reader demultiplexes them into per-sub queues, and consumers drain
// those exactly as they drain stream frames — double-buffered decode,
// recycled frames, zero request round trips at steady state.
//
// Subscription changes ride the live session: a seek is a one-way
// remove of the old sub plus an add under a fresh sub ID (in-flight
// frames for the old position hit the unknown-sub path and are
// refunded, never misread), and pushed-metadata re-routes remove a
// moved partition's sub the moment the client adopts the new table.
// Against peers without the feature the first session open comes back
// as an unknown op and the connection latches back to the stream path.
package wire

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
)

// errSessionEnded reports a server-side whole-session close without a
// carried error; the next fetch opens a fresh session.
var errSessionEnded = errors.New("wire: session ended by server")

// errSessionSubEnded reports a subscription that ended (removed by a
// re-route, or a clean server-side close); the next fetch re-subscribes.
var errSessionSubEnded = errors.New("wire: session subscription ended")

// clientSession is one connection's multiplexed fetch session.
type clientSession struct {
	wc *wireConn
	id uint64
	// window is the granted shared byte window (server-clamped).
	window int

	// queued counts frames demultiplexed but not yet taken, across all
	// subs — bounded by the window (every pushed frame costs ≥ 1 byte
	// of it), enforced against protocol-violating peers.
	queued atomic.Int64

	mu       sync.Mutex
	err      error // session-fatal: pushed whole-session close
	subsByID map[uint32]*clientSub
	subsByTP map[streamKey]*clientSub
	nextSub  uint32
	// consumedBytes accumulates un-granted consumption; grants return
	// it at half-window granularity (see noteConsumed).
	consumedBytes int
}

// clientSub is one subscription of a session: a demux queue filled by
// the reader goroutine plus the same double-buffered decode/serve state
// a clientStream keeps. qmu guards the queue side (reader vs consumer);
// mu guards the decode/serve side (consumer only, like clientStream).
type clientSub struct {
	sess      *clientSession
	subID     uint32
	topic     string
	partition int

	qmu   sync.Mutex
	queue []*streamFrame
	free  []*streamFrame
	// qbytes approximates the shared window held by queued frames
	// (payload bytes), so a starved consumer can find which idle subs
	// are sitting on the window (see reclaimFor).
	qbytes int
	// adopted is the window charge of decoded-but-unserved events: added
	// when pullFrame adopts a frame, drained as events are handed out,
	// refunded whole when the sub is removed. Without it a sub that
	// decodes a batch and is then seeked away (or never polled again)
	// would hold that window forever.
	adopted int
	// qerr poisons the queue (sub removed locally); removed gates
	// late-arriving frames into the refund path.
	qerr    error
	removed bool
	// wake is signaled (cap-1, coalescing) on every push and on
	// session failure, so a parked consumer re-checks the queue.
	wake chan struct{}

	mu         sync.Mutex
	gen        int
	frameSlots [2]*streamFrame
	evBufs     [2][]event.Event
	evs        []event.Event
	idx        int
	// next is the offset the consumer is expected to ask for next.
	next      int64
	hw, start int64
	err       error
}

// sessionEnabled reports whether this connection negotiated
// FeatSessionFetch and has not since learned the server refuses opens.
func (wc *wireConn) sessionEnabled() bool {
	wc.mu.Lock()
	ok := wc.version >= ProtocolV2 && wc.features&FeatSessionFetch != 0 && wc.err == nil
	wc.mu.Unlock()
	if !ok {
		return false
	}
	wc.sessMu.Lock()
	defer wc.sessMu.Unlock()
	return !wc.noSessions
}

// sessionFor returns the connection's session, opening one on first
// use (or after a session-fatal error). ok=false means the server
// refuses session opens and the caller must fall back to streams.
// Opens are serialized on sessOpenMu, which is never held where the
// reader goroutine could need it — the reader only takes sessMu.
func (wc *wireConn) sessionFor(windowBytes, maxEvents, maxBytes int) (sess *clientSession, err error, ok bool) {
	wc.sessOpenMu.Lock()
	defer wc.sessOpenMu.Unlock()
	wc.sessMu.Lock()
	sess, no := wc.session, wc.noSessions
	wc.sessMu.Unlock()
	if no {
		return nil, nil, false
	}
	if sess != nil {
		if sess.errNow() == nil {
			return sess, nil, true
		}
		// Session-fatal error: discard and open a fresh one below.
		wc.sessMu.Lock()
		if wc.session == sess {
			wc.session = nil
		}
		wc.sessMu.Unlock()
	}
	wc.sessMu.Lock()
	// Session IDs share the pushed-frame correlation word with sub IDs:
	// 32 bits, nonzero.
	wc.nextSessID++
	if uint32(wc.nextSessID) == 0 {
		wc.nextSessID++
	}
	id := uint64(uint32(wc.nextSessID))
	sess = &clientSession{
		wc: wc, id: id, window: windowBytes,
		subsByID: make(map[uint32]*clientSub),
		subsByTP: make(map[streamKey]*clientSub),
	}
	// Registered before the open request goes out, so the reader can
	// route frames the moment the server starts pushing.
	wc.session = sess
	wc.sessMu.Unlock()

	req := &SessionOpenReq{ID: id, MaxEvents: maxEvents, MaxBytes: maxBytes, CreditBytes: windowBytes}
	var resp SessionOpenResp
	cl := &call{op: req.V2Op(), req: req, resp: &resp, done: make(chan struct{})}
	oerr := wc.do(cl)
	if oerr == nil {
		oerr = cl.srvErr
	}
	if oerr != nil {
		wc.sessMu.Lock()
		if wc.session == sess {
			wc.session = nil
		}
		if errors.Is(oerr, errUnknownOp) {
			// The server negotiated the feature away (or predates it):
			// remember and fall back for the connection's lifetime.
			wc.noSessions = true
			wc.sessMu.Unlock()
			return nil, nil, false
		}
		wc.sessMu.Unlock()
		return nil, oerr, true
	}
	sess.mu.Lock()
	sess.window = resp.CreditBytes
	sess.mu.Unlock()
	return sess, nil, true
}

func (sess *clientSession) errNow() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.err
}

// failSession poisons the session (pushed whole-session close) and
// wakes every parked consumer.
func (sess *clientSession) failSession(err error) {
	sess.mu.Lock()
	if sess.err == nil {
		sess.err = err
	}
	subs := make([]*clientSub, 0, len(sess.subsByID))
	for _, sub := range sess.subsByID {
		subs = append(subs, sub)
	}
	sess.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.wake <- struct{}{}:
		default:
		}
	}
}

func (sess *clientSession) subFor(k streamKey) *clientSub {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.subsByTP[k]
}

// addSub registers a new subscription and subscribes it server-side.
// The sub is registered before the request goes out: the first pushed
// batch can be hot on the heels of the sub response.
func (sess *clientSession) addSub(topic string, partition int, offset int64) (*clientSub, error) {
	sess.mu.Lock()
	if sess.err != nil {
		err := sess.err
		sess.mu.Unlock()
		return nil, err
	}
	sess.nextSub++
	if sess.nextSub == 0 {
		sess.nextSub = 1
	}
	sub := &clientSub{
		sess: sess, subID: sess.nextSub, topic: topic, partition: partition,
		next: offset, wake: make(chan struct{}, 1),
	}
	k := streamKey{topic, partition}
	if old := sess.subsByTP[k]; old != nil {
		// Replace a stale sub (concurrent misuse or a seek race).
		delete(sess.subsByID, old.subID)
	}
	sess.subsByID[sub.subID] = sub
	sess.subsByTP[k] = sub
	sess.mu.Unlock()

	req := &SessionSubReq{
		SessionID: sess.id, SubID: sub.subID,
		Topic: topic, Partition: partition, Offset: offset,
	}
	var resp SessionSubResp
	cl := &call{op: req.V2Op(), req: req, resp: &resp, done: make(chan struct{})}
	err := sess.wc.do(cl)
	if err == nil {
		err = cl.srvErr
	}
	if err != nil {
		sess.removeSub(sub, false)
		return nil, err
	}
	sub.hw, sub.start = resp.HighWatermark, resp.StartOffset
	return sub, nil
}

// removeSub drops a subscription: unregister, poison and drain its
// queue (refunding the drained frames' window charge — the server
// already debited them), and optionally send the one-way server-side
// remove. The server answers every sub request, but with no pending
// correlation entry the response is dropped by the reader — the
// one-way convention for removes. Never takes sub.mu, so it is safe
// from the reader goroutine even while a consumer is mid-serve.
func (sess *clientSession) removeSub(sub *clientSub, sendRemove bool) {
	sess.mu.Lock()
	if sess.subsByID[sub.subID] == sub {
		delete(sess.subsByID, sub.subID)
	}
	k := streamKey{sub.topic, sub.partition}
	if sess.subsByTP[k] == sub {
		delete(sess.subsByTP, k)
	}
	sess.mu.Unlock()

	sub.qmu.Lock()
	q := sub.queue
	sub.queue = nil
	sub.qbytes = 0
	refund := sub.adopted
	sub.adopted = 0
	sub.removed = true
	if sub.qerr == nil {
		sub.qerr = errSessionSubEnded
	}
	sub.qmu.Unlock()
	select {
	case sub.wake <- struct{}{}:
	default:
	}
	for _, f := range q {
		sess.queued.Add(-1)
		if f.err == nil {
			if n, err := sessionFrameCharge(&f.hdr, f.data); err == nil {
				refund += n
			}
		}
	}
	// Refunds may race with a consumer still serving this sub's decoded
	// events (which grants normally): the server clamps grants at the
	// window cap, so over-granting is harmless where under-granting
	// would wedge the session.
	sess.noteConsumed(refund)
	if sendRemove {
		_ = sess.wc.sendOneway(&SessionSubReq{SessionID: sess.id, SubID: sub.subID, Remove: true})
	}
}

// noteConsumed accumulates consumed window and grants it back once
// half the window is outstanding — batched one-way grants, as on the
// stream path, so flow control costs a fraction of a frame per batch.
func (sess *clientSession) noteConsumed(nbytes int) {
	if nbytes <= 0 {
		return
	}
	sess.mu.Lock()
	sess.consumedBytes += nbytes
	if 2*sess.consumedBytes < sess.window {
		sess.mu.Unlock()
		return
	}
	if sess.wc.sendOneway(&SessionCreditReq{SessionID: sess.id, CreditBytes: sess.consumedBytes}) == nil {
		sess.consumedBytes = 0
	}
	sess.mu.Unlock()
}

// flushCredit grants any accumulated consumed window immediately,
// bypassing the half-window batching. Called before a consumer blocks
// waiting for frames: when the other subscriptions' queued frames hold
// most of the shared window, the batched threshold may never trip, and
// without the flush the server would never regain the credit it needs
// to serve the one partition this consumer is actually waiting on.
func (sess *clientSession) flushCredit() {
	sess.mu.Lock()
	if n := sess.consumedBytes; n > 0 {
		if sess.wc.sendOneway(&SessionCreditReq{SessionID: sess.id, CreditBytes: n}) == nil {
			sess.consumedBytes = 0
		}
	}
	sess.mu.Unlock()
}

// reclaimFor breaks shared-window starvation for a consumer that is
// waiting on data the server is known to hold (its offset is below the
// high watermark) while the rest of the window sits in other subs'
// queued-but-unconsumed frames. The pump round-robins, so once the
// idle subs' queues have soaked up the window, a refunded byte goes
// right back to them and the waiting sub never gets served. The cure
// is eviction: remove the sub holding the most queued bytes (a full
// removal — its frames are refunded and its owner re-subscribes on its
// next fetch, exactly the seek path), until the idle hold is under half
// the window. Consumers that actually drain never queue enough to be
// picked; only abandoned subscriptions lose their place.
func (sess *clientSession) reclaimFor(waiting *clientSub) {
	for {
		sess.mu.Lock()
		if sess.err != nil {
			sess.mu.Unlock()
			return
		}
		window := sess.window
		held := 0
		var victim *clientSub
		victimBytes := 0
		for _, sub := range sess.subsByID {
			if sub == waiting {
				continue
			}
			sub.qmu.Lock()
			b := sub.qbytes + sub.adopted
			sub.qmu.Unlock()
			held += b
			if b > victimBytes {
				victim, victimBytes = sub, b
			}
		}
		sess.mu.Unlock()
		if victim == nil || victimBytes == 0 || 2*held < window {
			return
		}
		sess.removeSub(victim, true)
	}
}

// sessionFrameCharge recomputes a pushed frame's window charge from its
// undecoded payload — the refund path for frames dropped before decode.
func sessionFrameCharge(hdr *FetchResp, data []byte) (int, error) {
	evs, _, err := event.AppendUnmarshalBatch(nil, data, hdr.NumEvents)
	if err != nil {
		return 0, err
	}
	return sessionBatchSize(evs), nil
}

// --- reader-side demux ---

// handleSessionPush routes one pushed session frame (batch or close)
// from the reader goroutine into its sub's queue. A non-nil return is
// a connection-level protocol failure.
func (wc *wireConn) handleSessionPush(op, code uint8, corr uint64, body []byte) error {
	sid, subID := splitSessCorr(corr)
	wc.sessMu.Lock()
	sess := wc.session
	wc.sessMu.Unlock()
	if sess == nil || sess.id != sid {
		// A previous session's in-flight frame: consume the payload to
		// keep framing intact, then drop. Its server side is gone, so
		// there is no window to refund.
		_, err := ReadPayloadInto(wc.rd, nil)
		return err
	}
	if subID == 0 {
		// Whole-session close.
		serr := errSessionEnded
		if code != codeOK {
			if detail, _, derr := getStr(body); derr != nil {
				serr = derr
			} else {
				serr = errFromCode(code, detail)
			}
		}
		if _, err := ReadPayloadInto(wc.rd, nil); err != nil {
			return err
		}
		sess.failSession(serr)
		return nil
	}
	sess.mu.Lock()
	sub := sess.subsByID[subID]
	sess.mu.Unlock()
	if sub == nil {
		return sess.dropPushed(wc, op, code, body)
	}
	f := sub.getFrame()
	switch {
	case code != codeOK:
		// Server-side sub close carrying the typed error.
		if detail, _, derr := getStr(body); derr != nil {
			f.err = derr
		} else {
			f.err = errFromCode(code, detail)
		}
	case op == v2OpSessionClose:
		// Clean server-side sub close: retriable, the next fetch
		// re-subscribes.
		f.err = errSessionSubEnded
	default:
		if err := f.hdr.DecodeBody(body); err != nil {
			return err
		}
	}
	data, err := ReadPayloadInto(wc.rd, f.data[:0])
	if err != nil {
		return err
	}
	if data != nil {
		f.data = data
	} else {
		f.data = f.data[:0]
	}
	if sess.queued.Add(1) > int64(sess.window)+2 {
		// More un-taken frames than the window could ever have paid
		// for: the server is ignoring flow control.
		return errSession
	}
	sub.qmu.Lock()
	if sub.removed {
		sub.qmu.Unlock()
		sess.queued.Add(-1)
		// Removed while the frame was in flight: refund its charge.
		if f.err == nil {
			if n, cerr := sessionFrameCharge(&f.hdr, f.data); cerr == nil {
				sess.noteConsumed(n)
			}
		}
		return nil
	}
	sub.queue = append(sub.queue, f)
	sub.qbytes += len(f.data)
	sub.qmu.Unlock()
	select {
	case sub.wake <- struct{}{}:
	default:
	}
	return nil
}

// dropPushed consumes and refunds a pushed batch for a sub the session
// no longer knows (removed, or replaced by a seek): the server charged
// the window when it pushed, so the drop must give the charge back.
func (sess *clientSession) dropPushed(wc *wireConn, op, code uint8, body []byte) error {
	if code != codeOK || op == v2OpSessionClose {
		_, err := ReadPayloadInto(wc.rd, nil)
		return err
	}
	var hdr FetchResp
	if err := hdr.DecodeBody(body); err != nil {
		return err
	}
	data, err := ReadPayloadInto(wc.rd, nil)
	if err != nil {
		return err
	}
	if n, cerr := sessionFrameCharge(&hdr, data); cerr == nil {
		sess.noteConsumed(n)
	}
	return nil
}

// --- consumer side ---

func (s *clientSub) getFrame() *streamFrame {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		f.err = nil
		return f
	}
	return &streamFrame{}
}

func (s *clientSub) putFrame(f *streamFrame) {
	if f == nil {
		return
	}
	if cap(f.data) > maxPooledFrame {
		f.data = nil
	}
	s.qmu.Lock()
	s.free = append(s.free, f)
	s.qmu.Unlock()
}

// takeFrame dequeues the next pushed frame, or reports the queue's
// poison error when it is empty and the sub was removed.
func (s *clientSub) takeFrame() (*streamFrame, error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if len(s.queue) > 0 {
		f := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.qbytes -= len(f.data)
		s.sess.queued.Add(-1)
		return f, nil
	}
	return nil, s.qerr
}

// fetchSession serves one FetchBuffered call from the connection's
// multiplexed session. handled=false means sessions are unavailable on
// this connection (the server refused the open as an unknown op) and
// the caller must fall back to the stream path.
func (c *Client) fetchSession(wc *wireConn, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration) (broker.FetchResult, error, bool) {
	// The session's push batch bounds are the server's defaults, not this
	// call's limits: one session serves every later fetch on the
	// connection, and the per-call maxEvents cap is applied client-side
	// when decoded events are handed out. Pinning batches to the first
	// caller's (possibly tiny) maxEvents would multiply the frame count —
	// and the per-frame cost — for everyone else.
	sess, err, ok := wc.sessionFor(c.opts.StreamWindowBytes, 0, 0)
	if !ok {
		return broker.FetchResult{}, nil, false
	}
	if err != nil {
		return broker.FetchResult{}, err, true
	}
	sub := sess.subFor(streamKey{topic, partition})
	if sub != nil {
		sub.mu.Lock()
		if sub.err != nil {
			serr := sub.err
			sub.mu.Unlock()
			sess.removeSub(sub, false)
			if errors.Is(serr, errSessionSubEnded) {
				// Clean end: re-subscribe below instead of surfacing.
				sub = nil
			} else {
				return broker.FetchResult{}, serr, true
			}
		} else if sub.next != offset {
			// Seek or rebalance: remove and re-subscribe at the new
			// offset under a fresh sub ID, so in-flight frames for the
			// old position can never be misread as the new one.
			sub.mu.Unlock()
			sess.removeSub(sub, true)
			sub = nil
		} else {
			defer sub.mu.Unlock()
		}
	}
	if sub == nil {
		var aerr error
		sub, aerr = sess.addSub(topic, partition, offset)
		if aerr != nil {
			return broker.FetchResult{}, aerr, true
		}
		sub.mu.Lock()
		defer sub.mu.Unlock()
	}

	if sub.idx >= len(sub.evs) {
		if perr := sub.pullFrame(wait); perr != nil {
			sess.removeSub(sub, false)
			if errors.Is(perr, errSessionSubEnded) {
				return broker.FetchResult{Events: nil, HighWatermark: sub.hw, StartOffset: sub.start}, nil, true
			}
			return broker.FetchResult{}, perr, true
		}
	}
	if sub.idx >= len(sub.evs) {
		// Nothing pushed (yet): an empty poll, exactly like an empty
		// request/response fetch.
		return broker.FetchResult{Events: nil, HighWatermark: sub.hw, StartOffset: sub.start}, nil, true
	}
	n := len(sub.evs) - sub.idx
	if maxEvents > 0 && n > maxEvents {
		n = maxEvents
	}
	out := sub.evs[sub.idx : sub.idx+n]
	sub.idx += n
	sub.next = out[n-1].Offset + 1
	// Grant the shared window back in the server's own unit: payload
	// bytes plus one per event (sessionBatchSize). The served slice
	// leaves the adopted ledger (floored: a concurrent removal may have
	// refunded it already, and the server clamps over-grants anyway).
	grant := eventsSize(out) + n
	sub.qmu.Lock()
	if sub.adopted -= grant; sub.adopted < 0 {
		sub.adopted = 0
	}
	sub.qmu.Unlock()
	sess.noteConsumed(grant)
	return broker.FetchResult{Events: out, HighWatermark: sub.hw, StartOffset: sub.start}, nil, true
}

// pullFrame adopts the next pushed frame into the serve position,
// blocking up to wait when the queue is empty. Returning nil with an
// unchanged s.idx/s.evs means no data arrived. Callers hold s.mu.
func (s *clientSub) pullFrame(wait time.Duration) error {
	f, qerr := s.takeFrame()
	if f == nil && qerr == nil {
		if err := s.sess.errNow(); err != nil {
			return err
		}
		if err := s.sess.wc.errNow(); err != nil {
			return err
		}
		if wait <= 0 {
			return nil
		}
		// About to park while the server holds data for this sub: first
		// evict idle subs sitting on the shared window (they would soak
		// up any credit the server regains), then return any outstanding
		// window, so the wait is for the server's push, never for a
		// grant that the batching threshold would otherwise withhold.
		if s.next < s.hw {
			s.sess.reclaimFor(s)
		}
		s.sess.flushCredit()
		timer := time.NewTimer(wait)
		defer timer.Stop()
		for f == nil {
			select {
			case <-s.wake:
			case <-s.sess.wc.done:
				return s.sess.wc.errNow()
			case <-timer.C:
				return nil
			}
			f, qerr = s.takeFrame()
			if f == nil {
				if qerr != nil {
					break
				}
				if err := s.sess.errNow(); err != nil {
					return err
				}
			}
		}
	}
	if f == nil {
		s.err = qerr
		return qerr
	}
	if f.err != nil {
		err := f.err
		s.putFrame(f)
		s.err = err
		return err
	}
	g := s.gen ^ 1
	evs, pos, err := event.AppendUnmarshalBatch(s.evBufs[g][:0], f.data, f.hdr.NumEvents)
	if err != nil {
		s.putFrame(f)
		return err
	}
	if pos != len(f.data) {
		s.putFrame(f)
		return errShortMsg
	}
	f.hdr.Stamp(evs, s.topic, s.partition)
	// The decoded batch's window charge moves from the queue ledger to
	// the adopted ledger; if the sub was removed while we decoded (its
	// queue was already drained and refunded, but this frame had left
	// the queue), refund it directly instead.
	charge := sessionBatchSize(evs)
	s.qmu.Lock()
	removed := s.removed
	if !removed {
		s.adopted += charge
	}
	s.qmu.Unlock()
	if removed {
		s.sess.noteConsumed(charge)
	}
	// Recycle the frame from two pulls ago — the previous frame's data
	// is still backing events the application may be processing.
	s.putFrame(s.frameSlots[g])
	s.frameSlots[g] = f
	s.evBufs[g] = evs
	s.gen = g
	s.evs = evs
	s.idx = 0
	s.hw, s.start = f.hdr.HighWatermark, f.hdr.StartOffset
	return nil
}
