package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// fuzzReqSeeds returns one populated instance of every v2 request
// message — the round-trip table and the fuzz corpus.
func fuzzReqSeeds() []ReqMsg {
	return []ReqMsg{
		&PingReq{},
		&AuthReq{AccessKeyID: "AKIA123", Secret: "s3cret"},
		&ProduceReq{Topic: "t", Partition: -1, Acks: -1, NumEvents: 64},
		&FetchReq{Topic: "telemetry", Partition: 3, Offset: 1 << 40, MaxEvents: 500, MaxBytes: 2 << 20},
		&EndOffsetReq{Topic: "t", Partition: 1},
		&StartOffsetReq{Topic: "t", Partition: 0},
		&OffsetForTimeReq{Topic: "t", Partition: 2, TimeNano: -7},
		&TopicMetaReq{Topic: "meta-topic"},
		&JoinGroupReq{Group: "g", Member: "m-1", Topics: []string{"a", "b", "c"}},
		&LeaveGroupReq{Group: "g", Member: "m-1"},
		&HeartbeatReq{Group: "g", Member: "m-1"},
		&CommitReq{Group: "g", Member: "m", Generation: 4, Topic: "t", Partition: 1, Offset: 99},
		&CommittedReq{Group: "g", Topic: "t", Partition: 1},
		&FetchReq{Topic: "lp", Partition: 0, Offset: 12, MaxEvents: 100, MaxBytes: 1 << 20, WaitMaxMS: 2500},
		&StreamOpenReq{ID: 9, Topic: "st", Partition: 2, Offset: 1 << 33, MaxEvents: 500, MaxBytes: 2 << 20, Credit: 2000},
		&StreamCreditReq{ID: 9, Credit: 512},
		&StreamCloseReq{ID: 9},
		&StreamOpenReq{ID: 10, Topic: "bw", Offset: 5, MaxEvents: 100, MaxBytes: 1 << 20, Credit: 400, CreditBytes: 1 << 20},
		&StreamCreditReq{ID: 10, Credit: 64, CreditBytes: 65536},
		&MetadataReq{},
		&MetadataReq{Topics: []string{"a", "b"}},
		&SessionOpenReq{ID: 3, MaxEvents: 500, MaxBytes: 1 << 20, CreditBytes: 1 << 20},
		&SessionSubReq{SessionID: 3, SubID: 12, Topic: "sess", Partition: 5, Offset: 1 << 34},
		&SessionSubReq{SessionID: 3, SubID: 12, Remove: true},
		&SessionCreditReq{SessionID: 3, CreditBytes: 65536},
		&SessionCloseReq{SessionID: 3},
		&ReplicaFetchReq{Topic: "rt", Partition: 2, Follower: 1, LeaderEpoch: 9, Offset: 1 << 30, MaxEvents: 500, MaxBytes: 4 << 20, WaitMaxMS: 250},
		&ReplicaAckReq{Topic: "rt", Partition: 2, Follower: 1, LeaderEpoch: 9, LogEnd: 1 << 30},
		&StatsReq{},
	}
}

// fuzzRespSeeds returns (op, message) pairs covering every v2 response
// body shape.
func fuzzRespSeeds() []struct {
	op uint8
	m  Msg
} {
	fetch := &FetchResp{NumEvents: 5, HighWatermark: 100, StartOffset: 2}
	fetch.SetOffsets([]event.Event{{Offset: 10}, {Offset: 11}, {Offset: 12}, {Offset: 40}, {Offset: 41}})
	return []struct {
		op uint8
		m  Msg
	}{
		{v2OpPing, &EmptyResp{}},
		{v2OpAuth, &AuthResp{Identity: "alice"}},
		{v2OpProduce, &ProduceResp{Offset: 1234}},
		{v2OpFetch, fetch},
		{v2OpEndOffset, &OffsetResp{Offset: -1}},
		{v2OpTopicMeta, &TopicMetaResp{Meta: &cluster.TopicMeta{
			Name:   "t",
			Config: cluster.TopicConfig{Partitions: 2, ReplicationFactor: 2, Retention: time.Hour},
			Partitions: []cluster.PartitionMeta{
				{Topic: "t", ID: 0, Leader: 1, Replicas: []int{1, 0}, ISR: []int{1}},
			},
		}}},
		{v2OpJoinGroup, &JoinGroupResp{Generation: 3, Partitions: []broker.TP{{Topic: "t", Partition: 0}, {Topic: "t", Partition: 1}}}},
		{v2OpHeartbeat, &HeartbeatResp{Generation: 9}},
		{v2OpStreamOpen, &StreamOpenResp{HighWatermark: 512, StartOffset: 16}},
		{v2OpStreamBatch, func() Msg {
			b := &FetchResp{NumEvents: 3, HighWatermark: 40, StartOffset: 0}
			b.SetOffsets([]event.Event{{Offset: 20}, {Offset: 21}, {Offset: 30}})
			return b
		}()},
		{v2OpSessionOpen, &SessionOpenResp{CreditBytes: 1 << 20}},
		{v2OpSessionSub, &SessionSubResp{HighWatermark: 77, StartOffset: 4}},
		{v2OpSessionBatch, func() Msg {
			b := &FetchResp{NumEvents: 2, HighWatermark: 9, StartOffset: 0}
			b.SetOffsets([]event.Event{{Offset: 7}, {Offset: 8}})
			return b
		}()},
		{v2OpMetadataPush, &MetadataResp{
			Epoch:   7,
			Brokers: []BrokerMeta{{ID: 2, Addr: "10.0.0.3:9092", Up: true}},
			Topics: []TopicLeadership{{
				Name:       "p",
				Partitions: []PartitionLeadership{{Leader: 2, Replicas: []int{2}, ISR: []int{2}}},
			}},
		}},
		{v2OpMetadata, &MetadataResp{
			Epoch: 42,
			Brokers: []BrokerMeta{
				{ID: 0, Addr: "10.0.0.1:9092", Up: true},
				{ID: 1, Addr: "10.0.0.2:9092", Up: false},
			},
			Topics: []TopicLeadership{{
				Name: "t",
				Partitions: []PartitionLeadership{
					{Leader: 0, Replicas: []int{0, 1}, ISR: []int{0}},
					{Leader: -1, Replicas: []int{1, 0}, ISR: nil},
				},
			}},
		}},
		{v2OpMetadata, &MetadataResp{
			Epoch:   43,
			Brokers: []BrokerMeta{{ID: 0, Addr: "10.0.0.1:9092", Up: true}},
			Topics: []TopicLeadership{{
				Name:       "r",
				Partitions: []PartitionLeadership{{Leader: 0, Replicas: []int{0, 1, 2}, ISR: []int{0, 1}}},
			}},
			Replication: &MetadataReplication{Topics: []TopicReplication{{
				Name: "r",
				Partitions: []PartitionReplication{{
					ID: 0, LeaderEpoch: 3, HighWatermark: 90, LogEnd: 100,
					Followers: []ReplicaProgress{{Broker: 1, LogEnd: 90}, {Broker: 2, LogEnd: 40}},
				}},
			}}},
		}},
		{v2OpReplicaFetch, func() Msg {
			b := &ReplicaFetchResp{NumEvents: 4, LeaderEpoch: 9, HighWatermark: 62, LogStart: 8, LogEnd: 64}
			b.SetOffsets([]event.Event{{Offset: 60}, {Offset: 61}, {Offset: 62}, {Offset: 63}})
			return b
		}()},
		{v2OpReplicaAck, &EmptyResp{}},
		{v2OpStats, statsRespSeed()},
	}
}

// statsRespSeed returns a StatsResp exercising every section of the
// body: counters, gauges, sparse histograms, legacy summaries, and the
// produce stage-trace ring.
func statsRespSeed() *StatsResp {
	return &StatsResp{
		BrokerID: 1,
		Counters: []StatEntry{{Name: "fabric.produced", Value: 1234}, {Name: "fabric.bytes_in", Value: 1 << 33}},
		Gauges:   []StatEntry{{Name: "wire_sessions_open", Value: 3}},
		Hists: []StatHist{
			{Name: "fabric.produce_ns", Count: 10, Sum: 50_000,
				Buckets: []StatBucket{{Index: 64, Count: 7}, {Index: 129, Count: 3}}},
			{Name: "wire_fetch_ns", Count: 0, Sum: 0},
		},
		Summaries: []StatSummary{
			{Name: "fabric.e2e_ms", Count: 5, MeanMs: 1.5, MaxMs: 4, P50Ms: 1.25, P99Ms: 3.9, SumMs: 7.5},
		},
		TraceStages:  []string{"leader_append", "replication_hw", "ack"},
		TraceEvery:   128,
		TraceSampled: 2,
		Traces: []StatsTrace{
			{StartUnixNano: 1_700_000_000_000_000_000, StageNs: []int64{1000, 2000, 500}, Events: 16, Acks: -1},
			{StartUnixNano: 1_700_000_000_000_100_000, StageNs: []int64{900, 0, 400}, Events: 1, Acks: 1},
		},
	}
}

// TestV2RequestCodecRoundTrip proves every request message survives
// encode → decode → re-encode byte-identically.
func TestV2RequestCodecRoundTrip(t *testing.T) {
	for _, m := range fuzzReqSeeds() {
		enc := AppendRequestV2(nil, 42, m)
		corr, op, got, err := decodeAnyRequestV2(enc, nil)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if corr != 42 || op != m.V2Op() {
			t.Fatalf("%T: corr=%d op=%d", m, corr, op)
		}
		enc2 := AppendRequestV2(nil, corr, got)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%T: re-encode mismatch\n %x\n %x", m, enc, enc2)
		}
	}
}

// TestV2ResponseCodecRoundTrip proves every response message survives
// encode → decode → re-encode byte-identically.
func TestV2ResponseCodecRoundTrip(t *testing.T) {
	for _, seed := range fuzzRespSeeds() {
		enc := AppendResponseV2(nil, seed.op, 77, seed.m)
		got := newRespMsg(seed.op)
		op, corr, err := DecodeResponseV2(enc, got)
		if err != nil {
			t.Fatalf("op %d (%T): decode: %v", seed.op, seed.m, err)
		}
		if op != seed.op || corr != 77 {
			t.Fatalf("op %d: got op=%d corr=%d", seed.op, op, corr)
		}
		enc2 := AppendResponseV2(nil, op, corr, got)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("op %d (%T): re-encode mismatch\n %x\n %x", seed.op, seed.m, enc, enc2)
		}
	}
}

// TestV2ErrorCodesRoundTrip proves every sentinel survives the compact
// error-code encoding with errors.Is intact.
func TestV2ErrorCodesRoundTrip(t *testing.T) {
	sentinels := []error{
		broker.ErrLeaderUnavailable,
		broker.ErrNotEnoughReplicas,
		broker.ErrStaleGeneration,
		auth.ErrDenied,
		auth.ErrBadCredentials,
		cluster.ErrNoTopic,
		eventlog.ErrOffsetOutOfRange,
		broker.ErrNoPartition,
		broker.ErrUnknownMember,
		broker.ErrBrokerDown,
	}
	for _, want := range sentinels {
		wrapped := fmt.Errorf("%w: partition 3 details", want)
		enc := appendErrResponseV2(nil, v2OpFetch, 5, wrapped)
		_, _, err := DecodeResponseV2(enc, nil)
		if err == nil || !errors.Is(err, want) {
			t.Fatalf("sentinel %v lost: decoded %v", want, err)
		}
	}
	// Unclassified errors come back as plain errors with the detail.
	enc := appendErrResponseV2(nil, v2OpPing, 1, errors.New("weird failure"))
	_, _, err := DecodeResponseV2(enc, nil)
	if err == nil || err.Error() != "weird failure" {
		t.Fatalf("other-class error = %v", err)
	}
}

// TestFetchRespDenseRuns pins the offset encoding: a gapless batch is a
// single run (constant header size), gaps add runs, and Stamp
// reproduces the exact per-event offsets either way.
func TestFetchRespDenseRuns(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{5, 6, 7, 8},
		{10, 11, 40, 41, 42, 99},       // compaction gaps
		{3, 1, 2},                      // non-monotonic (defensive)
		{100, 102, 104, 106, 108, 110}, // every event its own run
	}
	for _, offs := range cases {
		evs := make([]event.Event, len(offs))
		for i, o := range offs {
			evs[i].Offset = o
		}
		var resp FetchResp
		resp.NumEvents = len(evs)
		resp.SetOffsets(evs)
		enc := resp.AppendBody(nil)
		var dec FetchResp
		if err := dec.DecodeBody(enc); err != nil {
			t.Fatalf("offsets %v: %v", offs, err)
		}
		got := make([]event.Event, len(offs))
		dec.Stamp(got, "t", 1)
		for i := range got {
			if got[i].Offset != offs[i] {
				t.Fatalf("offsets %v: event %d stamped %d", offs, i, got[i].Offset)
			}
			if got[i].Topic != "t" || got[i].Partition != 1 {
				t.Fatalf("offsets %v: routing not stamped", offs)
			}
		}
	}
	// The dense case must not scale with batch size: 10k consecutive
	// offsets encode as one run.
	evs := make([]event.Event, 10000)
	for i := range evs {
		evs[i].Offset = int64(1_000_000 + i)
	}
	var resp FetchResp
	resp.NumEvents = len(evs)
	resp.SetOffsets(evs)
	if n := len(resp.AppendBody(nil)); n > 32 {
		t.Fatalf("dense 10k-event offset encoding took %d bytes", n)
	}
}

// TestHeaderBoundIndependentOfPayloadBound is the MaxFrame-enforcement
// regression test: a header length near the old shared cap must be
// rejected before any allocation or read, on its own MaxHeader bound.
func TestHeaderBoundIndependentOfPayloadBound(t *testing.T) {
	// A frame claiming a 63 MiB header: under MaxFrame, far over
	// MaxHeader. ReadHeader must reject it from the length alone.
	frame := []byte{0x03, 0xf0, 0x00, 0x00} // 63 MiB, big endian
	var req Request
	err := ReadHeader(trackedReader{bytes.NewReader(frame)}, &req)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("63 MiB header accepted: %v", err)
	}
	// Write side: an over-sized header is refused symmetrically.
	var buf bytes.Buffer
	big := &Request{Op: OpProduce, Topic: strings.Repeat("x", MaxHeader+1)}
	if err := WriteFrame(&buf, big, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header written: %v", err)
	}
	// Payloads keep their own, larger bound.
	if err := WriteFrame(&buf, &Request{Op: OpPing}, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized payload written: %v", err)
	}
}

// trackedReader fails the read itself if more than the 4-byte length
// prefix is consumed — proving rejection happens before any header
// read.
type trackedReader struct{ r io.Reader }

func (t trackedReader) Read(p []byte) (int, error) {
	if len(p) > 4 {
		return 0, errors.New("read past the length prefix of a rejected header")
	}
	return t.r.Read(p)
}

// TestNegotiationSelectsV2 pins the happy-path handshake: current
// client against current server lands on protocol v2.
func TestNegotiationSelectsV2(t *testing.T) {
	_, addr, stop := startServer(t, true)
	defer stop()
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != ProtocolV2 {
		t.Fatalf("negotiated v%d, want v%d", v, ProtocolV2)
	}
}

// FuzzDecodeRequestV2 feeds arbitrary bytes to the server-side request
// decoder: it must never panic, and any header it accepts must
// round-trip byte-identically through re-encode → decode → re-encode.
func FuzzDecodeRequestV2(f *testing.F) {
	for _, m := range fuzzReqSeeds() {
		f.Add(AppendRequestV2(nil, 7, m))
	}
	f.Add([]byte{})
	f.Add([]byte{v2OpFetch})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		corr, op, m, err := decodeAnyRequestV2(b, nil)
		if err != nil {
			return // malformed input correctly rejected
		}
		enc := AppendRequestV2(nil, corr, m)
		m2 := newReqMsg(op)
		corr2, err := DecodeRequestV2(enc, m2)
		if err != nil {
			t.Fatalf("canonical re-decode failed: %v", err)
		}
		if corr2 != corr {
			t.Fatalf("corr %d → %d", corr, corr2)
		}
		if enc2 := AppendRequestV2(nil, corr2, m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip\n %x\n %x", enc, enc2)
		}
	})
}

// FuzzDecodeResponseV2 is FuzzDecodeRequestV2 for the client-side
// response decoder, covering both success bodies and error codes.
func FuzzDecodeResponseV2(f *testing.F) {
	for _, seed := range fuzzRespSeeds() {
		f.Add(AppendResponseV2(nil, seed.op, 7, seed.m))
	}
	f.Add(appendErrResponseV2(nil, v2OpFetch, 9, fmt.Errorf("%w: gone", broker.ErrLeaderUnavailable)))
	f.Add([]byte{})
	f.Add([]byte{v2OpFetch, 200, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		op, code, corr, body, err := decodeRespPrefixV2(b)
		if err != nil {
			return
		}
		if code != codeOK {
			detail, _, derr := getStr(body)
			if derr != nil {
				return
			}
			if e := errFromCode(code, detail); e == nil {
				t.Fatal("error code decoded to nil error")
			}
			return
		}
		m := newRespMsg(op)
		if m == nil {
			return // unknown op: the client matches ops itself
		}
		if err := m.DecodeBody(body); err != nil {
			return
		}
		enc := AppendResponseV2(nil, op, corr, m)
		m2 := newRespMsg(op)
		op2, corr2, err := DecodeResponseV2(enc, m2)
		if err != nil {
			t.Fatalf("canonical re-decode failed: %v", err)
		}
		if op2 != op || corr2 != corr {
			t.Fatalf("prefix drift: op %d→%d corr %d→%d", op, op2, corr, corr2)
		}
		if enc2 := AppendResponseV2(nil, op2, corr2, m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip\n %x\n %x", enc, enc2)
		}
	})
}

// FuzzDecodeStreamFrames feeds arbitrary bytes to every streaming-fetch
// message decoder — the open/credit/close requests (with and without a
// topic interner) and the pushed batch header — asserting the usual
// contract: malformed input errors (never panics) and any accepted body
// round-trips byte-identically through re-encode → decode → re-encode.
func FuzzDecodeStreamFrames(f *testing.F) {
	f.Add(uint8(0), AppendRequestV2(nil, 3, &StreamOpenReq{ID: 7, Topic: "t", Partition: 1, Offset: 100, MaxEvents: 500, MaxBytes: 1 << 20, Credit: 2000}))
	f.Add(uint8(1), AppendRequestV2(nil, 4, &StreamCreditReq{ID: 7, Credit: 256}))
	f.Add(uint8(2), AppendRequestV2(nil, 5, &StreamCloseReq{ID: 7}))
	batch := &FetchResp{NumEvents: 4, HighWatermark: 44, StartOffset: 2}
	batch.SetOffsets([]event.Event{{Offset: 40}, {Offset: 41}, {Offset: 42}, {Offset: 43}})
	f.Add(uint8(3), AppendResponseV2(nil, v2OpStreamBatch, 7, batch))
	f.Add(uint8(3), appendErrResponseV2(nil, v2OpStreamClose, 7, fmt.Errorf("%w: gone", eventlog.ErrOffsetOutOfRange)))
	f.Add(uint8(0), AppendRequestV2(nil, 6, &SessionOpenReq{ID: 2, MaxEvents: 500, MaxBytes: 1 << 20, CreditBytes: 1 << 20}))
	f.Add(uint8(1), AppendRequestV2(nil, 7, &SessionSubReq{SessionID: 2, SubID: 9, Topic: "t", Partition: 1, Offset: 50}))
	f.Add(uint8(1), AppendRequestV2(nil, 8, &SessionSubReq{SessionID: 2, SubID: 9, Remove: true}))
	f.Add(uint8(2), AppendRequestV2(nil, 9, &SessionCreditReq{SessionID: 2, CreditBytes: 4096}))
	f.Add(uint8(2), AppendRequestV2(nil, 10, &SessionCloseReq{SessionID: 2}))
	f.Add(uint8(3), AppendResponseV2(nil, v2OpSessionBatch, sessCorr(2, 9), batch))
	f.Add(uint8(3), appendErrResponseV2(nil, v2OpSessionClose, sessCorr(2, 9), fmt.Errorf("%w: gone", eventlog.ErrOffsetOutOfRange)))
	f.Add(uint8(3), AppendResponseV2(nil, v2OpMetadataPush, 0, &MetadataResp{
		Epoch:   3,
		Brokers: []BrokerMeta{{ID: 0, Addr: "b0:1", Up: true}},
		Topics:  []TopicLeadership{{Name: "t", Partitions: []PartitionLeadership{{Leader: 0, Replicas: []int{0}, ISR: []int{0}}}}},
	}))
	f.Add(uint8(0), AppendRequestV2(nil, 11, &ReplicaFetchReq{Topic: "t", Partition: 1, Follower: 2, LeaderEpoch: 5, Offset: 40, MaxEvents: 500, MaxBytes: 1 << 20, WaitMaxMS: 100}))
	f.Add(uint8(1), AppendRequestV2(nil, 12, &ReplicaAckReq{Topic: "t", Partition: 1, Follower: 2, LeaderEpoch: 5, LogEnd: 44}))
	replicaBatch := &ReplicaFetchResp{NumEvents: 4, LeaderEpoch: 5, HighWatermark: 43, LogStart: 0, LogEnd: 44}
	replicaBatch.SetOffsets([]event.Event{{Offset: 40}, {Offset: 41}, {Offset: 42}, {Offset: 43}})
	f.Add(uint8(3), AppendResponseV2(nil, v2OpReplicaFetch, 11, replicaBatch))
	f.Add(uint8(3), appendErrResponseV2(nil, v2OpReplicaFetch, 11, fmt.Errorf("%w: epoch 4 < 5", broker.ErrFencedEpoch)))
	f.Fuzz(func(t *testing.T, kind uint8, b []byte) {
		if kind%4 == 3 {
			// Pushed frames: client-side prefix decode, then the body of
			// whichever push shape the op names (batch or metadata).
			op, code, corr, body, err := decodeRespPrefixV2(b)
			if err != nil {
				return
			}
			if code != codeOK {
				if detail, _, derr := getStr(body); derr == nil {
					if e := errFromCode(code, detail); e == nil {
						t.Fatal("stream close code decoded to nil error")
					}
				}
				return
			}
			if op == v2OpMetadataPush {
				var m MetadataResp
				if err := m.DecodeBody(body); err != nil {
					return
				}
				enc := AppendResponseV2(nil, op, corr, &m)
				var m2 MetadataResp
				op2, corr2, err := DecodeResponseV2(enc, &m2)
				if err != nil || op2 != op || corr2 != corr {
					t.Fatalf("canonical metadata push re-decode: op %d→%d corr %d→%d err %v", op, op2, corr, corr2, err)
				}
				if enc2 := AppendResponseV2(nil, op2, corr2, &m2); !bytes.Equal(enc, enc2) {
					t.Fatalf("unstable metadata push round trip\n %x\n %x", enc, enc2)
				}
				return
			}
			var m FetchResp
			if err := m.DecodeBody(body); err != nil {
				return
			}
			// Session frames pack (session, sub) into the corr; the split
			// must be lossless for any corr the decoder accepts.
			if sid, sub := splitSessCorr(corr); op == v2OpSessionBatch && sessCorr(sid, sub) != corr {
				t.Fatalf("sessCorr not lossless for %#x", corr)
			}
			enc := AppendResponseV2(nil, op, corr, &m)
			var m2 FetchResp
			op2, corr2, err := DecodeResponseV2(enc, &m2)
			if err != nil || op2 != op || corr2 != corr {
				t.Fatalf("canonical stream batch re-decode: op %d→%d corr %d→%d err %v", op, op2, corr, corr2, err)
			}
			if enc2 := AppendResponseV2(nil, op2, corr2, &m2); !bytes.Equal(enc, enc2) {
				t.Fatalf("unstable stream batch round trip\n %x\n %x", enc, enc2)
			}
			return
		}
		// Request frames, decoded exactly as the server does: pooled
		// message, per-connection interner.
		var in Interner
		corr, op, m, err := decodeAnyRequestV2(b, &in)
		if err != nil {
			return
		}
		switch m.(type) {
		case *StreamOpenReq, *StreamCreditReq, *StreamCloseReq,
			*SessionOpenReq, *SessionSubReq, *SessionCreditReq, *SessionCloseReq:
		default:
			return // not a stream/session op; covered by FuzzDecodeRequestV2
		}
		enc := AppendRequestV2(nil, corr, m)
		m2 := newReqMsg(op)
		corr2, err := DecodeRequestV2Interned(enc, m2, &in)
		if err != nil || corr2 != corr {
			t.Fatalf("canonical re-decode: corr %d→%d err %v", corr, corr2, err)
		}
		if enc2 := AppendRequestV2(nil, corr2, m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable stream request round trip\n %x\n %x", enc, enc2)
		}
	})
}

// TestMetadataRequiresAuth pins the inline OpMetadata handler's auth
// gate: a connection that negotiated v2 + FeatClusterMeta but never
// authenticated must get bad-credentials, not the cluster topology —
// broker addresses and leadership are not for anyone who can merely
// reach a port.
func TestMetadataRequiresAuth(t *testing.T) {
	_, addr, stop := startServer(t, false) // authentication required
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{Op: OpNegotiate, Corr: 1, MaxVersion: ProtocolV2, Features: allFeatures}, nil); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	var nresp Response
	if _, err := ReadFrame(rd, &nresp); err != nil {
		t.Fatal(err)
	}
	if nresp.Version != ProtocolV2 || nresp.Features&FeatClusterMeta == 0 {
		t.Fatalf("negotiation = v%d feats %x", nresp.Version, nresp.Features)
	}
	frame, err := appendFrameRequestV2(nil, 2, &MetadataReq{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var hdrBuf []byte
	hb, err := readHeaderInto(rd, &hdrBuf)
	if err != nil {
		t.Fatal(err)
	}
	var resp MetadataResp
	_, _, err = DecodeResponseV2(hb, &resp)
	if _, perr := ReadPayloadInto(rd, nil); perr != nil {
		t.Fatal(perr)
	}
	if !errors.Is(err, auth.ErrBadCredentials) {
		t.Fatalf("unauthenticated metadata error = %v, want bad credentials", err)
	}
	if len(resp.Brokers) != 0 {
		t.Fatalf("unauthenticated metadata leaked %d brokers", len(resp.Brokers))
	}
}

// TestStatsRequiresAuth pins the inline OpStats handler's auth gate: a
// connection that negotiated v2 + FeatStats but never authenticated
// must get bad-credentials, not the broker's telemetry — metric names
// alone map out topics and deployment shape.
func TestStatsRequiresAuth(t *testing.T) {
	_, addr, stop := startServer(t, false) // authentication required
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{Op: OpNegotiate, Corr: 1, MaxVersion: ProtocolV2, Features: allFeatures}, nil); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	var nresp Response
	if _, err := ReadFrame(rd, &nresp); err != nil {
		t.Fatal(err)
	}
	if nresp.Version != ProtocolV2 || nresp.Features&FeatStats == 0 {
		t.Fatalf("negotiation = v%d feats %x", nresp.Version, nresp.Features)
	}
	frame, err := appendFrameRequestV2(nil, 2, &StatsReq{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var hdrBuf []byte
	hb, err := readHeaderInto(rd, &hdrBuf)
	if err != nil {
		t.Fatal(err)
	}
	var resp StatsResp
	_, _, err = DecodeResponseV2(hb, &resp)
	if _, perr := ReadPayloadInto(rd, nil); perr != nil {
		t.Fatal(perr)
	}
	if !errors.Is(err, auth.ErrBadCredentials) {
		t.Fatalf("unauthenticated stats error = %v, want bad credentials", err)
	}
	if len(resp.Counters) != 0 || len(resp.Hists) != 0 {
		t.Fatalf("unauthenticated stats leaked %d counters, %d hists", len(resp.Counters), len(resp.Hists))
	}
}

// TestStatHistQuantileMatchesSnapshot pins the client-side sparse
// quantile against the broker-side bucketed one: a StatHist built the
// way appendExport builds it must report the same quantiles as the
// metrics.BucketSnapshot it came from — octopus-cli and the HTTP
// exposition must never disagree about the same broker.
func TestStatHistQuantileMatchesSnapshot(t *testing.T) {
	var bh metrics.BucketHist
	for i := int64(1); i <= 4000; i++ {
		bh.Observe(i * 37)
	}
	snap := bh.Snapshot()
	sh := StatHist{Count: snap.Count, Sum: snap.Sum}
	for idx, cnt := range snap.Buckets {
		if cnt != 0 {
			sh.Buckets = append(sh.Buckets, StatBucket{Index: idx, Count: cnt})
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		want := snap.Quantile(q)
		if got := sh.Quantile(q); got != want {
			t.Fatalf("q=%v: wire %v, snapshot %v", q, got, want)
		}
	}
}

// FuzzDecodeStatsV2 feeds arbitrary bytes to the StatsResp body decoder
// (the observability snapshot a CLI trusts from any broker): malformed
// input must error, never panic or over-allocate, and any accepted body
// must round-trip byte-identically through re-encode → decode →
// re-encode.
func FuzzDecodeStatsV2(f *testing.F) {
	f.Add(statsRespSeed().AppendBody(nil))
	f.Add((&StatsResp{BrokerID: -1}).AppendBody(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		var resp StatsResp
		if err := resp.DecodeBody(b); err != nil {
			return
		}
		enc := resp.AppendBody(nil)
		var resp2 StatsResp
		if err := resp2.DecodeBody(enc); err != nil {
			t.Fatalf("canonical stats re-decode failed: %v", err)
		}
		if enc2 := resp2.AppendBody(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable stats round trip\n %x\n %x", enc, enc2)
		}
	})
}

// FuzzDecodeMetadataV2 feeds arbitrary bytes to the OpMetadata
// request and response body decoders (the cluster-routing control
// plane): malformed input must error, never panic, and any accepted
// body must round-trip byte-identically — the routing table a client
// builds from a re-encoded document must match the original.
func FuzzDecodeMetadataV2(f *testing.F) {
	for _, m := range []Msg{
		&MetadataReq{},
		&MetadataReq{Topics: []string{"events", "audit"}},
		&MetadataResp{
			Epoch:   7,
			Brokers: []BrokerMeta{{ID: 2, Addr: "127.0.0.1:40000", Up: true}},
			Topics: []TopicLeadership{{
				Name:       "events",
				Partitions: []PartitionLeadership{{Leader: 2, Replicas: []int{2, 0}, ISR: []int{2, 0}}},
			}},
		},
		&MetadataResp{
			Epoch:   8,
			Brokers: []BrokerMeta{{ID: 2, Addr: "127.0.0.1:40000", Up: true}},
			Topics: []TopicLeadership{{
				Name:       "events",
				Partitions: []PartitionLeadership{{Leader: 2, Replicas: []int{2, 0}, ISR: []int{2}}},
			}},
			Replication: &MetadataReplication{Topics: []TopicReplication{{
				Name: "events",
				Partitions: []PartitionReplication{{
					ID: 0, LeaderEpoch: 2, HighWatermark: 50, LogEnd: 64,
					Followers: []ReplicaProgress{{Broker: 0, LogEnd: 50}},
				}},
			}}},
		},
	} {
		f.Add(m.AppendBody(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		var req MetadataReq
		if err := req.DecodeBody(b); err == nil {
			enc := req.AppendBody(nil)
			var req2 MetadataReq
			if err := req2.DecodeBody(enc); err != nil {
				t.Fatalf("canonical metadata request re-decode failed: %v", err)
			}
			if enc2 := req2.AppendBody(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("unstable metadata request round trip\n %x\n %x", enc, enc2)
			}
		}
		var resp MetadataResp
		if err := resp.DecodeBody(b); err == nil {
			enc := resp.AppendBody(nil)
			var resp2 MetadataResp
			if err := resp2.DecodeBody(enc); err != nil {
				t.Fatalf("canonical metadata response re-decode failed: %v", err)
			}
			if enc2 := resp2.AppendBody(nil); !bytes.Equal(enc, enc2) {
				t.Fatalf("unstable metadata response round trip\n %x\n %x", enc, enc2)
			}
		}
	})
}
