// Package wire is the Octopus binary network protocol: a length-framed
// request/response RPC carrying JSON control headers and binary event
// batches. It lets producers and consumers on remote resources (edge,
// HPC login nodes, other clouds) talk to the cloud-hosted fabric, the
// hybrid deployment model of §IV. The wire client implements
// client.Transport, so SDK producers/consumers work unchanged over TCP.
//
// Frame layout (big endian):
//
//	u32 headerLen | header JSON | u32 payloadLen | payload bytes
//
// The payload is a concatenation of event.Marshal records for produce
// requests and fetch responses, empty otherwise.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
)

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpAuth          Op = "auth"
	OpProduce       Op = "produce"
	OpFetch         Op = "fetch"
	OpEndOffset     Op = "end_offset"
	OpStartOffset   Op = "start_offset"
	OpOffsetForTime Op = "offset_for_time"
	OpTopicMeta     Op = "topic_meta"
	OpJoinGroup     Op = "join_group"
	OpLeaveGroup    Op = "leave_group"
	OpHeartbeat     Op = "heartbeat"
	OpCommit        Op = "commit"
	OpCommitted     Op = "committed"
	OpPing          Op = "ping"
)

// MaxFrame bounds a frame to keep a misbehaving peer from exhausting
// memory (64 MiB, comfortably above the 6 MB trigger batch cap).
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports an over-sized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Request is the JSON header of a client frame.
type Request struct {
	Op Op `json:"op"`
	// Auth fields (OpAuth).
	AccessKeyID string `json:"access_key_id,omitempty"`
	Secret      string `json:"secret,omitempty"`
	// Topic routing.
	Topic     string `json:"topic,omitempty"`
	Partition int    `json:"partition,omitempty"`
	// Produce.
	Acks      int `json:"acks,omitempty"`
	NumEvents int `json:"num_events,omitempty"`
	// Fetch / offsets.
	Offset    int64 `json:"offset,omitempty"`
	MaxEvents int   `json:"max_events,omitempty"`
	MaxBytes  int   `json:"max_bytes,omitempty"`
	TimeNano  int64 `json:"time_nano,omitempty"`
	// Groups.
	Group      string   `json:"group,omitempty"`
	Member     string   `json:"member,omitempty"`
	Topics     []string `json:"topics,omitempty"`
	Generation int      `json:"generation,omitempty"`
}

// TPJSON is a topic partition in responses.
type TPJSON struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
}

// Response is the JSON header of a server frame.
type Response struct {
	Err string `json:"err,omitempty"`
	// ErrKind carries the sentinel class so clients can match with
	// errors.Is across the wire ("leader_unavailable", "denied", ...).
	ErrKind string `json:"err_kind,omitempty"`

	Offset        int64              `json:"offset,omitempty"`
	HighWatermark int64              `json:"high_watermark,omitempty"`
	StartOffset   int64              `json:"start_offset,omitempty"`
	NumEvents     int                `json:"num_events,omitempty"`
	Generation    int                `json:"generation,omitempty"`
	Partitions    []TPJSON           `json:"partitions,omitempty"`
	Meta          *cluster.TopicMeta `json:"meta,omitempty"`
	Identity      string             `json:"identity,omitempty"`
	// Offsets carries per-event offsets for fetch responses (the binary
	// event encoding omits container fields).
	Offsets []int64 `json:"offsets,omitempty"`
}

// WriteFrame writes a header + payload frame.
func WriteFrame(w io.Writer, header any, payload []byte) error {
	hb, err := json.Marshal(header)
	if err != nil {
		return fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxFrame || len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 0, 8+len(hb)+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame, decoding the JSON header into header.
func ReadFrame(r io.Reader, header any) (payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	hlen := binary.BigEndian.Uint32(lenBuf[:])
	if hlen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(hb, header); err != nil {
		return nil, fmt.Errorf("wire: bad header: %w", err)
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(lenBuf[:])
	if plen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if plen == 0 {
		return nil, nil
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeEvents concatenates marshaled events into one payload, sized
// exactly with a single allocation.
func EncodeEvents(evs []event.Event) []byte {
	return event.AppendBatchMarshal(nil, evs)
}

// DecodeEvents splits a payload into n events. The payload buffer becomes
// the batch's arena: decoded keys and values alias it, so callers hand
// over ownership (ReadFrame allocates a fresh buffer per frame).
func DecodeEvents(payload []byte, n int) ([]event.Event, error) {
	out, pos, err := event.UnmarshalBatch(payload, n)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d events", len(payload)-pos, n)
	}
	return out, nil
}

// EncodeFetch encodes fetched events: offsets ride in the response
// header; topic/partition are implied by the request.
func EncodeFetch(evs []event.Event) (offsets []int64, payload []byte) {
	offsets = make([]int64, len(evs))
	for i := range evs {
		offsets[i] = evs[i].Offset
	}
	return offsets, EncodeEvents(evs)
}

// Deadline for protocol I/O on a single frame exchange.
const IOTimeout = 30 * time.Second
