// Package wire is the Octopus binary network protocol: a length-framed
// request/response RPC carrying JSON control headers and binary event
// batches. It lets producers and consumers on remote resources (edge,
// HPC login nodes, other clouds) talk to the cloud-hosted fabric, the
// hybrid deployment model of §IV. The wire client implements
// client.Transport, so SDK producers/consumers work unchanged over TCP.
//
// Frame layout (big endian):
//
//	u32 headerLen | header JSON | u32 payloadLen | payload bytes
//
// The payload is a concatenation of event.Marshal records for produce
// requests and fetch responses, empty otherwise.
//
// The transport is pipelined: request headers carry a correlation ID
// that the server echoes on the matching response, so many requests
// from one client share a connection and responses may be delivered in
// any order (the server handles requests concurrently).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
)

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpAuth          Op = "auth"
	OpProduce       Op = "produce"
	OpFetch         Op = "fetch"
	OpEndOffset     Op = "end_offset"
	OpStartOffset   Op = "start_offset"
	OpOffsetForTime Op = "offset_for_time"
	OpTopicMeta     Op = "topic_meta"
	OpJoinGroup     Op = "join_group"
	OpLeaveGroup    Op = "leave_group"
	OpHeartbeat     Op = "heartbeat"
	OpCommit        Op = "commit"
	OpCommitted     Op = "committed"
	OpPing          Op = "ping"
)

// MaxFrame bounds a frame to keep a misbehaving peer from exhausting
// memory (64 MiB, comfortably above the 6 MB trigger batch cap).
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports an over-sized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Request is the JSON header of a client frame.
type Request struct {
	Op Op `json:"op"`
	// Corr is the request's correlation ID. The client assigns a
	// connection-unique value per request and the server echoes it on the
	// matching response, which is what lets many requests be in flight on
	// one connection with responses delivered in any order.
	Corr uint64 `json:"corr,omitempty"`
	// Auth fields (OpAuth).
	AccessKeyID string `json:"access_key_id,omitempty"`
	Secret      string `json:"secret,omitempty"`
	// Topic routing.
	Topic     string `json:"topic,omitempty"`
	Partition int    `json:"partition,omitempty"`
	// Produce.
	Acks      int `json:"acks,omitempty"`
	NumEvents int `json:"num_events,omitempty"`
	// Fetch / offsets.
	Offset    int64 `json:"offset,omitempty"`
	MaxEvents int   `json:"max_events,omitempty"`
	MaxBytes  int   `json:"max_bytes,omitempty"`
	TimeNano  int64 `json:"time_nano,omitempty"`
	// Groups.
	Group      string   `json:"group,omitempty"`
	Member     string   `json:"member,omitempty"`
	Topics     []string `json:"topics,omitempty"`
	Generation int      `json:"generation,omitempty"`
}

// TPJSON is a topic partition in responses.
type TPJSON struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
}

// Response is the JSON header of a server frame.
type Response struct {
	// Corr echoes the request's correlation ID.
	Corr uint64 `json:"corr,omitempty"`

	Err string `json:"err,omitempty"`
	// ErrKind carries the sentinel class so clients can match with
	// errors.Is across the wire ("leader_unavailable", "denied", ...).
	ErrKind string `json:"err_kind,omitempty"`

	Offset        int64              `json:"offset,omitempty"`
	HighWatermark int64              `json:"high_watermark,omitempty"`
	StartOffset   int64              `json:"start_offset,omitempty"`
	NumEvents     int                `json:"num_events,omitempty"`
	Generation    int                `json:"generation,omitempty"`
	Partitions    []TPJSON           `json:"partitions,omitempty"`
	Meta          *cluster.TopicMeta `json:"meta,omitempty"`
	Identity      string             `json:"identity,omitempty"`
	// Offsets carries per-event offsets for fetch responses (the binary
	// event encoding omits container fields).
	Offsets []int64 `json:"offsets,omitempty"`
}

// appendFrame appends a header + payload frame to buf, letting writers
// reuse one frame buffer across frames (and concatenate several frames
// into a single write).
func appendFrame(buf []byte, header any, payload []byte) ([]byte, error) {
	hb, err := json.Marshal(header)
	if err != nil {
		return buf, fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxFrame || len(payload) > MaxFrame {
		return buf, ErrFrameTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf, nil
}

// framePool recycles frame-encode buffers across WriteFrame calls, so
// the per-frame cost on the response path is the write itself, not a
// fresh buffer. Oversized buffers are dropped rather than pinned.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// maxPooledFrame bounds the capacity of a buffer returned to framePool:
// one giant fetch must not pin megabytes in the pool forever.
const maxPooledFrame = 1 << 20

// WriteFrame writes a header + payload frame.
func WriteFrame(w io.Writer, header any, payload []byte) error {
	bp := framePool.Get().(*[]byte)
	buf, err := appendFrame((*bp)[:0], header, payload)
	if err == nil {
		_, err = w.Write(buf)
	}
	if cap(buf) <= maxPooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// ReadHeader reads the header section of a frame, decoding the JSON
// header into header. The payload section must then be consumed with
// ReadPayloadInto before the next ReadHeader. The split lets the
// pipelined client match the correlation ID first, then read the payload
// directly into that request's receive buffer.
func ReadHeader(r io.Reader, header any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	hlen := binary.BigEndian.Uint32(lenBuf[:])
	if hlen > MaxFrame {
		return ErrFrameTooLarge
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return err
	}
	if err := json.Unmarshal(hb, header); err != nil {
		return fmt.Errorf("wire: bad header: %w", err)
	}
	return nil
}

// ReadPayloadInto reads the payload section of a frame into buf when it
// fits buf's capacity, growing it otherwise, and returns the filled
// slice (nil for an empty payload). Passing nil buf always allocates
// fresh, which is ReadFrame's behavior.
func ReadPayloadInto(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(lenBuf[:])
	if plen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if plen == 0 {
		return nil, nil
	}
	payload := buf
	if cap(payload) < int(plen) {
		payload = make([]byte, plen)
	}
	payload = payload[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadFrame reads one frame, decoding the JSON header into header. The
// payload is a freshly allocated buffer, which the caller owns (the
// server relies on this: decoded produce frames are donated to the
// fabric as the batch arena).
func ReadFrame(r io.Reader, header any) (payload []byte, err error) {
	if err := ReadHeader(r, header); err != nil {
		return nil, err
	}
	return ReadPayloadInto(r, nil)
}

// appendFrameEvents appends a frame whose payload is the marshaled
// event batch, encoded directly into buf — the fetch response path uses
// it to skip the intermediate payload buffer (and its copy) entirely.
// On error buf is returned unmodified.
func appendFrameEvents(buf []byte, header any, evs []event.Event) ([]byte, error) {
	orig := len(buf)
	hb, err := json.Marshal(header)
	if err != nil {
		return buf, fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxFrame {
		return buf, ErrFrameTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	lenAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = event.AppendBatchMarshal(buf, evs)
	plen := len(buf) - lenAt - 4
	if plen > MaxFrame {
		return buf[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(plen))
	return buf, nil
}

// EncodeEvents concatenates marshaled events into one payload, sized
// exactly with a single allocation.
func EncodeEvents(evs []event.Event) []byte {
	return event.AppendBatchMarshal(nil, evs)
}

// DecodeEvents splits a payload into n events. The payload buffer becomes
// the batch's arena: decoded keys and values alias it, so callers hand
// over ownership (ReadFrame allocates a fresh buffer per frame).
func DecodeEvents(payload []byte, n int) ([]event.Event, error) {
	out, pos, err := event.UnmarshalBatch(payload, n)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d events", len(payload)-pos, n)
	}
	return out, nil
}

// Deadline for protocol I/O on a single frame exchange.
const IOTimeout = 30 * time.Second
