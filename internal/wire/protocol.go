// Package wire is the Octopus binary network protocol: a length-framed
// request/response RPC carrying control headers and binary event
// batches. It lets producers and consumers on remote resources (edge,
// HPC login nodes, other clouds) talk to the cloud-hosted fabric, the
// hybrid deployment model of §IV. The wire client implements
// client.Transport, so SDK producers/consumers work unchanged over TCP.
//
// Frame layout (big endian), identical in both protocol versions:
//
//	u32 headerLen | header bytes | u32 payloadLen | payload bytes
//
// The payload is a concatenation of event.Marshal records for produce
// requests and fetch responses, empty otherwise.
//
// Two header encodings exist. Protocol v1 (this file) encodes headers
// as JSON Request/Response documents — one bag of optional fields
// shared by every operation. Protocol v2 (protocolv2.go) encodes each
// operation as its own typed binary message. A connection starts in v1
// framing; the client's first frame may be an OpNegotiate request, and
// when the server answers with a version ≥ 2 both sides switch to v2
// headers for every subsequent frame. Peers that predate negotiation
// reject OpNegotiate as an unknown op, which the client treats as
// "speak v1" — old servers and old clients keep working unchanged.
//
// The transport is pipelined: request headers carry a correlation ID
// that the server echoes on the matching response, so many requests
// from one client share a connection and responses may be delivered in
// any order (the server handles requests concurrently).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
)

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	// OpNegotiate is the version handshake: the first request on a
	// connection from a v2-capable client, always in v1 JSON framing so
	// that servers of every vintage can parse it. Servers that know it
	// answer with the selected version and feature set; servers that
	// predate it answer with an "unknown op" error, which the client
	// treats as negotiating down to v1.
	OpNegotiate     Op = "negotiate"
	OpAuth          Op = "auth"
	OpProduce       Op = "produce"
	OpFetch         Op = "fetch"
	OpEndOffset     Op = "end_offset"
	OpStartOffset   Op = "start_offset"
	OpOffsetForTime Op = "offset_for_time"
	OpTopicMeta     Op = "topic_meta"
	OpJoinGroup     Op = "join_group"
	OpLeaveGroup    Op = "leave_group"
	OpHeartbeat     Op = "heartbeat"
	OpCommit        Op = "commit"
	OpCommitted     Op = "committed"
	OpPing          Op = "ping"
	// Streaming fetch ops (v2-only; FeatStreamFetch). The v1 spellings
	// exist purely so a stream message converted to v1 framing is
	// rejected as an unknown op by legacy servers — the clean fallback.
	OpStreamOpen   Op = "stream_open"
	OpStreamCredit Op = "stream_credit"
	OpStreamClose  Op = "stream_close"
	// OpMetadata is cluster metadata discovery (v2-only;
	// FeatClusterMeta). The v1 spelling exists purely so the message
	// converted to v1 framing is rejected as an unknown op by legacy
	// servers — the clean fallback to single-address routing.
	OpMetadata Op = "metadata"
	// Multiplexed fetch session ops (v2-only; FeatSessionFetch). The v1
	// spellings exist purely so a session message converted to v1
	// framing is rejected as an unknown op by legacy servers — the
	// clean fallback to per-partition streams or plain fetch.
	OpSessionOpen   Op = "session_open"
	OpSessionSub    Op = "session_sub"
	OpSessionCredit Op = "session_credit"
	OpSessionClose  Op = "session_close"
	// Inter-broker replication ops (v2-only; FeatReplication). The v1
	// spellings exist purely so a replication message converted to v1
	// framing is rejected as an unknown op by legacy servers — the clean
	// fallback that lets a mixed-version cluster degrade to
	// single-replica operation instead of wedging.
	OpReplicaFetch Op = "replica_fetch"
	OpReplicaAck   Op = "replica_ack"
	// OpStats is the broker observability snapshot (v2-only; FeatStats).
	// The v1 spelling exists purely so the message converted to v1
	// framing is rejected as an unknown op by legacy servers — the clean
	// fallback to the HTTP metrics listener.
	OpStats Op = "stats"
)

// MaxFrame bounds a frame's payload to keep a misbehaving peer from
// exhausting memory (64 MiB, comfortably above the 6 MB trigger batch
// cap).
const MaxFrame = 64 << 20

// MaxHeader bounds a frame's header section independently of the
// payload bound. Headers are small (a few hundred bytes of JSON in v1,
// tens of bytes of binary in v2), so a headerLen near MaxFrame is
// hostile — both sides reject it before allocating or reading a byte
// of it. 8 MiB leaves generous room for the largest legitimate header,
// a v1 fetch response carrying a per-event JSON offsets array
// (~800k-event fetches of zero-byte events), while still refusing the
// 64 MiB forced read a hostile length could previously demand.
const MaxHeader = 8 << 20

// ErrFrameTooLarge reports an over-sized frame section (header or
// payload, each checked against its own bound before allocation).
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Request is the JSON header of a client frame (protocol v1).
type Request struct {
	Op Op `json:"op"`
	// Corr is the request's correlation ID. The client assigns a
	// connection-unique value per request and the server echoes it on the
	// matching response, which is what lets many requests be in flight on
	// one connection with responses delivered in any order.
	Corr uint64 `json:"corr,omitempty"`
	// Negotiation fields (OpNegotiate): the highest protocol version the
	// client speaks and the features it implements.
	MaxVersion int    `json:"max_version,omitempty"`
	Features   uint32 `json:"features,omitempty"`
	// Auth fields (OpAuth).
	AccessKeyID string `json:"access_key_id,omitempty"`
	Secret      string `json:"secret,omitempty"`
	// Topic routing.
	Topic     string `json:"topic,omitempty"`
	Partition int    `json:"partition,omitempty"`
	// Produce.
	Acks      int `json:"acks,omitempty"`
	NumEvents int `json:"num_events,omitempty"`
	// Fetch / offsets.
	Offset    int64 `json:"offset,omitempty"`
	MaxEvents int   `json:"max_events,omitempty"`
	MaxBytes  int   `json:"max_bytes,omitempty"`
	TimeNano  int64 `json:"time_nano,omitempty"`
	// Groups.
	Group      string   `json:"group,omitempty"`
	Member     string   `json:"member,omitempty"`
	Topics     []string `json:"topics,omitempty"`
	Generation int      `json:"generation,omitempty"`
}

// TPJSON is a topic partition in responses.
type TPJSON struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
}

// Response is the JSON header of a server frame (protocol v1).
type Response struct {
	// Corr echoes the request's correlation ID.
	Corr uint64 `json:"corr,omitempty"`

	// Negotiation fields (OpNegotiate): the version the server selected
	// and the feature intersection.
	Version  int    `json:"version,omitempty"`
	Features uint32 `json:"features,omitempty"`

	Err string `json:"err,omitempty"`
	// ErrKind carries the sentinel class so clients can match with
	// errors.Is across the wire ("leader_unavailable", "denied", ...).
	ErrKind string `json:"err_kind,omitempty"`

	Offset        int64              `json:"offset,omitempty"`
	HighWatermark int64              `json:"high_watermark,omitempty"`
	StartOffset   int64              `json:"start_offset,omitempty"`
	NumEvents     int                `json:"num_events,omitempty"`
	Generation    int                `json:"generation,omitempty"`
	Partitions    []TPJSON           `json:"partitions,omitempty"`
	Meta          *cluster.TopicMeta `json:"meta,omitempty"`
	Identity      string             `json:"identity,omitempty"`
	// Offsets carries per-event offsets for fetch responses (the binary
	// event encoding omits container fields).
	Offsets []int64 `json:"offsets,omitempty"`
}

// appendFrame appends a header + payload frame to buf, letting writers
// reuse one frame buffer across frames (and concatenate several frames
// into a single write).
func appendFrame(buf []byte, header any, payload []byte) ([]byte, error) {
	hb, err := json.Marshal(header)
	if err != nil {
		return buf, fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxHeader || len(payload) > MaxFrame {
		return buf, ErrFrameTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf, nil
}

// framePool recycles frame-encode buffers across WriteFrame calls, so
// the per-frame cost on the response path is the write itself, not a
// fresh buffer. Oversized buffers are dropped rather than pinned.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// maxPooledFrame bounds the capacity of a buffer returned to framePool:
// one giant fetch must not pin megabytes in the pool forever.
const maxPooledFrame = 1 << 20

// WriteFrame writes a header + payload frame.
func WriteFrame(w io.Writer, header any, payload []byte) error {
	bp := framePool.Get().(*[]byte)
	buf, err := appendFrame((*bp)[:0], header, payload)
	if err == nil {
		_, err = w.Write(buf)
	}
	if cap(buf) <= maxPooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// readHeaderInto reads the raw header section of a frame into *buf,
// growing (and replacing) it as needed, and returns the filled slice.
// The header length is checked against MaxHeader before any allocation
// or read, so a hostile length cannot force a large read ahead of the
// payload's own bound.
func readHeaderInto(r io.Reader, buf *[]byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	hlen := binary.BigEndian.Uint32(lenBuf[:])
	if hlen > MaxHeader {
		return nil, ErrFrameTooLarge
	}
	hb := *buf
	if cap(hb) < int(hlen) {
		hb = make([]byte, hlen)
		*buf = hb
	}
	hb = hb[:hlen]
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, err
	}
	return hb, nil
}

// ReadHeader reads the header section of a frame, decoding the JSON
// header into header. The payload section must then be consumed with
// ReadPayloadInto before the next ReadHeader. The split lets the
// pipelined client match the correlation ID first, then read the payload
// directly into that request's receive buffer.
func ReadHeader(r io.Reader, header any) error {
	var hb []byte
	hb, err := readHeaderInto(r, &hb)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(hb, header); err != nil {
		return fmt.Errorf("wire: bad header: %w", err)
	}
	return nil
}

// ReadPayloadInto reads the payload section of a frame into buf when it
// fits buf's capacity, growing it otherwise, and returns the filled
// slice (nil for an empty payload). Passing nil buf always allocates
// fresh, which is ReadFrame's behavior.
func ReadPayloadInto(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(lenBuf[:])
	if plen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if plen == 0 {
		return nil, nil
	}
	payload := buf
	if cap(payload) < int(plen) {
		payload = make([]byte, plen)
	}
	payload = payload[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadFrame reads one frame, decoding the JSON header into header. The
// payload is a freshly allocated buffer, which the caller owns (the
// server relies on this: decoded produce frames are donated to the
// fabric as the batch arena).
func ReadFrame(r io.Reader, header any) (payload []byte, err error) {
	if err := ReadHeader(r, header); err != nil {
		return nil, err
	}
	return ReadPayloadInto(r, nil)
}

// appendFrameEvents appends a frame whose payload is the marshaled
// event batch, encoded directly into buf — the fetch response path uses
// it to skip the intermediate payload buffer (and its copy) entirely.
// On error buf is returned unmodified.
func appendFrameEvents(buf []byte, header any, evs []event.Event) ([]byte, error) {
	orig := len(buf)
	hb, err := json.Marshal(header)
	if err != nil {
		return buf, fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxHeader {
		return buf, ErrFrameTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	lenAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = event.AppendBatchMarshal(buf, evs)
	plen := len(buf) - lenAt - 4
	if plen > MaxFrame {
		return buf[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(plen))
	return buf, nil
}

// EncodeEvents concatenates marshaled events into one payload, sized
// exactly with a single allocation.
func EncodeEvents(evs []event.Event) []byte {
	return event.AppendBatchMarshal(nil, evs)
}

// DecodeEvents splits a payload into n events. The payload buffer becomes
// the batch's arena: decoded keys and values alias it, so callers hand
// over ownership (ReadFrame allocates a fresh buffer per frame).
func DecodeEvents(payload []byte, n int) ([]event.Event, error) {
	out, pos, err := event.UnmarshalBatch(payload, n)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d events", len(payload)-pos, n)
	}
	return out, nil
}

// Deadline for protocol I/O on a single frame exchange.
const IOTimeout = 30 * time.Second
