// Streaming fetch (FeatStreamFetch): credit-based server push.
//
// Request/response fetch costs one round trip per batch and makes an
// idle consumer poll empty partitions. A negotiated stream inverts the
// flow: the client opens a per-partition stream (OpStreamOpen, carrying
// the start offset and an initial credit window measured in events) and
// the server pushes OpStreamBatch frames proactively as data becomes
// available, decrementing the window by the events pushed. The client
// returns consumed credit with one-way OpStreamCredit grants; when the
// window hits zero the server pump parks until more credit arrives, so
// a slow reader bounds server-side buffering at one window of events
// instead of backing up unbounded. When a partition is dry the pump
// parks on the log's tail waiter (eventlog.WaitAppend) — an idle stream
// costs one blocked goroutine, no polling.
//
// Credits rather than TCP backpressure because the transport is shared:
// every stream on a connection (and the request/response traffic
// pipelined beside them) multiplexes one TCP socket, so one slow
// consumer stalling the socket would stall them all. Credits push the
// back-pressure boundary up to the individual stream, exactly the
// reasoning behind HTTP/2 and gRPC stream-level flow control and
// Kafka's KIP-227 fetch sessions.
//
// Either side closes with OpStreamClose: one-way from the client, and
// from the server a pushed frame carrying the typed error that ended
// the stream (offset out of range, leader lost, ...) so the consumer
// can react exactly as it would to a failed fetch.
package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/event"
)

// MaxFetchWait caps a long-poll fetch's WaitMaxMS server-side, keeping
// every parked handler comfortably inside the client's IOTimeout so a
// long-poll can never be mistaken for a dead connection.
const MaxFetchWait = 10 * time.Second

// streamWaitSlice is how long a stream pump parks on the tail waiter
// per wait call. Arbitrary — the stop channel interrupts teardown — it
// only bounds how long a pump can linger after its stop path is gone.
const streamWaitSlice = 30 * time.Second

// maxConnStreams bounds open streams per connection: a misbehaving peer
// must not mint unbounded pump goroutines.
const maxConnStreams = 256

// maxStreamCredit caps one stream's credit window server-side (matching
// the honest client's own window clamp). Credit is what bounds the
// respWriter buffering a stalled reader can force — the window must be
// a server-enforced limit, not an attacker-chosen value.
const maxStreamCredit = 4096

// maxStreamCreditBytes caps one stream's byte window server-side, for
// the same reason maxStreamCredit caps the event window.
const maxStreamCreditBytes = 16 << 20

// errStream reports stream-protocol misuse (duplicate or unknown IDs,
// stream ops without the negotiated feature).
var errStream = fmt.Errorf("wire: stream protocol error")

// --- stream messages ---

// StreamOpenReq opens a per-partition fetch stream (OpStreamOpen). The
// client picks the connection-unique ID; batches arrive as pushed
// OpStreamBatch frames correlated by it.
type StreamOpenReq struct {
	ID        uint64
	Topic     string
	Partition int
	// Offset is the first offset the server will push.
	Offset int64
	// MaxEvents / MaxBytes bound one pushed batch (fetch semantics).
	MaxEvents int
	MaxBytes  int
	// Credit is the initial flow-control window in events.
	Credit int
	// CreditBytes, when > 0, adds a byte-denominated window: the server
	// stops pushing once this many un-granted payload bytes (event
	// key+value+header sizes) are outstanding, bounding a stalled
	// reader's server-side buffering in bytes, not just events. Zero
	// keeps event-credit-only semantics. Appended after the body the
	// previous revision shipped — decoders tolerate trailing bytes, so
	// older v2 peers simply ignore it.
	CreditBytes int
}

func (*StreamOpenReq) V2Op() uint8 { return v2OpStreamOpen }

func (m *StreamOpenReq) AppendBody(buf []byte) []byte {
	buf = appendUint(buf, m.ID)
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, m.Offset)
	buf = appendInt(buf, int64(m.MaxEvents))
	buf = appendInt(buf, int64(m.MaxBytes))
	buf = appendInt(buf, int64(m.Credit))
	return appendInt(buf, int64(m.CreditBytes))
}

func (m *StreamOpenReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *StreamOpenReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	if m.ID, b, err = getUint(b); err != nil {
		return err
	}
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if m.Offset, b, err = getInt(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxEvents = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxBytes = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Credit = int(v)
	// CreditBytes is absent from bodies encoded by earlier revisions;
	// reset explicitly so a pooled message never carries a stale window.
	m.CreditBytes = 0
	if len(b) > 0 {
		if v, _, err = getInt(b); err != nil {
			return err
		}
		m.CreditBytes = int(v)
	}
	return nil
}

// v1 converts to a JSON header a v1 server rejects as an unknown op —
// the clean-fallback path for clients probing a legacy peer.
func (m *StreamOpenReq) v1() *Request { return &Request{Op: OpStreamOpen} }

// StreamOpenResp acknowledges a stream open with the partition's
// positions at open time.
type StreamOpenResp struct {
	HighWatermark int64
	StartOffset   int64
}

func (m *StreamOpenResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, m.HighWatermark)
	return appendInt(buf, m.StartOffset)
}

func (m *StreamOpenResp) DecodeBody(b []byte) error {
	var err error
	if m.HighWatermark, b, err = getInt(b); err != nil {
		return err
	}
	m.StartOffset, _, err = getInt(b)
	return err
}

func (m *StreamOpenResp) fromV1(r *Response) {
	m.HighWatermark, m.StartOffset = r.HighWatermark, r.StartOffset
}
func (m *StreamOpenResp) toV1(r *Response) {
	r.HighWatermark, r.StartOffset = m.HighWatermark, m.StartOffset
}

// StreamCreditReq returns consumed credit to a stream's window
// (OpStreamCredit). One-way: the server never answers it.
type StreamCreditReq struct {
	ID     uint64
	Credit int
	// CreditBytes returns consumed payload bytes to the stream's byte
	// window (streams opened with StreamOpenReq.CreditBytes > 0).
	// Trailing field: absent on grants from older peers.
	CreditBytes int
}

func (*StreamCreditReq) V2Op() uint8 { return v2OpStreamCredit }

func (m *StreamCreditReq) AppendBody(buf []byte) []byte {
	buf = appendUint(buf, m.ID)
	buf = appendInt(buf, int64(m.Credit))
	return appendInt(buf, int64(m.CreditBytes))
}

func (m *StreamCreditReq) DecodeBody(b []byte) error {
	var err error
	var v int64
	if m.ID, b, err = getUint(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Credit = int(v)
	m.CreditBytes = 0
	if len(b) > 0 {
		if v, _, err = getInt(b); err != nil {
			return err
		}
		m.CreditBytes = int(v)
	}
	return nil
}

func (m *StreamCreditReq) v1() *Request { return &Request{Op: OpStreamCredit} }

// StreamCloseReq closes a stream from the client side (OpStreamClose).
// One-way: the pump just stops.
type StreamCloseReq struct {
	ID uint64
}

func (*StreamCloseReq) V2Op() uint8                    { return v2OpStreamClose }
func (m *StreamCloseReq) AppendBody(buf []byte) []byte { return appendUint(buf, m.ID) }
func (m *StreamCloseReq) DecodeBody(b []byte) error {
	var err error
	m.ID, _, err = getUint(b)
	return err
}
func (m *StreamCloseReq) v1() *Request { return &Request{Op: OpStreamClose} }

func appendUint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// --- server-side stream state ---

// connStreams is one connection's stream registry: the read loop opens,
// credits, and closes streams; pump goroutines push batches through the
// connection's respWriter.
type connStreams struct {
	srv  *Server
	w    *respWriter
	done <-chan struct{} // closed when the connection's read loop exits

	mu sync.Mutex
	m  map[uint64]*serverStream
	wg sync.WaitGroup
}

// serverStream is one open stream: its fixed parameters plus the
// credit window the pump blocks on.
type serverStream struct {
	id        uint64
	identity  string
	topic     string
	partition int
	maxEvents int
	maxBytes  int

	mu     sync.Mutex
	cond   *sync.Cond
	credit int
	// byteMode enables the byte-denominated window: creditBytes is the
	// remaining window (it may dip below zero when the first event of a
	// batch alone exceeds it — ReadBudget semantics — and the pump then
	// parks until grants bring it positive again).
	byteMode    bool
	creditBytes int
	closed      bool
	stop        chan struct{} // closed with the stream; interrupts tail waits

	// next is the next offset to push; dst is the pump's reusable fetch
	// buffer. Both are touched only by the pump goroutine.
	next int64
	dst  []event.Event
}

func newConnStreams(srv *Server, w *respWriter, done <-chan struct{}) *connStreams {
	return &connStreams{srv: srv, w: w, done: done, m: make(map[uint64]*serverStream)}
}

// open validates and registers a stream, replies to the open request,
// and starts its pump. Called inline from the read loop.
func (cs *connStreams) open(q *StreamOpenReq, identity string, authed bool) (*StreamOpenResp, error) {
	if !authed {
		return nil, fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
	}
	if identity != "" {
		if err := cs.srv.Fabric.ACL.Check(q.Topic, identity, auth.PermRead); err != nil {
			return nil, err
		}
	}
	if err := cs.srv.leaderCheck(q.Topic, q.Partition); err != nil {
		return nil, err
	}
	start, err := cs.srv.Fabric.StartOffset(q.Topic, q.Partition)
	if err != nil {
		return nil, err
	}
	end, err := cs.srv.Fabric.EndOffset(q.Topic, q.Partition)
	if err != nil {
		return nil, err
	}
	if q.Offset < start || q.Offset > end {
		return nil, fmt.Errorf("%w: stream open at %d not in [%d,%d]", ErrOffsetOutOfRange, q.Offset, start, end)
	}
	st := &serverStream{
		id: q.ID, identity: identity, topic: q.Topic, partition: q.Partition,
		maxEvents: q.MaxEvents, maxBytes: q.MaxBytes,
		credit: q.Credit, stop: make(chan struct{}), next: q.Offset,
	}
	if st.maxEvents <= 0 {
		st.maxEvents = 512
	}
	if st.credit > maxStreamCredit {
		st.credit = maxStreamCredit
	}
	if q.CreditBytes > 0 {
		st.byteMode = true
		st.creditBytes = q.CreditBytes
		if st.creditBytes > maxStreamCreditBytes {
			st.creditBytes = maxStreamCreditBytes
		}
	}
	st.cond = sync.NewCond(&st.mu)
	cs.mu.Lock()
	if _, dup := cs.m[q.ID]; dup {
		cs.mu.Unlock()
		return nil, fmt.Errorf("%w: duplicate stream id %d", errStream, q.ID)
	}
	if len(cs.m) >= maxConnStreams {
		cs.mu.Unlock()
		return nil, fmt.Errorf("%w: too many open streams", errStream)
	}
	cs.m[q.ID] = st
	cs.wg.Add(1)
	cs.mu.Unlock()
	cs.srv.met().streamsOpen.Add(1)
	go cs.pump(st)
	return &StreamOpenResp{HighWatermark: end, StartOffset: start}, nil
}

// credit adds a client grant to a stream's windows. Grants for unknown
// IDs are dropped: the stream may have closed while the grant was in
// flight, which is normal, not an error.
func (cs *connStreams) credit(id uint64, n, nbytes int) {
	cs.mu.Lock()
	st := cs.m[id]
	cs.mu.Unlock()
	if st == nil || (n <= 0 && nbytes <= 0) {
		return
	}
	st.mu.Lock()
	if n > 0 {
		st.credit += n
		if st.credit > maxStreamCredit {
			st.credit = maxStreamCredit
		}
	}
	if st.byteMode && nbytes > 0 {
		st.creditBytes += nbytes
		if st.creditBytes > maxStreamCreditBytes {
			st.creditBytes = maxStreamCreditBytes
		}
	}
	st.cond.Signal()
	st.mu.Unlock()
}

// closeStream tears one stream down (client-initiated or pump exit).
func (cs *connStreams) closeStream(id uint64) {
	cs.mu.Lock()
	st := cs.m[id]
	delete(cs.m, id)
	cs.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.stop)
		st.cond.Broadcast()
	}
	st.mu.Unlock()
	cs.srv.met().streamsOpen.Add(-1)
}

// closeAll tears every stream down (connection teardown) and waits for
// the pumps to exit, so serveConn never leaks a pump goroutine.
func (cs *connStreams) closeAll() {
	cs.mu.Lock()
	ids := make([]uint64, 0, len(cs.m))
	for id := range cs.m {
		ids = append(ids, id)
	}
	cs.mu.Unlock()
	for _, id := range ids {
		cs.closeStream(id)
	}
	cs.wg.Wait()
}

// pump is one stream's push loop: park until the window has credit,
// fetch (parking on the log's tail waiter when the partition is dry),
// push the batch, repeat. A fetch error ends the stream with a pushed
// OpStreamClose carrying the typed error.
func (cs *connStreams) pump(st *serverStream) {
	defer cs.wg.Done()
	met := cs.srv.met()
	for {
		st.mu.Lock()
		for (st.credit <= 0 || (st.byteMode && st.creditBytes <= 0)) && !st.closed {
			st.cond.Wait()
		}
		if st.closed {
			st.mu.Unlock()
			return
		}
		credit := st.credit
		creditBytes := st.creditBytes
		st.mu.Unlock()

		max := st.maxEvents
		if credit < max {
			max = credit
		}
		maxBytes := st.maxBytes
		if st.byteMode && (maxBytes <= 0 || creditBytes < maxBytes) {
			// The byte window bounds one push too: never fetch more than
			// the window has room for (the first event may still exceed
			// it — ReadBudget semantics — taking the window negative).
			maxBytes = creditBytes
		}
		res, err := cs.srv.Fabric.FetchWaitInto(
			st.identity, st.topic, st.partition, st.next, max, maxBytes,
			streamWaitSlice, st.stop, st.dst[:0])
		if err != nil {
			// Push the typed error as a server-side close so the consumer
			// reacts exactly as to a failed fetch, then stop.
			_ = cs.w.writeV2(v2OpStreamClose, st.id, nil, err, nil)
			cs.closeStream(st.id)
			return
		}
		if cap(res.Events) > cap(st.dst) {
			st.dst = res.Events
		}
		if len(res.Events) == 0 {
			continue // timed-out tail wait or stream closing; loop re-checks
		}
		resp := &FetchResp{
			NumEvents:     len(res.Events),
			HighWatermark: res.HighWatermark,
			StartOffset:   res.StartOffset,
		}
		resp.SetOffsets(res.Events)
		if cs.w.writeV2(v2OpStreamBatch, st.id, resp, nil, res.Events) != nil {
			cs.closeStream(st.id)
			return
		}
		met.streamBatch.Observe(int64(len(res.Events)))
		st.next = res.Events[len(res.Events)-1].Offset + 1
		st.mu.Lock()
		st.credit -= len(res.Events)
		if st.byteMode {
			st.creditBytes -= eventsSize(res.Events)
		}
		st.mu.Unlock()
	}
}

// eventsSize is the flow-control size of a batch: the sum of the
// events' payload sizes (key + value + headers), computed identically
// on both sides of the stream so byte grants balance byte debits.
func eventsSize(evs []event.Event) int {
	n := 0
	for i := range evs {
		n += evs[i].Size()
	}
	return n
}
