// Client side of streaming fetch: per-partition stream sessions behind
// the BufferedFetcher surface.
//
// When the negotiated features include FeatStreamFetch, FetchBuffered
// transparently opens a stream per topic-partition on the partition's
// pool connection. Pushed batches land in a bounded frame queue filled
// by the connection's reader goroutine; the consumer drains it without
// issuing a request per batch, so steady-state consumption costs zero
// round trips. Offsets are tracked so that the SDK consumer's usual
// "ask for position, get events, advance position" loop maps onto the
// stream exactly: a fetch at the expected next offset serves from the
// stream, any other offset (seek, rebalance) closes and reopens it.
// Against peers without the feature — v1 servers, version-capped or
// stream-disabled v2 servers — the same calls fall back to pipelined
// request/response fetch, with long-poll (FetchReq.WaitMaxMS) riding
// the plain path when the caller asked to wait.
package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
)

// streamKey identifies a stream session on one connection.
type streamKey struct {
	topic     string
	partition int
}

// streamFrame is one pushed batch (or a server-side close): the decoded
// header plus the raw event payload. Frames recycle through the
// stream's free list, so a steady-state stream allocates nothing per
// batch once warm.
type streamFrame struct {
	hdr  FetchResp
	data []byte
	err  error
}

// clientStream is one open fetch stream. The reader goroutine fills
// frames; the consumer (serialized per partition by the SDK) drains
// them under mu.
type clientStream struct {
	wc        *wireConn
	id        uint64
	topic     string
	partition int
	// window is the credit window in events; the frames channel is
	// sized to hold a full window of single-event batches plus a close.
	window int
	// windowBytes is the optional byte-denominated window (0 = event
	// credit only), mirroring the server's bound on un-granted bytes.
	windowBytes int
	frames      chan *streamFrame

	freeMu sync.Mutex
	free   []*streamFrame

	mu sync.Mutex
	// Decode state is double-buffered across pulled frames, mirroring
	// the consumer session's buf/pre pair: the SDK's async prefetch
	// decodes the next frame while the application (and the Poll that
	// spawned the prefetch) is still reading the previous one, so
	// consecutive frames must land in disjoint arrays, and a frame's
	// payload (which the decoded events' Key/Value alias) must survive
	// until two pulls later.
	gen        int
	frameSlots [2]*streamFrame
	evBufs     [2][]event.Event
	// evs are the current frame's decoded events; idx is how many have
	// been served.
	evs []event.Event
	idx int
	// next is the offset the consumer is expected to ask for next: one
	// past the last served event (the open offset before any serve).
	next int64
	// hw/start mirror the latest pushed batch's positions so empty
	// polls still report fresh watermarks.
	hw, start int64
	// consumed counts events (and consumedBytes their payload bytes)
	// not yet returned to the server as credit.
	consumed      int
	consumedBytes int
	err           error
}

func (s *clientStream) getFrame() *streamFrame {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		f.err = nil
		return f
	}
	return &streamFrame{}
}

func (s *clientStream) putFrame(f *streamFrame) {
	if f == nil {
		return
	}
	if cap(f.data) > maxPooledFrame {
		f.data = nil
	}
	s.freeMu.Lock()
	s.free = append(s.free, f)
	s.freeMu.Unlock()
}

// --- wireConn stream registry ---

// streamingEnabled reports whether this connection negotiated
// FeatStreamFetch and has not since learned the server refuses opens.
func (wc *wireConn) streamingEnabled() bool {
	wc.mu.Lock()
	ok := wc.version >= ProtocolV2 && wc.features&FeatStreamFetch != 0 && wc.err == nil
	wc.mu.Unlock()
	if !ok {
		return false
	}
	wc.streamMu.Lock()
	defer wc.streamMu.Unlock()
	return !wc.noStreams
}

func (wc *wireConn) streamFor(k streamKey) *clientStream {
	wc.streamMu.Lock()
	defer wc.streamMu.Unlock()
	return wc.streamsByTP[k]
}

// dropStream unregisters s; the reader drops frames for unknown IDs.
func (wc *wireConn) dropStream(s *clientStream) {
	wc.streamMu.Lock()
	if wc.streamsByID[s.id] == s {
		delete(wc.streamsByID, s.id)
	}
	k := streamKey{s.topic, s.partition}
	if wc.streamsByTP[k] == s {
		delete(wc.streamsByTP, k)
	}
	wc.streamMu.Unlock()
}

// errNow snapshots the connection's sticky error.
func (wc *wireConn) errNow() error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.err
}

// handleStreamPush routes one pushed stream frame (batch or close) from
// the reader goroutine into its stream's queue, reading the payload
// into a recycled frame buffer. A non-nil return is a connection-level
// protocol failure.
func (wc *wireConn) handleStreamPush(op, code uint8, id uint64, body []byte) error {
	wc.streamMu.Lock()
	s := wc.streamsByID[id]
	wc.streamMu.Unlock()
	if s == nil {
		// Stream closed locally while frames were in flight: consume the
		// payload to keep framing intact, then drop.
		_, err := ReadPayloadInto(wc.rd, nil)
		return err
	}
	f := s.getFrame()
	switch {
	case code != codeOK:
		// Server-side close (or batch-op error) carrying the typed error.
		if detail, _, derr := getStr(body); derr != nil {
			f.err = derr
		} else {
			f.err = errFromCode(code, detail)
		}
	case op == v2OpStreamClose:
		// Clean server-side close: surface as a retriable end-of-stream;
		// the next fetch reopens.
		f.err = errStreamEnded
	default:
		if err := f.hdr.DecodeBody(body); err != nil {
			return err
		}
	}
	data, err := ReadPayloadInto(wc.rd, f.data[:0])
	if err != nil {
		return err
	}
	if data != nil {
		f.data = data
	} else {
		f.data = f.data[:0]
	}
	select {
	case s.frames <- f:
		return nil
	default:
		return fmt.Errorf("%w: stream %d overran its credit window", errStream, id)
	}
}

// failStreams marks every stream on a failing connection; parked
// consumers wake through wc.done and observe the sticky error.
var errStreamEnded = errors.New("wire: stream ended by server")

// --- open / fetch ---

// streamWindow sizes the credit window from the caller's batch bound.
func streamWindow(maxEvents int) int {
	w := 4 * maxEvents
	if w < 256 {
		w = 256
	}
	if w > 4096 {
		w = 4096
	}
	return w
}

// openStream registers and opens a stream at offset. The stream is
// registered before the open request goes out: the server's first push
// can be hot on the heels of the open response. windowBytes > 0 adds
// the byte-denominated flow-control window.
func (wc *wireConn) openStream(topic string, partition int, offset int64, maxEvents, maxBytes, windowBytes int) (*clientStream, error) {
	window := streamWindow(maxEvents)
	wc.streamMu.Lock()
	wc.nextStreamID++
	id := wc.nextStreamID
	s := &clientStream{
		wc: wc, id: id, topic: topic, partition: partition,
		window: window, windowBytes: windowBytes,
		frames: make(chan *streamFrame, window+2),
		next:   offset,
	}
	if wc.streamsByID == nil {
		wc.streamsByID = make(map[uint64]*clientStream)
		wc.streamsByTP = make(map[streamKey]*clientStream)
	}
	k := streamKey{topic, partition}
	if old := wc.streamsByTP[k]; old != nil {
		// Replace a stale session (concurrent misuse or a seek race).
		delete(wc.streamsByID, old.id)
	}
	wc.streamsByID[id] = s
	wc.streamsByTP[k] = s
	wc.streamMu.Unlock()

	req := &StreamOpenReq{
		ID: id, Topic: topic, Partition: partition, Offset: offset,
		MaxEvents: maxEvents, MaxBytes: maxBytes, Credit: window,
		CreditBytes: windowBytes,
	}
	var resp StreamOpenResp
	cl := &call{op: req.V2Op(), req: req, resp: &resp, done: make(chan struct{})}
	err := wc.do(cl)
	if err == nil {
		err = cl.srvErr
	}
	if err != nil {
		wc.dropStream(s)
		return nil, err
	}
	s.hw, s.start = resp.HighWatermark, resp.StartOffset
	return s, nil
}

// closeStream tears a session down from the client side: a one-way
// close op (best effort) plus local unregistration.
func (wc *wireConn) closeStream(s *clientStream) {
	wc.dropStream(s)
	_ = wc.sendOneway(&StreamCloseReq{ID: s.id})
}

// fetchStream serves one FetchBuffered call from a stream session.
// handled=false means streaming is unavailable on this connection (the
// server refused the open as an unknown op) and the caller must fall
// back to request/response.
func (c *Client) fetchStream(wc *wireConn, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration) (broker.FetchResult, error, bool) {
	s := wc.streamFor(streamKey{topic, partition})
	if s != nil {
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			wc.dropStream(s)
			if errors.Is(err, errStreamEnded) {
				// Clean end: reopen below instead of surfacing an error.
				s = nil
			} else {
				return broker.FetchResult{}, err, true
			}
		} else if s.next != offset {
			// Seek or rebalance: the stream's position no longer matches
			// the consumer's. Close and reopen at the requested offset.
			s.mu.Unlock()
			wc.closeStream(s)
			s = nil
		} else {
			defer s.mu.Unlock()
		}
	}
	if s == nil {
		var err error
		s, err = wc.openStream(topic, partition, offset, maxEvents, maxBytes, c.opts.StreamWindowBytes)
		if err != nil {
			if errors.Is(err, errUnknownOp) {
				// The server negotiated the feature away (or predates it):
				// remember and fall back for the connection's lifetime.
				wc.streamMu.Lock()
				wc.noStreams = true
				wc.streamMu.Unlock()
				return broker.FetchResult{}, nil, false
			}
			return broker.FetchResult{}, err, true
		}
		s.mu.Lock()
		defer s.mu.Unlock()
	}

	if s.idx >= len(s.evs) {
		if err := s.pullFrame(wait); err != nil {
			wc.dropStream(s)
			if errors.Is(err, errStreamEnded) {
				return broker.FetchResult{Events: nil, HighWatermark: s.hw, StartOffset: s.start}, nil, true
			}
			return broker.FetchResult{}, err, true
		}
	}
	if s.idx >= len(s.evs) {
		// Nothing pushed (yet): an empty poll, exactly like an empty
		// request/response fetch.
		return broker.FetchResult{Events: nil, HighWatermark: s.hw, StartOffset: s.start}, nil, true
	}
	n := len(s.evs) - s.idx
	if maxEvents > 0 && n > maxEvents {
		n = maxEvents
	}
	out := s.evs[s.idx : s.idx+n]
	s.idx += n
	s.next = out[n-1].Offset + 1
	nbytes := 0
	if s.windowBytes > 0 {
		nbytes = eventsSize(out)
	}
	s.noteConsumed(n, nbytes)
	return broker.FetchResult{Events: out, HighWatermark: s.hw, StartOffset: s.start}, nil, true
}

// pullFrame adopts the next pushed frame into the serve position,
// blocking up to wait when the queue is empty. Returning nil with an
// unchanged s.idx/s.evs means no data arrived. Callers hold s.mu.
func (s *clientStream) pullFrame(wait time.Duration) error {
	var f *streamFrame
	select {
	case f = <-s.frames:
	default:
		if err := s.wc.errNow(); err != nil {
			return err
		}
		if wait <= 0 {
			return nil
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case f = <-s.frames:
		case <-s.wc.done:
			return s.wc.errNow()
		case <-timer.C:
			return nil
		}
	}
	if f.err != nil {
		err := f.err
		s.putFrame(f)
		s.err = err
		return err
	}
	g := s.gen ^ 1
	evs, pos, err := event.AppendUnmarshalBatch(s.evBufs[g][:0], f.data, f.hdr.NumEvents)
	if err != nil {
		s.putFrame(f)
		return fmt.Errorf("wire: %w", err)
	}
	if pos != len(f.data) {
		s.putFrame(f)
		return fmt.Errorf("wire: %d trailing bytes after %d stream events", len(f.data)-pos, f.hdr.NumEvents)
	}
	f.hdr.Stamp(evs, s.topic, s.partition)
	// Recycle the frame from two pulls ago — the previous frame's data
	// is still backing events the application may be processing.
	s.putFrame(s.frameSlots[g])
	s.frameSlots[g] = f
	s.evBufs[g] = evs
	s.gen = g
	s.evs = evs
	s.idx = 0
	s.hw, s.start = f.hdr.HighWatermark, f.hdr.StartOffset
	return nil
}

// noteConsumed returns credit to the server once half of either window
// (events, or bytes when a byte window is set) has been consumed —
// batched grants, so flow control costs a fraction of a one-way frame
// per batch rather than an ack per batch. Callers hold s.mu.
func (s *clientStream) noteConsumed(n, nbytes int) {
	s.consumed += n
	s.consumedBytes += nbytes
	if 2*s.consumed < s.window && !(s.windowBytes > 0 && 2*s.consumedBytes >= s.windowBytes) {
		return
	}
	if err := s.wc.sendOneway(&StreamCreditReq{ID: s.id, Credit: s.consumed, CreditBytes: s.consumedBytes}); err == nil {
		s.consumed = 0
		s.consumedBytes = 0
	}
}
