package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

// streamTopic provisions a topic and pre-produces n small events.
func streamTopic(t *testing.T, f *broker.Fabric, topic string, parts, n int) {
	t.Helper()
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts}); err != nil {
		t.Fatal(err)
	}
	evs := make([]event.Event, 0, 64)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{Value: []byte(fmt.Sprintf("v%d", i))})
		if len(evs) == 64 || i == n-1 {
			if _, err := f.Produce("", topic, 0, evs, broker.AcksLeader); err != nil {
				t.Fatal(err)
			}
			evs = evs[:0]
		}
	}
}

// stream returns the client's stream session for a topic-partition,
// nil if none is open (white-box).
func (c *Client) stream(topic string, partition int) *clientStream {
	addr := c.dataAddr(topic, partition)
	c.mu.Lock()
	ep := c.eps[addr]
	var wc *wireConn
	if ep != nil {
		wc = ep.slots[c.slotFor(topic, partition)]
	}
	c.mu.Unlock()
	if wc == nil {
		return nil
	}
	return wc.streamFor(streamKey{topic, partition})
}

// TestStreamingFetchServesConsumer proves FetchBuffered transparently
// rides a stream on a streaming-negotiated connection: every event
// arrives in order, and a stream session (not per-call fetch requests)
// is what served them.
func TestStreamingFetchServesConsumer(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	const total = 1500
	streamTopic(t, f, "st", 1, total)
	// Pin the per-partition stream path: sessions would otherwise be
	// preferred and no stream would open.
	c, err := DialOptions(addr, Options{Anonymous: true, DisableSessionFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Features()&FeatStreamFetch == 0 {
		t.Fatal("streaming fetch not negotiated on a current pairing")
	}
	var buf broker.FetchBuffer
	var off int64
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < total && time.Now().Before(deadline) {
		res, err := c.FetchBufferedWait("", "st", 0, off, 100, 1<<20, 100*time.Millisecond, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Offset != off {
				t.Fatalf("offset %d, want %d", ev.Offset, off)
			}
			if want := fmt.Sprintf("v%d", off); string(ev.Value) != want {
				t.Fatalf("event %d value %q, want %q", off, ev.Value, want)
			}
			off++
			got++
		}
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
	if c.stream("st", 0) == nil {
		t.Fatal("no stream session open: fetches fell back to request/response")
	}
	// Late-arriving data is pushed without a new request: produce after
	// the stream drained and the next wait-fetch must deliver it.
	if _, err := f.Produce("", "st", 0, []event.Event{{Value: []byte("late")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchBufferedWait("", "st", 0, off, 10, 1<<20, 5*time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || string(res.Events[0].Value) != "late" {
		t.Fatalf("late event not pushed: %v", res.Events)
	}
}

// TestStreamCreditBoundsServerPush pins flow control: a reader that
// stops consuming receives at most the credit window of events — the
// server pump parks instead of buffering unboundedly — and resumes
// exactly where it left off once consumption restarts.
func TestStreamCreditBoundsServerPush(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	const total = 4000
	streamTopic(t, f, "cb", 1, total)
	c, err := DialOptions(addr, Options{Anonymous: true, DisableSessionFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// maxEvents 10 → window clamps to 256 events.
	var buf broker.FetchBuffer
	res, err := c.FetchBuffered("", "cb", 0, 0, 10, 1<<20, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := c.stream("cb", 0)
	if s == nil {
		t.Fatal("no stream opened")
	}
	if s.window != 256 {
		t.Fatalf("window = %d, want 256", s.window)
	}
	// Stall: do not fetch again. The server may push at most the
	// remaining window; wait for the pipeline to quiesce and count what
	// landed client-side.
	time.Sleep(300 * time.Millisecond)
	buffered := func() int {
		n := len(s.evs) - s.idx
		var drained []*streamFrame
		for {
			select {
			case fr := <-s.frames:
				n += fr.hdr.NumEvents
				drained = append(drained, fr)
				continue
			default:
			}
			break
		}
		for _, fr := range drained {
			s.frames <- fr
		}
		return n
	}
	// Drain-count without consuming: total queued events plus what was
	// already served must not exceed the window.
	inflight := buffered() + len(res.Events)
	if inflight > s.window {
		t.Fatalf("server pushed %d events against a %d-event window", inflight, s.window)
	}
	if inflight < len(res.Events)+1 {
		t.Fatalf("server pushed nothing beyond the first batch (%d)", inflight)
	}
	// Resume: every remaining event arrives, in order.
	off := res.Events[len(res.Events)-1].Offset + 1
	deadline := time.Now().Add(15 * time.Second)
	for off < total && time.Now().Before(deadline) {
		res, err := c.FetchBufferedWait("", "cb", 0, off, 500, 1<<20, 100*time.Millisecond, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Offset != off {
				t.Fatalf("offset %d, want %d", ev.Offset, off)
			}
			off++
		}
	}
	if off != total {
		t.Fatalf("resumed consumption reached %d of %d", off, total)
	}
}

// TestStreamByteCreditBoundsServerPush pins the byte-denominated
// window: with StreamWindowBytes set, a reader that stops consuming
// receives at most the byte window of payload (plus at most one event
// of ReadBudget slack) no matter how much event credit remains — and
// resumes losslessly once consumption restarts. The same workload
// without a byte window buffers far more, which is exactly the
// unbounded-in-bytes behavior the window exists to cap.
func TestStreamByteCreditBoundsServerPush(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	const total, evSize = 2000, 1024
	if _, err := f.CreateTopic("bw", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	evs := make([]event.Event, 100)
	for i := range evs {
		evs[i] = event.Event{Value: make([]byte, evSize)}
	}
	for n := 0; n < total; n += len(evs) {
		if _, err := f.Produce("", "bw", 0, evs, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	const window = 8 << 10 // 8 KB ≈ 8 events; event credit alone would allow 256
	c, err := DialOptions(addr, Options{Anonymous: true, StreamWindowBytes: window, DisableSessionFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	res, err := c.FetchBuffered("", "bw", 0, 0, 10, 1<<20, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := c.stream("bw", 0)
	if s == nil {
		t.Fatal("no stream opened")
	}
	if s.windowBytes != window {
		t.Fatalf("windowBytes = %d, want %d", s.windowBytes, window)
	}
	// Stall: the pump must park once the byte window is exhausted.
	time.Sleep(300 * time.Millisecond)
	queued := 0
	var drained []*streamFrame
	for {
		select {
		case fr := <-s.frames:
			queued += fr.hdr.NumEvents
			drained = append(drained, fr)
			continue
		default:
		}
		break
	}
	for _, fr := range drained {
		s.frames <- fr
	}
	// The window bounds un-granted bytes: the first batch was consumed
	// (its bytes granted back), so what may pile up client-side while
	// the reader stalls is one byte window, with at most one event of
	// ReadBudget slack.
	outstanding := (queued + (len(s.evs) - s.idx)) * evSize
	if outstanding > window+evSize {
		t.Fatalf("server pushed %d un-granted bytes against a %d-byte window", outstanding, window)
	}
	if outstanding == 0 {
		t.Fatal("server pushed nothing beyond the first batch")
	}
	// Resume: every remaining event arrives, in order — byte grants keep
	// the window rolling.
	off := res.Events[len(res.Events)-1].Offset + 1
	deadline := time.Now().Add(15 * time.Second)
	for off < total && time.Now().Before(deadline) {
		res, err := c.FetchBufferedWait("", "bw", 0, off, 500, 1<<20, 100*time.Millisecond, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Offset != off {
				t.Fatalf("offset %d, want %d", ev.Offset, off)
			}
			off++
		}
	}
	if off != total {
		t.Fatalf("resumed consumption reached %d of %d", off, total)
	}
}

// TestStreamCloseFailsSessionWithErrConnClosed: closing the client
// mid-stream completes the session with ErrConnClosed — both a parked
// wait-fetch and the next fetch observe it.
func TestStreamCloseFailsSessionWithErrConnClosed(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	streamTopic(t, f, "cl", 1, 10)
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf broker.FetchBuffer
	if _, err := c.FetchBuffered("", "cl", 0, 0, 100, 1<<20, &buf); err != nil {
		t.Fatal(err)
	}
	// Park a wait-fetch at the stream tail, then close underneath it.
	errCh := make(chan error, 1)
	go func() {
		var b2 broker.FetchBuffer
		_, err := c.FetchBufferedWait("", "cl", 0, 10, 100, 1<<20, 10*time.Second, &b2)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("parked stream fetch returned %v, want ErrConnClosed", err)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("parked fetch took %v to observe Close", time.Since(start))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked stream fetch never unblocked after Close")
	}
	if _, err := c.FetchBuffered("", "cl", 0, 10, 100, 1<<20, &buf); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-Close stream fetch returned %v, want ErrConnClosed", err)
	}
}

// TestStreamDisconnectRecovers: a server-side connection drop fails the
// in-flight stream session, and the client's retry reopens a stream on
// a fresh connection without losing position.
func TestStreamDisconnectRecovers(t *testing.T) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.AllowAnonymous = true
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	streamTopic(t, f, "dc", 1, 200)
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	res, err := c.FetchBuffered("", "dc", 0, 0, 50, 1<<20, &buf)
	if err != nil || len(res.Events) == 0 {
		t.Fatalf("first stream fetch: %d events, %v", len(res.Events), err)
	}
	off := res.Events[len(res.Events)-1].Offset + 1
	// Kill every server-side connection; the stream session dies with
	// the transport error, then the retry path reopens.
	s.Close()
	s2 := NewServer(f)
	s2.AllowAnonymous = true
	if _, err := s2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for off < 200 && time.Now().Before(deadline) {
		res, err := c.FetchBuffered("", "dc", 0, off, 50, 1<<20, &buf)
		if err != nil {
			continue // transient while the new listener comes up
		}
		for _, ev := range res.Events {
			if ev.Offset != off {
				t.Fatalf("offset %d, want %d after reconnect", ev.Offset, off)
			}
			off++
			got++
		}
	}
	if off != 200 {
		t.Fatalf("reconnected consumption reached %d of 200", off)
	}
}

// TestStreamSeekReopens: fetching at an offset other than the stream's
// position closes and reopens the stream — the consumer's Seek just
// works, with no stale data.
func TestStreamSeekReopens(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	streamTopic(t, f, "sk", 1, 300)
	c, err := DialOptions(addr, Options{Anonymous: true, DisableSessionFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	if _, err := c.FetchBuffered("", "sk", 0, 0, 100, 1<<20, &buf); err != nil {
		t.Fatal(err)
	}
	first := c.stream("sk", 0)
	// Seek back to 7: the session must reopen there.
	res, err := c.FetchBufferedWait("", "sk", 0, 7, 10, 1<<20, 2*time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 || res.Events[0].Offset != 7 {
		t.Fatalf("seek fetch returned %d events starting %v, want offset 7", len(res.Events), res.Events)
	}
	second := c.stream("sk", 0)
	if second == nil || second == first {
		t.Fatal("seek did not reopen the stream session")
	}
	// Typed errors still surface through the stream path.
	if _, err := c.FetchBuffered("", "sk", 0, 9999, 10, 1<<20, &buf); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("out-of-range stream open returned %v", err)
	}
	if _, err := c.FetchBuffered("", "nope", 0, 0, 10, 1<<20, &buf); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown-topic stream open returned %v", err)
	}
}

// TestStreamOpenFallsBackOnFeaturelessPeer: a client that negotiated v2
// against a server with streaming masked off (and against a v1 server)
// silently uses request/response fetch.
func TestStreamOpenFallsBackOnFeaturelessPeer(t *testing.T) {
	for _, tc := range []struct {
		name      string
		serverMax int
		disable   bool
	}{
		{"v2-server-streaming-disabled", 0, true},
		{"v1-server", ProtocolV1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := broker.NewFabric(nil)
			if err := f.AddBrokers(2, 2, 8); err != nil {
				t.Fatal(err)
			}
			srv := NewServer(f)
			srv.AllowAnonymous = true
			srv.MaxVersion = tc.serverMax
			srv.DisableStreaming = tc.disable
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			streamTopic(t, f, "fb", 1, 120)
			c, err := DialAnonymous(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Features()&FeatStreamFetch != 0 {
				t.Fatal("server offered streaming despite the mask")
			}
			var buf broker.FetchBuffer
			var off int64
			for off < 120 {
				res, err := c.FetchBufferedWait("", "fb", 0, off, 50, 1<<20, 50*time.Millisecond, &buf)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Events) == 0 {
					t.Fatalf("empty fetch at %d on a loaded partition", off)
				}
				for _, ev := range res.Events {
					if ev.Offset != off {
						t.Fatalf("offset %d, want %d", ev.Offset, off)
					}
					off++
				}
			}
			if c.stream("fb", 0) != nil {
				t.Fatal("stream session open against a feature-less peer")
			}
		})
	}
}

// TestLongPollIdleConsumerPerformsNoReads is the tail-waiter regression
// test: an idle consumer parked in a long poll issues no log reads
// between appends — the CPU cost of an idle subscription is a blocked
// goroutine, not a poll loop.
func TestLongPollIdleConsumerPerformsNoReads(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	streamTopic(t, f, "lp", 1, 5)
	// Pin to plain request/response fetch so this exercises the
	// FetchReq.WaitMaxMS long-poll path specifically (the streaming path
	// parks in its own pump, covered by the stream tests).
	c, err := DialOptions(addr, Options{Anonymous: true, DisableStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cons := client.NewConsumer(c, client.ConsumerConfig{
		Start: client.StartEarliest, PollWait: 3 * time.Second,
	})
	defer cons.Close()
	if err := cons.Assign("lp", 0); err != nil {
		t.Fatal(err)
	}
	// Drain the preloaded events.
	drained := 0
	for drained < 5 {
		evs, err := cons.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		drained += len(evs)
	}
	log, err := f.LeaderLog("lp", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle: a Poll is parked server-side. Reads must not grow while no
	// data arrives.
	type pollRes struct {
		evs []event.Event
		err error
	}
	done := make(chan pollRes, 1)
	go func() {
		evs, err := cons.Poll(100)
		done <- pollRes{evs, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the poll reach the server and park
	before := log.Reads()
	time.Sleep(400 * time.Millisecond)
	if delta := log.Reads() - before; delta != 0 {
		t.Fatalf("idle long-polling consumer performed %d log reads", delta)
	}
	// An append wakes the parked poll promptly.
	if _, err := f.Produce("", "lp", 0, []event.Event{{Value: []byte("wake")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.evs) != 1 || string(r.evs[0].Value) != "wake" {
			t.Fatalf("parked poll woke with %v", r.evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked poll did not wake on append")
	}
}

// TestStreamingConsumerEndToEnd drives the full SDK consumer (group,
// prefetch, long-poll) over a streaming connection, interleaving
// production and consumption.
func TestStreamingConsumerEndToEnd(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("e2e", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cons := client.NewConsumer(c, client.ConsumerConfig{
		Group: "g-e2e", Start: client.StartEarliest, AutoCommit: true,
		Prefetch: true, PollWait: 200 * time.Millisecond,
	})
	defer cons.Close()
	if err := cons.Subscribe("e2e"); err != nil {
		t.Fatal(err)
	}
	const total = 900
	go func() {
		for i := 0; i < total; i += 30 {
			evs := make([]event.Event, 30)
			for j := range evs {
				evs[j] = event.Event{Key: []byte{byte(j)}, Value: []byte(fmt.Sprintf("m%d", i+j))}
			}
			if _, err := f.Produce("", "e2e", -1, evs, broker.AcksLeader); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	got := 0
	lastOff := map[int]int64{}
	deadline := time.Now().Add(20 * time.Second)
	for got < total && time.Now().Before(deadline) {
		evs, err := cons.Poll(64)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if prev, ok := lastOff[ev.Partition]; ok && ev.Offset != prev+1 {
				t.Fatalf("partition %d offsets not contiguous: %d after %d", ev.Partition, ev.Offset, prev)
			}
			lastOff[ev.Partition] = ev.Offset
			got++
		}
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
}
