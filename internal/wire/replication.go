package wire

import (
	"encoding/binary"

	"repro/internal/event"
)

// Inter-broker replication messages (FeatReplication).
//
// Replication is pull-based: a follower issues OpReplicaFetch against
// the partition leader at its own log end offset, appends the returned
// batch, and fetches again. The fetch offset doubles as the follower's
// ack for everything below it, so the steady-state protocol needs no
// extra round trip; OpReplicaAck exists to push the follower's new log
// end to the leader immediately after an append, advancing the high
// watermark (and acks=all producers waiting on it) half a round trip
// sooner than the next fetch would.
//
// Every replication message carries the follower's view of the leader
// epoch. A deposed leader rejects stale-epoch fetches with
// ErrFencedEpoch; a follower that discovers a newer epoch truncates
// its log to the new leader's end and re-fetches. Both ops are v2-only
// and negotiated behind FeatReplication — when the peer masks the bit,
// followers never fetch, the ISR shrinks to the leader, and the
// cluster degrades to the pre-replication single-replica behavior.

// ReplicaFetchReq is a follower's pull against the partition leader
// (OpReplicaFetch). Offset is the follower's log end — everything
// below it is implicitly acked.
type ReplicaFetchReq struct {
	Topic     string
	Partition int
	// Follower is the fetching broker's id.
	Follower int
	// LeaderEpoch is the epoch the follower believes current; the
	// leader fences fetches carrying a stale epoch.
	LeaderEpoch int64
	Offset      int64
	MaxEvents   int
	MaxBytes    int
	// WaitMaxMS long-polls an up-to-date follower on the leader's tail
	// waiter instead of returning empty, like FetchReq.WaitMaxMS.
	WaitMaxMS int
}

func (*ReplicaFetchReq) V2Op() uint8 { return v2OpReplicaFetch }

func (m *ReplicaFetchReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, int64(m.Follower))
	buf = appendInt(buf, m.LeaderEpoch)
	buf = appendInt(buf, m.Offset)
	buf = appendInt(buf, int64(m.MaxEvents))
	buf = appendInt(buf, int64(m.MaxBytes))
	return appendInt(buf, int64(m.WaitMaxMS))
}

func (m *ReplicaFetchReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *ReplicaFetchReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Follower = int(v)
	if m.LeaderEpoch, b, err = getInt(b); err != nil {
		return err
	}
	if m.Offset, b, err = getInt(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxEvents = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxBytes = int(v)
	if v, _, err = getInt(b); err != nil {
		return err
	}
	m.WaitMaxMS = int(v)
	return nil
}

func (m *ReplicaFetchReq) v1() *Request {
	// Replication is negotiated behind FeatReplication, so this
	// conversion only runs against a legacy server — which rejects the
	// op as unknown, the intended fallback.
	return &Request{Op: OpReplicaFetch, Topic: m.Topic, Partition: m.Partition, Offset: m.Offset, MaxEvents: m.MaxEvents, MaxBytes: m.MaxBytes}
}

// ReplicaFetchResp answers a follower pull; the events travel in the
// frame payload with offsets in FetchResp's dense-run form (compacted
// partitions have holes, so runs are required, not an optimization).
//
// Like FetchResp, a ReplicaFetchResp must not be copied by value once
// SetOffsets or DecodeBody has run: runs aliases the inline array.
type ReplicaFetchResp struct {
	NumEvents int
	// LeaderEpoch echoes the leader's current epoch; a follower seeing
	// it ahead of its own truncates and re-fetches.
	LeaderEpoch int64
	// HighWatermark is the partition HW at serve time.
	HighWatermark int64
	// LogStart and LogEnd frame the leader's log: a follower below
	// LogStart has fallen into the tiered-storage gap and resets to
	// LogStart; one above LogEnd diverged and truncates to LogEnd.
	LogStart int64
	LogEnd   int64

	runs    []offsetRun
	runsBuf [4]offsetRun
}

// SetOffsets records the events' offsets in dense-run form (the
// leader side of the encoding).
func (m *ReplicaFetchResp) SetOffsets(evs []event.Event) {
	m.runs = m.runsBuf[:0]
	for i := range evs {
		off := evs[i].Offset
		if n := len(m.runs); n > 0 && m.runs[n-1].start+m.runs[n-1].count == off {
			m.runs[n-1].count++
			continue
		}
		m.runs = append(m.runs, offsetRun{start: off, count: 1})
	}
}

// Stamp fills the container-carried fields on a decoded event batch,
// walking the dense runs — the follower side of the encoding.
func (m *ReplicaFetchResp) Stamp(evs []event.Event, topic string, partition int) {
	i := 0
	for _, r := range m.runs {
		for k := int64(0); k < r.count && i < len(evs); k++ {
			evs[i].Topic = topic
			evs[i].Partition = partition
			evs[i].Offset = r.start + k
			i++
		}
	}
}

func (m *ReplicaFetchResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, m.LeaderEpoch)
	buf = appendInt(buf, m.HighWatermark)
	buf = appendInt(buf, m.LogStart)
	buf = appendInt(buf, m.LogEnd)
	buf = appendInt(buf, int64(m.NumEvents))
	buf = binary.AppendUvarint(buf, uint64(len(m.runs)))
	for _, r := range m.runs {
		buf = appendInt(buf, r.start)
		buf = binary.AppendUvarint(buf, uint64(r.count))
	}
	return buf
}

func (m *ReplicaFetchResp) DecodeBody(b []byte) error {
	var err error
	var v int64
	m.runs = m.runsBuf[:0]
	if m.LeaderEpoch, b, err = getInt(b); err != nil {
		return err
	}
	if m.HighWatermark, b, err = getInt(b); err != nil {
		return err
	}
	if m.LogStart, b, err = getInt(b); err != nil {
		return err
	}
	if m.LogEnd, b, err = getInt(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.NumEvents = int(v)
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	for i := uint64(0); i < n; i++ {
		var r offsetRun
		if r.start, b, err = getInt(b); err != nil {
			return err
		}
		var c uint64
		if c, b, err = getUint(b); err != nil {
			return err
		}
		r.count = int64(c)
		m.runs = append(m.runs, r)
	}
	return nil
}

// Replication never negotiates down to v1 (the feature bit gates it),
// so the v1 conversions carry only what the legacy header can hold.
func (m *ReplicaFetchResp) fromV1(r *Response) {
	m.NumEvents = r.NumEvents
	m.HighWatermark = r.HighWatermark
	m.LogStart = r.StartOffset
	m.runs = nil
}

func (m *ReplicaFetchResp) toV1(r *Response) {
	r.NumEvents = m.NumEvents
	r.HighWatermark = m.HighWatermark
	r.StartOffset = m.LogStart
}

// ReplicaAckReq pushes a follower's log end offset to the leader right
// after an append (OpReplicaAck), advancing the high watermark without
// waiting for the follower's next fetch. Answered with EmptyResp.
type ReplicaAckReq struct {
	Topic     string
	Partition int
	Follower  int
	// LeaderEpoch fences the ack exactly like a fetch.
	LeaderEpoch int64
	// LogEnd is the follower's log end offset after the append.
	LogEnd int64
}

func (*ReplicaAckReq) V2Op() uint8 { return v2OpReplicaAck }

func (m *ReplicaAckReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, int64(m.Follower))
	buf = appendInt(buf, m.LeaderEpoch)
	return appendInt(buf, m.LogEnd)
}

func (m *ReplicaAckReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *ReplicaAckReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Follower = int(v)
	if m.LeaderEpoch, b, err = getInt(b); err != nil {
		return err
	}
	m.LogEnd, _, err = getInt(b)
	return err
}

func (m *ReplicaAckReq) v1() *Request {
	return &Request{Op: OpReplicaAck, Topic: m.Topic, Partition: m.Partition, Offset: m.LogEnd}
}
