// Cluster metadata discovery (FeatClusterMeta): the OpMetadata request.
//
// A multi-listener cluster (internal/clusternet) runs one wire server
// per broker, each restricted to the partitions its broker leads.
// Clients therefore need a way to learn, from any single seed address,
// where everything else lives: OpMetadata returns the controller's
// metadata epoch, every broker's advertised address and liveness, and
// the requested topics' per-partition leadership. The client's router
// (router.go) bootstraps from it at dial time and re-fetches it
// whenever a data-plane request is refused with ErrNotLeader or a
// broker connection fails — the epoch tells it whether the fetched
// document is newer than what it already routes by.
//
// The message is v2-only and gated by the FeatClusterMeta feature bit.
// Against a v1 peer (or a v2 peer that masked the feature) the request
// is answered as an unknown op and the client falls back to
// single-address slot hashing — exactly the pre-cluster behavior.
// Both bodies tolerate trailing bytes, so later revisions can append
// fields without breaking old peers.
package wire

import (
	"encoding/binary"

	"repro/internal/broker"
)

// MetadataReq asks for cluster metadata (OpMetadata). Topics filters
// the response; empty means every topic.
type MetadataReq struct {
	Topics []string
}

func (*MetadataReq) V2Op() uint8 { return v2OpMetadata }

func (m *MetadataReq) AppendBody(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.Topics)))
	for _, t := range m.Topics {
		buf = appendStr(buf, t)
	}
	return buf
}

func (m *MetadataReq) DecodeBody(b []byte) error {
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	m.Topics = nil
	if n > 0 {
		m.Topics = make([]string, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var t string
		if t, b, err = getStr(b); err != nil {
			return err
		}
		m.Topics = append(m.Topics, t)
	}
	return nil
}

// v1 converts to a JSON header a v1 server rejects as an unknown op —
// the clean-fallback path for clients probing a legacy peer.
func (m *MetadataReq) v1() *Request { return &Request{Op: OpMetadata} }

// BrokerMeta is one broker's entry in a metadata response.
type BrokerMeta struct {
	ID int
	// Addr is the broker's advertised wire address; empty for brokers
	// without their own listener (single-listener deployments).
	Addr string
	// Up reports liveness: a down broker stays listed so clients can
	// distinguish "failed" from "never existed".
	Up bool
}

// PartitionLeadership is one partition's placement in a metadata
// response.
type PartitionLeadership struct {
	// Leader is the broker id serving the partition, -1 if leaderless.
	Leader   int
	Replicas []int
	ISR      []int
}

// TopicLeadership is one topic's per-partition leadership.
type TopicLeadership struct {
	Name       string
	Partitions []PartitionLeadership
}

// ReplicaProgress is one follower's acked log end offset in the
// replication section.
type ReplicaProgress struct {
	Broker int
	LogEnd int64
}

// PartitionReplication is one tracked partition's replication state:
// the fencing epoch, the committed frontier, and how far each follower
// has acked behind the leader's log end.
type PartitionReplication struct {
	// ID is the partition id (the section lists only partitions the
	// replication subsystem tracks, so ids are explicit, not dense).
	ID            int
	LeaderEpoch   int64
	HighWatermark int64
	// LogEnd is the leader's log end offset; LogEnd - HighWatermark is
	// the uncommitted window, LogEnd - Followers[i].LogEnd a follower's
	// replication lag.
	LogEnd    int64
	Followers []ReplicaProgress
}

// TopicReplication is one topic's tracked partitions.
type TopicReplication struct {
	Name       string
	Partitions []PartitionReplication
}

// MetadataReplication is the trailing replication section of a
// metadata document — per-partition epochs, high watermarks, and
// follower progress. Nil on servers without the replication subsystem
// (and on documents from peers that predate the section, which simply
// end after the topics).
type MetadataReplication struct {
	Topics []TopicReplication
}

// MetadataResp is the cluster metadata document.
type MetadataResp struct {
	// Epoch is the controller metadata epoch the document was built at.
	// Routing tables keyed by it are invalidated by any smaller value
	// arriving later.
	Epoch   int64
	Brokers []BrokerMeta
	Topics  []TopicLeadership
	// Replication is the trailing replication section, appended after
	// the topics so peers that predate it decode the document
	// unchanged; nil when the serving fabric has no replication
	// subsystem attached.
	Replication *MetadataReplication
}

func appendIntSlice(buf []byte, vs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = appendInt(buf, int64(v))
	}
	return buf
}

func getIntSlice(b []byte) ([]int, []byte, error) {
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, nil, errShortMsg
	}
	var vs []int
	if n > 0 {
		vs = make([]int, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var v int64
		if v, b, err = getInt(b); err != nil {
			return nil, nil, err
		}
		vs = append(vs, int(v))
	}
	return vs, b, nil
}

func (m *MetadataResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, m.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(m.Brokers)))
	for _, br := range m.Brokers {
		buf = appendInt(buf, int64(br.ID))
		buf = appendStr(buf, br.Addr)
		up := byte(0)
		if br.Up {
			up = 1
		}
		buf = append(buf, up)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Topics)))
	for _, t := range m.Topics {
		buf = appendStr(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(len(t.Partitions)))
		for _, p := range t.Partitions {
			buf = appendInt(buf, int64(p.Leader))
			buf = appendIntSlice(buf, p.Replicas)
			buf = appendIntSlice(buf, p.ISR)
		}
	}
	// The replication section rides after everything the original body
	// carried: decoders that predate it stop at the topics, decoders
	// that know it find it only when the encoder had one.
	if m.Replication != nil {
		buf = binary.AppendUvarint(buf, uint64(len(m.Replication.Topics)))
		for _, t := range m.Replication.Topics {
			buf = appendStr(buf, t.Name)
			buf = binary.AppendUvarint(buf, uint64(len(t.Partitions)))
			for _, p := range t.Partitions {
				buf = appendInt(buf, int64(p.ID))
				buf = appendInt(buf, p.LeaderEpoch)
				buf = appendInt(buf, p.HighWatermark)
				buf = appendInt(buf, p.LogEnd)
				buf = binary.AppendUvarint(buf, uint64(len(p.Followers)))
				for _, fo := range p.Followers {
					buf = appendInt(buf, int64(fo.Broker))
					buf = appendInt(buf, fo.LogEnd)
				}
			}
		}
	}
	return buf
}

func (m *MetadataResp) DecodeBody(b []byte) error {
	var err error
	if m.Epoch, b, err = getInt(b); err != nil {
		return err
	}
	nb, b, err := getUint(b)
	if err != nil || nb > uint64(len(b)) {
		return errShortMsg
	}
	m.Brokers = nil
	if nb > 0 {
		m.Brokers = make([]BrokerMeta, 0, nb)
	}
	for i := uint64(0); i < nb; i++ {
		var br BrokerMeta
		var v int64
		if v, b, err = getInt(b); err != nil {
			return err
		}
		br.ID = int(v)
		if br.Addr, b, err = getStr(b); err != nil {
			return err
		}
		if len(b) < 1 {
			return errShortMsg
		}
		br.Up = b[0] != 0
		b = b[1:]
		m.Brokers = append(m.Brokers, br)
	}
	nt, b, err := getUint(b)
	if err != nil || nt > uint64(len(b)) {
		return errShortMsg
	}
	m.Topics = nil
	if nt > 0 {
		m.Topics = make([]TopicLeadership, 0, nt)
	}
	for i := uint64(0); i < nt; i++ {
		var t TopicLeadership
		if t.Name, b, err = getStr(b); err != nil {
			return err
		}
		np, rest, err := getUint(b)
		if err != nil || np > uint64(len(rest)) {
			return errShortMsg
		}
		b = rest
		if np > 0 {
			t.Partitions = make([]PartitionLeadership, 0, np)
		}
		for j := uint64(0); j < np; j++ {
			var p PartitionLeadership
			var v int64
			if v, b, err = getInt(b); err != nil {
				return err
			}
			p.Leader = int(v)
			if p.Replicas, b, err = getIntSlice(b); err != nil {
				return err
			}
			if p.ISR, b, err = getIntSlice(b); err != nil {
				return err
			}
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
	m.Replication = nil
	if len(b) == 0 {
		// A document from a peer that predates the replication section.
		return nil
	}
	nr, b, err := getUint(b)
	if err != nil || nr > uint64(len(b)) {
		return errShortMsg
	}
	m.Replication = &MetadataReplication{}
	if nr > 0 {
		m.Replication.Topics = make([]TopicReplication, 0, nr)
	}
	for i := uint64(0); i < nr; i++ {
		var t TopicReplication
		if t.Name, b, err = getStr(b); err != nil {
			return err
		}
		np, rest, err := getUint(b)
		if err != nil || np > uint64(len(rest)) {
			return errShortMsg
		}
		b = rest
		if np > 0 {
			t.Partitions = make([]PartitionReplication, 0, np)
		}
		for j := uint64(0); j < np; j++ {
			var p PartitionReplication
			var v int64
			if v, b, err = getInt(b); err != nil {
				return err
			}
			p.ID = int(v)
			if p.LeaderEpoch, b, err = getInt(b); err != nil {
				return err
			}
			if p.HighWatermark, b, err = getInt(b); err != nil {
				return err
			}
			if p.LogEnd, b, err = getInt(b); err != nil {
				return err
			}
			nf, rest, err := getUint(b)
			if err != nil || nf > uint64(len(rest)) {
				return errShortMsg
			}
			b = rest
			if nf > 0 {
				p.Followers = make([]ReplicaProgress, 0, nf)
			}
			for k := uint64(0); k < nf; k++ {
				var fo ReplicaProgress
				if v, b, err = getInt(b); err != nil {
					return err
				}
				fo.Broker = int(v)
				if fo.LogEnd, b, err = getInt(b); err != nil {
					return err
				}
				p.Followers = append(p.Followers, fo)
			}
			t.Partitions = append(t.Partitions, p)
		}
		m.Replication.Topics = append(m.Replication.Topics, t)
	}
	return nil
}

// fromV1/toV1 are no-ops: OpMetadata never travels in v1 framing — a
// v1 peer answers it as an unknown op, which is the negotiated
// fallback signal.
func (*MetadataResp) fromV1(*Response) {}
func (*MetadataResp) toV1(*Response)   {}

// buildMetadataResp converts a fabric snapshot into the wire document.
func buildMetadataResp(f *broker.Fabric, topics []string) *MetadataResp {
	snap := f.ClusterSnapshot(topics)
	resp := &MetadataResp{Epoch: snap.Epoch}
	for _, bs := range snap.Brokers {
		resp.Brokers = append(resp.Brokers, BrokerMeta{ID: bs.Info.ID, Addr: bs.Info.Addr, Up: bs.Up})
	}
	for _, tm := range snap.Topics {
		t := TopicLeadership{Name: tm.Name}
		for i := range tm.Partitions {
			pm := &tm.Partitions[i]
			t.Partitions = append(t.Partitions, PartitionLeadership{
				Leader:   pm.Leader,
				Replicas: append([]int(nil), pm.Replicas...),
				ISR:      append([]int(nil), pm.ISR...),
			})
		}
		resp.Topics = append(resp.Topics, t)
	}
	if r := f.Replicator(); r != nil {
		repl := &MetadataReplication{}
		for _, tm := range snap.Topics {
			t := TopicReplication{Name: tm.Name}
			for i := range tm.Partitions {
				st, ok := r.Status(broker.TP{Topic: tm.Name, Partition: tm.Partitions[i].ID})
				if !ok {
					// Untracked: no acks=all produce or replica fetch has
					// touched the partition yet.
					continue
				}
				p := PartitionReplication{
					ID:            tm.Partitions[i].ID,
					LeaderEpoch:   st.LeaderEpoch,
					HighWatermark: st.HighWatermark,
					LogEnd:        st.LogEnd,
				}
				for _, fo := range st.Followers {
					p.Followers = append(p.Followers, ReplicaProgress{Broker: fo.Broker, LogEnd: fo.LogEnd})
				}
				t.Partitions = append(t.Partitions, p)
			}
			if len(t.Partitions) > 0 {
				repl.Topics = append(repl.Topics, t)
			}
		}
		resp.Replication = repl
	}
	return resp
}
