package wire

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

func startServer(t *testing.T, anonymous bool) (*broker.Fabric, string, func()) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.AllowAnonymous = anonymous
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return f, addr, s.Close
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Op: OpProduce, Topic: "t", NumEvents: 2}
	payload := []byte("binary-payload")
	if err := WriteFrame(&buf, &req, payload); err != nil {
		t.Fatal(err)
	}
	var got Request
	data, err := ReadFrame(&buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpProduce || got.Topic != "t" || got.NumEvents != 2 {
		t.Fatalf("header = %+v", got)
	}
	if !bytes.Equal(data, payload) {
		t.Fatalf("payload = %q", data)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{Op: OpPing}, nil); err != nil {
		t.Fatal(err)
	}
	var got Request
	data, err := ReadFrame(&buf, &got)
	if err != nil || data != nil {
		t.Fatalf("data = %v, err = %v", data, err)
	}
}

func TestEncodeDecodeEvents(t *testing.T) {
	evs := []event.Event{
		{Key: []byte("k"), Value: []byte("v1"), Timestamp: time.Unix(1, 0)},
		{Value: []byte("v2"), Timestamp: time.Unix(2, 0), Headers: map[string]string{"h": "x"}},
	}
	payload := EncodeEvents(evs)
	got, err := DecodeEvents(payload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Value) != "v1" || got[1].Headers["h"] != "x" {
		t.Fatalf("decoded = %+v", got)
	}
	// Wrong count errors.
	if _, err := DecodeEvents(payload, 3); err == nil {
		t.Fatal("over-count accepted")
	}
	if _, err := DecodeEvents(payload, 1); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestAnonymousProduceFetch(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	evs := []event.Event{{Value: []byte("hello")}, {Value: []byte("world")}}
	off, err := c.Produce("", "t", 0, evs, broker.AcksLeader)
	if err != nil || off != 0 {
		t.Fatalf("produce: off=%d err=%v", off, err)
	}
	res, err := c.Fetch("", "t", 0, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 2 || string(res.Events[0].Value) != "hello" {
		t.Fatalf("fetch = %+v", res.Events)
	}
	if res.Events[0].Offset != 0 || res.Events[1].Offset != 1 {
		t.Fatalf("offsets = %d, %d", res.Events[0].Offset, res.Events[1].Offset)
	}
	if res.Events[0].Topic != "t" || res.Events[0].Partition != 0 {
		t.Fatalf("routing = %s/%d", res.Events[0].Topic, res.Events[0].Partition)
	}
	if res.HighWatermark != 2 {
		t.Fatalf("hw = %d", res.HighWatermark)
	}
}

func TestAuthenticatedFlowEnforcesACLs(t *testing.T) {
	f, addr, stop := startServer(t, false)
	defer stop()
	alice := f.Auth.RegisterIdentity("alice", "globus")
	mallory := f.Auth.RegisterIdentity("mallory", "globus")
	akey, _ := f.Auth.CreateKey(alice.ID)
	mkey, _ := f.Auth.CreateKey(mallory.ID)
	if _, err := f.CreateTopic("private", alice.ID, cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	ac, err := Dial(addr, akey.AccessKeyID, akey.Secret)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if _, err := ac.Produce("", "private", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); err != nil {
		t.Fatalf("owner produce: %v", err)
	}

	mc, err := Dial(addr, mkey.AccessKeyID, mkey.Secret)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.Produce("", "private", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("intruder produce: %v", err)
	}
	if _, err := mc.Fetch("", "private", 0, 0, 10, 0); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("intruder fetch: %v", err)
	}
}

func TestBadCredentialsRejectedAtDial(t *testing.T) {
	_, addr, stop := startServer(t, false)
	defer stop()
	if _, err := Dial(addr, "AKIA-nope", "wrong"); !errors.Is(err, auth.ErrBadCredentials) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnauthenticatedOpsRejected(t *testing.T) {
	_, addr, stop := startServer(t, false)
	defer stop()
	if _, err := DialAnonymous(addr); !errors.Is(err, auth.ErrBadCredentials) {
		t.Fatalf("anonymous dial on auth-required server: %v", err)
	}
}

func TestSDKOverWire(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("sdk", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The full SDK producer/consumer stack over the wire transport.
	p := client.NewProducer(c, "sdk", client.ProducerConfig{BatchEvents: 16, Linger: time.Millisecond})
	for i := 0; i < 100; i++ {
		if err := p.SendJSON("", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()

	cons := client.NewConsumer(c, client.ConsumerConfig{Group: "g", Start: client.StartEarliest, AutoCommit: true})
	defer cons.Close()
	if err := cons.Subscribe("sdk"); err != nil {
		t.Fatal(err)
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 100 && time.Now().Before(deadline) {
		evs, err := cons.Poll(50)
		if err != nil {
			t.Fatal(err)
		}
		got += len(evs)
	}
	if got != 100 {
		t.Fatalf("consumed %d over wire", got)
	}
}

func TestGroupOpsOverWire(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("g", "", cluster.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	asn, err := c.JoinGroup("grp", "m1", []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Partitions) != 4 || asn.Generation != 1 {
		t.Fatalf("assignment = %+v", asn)
	}
	if err := c.Commit("grp", "m1", asn.Generation, "g", 0, 5); err != nil {
		t.Fatal(err)
	}
	if off := c.Committed("grp", "g", 0); off != 5 {
		t.Fatalf("committed = %d", off)
	}
	gen, err := c.Heartbeat("grp", "m1")
	if err != nil || gen != 1 {
		t.Fatalf("heartbeat = %d, %v", gen, err)
	}
	c.LeaveGroup("grp", "m1")
	if members := f.Groups.Members("grp"); len(members) != 0 {
		t.Fatalf("members after leave = %v", members)
	}
}

func TestOffsetOpsOverWire(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("o", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	before := f.Clock.Now()
	if _, err := f.Produce("", "o", 0, []event.Event{{Value: []byte("a")}, {Value: []byte("b")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if off, err := c.EndOffset("o", 0); err != nil || off != 2 {
		t.Fatalf("end = %d, %v", off, err)
	}
	if off, err := c.StartOffset("o", 0); err != nil || off != 0 {
		t.Fatalf("start = %d, %v", off, err)
	}
	if off, err := c.OffsetForTime("o", 0, before); err != nil || off != 0 {
		t.Fatalf("time seek = %d, %v", off, err)
	}
	meta, err := c.TopicMeta("o")
	if err != nil || meta.Config.Partitions != 1 {
		t.Fatalf("meta = %+v, %v", meta, err)
	}
}

func TestWireErrorKindsSurviveTransport(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 2}); err != nil {
		t.Fatal(err)
	}
	// Take down both brokers so the leader is unavailable.
	_ = f.StopBroker(0)
	_ = f.StopBroker(1)
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Produce("", "t", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader)
	if !errors.Is(err, broker.ErrLeaderUnavailable) {
		t.Fatalf("sentinel lost over wire: %v", err)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrame+1)
	if err := WriteFrame(&buf, &Request{Op: OpPing}, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientReconnectsAfterConnectionDrop(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("r", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Produce("", "r", 0, []event.Event{{Value: []byte("a")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	// Sever every pool connection out from under the client; the next
	// call reconnects transparently.
	c.mu.Lock()
	for _, ep := range c.eps {
		for _, wc := range ep.slots {
			if wc != nil {
				wc.conn.Close()
			}
		}
	}
	c.mu.Unlock()
	if _, err := c.Produce("", "r", 0, []event.Event{{Value: []byte("b")}}, broker.AcksLeader); err != nil {
		t.Fatalf("produce after drop: %v", err)
	}
	end, err := c.EndOffset("r", 0)
	if err != nil || end != 2 {
		t.Fatalf("end = %d, %v", end, err)
	}
}

func TestConcurrentWireClients(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("cc", "", cluster.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	const clients, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialAnonymous(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < each; j++ {
				if _, err := c.Produce("", "cc", -1, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		end, _ := f.EndOffset("cc", p)
		total += end
	}
	if total != clients*each {
		t.Fatalf("total = %d, want %d", total, clients*each)
	}
}

func TestLargeBatchOverWire(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("big", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 4 MB batch: 1024 x 4 KB events (well under MaxFrame).
	payload := make([]byte, 4096)
	batch := make([]event.Event, 1024)
	for i := range batch {
		batch[i] = event.Event{Value: payload}
	}
	if _, err := c.Produce("", "big", 0, batch, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	res, err := c.Fetch("", "big", 0, 0, 2048, 0)
	if err != nil || len(res.Events) != 1024 {
		t.Fatalf("fetched %d, %v", len(res.Events), err)
	}
	if len(res.Events[0].Value) != 4096 {
		t.Fatalf("payload size = %d", len(res.Events[0].Value))
	}
}
