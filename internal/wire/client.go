package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// ErrConnClosed reports a request that failed because Close was called.
// Close completes every pending correlation entry with it, so callers
// blocked on in-flight requests return promptly instead of hanging on a
// connection that will never deliver. It is distinct from transport
// errors: the client never reconnects after an explicit Close.
var ErrConnClosed = errors.New("wire: client closed")

// Options configures DialOptions.
type Options struct {
	// AccessKeyID/Secret authenticate the connection; ignored when
	// Anonymous is set.
	AccessKeyID string
	Secret      string
	// Anonymous connects without credentials (servers with
	// AllowAnonymous only).
	Anonymous bool
	// PoolSize is the number of TCP connections the client spreads load
	// over (default 2). Requests for the same topic-partition always use
	// the same connection, preserving per-partition ordering; requests
	// for different partitions pipeline on independent connections.
	PoolSize int
	// MaxVersion caps the protocol version negotiated at connection open
	// (default MaxProtocol). Setting it to ProtocolV1 skips negotiation
	// entirely, reproducing a legacy client.
	MaxVersion int
	// DisableStreaming masks FeatStreamFetch out of negotiation: the
	// client consumes via pipelined request/response fetch even against
	// streaming-capable servers. Used by interop tests and same-run
	// benchmark baselines.
	DisableStreaming bool
	// DisableClusterMeta masks FeatClusterMeta out of negotiation: the
	// client never fetches cluster metadata and routes every request
	// to its seed address with slot hashing — the pre-cluster
	// behavior. Used by interop tests and single-listener baselines.
	DisableClusterMeta bool
	// StreamWindowBytes, when > 0, adds a byte-denominated window to
	// streaming-fetch sessions: besides the event-credit window, the
	// server stops pushing once this many un-granted payload bytes are
	// outstanding, so a stalled reader's server-side buffering is
	// bounded in bytes even when event sizes vary wildly. Zero keeps
	// the event-credit-only semantics. Multiplexed fetch sessions use
	// it as the session's shared byte window (zero = server default).
	StreamWindowBytes int
	// DisableSessionFetch masks FeatSessionFetch out of negotiation:
	// the client consumes via per-partition streams (or plain fetch)
	// even against session-capable servers. Used by interop tests and
	// same-run benchmark baselines.
	DisableSessionFetch bool
	// DisableMetaPush masks FeatMetaPush out of negotiation: the
	// client never receives pushed metadata and re-routes reactively
	// after a misrouted request, the pre-push behavior. Used by interop
	// and failover tests.
	DisableMetaPush bool
	// DisableReplication masks FeatReplication out of negotiation: the
	// client never issues replica fetches or acks. Used by interop tests
	// to prove a mixed-version cluster degrades to single-replica
	// operation instead of wedging.
	DisableReplication bool
	// DisableStats masks FeatStats out of negotiation: the client never
	// requests observability snapshots, emulating a client that predates
	// them. Used by interop tests.
	DisableStats bool
}

// features is the feature set this client offers in negotiation.
func (o *Options) features() uint32 {
	feats := allFeatures
	if o.DisableStreaming {
		feats &^= FeatStreamFetch
	}
	if o.DisableClusterMeta {
		feats &^= FeatClusterMeta
	}
	if o.DisableSessionFetch {
		feats &^= FeatSessionFetch
	}
	if o.DisableMetaPush {
		feats &^= FeatMetaPush
	}
	if o.DisableReplication {
		feats &^= FeatReplication
	}
	if o.DisableStats {
		feats &^= FeatStats
	}
	return feats
}

func (o *Options) fill() {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.MaxVersion <= 0 || o.MaxVersion > MaxProtocol {
		o.MaxVersion = MaxProtocol
	}
	if o.StreamWindowBytes > maxStreamCreditBytes {
		// Clamp to the server's own bound: asking for more would leave
		// the grant threshold (half the requested window) beyond what
		// the server will ever push, stalling the stream permanently.
		o.StreamWindowBytes = maxStreamCreditBytes
	}
}

// Client is a client.Transport over the wire protocol: SDK producers
// and consumers built on it run against a remote fabric unchanged. Its
// methods are typed per operation; on a v2 connection each call is one
// binary header, on a v1 connection the same message transparently
// travels as the legacy JSON header (see Options.MaxVersion).
//
// The transport is pipelined: each request carries a correlation ID, a
// writer goroutine streams frames onto the connection (coalescing
// queued frames into one write), and a reader goroutine dispatches
// responses to their waiting callers by correlation ID. Many requests
// from many goroutines are therefore in flight at once. On top of
// that, the client keeps a small connection pool per broker endpoint
// with per-partition affinity: requests for the same topic-partition
// always share one connection (preserving ordering), while other
// partitions proceed on their own connections.
//
// When the seed connection negotiates FeatClusterMeta, the client is a
// metadata-driven router (router.go): it learns every broker's
// advertised address and each partition's leader from OpMetadata,
// dials partition leaders directly, and on ErrNotLeader or a broker
// connection failure re-fetches metadata and re-routes. Without the
// feature every request goes to the seed address — the single-listener
// behavior.
type Client struct {
	// seed is the bootstrap address: the one the caller dialed, which
	// also carries control-plane ops and every request the router
	// cannot place.
	seed string
	opts Options

	mu sync.Mutex
	// eps are the per-address connection pools, created lazily as the
	// router resolves leaders. Single-listener clients only ever hold
	// the seed entry.
	eps    map[string]*endpoint
	closed bool

	// rt is the cluster routing table (router.go).
	rt clusterRouter
	// prodRR round-robins unkeyed events across partitions when the
	// client pre-partitions batches for leader-direct produce.
	prodRR atomic.Uint64
}

// endpoint is one broker address's connection pool.
type endpoint struct {
	addr string
	// slots are the pool's connections, dialed lazily; the seed's
	// slot 0 carries control-plane ops and is established at Dial time
	// so credential errors surface immediately.
	slots []*wireConn
	// slotMu serializes (re)dials per slot, so the dial + handshake of
	// one connection never blocks requests riding other, healthy pool
	// connections (c.mu is held only for the map-in/map-out).
	slotMu []sync.Mutex
}

// call is one in-flight request: a correlation entry plus the caller's
// completion channel.
type call struct {
	// op is the expected v2 response op (the request's op byte).
	op uint8
	// req is the typed request; the writer encodes it as a v2 binary
	// header or, on a v1 connection, via its JSON conversion.
	req ReqMsg
	// rawV1, when set, bypasses req entirely and is sent as a v1 JSON
	// header regardless of the connection version — the negotiate
	// handshake itself, which must be readable by servers of any vintage.
	rawV1   *Request
	corr    uint64
	payload []byte
	// arena, when non-nil, is the caller's receive buffer: the reader
	// goroutine reads the response payload into it (growing as needed),
	// which is what makes the consumer's fetch session reuse work over
	// the wire.
	arena []byte
	// oneway marks a request with no response (stream credit grants and
	// closes): the writer completes it right after its bytes leave,
	// without registering a pending correlation entry.
	oneway bool
	// resp is the typed response target, decoded from the v2 body or
	// filled from the v1 header; nil discards the body.
	resp respMsg
	// v1resp keeps the raw v1 header (negotiation reads Version/Features
	// from it).
	v1resp Response
	data   []byte
	// srvErr is a server-reported error, reconstructed as its domain
	// sentinel; err is a transport or codec failure.
	srvErr error
	err    error
	done   chan struct{}
}

// wireConn is one TCP connection with its pipelining state. A failed
// wireConn is never revived; reconnection replaces it wholesale, and
// every pending or queued call on the failed connection is completed
// with the connection's error (the fan-out the SDK retry loop needs).
type wireConn struct {
	conn net.Conn
	// rd buffers reads: pipelined responses arrive many frames per TCP
	// segment, and the frame format needs several small reads per frame.
	// Only the reader goroutine touches it.
	rd *bufio.Reader
	// hdrBuf is the reader's reusable header scratch buffer.
	hdrBuf []byte

	mu   sync.Mutex
	cond *sync.Cond // signaled on queue push and on failure
	// version is the negotiated protocol version. It starts at v1 and is
	// bumped at most once, during the handshake, before any caller
	// requests are admitted.
	version  int
	features uint32
	// queue holds calls accepted but not yet written; the writer drains
	// it in FIFO order. Unbounded: depth is naturally limited by the
	// number of callers blocked awaiting responses.
	queue []*call
	// pending holds written calls awaiting responses, by correlation ID.
	// A call is registered here by the writer immediately before its
	// frame hits the connection, so entries always refer to requests the
	// server may answer.
	pending  map[uint64]*call
	nextCorr uint64
	err      error // sticky: first failure wins
	// done is closed by fail (after err is set): stream consumers and
	// long-poll waiters park on it instead of polling the sticky error.
	done chan struct{}

	// Stream sessions (FeatStreamFetch), keyed both by the server-facing
	// stream ID (reader dispatch) and by topic-partition (fetch lookup).
	streamMu     sync.Mutex
	streamsByID  map[uint64]*clientStream
	streamsByTP  map[streamKey]*clientStream
	nextStreamID uint64
	// noStreams latches when the server refuses a stream open despite
	// negotiation, pinning this connection to request/response fetch.
	noStreams bool

	// Multiplexed fetch session (FeatSessionFetch): at most one per
	// connection, multiplexing every subscribed topic-partition over a
	// single shared credit window (sessionclient.go). sessOpenMu
	// serializes session opens (never held while the reader needs
	// sessMu); sessMu guards the pointer and the noSessions latch.
	sessOpenMu sync.Mutex
	sessMu     sync.Mutex
	session    *clientSession
	nextSessID uint64
	// noSessions latches when the server refuses a session open despite
	// negotiation, falling back to per-partition streams.
	noSessions bool

	// onMetaPush, set before the reader starts, adopts server-pushed
	// metadata documents (FeatMetaPush) into the client's routing table.
	onMetaPush func(*MetadataResp)
}

// Dial connects and authenticates with an access key/secret.
func Dial(addr, accessKeyID, secret string) (*Client, error) {
	return DialOptions(addr, Options{AccessKeyID: accessKeyID, Secret: secret})
}

// DialAnonymous connects without credentials (servers with
// AllowAnonymous only).
func DialAnonymous(addr string) (*Client, error) {
	return DialOptions(addr, Options{Anonymous: true})
}

// DialOptions connects with explicit pool and protocol options.
func DialOptions(addr string, o Options) (*Client, error) {
	o.fill()
	c := &Client{seed: addr, opts: o, eps: make(map[string]*endpoint)}
	// Establish the seed's slot 0 eagerly so bad credentials or an
	// unreachable server surface at dial time.
	wc, err := c.connAt(addr, 0)
	if err != nil {
		return nil, err
	}
	// When the server offered cluster metadata, bootstrap the routing
	// table now: from here on, data-plane requests dial partition
	// leaders directly.
	if wc.featuresNow()&FeatClusterMeta != 0 {
		_ = c.refreshMetadata() // failure leaves the router disabled: seed-only routing
	}
	return c, nil
}

// ProtocolVersion reports the protocol version negotiated with the
// server (ProtocolV1 for legacy peers), or 0 before any connection is
// established.
func (c *Client) ProtocolVersion() int {
	if wc := c.seedConn(); wc != nil {
		wc.mu.Lock()
		defer wc.mu.Unlock()
		return wc.version
	}
	return 0
}

// Features reports the feature bitmask negotiated with the server (0
// for v1 peers or before any connection is established).
func (c *Client) Features() uint32 {
	if wc := c.seedConn(); wc != nil {
		return wc.featuresNow()
	}
	return 0
}

// seedConn returns a live connection for version/feature probes: the
// seed endpoint's when one is established, else any endpoint's — after
// the seed broker dies, the client keeps serving through other
// brokers, and its negotiated version must not read as 0.
func (c *Client) seedConn() *wireConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep := c.eps[c.seed]; ep != nil {
		for _, wc := range ep.slots {
			if wc != nil {
				return wc
			}
		}
	}
	for _, ep := range c.eps {
		for _, wc := range ep.slots {
			if wc != nil {
				return wc
			}
		}
	}
	return nil
}

// featuresNow snapshots the connection's negotiated feature set.
func (wc *wireConn) featuresNow() uint32 {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.features
}

// slotFor maps a topic-partition to its pool connection. Key-routed
// produces (partition < 0) hash the topic alone, so all of a topic's
// key-routed traffic shares one connection and per-key ordering holds.
// Reads only the immutable pool size, so it needs no lock.
func (c *Client) slotFor(topic string, partition int) int {
	n := c.opts.PoolSize
	if n == 1 || topic == "" {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(topic); i++ {
		h ^= uint32(topic[i])
		h *= 16777619
	}
	if partition >= 0 {
		h ^= uint32(partition)
		h *= 16777619
	}
	return int(h % uint32(n))
}

// endpoint returns (creating if needed) the connection pool for addr.
func (c *Client) endpoint(addr string) (*endpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	ep := c.eps[addr]
	if ep == nil {
		ep = &endpoint{
			addr:   addr,
			slots:  make([]*wireConn, c.opts.PoolSize),
			slotMu: make([]sync.Mutex, c.opts.PoolSize),
		}
		c.eps[addr] = ep
	}
	return ep, nil
}

// connAt returns slot i of addr's pool, dialing if there is none.
func (c *Client) connAt(addr string, i int) (*wireConn, error) {
	ep, err := c.endpoint(addr)
	if err != nil {
		return nil, err
	}
	ep.slotMu[i].Lock()
	defer ep.slotMu[i].Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	if wc := ep.slots[i]; wc != nil {
		c.mu.Unlock()
		return wc, nil
	}
	c.mu.Unlock()
	return c.installConn(ep, i)
}

// reconnectAt replaces slot i of addr's pool, unless another caller
// already has.
func (c *Client) reconnectAt(addr string, i int, old *wireConn) (*wireConn, error) {
	ep, err := c.endpoint(addr)
	if err != nil {
		return nil, err
	}
	ep.slotMu[i].Lock()
	defer ep.slotMu[i].Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	if ep.slots[i] != nil && ep.slots[i] != old {
		wc := ep.slots[i]
		c.mu.Unlock()
		return wc, nil
	}
	ep.slots[i] = nil
	c.mu.Unlock()
	return c.installConn(ep, i)
}

// installConn dials a fresh connection and publishes it as slot i of
// the endpoint. Callers hold ep.slotMu[i] (but not c.mu, so other
// slots and endpoints keep flowing during the dial and handshake round
// trips).
func (c *Client) installConn(ep *endpoint, i int) (*wireConn, error) {
	wc, err := c.connect(ep.addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.fail(ErrConnClosed)
		return nil, ErrConnClosed
	}
	ep.slots[i] = wc
	c.mu.Unlock()
	return wc, nil
}

// connect dials, starts the writer/reader goroutines, negotiates the
// protocol version, and authenticates. It touches only immutable
// client state, so no lock is held across the network round trips.
func (c *Client) connect(addr string) (*wireConn, error) {
	conn, err := net.DialTimeout("tcp", addr, IOTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	wc := &wireConn{
		conn:    conn,
		rd:      bufio.NewReaderSize(conn, 64<<10),
		version: ProtocolV1,
		pending: make(map[uint64]*call),
		done:    make(chan struct{}),
	}
	wc.cond = sync.NewCond(&wc.mu)
	// Pushed metadata re-routes before a request fails: adopt the
	// document synchronously on the reader (adoptMetadata never blocks
	// on network I/O) so the table is fresh before the next frame.
	wc.onMetaPush = c.adoptMetadata
	go wc.writeLoop()
	go wc.readLoop()

	// Version handshake, always in v1 framing: a server that predates
	// negotiation answers with an "unknown op" (or not-authenticated)
	// error, which means "speak v1".
	if c.opts.MaxVersion >= ProtocolV2 {
		ncl := &call{
			rawV1: &Request{Op: OpNegotiate, MaxVersion: c.opts.MaxVersion, Features: c.opts.features()},
			done:  make(chan struct{}),
		}
		if err := wc.do(ncl); err != nil {
			wc.fail(err)
			return nil, err
		}
		if ncl.srvErr == nil && ncl.v1resp.Version >= ProtocolV2 {
			wc.mu.Lock()
			wc.version = ProtocolV2
			wc.features = ncl.v1resp.Features & c.opts.features()
			wc.mu.Unlock()
		}
	}

	// Authenticate (or probe, for anonymous connections) in the
	// negotiated framing, so rejection surfaces at dial time.
	var hcl *call
	if c.opts.Anonymous {
		hcl = &call{op: v2OpPing, req: &PingReq{}, resp: &EmptyResp{}, done: make(chan struct{})}
	} else {
		hcl = &call{
			op:   v2OpAuth,
			req:  &AuthReq{AccessKeyID: c.opts.AccessKeyID, Secret: c.opts.Secret},
			resp: &AuthResp{}, done: make(chan struct{}),
		}
	}
	err = wc.do(hcl)
	if err == nil {
		err = hcl.srvErr
	}
	if err != nil {
		wc.fail(err)
		return nil, err
	}
	return wc, nil
}

// Close shuts every pool connection on every endpoint, failing all
// pending requests with ErrConnClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var conns []*wireConn
	for _, ep := range c.eps {
		for i, wc := range ep.slots {
			if wc != nil {
				conns = append(conns, wc)
				ep.slots[i] = nil
			}
		}
	}
	c.mu.Unlock()
	for _, wc := range conns {
		wc.fail(ErrConnClosed)
	}
	return nil
}

// do submits a prepared call on the connection and blocks for its
// completion, returning any transport/codec error (server-reported
// errors are in cl.srvErr).
func (wc *wireConn) do(cl *call) error {
	wc.mu.Lock()
	if wc.err != nil {
		err := wc.err
		wc.mu.Unlock()
		return err
	}
	wc.nextCorr++
	cl.corr = wc.nextCorr
	wc.queue = append(wc.queue, cl)
	wc.cond.Signal()
	wc.mu.Unlock()
	<-cl.done
	return cl.err
}

// sendOneway enqueues a request with no response (stream credit grants
// and closes) without blocking for its write: flow-control traffic must
// never stall the consumer behind the writer.
func (wc *wireConn) sendOneway(req ReqMsg) error {
	cl := &call{op: req.V2Op(), req: req, oneway: true, done: make(chan struct{})}
	wc.mu.Lock()
	if wc.err != nil {
		err := wc.err
		wc.mu.Unlock()
		return err
	}
	wc.nextCorr++
	cl.corr = wc.nextCorr
	wc.queue = append(wc.queue, cl)
	wc.cond.Signal()
	wc.mu.Unlock()
	return nil
}

// fail marks the connection broken and fans the error out to every
// pending caller. Queued-but-unwritten calls are completed by the writer
// on its way out (it is the only goroutine that touches their payloads).
// Idempotent: the first error wins.
func (wc *wireConn) fail(err error) {
	wc.mu.Lock()
	if wc.err != nil {
		wc.mu.Unlock()
		return
	}
	wc.err = err
	pending := wc.pending
	wc.pending = make(map[uint64]*call)
	wc.cond.Broadcast()
	// err is visible before done closes: stream consumers woken by done
	// always observe the sticky error.
	close(wc.done)
	wc.mu.Unlock()
	wc.conn.Close()
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
}

// appendCallFrame encodes one request frame in the connection's
// negotiated framing. The negotiate handshake (rawV1) always travels as
// v1 JSON.
func appendCallFrame(buf []byte, version int, cl *call) ([]byte, error) {
	if cl.rawV1 != nil || version < ProtocolV2 {
		r := cl.rawV1
		if r == nil {
			r = cl.req.v1()
		}
		r.Corr = cl.corr
		return appendFrame(buf, r, cl.payload)
	}
	return appendFrameRequestV2(buf, cl.corr, cl.req, cl.payload)
}

// writeLoop drains the queue, encoding every waiting frame into one
// buffer and writing them with a single syscall — pipelined requests
// coalesce on the wire. Each call is registered in pending just before
// its bytes are written, so a response can never arrive for an
// unregistered correlation ID.
func (wc *wireConn) writeLoop() {
	buf := make([]byte, 0, 4<<10)
	var batch, written []*call
	for {
		wc.mu.Lock()
		for len(wc.queue) == 0 && wc.err == nil {
			wc.cond.Wait()
		}
		if wc.err != nil {
			q := wc.queue
			wc.queue = nil
			err := wc.err
			wc.mu.Unlock()
			for _, cl := range q {
				cl.err = err
				close(cl.done)
			}
			return
		}
		batch = append(batch[:0], wc.queue...)
		wc.queue = wc.queue[:0]
		version := wc.version
		wc.mu.Unlock()

		buf = buf[:0]
		written = written[:0]
		for _, cl := range batch {
			n := len(buf)
			grown, err := appendCallFrame(buf, version, cl)
			if err != nil {
				// Frame-level error (oversized, unmarshalable header):
				// fail this call alone, the connection is fine.
				buf = buf[:n]
				cl.err = err
				close(cl.done)
				continue
			}
			buf = grown
			written = append(written, cl)
		}
		if len(written) == 0 {
			continue
		}
		wc.mu.Lock()
		if wc.err != nil {
			// The connection died between dequeue and write; nothing was
			// sent for these calls, so complete them here.
			err := wc.err
			wc.mu.Unlock()
			for _, cl := range written {
				cl.err = err
				close(cl.done)
			}
			return
		}
		expectResp := false
		for _, cl := range written {
			if cl.oneway {
				continue
			}
			wc.pending[cl.corr] = cl
			expectResp = true
		}
		// A response must arrive within IOTimeout of the last write —
		// unless everything written was one-way (credit grants on an
		// otherwise idle stream connection), where no response is owed
		// and an armed read deadline would kill a healthy idle link.
		_ = wc.conn.SetWriteDeadline(time.Now().Add(IOTimeout))
		if expectResp {
			_ = wc.conn.SetReadDeadline(time.Now().Add(IOTimeout))
		}
		wc.mu.Unlock()
		_, werr := wc.conn.Write(buf)
		for _, cl := range written {
			// One-way calls complete at write time, success or failure;
			// they are never in pending, so fail() cannot reach them.
			if cl.oneway {
				cl.err = werr
				close(cl.done)
			}
		}
		if werr != nil {
			wc.fail(werr)
			// Loop back: the top of the loop drains remaining queued
			// calls with the failure.
		}
		if cap(buf) > maxPooledFrame {
			buf = make([]byte, 0, 4<<10)
		}
	}
}

// readLoop reads response frames and dispatches them to pending calls
// by correlation ID, decoding the typed (or JSON) header and reading
// each payload directly into the matched caller's receive buffer when
// one was provided. The framing version is checked per frame: the
// handshake flips it between the negotiate response (v1) and the first
// v2 response.
func (wc *wireConn) readLoop() {
	for {
		hb, err := readHeaderInto(wc.rd, &wc.hdrBuf)
		if err != nil {
			wc.fail(err)
			return
		}
		wc.mu.Lock()
		v2 := wc.version >= ProtocolV2
		wc.mu.Unlock()

		var corr uint64
		var op, code uint8
		var body []byte
		var v1resp Response
		if v2 {
			if op, code, corr, body, err = decodeRespPrefixV2(hb); err != nil {
				wc.fail(err)
				return
			}
			if op == v2OpStreamBatch || op == v2OpStreamClose {
				// Server-pushed stream frame: corr is the stream ID, not a
				// pending correlation entry. Routed straight to the stream's
				// frame queue (payload included); never touches pending.
				if err := wc.handleStreamPush(op, code, corr, body); err != nil {
					wc.fail(err)
					return
				}
				continue
			}
			if op == v2OpSessionBatch || op == v2OpSessionClose {
				// Server-pushed session frame: corr packs session and sub
				// IDs (payload included); never touches pending.
				if err := wc.handleSessionPush(op, code, corr, body); err != nil {
					wc.fail(err)
					return
				}
				continue
			}
			if op == v2OpMetadataPush {
				// Server-pushed cluster metadata (FeatMetaPush): adopt the
				// fresh routing table so the next request already targets
				// the new leaders.
				var md *MetadataResp
				if code == codeOK {
					md = &MetadataResp{}
					if err := md.DecodeBody(body); err != nil {
						wc.fail(err)
						return
					}
				}
				if _, err := ReadPayloadInto(wc.rd, nil); err != nil {
					wc.fail(err)
					return
				}
				if md != nil && wc.onMetaPush != nil {
					wc.onMetaPush(md)
				}
				continue
			}
		} else {
			if err := json.Unmarshal(hb, &v1resp); err != nil {
				wc.fail(fmt.Errorf("wire: bad header: %w", err))
				return
			}
			corr = v1resp.Corr
		}

		wc.mu.Lock()
		cl := wc.pending[corr]
		delete(wc.pending, corr)
		wc.mu.Unlock()

		// Decode the header into the matched call before hdrBuf is
		// reused by the next frame. Decode errors complete only this
		// call; the connection framing is still intact.
		if cl != nil {
			if v2 {
				switch {
				case code != codeOK:
					if detail, _, derr := getStr(body); derr != nil {
						cl.err = derr
					} else {
						cl.srvErr = errFromCode(code, detail)
					}
				case op != cl.op:
					cl.err = fmt.Errorf("wire: response op %d for request op %d", op, cl.op)
				case cl.resp != nil:
					cl.err = cl.resp.DecodeBody(body)
				}
			} else {
				cl.v1resp = v1resp
				if v1resp.Err != "" {
					cl.srvErr = errFromKind(v1resp.ErrKind, v1resp.Err)
				} else if cl.resp != nil {
					cl.resp.fromV1(&cl.v1resp)
				}
			}
		}

		var arena []byte
		if cl != nil {
			arena = cl.arena
		}
		data, err := ReadPayloadInto(wc.rd, arena)
		if err != nil {
			// cl is already out of the pending map, so fail() cannot
			// reach it — complete it here or its caller hangs.
			if cl != nil {
				cl.err = err
				close(cl.done)
			}
			wc.fail(err)
			return
		}
		wc.mu.Lock()
		if len(wc.pending) == 0 {
			// Idle: don't let the last exchange's deadline kill the
			// connection while nothing is outstanding.
			_ = wc.conn.SetReadDeadline(time.Time{})
		} else if wc.rd.Buffered() == 0 {
			// Deadline syscalls only when the next frame isn't already
			// buffered — at full pipeline depth responses arrive many per
			// read, and per-frame deadline churn costs real throughput.
			_ = wc.conn.SetReadDeadline(time.Now().Add(IOTimeout))
		}
		wc.mu.Unlock()
		if cap(wc.hdrBuf) > maxPooledFrame {
			// One giant v1 offsets header must not pin its buffer.
			wc.hdrBuf = nil
		}
		if cl != nil {
			cl.data = data
			if data != nil {
				cl.arena = data
			}
			close(cl.done)
		}
	}
}

// callAt submits a typed request on the addressed endpoint's
// partition-affine connection, waits for its response, and retries
// once over a fresh connection to the same address on transport
// failure — the router (router.go) and the SDK's retry loop handle
// persistent failure and re-routing. The returned error is either a
// transport error or the server's reconstructed domain sentinel.
func (c *Client) callAt(addr string, slot int, req ReqMsg, resp respMsg, payload, arena []byte) (*call, error) {
	wc, err := c.connAt(addr, slot)
	if err != nil {
		return nil, err
	}
	cl := &call{op: req.V2Op(), req: req, resp: resp, payload: payload, arena: arena, done: make(chan struct{})}
	derr := wc.do(cl)
	if derr == nil {
		return cl, cl.srvErr
	}
	if errors.Is(derr, ErrConnClosed) {
		return nil, derr
	}
	wc.mu.Lock()
	alive := wc.err == nil
	wc.mu.Unlock()
	if alive {
		// Call-local failure (oversized frame, codec error): the
		// connection is fine and a retry would fail identically.
		return nil, derr
	}
	wc2, rerr := c.reconnectAt(addr, slot, wc)
	if rerr != nil {
		return nil, derr
	}
	cl2 := &call{op: req.V2Op(), req: req, resp: resp, payload: payload, arena: cl.arena, done: make(chan struct{})}
	if derr := wc2.do(cl2); derr != nil {
		return nil, derr
	}
	return cl2, cl2.srvErr
}

// producePool recycles produce payload buffers: the payload is fully
// encoded into the writer's frame buffer before the call completes, so
// it can be reused as soon as the round trip returns.
var producePool = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// Produce implements client.Transport. identity is established by the
// connection's credentials; the parameter is ignored.
//
// With the router active, a per-event-routed batch (partition < 0) is
// pre-partitioned client-side — keyed events through the fabric's own
// FNV-1a partitioner, unkeyed events round-robin — and each bucket is
// produced directly against its partition's leader. Without the
// router the whole batch travels to the seed address, which routes per
// event exactly as before.
func (c *Client) Produce(_ string, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	if partition < 0 && c.RouterEnabled() {
		if parts, ok := c.produceParts(topic); ok && parts > 0 {
			return c.producePartitioned(topic, parts, evs, acks)
		}
	}
	return c.produceTo(topic, partition, evs, acks)
}

// produceTo produces one batch to a single partition (or, when
// partition < 0, to the seed's per-event router).
func (c *Client) produceTo(topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	req := ProduceReq{Topic: topic, Partition: partition, Acks: int(acks), NumEvents: len(evs)}
	var resp ProduceResp
	bp := producePool.Get().(*[]byte)
	payload := event.AppendBatchMarshal((*bp)[:0], evs)
	_, err := c.dataCall(topic, partition, &req, &resp, payload, nil)
	if cap(payload) <= maxPooledFrame {
		*bp = payload[:0]
		producePool.Put(bp)
	}
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// producePartitioned buckets a per-event-routed batch by partition and
// produces every bucket concurrently against its leader. The returned
// offset is the first bucket's base offset, matching the fabric's
// Produce contract for multi-partition batches.
func (c *Client) producePartitioned(topic string, parts int, evs []event.Event, acks broker.Acks) (int64, error) {
	if parts == 1 || len(evs) == 0 {
		return c.produceTo(topic, 0, evs, acks)
	}
	buckets := make([][]event.Event, parts)
	order := make([]int, 0, parts)
	for i := range evs {
		var p int
		if len(evs[i].Key) > 0 {
			p = broker.PartitionForKey(evs[i].Key, parts)
		} else {
			p = int(c.prodRR.Add(1) % uint64(parts))
		}
		if buckets[p] == nil {
			order = append(order, p)
		}
		buckets[p] = append(buckets[p], evs[i])
	}
	if len(order) == 1 {
		return c.produceTo(topic, order[0], buckets[order[0]], acks)
	}
	offs := make([]int64, len(order))
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for i, p := range order {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			offs[i], errs[i] = c.produceTo(topic, p, buckets[p], acks)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return offs[0], nil
}

// Fetch implements client.Transport.
func (c *Client) Fetch(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error) {
	req := FetchReq{Topic: topic, Partition: partition, Offset: offset, MaxEvents: maxEvents, MaxBytes: maxBytes}
	var resp FetchResp
	cl, err := c.dataCall(topic, partition, &req, &resp, nil, nil)
	if err != nil {
		return broker.FetchResult{}, err
	}
	evs, err := DecodeEvents(cl.data, resp.NumEvents)
	if err != nil {
		return broker.FetchResult{}, err
	}
	resp.Stamp(evs, topic, partition)
	return broker.FetchResult{Events: evs, HighWatermark: resp.HighWatermark, StartOffset: resp.StartOffset}, nil
}

// FetchBuffered implements the SDK consumer's buffered-fetch extension
// (client.BufferedFetcher). When the connection negotiated
// FeatStreamFetch, the call is served from a per-partition stream the
// server pushes into — zero request round trips at steady state; see
// streamclient.go. Otherwise (v1 peers, stream-disabled servers) the
// response payload is read directly into buf.Arena by the reader
// goroutine and decoded into buf.Events, so a steady-state poll reuses
// one receive buffer instead of allocating a frame and an event slice
// per fetch. Either way, returned events are valid until the next
// fetch on this topic-partition.
func (c *Client) FetchBuffered(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	return c.fetchBuffered(topic, partition, offset, maxEvents, maxBytes, 0, buf)
}

// FetchBufferedWait implements the SDK's long-poll extension
// (client.WaitFetcher): an empty fetch blocks up to wait for data. On a
// stream connection the wait parks on the local frame queue; on the
// request/response path it rides FetchReq.WaitMaxMS to the server's
// tail waiter. Either way an idle consumer stops hot-looping.
func (c *Client) FetchBufferedWait(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	return c.fetchBuffered(topic, partition, offset, maxEvents, maxBytes, wait, buf)
}

func (c *Client) fetchBuffered(topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	res, err := c.fetchBufferedAt(c.dataAddr(topic, partition), topic, partition, offset, maxEvents, maxBytes, wait, buf)
	if err == nil || !c.RouterEnabled() || !rerouteable(err) {
		return res, err
	}
	// The partition's leader moved or its broker connection failed:
	// re-fetch metadata and retry once against the freshly resolved
	// leader. Streaming sessions reopen there at the same offset — the
	// consumer's position, which the new leader serves losslessly
	// because acked events were replicated synchronously.
	if rerr := c.refreshMetadata(); rerr != nil {
		return res, err
	}
	return c.fetchBufferedAt(c.dataAddr(topic, partition), topic, partition, offset, maxEvents, maxBytes, wait, buf)
}

// fetchBufferedAt serves one buffered fetch from the addressed broker:
// through the connection's multiplexed fetch session when it
// negotiated FeatSessionFetch, through a per-partition stream when it
// negotiated streaming, else request/response.
func (c *Client) fetchBufferedAt(addr, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	slot := c.slotFor(topic, partition)
	wc, err := c.connAt(addr, slot)
	if err != nil {
		return broker.FetchResult{}, err
	}
	if wc.sessionEnabled() {
		res, serr, handled := c.fetchSession(wc, topic, partition, offset, maxEvents, maxBytes, wait)
		if handled {
			if serr != nil && !errors.Is(serr, ErrConnClosed) && wc.errNow() != nil {
				// Transport failure mid-session: one retry over a fresh
				// connection to the same address, as on the stream path.
				wc2, rerr := c.reconnectAt(addr, slot, wc)
				if rerr != nil {
					return broker.FetchResult{}, serr
				}
				if wc2.sessionEnabled() {
					if res2, serr2, handled2 := c.fetchSession(wc2, topic, partition, offset, maxEvents, maxBytes, wait); handled2 {
						return res2, serr2
					}
				}
				return c.plainFetchBuffered(addr, slot, topic, partition, offset, maxEvents, maxBytes, wait, buf)
			}
			return res, serr
		}
	}
	if wc.streamingEnabled() {
		res, serr, handled := c.fetchStream(wc, topic, partition, offset, maxEvents, maxBytes, wait)
		if handled {
			if serr != nil && !errors.Is(serr, ErrConnClosed) && wc.errNow() != nil {
				// Transport failure mid-stream: mirror callAt's single
				// retry over a fresh connection to the same address.
				wc2, rerr := c.reconnectAt(addr, slot, wc)
				if rerr != nil {
					return broker.FetchResult{}, serr
				}
				if wc2.streamingEnabled() {
					if res2, serr2, handled2 := c.fetchStream(wc2, topic, partition, offset, maxEvents, maxBytes, wait); handled2 {
						return res2, serr2
					}
				}
				return c.plainFetchBuffered(addr, slot, topic, partition, offset, maxEvents, maxBytes, wait, buf)
			}
			return res, serr
		}
	}
	return c.plainFetchBuffered(addr, slot, topic, partition, offset, maxEvents, maxBytes, wait, buf)
}

// plainFetchBuffered is the request/response buffered fetch (protocol
// v1 and v2 without streaming).
func (c *Client) plainFetchBuffered(addr string, slot int, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	req := FetchReq{Topic: topic, Partition: partition, Offset: offset, MaxEvents: maxEvents, MaxBytes: maxBytes, WaitMaxMS: int(wait / time.Millisecond)}
	var resp FetchResp
	cl, err := c.callAt(addr, slot, &req, &resp, nil, buf.Arena[:0])
	if err != nil {
		return broker.FetchResult{}, err
	}
	if cl.arena != nil {
		buf.Arena = cl.arena
	}
	evs, pos, err := event.AppendUnmarshalBatch(buf.Events[:0], cl.data, resp.NumEvents)
	if err != nil {
		return broker.FetchResult{}, fmt.Errorf("wire: %w", err)
	}
	if pos != len(cl.data) {
		return broker.FetchResult{}, fmt.Errorf("wire: %d trailing bytes after %d events", len(cl.data)-pos, resp.NumEvents)
	}
	buf.Events = evs
	resp.Stamp(evs, topic, partition)
	return broker.FetchResult{Events: evs, HighWatermark: resp.HighWatermark, StartOffset: resp.StartOffset}, nil
}

// offsetCall runs a partition-routed request whose response is a
// single offset.
func (c *Client) offsetCall(topic string, partition int, req ReqMsg) (int64, error) {
	var resp OffsetResp
	if _, err := c.dataCall(topic, partition, req, &resp, nil, nil); err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// EndOffset implements client.Transport.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	return c.offsetCall(topic, partition, &EndOffsetReq{Topic: topic, Partition: partition})
}

// StartOffset implements client.Transport.
func (c *Client) StartOffset(topic string, partition int) (int64, error) {
	return c.offsetCall(topic, partition, &StartOffsetReq{Topic: topic, Partition: partition})
}

// OffsetForTime implements client.Transport.
func (c *Client) OffsetForTime(topic string, partition int, t time.Time) (int64, error) {
	return c.offsetCall(topic, partition, &OffsetForTimeReq{Topic: topic, Partition: partition, TimeNano: t.UnixNano()})
}

// TopicMeta implements client.Transport.
func (c *Client) TopicMeta(topic string) (*cluster.TopicMeta, error) {
	req := TopicMetaReq{Topic: topic}
	var resp TopicMetaResp
	if _, err := c.controlCall(&req, &resp); err != nil {
		return nil, err
	}
	return resp.Meta, nil
}

// JoinGroup implements client.Transport.
func (c *Client) JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error) {
	req := JoinGroupReq{Group: groupID, Member: memberID, Topics: topics}
	var resp JoinGroupResp
	if _, err := c.controlCall(&req, &resp); err != nil {
		return broker.Assignment{}, err
	}
	return broker.Assignment{Generation: resp.Generation, Partitions: resp.Partitions}, nil
}

// LeaveGroup implements client.Transport.
func (c *Client) LeaveGroup(groupID, memberID string) {
	req := LeaveGroupReq{Group: groupID, Member: memberID}
	_, _ = c.controlCall(&req, nil)
}

// Heartbeat implements client.Transport.
func (c *Client) Heartbeat(groupID, memberID string) (int, error) {
	req := HeartbeatReq{Group: groupID, Member: memberID}
	var resp HeartbeatResp
	if _, err := c.controlCall(&req, &resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

// Commit implements client.Transport.
func (c *Client) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	req := CommitReq{
		Group: groupID, Member: memberID, Generation: generation,
		Topic: topic, Partition: partition, Offset: offset,
	}
	_, err := c.controlCall(&req, nil)
	return err
}

// Stats fetches an observability snapshot — exported metrics plus the
// produce stage-trace ring — from the control endpoint's broker. It
// fails with an unknown-op error against peers without FeatStats.
func (c *Client) Stats() (*StatsResp, error) {
	var resp StatsResp
	if _, err := c.controlCall(&StatsReq{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// StatsAt fetches an observability snapshot from one specific broker
// address — per-broker state (histograms, traces) is local to each
// broker, so cluster tooling scrapes every advertised address.
func (c *Client) StatsAt(addr string) (*StatsResp, error) {
	var resp StatsResp
	if _, err := c.callAt(addr, 0, &StatsReq{}, &resp, nil, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Committed implements client.Transport.
func (c *Client) Committed(groupID, topic string, partition int) int64 {
	var resp OffsetResp
	if _, err := c.controlCall(&CommittedReq{Group: groupID, Topic: topic, Partition: partition}, &resp); err != nil {
		return -1
	}
	return resp.Offset
}
