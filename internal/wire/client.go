package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// Client is a client.Transport over the wire protocol: SDK producers
// and consumers built on it run against a remote fabric unchanged.
// Requests on one client are serialized (one in flight); open multiple
// clients for parallelism, as the benchmarking operator does.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	addr string
	// key/secret are replayed on reconnect.
	keyID  string
	secret string
	anon   bool
}

// Dial connects and authenticates with an access key/secret.
func Dial(addr, accessKeyID, secret string) (*Client, error) {
	c := &Client{addr: addr, keyID: accessKeyID, secret: secret}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// DialAnonymous connects without credentials (servers with
// AllowAnonymous only).
func DialAnonymous(addr string) (*Client, error) {
	c := &Client{addr: addr, anon: true}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, IOTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	handshake := &Request{Op: OpAuth, AccessKeyID: c.keyID, Secret: c.secret}
	if c.anon {
		// Probe with a ping so anonymous rejection surfaces at dial time.
		handshake = &Request{Op: OpPing}
	}
	resp, _, err := c.roundTripLocked(handshake, nil)
	if err == nil {
		err = wireError(resp)
	}
	if err != nil {
		conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// Close shuts the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

// wireError reconstructs sentinel errors from the error kind so that
// errors.Is works across the network, which the SDK's retry logic needs.
func wireError(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	switch resp.ErrKind {
	case "leader_unavailable":
		return fmt.Errorf("%w: %s", broker.ErrLeaderUnavailable, resp.Err)
	case "not_enough_replicas":
		return fmt.Errorf("%w: %s", broker.ErrNotEnoughReplicas, resp.Err)
	case "stale_generation":
		return fmt.Errorf("%w: %s", broker.ErrStaleGeneration, resp.Err)
	case "denied":
		return fmt.Errorf("%w: %s", auth.ErrDenied, resp.Err)
	case "bad_credentials":
		return fmt.Errorf("%w: %s", auth.ErrBadCredentials, resp.Err)
	default:
		return errors.New(resp.Err)
	}
}

func (c *Client) roundTrip(req *Request, payload []byte) (*Response, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, data, err := c.roundTripLocked(req, payload)
	if err != nil {
		// One reconnect attempt per call: the SDK's retry loop handles
		// persistent failure.
		if cerr := c.connect(); cerr != nil {
			return nil, nil, err
		}
		return c.roundTripLocked(req, payload)
	}
	return resp, data, nil
}

func (c *Client) roundTripLocked(req *Request, payload []byte) (*Response, []byte, error) {
	if c.conn == nil {
		return nil, nil, errors.New("wire: not connected")
	}
	_ = c.conn.SetDeadline(time.Now().Add(IOTimeout))
	if err := WriteFrame(c.conn, req, payload); err != nil {
		return nil, nil, err
	}
	var resp Response
	data, err := ReadFrame(c.conn, &resp)
	if err != nil {
		return nil, nil, err
	}
	return &resp, data, nil
}

// Produce implements client.Transport. identity is established by the
// connection's credentials; the parameter is ignored.
func (c *Client) Produce(_ string, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	req := &Request{Op: OpProduce, Topic: topic, Partition: partition, Acks: int(acks), NumEvents: len(evs)}
	resp, _, err := c.roundTrip(req, EncodeEvents(evs))
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Fetch implements client.Transport.
func (c *Client) Fetch(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error) {
	req := &Request{Op: OpFetch, Topic: topic, Partition: partition, Offset: offset, MaxEvents: maxEvents, MaxBytes: maxBytes}
	resp, data, err := c.roundTrip(req, nil)
	if err != nil {
		return broker.FetchResult{}, err
	}
	if err := wireError(resp); err != nil {
		return broker.FetchResult{}, err
	}
	evs, err := DecodeEvents(data, resp.NumEvents)
	if err != nil {
		return broker.FetchResult{}, err
	}
	for i := range evs {
		evs[i].Topic = topic
		evs[i].Partition = partition
		if i < len(resp.Offsets) {
			evs[i].Offset = resp.Offsets[i]
		}
	}
	return broker.FetchResult{Events: evs, HighWatermark: resp.HighWatermark, StartOffset: resp.StartOffset}, nil
}

func (c *Client) offsetOp(op Op, topic string, partition int, tnano int64) (int64, error) {
	resp, _, err := c.roundTrip(&Request{Op: op, Topic: topic, Partition: partition, TimeNano: tnano}, nil)
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// EndOffset implements client.Transport.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	return c.offsetOp(OpEndOffset, topic, partition, 0)
}

// StartOffset implements client.Transport.
func (c *Client) StartOffset(topic string, partition int) (int64, error) {
	return c.offsetOp(OpStartOffset, topic, partition, 0)
}

// OffsetForTime implements client.Transport.
func (c *Client) OffsetForTime(topic string, partition int, t time.Time) (int64, error) {
	return c.offsetOp(OpOffsetForTime, topic, partition, t.UnixNano())
}

// TopicMeta implements client.Transport.
func (c *Client) TopicMeta(topic string) (*cluster.TopicMeta, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpTopicMeta, Topic: topic}, nil)
	if err != nil {
		return nil, err
	}
	if err := wireError(resp); err != nil {
		return nil, err
	}
	return resp.Meta, nil
}

// JoinGroup implements client.Transport.
func (c *Client) JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpJoinGroup, Group: groupID, Member: memberID, Topics: topics}, nil)
	if err != nil {
		return broker.Assignment{}, err
	}
	if err := wireError(resp); err != nil {
		return broker.Assignment{}, err
	}
	asn := broker.Assignment{Generation: resp.Generation}
	for _, tp := range resp.Partitions {
		asn.Partitions = append(asn.Partitions, broker.TP{Topic: tp.Topic, Partition: tp.Partition})
	}
	return asn, nil
}

// LeaveGroup implements client.Transport.
func (c *Client) LeaveGroup(groupID, memberID string) {
	_, _, _ = c.roundTrip(&Request{Op: OpLeaveGroup, Group: groupID, Member: memberID}, nil)
}

// Heartbeat implements client.Transport.
func (c *Client) Heartbeat(groupID, memberID string) (int, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpHeartbeat, Group: groupID, Member: memberID}, nil)
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

// Commit implements client.Transport.
func (c *Client) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	resp, _, err := c.roundTrip(&Request{
		Op: OpCommit, Group: groupID, Member: memberID, Generation: generation,
		Topic: topic, Partition: partition, Offset: offset,
	}, nil)
	if err != nil {
		return err
	}
	return wireError(resp)
}

// Committed implements client.Transport.
func (c *Client) Committed(groupID, topic string, partition int) int64 {
	resp, _, err := c.roundTrip(&Request{Op: OpCommitted, Group: groupID, Topic: topic, Partition: partition}, nil)
	if err != nil || wireError(resp) != nil {
		return -1
	}
	return resp.Offset
}
