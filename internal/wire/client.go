package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// ErrConnClosed reports a request that failed because Close was called.
// Close completes every pending correlation entry with it, so callers
// blocked on in-flight requests return promptly instead of hanging on a
// connection that will never deliver. It is distinct from transport
// errors: the client never reconnects after an explicit Close.
var ErrConnClosed = errors.New("wire: client closed")

// Client is a client.Transport over the wire protocol: SDK producers
// and consumers built on it run against a remote fabric unchanged.
//
// The transport is pipelined: each request carries a correlation ID, a
// writer goroutine streams frames onto the connection (coalescing queued
// frames into one write), and a reader goroutine dispatches responses to
// their waiting callers by correlation ID. Many requests from many
// goroutines are therefore in flight on one connection at once; the
// serial round trip of the seed client is just the single-caller case.
type Client struct {
	addr string
	// keyID/secret are replayed on reconnect.
	keyID  string
	secret string
	anon   bool

	mu     sync.Mutex
	wc     *wireConn
	closed bool
}

// call is one in-flight request: a correlation entry plus the caller's
// completion channel.
type call struct {
	req     *Request
	payload []byte
	// arena, when non-nil, is the caller's receive buffer: the reader
	// goroutine reads the response payload into it (growing as needed),
	// which is what makes the consumer's fetch session reuse work over
	// the wire.
	arena []byte
	resp  Response
	data  []byte
	err   error
	done  chan struct{}
}

// wireConn is one TCP connection with its pipelining state. A failed
// wireConn is never revived; reconnection replaces it wholesale, and
// every pending or queued call on the failed connection is completed
// with the connection's error (the fan-out the SDK retry loop needs).
type wireConn struct {
	conn net.Conn
	// rd buffers reads: pipelined responses arrive many frames per TCP
	// segment, and the frame format needs several small reads per frame.
	// Only the reader goroutine touches it.
	rd *bufio.Reader

	mu   sync.Mutex
	cond *sync.Cond // signaled on queue push and on failure
	// queue holds calls accepted but not yet written; the writer drains
	// it in FIFO order. Unbounded: depth is naturally limited by the
	// number of callers blocked awaiting responses.
	queue []*call
	// pending holds written calls awaiting responses, by correlation ID.
	// A call is registered here by the writer immediately before its
	// frame hits the connection, so entries always refer to requests the
	// server may answer.
	pending  map[uint64]*call
	nextCorr uint64
	err      error // sticky: first failure wins
}

// Dial connects and authenticates with an access key/secret.
func Dial(addr, accessKeyID, secret string) (*Client, error) {
	c := &Client{addr: addr, keyID: accessKeyID, secret: secret}
	if err := c.dial(); err != nil {
		return nil, err
	}
	return c, nil
}

// DialAnonymous connects without credentials (servers with
// AllowAnonymous only).
func DialAnonymous(addr string) (*Client, error) {
	c := &Client{addr: addr, anon: true}
	if err := c.dial(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) dial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.connectLocked()
	return err
}

// connectLocked dials, starts the writer/reader goroutines, and performs
// the handshake. Callers hold c.mu.
func (c *Client) connectLocked() (*wireConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, IOTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	wc := &wireConn{conn: conn, rd: bufio.NewReaderSize(conn, 64<<10), pending: make(map[uint64]*call)}
	wc.cond = sync.NewCond(&wc.mu)
	go wc.writeLoop()
	go wc.readLoop()
	handshake := &Request{Op: OpAuth, AccessKeyID: c.keyID, Secret: c.secret}
	if c.anon {
		// Probe with a ping so anonymous rejection surfaces at dial time.
		handshake = &Request{Op: OpPing}
	}
	cl, err := wc.do(handshake, nil, nil)
	if err == nil {
		err = wireError(&cl.resp)
	}
	if err != nil {
		wc.fail(err)
		return nil, err
	}
	c.wc = wc
	return wc, nil
}

// conn returns the current connection, dialing if there is none.
func (c *Client) conn() (*wireConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	if c.wc != nil {
		return c.wc, nil
	}
	return c.connectLocked()
}

// reconnect replaces old with a fresh connection, unless another caller
// already has.
func (c *Client) reconnect(old *wireConn) (*wireConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	if c.wc != nil && c.wc != old {
		return c.wc, nil
	}
	c.wc = nil
	return c.connectLocked()
}

// Close shuts the connection, failing all pending requests with
// ErrConnClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	wc := c.wc
	c.wc = nil
	c.mu.Unlock()
	if wc != nil {
		wc.fail(ErrConnClosed)
	}
	return nil
}

// do submits a request on the connection and blocks for its completion.
func (wc *wireConn) do(req *Request, payload, arena []byte) (*call, error) {
	cl := &call{req: req, payload: payload, arena: arena, done: make(chan struct{})}
	wc.mu.Lock()
	if wc.err != nil {
		err := wc.err
		wc.mu.Unlock()
		return nil, err
	}
	wc.nextCorr++
	req.Corr = wc.nextCorr
	wc.queue = append(wc.queue, cl)
	wc.cond.Signal()
	wc.mu.Unlock()
	<-cl.done
	if cl.err != nil {
		return nil, cl.err
	}
	return cl, nil
}

// fail marks the connection broken and fans the error out to every
// pending caller. Queued-but-unwritten calls are completed by the writer
// on its way out (it is the only goroutine that touches their payloads).
// Idempotent: the first error wins.
func (wc *wireConn) fail(err error) {
	wc.mu.Lock()
	if wc.err != nil {
		wc.mu.Unlock()
		return
	}
	wc.err = err
	pending := wc.pending
	wc.pending = make(map[uint64]*call)
	wc.cond.Broadcast()
	wc.mu.Unlock()
	wc.conn.Close()
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
}

// writeLoop drains the queue, encoding every waiting frame into one
// buffer and writing them with a single syscall — pipelined requests
// coalesce on the wire. Each call is registered in pending just before
// its bytes are written, so a response can never arrive for an
// unregistered correlation ID.
func (wc *wireConn) writeLoop() {
	buf := make([]byte, 0, 4<<10)
	var batch, written []*call
	for {
		wc.mu.Lock()
		for len(wc.queue) == 0 && wc.err == nil {
			wc.cond.Wait()
		}
		if wc.err != nil {
			q := wc.queue
			wc.queue = nil
			err := wc.err
			wc.mu.Unlock()
			for _, cl := range q {
				cl.err = err
				close(cl.done)
			}
			return
		}
		batch = append(batch[:0], wc.queue...)
		wc.queue = wc.queue[:0]
		wc.mu.Unlock()

		buf = buf[:0]
		written = written[:0]
		for _, cl := range batch {
			n := len(buf)
			grown, err := appendFrame(buf, cl.req, cl.payload)
			if err != nil {
				// Frame-level error (oversized, unmarshalable header):
				// fail this call alone, the connection is fine.
				buf = buf[:n]
				cl.err = err
				close(cl.done)
				continue
			}
			buf = grown
			written = append(written, cl)
		}
		if len(written) == 0 {
			continue
		}
		wc.mu.Lock()
		if wc.err != nil {
			// The connection died between dequeue and write; nothing was
			// sent for these calls, so complete them here.
			err := wc.err
			wc.mu.Unlock()
			for _, cl := range written {
				cl.err = err
				close(cl.done)
			}
			return
		}
		for _, cl := range written {
			wc.pending[cl.req.Corr] = cl
		}
		// A response must arrive within IOTimeout of the last write.
		_ = wc.conn.SetWriteDeadline(time.Now().Add(IOTimeout))
		_ = wc.conn.SetReadDeadline(time.Now().Add(IOTimeout))
		wc.mu.Unlock()
		if _, err := wc.conn.Write(buf); err != nil {
			wc.fail(err)
			// Loop back: the top of the loop drains remaining queued
			// calls with the failure.
		}
		if cap(buf) > maxPooledFrame {
			buf = make([]byte, 0, 4<<10)
		}
	}
}

// readLoop reads response frames and dispatches them to pending calls by
// correlation ID, reading each payload directly into the matched
// caller's receive buffer when one was provided.
func (wc *wireConn) readLoop() {
	for {
		var resp Response
		if err := ReadHeader(wc.rd, &resp); err != nil {
			wc.fail(err)
			return
		}
		wc.mu.Lock()
		cl := wc.pending[resp.Corr]
		delete(wc.pending, resp.Corr)
		wc.mu.Unlock()
		var arena []byte
		if cl != nil {
			arena = cl.arena
		}
		data, err := ReadPayloadInto(wc.rd, arena)
		if err != nil {
			// cl is already out of the pending map, so fail() cannot
			// reach it — complete it here or its caller hangs.
			if cl != nil {
				cl.err = err
				close(cl.done)
			}
			wc.fail(err)
			return
		}
		wc.mu.Lock()
		if len(wc.pending) == 0 {
			// Idle: don't let the last exchange's deadline kill the
			// connection while nothing is outstanding.
			_ = wc.conn.SetReadDeadline(time.Time{})
		} else if wc.rd.Buffered() == 0 {
			// Deadline syscalls only when the next frame isn't already
			// buffered — at full pipeline depth responses arrive many per
			// read, and per-frame deadline churn costs real throughput.
			_ = wc.conn.SetReadDeadline(time.Now().Add(IOTimeout))
		}
		wc.mu.Unlock()
		if cl != nil {
			cl.resp = resp
			cl.data = data
			if data != nil {
				cl.arena = data
			}
			close(cl.done)
		}
	}
}

// do submits a request, waits for its response, and retries once over a
// fresh connection on transport failure — the SDK's retry loop handles
// persistent failure, exactly as with the serial client.
func (c *Client) do(req *Request, payload, arena []byte) (*call, error) {
	wc, err := c.conn()
	if err != nil {
		return nil, err
	}
	cl, derr := wc.do(req, payload, arena)
	if derr == nil {
		return cl, nil
	}
	if errors.Is(derr, ErrConnClosed) {
		return nil, derr
	}
	wc.mu.Lock()
	alive := wc.err == nil
	wc.mu.Unlock()
	if alive {
		// Call-local failure (oversized frame, unmarshalable header):
		// the connection is fine and a retry would fail identically.
		return nil, derr
	}
	wc2, rerr := c.reconnect(wc)
	if rerr != nil {
		return nil, derr
	}
	return wc2.do(req, payload, arena)
}

func (c *Client) roundTrip(req *Request, payload []byte) (*Response, []byte, error) {
	cl, err := c.do(req, payload, nil)
	if err != nil {
		return nil, nil, err
	}
	return &cl.resp, cl.data, nil
}

// wireError reconstructs sentinel errors from the error kind so that
// errors.Is works across the network, which the SDK's retry logic needs.
func wireError(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	switch resp.ErrKind {
	case "leader_unavailable":
		return fmt.Errorf("%w: %s", broker.ErrLeaderUnavailable, resp.Err)
	case "not_enough_replicas":
		return fmt.Errorf("%w: %s", broker.ErrNotEnoughReplicas, resp.Err)
	case "stale_generation":
		return fmt.Errorf("%w: %s", broker.ErrStaleGeneration, resp.Err)
	case "denied":
		return fmt.Errorf("%w: %s", auth.ErrDenied, resp.Err)
	case "bad_credentials":
		return fmt.Errorf("%w: %s", auth.ErrBadCredentials, resp.Err)
	default:
		return errors.New(resp.Err)
	}
}

// producePool recycles produce payload buffers: the payload is fully
// encoded into the writer's frame buffer before the call completes, so
// it can be reused as soon as the round trip returns.
var producePool = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// Produce implements client.Transport. identity is established by the
// connection's credentials; the parameter is ignored.
func (c *Client) Produce(_ string, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	req := &Request{Op: OpProduce, Topic: topic, Partition: partition, Acks: int(acks), NumEvents: len(evs)}
	bp := producePool.Get().(*[]byte)
	payload := event.AppendBatchMarshal((*bp)[:0], evs)
	resp, _, err := c.roundTrip(req, payload)
	if cap(payload) <= maxPooledFrame {
		*bp = payload[:0]
		producePool.Put(bp)
	}
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Fetch implements client.Transport.
func (c *Client) Fetch(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error) {
	req := &Request{Op: OpFetch, Topic: topic, Partition: partition, Offset: offset, MaxEvents: maxEvents, MaxBytes: maxBytes}
	resp, data, err := c.roundTrip(req, nil)
	if err != nil {
		return broker.FetchResult{}, err
	}
	if err := wireError(resp); err != nil {
		return broker.FetchResult{}, err
	}
	evs, err := DecodeEvents(data, resp.NumEvents)
	if err != nil {
		return broker.FetchResult{}, err
	}
	stampFetched(evs, topic, partition, resp.Offsets)
	return broker.FetchResult{Events: evs, HighWatermark: resp.HighWatermark, StartOffset: resp.StartOffset}, nil
}

// FetchBuffered implements the SDK consumer's buffered-fetch extension
// (client.BufferedFetcher): the response payload is read directly into
// buf.Arena by the reader goroutine and decoded into buf.Events, so a
// steady-state poll reuses one receive buffer instead of allocating a
// frame and an event slice per fetch. Returned events alias buf.Arena
// and are valid until the buffer's next use.
func (c *Client) FetchBuffered(_ string, topic string, partition int, offset int64, maxEvents, maxBytes int, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	req := &Request{Op: OpFetch, Topic: topic, Partition: partition, Offset: offset, MaxEvents: maxEvents, MaxBytes: maxBytes}
	cl, err := c.do(req, nil, buf.Arena[:0])
	if err != nil {
		return broker.FetchResult{}, err
	}
	if cl.arena != nil {
		buf.Arena = cl.arena
	}
	if err := wireError(&cl.resp); err != nil {
		return broker.FetchResult{}, err
	}
	evs, pos, err := event.AppendUnmarshalBatch(buf.Events[:0], cl.data, cl.resp.NumEvents)
	if err != nil {
		return broker.FetchResult{}, fmt.Errorf("wire: %w", err)
	}
	if pos != len(cl.data) {
		return broker.FetchResult{}, fmt.Errorf("wire: %d trailing bytes after %d events", len(cl.data)-pos, cl.resp.NumEvents)
	}
	buf.Events = evs
	stampFetched(evs, topic, partition, cl.resp.Offsets)
	return broker.FetchResult{Events: evs, HighWatermark: cl.resp.HighWatermark, StartOffset: cl.resp.StartOffset}, nil
}

// stampFetched fills the container-carried fields on decoded events.
func stampFetched(evs []event.Event, topic string, partition int, offsets []int64) {
	for i := range evs {
		evs[i].Topic = topic
		evs[i].Partition = partition
		if i < len(offsets) {
			evs[i].Offset = offsets[i]
		}
	}
}

func (c *Client) offsetOp(op Op, topic string, partition int, tnano int64) (int64, error) {
	resp, _, err := c.roundTrip(&Request{Op: op, Topic: topic, Partition: partition, TimeNano: tnano}, nil)
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// EndOffset implements client.Transport.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	return c.offsetOp(OpEndOffset, topic, partition, 0)
}

// StartOffset implements client.Transport.
func (c *Client) StartOffset(topic string, partition int) (int64, error) {
	return c.offsetOp(OpStartOffset, topic, partition, 0)
}

// OffsetForTime implements client.Transport.
func (c *Client) OffsetForTime(topic string, partition int, t time.Time) (int64, error) {
	return c.offsetOp(OpOffsetForTime, topic, partition, t.UnixNano())
}

// TopicMeta implements client.Transport.
func (c *Client) TopicMeta(topic string) (*cluster.TopicMeta, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpTopicMeta, Topic: topic}, nil)
	if err != nil {
		return nil, err
	}
	if err := wireError(resp); err != nil {
		return nil, err
	}
	return resp.Meta, nil
}

// JoinGroup implements client.Transport.
func (c *Client) JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpJoinGroup, Group: groupID, Member: memberID, Topics: topics}, nil)
	if err != nil {
		return broker.Assignment{}, err
	}
	if err := wireError(resp); err != nil {
		return broker.Assignment{}, err
	}
	asn := broker.Assignment{Generation: resp.Generation}
	for _, tp := range resp.Partitions {
		asn.Partitions = append(asn.Partitions, broker.TP{Topic: tp.Topic, Partition: tp.Partition})
	}
	return asn, nil
}

// LeaveGroup implements client.Transport.
func (c *Client) LeaveGroup(groupID, memberID string) {
	_, _, _ = c.roundTrip(&Request{Op: OpLeaveGroup, Group: groupID, Member: memberID}, nil)
}

// Heartbeat implements client.Transport.
func (c *Client) Heartbeat(groupID, memberID string) (int, error) {
	resp, _, err := c.roundTrip(&Request{Op: OpHeartbeat, Group: groupID, Member: memberID}, nil)
	if err != nil {
		return 0, err
	}
	if err := wireError(resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

// Commit implements client.Transport.
func (c *Client) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	resp, _, err := c.roundTrip(&Request{
		Op: OpCommit, Group: groupID, Member: memberID, Generation: generation,
		Topic: topic, Partition: partition, Offset: offset,
	}, nil)
	if err != nil {
		return err
	}
	return wireError(resp)
}

// Committed implements client.Transport.
func (c *Client) Committed(groupID, topic string, partition int) int64 {
	resp, _, err := c.roundTrip(&Request{Op: OpCommitted, Group: groupID, Topic: topic, Partition: partition}, nil)
	if err != nil || wireError(resp) != nil {
		return -1
	}
	return resp.Offset
}
