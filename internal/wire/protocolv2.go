// Protocol v2: typed binary message headers.
//
// v2 replaces the JSON Request/Response god-structs with one typed
// message per operation, hand-rolled binary encode/decode (no
// reflection, no per-header allocation on the encode side), negotiated
// at connection open via OpNegotiate (see protocol.go). The frame
// layout is unchanged — u32 headerLen | header | u32 payloadLen |
// payload — only the header bytes differ:
//
//	request header:  u8 op | u64 corr (BE) | message body
//	response header: u8 op | u8 errCode | u64 corr (BE) | body
//
// A response with errCode != 0 carries only the error detail string as
// its body; the error code maps back to the domain sentinel on the
// client so errors.Is works across the wire exactly as on the Direct
// transport. Message bodies use varint/zigzag integers and
// length-prefixed strings. Decoders tolerate trailing body bytes, so a
// future minor revision can append fields without breaking old peers.
//
// Fetch responses encode per-event offsets as a sequence of dense runs
// (start offset + count) instead of v1's per-event JSON array: a
// contiguous read — the overwhelmingly common case — costs two varints
// regardless of batch size, and compaction gaps just add runs.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/eventlog"
)

// Protocol versions.
const (
	// ProtocolV1 is the seed protocol: JSON headers, no handshake.
	ProtocolV1 = 1
	// ProtocolV2 adds typed binary headers, compact error codes and
	// dense-run fetch offsets behind an OpNegotiate handshake.
	ProtocolV2 = 2
	// MaxProtocol is the newest version this build speaks.
	MaxProtocol = ProtocolV2
)

// Feature bits exchanged during negotiation. FeatDenseOffsets and
// FeatErrCodes are implied by v2 framing; FeatStreamFetch is the first
// genuinely optional capability — either side may mask it out and the
// connection degrades to pipelined request/response fetch.
const (
	// FeatDenseOffsets: fetch responses carry base-offset + dense-run
	// offset encoding instead of a per-event array.
	FeatDenseOffsets uint32 = 1 << 0
	// FeatErrCodes: responses carry compact typed error codes.
	FeatErrCodes uint32 = 1 << 1
	// FeatStreamFetch: the server supports credit-based streaming fetch
	// (OpStreamOpen/OpStreamBatch/OpStreamCredit/OpStreamClose): the
	// client opens a per-partition stream and the server pushes batches
	// proactively as data arrives, flow-controlled by client credit
	// grants — no per-batch request round trip.
	FeatStreamFetch uint32 = 1 << 2
	// FeatClusterMeta: the server answers OpMetadata with the cluster's
	// epoch, broker addresses and per-partition leadership, enabling
	// leader-direct client routing against multi-listener clusters
	// (internal/clusternet). Either side may mask it out; the client
	// then falls back to single-address slot hashing.
	FeatClusterMeta uint32 = 1 << 3
	// FeatSessionFetch: the server supports multiplexed fetch sessions
	// (OpSessionOpen/OpSessionSub/OpSessionBatch/OpSessionCredit/
	// OpSessionClose): one session per connection subscribes to many
	// topic-partitions, served by a single server pump goroutine under
	// one shared byte-credit window — connection-scale serving cost,
	// instead of a pump goroutine and credit window per partition
	// stream. Either side may mask it out; the connection degrades to
	// FeatStreamFetch per-partition streams (or plain fetch).
	FeatSessionFetch uint32 = 1 << 4
	// FeatMetaPush: the server pushes OpMetadataPush frames to every
	// connection that negotiated the feature whenever the controller
	// bumps the metadata epoch, so clients re-route to new leaders
	// before a request fails. Either side may mask it out; the client
	// then falls back to reactive metadata re-fetch (FeatClusterMeta).
	FeatMetaPush uint32 = 1 << 5
	// FeatReplication: the server accepts inter-broker replication ops
	// (OpReplicaFetch/OpReplicaAck): followers pull batches from the
	// partition leader at their local end offset, fenced by the leader
	// epoch. Masked (old peers, or DisableReplication), brokers fall
	// back to single-replica operation — produce acks gate only on the
	// leader, exactly the pre-replication behavior.
	FeatReplication uint32 = 1 << 6
	// FeatStats: the server answers OpStats with a broker observability
	// snapshot — every counter, gauge and bucketed histogram the broker
	// exports, plus the produce-path stage-trace ring — so operator
	// tooling (octopus-cli stats/trace) scrapes any broker over its
	// ordinary data-plane connection. Masked (old peers, or
	// DisableStats), the op is refused as unknown and tooling falls back
	// to the HTTP metrics listener, when one is configured.
	FeatStats uint32 = 1 << 7

	allFeatures = FeatDenseOffsets | FeatErrCodes | FeatStreamFetch |
		FeatClusterMeta | FeatSessionFetch | FeatMetaPush | FeatReplication |
		FeatStats
)

// v2 operation bytes, one per message pair.
const (
	v2OpPing uint8 = iota + 1
	v2OpAuth
	v2OpProduce
	v2OpFetch
	v2OpEndOffset
	v2OpStartOffset
	v2OpOffsetForTime
	v2OpTopicMeta
	v2OpJoinGroup
	v2OpLeaveGroup
	v2OpHeartbeat
	v2OpCommit
	v2OpCommitted
	// Streaming fetch ops (FeatStreamFetch). StreamOpen is an ordinary
	// request/response pair; StreamBatch and server-side StreamClose are
	// pushed frames correlated by stream ID; client-side StreamCredit and
	// StreamClose are one-way requests the server never answers.
	v2OpStreamOpen
	v2OpStreamBatch
	v2OpStreamCredit
	v2OpStreamClose
	// v2OpMetadata is cluster metadata discovery (FeatClusterMeta).
	v2OpMetadata
	// Multiplexed fetch session ops (FeatSessionFetch). SessionOpen and
	// SessionSub are ordinary request/response pairs (the client sends
	// sub removals one-way and lets the response drop); SessionBatch and
	// server-side SessionClose are pushed frames correlated by
	// sessionID<<32|subID; client-side SessionCredit and SessionClose
	// are one-way requests the server never answers.
	v2OpSessionOpen
	v2OpSessionSub
	v2OpSessionBatch
	v2OpSessionCredit
	v2OpSessionClose
	// v2OpMetadataPush is a server-pushed cluster metadata document
	// (FeatMetaPush), frame-compatible with an OpMetadata response body.
	v2OpMetadataPush
	// Inter-broker replication ops (FeatReplication): a follower pulls
	// a batch from the leader's log at its own end offset, and acks its
	// new end offset after appending, both fenced by the leader epoch.
	v2OpReplicaFetch
	v2OpReplicaAck
	// v2OpStats is the broker observability snapshot (FeatStats): the
	// exported metrics plus the produce stage-trace ring, as one
	// request/response pair.
	v2OpStats

	// v2OpMax is one past the highest assigned op byte (pool sizing).
	v2OpMax
)

// Msg is the wireMsg codec interface: every v2 protocol message —
// request or response — implements hand-rolled binary body
// encode/decode against it. AppendBody never allocates beyond growing
// buf; DecodeBody allocates only for decoded strings/slices.
type Msg interface {
	// AppendBody appends the message body to buf and returns it.
	AppendBody(buf []byte) []byte
	// DecodeBody decodes the message body, overwriting the receiver.
	// Trailing bytes are ignored (forward compatibility).
	DecodeBody(b []byte) error
}

// ReqMsg is a v2 request message: a Msg with its operation byte and a
// lossless conversion to the v1 JSON header for connections that
// negotiated down.
type ReqMsg interface {
	Msg
	// V2Op is the operation byte identifying the message pair.
	V2Op() uint8
	// v1 converts the request to the legacy JSON header form.
	v1() *Request
}

// respMsg is a v2 response message that can also be filled from / into
// the v1 JSON header, so typed client methods and the typed server
// dispatch are version-agnostic.
type respMsg interface {
	Msg
	fromV1(r *Response)
	toV1(r *Response)
}

// errShortMsg reports a truncated or malformed v2 message body.
var errShortMsg = errors.New("wire: truncated v2 message")

// --- primitive codecs ---

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func getStr(b []byte) (string, []byte, error) {
	n, rest, err := getUint(b)
	if err != nil || n > uint64(len(rest)) {
		return "", nil, errShortMsg
	}
	return string(rest[:n]), rest[n:], nil
}

func appendInt(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

func getInt(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errShortMsg
	}
	return v, b[n:], nil
}

func getUint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShortMsg
	}
	return v, b[n:], nil
}

// --- header prefix codecs ---

// v2 header prefix sizes: op byte + big-endian correlation ID for
// requests, plus an error-code byte for responses. Corr is fixed-width
// so the reader can match a response to its caller without decoding
// the body.
const (
	v2ReqPrefix  = 1 + 8
	v2RespPrefix = 2 + 8
)

// AppendRequestV2 encodes a complete v2 request header (prefix + body).
func AppendRequestV2(buf []byte, corr uint64, m ReqMsg) []byte {
	buf = append(buf, m.V2Op())
	buf = binary.BigEndian.AppendUint64(buf, corr)
	return m.AppendBody(buf)
}

// DecodeRequestV2 decodes a v2 request header into m, whose operation
// byte must match the header's.
func DecodeRequestV2(hdr []byte, m ReqMsg) (corr uint64, err error) {
	if len(hdr) < v2ReqPrefix {
		return 0, errShortMsg
	}
	if hdr[0] != m.V2Op() {
		return 0, fmt.Errorf("wire: v2 op %d, want %d", hdr[0], m.V2Op())
	}
	corr = binary.BigEndian.Uint64(hdr[1:v2ReqPrefix])
	return corr, m.DecodeBody(hdr[v2ReqPrefix:])
}

// decodeAnyRequestV2 parses a v2 request header of any operation — the
// server's read-loop entry point. The correlation ID is returned even
// when the body is malformed or the op unknown, so the server can
// answer with a typed error instead of dropping the connection. The
// returned message comes from the per-op pool (release with putReqMsg
// after dispatch); topic strings are interned through in when non-nil.
func decodeAnyRequestV2(hdr []byte, in *Interner) (corr uint64, op uint8, m ReqMsg, err error) {
	if len(hdr) < v2ReqPrefix {
		return 0, 0, nil, errShortMsg
	}
	op = hdr[0]
	corr = binary.BigEndian.Uint64(hdr[1:v2ReqPrefix])
	m = getReqMsg(op)
	if m == nil {
		return corr, op, nil, fmt.Errorf("%w %d", errUnknownOp, op)
	}
	if err := decodeReqBody(m, hdr[v2ReqPrefix:], in); err != nil {
		putReqMsg(op, m)
		return corr, op, nil, err
	}
	return corr, op, m, nil
}

// AppendResponseV2 encodes a success (errCode 0) v2 response header.
// op echoes the request's operation byte.
func AppendResponseV2(buf []byte, op uint8, corr uint64, m Msg) []byte {
	buf = append(buf, op, codeOK)
	buf = binary.BigEndian.AppendUint64(buf, corr)
	if m != nil {
		buf = m.AppendBody(buf)
	}
	return buf
}

// appendErrResponseV2 encodes an error v2 response header: the error is
// collapsed to its code plus the full detail string.
func appendErrResponseV2(buf []byte, op uint8, corr uint64, err error) []byte {
	code, _ := errCodeOf(err)
	buf = append(buf, op, code)
	buf = binary.BigEndian.AppendUint64(buf, corr)
	return appendStr(buf, err.Error())
}

// decodeRespPrefixV2 splits a v2 response header into its prefix fields
// and body.
func decodeRespPrefixV2(hdr []byte) (op, code uint8, corr uint64, body []byte, err error) {
	if len(hdr) < v2RespPrefix {
		return 0, 0, 0, nil, errShortMsg
	}
	return hdr[0], hdr[1], binary.BigEndian.Uint64(hdr[2:v2RespPrefix]), hdr[v2RespPrefix:], nil
}

// DecodeResponseV2 decodes a v2 response header into m. When the header
// carries an error code, the returned error is the reconstructed domain
// sentinel (errors.Is-able) and m is left untouched.
func DecodeResponseV2(hdr []byte, m Msg) (op uint8, corr uint64, err error) {
	op, code, corr, body, err := decodeRespPrefixV2(hdr)
	if err != nil {
		return 0, 0, err
	}
	if code != codeOK {
		detail, _, derr := getStr(body)
		if derr != nil {
			return op, corr, derr
		}
		return op, corr, errFromCode(code, detail)
	}
	if m == nil {
		return op, corr, nil
	}
	return op, corr, m.DecodeBody(body)
}

// --- typed error codes ---

// Typed sentinel errors the wire protocol carries as compact error
// codes, re-exported here so SDK callers matching remote errors do not
// need to import every domain package. errors.Is with these works
// identically on the Direct transport and across the wire, in both
// protocol versions.
var (
	// ErrUnknownTopic reports an operation on a topic the fabric does
	// not know.
	ErrUnknownTopic = cluster.ErrNoTopic
	// ErrOffsetOutOfRange reports a fetch below the partition's retained
	// start or beyond its end.
	ErrOffsetOutOfRange = eventlog.ErrOffsetOutOfRange
	// ErrNotLeader reports a data-plane op against a partition whose
	// leader is unavailable.
	ErrNotLeader = broker.ErrLeaderUnavailable
	// ErrNoLeader reports a partition with no leader at all (every ISR
	// member is down). Unlike ErrNotLeader it is not rerouteable — no
	// metadata refresh can find a broker to serve it — so the router
	// retries with bounded backoff, waiting out a re-election, instead
	// of failing over. It wraps ErrNotLeader, so coarse checks keep
	// matching.
	ErrNoLeader = broker.ErrNoLeader
	// ErrFencedEpoch reports a replication op carrying a stale leader
	// epoch: the follower must refetch metadata, truncate to the new
	// leader's log and retry.
	ErrFencedEpoch = broker.ErrFencedEpoch
)

// v2 error codes. codeOK marks a success response; every other value
// names a domain sentinel (or codeOther for unclassified errors).
const (
	codeOK uint8 = iota
	codeOther
	codeLeaderUnavailable
	codeNotEnoughReplicas
	codeStaleGeneration
	codeDenied
	codeBadCredentials
	codeUnknownTopic
	codeOffsetOutOfRange
	codeNoPartition
	codeUnknownMember
	codeBrokerDown
	codeUnknownOp
	codeNoLeader
	codeFencedEpoch
)

// errTable is the single source of truth mapping domain sentinels to
// v2 error codes and v1 err_kind strings. Order matters: the first
// errors.Is match wins.
var errTable = []struct {
	code     uint8
	kind     string
	sentinel error
}{
	// ErrNoLeader wraps ErrLeaderUnavailable, so its entry must come
	// first or the coarser sentinel would claim every no-leader error.
	{codeNoLeader, "no_leader", broker.ErrNoLeader},
	{codeFencedEpoch, "fenced_epoch", broker.ErrFencedEpoch},
	{codeLeaderUnavailable, "leader_unavailable", broker.ErrLeaderUnavailable},
	{codeNotEnoughReplicas, "not_enough_replicas", broker.ErrNotEnoughReplicas},
	{codeStaleGeneration, "stale_generation", broker.ErrStaleGeneration},
	{codeDenied, "denied", auth.ErrDenied},
	{codeBadCredentials, "bad_credentials", auth.ErrBadCredentials},
	{codeUnknownTopic, "unknown_topic", cluster.ErrNoTopic},
	{codeOffsetOutOfRange, "offset_out_of_range", eventlog.ErrOffsetOutOfRange},
	{codeNoPartition, "no_partition", broker.ErrNoPartition},
	{codeUnknownMember, "unknown_member", broker.ErrUnknownMember},
	{codeBrokerDown, "broker_down", broker.ErrBrokerDown},
	{codeUnknownOp, "unknown_op", errUnknownOp},
}

// errCodeOf classifies a server-side error as (v2 code, v1 kind).
func errCodeOf(err error) (uint8, string) {
	for _, e := range errTable {
		if errors.Is(err, e.sentinel) {
			return e.code, e.kind
		}
	}
	return codeOther, "other"
}

// errFromCode reconstructs the domain sentinel from a v2 error code, so
// errors.Is works across the network. The detail string is the server's
// full error text.
func errFromCode(code uint8, detail string) error {
	for _, e := range errTable {
		if e.code == code {
			return fmt.Errorf("%w: %s", e.sentinel, detail)
		}
	}
	return errors.New(detail)
}

// errFromKind is errFromCode for v1's string error kinds.
func errFromKind(kind, detail string) error {
	for _, e := range errTable {
		if e.kind == kind {
			return fmt.Errorf("%w: %s", e.sentinel, detail)
		}
	}
	return errors.New(detail)
}

// newReqMsg allocates the request message for a v2 op byte, nil for
// unknown ops.
func newReqMsg(op uint8) ReqMsg {
	switch op {
	case v2OpPing:
		return &PingReq{}
	case v2OpAuth:
		return &AuthReq{}
	case v2OpProduce:
		return &ProduceReq{}
	case v2OpFetch:
		return &FetchReq{}
	case v2OpEndOffset:
		return &EndOffsetReq{}
	case v2OpStartOffset:
		return &StartOffsetReq{}
	case v2OpOffsetForTime:
		return &OffsetForTimeReq{}
	case v2OpTopicMeta:
		return &TopicMetaReq{}
	case v2OpJoinGroup:
		return &JoinGroupReq{}
	case v2OpLeaveGroup:
		return &LeaveGroupReq{}
	case v2OpHeartbeat:
		return &HeartbeatReq{}
	case v2OpCommit:
		return &CommitReq{}
	case v2OpCommitted:
		return &CommittedReq{}
	case v2OpStreamOpen:
		return &StreamOpenReq{}
	case v2OpStreamCredit:
		return &StreamCreditReq{}
	case v2OpStreamClose:
		return &StreamCloseReq{}
	case v2OpMetadata:
		return &MetadataReq{}
	case v2OpSessionOpen:
		return &SessionOpenReq{}
	case v2OpSessionSub:
		return &SessionSubReq{}
	case v2OpSessionCredit:
		return &SessionCreditReq{}
	case v2OpSessionClose:
		return &SessionCloseReq{}
	case v2OpReplicaFetch:
		return &ReplicaFetchReq{}
	case v2OpReplicaAck:
		return &ReplicaAckReq{}
	case v2OpStats:
		return &StatsReq{}
	}
	return nil
}

// reqMsgPools recycles decoded request messages on the server's v2 read
// path: with topics interned per connection, reusing the message struct
// is what takes steady-state data-plane header handling to 0 allocs/op.
// Handlers return messages after dispatch; DecodeBody fully overwrites
// every field, so reuse cannot leak state between requests.
var reqMsgPools [v2OpMax]sync.Pool

// getReqMsg returns a pooled request message for op, nil for unknown ops.
func getReqMsg(op uint8) ReqMsg {
	if int(op) >= len(reqMsgPools) {
		return nil
	}
	if v := reqMsgPools[op].Get(); v != nil {
		return v.(ReqMsg)
	}
	return newReqMsg(op)
}

// putReqMsg returns a request message to its op's pool.
func putReqMsg(op uint8, m ReqMsg) {
	if m == nil || int(op) >= len(reqMsgPools) {
		return
	}
	reqMsgPools[op].Put(m)
}

// newRespMsg allocates the response message for a v2 op byte, nil for
// unknown or body-less ops. Used by the response fuzzer; the client
// always knows its expected response type from the pending call.
func newRespMsg(op uint8) respMsg {
	switch op {
	case v2OpPing, v2OpLeaveGroup, v2OpCommit:
		return &EmptyResp{}
	case v2OpAuth:
		return &AuthResp{}
	case v2OpProduce:
		return &ProduceResp{}
	case v2OpFetch:
		return &FetchResp{}
	case v2OpEndOffset, v2OpStartOffset, v2OpOffsetForTime, v2OpCommitted:
		return &OffsetResp{}
	case v2OpTopicMeta:
		return &TopicMetaResp{}
	case v2OpJoinGroup:
		return &JoinGroupResp{}
	case v2OpHeartbeat:
		return &HeartbeatResp{}
	case v2OpStreamOpen:
		return &StreamOpenResp{}
	case v2OpStreamBatch:
		return &FetchResp{}
	case v2OpMetadata:
		return &MetadataResp{}
	case v2OpSessionOpen:
		return &SessionOpenResp{}
	case v2OpSessionSub:
		return &SessionSubResp{}
	case v2OpSessionBatch:
		return &FetchResp{}
	case v2OpMetadataPush:
		return &MetadataResp{}
	case v2OpReplicaFetch:
		return &ReplicaFetchResp{}
	case v2OpReplicaAck:
		return &EmptyResp{}
	case v2OpStats:
		return &StatsResp{}
	}
	return nil
}

// --- request messages ---

// PingReq is a liveness/auth probe (OpPing).
type PingReq struct{}

func (*PingReq) V2Op() uint8                  { return v2OpPing }
func (*PingReq) AppendBody(buf []byte) []byte { return buf }
func (*PingReq) DecodeBody(b []byte) error    { return nil }
func (*PingReq) v1() *Request                 { return &Request{Op: OpPing} }

// AuthReq authenticates the connection with an access key (OpAuth).
type AuthReq struct {
	AccessKeyID string
	Secret      string
}

func (*AuthReq) V2Op() uint8 { return v2OpAuth }

func (m *AuthReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.AccessKeyID)
	return appendStr(buf, m.Secret)
}

func (m *AuthReq) DecodeBody(b []byte) error {
	var err error
	if m.AccessKeyID, b, err = getStr(b); err != nil {
		return err
	}
	m.Secret, _, err = getStr(b)
	return err
}

func (m *AuthReq) v1() *Request {
	return &Request{Op: OpAuth, AccessKeyID: m.AccessKeyID, Secret: m.Secret}
}

// ProduceReq appends a batch of events; the events travel in the frame
// payload (OpProduce).
type ProduceReq struct {
	Topic     string
	Partition int
	Acks      int
	NumEvents int
}

func (*ProduceReq) V2Op() uint8 { return v2OpProduce }

func (m *ProduceReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, int64(m.Acks))
	return appendInt(buf, int64(m.NumEvents))
}

func (m *ProduceReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *ProduceReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Acks = int(v)
	if v, _, err = getInt(b); err != nil {
		return err
	}
	m.NumEvents = int(v)
	return nil
}

func (m *ProduceReq) v1() *Request {
	return &Request{Op: OpProduce, Topic: m.Topic, Partition: m.Partition, Acks: m.Acks, NumEvents: m.NumEvents}
}

// FetchReq reads events from one partition (OpFetch).
type FetchReq struct {
	Topic     string
	Partition int
	Offset    int64
	MaxEvents int
	MaxBytes  int
	// WaitMaxMS, when > 0, long-polls: a fetch that finds nothing at
	// Offset parks on the partition's tail waiter for up to this many
	// milliseconds (server-capped at MaxFetchWait) instead of returning
	// empty, so idle consumers stop hot-looping. Appended after the v2
	// body the previous revision shipped — decoders tolerate trailing
	// bytes, so older v2 peers ignore it; v1 framing drops it entirely.
	WaitMaxMS int
}

func (*FetchReq) V2Op() uint8 { return v2OpFetch }

func (m *FetchReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, m.Offset)
	buf = appendInt(buf, int64(m.MaxEvents))
	buf = appendInt(buf, int64(m.MaxBytes))
	return appendInt(buf, int64(m.WaitMaxMS))
}

func (m *FetchReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *FetchReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if m.Offset, b, err = getInt(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxEvents = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxBytes = int(v)
	// WaitMaxMS is absent from bodies encoded by earlier v2 revisions;
	// reset explicitly so a pooled message never carries a stale wait.
	m.WaitMaxMS = 0
	if len(b) > 0 {
		if v, _, err = getInt(b); err != nil {
			return err
		}
		m.WaitMaxMS = int(v)
	}
	return nil
}

func (m *FetchReq) v1() *Request {
	// WaitMaxMS is intentionally dropped: v1 servers predate tail
	// waiters and would ignore an unknown JSON field anyway.
	return &Request{Op: OpFetch, Topic: m.Topic, Partition: m.Partition, Offset: m.Offset, MaxEvents: m.MaxEvents, MaxBytes: m.MaxBytes}
}

// offset-query requests share one body layout: topic + partition.

func appendTopicPartition(buf []byte, topic string, partition int) []byte {
	buf = appendStr(buf, topic)
	return appendInt(buf, int64(partition))
}

func getTopicPartition(b []byte) (topic string, partition int, rest []byte, err error) {
	if topic, b, err = getStr(b); err != nil {
		return "", 0, nil, err
	}
	v, rest, err := getInt(b)
	return topic, int(v), rest, err
}

// EndOffsetReq asks for the next offset to be assigned (OpEndOffset).
type EndOffsetReq struct {
	Topic     string
	Partition int
}

func (*EndOffsetReq) V2Op() uint8 { return v2OpEndOffset }
func (m *EndOffsetReq) AppendBody(buf []byte) []byte {
	return appendTopicPartition(buf, m.Topic, m.Partition)
}
func (m *EndOffsetReq) DecodeBody(b []byte) error {
	var err error
	m.Topic, m.Partition, _, err = getTopicPartition(b)
	return err
}
func (m *EndOffsetReq) v1() *Request {
	return &Request{Op: OpEndOffset, Topic: m.Topic, Partition: m.Partition}
}

// StartOffsetReq asks for the earliest retained offset (OpStartOffset).
type StartOffsetReq struct {
	Topic     string
	Partition int
}

func (*StartOffsetReq) V2Op() uint8 { return v2OpStartOffset }
func (m *StartOffsetReq) AppendBody(buf []byte) []byte {
	return appendTopicPartition(buf, m.Topic, m.Partition)
}
func (m *StartOffsetReq) DecodeBody(b []byte) error {
	var err error
	m.Topic, m.Partition, _, err = getTopicPartition(b)
	return err
}
func (m *StartOffsetReq) v1() *Request {
	return &Request{Op: OpStartOffset, Topic: m.Topic, Partition: m.Partition}
}

// OffsetForTimeReq asks for the first offset at or after a timestamp
// (OpOffsetForTime).
type OffsetForTimeReq struct {
	Topic     string
	Partition int
	TimeNano  int64
}

func (*OffsetForTimeReq) V2Op() uint8 { return v2OpOffsetForTime }

func (m *OffsetForTimeReq) AppendBody(buf []byte) []byte {
	buf = appendTopicPartition(buf, m.Topic, m.Partition)
	return appendInt(buf, m.TimeNano)
}

func (m *OffsetForTimeReq) DecodeBody(b []byte) error {
	var err error
	if m.Topic, m.Partition, b, err = getTopicPartition(b); err != nil {
		return err
	}
	m.TimeNano, _, err = getInt(b)
	return err
}

func (m *OffsetForTimeReq) v1() *Request {
	return &Request{Op: OpOffsetForTime, Topic: m.Topic, Partition: m.Partition, TimeNano: m.TimeNano}
}

// TopicMetaReq asks for topic metadata (OpTopicMeta).
type TopicMetaReq struct {
	Topic string
}

func (*TopicMetaReq) V2Op() uint8                    { return v2OpTopicMeta }
func (m *TopicMetaReq) AppendBody(buf []byte) []byte { return appendStr(buf, m.Topic) }
func (m *TopicMetaReq) DecodeBody(b []byte) error {
	var err error
	m.Topic, _, err = getStr(b)
	return err
}
func (m *TopicMetaReq) v1() *Request { return &Request{Op: OpTopicMeta, Topic: m.Topic} }

// JoinGroupReq registers group membership (OpJoinGroup).
type JoinGroupReq struct {
	Group  string
	Member string
	Topics []string
}

func (*JoinGroupReq) V2Op() uint8 { return v2OpJoinGroup }

func (m *JoinGroupReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Group)
	buf = appendStr(buf, m.Member)
	buf = binary.AppendUvarint(buf, uint64(len(m.Topics)))
	for _, t := range m.Topics {
		buf = appendStr(buf, t)
	}
	return buf
}

func (m *JoinGroupReq) DecodeBody(b []byte) error {
	var err error
	if m.Group, b, err = getStr(b); err != nil {
		return err
	}
	if m.Member, b, err = getStr(b); err != nil {
		return err
	}
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	m.Topics = nil
	if n > 0 {
		m.Topics = make([]string, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var t string
		if t, b, err = getStr(b); err != nil {
			return err
		}
		m.Topics = append(m.Topics, t)
	}
	return nil
}

func (m *JoinGroupReq) v1() *Request {
	return &Request{Op: OpJoinGroup, Group: m.Group, Member: m.Member, Topics: m.Topics}
}

// LeaveGroupReq removes a member (OpLeaveGroup).
type LeaveGroupReq struct {
	Group  string
	Member string
}

func (*LeaveGroupReq) V2Op() uint8 { return v2OpLeaveGroup }

func (m *LeaveGroupReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Group)
	return appendStr(buf, m.Member)
}

func (m *LeaveGroupReq) DecodeBody(b []byte) error {
	var err error
	if m.Group, b, err = getStr(b); err != nil {
		return err
	}
	m.Member, _, err = getStr(b)
	return err
}

func (m *LeaveGroupReq) v1() *Request {
	return &Request{Op: OpLeaveGroup, Group: m.Group, Member: m.Member}
}

// HeartbeatReq refreshes membership and learns the generation
// (OpHeartbeat).
type HeartbeatReq struct {
	Group  string
	Member string
}

func (*HeartbeatReq) V2Op() uint8 { return v2OpHeartbeat }

func (m *HeartbeatReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Group)
	return appendStr(buf, m.Member)
}

func (m *HeartbeatReq) DecodeBody(b []byte) error {
	var err error
	if m.Group, b, err = getStr(b); err != nil {
		return err
	}
	m.Member, _, err = getStr(b)
	return err
}

func (m *HeartbeatReq) v1() *Request {
	return &Request{Op: OpHeartbeat, Group: m.Group, Member: m.Member}
}

// CommitReq records a consumed position (OpCommit).
type CommitReq struct {
	Group      string
	Member     string
	Generation int
	Topic      string
	Partition  int
	Offset     int64
}

func (*CommitReq) V2Op() uint8 { return v2OpCommit }

func (m *CommitReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Group)
	buf = appendStr(buf, m.Member)
	buf = appendInt(buf, int64(m.Generation))
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	return appendInt(buf, m.Offset)
}

func (m *CommitReq) DecodeBody(b []byte) error {
	var err error
	var v int64
	if m.Group, b, err = getStr(b); err != nil {
		return err
	}
	if m.Member, b, err = getStr(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Generation = int(v)
	if m.Topic, b, err = getStr(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	m.Offset, _, err = getInt(b)
	return err
}

func (m *CommitReq) v1() *Request {
	return &Request{
		Op: OpCommit, Group: m.Group, Member: m.Member, Generation: m.Generation,
		Topic: m.Topic, Partition: m.Partition, Offset: m.Offset,
	}
}

// CommittedReq asks for a group's committed offset (OpCommitted).
type CommittedReq struct {
	Group     string
	Topic     string
	Partition int
}

func (*CommittedReq) V2Op() uint8 { return v2OpCommitted }

func (m *CommittedReq) AppendBody(buf []byte) []byte {
	buf = appendStr(buf, m.Group)
	return appendTopicPartition(buf, m.Topic, m.Partition)
}

func (m *CommittedReq) DecodeBody(b []byte) error {
	var err error
	if m.Group, b, err = getStr(b); err != nil {
		return err
	}
	m.Topic, m.Partition, _, err = getTopicPartition(b)
	return err
}

func (m *CommittedReq) v1() *Request {
	return &Request{Op: OpCommitted, Group: m.Group, Topic: m.Topic, Partition: m.Partition}
}

// --- response messages ---

// EmptyResp is the body-less success response (ping, leave, commit).
type EmptyResp struct{}

func (*EmptyResp) AppendBody(buf []byte) []byte { return buf }
func (*EmptyResp) DecodeBody(b []byte) error    { return nil }
func (*EmptyResp) fromV1(*Response)             {}
func (*EmptyResp) toV1(*Response)               {}

// AuthResp reports the authenticated identity.
type AuthResp struct {
	Identity string
}

func (m *AuthResp) AppendBody(buf []byte) []byte { return appendStr(buf, m.Identity) }
func (m *AuthResp) DecodeBody(b []byte) error {
	var err error
	m.Identity, _, err = getStr(b)
	return err
}
func (m *AuthResp) fromV1(r *Response) { m.Identity = r.Identity }
func (m *AuthResp) toV1(r *Response)   { r.Identity = m.Identity }

// ProduceResp reports the batch's base offset.
type ProduceResp struct {
	Offset int64
}

func (m *ProduceResp) AppendBody(buf []byte) []byte { return appendInt(buf, m.Offset) }
func (m *ProduceResp) DecodeBody(b []byte) error {
	var err error
	m.Offset, _, err = getInt(b)
	return err
}
func (m *ProduceResp) fromV1(r *Response) { m.Offset = r.Offset }
func (m *ProduceResp) toV1(r *Response)   { r.Offset = m.Offset }

// OffsetResp carries a single offset (end/start/time queries and
// committed lookups).
type OffsetResp struct {
	Offset int64
}

func (m *OffsetResp) AppendBody(buf []byte) []byte { return appendInt(buf, m.Offset) }
func (m *OffsetResp) DecodeBody(b []byte) error {
	var err error
	m.Offset, _, err = getInt(b)
	return err
}
func (m *OffsetResp) fromV1(r *Response) { m.Offset = r.Offset }
func (m *OffsetResp) toV1(r *Response)   { r.Offset = m.Offset }

// offsetRun is one maximal run of consecutive event offsets in a fetch
// response: count events starting at start.
type offsetRun struct {
	start int64
	count int64
}

// FetchResp describes a fetched batch; the events travel in the frame
// payload. Offsets are carried as dense runs — one (start, count) pair
// per contiguous stretch — replacing v1's per-event Offsets array. A
// gapless read is two varints regardless of batch size, and the
// decoded runs live in an inline array for the common case, so the
// steady-state fetch header round trip allocates nothing.
//
// A FetchResp must not be copied by value once SetOffsets or
// DecodeBody has run: the runs slice aliases the struct's own inline
// array, so a copy would keep stamping from the original's storage.
type FetchResp struct {
	NumEvents     int
	HighWatermark int64
	StartOffset   int64

	// runs is the dense-run offset encoding (v2), backed by runsBuf
	// while the response has ≤ 4 discontinuities.
	runs    []offsetRun
	runsBuf [4]offsetRun
	// v1Offsets is the legacy per-event array, set only when the
	// response arrived over a v1 connection.
	v1Offsets []int64
}

// SetOffsets records the events' offsets in dense-run form (the server
// side of the encoding).
func (m *FetchResp) SetOffsets(evs []event.Event) {
	m.v1Offsets = nil
	m.runs = m.runsBuf[:0]
	for i := range evs {
		off := evs[i].Offset
		if n := len(m.runs); n > 0 && m.runs[n-1].start+m.runs[n-1].count == off {
			m.runs[n-1].count++
			continue
		}
		m.runs = append(m.runs, offsetRun{start: off, count: 1})
	}
}

// Stamp fills the container-carried fields (topic, partition, offset)
// on a decoded event batch, walking the dense runs — the client side of
// the encoding. It handles both wire forms, so callers are agnostic to
// the negotiated version.
func (m *FetchResp) Stamp(evs []event.Event, topic string, partition int) {
	for i := range evs {
		evs[i].Topic = topic
		evs[i].Partition = partition
	}
	if m.v1Offsets != nil {
		for i := range evs {
			if i < len(m.v1Offsets) {
				evs[i].Offset = m.v1Offsets[i]
			}
		}
		return
	}
	i := 0
	for _, r := range m.runs {
		for k := int64(0); k < r.count && i < len(evs); k++ {
			evs[i].Offset = r.start + k
			i++
		}
	}
}

func (m *FetchResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, m.HighWatermark)
	buf = appendInt(buf, m.StartOffset)
	buf = appendInt(buf, int64(m.NumEvents))
	buf = binary.AppendUvarint(buf, uint64(len(m.runs)))
	for _, r := range m.runs {
		buf = appendInt(buf, r.start)
		buf = binary.AppendUvarint(buf, uint64(r.count))
	}
	return buf
}

func (m *FetchResp) DecodeBody(b []byte) error {
	var err error
	var v int64
	m.v1Offsets = nil
	m.runs = m.runsBuf[:0]
	if m.HighWatermark, b, err = getInt(b); err != nil {
		return err
	}
	if m.StartOffset, b, err = getInt(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.NumEvents = int(v)
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	for i := uint64(0); i < n; i++ {
		var r offsetRun
		if r.start, b, err = getInt(b); err != nil {
			return err
		}
		var c uint64
		if c, b, err = getUint(b); err != nil {
			return err
		}
		r.count = int64(c)
		m.runs = append(m.runs, r)
	}
	return nil
}

func (m *FetchResp) fromV1(r *Response) {
	m.NumEvents = r.NumEvents
	m.HighWatermark = r.HighWatermark
	m.StartOffset = r.StartOffset
	m.runs = nil
	m.v1Offsets = r.Offsets
}

func (m *FetchResp) toV1(r *Response) {
	r.NumEvents = m.NumEvents
	r.HighWatermark = m.HighWatermark
	r.StartOffset = m.StartOffset
	offsets := make([]int64, 0, m.NumEvents)
	for _, run := range m.runs {
		for k := int64(0); k < run.count; k++ {
			offsets = append(offsets, run.start+k)
		}
	}
	r.Offsets = offsets
}

// TopicMetaResp carries topic metadata. The metadata document is
// deeply structured and strictly control-plane (one lookup per
// producer/consumer warm-up), so the body is a length-prefixed JSON
// blob rather than a hand-rolled layout.
type TopicMetaResp struct {
	Meta *cluster.TopicMeta
}

func (m *TopicMetaResp) AppendBody(buf []byte) []byte {
	jb, err := json.Marshal(m.Meta)
	if err != nil {
		// TopicMeta is a plain data struct; marshal cannot fail.
		panic("wire: marshal topic meta: " + err.Error())
	}
	buf = binary.AppendUvarint(buf, uint64(len(jb)))
	return append(buf, jb...)
}

func (m *TopicMetaResp) DecodeBody(b []byte) error {
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	m.Meta = nil
	if n == 0 {
		return nil
	}
	if err := json.Unmarshal(b[:n], &m.Meta); err != nil {
		return fmt.Errorf("wire: bad topic meta: %w", err)
	}
	return nil
}

func (m *TopicMetaResp) fromV1(r *Response) { m.Meta = r.Meta }
func (m *TopicMetaResp) toV1(r *Response)   { r.Meta = m.Meta }

// JoinGroupResp carries the coordinator's assignment.
type JoinGroupResp struct {
	Generation int
	Partitions []broker.TP
}

func (m *JoinGroupResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(m.Generation))
	buf = binary.AppendUvarint(buf, uint64(len(m.Partitions)))
	for _, tp := range m.Partitions {
		buf = appendTopicPartition(buf, tp.Topic, tp.Partition)
	}
	return buf
}

func (m *JoinGroupResp) DecodeBody(b []byte) error {
	var err error
	var v int64
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Generation = int(v)
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return errShortMsg
	}
	m.Partitions = nil
	if n > 0 {
		m.Partitions = make([]broker.TP, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var tp broker.TP
		if tp.Topic, tp.Partition, b, err = getTopicPartition(b); err != nil {
			return err
		}
		m.Partitions = append(m.Partitions, tp)
	}
	return nil
}

func (m *JoinGroupResp) fromV1(r *Response) {
	m.Generation = r.Generation
	m.Partitions = nil
	for _, tp := range r.Partitions {
		m.Partitions = append(m.Partitions, broker.TP{Topic: tp.Topic, Partition: tp.Partition})
	}
}

func (m *JoinGroupResp) toV1(r *Response) {
	r.Generation = m.Generation
	tps := make([]TPJSON, len(m.Partitions))
	for i, tp := range m.Partitions {
		tps[i] = TPJSON{Topic: tp.Topic, Partition: tp.Partition}
	}
	r.Partitions = tps
}

// HeartbeatResp carries the current group generation.
type HeartbeatResp struct {
	Generation int
}

func (m *HeartbeatResp) AppendBody(buf []byte) []byte { return appendInt(buf, int64(m.Generation)) }
func (m *HeartbeatResp) DecodeBody(b []byte) error {
	v, _, err := getInt(b)
	m.Generation = int(v)
	return err
}
func (m *HeartbeatResp) fromV1(r *Response) { m.Generation = r.Generation }
func (m *HeartbeatResp) toV1(r *Response)   { r.Generation = m.Generation }

// --- v2 frame assembly ---

// appendFrameRequestV2 appends a complete v2 request frame.
func appendFrameRequestV2(buf []byte, corr uint64, m ReqMsg, payload []byte) ([]byte, error) {
	orig := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = AppendRequestV2(buf, corr, m)
	hlen := len(buf) - orig - 4
	if hlen > MaxHeader || len(payload) > MaxFrame {
		return buf[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[orig:], uint32(hlen))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...), nil
}

// appendFrameResponseV2 appends a complete v2 response frame whose
// payload is the marshaled event batch (fetch), encoded directly into
// buf with no intermediate payload buffer — the v2 twin of
// appendFrameEvents. err != nil encodes an error response (no events).
func appendFrameResponseV2(buf []byte, op uint8, corr uint64, m Msg, respErr error, evs []event.Event) ([]byte, error) {
	orig := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	if respErr != nil {
		buf = appendErrResponseV2(buf, op, corr, respErr)
		evs = nil
	} else {
		buf = AppendResponseV2(buf, op, corr, m)
	}
	hlen := len(buf) - orig - 4
	if hlen > MaxHeader {
		return buf[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[orig:], uint32(hlen))
	lenAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = event.AppendBatchMarshal(buf, evs)
	plen := len(buf) - lenAt - 4
	if plen > MaxFrame {
		return buf[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(plen))
	return buf, nil
}
