// Per-connection topic interning for the v2 server decode path.
//
// Every data-plane request carries its topic as a length-prefixed
// string, and a naive decode allocates a fresh Go string per frame —
// the last allocation left on the steady-state server header path after
// PR 3. A connection talks to a handful of topics over and over, so the
// server keeps one small intern table per connection: the first
// occurrence of a topic allocates its string once, and every later
// frame resolves the raw bytes to that same string through a
// map[string]string lookup, which the Go runtime performs without
// materializing the key. Combined with the per-op request-message pools
// this makes v2 data-plane header handling 0 allocs/op.
package wire

import (
	"encoding/binary"
	"fmt"
)

// maxInternedTopics bounds one connection's intern table so a hostile
// peer cycling through fabricated topic names cannot grow it without
// limit. When a new topic arrives at a full table, the table is reset
// and rebuilt from the connection's current working set — a long-lived
// connection that legitimately rotates through many topics (rebalances,
// topic churn) re-earns interning for the topics it still talks to,
// instead of being pinned forever to whichever names came first.
// Correctness is unaffected either way, only the optimization resets.
const maxInternedTopics = 1024

// Interner deduplicates decoded strings for one connection. The zero
// value is ready to use; a nil *Interner degrades every lookup to a
// plain allocation, which is how the client-side and test decode paths
// opt out.
//
// Not safe for concurrent use: the server's read loop is the only
// writer and performs every decode, so no locking is needed there.
type Interner struct {
	m map[string]string
}

// Intern returns the canonical string for b, allocating only on first
// sight (or past the table bound).
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	// The compiler recognizes map[string]X lookups keyed by string(b)
	// and performs them without allocating the key.
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if in.m == nil {
		in.m = make(map[string]string, 8)
	} else if len(in.m) >= maxInternedTopics {
		// Reset-on-cap: drop the full table and start over with the
		// current working set. The table size is therefore pinned at
		// maxInternedTopics entries no matter how many names a peer
		// cycles through.
		in.m = make(map[string]string, 8)
	}
	in.m[s] = s
	return s
}

// getStrInterned is getStr resolving the decoded bytes through in.
func getStrInterned(b []byte, in *Interner) (string, []byte, error) {
	n, rest, err := getUint(b)
	if err != nil || n > uint64(len(rest)) {
		return "", nil, errShortMsg
	}
	return in.Intern(rest[:n]), rest[n:], nil
}

// internedDecoder is implemented by request messages whose topic field
// dominates server-side decode allocations (the data-plane ops).
type internedDecoder interface {
	decodeInterned(b []byte, in *Interner) error
}

// decodeReqBody decodes a request body, routing through the message's
// interned decoder when it has one and in is non-nil.
func decodeReqBody(m ReqMsg, b []byte, in *Interner) error {
	if id, ok := m.(internedDecoder); ok && in != nil {
		return id.decodeInterned(b, in)
	}
	return m.DecodeBody(b)
}

// DecodeRequestV2Interned is DecodeRequestV2 resolving topic strings
// through a caller-owned intern table — the server read loop's decode
// entry, exported so the header-allocation benchmark gates the exact
// production path (0 allocs/op once the table is warm).
func DecodeRequestV2Interned(hdr []byte, m ReqMsg, in *Interner) (corr uint64, err error) {
	if len(hdr) < v2ReqPrefix {
		return 0, errShortMsg
	}
	if hdr[0] != m.V2Op() {
		return 0, fmt.Errorf("wire: v2 op %d, want %d", hdr[0], m.V2Op())
	}
	corr = binary.BigEndian.Uint64(hdr[1:v2ReqPrefix])
	return corr, decodeReqBody(m, hdr[v2ReqPrefix:], in)
}
