package wire

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/event"
)

// maxConnConcurrency bounds in-flight requests per connection: deep
// enough that a pipelined client never stalls on the server, bounded so
// a misbehaving peer cannot spawn unbounded handler goroutines.
const maxConnConcurrency = 64

// Server exposes a fabric over TCP. Each connection authenticates once
// with an IAM-style access key (OpAuth) and then issues data-plane
// requests under that identity; ACLs are enforced by the fabric.
//
// Requests on one connection are handled concurrently (up to
// maxConnConcurrency in flight): the read loop dispatches each frame to
// a handler goroutine and responses are written, correlation-tagged, in
// completion order — a slow fetch does not block the produces pipelined
// behind it.
type Server struct {
	Fabric *broker.Fabric
	// AllowAnonymous lets connections skip OpAuth and act as the
	// trusted in-process identity. Off by default; used by tests and
	// single-user deployments.
	AllowAnonymous bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a wire server for the fabric.
func NewServer(f *broker.Fabric) *Server {
	return &Server{Fabric: f, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// respWriter coalesces response frames from a connection's concurrent
// handlers: frames accumulate in a pending buffer under the lock and a
// flusher goroutine writes whatever has piled up in one syscall. When
// many requests are in flight, their responses leave as a handful of
// packets — which also lets the client's reader drain them from one
// netpoll wakeup instead of one per response.
type respWriter struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // encoded frames awaiting flush
	err    error  // sticky write failure
	closed bool
	done   chan struct{} // closed when the flusher exits
}

func newRespWriter(conn net.Conn) *respWriter {
	w := &respWriter{conn: conn, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w
}

// write enqueues one response frame whose payload is the marshaled
// event batch (nil for payload-free responses), encoded directly into
// the pending buffer — no intermediate payload buffer or second copy.
func (w *respWriter) write(resp *Response, evs []event.Event) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf, err := appendFrameEvents(w.buf, resp, evs)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.buf = buf
	w.cond.Signal()
	w.mu.Unlock()
	return nil
}

// close stops the flusher and waits for everything enqueued to reach
// the connection, so tearing the connection down cannot drop responses
// to requests that were already handled. The write deadline bounds the
// wait when the peer has stopped reading.
func (w *respWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(IOTimeout))
	<-w.done
}

func (w *respWriter) flushLoop() {
	defer close(w.done)
	var out []byte
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && w.err == nil && !w.closed {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.buf) == 0) {
			w.mu.Unlock()
			return
		}
		out, w.buf = w.buf, out[:0]
		w.mu.Unlock()
		_, err := w.conn.Write(out)
		if err != nil {
			w.mu.Lock()
			w.err = err
			w.cond.Broadcast()
			w.mu.Unlock()
			// Wake the read loop so the connection tears down.
			w.conn.Close()
			return
		}
		if cap(out) > maxPooledFrame {
			out = nil
		}
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var handlers sync.WaitGroup
	w := newRespWriter(conn)
	defer func() {
		handlers.Wait()
		w.close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sem := make(chan struct{}, maxConnConcurrency)
	identity := ""
	authed := s.AllowAnonymous
	// Buffered reads: a pipelined client coalesces many frames per
	// write, so the read loop should not pay three syscalls per frame.
	// Payload buffers are still allocated fresh per frame (ReadFrame),
	// which the produce donation path depends on.
	rd := bufio.NewReaderSize(conn, 64<<10)
	for {
		var req Request
		payload, err := ReadFrame(rd, &req)
		if err != nil {
			return // EOF or broken connection
		}
		if req.Op == OpAuth {
			// Auth mutates the connection's identity; handle it inline so
			// every later frame observes the new principal.
			resp := s.handleAuth(&req, &identity, &authed)
			resp.Corr = req.Corr
			if err := w.write(resp, nil); err != nil {
				return
			}
			continue
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(req Request, payload []byte, identity string, authed bool) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp, evs := s.handle(&req, payload, identity, authed)
			resp.Corr = req.Corr
			_ = w.write(resp, evs)
		}(req, payload, identity, authed)
	}
}

// errKind maps domain sentinels to wire error kinds.
func errKind(err error) string {
	switch {
	case errors.Is(err, broker.ErrLeaderUnavailable):
		return "leader_unavailable"
	case errors.Is(err, broker.ErrNotEnoughReplicas):
		return "not_enough_replicas"
	case errors.Is(err, broker.ErrStaleGeneration):
		return "stale_generation"
	case errors.Is(err, auth.ErrDenied):
		return "denied"
	case errors.Is(err, auth.ErrBadCredentials):
		return "bad_credentials"
	default:
		return "other"
	}
}

func errResp(err error) *Response {
	return &Response{Err: err.Error(), ErrKind: errKind(err)}
}

func (s *Server) handleAuth(req *Request, identity *string, authed *bool) *Response {
	ident, err := s.Fabric.Auth.Authenticate(req.AccessKeyID, req.Secret)
	if err != nil {
		return errResp(err)
	}
	*identity = ident.ID
	*authed = true
	return &Response{Identity: ident.ID}
}

// handle executes one data-plane request. Responses with an event
// payload (fetch) return the events themselves; the respWriter marshals
// them straight into the connection's pending write buffer.
func (s *Server) handle(req *Request, payload []byte, identity string, authed bool) (*Response, []event.Event) {
	if !authed {
		return errResp(fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)), nil
	}
	switch req.Op {
	case OpPing:
		return &Response{}, nil
	case OpProduce:
		evs, err := DecodeEvents(payload, req.NumEvents)
		if err != nil {
			return errResp(err), nil
		}
		// The frame buffer is donated to the fabric as the batch arena:
		// decoded events alias it, and from here it is owned by the log
		// records. ReadFrame allocates a fresh buffer per frame, so the
		// read loop never reuses it.
		off, err := s.Fabric.ProduceDonated(identity, req.Topic, req.Partition, evs, broker.Acks(req.Acks))
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpFetch:
		res, err := s.Fabric.Fetch(identity, req.Topic, req.Partition, req.Offset, req.MaxEvents, req.MaxBytes)
		if err != nil {
			return errResp(err), nil
		}
		offsets := make([]int64, len(res.Events))
		for i := range res.Events {
			offsets[i] = res.Events[i].Offset
		}
		return &Response{
			NumEvents:     len(res.Events),
			Offsets:       offsets,
			HighWatermark: res.HighWatermark,
			StartOffset:   res.StartOffset,
		}, res.Events
	case OpEndOffset:
		off, err := s.Fabric.EndOffset(req.Topic, req.Partition)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpStartOffset:
		off, err := s.Fabric.StartOffset(req.Topic, req.Partition)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpOffsetForTime:
		off, err := s.Fabric.OffsetForTime(req.Topic, req.Partition, time.Unix(0, req.TimeNano))
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpTopicMeta:
		meta, err := s.Fabric.Ctl.Topic(req.Topic)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Meta: meta}, nil
	case OpJoinGroup:
		asn, err := s.Fabric.Groups.Join(req.Group, req.Member, req.Topics)
		if err != nil {
			return errResp(err), nil
		}
		tps := make([]TPJSON, len(asn.Partitions))
		for i, tp := range asn.Partitions {
			tps[i] = TPJSON{Topic: tp.Topic, Partition: tp.Partition}
		}
		return &Response{Generation: asn.Generation, Partitions: tps}, nil
	case OpLeaveGroup:
		s.Fabric.Groups.Leave(req.Group, req.Member)
		return &Response{}, nil
	case OpHeartbeat:
		gen, err := s.Fabric.Groups.Heartbeat(req.Group, req.Member)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Generation: gen}, nil
	case OpCommit:
		err := s.Fabric.Groups.Commit(req.Group, req.Member, req.Generation, req.Topic, req.Partition, req.Offset)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{}, nil
	case OpCommitted:
		off := s.Fabric.Groups.Committed(req.Group, req.Topic, req.Partition)
		return &Response{Offset: off}, nil
	default:
		log.Printf("wire: unknown op %q", req.Op)
		return errResp(fmt.Errorf("wire: unknown op %q", req.Op)), nil
	}
}
