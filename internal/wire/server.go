package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
)

// Server exposes a fabric over TCP. Each connection authenticates once
// with an IAM-style access key (OpAuth) and then issues data-plane
// requests under that identity; ACLs are enforced by the fabric.
type Server struct {
	Fabric *broker.Fabric
	// AllowAnonymous lets connections skip OpAuth and act as the
	// trusted in-process identity. Off by default; used by tests and
	// single-user deployments.
	AllowAnonymous bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a wire server for the fabric.
func NewServer(f *broker.Fabric) *Server {
	return &Server{Fabric: f, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	identity := ""
	authed := s.AllowAnonymous
	for {
		var req Request
		payload, err := ReadFrame(conn, &req)
		if err != nil {
			return // EOF or broken connection
		}
		resp, respPayload := s.handle(&req, payload, &identity, &authed)
		if err := WriteFrame(conn, resp, respPayload); err != nil {
			return
		}
	}
}

// errKind maps domain sentinels to wire error kinds.
func errKind(err error) string {
	switch {
	case errors.Is(err, broker.ErrLeaderUnavailable):
		return "leader_unavailable"
	case errors.Is(err, broker.ErrNotEnoughReplicas):
		return "not_enough_replicas"
	case errors.Is(err, broker.ErrStaleGeneration):
		return "stale_generation"
	case errors.Is(err, auth.ErrDenied):
		return "denied"
	case errors.Is(err, auth.ErrBadCredentials):
		return "bad_credentials"
	default:
		return "other"
	}
}

func errResp(err error) *Response {
	return &Response{Err: err.Error(), ErrKind: errKind(err)}
}

func (s *Server) handle(req *Request, payload []byte, identity *string, authed *bool) (*Response, []byte) {
	if req.Op == OpAuth {
		ident, err := s.Fabric.Auth.Authenticate(req.AccessKeyID, req.Secret)
		if err != nil {
			return errResp(err), nil
		}
		*identity = ident.ID
		*authed = true
		return &Response{Identity: ident.ID}, nil
	}
	if !*authed {
		return errResp(fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)), nil
	}
	switch req.Op {
	case OpPing:
		return &Response{}, nil
	case OpProduce:
		evs, err := DecodeEvents(payload, req.NumEvents)
		if err != nil {
			return errResp(err), nil
		}
		off, err := s.Fabric.Produce(*identity, req.Topic, req.Partition, evs, broker.Acks(req.Acks))
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpFetch:
		res, err := s.Fabric.Fetch(*identity, req.Topic, req.Partition, req.Offset, req.MaxEvents, req.MaxBytes)
		if err != nil {
			return errResp(err), nil
		}
		offsets, data := EncodeFetch(res.Events)
		return &Response{
			NumEvents:     len(res.Events),
			Offsets:       offsets,
			HighWatermark: res.HighWatermark,
			StartOffset:   res.StartOffset,
		}, data
	case OpEndOffset:
		off, err := s.Fabric.EndOffset(req.Topic, req.Partition)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpStartOffset:
		off, err := s.Fabric.StartOffset(req.Topic, req.Partition)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpOffsetForTime:
		off, err := s.Fabric.OffsetForTime(req.Topic, req.Partition, time.Unix(0, req.TimeNano))
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Offset: off}, nil
	case OpTopicMeta:
		meta, err := s.Fabric.Ctl.Topic(req.Topic)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Meta: meta}, nil
	case OpJoinGroup:
		asn, err := s.Fabric.Groups.Join(req.Group, req.Member, req.Topics)
		if err != nil {
			return errResp(err), nil
		}
		tps := make([]TPJSON, len(asn.Partitions))
		for i, tp := range asn.Partitions {
			tps[i] = TPJSON{Topic: tp.Topic, Partition: tp.Partition}
		}
		return &Response{Generation: asn.Generation, Partitions: tps}, nil
	case OpLeaveGroup:
		s.Fabric.Groups.Leave(req.Group, req.Member)
		return &Response{}, nil
	case OpHeartbeat:
		gen, err := s.Fabric.Groups.Heartbeat(req.Group, req.Member)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{Generation: gen}, nil
	case OpCommit:
		err := s.Fabric.Groups.Commit(req.Group, req.Member, req.Generation, req.Topic, req.Partition, req.Offset)
		if err != nil {
			return errResp(err), nil
		}
		return &Response{}, nil
	case OpCommitted:
		off := s.Fabric.Groups.Committed(req.Group, req.Topic, req.Partition)
		return &Response{Offset: off}, nil
	default:
		log.Printf("wire: unknown op %q", req.Op)
		return errResp(fmt.Errorf("wire: unknown op %q", req.Op)), nil
	}
}
