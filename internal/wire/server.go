package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/metrics"
)

// maxConnConcurrency bounds in-flight requests per connection: deep
// enough that a pipelined client never stalls on the server, bounded so
// a misbehaving peer cannot spawn unbounded handler goroutines.
const maxConnConcurrency = 64

// errUnknownOp reports a request op the server does not implement.
var errUnknownOp = errors.New("wire: unknown op")

// Server exposes a fabric over TCP. Each connection authenticates once
// with an IAM-style access key (OpAuth) and then issues data-plane
// requests under that identity; ACLs are enforced by the fabric.
//
// A connection starts in v1 (JSON header) framing. A v2-capable client
// opens with OpNegotiate; the server answers with the selected version
// and, when it is ≥ 2, both sides switch to typed binary headers for
// every later frame on that connection. Old clients never negotiate
// and are served in v1 framing throughout.
//
// Requests on one connection are handled concurrently (up to
// maxConnConcurrency in flight): the read loop decodes each header,
// dispatches the typed request to a handler goroutine, and responses
// are written, correlation-tagged, in completion order — a slow fetch
// does not block the produces pipelined behind it.
type Server struct {
	Fabric *broker.Fabric
	// AllowAnonymous lets connections skip OpAuth and act as the
	// trusted in-process identity. Off by default; used by tests and
	// single-user deployments.
	AllowAnonymous bool
	// MaxVersion caps the negotiable protocol version (0 = MaxProtocol).
	// Setting it to ProtocolV1 reproduces a legacy server: OpNegotiate
	// is answered with an "unknown op" error, exactly as servers that
	// predate the handshake answer it.
	MaxVersion int
	// DisableStreaming masks FeatStreamFetch out of negotiation,
	// emulating a v2 server that predates streaming fetch: stream opens
	// are refused as unknown ops and clients fall back to pipelined
	// request/response fetch.
	DisableStreaming bool
	// DisableClusterMeta masks FeatClusterMeta out of negotiation,
	// emulating a v2 server that predates cluster metadata discovery:
	// OpMetadata is refused as an unknown op and clients fall back to
	// single-address slot hashing.
	DisableClusterMeta bool
	// DisableSessionFetch masks FeatSessionFetch out of negotiation,
	// emulating a v2 server that predates multiplexed fetch sessions:
	// session opens are refused as unknown ops and clients fall back to
	// per-partition streaming fetch.
	DisableSessionFetch bool
	// DisableMetaPush masks FeatMetaPush out of negotiation and stops
	// the epoch watcher from pushing metadata frames, emulating a v2
	// server that predates pushed metadata: clients fall back to
	// reactive re-fetch after a misrouted request.
	DisableMetaPush bool
	// DisableReplication masks FeatReplication out of negotiation,
	// emulating a v2 server that predates inter-broker replication:
	// replica fetches are refused as unknown ops, followers never catch
	// up, and the cluster degrades to single-replica operation (the ISR
	// shrinks to the leader).
	DisableReplication bool
	// DisableStats masks FeatStats out of negotiation, emulating a v2
	// server that predates the observability snapshot: OpStats is
	// refused as an unknown op and tooling falls back to the HTTP
	// metrics listener, when one is configured.
	DisableStats bool
	// LocalBroker scopes this server to one broker of the fabric:
	// produce, fetch and stream-open requests for partitions that
	// broker does not lead are refused with ErrNotLeader (and counted
	// in Misroutes) instead of silently served from the shared
	// in-process state — the per-broker serving contract of
	// internal/clusternet. The default -1 serves every partition, the
	// single-listener behavior.
	LocalBroker int

	// misroutes counts data-plane requests refused with ErrNotLeader.
	// A leader-direct client fleet should hold it at zero in steady
	// state; failover tests assert exactly that.
	misroutes atomic.Int64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	watching bool
	stop     chan struct{}
	wg       sync.WaitGroup

	metOnce sync.Once
	reg     *metrics.Registry
	met_    *serverMetrics
}

// connState is the per-connection state the server tracks outside the
// connection's own read loop, so the metadata pusher can find every
// push-capable connection. Mutated under Server.mu (negotiation and
// auth happen once per connection; pushes read a snapshot).
type connState struct {
	w        *respWriter
	features uint32
	authed   bool
}

// serverMetrics is the server's stream/session instrumentation,
// exported through an internal/metrics Registry (see Server.Metrics).
type serverMetrics struct {
	// sessionsOpen / streamsOpen gauge currently open fetch sessions
	// and per-partition streams across all connections.
	sessionsOpen *metrics.Gauge
	streamsOpen  *metrics.Gauge
	// pumpParks counts session pump parks (no credit or no ready sub);
	// creditStalls counts the subset parked with data ready but no
	// window — true client backpressure.
	pumpParks    *metrics.Counter
	creditStalls *metrics.Counter
	// metaPushes counts pushed metadata frames.
	metaPushes *metrics.Counter
	// produceNs / fetchNs time the server-side dispatch of produce and
	// fetch requests — decode, fabric call, response build — the
	// broker's wire-visible service time, minus transport queueing.
	// fetchNs includes any long-poll park (FetchReq.WaitMaxMS), so an
	// idle consumer fleet shows up in the upper quantiles, not as an
	// anomaly.
	produceNs *metrics.BucketHist
	fetchNs   *metrics.BucketHist
	// streamBatch / sessionBatch size every batch the stream and
	// session pumps push, in events — the server-push twin of the
	// fabric's fetch_batch_events.
	streamBatch  *metrics.BucketHist
	sessionBatch *metrics.BucketHist
}

// met returns the server's metrics, creating the registry on first use.
func (s *Server) met() *serverMetrics {
	s.metOnce.Do(func() {
		s.reg = metrics.NewRegistry()
		s.met_ = &serverMetrics{
			sessionsOpen: s.reg.Gauge("wire_sessions_open"),
			streamsOpen:  s.reg.Gauge("wire_streams_open"),
			pumpParks:    s.reg.Counter("wire_session_pump_parks"),
			creditStalls: s.reg.Counter("wire_session_credit_stalls"),
			metaPushes:   s.reg.Counter("wire_meta_pushes"),
			produceNs:    s.reg.BucketHist("wire_produce_ns"),
			fetchNs:      s.reg.BucketHist("wire_fetch_ns"),
			streamBatch:  s.reg.BucketHist("wire_stream_batch_events"),
			sessionBatch: s.reg.BucketHist("wire_session_batch_events"),
		}
	})
	return s.met_
}

// Metrics exposes the server's stream/session counters: open sessions
// and streams, session pump parks and credit stalls, and pushed
// metadata frames.
func (s *Server) Metrics() *metrics.Registry {
	s.met()
	return s.reg
}

// NewServer creates a wire server for the fabric, serving every
// partition (LocalBroker -1).
func NewServer(f *broker.Fabric) *Server {
	return &Server{
		Fabric: f, conns: make(map[net.Conn]*connState),
		LocalBroker: -1, stop: make(chan struct{}),
	}
}

// NewBrokerServer creates a wire server scoped to one broker of the
// fabric: the per-node serving view clusternet binds to each broker's
// advertised address.
func NewBrokerServer(f *broker.Fabric, brokerID int) *Server {
	s := NewServer(f)
	s.LocalBroker = brokerID
	return s
}

// Misroutes reports how many data-plane requests this server refused
// with ErrNotLeader because they targeted a partition its broker does
// not lead.
func (s *Server) Misroutes() int64 { return s.misroutes.Load() }

// leaderCheck enforces the per-broker serving scope: a data-plane
// request for a partition led elsewhere is refused with ErrNotLeader
// carrying the current leader's id, so the client knows to re-fetch
// metadata and re-route. Unscoped servers (LocalBroker < 0) and
// per-event-routed produces (partition < 0, the single-address
// fallback path) pass through.
func (s *Server) leaderCheck(topic string, partition int) error {
	if s.LocalBroker < 0 || partition < 0 {
		return nil
	}
	leader, err := s.Fabric.PartitionLeader(topic, partition)
	if err != nil {
		return err
	}
	if leader != s.LocalBroker {
		s.misroutes.Add(1)
		return fmt.Errorf("%w: %s/%d is led by broker %d, not broker %d",
			ErrNotLeader, topic, partition, leader, s.LocalBroker)
	}
	return nil
}

func (s *Server) maxVersion() int {
	if s.MaxVersion <= 0 || s.MaxVersion > MaxProtocol {
		return MaxProtocol
	}
	return s.MaxVersion
}

// featureMask is the feature set this server offers in negotiation.
func (s *Server) featureMask() uint32 {
	feats := allFeatures
	if s.DisableStreaming {
		feats &^= FeatStreamFetch
	}
	if s.DisableClusterMeta {
		feats &^= FeatClusterMeta
	}
	if s.DisableSessionFetch {
		feats &^= FeatSessionFetch
	}
	if s.DisableMetaPush {
		feats &^= FeatMetaPush
	}
	if s.DisableReplication {
		feats &^= FeatReplication
	}
	if s.DisableStats {
		feats &^= FeatStats
	}
	return feats
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	if s.stop == nil {
		s.stop = make(chan struct{})
	}
	// Start the metadata pusher with the first listener: on every
	// controller epoch bump it pushes the fresh cluster view to every
	// connection that negotiated FeatMetaPush, so clients re-route
	// before a request fails rather than after.
	watch := !s.watching && !s.DisableMetaPush && s.Fabric.Ctl != nil
	if watch {
		s.watching = true
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if watch {
		go s.watchEpochs()
	}
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// watchEpochs pushes cluster metadata to push-capable connections on
// every controller epoch bump. Bursts of bumps coalesce in the
// watcher's channel, so a storm of topology changes costs a handful of
// pushes, not one per change.
func (s *Server) watchEpochs() {
	defer s.wg.Done()
	ch, cancel := s.Fabric.Ctl.WatchEpoch()
	defer cancel()
	for {
		select {
		case <-s.stop:
			return
		case <-ch:
		}
		s.pushMetadata()
	}
}

// pushMetadata builds one metadata response and pushes it (corr 0 —
// push frames are routed by op, not correlation) to every
// authenticated connection that negotiated FeatMetaPush.
func (s *Server) pushMetadata() {
	resp := buildMetadataResp(s.Fabric, nil)
	s.mu.Lock()
	targets := make([]*respWriter, 0, len(s.conns))
	for _, cst := range s.conns {
		if cst.w != nil && cst.authed && cst.features&FeatMetaPush != 0 {
			targets = append(targets, cst.w)
		}
	}
	s.mu.Unlock()
	met := s.met()
	for _, w := range targets {
		if w.writeV2(v2OpMetadataPush, 0, resp, nil, nil) == nil {
			met.metaPushes.Inc()
		}
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = &connState{authed: s.AllowAnonymous}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.stop != nil {
		close(s.stop)
	}
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// respWriter coalesces response frames from a connection's concurrent
// handlers: frames accumulate in a pending buffer under the lock and a
// flusher goroutine writes whatever has piled up in one syscall. When
// many requests are in flight, their responses leave as a handful of
// packets — which also lets the client's reader drain them from one
// netpoll wakeup instead of one per response.
type respWriter struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // encoded frames awaiting flush
	err    error  // sticky write failure
	closed bool
	done   chan struct{} // closed when the flusher exits
}

func newRespWriter(conn net.Conn) *respWriter {
	w := &respWriter{conn: conn, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w
}

// write enqueues one v1 response frame whose payload is the marshaled
// event batch (nil for payload-free responses), encoded directly into
// the pending buffer — no intermediate payload buffer or second copy.
func (w *respWriter) write(resp *Response, evs []event.Event) error {
	return w.enqueue(func(buf []byte) ([]byte, error) {
		return appendFrameEvents(buf, resp, evs)
	})
}

// writeV2 enqueues one v2 response frame: a typed binary header (or an
// error code + detail when respErr is non-nil) followed by the
// marshaled event batch.
func (w *respWriter) writeV2(op uint8, corr uint64, m Msg, respErr error, evs []event.Event) error {
	return w.enqueue(func(buf []byte) ([]byte, error) {
		return appendFrameResponseV2(buf, op, corr, m, respErr, evs)
	})
}

func (w *respWriter) enqueue(encode func([]byte) ([]byte, error)) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf, err := encode(w.buf)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.buf = buf
	w.cond.Signal()
	w.mu.Unlock()
	return nil
}

// close stops the flusher and waits for everything enqueued to reach
// the connection, so tearing the connection down cannot drop responses
// to requests that were already handled. The write deadline bounds the
// wait when the peer has stopped reading.
func (w *respWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(IOTimeout))
	<-w.done
}

func (w *respWriter) flushLoop() {
	defer close(w.done)
	var out []byte
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && w.err == nil && !w.closed {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.buf) == 0) {
			w.mu.Unlock()
			return
		}
		out, w.buf = w.buf, out[:0]
		w.mu.Unlock()
		_, err := w.conn.Write(out)
		if err != nil {
			w.mu.Lock()
			w.err = err
			w.cond.Broadcast()
			w.mu.Unlock()
			// Wake the read loop so the connection tears down.
			w.conn.Close()
			return
		}
		if cap(out) > maxPooledFrame {
			out = nil
		}
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var handlers sync.WaitGroup
	w := newRespWriter(conn)
	// done interrupts parked long-polls and stream tail waits the moment
	// the read loop exits, so teardown never blocks behind a wait.
	done := make(chan struct{})
	streams := newConnStreams(s, w, done)
	sessions := newConnSessions(s, w, done)
	// cst mirrors this connection's auth and feature state for the
	// metadata pusher; all mutations happen under s.mu.
	s.mu.Lock()
	cst := s.conns[conn]
	if cst != nil {
		cst.w = w
	}
	s.mu.Unlock()
	defer func() {
		close(done)
		streams.closeAll()
		sessions.closeAll()
		handlers.Wait()
		w.close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sem := make(chan struct{}, maxConnConcurrency)
	identity := ""
	authed := s.AllowAnonymous
	// version is the connection's framing, flipped at most once by an
	// inline-handled OpNegotiate. Only the read loop touches it;
	// handlers capture the version their request arrived under.
	version := ProtocolV1
	// features is the negotiated feature set (0 until negotiation).
	features := uint32(0)
	// interner canonicalizes topic strings across this connection's v2
	// data-plane requests (see intern.go). Only the read loop decodes,
	// so it is unsynchronized by construction.
	var interner Interner
	var hdrBuf []byte
	// Buffered reads: a pipelined client coalesces many frames per
	// write, so the read loop should not pay three syscalls per frame.
	// Payload buffers are still allocated fresh per frame, which the
	// produce donation path depends on.
	rd := bufio.NewReaderSize(conn, 64<<10)
	for {
		if version >= ProtocolV2 {
			hb, err := readHeaderInto(rd, &hdrBuf)
			if err != nil {
				return // EOF or broken connection
			}
			corr, op, m, derr := decodeAnyRequestV2(hb, &interner)
			payload, err := ReadPayloadInto(rd, nil)
			if err != nil {
				return
			}
			if derr != nil {
				if len(hb) < v2ReqPrefix {
					// Header too short for even the prefix: the peer is
					// not speaking v2 framing, drop the connection.
					return
				}
				// Unknown op or malformed body with an intact prefix:
				// answer with a typed error, the framing is fine.
				if w.writeV2(op, corr, nil, derr, nil) != nil {
					return
				}
				continue
			}
			// Connection-state ops are handled inline on the read loop:
			// auth flips the principal, stream ops mutate the stream
			// registry. All are non-blocking (open's pump runs async).
			switch q := m.(type) {
			case *AuthReq:
				resp, aerr := s.authenticate(q, &identity, &authed)
				if aerr == nil {
					s.mu.Lock()
					if cst != nil {
						cst.authed = true
					}
					s.mu.Unlock()
				}
				putReqMsg(op, m)
				if w.writeV2(op, corr, resp, aerr, nil) != nil {
					return
				}
				continue
			case *StreamOpenReq:
				var resp *StreamOpenResp
				oerr := fmt.Errorf("%w %d: streaming fetch not negotiated", errUnknownOp, op)
				if features&FeatStreamFetch != 0 {
					resp, oerr = streams.open(q, identity, authed)
				}
				putReqMsg(op, m)
				if oerr != nil {
					if w.writeV2(op, corr, nil, oerr, nil) != nil {
						return
					}
					continue
				}
				if w.writeV2(op, corr, resp, nil, nil) != nil {
					return
				}
				continue
			case *MetadataReq:
				// Control-plane and cheap: handled inline like auth. Gated
				// on the negotiated feature so a masked server answers
				// exactly as one that predates the op, and on
				// authentication — cluster topology (broker addresses,
				// liveness, leadership) must not leak to anyone who can
				// merely reach a port.
				var resp *MetadataResp
				var merr error
				switch {
				case features&FeatClusterMeta == 0:
					merr = fmt.Errorf("%w %d: cluster metadata not negotiated", errUnknownOp, op)
				case !authed:
					merr = fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
				default:
					resp = buildMetadataResp(s.Fabric, q.Topics)
				}
				putReqMsg(op, m)
				if w.writeV2(op, corr, resp, merr, nil) != nil {
					return
				}
				continue
			case *StreamCreditReq:
				// One-way: grants for closed streams are silently dropped.
				streams.credit(q.ID, q.Credit, q.CreditBytes)
				putReqMsg(op, m)
				continue
			case *StreamCloseReq:
				streams.closeStream(q.ID)
				putReqMsg(op, m)
				continue
			case *SessionOpenReq:
				var resp *SessionOpenResp
				oerr := fmt.Errorf("%w %d: session fetch not negotiated", errUnknownOp, op)
				if features&FeatSessionFetch != 0 {
					resp, oerr = sessions.open(q, identity, authed)
				}
				putReqMsg(op, m)
				if oerr != nil {
					if w.writeV2(op, corr, nil, oerr, nil) != nil {
						return
					}
					continue
				}
				if w.writeV2(op, corr, resp, nil, nil) != nil {
					return
				}
				continue
			case *SessionSubReq:
				// Always answered — the client treats removes as one-way
				// and lets the response drop, but adds need the partition
				// positions back.
				var resp *SessionSubResp
				serr := fmt.Errorf("%w %d: session fetch not negotiated", errUnknownOp, op)
				if features&FeatSessionFetch != 0 {
					resp, serr = sessions.sub(q, authed)
				}
				putReqMsg(op, m)
				if serr != nil {
					if w.writeV2(op, corr, nil, serr, nil) != nil {
						return
					}
					continue
				}
				if w.writeV2(op, corr, resp, nil, nil) != nil {
					return
				}
				continue
			case *SessionCreditReq:
				// One-way: grants for closed sessions are silently dropped.
				sessions.credit(q.SessionID, q.CreditBytes)
				putReqMsg(op, m)
				continue
			case *SessionCloseReq:
				sessions.closeSession(q.SessionID)
				putReqMsg(op, m)
				continue
			case *StatsReq:
				// Control-plane and cheap: handled inline like metadata,
				// with the same feature and auth gates — a broker's
				// telemetry (traffic volumes, latency shapes, topology
				// hints in metric names) must not leak to anyone who can
				// merely reach a port.
				var resp *StatsResp
				var serr error
				switch {
				case features&FeatStats == 0:
					serr = fmt.Errorf("%w %d: stats not negotiated", errUnknownOp, op)
				case !authed:
					serr = fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
				default:
					resp = buildStatsResp(s)
				}
				putReqMsg(op, m)
				if w.writeV2(op, corr, resp, serr, nil) != nil {
					return
				}
				continue
			case *ReplicaFetchReq, *ReplicaAckReq:
				// Feature-gated like metadata, but the fetch long-polls
				// and carries events, so a negotiated request falls
				// through to the async dispatch below.
				if features&FeatReplication == 0 {
					putReqMsg(op, m)
					if w.writeV2(op, corr, nil, fmt.Errorf("%w %d: replication not negotiated", errUnknownOp, op), nil) != nil {
						return
					}
					continue
				}
			}
			sem <- struct{}{}
			handlers.Add(1)
			go func(op uint8, corr uint64, m ReqMsg, payload []byte, identity string, authed bool) {
				defer handlers.Done()
				defer func() { <-sem }()
				resp, evs, err := s.dispatch(m, payload, identity, authed, done)
				if werr := w.writeV2(op, corr, resp, err, evs); errors.Is(werr, ErrFrameTooLarge) {
					// The success response didn't fit its frame bound
					// (e.g. a pathologically fragmented offset run list):
					// the caller must still get an answer, or it hangs
					// until the deadline kills the whole connection.
					// Error frames are tiny and always fit.
					_ = w.writeV2(op, corr, nil, werr, nil)
				}
				putReqMsg(op, m)
			}(op, corr, m, payload, identity, authed)
			continue
		}

		var req Request
		payload, err := ReadFrame(rd, &req)
		if err != nil {
			return // EOF or broken connection
		}
		switch req.Op {
		case OpNegotiate:
			// Version handshake; handled inline (before auth — old
			// clients never send it, new clients send it first) because
			// it flips the connection's framing.
			switch {
			case s.maxVersion() < ProtocolV2:
				// Legacy emulation: answer exactly as a server that
				// predates the handshake would.
				resp := errRespV1(fmt.Errorf("%w %q", errUnknownOp, req.Op))
				resp.Corr = req.Corr
				if w.write(resp, nil) != nil {
					return
				}
			case req.MaxVersion >= ProtocolV2:
				resp := &Response{Corr: req.Corr, Version: ProtocolV2, Features: req.Features & s.featureMask()}
				if w.write(resp, nil) != nil {
					return
				}
				// Every frame after this response — in both directions —
				// is v2. The respWriter preserves enqueue order, so the
				// v1 response above always leaves first.
				version = ProtocolV2
				features = resp.Features
				s.mu.Lock()
				if cst != nil {
					cst.features = features
				}
				s.mu.Unlock()
			default:
				resp := &Response{Corr: req.Corr, Version: ProtocolV1}
				if w.write(resp, nil) != nil {
					return
				}
			}
			continue
		case OpAuth:
			aresp := &Response{Corr: req.Corr}
			resp, aerr := s.authenticate(&AuthReq{AccessKeyID: req.AccessKeyID, Secret: req.Secret}, &identity, &authed)
			if aerr == nil {
				s.mu.Lock()
				if cst != nil {
					cst.authed = true
				}
				s.mu.Unlock()
			}
			if aerr != nil {
				aresp = errRespV1(aerr)
				aresp.Corr = req.Corr
			} else {
				resp.toV1(aresp)
			}
			if w.write(aresp, nil) != nil {
				return
			}
			continue
		}
		m, perr := req.typed()
		sem <- struct{}{}
		handlers.Add(1)
		go func(corr uint64, m ReqMsg, perr error, payload []byte, identity string, authed bool) {
			defer handlers.Done()
			defer func() { <-sem }()
			var (
				resp respMsg
				evs  []event.Event
				err  error
			)
			if perr != nil {
				err = perr
			} else {
				resp, evs, err = s.dispatch(m, payload, identity, authed, done)
			}
			v1 := &Response{Corr: corr}
			if err != nil {
				v1 = errRespV1(err)
				v1.Corr = corr
				evs = nil
			} else if resp != nil {
				resp.toV1(v1)
			}
			if werr := w.write(v1, evs); errors.Is(werr, ErrFrameTooLarge) {
				// As on the v2 path: an unencodable success response
				// (e.g. a v1 Offsets array past MaxHeader) must come
				// back as an error, not a hang.
				er := errRespV1(werr)
				er.Corr = corr
				_ = w.write(er, nil)
			}
		}(req.Corr, m, perr, payload, identity, authed)
	}
}

// errRespV1 builds a v1 error response, carrying the sentinel class as
// the legacy err_kind string.
func errRespV1(err error) *Response {
	_, kind := errCodeOf(err)
	return &Response{Err: err.Error(), ErrKind: kind}
}

// typed converts a v1 JSON request header to its typed message — the
// server-side inverse of ReqMsg.v1, which lets the dispatch path be
// version-agnostic.
func (r *Request) typed() (ReqMsg, error) {
	switch r.Op {
	case OpPing:
		return &PingReq{}, nil
	case OpProduce:
		return &ProduceReq{Topic: r.Topic, Partition: r.Partition, Acks: r.Acks, NumEvents: r.NumEvents}, nil
	case OpFetch:
		return &FetchReq{Topic: r.Topic, Partition: r.Partition, Offset: r.Offset, MaxEvents: r.MaxEvents, MaxBytes: r.MaxBytes}, nil
	case OpEndOffset:
		return &EndOffsetReq{Topic: r.Topic, Partition: r.Partition}, nil
	case OpStartOffset:
		return &StartOffsetReq{Topic: r.Topic, Partition: r.Partition}, nil
	case OpOffsetForTime:
		return &OffsetForTimeReq{Topic: r.Topic, Partition: r.Partition, TimeNano: r.TimeNano}, nil
	case OpTopicMeta:
		return &TopicMetaReq{Topic: r.Topic}, nil
	case OpJoinGroup:
		return &JoinGroupReq{Group: r.Group, Member: r.Member, Topics: r.Topics}, nil
	case OpLeaveGroup:
		return &LeaveGroupReq{Group: r.Group, Member: r.Member}, nil
	case OpHeartbeat:
		return &HeartbeatReq{Group: r.Group, Member: r.Member}, nil
	case OpCommit:
		return &CommitReq{Group: r.Group, Member: r.Member, Generation: r.Generation, Topic: r.Topic, Partition: r.Partition, Offset: r.Offset}, nil
	case OpCommitted:
		return &CommittedReq{Group: r.Group, Topic: r.Topic, Partition: r.Partition}, nil
	}
	return nil, fmt.Errorf("%w %q", errUnknownOp, r.Op)
}

// authenticate handles OpAuth against the fabric's identity store.
func (s *Server) authenticate(a *AuthReq, identity *string, authed *bool) (*AuthResp, error) {
	ident, err := s.Fabric.Auth.Authenticate(a.AccessKeyID, a.Secret)
	if err != nil {
		return nil, err
	}
	*identity = ident.ID
	*authed = true
	return &AuthResp{Identity: ident.ID}, nil
}

// dispatch executes one data-plane request against the fabric.
// Responses with an event payload (fetch) return the events themselves;
// the respWriter marshals them straight into the connection's pending
// write buffer, in whichever framing the request arrived under. stop
// interrupts long-poll waits when the connection tears down.
func (s *Server) dispatch(m ReqMsg, payload []byte, identity string, authed bool, stop <-chan struct{}) (respMsg, []event.Event, error) {
	if !authed {
		return nil, nil, fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
	}
	switch q := m.(type) {
	case *PingReq:
		return &EmptyResp{}, nil, nil
	case *ProduceReq:
		if err := s.leaderCheck(q.Topic, q.Partition); err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		evs, err := DecodeEvents(payload, q.NumEvents)
		if err != nil {
			return nil, nil, err
		}
		// The frame buffer is donated to the fabric as the batch arena:
		// decoded events alias it, and from here it is owned by the log
		// records. The read loop allocates a fresh payload buffer per
		// frame, so it never reuses this one.
		off, err := s.Fabric.ProduceDonated(identity, q.Topic, q.Partition, evs, broker.Acks(q.Acks))
		if err != nil {
			return nil, nil, err
		}
		s.met().produceNs.Observe(int64(time.Since(t0)))
		return &ProduceResp{Offset: off}, nil, nil
	case *FetchReq:
		if err := s.leaderCheck(q.Topic, q.Partition); err != nil {
			return nil, nil, err
		}
		// WaitMaxMS long-polls an empty partition on the log's tail
		// waiter (v2 clients only; v1 framing never carries it). The
		// wait is capped below the transport IOTimeout and interrupted
		// by connection teardown.
		wait := time.Duration(q.WaitMaxMS) * time.Millisecond
		if wait > MaxFetchWait {
			wait = MaxFetchWait
		}
		t0 := time.Now()
		res, err := s.Fabric.FetchWaitInto(identity, q.Topic, q.Partition, q.Offset, q.MaxEvents, q.MaxBytes, wait, stop, nil)
		if err != nil {
			return nil, nil, err
		}
		resp := &FetchResp{
			NumEvents:     len(res.Events),
			HighWatermark: res.HighWatermark,
			StartOffset:   res.StartOffset,
		}
		resp.SetOffsets(res.Events)
		s.met().fetchNs.Observe(int64(time.Since(t0)))
		return resp, res.Events, nil
	case *EndOffsetReq:
		off, err := s.Fabric.EndOffset(q.Topic, q.Partition)
		if err != nil {
			return nil, nil, err
		}
		return &OffsetResp{Offset: off}, nil, nil
	case *StartOffsetReq:
		off, err := s.Fabric.StartOffset(q.Topic, q.Partition)
		if err != nil {
			return nil, nil, err
		}
		return &OffsetResp{Offset: off}, nil, nil
	case *OffsetForTimeReq:
		off, err := s.Fabric.OffsetForTime(q.Topic, q.Partition, time.Unix(0, q.TimeNano))
		if err != nil {
			return nil, nil, err
		}
		return &OffsetResp{Offset: off}, nil, nil
	case *TopicMetaReq:
		meta, err := s.Fabric.Ctl.Topic(q.Topic)
		if err != nil {
			return nil, nil, err
		}
		return &TopicMetaResp{Meta: meta}, nil, nil
	case *JoinGroupReq:
		asn, err := s.Fabric.Groups.Join(q.Group, q.Member, q.Topics)
		if err != nil {
			return nil, nil, err
		}
		return &JoinGroupResp{Generation: asn.Generation, Partitions: asn.Partitions}, nil, nil
	case *LeaveGroupReq:
		s.Fabric.Groups.Leave(q.Group, q.Member)
		return &EmptyResp{}, nil, nil
	case *HeartbeatReq:
		gen, err := s.Fabric.Groups.Heartbeat(q.Group, q.Member)
		if err != nil {
			return nil, nil, err
		}
		return &HeartbeatResp{Generation: gen}, nil, nil
	case *CommitReq:
		err := s.Fabric.Groups.Commit(q.Group, q.Member, q.Generation, q.Topic, q.Partition, q.Offset)
		if err != nil {
			return nil, nil, err
		}
		return &EmptyResp{}, nil, nil
	case *CommittedReq:
		off := s.Fabric.Groups.Committed(q.Group, q.Topic, q.Partition)
		return &OffsetResp{Offset: off}, nil, nil
	case *ReplicaFetchReq:
		// leaderCheck doubles as coarse fencing: a follower pulling from
		// a deposed leader's server is told to re-route before the
		// epoch check even runs.
		if err := s.leaderCheck(q.Topic, q.Partition); err != nil {
			return nil, nil, err
		}
		wait := time.Duration(q.WaitMaxMS) * time.Millisecond
		if wait > MaxFetchWait {
			wait = MaxFetchWait
		}
		res, err := s.Fabric.ReplicaFetch(q.Follower, q.Topic, q.Partition, q.LeaderEpoch, q.Offset, q.MaxEvents, q.MaxBytes, wait, stop, nil)
		if err != nil {
			return nil, nil, err
		}
		resp := &ReplicaFetchResp{
			NumEvents:     len(res.Events),
			LeaderEpoch:   res.LeaderEpoch,
			HighWatermark: res.HighWatermark,
			LogStart:      res.LogStart,
			LogEnd:        res.LogEnd,
		}
		resp.SetOffsets(res.Events)
		return resp, res.Events, nil
	case *ReplicaAckReq:
		if err := s.leaderCheck(q.Topic, q.Partition); err != nil {
			return nil, nil, err
		}
		if err := s.Fabric.ReplicaAck(q.Follower, q.Topic, q.Partition, q.LeaderEpoch, q.LogEnd); err != nil {
			return nil, nil, err
		}
		return &EmptyResp{}, nil, nil
	}
	return nil, nil, fmt.Errorf("%w %T", errUnknownOp, m)
}
