package wire

import "fmt"

import "testing"

// TestInternerCapBounded pins the reset-on-cap contract: a connection
// cycling through arbitrarily many topic names can never grow its
// intern table past maxInternedTopics entries. A hostile peer paying
// one allocation per fabricated name buys at most a bounded map.
func TestInternerCapBounded(t *testing.T) {
	var in Interner
	for i := 0; i < 5*maxInternedTopics; i++ {
		name := fmt.Sprintf("topic-%d", i)
		if got := in.Intern([]byte(name)); got != name {
			t.Fatalf("interned %q as %q", name, got)
		}
		if len(in.m) > maxInternedTopics {
			t.Fatalf("intern table grew to %d entries (cap %d) after %d names",
				len(in.m), maxInternedTopics, i+1)
		}
	}
	// The table reset at least once and kept working afterwards: a
	// repeat lookup still resolves to one canonical string.
	a := in.Intern([]byte("steady"))
	b := in.Intern([]byte("steady"))
	if a != b {
		t.Fatal("post-reset interning lost canonicalization")
	}
}

// TestInternerCapValue pins the cap itself: growing it silently would
// loosen the per-connection memory bound this test exists to guard.
func TestInternerCapValue(t *testing.T) {
	if maxInternedTopics != 1024 {
		t.Fatalf("maxInternedTopics = %d, want 1024 — an intentional change must update this pin", maxInternedTopics)
	}
}
