package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

// --- pipelined transport ---

// TestConcurrentRoundTripsOneConnection drives many goroutines through a
// single client connection: correlation dispatch must route every
// response to its caller (run under -race in CI).
func TestConcurrentRoundTripsOneConnection(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("pipe", "", cluster.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers, each = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := w % 4
			for j := 0; j < each; j++ {
				val := []byte(fmt.Sprintf("w%d-%d", w, j))
				if _, err := c.Produce("", "pipe", part, []event.Event{{Value: val}}, broker.AcksLeader); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
				// Interleave reads so produce and fetch responses mix on
				// the shared connection.
				if _, err := c.EndOffset("pipe", part); err != nil {
					t.Errorf("end offset: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		end, err := c.EndOffset("pipe", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != workers*each {
		t.Fatalf("produced %d, want %d", total, workers*each)
	}
	// Every event must be intact and routed to the partition its writer
	// chose (a correlation mixup would cross-wire responses, not events,
	// but fetch everything anyway to prove the data plane survived).
	got := 0
	for p := 0; p < 4; p++ {
		res, err := c.Fetch("", "pipe", p, 0, workers*each, 0)
		if err != nil {
			t.Fatal(err)
		}
		got += len(res.Events)
	}
	if got != workers*each {
		t.Fatalf("fetched %d, want %d", got, workers*each)
	}
}

// rawListen starts a protocol-speaking fake server for transport tests,
// returning its address. handler is invoked once per accepted
// connection.
func rawListen(t *testing.T, handler func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				handler(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// handshakeRaw answers the client's connection-open sequence the way a
// v1-only server would: OpNegotiate (if sent) gets an "unknown op"
// error, which makes the client fall back to v1 framing, and the
// anonymous ping probe gets an empty success.
func handshakeRaw(t *testing.T, conn net.Conn) bool {
	t.Helper()
	for {
		var req Request
		if _, err := ReadFrame(conn, &req); err != nil {
			return false
		}
		if req.Op == OpNegotiate {
			resp := errRespV1(fmt.Errorf("wire: unknown op %q", req.Op))
			resp.Corr = req.Corr
			if WriteFrame(conn, resp, nil) != nil {
				return false
			}
			continue
		}
		return WriteFrame(conn, &Response{Corr: req.Corr}, nil) == nil
	}
}

// dialRawAnon dials with a single pool connection, the configuration
// the raw fake-server tests assume: every request lands on the one
// connection the handler controls.
func dialRawAnon(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOutOfOrderResponseDelivery proves correlation matching: a server
// that answers two pipelined requests in reverse order must still
// complete each caller with its own response.
func TestOutOfOrderResponseDelivery(t *testing.T) {
	addr := rawListen(t, func(conn net.Conn) {
		if !handshakeRaw(t, conn) {
			return
		}
		// Collect two requests, then answer them newest-first, echoing
		// the requested partition as the offset so callers can tell the
		// responses apart.
		var reqs []Request
		for len(reqs) < 2 {
			var req Request
			if _, err := ReadFrame(conn, &req); err != nil {
				return
			}
			reqs = append(reqs, req)
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			resp := &Response{Corr: reqs[i].Corr, Offset: int64(reqs[i].Partition)}
			if err := WriteFrame(conn, resp, nil); err != nil {
				return
			}
		}
	})
	c := dialRawAnon(t, addr)
	defer c.Close()
	var wg sync.WaitGroup
	for _, part := range []int{41, 42} {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			off, err := c.EndOffset("t", part)
			if err != nil {
				t.Errorf("end offset %d: %v", part, err)
				return
			}
			if off != int64(part) {
				t.Errorf("caller for partition %d got response %d: responses cross-wired", part, off)
			}
		}(part)
	}
	wg.Wait()
}

// TestSlowHandlerDoesNotBlockPipeline pipelines a cheap ping behind an
// expensive fetch on one connection against the real server: concurrent
// handlers must deliver the ping response while the fetch is still being
// encoded and written.
func TestSlowHandlerDoesNotBlockPipeline(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("slow", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	// ~24 MB of fetchable data makes the fetch handler's encode+write
	// take macroscopic time.
	payload := make([]byte, 8192)
	batch := make([]event.Event, 128)
	for i := range batch {
		batch[i] = event.Event{Value: payload}
	}
	for i := 0; i < 24; i++ {
		if _, err := f.Produce("", "slow", 0, batch, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Raw frames on purpose: each round puts a fetch and a ping on the
	// server back to back before either response is read. A serial
	// server answers strictly in request order, so the ping beating the
	// fetch even once proves handlers interleave; requiring one win in
	// several rounds keeps the test deterministic on a loaded host where
	// a fetch occasionally completes within its first scheduler quantum.
	pingFirst := 0
	const rounds = 5
	for r := 0; r < rounds; r++ {
		fetchCorr, pingCorr := uint64(2*r+1), uint64(2*r+2)
		if err := WriteFrame(conn, &Request{Op: OpFetch, Corr: fetchCorr, Topic: "slow", MaxEvents: 1 << 20}, nil); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, &Request{Op: OpPing, Corr: pingCorr}, nil); err != nil {
			t.Fatal(err)
		}
		var first, second Response
		if _, err := ReadFrame(conn, &first); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrame(conn, &second); err != nil {
			t.Fatal(err)
		}
		if first.Corr == pingCorr {
			pingFirst++
		}
		fetch := first
		if second.Corr == fetchCorr {
			fetch = second
		}
		if fetch.Corr != fetchCorr || fetch.NumEvents != 24*128 {
			t.Fatalf("round %d: fetch response corr=%d events=%d", r, fetch.Corr, fetch.NumEvents)
		}
	}
	if pingFirst == 0 {
		t.Fatalf("ping never overtook the slow fetch in %d rounds: handlers are not interleaving", rounds)
	}
}

// TestMidStreamDisconnectFansOutErrors kills the connection while
// several requests are in flight: every pending caller must get an
// error (no hangs), and the client must work again once a healthy
// server is reachable.
func TestMidStreamDisconnectFansOutErrors(t *testing.T) {
	inFlight := make(chan struct{}, 8)
	var accepted atomic.Int32
	addr := rawListen(t, func(conn net.Conn) {
		if accepted.Add(1) > 1 {
			// Fail reconnect attempts outright so callers surface errors
			// instead of retrying into the void.
			return
		}
		if !handshakeRaw(t, conn) {
			return
		}
		// Swallow requests without responding, then cut the connection
		// once all are in flight.
		for i := 0; i < 3; i++ {
			var req Request
			if _, err := ReadFrame(conn, &req); err != nil {
				return
			}
			inFlight <- struct{}{}
		}
		conn.Close()
	})
	c := dialRawAnon(t, addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, err := c.EndOffset("t", p)
			errs <- err
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pending callers hung after mid-stream disconnect")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("caller succeeded against a server that never responded")
		}
	}
}

// TestDisconnectDuringPayloadRead cuts the connection after the
// response header but before the payload: the matched caller (already
// claimed from the pending map) must still be completed with the error
// rather than hang.
func TestDisconnectDuringPayloadRead(t *testing.T) {
	var accepted atomic.Int32
	addr := rawListen(t, func(conn net.Conn) {
		if accepted.Add(1) > 1 {
			return // fail reconnects
		}
		if !handshakeRaw(t, conn) {
			return
		}
		var req Request
		if _, err := ReadFrame(conn, &req); err != nil {
			return
		}
		// Header promising a 1 KB payload, then only half of it.
		hb, _ := json.Marshal(&Response{Corr: req.Corr, NumEvents: 1})
		frame := binary.BigEndian.AppendUint32(nil, uint32(len(hb)))
		frame = append(frame, hb...)
		frame = binary.BigEndian.AppendUint32(frame, 1024)
		frame = append(frame, make([]byte, 512)...)
		_, _ = conn.Write(frame)
		conn.Close()
	})
	c := dialRawAnon(t, addr)
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Fetch("", "t", 0, 0, 10, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fetch succeeded on a truncated response")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("caller hung on a connection cut mid-payload")
	}
}

// TestCloseFailsPendingWithErrConnClosed is the regression test for
// Close during in-flight requests: the pending caller must complete
// promptly with ErrConnClosed, and later calls must keep returning it.
func TestCloseFailsPendingWithErrConnClosed(t *testing.T) {
	received := make(chan struct{})
	addr := rawListen(t, func(conn net.Conn) {
		if !handshakeRaw(t, conn) {
			return
		}
		var req Request
		if _, err := ReadFrame(conn, &req); err != nil {
			return
		}
		close(received)
		// Stall forever: only Close can release the caller.
		var dummy Request
		_, _ = ReadFrame(conn, &dummy)
	})
	c := dialRawAnon(t, addr)
	result := make(chan error, 1)
	go func() {
		_, err := c.EndOffset("t", 0)
		result <- err
	}()
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the server")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-result:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("pending caller got %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending caller hung across Close")
	}
	if _, err := c.EndOffset("t", 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("call after Close = %v, want ErrConnClosed", err)
	}
	if err := c.Close(); err != nil { // double close stays fine
		t.Fatal(err)
	}
}

// TestPrefetchConsumerOverWire runs the SDK consumer with async
// prefetch over the pipelined transport end to end, verifying the
// stream inside each poll window (events alias the session arena and
// are only valid until the next Poll).
func TestPrefetchConsumerOverWire(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("pf", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i += 100 {
		batch := make([]event.Event, 100)
		for j := range batch {
			batch[j] = event.Event{Value: []byte(fmt.Sprintf("v%d", i+j))}
		}
		if _, err := f.Produce("", "pf", 0, batch, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cons := client.NewConsumer(c, client.ConsumerConfig{Start: client.StartEarliest, Prefetch: true, MaxPollEvents: 64})
	defer cons.Close()
	if err := cons.Assign("pf", 0); err != nil {
		t.Fatal(err)
	}
	next := 0
	deadline := time.Now().Add(10 * time.Second)
	for next < total && time.Now().Before(deadline) {
		evs, err := cons.Poll(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if want := fmt.Sprintf("v%d", next); string(ev.Value) != want {
				t.Fatalf("event %d = %q, want %q", next, ev.Value, want)
			}
			next++
		}
	}
	if next != total {
		t.Fatalf("consumed %d, want %d", next, total)
	}
}

// --- produce frame donation ---

// TestDonatedProduceBufferNotReused proves the ownership rule of frame
// donation: the wire server hands each produce frame to the fabric as
// the batch arena, so nothing on the server may recycle that buffer
// while the log records referencing it are live. Later traffic (which
// exercises every pooled buffer on the server) must not corrupt earlier
// events.
func TestDonatedProduceBufferNotReused(t *testing.T) {
	f, addr, stop := startServer(t, true)
	defer stop()
	if _, err := f.CreateTopic("donate", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	c, err := DialAnonymous(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	marker := bytes.Repeat([]byte("sentinel-"), 100)
	if _, err := c.Produce("", "donate", 0, []event.Event{{Key: []byte("k0"), Value: marker}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	// Hammer the connection with produces and fetches sized like the
	// original frame: if the server pooled or reused donated buffers,
	// one of these would overwrite the first record's bytes in place.
	junk := bytes.Repeat([]byte("JUNKJUNK-"), 100)
	for i := 0; i < 200; i++ {
		if _, err := c.Produce("", "donate", 0, []event.Event{{Key: []byte("kx"), Value: junk}}, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Fetch("", "donate", 0, int64(i), 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Fetch("", "donate", 0, 0, 1, 0)
	if err != nil || len(res.Events) != 1 {
		t.Fatalf("fetch: %d events, %v", len(res.Events), err)
	}
	if !bytes.Equal(res.Events[0].Value, marker) || string(res.Events[0].Key) != "k0" {
		t.Fatal("donated produce buffer was reused while its batch was live")
	}
}

// TestProduceDonatedSkipsArenaClone pins the donation contract at the
// fabric boundary: donated bytes are stored as-is (mutating the donated
// buffer afterwards corrupts the record — which is exactly why donors
// must hand over ownership), while the regular Produce still clones.
func TestProduceDonatedSkipsArenaClone(t *testing.T) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("d", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	donated := []byte("donated-bytes")
	if _, err := f.ProduceDonated("", "d", 0, []event.Event{{Value: donated}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	cloned := []byte("cloned-bytes!")
	if _, err := f.Produce("", "d", 0, []event.Event{{Value: cloned}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	donated[0] = 'X'
	cloned[0] = 'X'
	res, err := f.Fetch("", "d", 0, 0, 2, 0)
	if err != nil || len(res.Events) != 2 {
		t.Fatalf("fetch: %d events, %v", len(res.Events), err)
	}
	if string(res.Events[0].Value) != "Xonated-bytes" {
		t.Fatalf("donated record did not alias the donated buffer: %q", res.Events[0].Value)
	}
	if string(res.Events[1].Value) != "cloned-bytes!" {
		t.Fatalf("regular produce aliased the caller's buffer: %q", res.Events[1].Value)
	}
}
