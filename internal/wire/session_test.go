package wire

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// startSessServer is startServer exposing the *Server, so session tests
// can read its stream/session instrumentation.
func startSessServer(t *testing.T) (*broker.Fabric, *Server, string, func()) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.AllowAnonymous = true
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return f, s, addr, s.Close
}

// sessionTopic provisions a topic and pre-produces n events into every
// partition, valued "p<part>-<i>" so consumers can verify routing.
func sessionTopic(t *testing.T, f *broker.Fabric, topic string, parts, n int) {
	t.Helper()
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		evs := make([]event.Event, 0, 64)
		for i := 0; i < n; i++ {
			evs = append(evs, event.Event{Value: []byte(fmt.Sprintf("p%d-%d", p, i))})
			if len(evs) == 64 || i == n-1 {
				if _, err := f.Produce("", topic, p, evs, broker.AcksLeader); err != nil {
					t.Fatal(err)
				}
				evs = evs[:0]
			}
		}
	}
}

// sessWC returns the wireConn serving a topic-partition (white-box).
func (c *Client) sessWC(topic string, partition int) *wireConn {
	addr := c.dataAddr(topic, partition)
	c.mu.Lock()
	defer c.mu.Unlock()
	ep := c.eps[addr]
	if ep == nil {
		return nil
	}
	return ep.slots[c.slotFor(topic, partition)]
}

// sessSub returns the client-side session subscription serving a
// topic-partition, nil if none is live (white-box).
func (c *Client) sessSub(topic string, partition int) *clientSub {
	wc := c.sessWC(topic, partition)
	if wc == nil {
		return nil
	}
	wc.sessMu.Lock()
	sess := wc.session
	wc.sessMu.Unlock()
	if sess == nil {
		return nil
	}
	return sess.subFor(streamKey{topic, partition})
}

// TestSessionFetchMultiplexesPartitions is the tentpole's correctness
// anchor: one connection consuming many partitions rides exactly ONE
// fetch session (one server pump goroutine) with one subscription per
// partition — no per-partition streams — and every event still arrives
// in order with its value intact.
func TestSessionFetchMultiplexesPartitions(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	const parts, perPart = 8, 300
	sessionTopic(t, f, "ms", parts, perPart)
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Features()&FeatSessionFetch == 0 {
		t.Fatal("session fetch not negotiated on a current pairing")
	}

	var buf broker.FetchBuffer
	offs := make([]int64, parts)
	got := 0
	deadline := time.Now().Add(15 * time.Second)
	for got < parts*perPart && time.Now().Before(deadline) {
		for p := 0; p < parts; p++ {
			if offs[p] >= perPart {
				continue
			}
			res, err := c.FetchBufferedWait("", "ms", p, offs[p], 50, 1<<20, 50*time.Millisecond, &buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range res.Events {
				if ev.Offset != offs[p] {
					t.Fatalf("partition %d: offset %d, want %d", p, ev.Offset, offs[p])
				}
				if want := fmt.Sprintf("p%d-%d", p, offs[p]); string(ev.Value) != want {
					t.Fatalf("partition %d event %d: value %q, want %q", p, offs[p], ev.Value, want)
				}
				offs[p]++
				got++
			}
		}
	}
	if got != parts*perPart {
		t.Fatalf("consumed %d of %d", got, parts*perPart)
	}
	// One session, no streams: the whole fan-in shares a single pump.
	if n := s.met().sessionsOpen.Value(); n != 1 {
		t.Fatalf("%d sessions open, want exactly 1", n)
	}
	if n := s.met().streamsOpen.Value(); n != 0 {
		t.Fatalf("%d per-partition streams open, want 0", n)
	}
	for p := 0; p < parts; p++ {
		if c.sessSub("ms", p) == nil {
			t.Fatalf("partition %d not served by a session subscription", p)
		}
	}

	// Late data on a drained sub is pushed without a new subscription:
	// the armed append callback re-readies it inside the same session.
	if _, err := f.Produce("", "ms", 3, []event.Event{{Value: []byte("late")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	res, err := c.FetchBufferedWait("", "ms", 3, offs[3], 10, 1<<20, 5*time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || string(res.Events[0].Value) != "late" {
		t.Fatalf("late event not pushed through the session: %v", res.Events)
	}
}

// TestSessionSeekResubscribes pins the seek path: a fetch at an offset
// other than the expected next one replaces the subscription (new sub
// ID, stale in-flight frames refunded) and serves the requested offset
// exactly — within the same session.
func TestSessionSeekResubscribes(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	sessionTopic(t, f, "sk", 1, 500)
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var buf broker.FetchBuffer
	var off int64
	for off < 200 {
		res, err := c.FetchBufferedWait("", "sk", 0, off, 64, 1<<20, time.Second, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) == 0 {
			t.Fatalf("no events at %d", off)
		}
		off = res.Events[len(res.Events)-1].Offset + 1
	}
	sub1 := c.sessSub("sk", 0)
	if sub1 == nil {
		t.Fatal("no session subscription before seek")
	}
	// Rewind: the session must resubscribe, not replay from 200.
	res, err := c.FetchBufferedWait("", "sk", 0, 10, 5, 1<<20, time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 || res.Events[0].Offset != 10 || string(res.Events[0].Value) != "p0-10" {
		t.Fatalf("seek to 10 served %v", res.Events)
	}
	sub2 := c.sessSub("sk", 0)
	if sub2 == nil || sub2 == sub1 {
		t.Fatal("seek did not replace the session subscription")
	}
	if n := s.met().sessionsOpen.Value(); n != 1 {
		t.Fatalf("%d sessions open after seek, want 1", n)
	}
}

// TestSessionCreditBoundsServerPush pins shared-window flow control: a
// consumer that stops consuming stalls the pump (genuine backpressure,
// counted as credit stalls) instead of letting the server buffer
// unboundedly — and consumption resumes exactly where it left off.
func TestSessionCreditBoundsServerPush(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	const total = 3000
	sessionTopic(t, f, "scb", 1, total)
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1, StreamWindowBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var buf broker.FetchBuffer
	// One small fetch opens the session and subscription; the server
	// then pushes until the 2 KiB window is spent and must park.
	res, err := c.FetchBufferedWait("", "scb", 0, 0, 10, 1<<20, time.Second, &buf)
	if err != nil {
		t.Fatal(err)
	}
	off := res.Events[len(res.Events)-1].Offset + 1
	deadline := time.Now().Add(5 * time.Second)
	for s.met().creditStalls.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.met().creditStalls.Value() == 0 {
		t.Fatal("pump never stalled on credit with a full window of unconsumed data")
	}
	// The client-side demux queue is bounded by the window, not by the
	// 3000 events the log holds.
	sub := c.sessSub("scb", 0)
	if sub == nil {
		t.Fatal("no session subscription")
	}
	if q := sub.sess.queued.Load(); q > 2048+2 {
		t.Fatalf("client queued %d window-bytes of frames, want ≤ window", q)
	}

	// Resume: every remaining event arrives, in order, no gaps or dups.
	for off < total {
		res, err := c.FetchBufferedWait("", "scb", 0, off, 100, 1<<20, 5*time.Second, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Offset != off {
				t.Fatalf("offset %d, want %d", ev.Offset, off)
			}
			off++
		}
	}
	if s.met().pumpParks.Value() == 0 {
		t.Fatal("pump park counter never moved")
	}
}

// TestServerMetricsExposeSessionCounters pins the observability
// satellite: the server's registry snapshot names every stream/session
// counter so operators see them without code spelunking.
func TestServerMetricsExposeSessionCounters(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	sessionTopic(t, f, "mx", 1, 10)
	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	if _, err := c.FetchBufferedWait("", "mx", 0, 0, 10, 1<<20, time.Second, &buf); err != nil {
		t.Fatal(err)
	}
	snap := strings.Join(s.Metrics().Snapshot(), "\n")
	for _, name := range []string{
		"wire_sessions_open", "wire_streams_open",
		"wire_session_pump_parks", "wire_session_credit_stalls",
		"wire_meta_pushes",
	} {
		if !strings.Contains(snap, name) {
			t.Fatalf("metric %q missing from snapshot:\n%s", name, snap)
		}
	}
	if s.met().sessionsOpen.Value() != 1 {
		t.Fatalf("sessions gauge = %d, want 1", s.met().sessionsOpen.Value())
	}
}

// waitGoroutines polls until the process goroutine count returns to at
// most want, failing the test with a goroutine dump otherwise.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d, want ≤ %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

// TestSessionGoroutineReleaseOnClose is the leak gate for the graceful
// path: N clients × P partitions of session consumption, then client
// close — server pumps, read loops, and client goroutines all return
// to the pre-dial baseline.
func TestSessionGoroutineReleaseOnClose(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	const clients, parts = 4, 16
	sessionTopic(t, f, "lk", parts, 5)
	base := runtime.NumGoroutine()

	var cs []*Client
	var buf broker.FetchBuffer
	for i := 0; i < clients; i++ {
		c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		for p := 0; p < parts; p++ {
			if _, err := c.FetchBufferedWait("", "lk", p, 0, 5, 1<<20, time.Second, &buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := s.met().sessionsOpen.Value(); n != clients {
		t.Fatalf("%d sessions open, want %d", n, clients)
	}
	for _, c := range cs {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base)
	if n := s.met().sessionsOpen.Value(); n != 0 {
		t.Fatalf("%d sessions still open after close", n)
	}
}

// TestSessionGoroutineReleaseOnConnDrop is the leak gate for the
// ungraceful path: the TCP connection dies mid-session with no close
// frames — the server read loop's exit must still tear down every pump
// before the connection handler returns.
func TestSessionGoroutineReleaseOnConnDrop(t *testing.T) {
	f, s, addr, stop := startSessServer(t)
	defer stop()
	const parts = 16
	sessionTopic(t, f, "lkd", parts, 5)
	base := runtime.NumGoroutine()

	c, err := DialOptions(addr, Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	for p := 0; p < parts; p++ {
		if _, err := c.FetchBufferedWait("", "lkd", p, 0, 5, 1<<20, time.Second, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.met().sessionsOpen.Value(); n != 1 {
		t.Fatalf("%d sessions open, want 1", n)
	}
	wc := c.sessWC("lkd", 0)
	if wc == nil {
		t.Fatal("no wire connection")
	}
	// Abrupt drop: no SessionClose, no FIN-then-drain courtesy.
	_ = wc.conn.Close()
	waitGoroutines(t, base+2) // the dropped client's endpoint may linger until Close
	if n := s.met().sessionsOpen.Value(); n != 0 {
		t.Fatalf("%d sessions still open after connection drop", n)
	}
}
