// Metadata-driven request routing for multi-listener clusters.
//
// The pre-cluster client hashed every topic-partition over the
// connection pool of one address. Against a clusternet fabric
// (internal/clusternet) that single address is just one broker, and
// data-plane requests for partitions led elsewhere come back as
// ErrNotLeader. The router turns the client into a leader-direct one:
//
//   - Bootstrap: at dial time, when the seed connection negotiated
//     FeatClusterMeta, the client fetches OpMetadata once and builds a
//     routing table — broker id → advertised address, topic →
//     per-partition leader ids — keyed by the controller's metadata
//     epoch.
//   - Steady state: every data-plane request resolves its partition's
//     leader address and rides that broker's own connection pool; the
//     seed keeps carrying control-plane ops and anything the table
//     cannot place. Pre-partitioned produce (Client.Produce with
//     partition < 0) buckets events client-side with the fabric's own
//     partitioner, so no broker ever sees an event it does not lead.
//   - Invalidation: an ErrNotLeader response or a broker connection
//     failure triggers one metadata re-fetch (serialized; the epoch
//     rejects stale documents) and a single retry against the freshly
//     resolved leader. Leader elections bump the controller epoch, so
//     the refreshed document always reflects the new leadership.
//
// Without the feature — a v1 peer, or either side masking
// FeatClusterMeta — the router never enables and the client behaves
// exactly as before: single-address slot hashing.
package wire

import (
	"errors"
	"sync"
	"time"

	"repro/internal/broker"
)

// clusterRouter is the client's routing table, nil-state disabled.
type clusterRouter struct {
	mu      sync.Mutex
	enabled bool
	epoch   int64
	brokers map[int]BrokerMeta
	// topics maps topic → leader broker id per partition.
	topics map[string][]int
	// unknown negatively caches topics confirmed absent at an epoch,
	// so produce retries against a deleted or misspelled topic fail
	// fast instead of hammering the cluster with a full metadata fetch
	// per attempt. Any epoch bump (topic creation included) invalidates.
	unknown map[string]int64

	// controlAddr is the last address that successfully served a
	// control-plane call ("" = the seed). Remembering it keeps a dead
	// seed from being re-dialed — and its dial timeout re-paid — on
	// every heartbeat and commit for the client's lifetime.
	controlAddr string

	// fetchMu serializes metadata fetches so a burst of failing
	// requests triggers one refresh, not a stampede.
	fetchMu sync.Mutex
}

// RouterEnabled reports whether the client routes data-plane requests
// to partition leaders via cluster metadata (false = single-address
// slot hashing).
func (c *Client) RouterEnabled() bool {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return c.rt.enabled
}

// MetadataEpoch reports the epoch of the routing table the client
// currently holds (0 before any metadata was adopted). Failover tests
// poll it to observe a pushed document landing.
func (c *Client) MetadataEpoch() int64 {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return c.rt.epoch
}

// dataAddr resolves the broker address a data-plane request for the
// partition should dial: the leader's advertised address when the
// routing table knows it and lists the broker as up, else the seed.
func (c *Client) dataAddr(topic string, partition int) string {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	if !c.rt.enabled || partition < 0 {
		return c.seed
	}
	leaders, ok := c.rt.topics[topic]
	if !ok || partition >= len(leaders) {
		return c.seed
	}
	id := leaders[partition]
	if id < 0 {
		return c.seed
	}
	br, ok := c.rt.brokers[id]
	if !ok || !br.Up || br.Addr == "" {
		return c.seed
	}
	return br.Addr
}

// partitionCount reports the routed partition count for a topic.
func (c *Client) partitionCount(topic string) (int, bool) {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	if !c.rt.enabled {
		return 0, false
	}
	leaders, ok := c.rt.topics[topic]
	return len(leaders), ok
}

// maxUnknownTopics bounds the negative cache so a caller cycling
// through fabricated topic names cannot grow it without limit.
const maxUnknownTopics = 1024

// produceParts resolves a topic's partition count for client-side
// batch partitioning, fetching metadata once if the topic is not yet
// in the table (it may have been created after the last refresh). A
// topic still absent after a refresh is remembered as unknown for the
// current epoch, so retries fail fast until the metadata actually
// changes.
func (c *Client) produceParts(topic string) (int, bool) {
	if parts, ok := c.partitionCount(topic); ok {
		return parts, true
	}
	c.rt.mu.Lock()
	e, cached := c.rt.unknown[topic]
	stillUnknown := cached && e == c.rt.epoch
	c.rt.mu.Unlock()
	if stillUnknown {
		return 0, false
	}
	if c.refreshMetadata() != nil {
		return 0, false
	}
	if parts, ok := c.partitionCount(topic); ok {
		return parts, true
	}
	c.rt.mu.Lock()
	if c.rt.unknown == nil {
		c.rt.unknown = make(map[string]int64)
	}
	if len(c.rt.unknown) < maxUnknownTopics {
		c.rt.unknown[topic] = c.rt.epoch
	}
	c.rt.mu.Unlock()
	return 0, false
}

// upBrokerAddrs returns the advertised addresses of brokers the table
// lists as up (excluding empty addresses).
func (c *Client) upBrokerAddrs() []string {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	var addrs []string
	for _, br := range c.rt.brokers {
		if br.Up && br.Addr != "" {
			addrs = append(addrs, br.Addr)
		}
	}
	return addrs
}

// errEndpointRetired fails connections to addresses the adopted
// metadata no longer names. It is a transport-class error: in-flight
// callers reroute through the refreshed table, exactly as on a broken
// connection.
var errEndpointRetired = errors.New("wire: endpoint no longer routed")

// adoptMetadata replaces the routing table when the document is at
// least as new as the current one, and prunes connection pools for
// addresses the cluster no longer advertises — across rolling restarts
// with changing addresses, a long-lived client must not accumulate
// live connections to brokers nothing routes to anymore.
func (c *Client) adoptMetadata(resp *MetadataResp) {
	c.rt.mu.Lock()
	if c.rt.enabled && resp.Epoch < c.rt.epoch {
		c.rt.mu.Unlock()
		return // stale document from a lagging broker
	}
	if resp.Epoch != c.rt.epoch {
		c.rt.unknown = nil // the cluster changed; absent topics may exist now
	}
	c.rt.enabled = true
	c.rt.epoch = resp.Epoch
	c.rt.brokers = make(map[int]BrokerMeta, len(resp.Brokers))
	named := map[string]bool{c.seed: true}
	for _, br := range resp.Brokers {
		c.rt.brokers[br.ID] = br
		if br.Addr != "" {
			named[br.Addr] = true
		}
	}
	c.rt.topics = make(map[string][]int, len(resp.Topics))
	for _, t := range resp.Topics {
		leaders := make([]int, len(t.Partitions))
		for i := range t.Partitions {
			leaders[i] = t.Partitions[i].Leader
		}
		c.rt.topics[t.Name] = leaders
	}
	if c.rt.controlAddr != "" && !named[c.rt.controlAddr] {
		c.rt.controlAddr = ""
	}
	c.rt.mu.Unlock()

	c.mu.Lock()
	var retire []*wireConn
	for addr, ep := range c.eps {
		if named[addr] {
			continue
		}
		for i, wc := range ep.slots {
			if wc != nil {
				retire = append(retire, wc)
				ep.slots[i] = nil
			}
		}
		delete(c.eps, addr)
	}
	c.mu.Unlock()
	for _, wc := range retire {
		wc.fail(errEndpointRetired)
	}

	// Session hygiene: a multiplexed-session sub whose partition the new
	// table routes elsewhere would keep draining the old connection's
	// shared window (its server may even keep pushing), starving the
	// subs that still belong there. Remove such subs now — consumers
	// re-subscribe on the new leader's connection on their next fetch,
	// which with pushed metadata happens before any request fails.
	type staleSub struct {
		sess *clientSession
		sub  *clientSub
	}
	var stale []staleSub
	c.mu.Lock()
	for addr, ep := range c.eps {
		for _, wc := range ep.slots {
			if wc == nil {
				continue
			}
			wc.sessMu.Lock()
			sess := wc.session
			wc.sessMu.Unlock()
			if sess == nil {
				continue
			}
			sess.mu.Lock()
			for _, sub := range sess.subsByTP {
				if c.dataAddr(sub.topic, sub.partition) != addr {
					stale = append(stale, staleSub{sess, sub})
				}
			}
			sess.mu.Unlock()
		}
	}
	c.mu.Unlock()
	for _, s := range stale {
		s.sess.removeSub(s.sub, true)
	}
}

// refreshMetadata fetches a fresh cluster metadata document from the
// first answering broker (seed first, then every broker the current
// table lists as up) and adopts it. Serialized: concurrent failing
// requests share one refresh.
func (c *Client) refreshMetadata() error {
	c.rt.fetchMu.Lock()
	defer c.rt.fetchMu.Unlock()
	candidates := append([]string{c.seed}, c.upBrokerAddrs()...)
	var lastErr error
	tried := make(map[string]bool, len(candidates))
	for _, addr := range candidates {
		if tried[addr] {
			continue
		}
		tried[addr] = true
		var resp MetadataResp
		if _, err := c.callAt(addr, 0, &MetadataReq{}, &resp, nil, nil); err != nil {
			lastErr = err
			continue
		}
		c.adoptMetadata(&resp)
		return nil
	}
	return lastErr
}

// ClusterMetadata fetches the cluster metadata document — epoch,
// brokers (address and liveness) and the requested topics'
// per-partition leadership (every topic when none is named). It fails
// with an unknown-op error against peers without FeatClusterMeta.
func (c *Client) ClusterMetadata(topics ...string) (*MetadataResp, error) {
	req := MetadataReq{Topics: topics}
	var resp MetadataResp
	if _, err := c.controlCall(&req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// rerouteable classifies an error as a routing failure worth a
// metadata refresh and one retry: the server said the partition lives
// elsewhere (ErrNotLeader, or a partition-count mismatch after
// growth), or the broker connection itself failed. Server-reported
// domain errors — bad offsets, ACL denials, unknown topics — are
// deterministic answers, not routing failures; an explicit Close is
// final.
func rerouteable(err error) bool {
	if err == nil || errors.Is(err, ErrConnClosed) {
		return false
	}
	if errors.Is(err, ErrNoLeader) {
		// No ISR member survives: there is no better broker to route to,
		// so failing over is pointless. dataCall instead waits out a
		// re-election with bounded backoff. Checked before ErrNotLeader,
		// which it wraps.
		return false
	}
	if errors.Is(err, ErrNotLeader) || errors.Is(err, broker.ErrNoPartition) {
		return true
	}
	for _, e := range errTable {
		if errors.Is(err, e.sentinel) {
			return false
		}
	}
	if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, errShortMsg) {
		return false
	}
	return true // dial failure, broken connection, I/O timeout
}

// No-leader backoff: a partition whose entire ISR is down has no
// server to route to, but leader elections are fast — the controller
// re-elects the moment a surviving replica rejoins. The router waits
// one out with a short bounded backoff instead of failing the first
// call, and gives up (returning ErrNoLeader) when none happens.
const (
	noLeaderRetries = 4
	noLeaderBackoff = 25 * time.Millisecond
)

// dataCall submits a partition-routed request through the router:
// resolve the leader address, call, and on a routing failure re-fetch
// metadata and retry once against the freshly resolved leader. A
// leaderless partition (ErrNoLeader) is instead retried in place with
// bounded backoff, waiting out a re-election.
func (c *Client) dataCall(topic string, partition int, req ReqMsg, resp respMsg, payload, arena []byte) (*call, error) {
	cl, err := c.dataCallOnce(topic, partition, req, resp, payload, arena)
	backoff := noLeaderBackoff
	for attempt := 0; attempt < noLeaderRetries && errors.Is(err, ErrNoLeader); attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		if c.RouterEnabled() {
			_ = c.refreshMetadata()
		}
		if cl != nil && cl.arena != nil {
			arena = cl.arena
		}
		cl, err = c.dataCallOnce(topic, partition, req, resp, payload, arena)
	}
	return cl, err
}

func (c *Client) dataCallOnce(topic string, partition int, req ReqMsg, resp respMsg, payload, arena []byte) (*call, error) {
	cl, err := c.callAt(c.dataAddr(topic, partition), c.slotFor(topic, partition), req, resp, payload, arena)
	if err == nil || !c.RouterEnabled() || !rerouteable(err) {
		return cl, err
	}
	if rerr := c.refreshMetadata(); rerr != nil {
		return cl, err
	}
	if cl != nil && cl.arena != nil {
		arena = cl.arena
	}
	return c.callAt(c.dataAddr(topic, partition), c.slotFor(topic, partition), req, resp, payload, arena)
}

// controlCall submits a control-plane request to the last known good
// control endpoint (the seed, initially), falling over to every broker
// the routing table lists as up when it is unreachable — group
// coordination and metadata are served identically by every broker.
// The endpoint that answers is remembered, so a dead seed costs one
// failed dial total, not one per heartbeat.
func (c *Client) controlCall(req ReqMsg, resp respMsg) (*call, error) {
	c.rt.mu.Lock()
	first := c.rt.controlAddr
	c.rt.mu.Unlock()
	if first == "" {
		first = c.seed
	}
	cl, err := c.callAt(first, 0, req, resp, nil, nil)
	if err == nil || !c.RouterEnabled() || !rerouteable(err) {
		return cl, err
	}
	candidates := append([]string{c.seed}, c.upBrokerAddrs()...)
	for _, addr := range candidates {
		if addr == first {
			continue
		}
		cl2, err2 := c.callAt(addr, 0, req, resp, nil, nil)
		if err2 == nil || !rerouteable(err2) {
			if err2 == nil {
				c.rt.mu.Lock()
				c.rt.controlAddr = addr
				c.rt.mu.Unlock()
			}
			return cl2, err2
		}
	}
	return cl, err
}
