// Multiplexed fetch sessions (FeatSessionFetch): connection-scale
// serving.
//
// Per-partition streams (stream.go) made single-partition consumption
// cheap, but their costs scale with *partition streams*: every open
// stream owns a server pump goroutine, its own credit window, and its
// own parked tail waiter. A consumer subscribed to 64 partitions costs
// the broker 64 goroutines — per connection. At the "millions of
// users" scale the fabric targets, serving cost must scale with
// connections instead.
//
// A session inverts the multiplexing: one session per connection
// subscribes to many topic-partitions (OpSessionSub adds, removes and
// seeks without reopening anything), and the server runs ONE pump
// goroutine per session that round-robins the ready partitions under a
// SINGLE shared byte-credit window. When every subscribed partition is
// dry the pump parks once, on a multi-log "any of these appended"
// waiter built from eventlog.NotifyAppend callbacks — not one blocked
// goroutine per partition. Pushed batches ride the stream framing
// (OpSessionBatch, correlated by sessionID<<32|subID); the client
// returns consumed window with one-way OpSessionCredit grants.
//
// The shared window is denominated in bytes (payload size plus one per
// event, so zero-payload events still consume window and a stalled
// reader can never force unbounded frames), because a single window in
// events would let one large-record partition starve the rest: bytes
// are the unit the respWriter buffer actually grows in.
//
// Per-sub errors (offset out of range, leadership moved, ACL change)
// are pushed as OpSessionClose frames carrying the sub's corr and the
// typed error — the session and its other subs keep flowing. A
// whole-session close carries subID 0.
package wire

import (
	"fmt"
	"sync"

	"repro/internal/auth"
	"repro/internal/event"
	"repro/internal/eventlog"
)

// maxConnSessions bounds open sessions per connection. One is the
// intended number (the whole point is one session fans out to many
// partitions); a few spares allow seamless handover during rebalances.
const maxConnSessions = 4

// maxSessionSubs bounds subscriptions per session: the fan-out a single
// pump serves must stay a server-chosen limit, not an attacker-chosen
// one.
const maxSessionSubs = 4096

// defaultSessionWindow is the shared byte window granted when the
// client asks for none.
const defaultSessionWindow = 1 << 20

// errSession reports session-protocol misuse (duplicate or unknown
// IDs, session ops without the negotiated feature).
var errSession = fmt.Errorf("wire: session protocol error")

// sessCorr packs a session batch's correlation value: the session ID in
// the high 32 bits, the sub ID in the low 32.
func sessCorr(sessionID uint64, subID uint32) uint64 {
	return sessionID<<32 | uint64(subID)
}

// splitSessCorr is the inverse of sessCorr.
func splitSessCorr(corr uint64) (sessionID uint64, subID uint32) {
	return corr >> 32, uint32(corr)
}

// sessionBatchSize is the flow-control size of a session batch: the
// events' payload bytes plus one per event. The +1 keeps every batch
// nonzero-cost, so a window of W bytes bounds the number of un-granted
// pushed frames at W even for zero-payload events. Computed identically
// on both sides of the session so grants balance debits.
func sessionBatchSize(evs []event.Event) int {
	n := len(evs)
	for i := range evs {
		n += evs[i].Size()
	}
	return n
}

// --- session messages ---

// SessionOpenReq opens a multiplexed fetch session (OpSessionOpen). The
// client picks the connection-unique ID (1..2^32-1: the ID shares the
// pushed frames' correlation word with the sub ID).
type SessionOpenReq struct {
	ID uint64
	// MaxEvents / MaxBytes bound one pushed batch (fetch semantics).
	MaxEvents int
	MaxBytes  int
	// CreditBytes is the session's shared flow-control window (see
	// sessionBatchSize). Zero asks for the server default.
	CreditBytes int
}

func (*SessionOpenReq) V2Op() uint8 { return v2OpSessionOpen }

func (m *SessionOpenReq) AppendBody(buf []byte) []byte {
	buf = appendUint(buf, m.ID)
	buf = appendInt(buf, int64(m.MaxEvents))
	buf = appendInt(buf, int64(m.MaxBytes))
	return appendInt(buf, int64(m.CreditBytes))
}

func (m *SessionOpenReq) DecodeBody(b []byte) error {
	var err error
	var v int64
	if m.ID, b, err = getUint(b); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxEvents = int(v)
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.MaxBytes = int(v)
	if v, _, err = getInt(b); err != nil {
		return err
	}
	m.CreditBytes = int(v)
	return nil
}

// v1 converts to a JSON header a v1 server rejects as an unknown op —
// the clean-fallback path for clients probing a legacy peer.
func (m *SessionOpenReq) v1() *Request { return &Request{Op: OpSessionOpen} }

// SessionOpenResp acknowledges a session open with the granted window
// (the server clamps hostile or oversized requests).
type SessionOpenResp struct {
	CreditBytes int
}

func (m *SessionOpenResp) AppendBody(buf []byte) []byte {
	return appendInt(buf, int64(m.CreditBytes))
}

func (m *SessionOpenResp) DecodeBody(b []byte) error {
	v, _, err := getInt(b)
	m.CreditBytes = int(v)
	return err
}

// fromV1/toV1 are no-ops: session ops never travel in v1 framing — a
// v1 peer answers them as unknown ops, the negotiated fallback signal.
func (*SessionOpenResp) fromV1(*Response) {}
func (*SessionOpenResp) toV1(*Response)   {}

// SessionSubReq adds (or, with Remove set, drops) one topic-partition
// subscription on a session (OpSessionSub). Seeks are a remove of the
// old sub followed by an add under a fresh sub ID, so in-flight frames
// for the old position can never be mistaken for the new one. Sub IDs
// are session-unique and nonzero (0 marks a whole-session close frame).
type SessionSubReq struct {
	SessionID uint64
	SubID     uint32
	Topic     string
	Partition int
	// Offset is the first offset the server will push (adds only).
	Offset int64
	Remove bool
}

func (*SessionSubReq) V2Op() uint8 { return v2OpSessionSub }

func (m *SessionSubReq) AppendBody(buf []byte) []byte {
	buf = appendUint(buf, m.SessionID)
	buf = appendUint(buf, uint64(m.SubID))
	buf = appendStr(buf, m.Topic)
	buf = appendInt(buf, int64(m.Partition))
	buf = appendInt(buf, m.Offset)
	rm := byte(0)
	if m.Remove {
		rm = 1
	}
	return append(buf, rm)
}

func (m *SessionSubReq) DecodeBody(b []byte) error { return m.decodeInterned(b, nil) }

func (m *SessionSubReq) decodeInterned(b []byte, in *Interner) error {
	var err error
	var v int64
	var u uint64
	if m.SessionID, b, err = getUint(b); err != nil {
		return err
	}
	if u, b, err = getUint(b); err != nil {
		return err
	}
	m.SubID = uint32(u)
	if m.Topic, b, err = getStrInterned(b, in); err != nil {
		return err
	}
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.Partition = int(v)
	if m.Offset, b, err = getInt(b); err != nil {
		return err
	}
	if len(b) < 1 {
		return errShortMsg
	}
	m.Remove = b[0] != 0
	return nil
}

func (m *SessionSubReq) v1() *Request { return &Request{Op: OpSessionSub} }

// SessionSubResp acknowledges a subscription add with the partition's
// positions at subscribe time.
type SessionSubResp struct {
	HighWatermark int64
	StartOffset   int64
}

func (m *SessionSubResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, m.HighWatermark)
	return appendInt(buf, m.StartOffset)
}

func (m *SessionSubResp) DecodeBody(b []byte) error {
	var err error
	if m.HighWatermark, b, err = getInt(b); err != nil {
		return err
	}
	m.StartOffset, _, err = getInt(b)
	return err
}

func (*SessionSubResp) fromV1(*Response) {}
func (*SessionSubResp) toV1(*Response)   {}

// SessionCreditReq returns consumed window to a session
// (OpSessionCredit). One-way: the server never answers it.
type SessionCreditReq struct {
	SessionID   uint64
	CreditBytes int
}

func (*SessionCreditReq) V2Op() uint8 { return v2OpSessionCredit }

func (m *SessionCreditReq) AppendBody(buf []byte) []byte {
	buf = appendUint(buf, m.SessionID)
	return appendInt(buf, int64(m.CreditBytes))
}

func (m *SessionCreditReq) DecodeBody(b []byte) error {
	var err error
	var v int64
	if m.SessionID, b, err = getUint(b); err != nil {
		return err
	}
	v, _, err = getInt(b)
	m.CreditBytes = int(v)
	return err
}

func (m *SessionCreditReq) v1() *Request { return &Request{Op: OpSessionCredit} }

// SessionCloseReq closes a session from the client side
// (OpSessionClose). One-way: the pump just stops.
type SessionCloseReq struct {
	SessionID uint64
}

func (*SessionCloseReq) V2Op() uint8 { return v2OpSessionClose }
func (m *SessionCloseReq) AppendBody(buf []byte) []byte {
	return appendUint(buf, m.SessionID)
}
func (m *SessionCloseReq) DecodeBody(b []byte) error {
	var err error
	m.SessionID, _, err = getUint(b)
	return err
}
func (m *SessionCloseReq) v1() *Request { return &Request{Op: OpSessionClose} }

// --- server-side session state ---

// connSessions is one connection's session registry: the read loop
// opens, subscribes, credits and closes sessions; each session's single
// pump goroutine pushes batches through the connection's respWriter.
type connSessions struct {
	srv  *Server
	w    *respWriter
	done <-chan struct{} // closed when the connection's read loop exits

	mu sync.Mutex
	m  map[uint64]*serverSession
	wg sync.WaitGroup
}

// serverSession is one open session: its fixed parameters, the shared
// byte-credit window, and the subscription set the pump round-robins.
type serverSession struct {
	id        uint64
	identity  string
	maxEvents int
	maxBytes  int
	window    int // granted window cap (grants clamp here)

	mu   sync.Mutex
	cond *sync.Cond
	// creditBytes is the remaining shared window. It may dip below zero
	// when the first event of a batch alone exceeds it (ReadBudget
	// semantics); the pump then parks until grants bring it positive.
	creditBytes int
	subs        map[uint32]*srvSub
	// order is the round-robin ring of sub IDs; rr indexes the next
	// candidate so no ready partition is starved by a chatty one.
	order []uint32
	rr    int
	// ready counts subs believed to have data; the pump parks when zero.
	ready  int
	closed bool
	stop   chan struct{} // closed with the session; fences late wakeups

	// dst is the pump's reusable fetch buffer (pump-only).
	dst []event.Event
}

// srvSub is one subscription of a session. All fields are guarded by
// the session mutex except topic/partition/log/subID (immutable after
// registration).
type srvSub struct {
	subID     uint32
	topic     string
	partition int
	log       *eventlog.Log

	// next is the next offset to push.
	next int64
	// ready marks the sub as (believed) fetchable; cleared when a fetch
	// comes back empty, restored by the log's append callback.
	ready bool
	// armed is set while an append callback is registered on the log;
	// notifyH is its cancellation handle.
	armed   bool
	notifyH uint64
	removed bool
}

func newConnSessions(srv *Server, w *respWriter, done <-chan struct{}) *connSessions {
	return &connSessions{srv: srv, w: w, done: done, m: make(map[uint64]*serverSession)}
}

// open validates and registers a session and starts its pump. Called
// inline from the read loop.
func (ss *connSessions) open(q *SessionOpenReq, identity string, authed bool) (*SessionOpenResp, error) {
	if !authed {
		return nil, fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
	}
	if q.ID == 0 || q.ID >= 1<<32 {
		return nil, fmt.Errorf("%w: session id %d out of range", errSession, q.ID)
	}
	sess := &serverSession{
		id: q.ID, identity: identity,
		maxEvents: q.MaxEvents, maxBytes: q.MaxBytes,
		window: q.CreditBytes,
		subs:   make(map[uint32]*srvSub),
		stop:   make(chan struct{}),
	}
	if sess.maxEvents <= 0 {
		sess.maxEvents = 512
	}
	if sess.window <= 0 {
		sess.window = defaultSessionWindow
	}
	if sess.window > maxStreamCreditBytes {
		sess.window = maxStreamCreditBytes
	}
	sess.creditBytes = sess.window
	sess.cond = sync.NewCond(&sess.mu)
	ss.mu.Lock()
	if _, dup := ss.m[q.ID]; dup {
		ss.mu.Unlock()
		return nil, fmt.Errorf("%w: duplicate session id %d", errSession, q.ID)
	}
	if len(ss.m) >= maxConnSessions {
		ss.mu.Unlock()
		return nil, fmt.Errorf("%w: too many open sessions", errSession)
	}
	ss.m[q.ID] = sess
	ss.wg.Add(1)
	ss.mu.Unlock()
	ss.srv.met().sessionsOpen.Add(1)
	go ss.pump(sess)
	return &SessionOpenResp{CreditBytes: sess.window}, nil
}

// sub handles one OpSessionSub: registers (or removes) a subscription
// and wakes the pump. Called inline from the read loop.
func (ss *connSessions) sub(q *SessionSubReq, authed bool) (*SessionSubResp, error) {
	ss.mu.Lock()
	sess := ss.m[q.SessionID]
	ss.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("%w: unknown session %d", errSession, q.SessionID)
	}
	if q.Remove {
		sess.removeSub(q.SubID)
		return &SessionSubResp{}, nil
	}
	if !authed {
		return nil, fmt.Errorf("%w: connection not authenticated", auth.ErrBadCredentials)
	}
	if q.SubID == 0 {
		return nil, fmt.Errorf("%w: sub id 0 is reserved", errSession)
	}
	if sess.identity != "" {
		if err := ss.srv.Fabric.ACL.Check(q.Topic, sess.identity, auth.PermRead); err != nil {
			return nil, err
		}
	}
	if err := ss.srv.leaderCheck(q.Topic, q.Partition); err != nil {
		return nil, err
	}
	log, err := ss.srv.Fabric.LeaderLog(q.Topic, q.Partition)
	if err != nil {
		return nil, err
	}
	start, end := log.StartOffset(), log.EndOffset()
	if q.Offset < start || q.Offset > end {
		return nil, fmt.Errorf("%w: session sub at %d not in [%d,%d]", ErrOffsetOutOfRange, q.Offset, start, end)
	}
	sub := &srvSub{
		subID: q.SubID, topic: q.Topic, partition: q.Partition,
		log: log, next: q.Offset, ready: true,
	}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: session %d closed", errSession, q.SessionID)
	}
	if _, dup := sess.subs[q.SubID]; dup {
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: duplicate sub id %d", errSession, q.SubID)
	}
	if len(sess.subs) >= maxSessionSubs {
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: too many subscriptions", errSession)
	}
	sess.subs[q.SubID] = sub
	sess.order = append(sess.order, q.SubID)
	sess.ready++
	sess.cond.Signal()
	sess.mu.Unlock()
	return &SessionSubResp{HighWatermark: end, StartOffset: start}, nil
}

// removeSub drops one subscription, cancelling any armed append
// callback. Safe against unknown or already-removed IDs.
func (sess *serverSession) removeSub(subID uint32) {
	sess.mu.Lock()
	sub := sess.subs[subID]
	if sub == nil {
		sess.mu.Unlock()
		return
	}
	delete(sess.subs, subID)
	for i, id := range sess.order {
		if id == subID {
			sess.order = append(sess.order[:i], sess.order[i+1:]...)
			if sess.rr > i {
				sess.rr--
			}
			break
		}
	}
	if sub.ready {
		sess.ready--
	}
	sub.removed = true
	armed, h := sub.armed, sub.notifyH
	sub.armed = false
	sess.mu.Unlock()
	if armed {
		sub.log.CancelNotify(h)
	}
}

// credit adds a client grant to a session's shared window. Grants for
// unknown IDs are dropped: the session may have closed while the grant
// was in flight, which is normal, not an error.
func (ss *connSessions) credit(id uint64, nbytes int) {
	ss.mu.Lock()
	sess := ss.m[id]
	ss.mu.Unlock()
	if sess == nil || nbytes <= 0 {
		return
	}
	sess.mu.Lock()
	sess.creditBytes += nbytes
	if sess.creditBytes > sess.window {
		sess.creditBytes = sess.window
	}
	sess.cond.Signal()
	sess.mu.Unlock()
}

// closeSession tears one session down (client-initiated or pump exit).
func (ss *connSessions) closeSession(id uint64) {
	ss.mu.Lock()
	sess := ss.m[id]
	delete(ss.m, id)
	ss.mu.Unlock()
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if !sess.closed {
		sess.closed = true
		close(sess.stop)
		sess.cond.Broadcast()
	}
	var cancels []*srvSub
	for _, sub := range sess.subs {
		sub.removed = true
		if sub.armed {
			sub.armed = false
			cancels = append(cancels, sub)
		}
	}
	sess.subs = make(map[uint32]*srvSub)
	sess.order = nil
	sess.ready = 0
	sess.mu.Unlock()
	for _, sub := range cancels {
		sub.log.CancelNotify(sub.notifyH)
	}
	ss.srv.met().sessionsOpen.Add(-1)
}

// closeAll tears every session down (connection teardown) and waits for
// the pumps to exit, so serveConn never leaks a pump goroutine.
func (ss *connSessions) closeAll() {
	ss.mu.Lock()
	ids := make([]uint64, 0, len(ss.m))
	for id := range ss.m {
		ids = append(ids, id)
	}
	ss.mu.Unlock()
	for _, id := range ids {
		ss.closeSession(id)
	}
	ss.wg.Wait()
}

// nextReadyLocked picks the next ready sub round-robin, advancing the
// ring position. Callers hold sess.mu and have checked sess.ready > 0.
func (sess *serverSession) nextReadyLocked() *srvSub {
	n := len(sess.order)
	for i := 0; i < n; i++ {
		if sess.rr >= n {
			sess.rr = 0
		}
		sub := sess.subs[sess.order[sess.rr]]
		sess.rr++
		if sub != nil && sub.ready {
			return sub
		}
	}
	return nil
}

// pump is a session's single push loop: park until the shared window
// has credit AND some sub is ready, pick the next ready sub
// round-robin, fetch one batch (never blocking — a dry sub un-readies
// itself and arms the log's append callback instead), push it, charge
// the window, repeat. One goroutine regardless of how many partitions
// the session subscribes.
func (ss *connSessions) pump(sess *serverSession) {
	defer ss.wg.Done()
	met := ss.srv.met()
	for {
		sess.mu.Lock()
		for !sess.closed && (sess.creditBytes <= 0 || sess.ready == 0) {
			if sess.creditBytes <= 0 && sess.ready > 0 {
				// Data is waiting but the client hasn't granted window:
				// genuine backpressure, not idleness.
				met.creditStalls.Inc()
			}
			met.pumpParks.Inc()
			sess.cond.Wait()
		}
		if sess.closed {
			sess.mu.Unlock()
			return
		}
		sub := sess.nextReadyLocked()
		if sub == nil {
			// ready count out of sync with the ring (races with removes);
			// resync and park again.
			sess.ready = 0
			for _, s2 := range sess.subs {
				if s2.ready {
					sess.ready++
				}
			}
			sess.mu.Unlock()
			continue
		}
		creditBytes := sess.creditBytes
		next := sub.next
		sess.mu.Unlock()

		maxBytes := sess.maxBytes
		if maxBytes <= 0 || creditBytes < maxBytes {
			// The shared window bounds one push too: never fetch more
			// than it has room for (the first event may still exceed it —
			// ReadBudget semantics — taking the window negative).
			maxBytes = creditBytes
		}
		res, err := ss.srv.Fabric.FetchWaitInto(
			sess.identity, sub.topic, sub.partition, next,
			sess.maxEvents, maxBytes, 0, nil, sess.dst[:0])
		if err != nil {
			// Per-sub failure: push the typed error as this sub's close
			// frame and drop the sub; the session and its other subs keep
			// flowing.
			_ = ss.w.writeV2(v2OpSessionClose, sessCorr(sess.id, sub.subID), nil, err, nil)
			sess.removeSub(sub.subID)
			continue
		}
		if cap(res.Events) > cap(sess.dst) {
			sess.dst = res.Events
		}
		if len(res.Events) == 0 {
			// Dry: un-ready the sub and arm the log's append callback to
			// restore readiness. The callback runs on the appender's
			// goroutine and only flips state under sess.mu — cheap and
			// non-blocking by the NotifyAppend contract.
			sess.mu.Lock()
			if !sub.removed && sub.ready && sub.next == next {
				h, registered := sub.log.NotifyAppend(next, func() {
					sess.mu.Lock()
					if !sub.removed && !sub.ready {
						sub.ready = true
						sess.ready++
						sess.cond.Signal()
					}
					sub.armed = false
					sess.mu.Unlock()
				})
				if registered {
					sub.ready = false
					sess.ready--
					sub.armed = true
					sub.notifyH = h
				}
				// else: data appeared (or the log closed) between the
				// empty fetch and the registration — stay ready and let
				// the next fetch observe it.
			}
			sess.mu.Unlock()
			continue
		}
		resp := &FetchResp{
			NumEvents:     len(res.Events),
			HighWatermark: res.HighWatermark,
			StartOffset:   res.StartOffset,
		}
		resp.SetOffsets(res.Events)
		if ss.w.writeV2(v2OpSessionBatch, sessCorr(sess.id, sub.subID), resp, nil, res.Events) != nil {
			ss.closeSession(sess.id)
			return
		}
		met.sessionBatch.Observe(int64(len(res.Events)))
		size := sessionBatchSize(res.Events)
		sess.mu.Lock()
		if !sub.removed {
			sub.next = res.Events[len(res.Events)-1].Offset + 1
		}
		sess.creditBytes -= size
		sess.mu.Unlock()
	}
}
