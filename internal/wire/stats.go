// Broker observability over the data plane (FeatStats): the OpStats
// request.
//
// Every broker already keeps its hot-path telemetry in an
// internal/metrics Registry — counters, gauges, bucketed latency/size
// histograms — plus the fabric's produce stage-trace ring
// (broker.ProduceTracer). OpStats snapshots all of it into one typed
// response, so operator tooling (octopus-cli stats / trace) can scrape
// any broker over the same authenticated wire connection it produces
// and fetches through, with no side-channel HTTP listener required.
//
// The message is v2-only and gated by the FeatStats feature bit.
// Against a v1 peer (or a v2 peer that masked the feature) the request
// is answered as an unknown op and tooling falls back to the HTTP
// metrics endpoint, when one is configured. Both bodies tolerate
// trailing bytes, so later revisions can append fields without
// breaking old peers.
//
// Histograms travel sparsely: only non-empty buckets cross the wire as
// (index, count) pairs against the fixed log-linear bucket layout
// (metrics.BucketBounds), so an idle broker's snapshot stays small
// even though every histogram owns ~600 buckets.
package wire

import (
	"encoding/binary"
	"math"

	"repro/internal/broker"
	"repro/internal/metrics"
)

// StatsReq asks for a broker's observability snapshot (OpStats). The
// body is empty; decoders ignore trailing bytes so future revisions
// can add filters (name prefixes, sections) compatibly.
type StatsReq struct{}

func (*StatsReq) V2Op() uint8                  { return v2OpStats }
func (*StatsReq) AppendBody(buf []byte) []byte { return buf }
func (*StatsReq) DecodeBody(b []byte) error    { return nil }

// v1 converts to a JSON header a v1 server rejects as an unknown op —
// the clean-fallback path for clients probing a legacy peer.
func (*StatsReq) v1() *Request { return &Request{Op: OpStats} }

// StatEntry is one named counter or gauge value.
type StatEntry struct {
	Name  string
	Value int64
}

// StatBucket is one non-empty bucket of a sparse histogram: the index
// into the fixed log-linear layout plus its observation count.
type StatBucket struct {
	Index int
	Count int64
}

// StatHist is one bucketed histogram, sparse-encoded.
type StatHist struct {
	Name  string
	Count int64
	Sum   int64
	// Buckets lists only non-empty buckets, ascending by index.
	Buckets []StatBucket
}

// Quantile estimates the q-quantile from the sparse buckets, mirroring
// metrics.BucketSnapshot.Quantile so client-side renderers agree with
// the broker's own exposition.
func (h *StatHist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.Count-1)) + 1
	var cum int64
	for _, b := range h.Buckets {
		if cum+b.Count >= target {
			lo, hi := metrics.BucketBounds(b.Index)
			frac := float64(target-cum) / float64(b.Count)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += b.Count
	}
	if n := len(h.Buckets); n > 0 {
		_, hi := metrics.BucketBounds(h.Buckets[n-1].Index)
		return float64(hi)
	}
	return 0
}

// StatSummary is one legacy reservoir histogram's pre-computed summary
// (millisecond units, as the registry exports them).
type StatSummary struct {
	Name   string
	Count  int64
	MeanMs float64
	MaxMs  float64
	P50Ms  float64
	P99Ms  float64
	SumMs  float64
}

// StatsTrace is one sampled produce from the stage-trace ring. StageNs
// is index-aligned with StatsResp.TraceStages, so a client renders
// stages by the names the server declares rather than compiled-in
// constants — a broker that adds a stage stays renderable.
type StatsTrace struct {
	StartUnixNano int64
	StageNs       []int64
	Events        int32
	Acks          int8
}

// StatsResp is a broker's observability snapshot.
type StatsResp struct {
	// BrokerID is the serving broker's id, -1 for unscoped
	// (single-listener) servers.
	BrokerID int
	Counters []StatEntry
	Gauges   []StatEntry
	Hists    []StatHist
	// Summaries carries legacy reservoir histograms (Registry.Histogram),
	// pre-summarized server-side.
	Summaries []StatSummary
	// TraceStages names the produce stages, index-aligned with every
	// trace's StageNs.
	TraceStages []string
	// TraceEvery is the 1-in-N produce sampling rate (0 = disabled);
	// TraceSampled the lifetime count of sampled produces.
	TraceEvery   uint64
	TraceSampled uint64
	Traces       []StatsTrace
}

func appendF64(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func getF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errShortMsg
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func appendStatEntries(buf []byte, es []StatEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = appendStr(buf, e.Name)
		buf = appendInt(buf, e.Value)
	}
	return buf
}

func getStatEntries(b []byte) ([]StatEntry, []byte, error) {
	n, b, err := getUint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, nil, errShortMsg
	}
	var es []StatEntry
	if n > 0 {
		es = make([]StatEntry, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var e StatEntry
		if e.Name, b, err = getStr(b); err != nil {
			return nil, nil, err
		}
		if e.Value, b, err = getInt(b); err != nil {
			return nil, nil, err
		}
		es = append(es, e)
	}
	return es, b, nil
}

func (m *StatsResp) AppendBody(buf []byte) []byte {
	buf = appendInt(buf, int64(m.BrokerID))
	buf = appendStatEntries(buf, m.Counters)
	buf = appendStatEntries(buf, m.Gauges)
	buf = binary.AppendUvarint(buf, uint64(len(m.Hists)))
	for _, h := range m.Hists {
		buf = appendStr(buf, h.Name)
		buf = appendInt(buf, h.Count)
		buf = appendInt(buf, h.Sum)
		buf = binary.AppendUvarint(buf, uint64(len(h.Buckets)))
		for _, bk := range h.Buckets {
			buf = binary.AppendUvarint(buf, uint64(bk.Index))
			buf = appendInt(buf, bk.Count)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Summaries)))
	for _, s := range m.Summaries {
		buf = appendStr(buf, s.Name)
		buf = appendInt(buf, s.Count)
		buf = appendF64(buf, s.MeanMs)
		buf = appendF64(buf, s.MaxMs)
		buf = appendF64(buf, s.P50Ms)
		buf = appendF64(buf, s.P99Ms)
		buf = appendF64(buf, s.SumMs)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.TraceStages)))
	for _, s := range m.TraceStages {
		buf = appendStr(buf, s)
	}
	buf = binary.AppendUvarint(buf, m.TraceEvery)
	buf = binary.AppendUvarint(buf, m.TraceSampled)
	buf = binary.AppendUvarint(buf, uint64(len(m.Traces)))
	for _, t := range m.Traces {
		buf = appendInt(buf, t.StartUnixNano)
		buf = binary.AppendUvarint(buf, uint64(len(t.StageNs)))
		for _, d := range t.StageNs {
			buf = appendInt(buf, d)
		}
		buf = appendInt(buf, int64(t.Events))
		buf = appendInt(buf, int64(t.Acks))
	}
	return buf
}

func (m *StatsResp) DecodeBody(b []byte) error {
	var err error
	var v int64
	if v, b, err = getInt(b); err != nil {
		return err
	}
	m.BrokerID = int(v)
	if m.Counters, b, err = getStatEntries(b); err != nil {
		return err
	}
	if m.Gauges, b, err = getStatEntries(b); err != nil {
		return err
	}
	nh, b, err := getUint(b)
	if err != nil || nh > uint64(len(b)) {
		return errShortMsg
	}
	m.Hists = nil
	if nh > 0 {
		m.Hists = make([]StatHist, 0, nh)
	}
	for i := uint64(0); i < nh; i++ {
		var h StatHist
		if h.Name, b, err = getStr(b); err != nil {
			return err
		}
		if h.Count, b, err = getInt(b); err != nil {
			return err
		}
		if h.Sum, b, err = getInt(b); err != nil {
			return err
		}
		nb, rest, err := getUint(b)
		if err != nil || nb > uint64(len(rest)) {
			return errShortMsg
		}
		b = rest
		if nb > 0 {
			h.Buckets = make([]StatBucket, 0, nb)
		}
		for j := uint64(0); j < nb; j++ {
			var bk StatBucket
			var u uint64
			if u, b, err = getUint(b); err != nil {
				return err
			}
			bk.Index = int(u)
			if bk.Count, b, err = getInt(b); err != nil {
				return err
			}
			h.Buckets = append(h.Buckets, bk)
		}
		m.Hists = append(m.Hists, h)
	}
	ns, b, err := getUint(b)
	if err != nil || ns > uint64(len(b)) {
		return errShortMsg
	}
	m.Summaries = nil
	if ns > 0 {
		m.Summaries = make([]StatSummary, 0, ns)
	}
	for i := uint64(0); i < ns; i++ {
		var s StatSummary
		if s.Name, b, err = getStr(b); err != nil {
			return err
		}
		if s.Count, b, err = getInt(b); err != nil {
			return err
		}
		if s.MeanMs, b, err = getF64(b); err != nil {
			return err
		}
		if s.MaxMs, b, err = getF64(b); err != nil {
			return err
		}
		if s.P50Ms, b, err = getF64(b); err != nil {
			return err
		}
		if s.P99Ms, b, err = getF64(b); err != nil {
			return err
		}
		if s.SumMs, b, err = getF64(b); err != nil {
			return err
		}
		m.Summaries = append(m.Summaries, s)
	}
	nst, b, err := getUint(b)
	if err != nil || nst > uint64(len(b)) {
		return errShortMsg
	}
	m.TraceStages = nil
	if nst > 0 {
		m.TraceStages = make([]string, 0, nst)
	}
	for i := uint64(0); i < nst; i++ {
		var s string
		if s, b, err = getStr(b); err != nil {
			return err
		}
		m.TraceStages = append(m.TraceStages, s)
	}
	if m.TraceEvery, b, err = getUint(b); err != nil {
		return err
	}
	if m.TraceSampled, b, err = getUint(b); err != nil {
		return err
	}
	ntr, b, err := getUint(b)
	if err != nil || ntr > uint64(len(b)) {
		return errShortMsg
	}
	m.Traces = nil
	if ntr > 0 {
		m.Traces = make([]StatsTrace, 0, ntr)
	}
	for i := uint64(0); i < ntr; i++ {
		var t StatsTrace
		if t.StartUnixNano, b, err = getInt(b); err != nil {
			return err
		}
		nsg, rest, err := getUint(b)
		if err != nil || nsg > uint64(len(rest)) {
			return errShortMsg
		}
		b = rest
		if nsg > 0 {
			t.StageNs = make([]int64, 0, nsg)
		}
		for j := uint64(0); j < nsg; j++ {
			var d int64
			if d, b, err = getInt(b); err != nil {
				return err
			}
			t.StageNs = append(t.StageNs, d)
		}
		if v, b, err = getInt(b); err != nil {
			return err
		}
		t.Events = int32(v)
		if v, b, err = getInt(b); err != nil {
			return err
		}
		t.Acks = int8(v)
		m.Traces = append(m.Traces, t)
	}
	return nil
}

// fromV1/toV1 are no-ops: OpStats never travels in v1 framing — a v1
// peer answers it as an unknown op, which is the negotiated fallback
// signal.
func (*StatsResp) fromV1(*Response) {}
func (*StatsResp) toV1(*Response)   {}

// appendExport folds one registry export into the response.
func (m *StatsResp) appendExport(ex *metrics.Export) {
	for _, c := range ex.Counters {
		m.Counters = append(m.Counters, StatEntry{Name: c.Name, Value: c.Value})
	}
	for _, g := range ex.Gauges {
		m.Gauges = append(m.Gauges, StatEntry{Name: g.Name, Value: g.Value})
	}
	for i := range ex.Hists {
		h := &ex.Hists[i]
		sh := StatHist{Name: h.Name, Count: h.Snap.Count, Sum: h.Snap.Sum}
		for idx, cnt := range h.Snap.Buckets {
			if cnt != 0 {
				sh.Buckets = append(sh.Buckets, StatBucket{Index: idx, Count: cnt})
			}
		}
		m.Hists = append(m.Hists, sh)
	}
	for _, s := range ex.Summaries {
		m.Summaries = append(m.Summaries, StatSummary{
			Name: s.Name, Count: s.Summary.Count,
			MeanMs: s.Summary.MeanMs, MaxMs: s.Summary.MaxMs,
			P50Ms: s.Summary.P50Ms, P99Ms: s.Summary.P99Ms,
			SumMs: s.Summary.SumMs,
		})
	}
}

// buildStatsResp snapshots the serving broker's observability state:
// the fabric registry, the wire server's own registry, and the produce
// stage-trace ring.
func buildStatsResp(s *Server) *StatsResp {
	resp := &StatsResp{BrokerID: s.LocalBroker}
	fex := s.Fabric.Metrics.Export()
	resp.appendExport(&fex)
	wex := s.Metrics().Export()
	resp.appendExport(&wex)
	if tr := s.Fabric.Tracer(); tr != nil {
		resp.TraceStages = append(resp.TraceStages, broker.TraceStageNames[:]...)
		resp.TraceEvery = tr.SampleEvery()
		recs, sampled := tr.Snapshot()
		resp.TraceSampled = sampled
		for i := range recs {
			r := &recs[i]
			resp.Traces = append(resp.Traces, StatsTrace{
				StartUnixNano: r.StartUnixNano,
				StageNs:       append([]int64(nil), r.StageNs[:]...),
				Events:        r.Events,
				Acks:          r.Acks,
			})
		}
	}
	return resp
}
