package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

// runWireSuite drives the full remote pipeline — SDK producer and
// grouped prefetching consumer, offset and metadata ops, typed error
// sentinels, and concurrent pipelined produces — against a server
// capped at serverMax with a client capped at clientMax, asserting the
// connection negotiates to wantVersion. It is the interop regression
// harness: every version pairing must pass the identical suite.
func runWireSuite(t *testing.T, serverMax, clientMax, wantVersion int) {
	t.Helper()
	runWireSuiteStreaming(t, serverMax, clientMax, wantVersion, false, false)
}

// suiteFeatures masks individual v2 features out of negotiation on
// either side; the suite must pass identically through every fallback.
type suiteFeatures struct {
	serverNoStream, clientNoStream   bool
	serverNoMeta, clientNoMeta       bool
	serverNoSession, clientNoSession bool
	serverNoPush, clientNoPush       bool
	serverNoRepl, clientNoRepl       bool
	serverNoStats, clientNoStats     bool
}

// runWireSuiteStreaming is runWireSuite with streaming fetch optionally
// masked out of negotiation on either side — every event still arrives
// through the request/response fallback.
func runWireSuiteStreaming(t *testing.T, serverMax, clientMax, wantVersion int, serverNoStream, clientNoStream bool) {
	t.Helper()
	runWireSuiteFeatures(t, serverMax, clientMax, wantVersion,
		suiteFeatures{serverNoStream: serverNoStream, clientNoStream: clientNoStream})
}

// runWireSuiteFeatures runs the interop suite with the given feature
// masks applied.
func runWireSuiteFeatures(t *testing.T, serverMax, clientMax, wantVersion int, sf suiteFeatures) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("ip", "", cluster.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	s := NewServer(f)
	s.AllowAnonymous = true
	s.MaxVersion = serverMax
	s.DisableStreaming = sf.serverNoStream
	s.DisableClusterMeta = sf.serverNoMeta
	s.DisableSessionFetch = sf.serverNoSession
	s.DisableMetaPush = sf.serverNoPush
	s.DisableReplication = sf.serverNoRepl
	s.DisableStats = sf.serverNoStats
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := DialOptions(addr, Options{
		Anonymous: true, MaxVersion: clientMax, PoolSize: 2,
		DisableStreaming: sf.clientNoStream, DisableClusterMeta: sf.clientNoMeta,
		DisableSessionFetch: sf.clientNoSession, DisableMetaPush: sf.clientNoPush,
		DisableReplication: sf.clientNoRepl, DisableStats: sf.clientNoStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != wantVersion {
		t.Fatalf("negotiated v%d, want v%d (server max %d, client max %d)", v, wantVersion, serverMax, clientMax)
	}
	wantStream := wantVersion >= ProtocolV2 && !sf.serverNoStream && !sf.clientNoStream
	if gotStream := c.Features()&FeatStreamFetch != 0; gotStream != wantStream {
		t.Fatalf("streaming negotiated = %v, want %v", gotStream, wantStream)
	}
	wantMeta := wantVersion >= ProtocolV2 && !sf.serverNoMeta && !sf.clientNoMeta
	if gotMeta := c.RouterEnabled(); gotMeta != wantMeta {
		t.Fatalf("metadata routing enabled = %v, want %v", gotMeta, wantMeta)
	}
	wantSession := wantVersion >= ProtocolV2 && !sf.serverNoSession && !sf.clientNoSession
	if gotSession := c.Features()&FeatSessionFetch != 0; gotSession != wantSession {
		t.Fatalf("session fetch negotiated = %v, want %v", gotSession, wantSession)
	}
	wantPush := wantVersion >= ProtocolV2 && !sf.serverNoPush && !sf.clientNoPush
	if gotPush := c.Features()&FeatMetaPush != 0; gotPush != wantPush {
		t.Fatalf("metadata push negotiated = %v, want %v", gotPush, wantPush)
	}
	wantRepl := wantVersion >= ProtocolV2 && !sf.serverNoRepl && !sf.clientNoRepl
	if gotRepl := c.Features()&FeatReplication != 0; gotRepl != wantRepl {
		t.Fatalf("replication negotiated = %v, want %v", gotRepl, wantRepl)
	}
	wantStats := wantVersion >= ProtocolV2 && !sf.serverNoStats && !sf.clientNoStats
	if gotStats := c.Features()&FeatStats != 0; gotStats != wantStats {
		t.Fatalf("stats negotiated = %v, want %v", gotStats, wantStats)
	}
	if wantVersion >= ProtocolV2 && !wantRepl {
		// The fallback contract: without the feature, replication ops
		// are refused as unknown — a clean error, never a hang or a
		// batch served to an un-negotiated peer.
		var rb broker.FetchBuffer
		if _, err := c.ReplicaFetch(1, "ip", 0, 0, 0, 10, 1<<20, 0, &rb); err == nil {
			t.Fatal("ReplicaFetch succeeded without FeatReplication")
		}
		if err := c.ReplicaAck(1, "ip", 0, 0, 0); err == nil {
			t.Fatal("ReplicaAck succeeded without FeatReplication")
		}
	}
	if !wantMeta {
		// The fallback contract: without the feature, OpMetadata is an
		// unknown op and the client slot-hashes over the seed address.
		if _, err := c.ClusterMetadata(); err == nil {
			t.Fatal("ClusterMetadata succeeded without FeatClusterMeta")
		}
	}

	// SDK producer: batched, keyed, flushed.
	const total = 200
	p := client.NewProducer(c, "ip", client.ProducerConfig{BatchEvents: 16, Linger: time.Millisecond})
	for i := 0; i < total; i++ {
		if err := p.SendJSON(fmt.Sprintf("k%d", i%17), map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()

	// Grouped, prefetching consumer: every event comes back, offsets
	// stamped contiguously per partition (the dense-run decode path on
	// v2, the legacy array on v1).
	cons := client.NewConsumer(c, client.ConsumerConfig{
		Group: "g", Start: client.StartEarliest, AutoCommit: true, Prefetch: true,
	})
	defer cons.Close()
	if err := cons.Subscribe("ip"); err != nil {
		t.Fatal(err)
	}
	lastOff := map[int]int64{}
	got := 0
	deadline := time.Now().Add(15 * time.Second)
	for got < total && time.Now().Before(deadline) {
		evs, err := cons.Poll(64)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if prev, ok := lastOff[ev.Partition]; ok && ev.Offset != prev+1 {
				t.Fatalf("partition %d offsets not contiguous: %d after %d", ev.Partition, ev.Offset, prev)
			}
			lastOff[ev.Partition] = ev.Offset
			got++
		}
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
	// The negotiated transport is what actually served the consumer:
	// the multiplexed session when negotiated, never otherwise.
	sessOpen := s.met().sessionsOpen.Value()
	if wantSession && sessOpen == 0 {
		t.Fatal("no fetch session opened despite FeatSessionFetch")
	}
	if !wantSession && sessOpen != 0 {
		t.Fatalf("%d fetch sessions open without FeatSessionFetch", sessOpen)
	}

	// Observability: with FeatStats negotiated the broker's snapshot
	// arrives over the same connection and reflects the traffic above;
	// without it, OpStats is refused — a clean error, never leaked
	// telemetry.
	if wantStats {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		produced := int64(-1)
		for _, e := range st.Counters {
			if e.Name == "fabric.produced" {
				produced = e.Value
			}
		}
		if produced < total {
			t.Fatalf("stats fabric.produced = %d, want >= %d", produced, total)
		}
		histObserved := false
		for i := range st.Hists {
			if st.Hists[i].Count > 0 && len(st.Hists[i].Buckets) > 0 {
				histObserved = true
			}
		}
		if !histObserved {
			t.Fatal("stats snapshot carries no populated histogram after traffic")
		}
		if len(st.TraceStages) == 0 || st.TraceEvery == 0 {
			t.Fatalf("stage tracing not exposed: stages %v every %d", st.TraceStages, st.TraceEvery)
		}
	} else {
		if _, err := c.Stats(); err == nil {
			t.Fatal("Stats succeeded without FeatStats")
		}
	}

	// Offset + metadata ops.
	meta, err := c.TopicMeta("ip")
	if err != nil || meta.Config.Partitions != 4 {
		t.Fatalf("meta = %+v, %v", meta, err)
	}
	var end int64
	for pt := 0; pt < 4; pt++ {
		e, err := c.EndOffset("ip", pt)
		if err != nil {
			t.Fatal(err)
		}
		start, err := c.StartOffset("ip", pt)
		if err != nil || start != 0 {
			t.Fatalf("start = %d, %v", start, err)
		}
		end += e
	}
	if end != total {
		t.Fatalf("end offsets sum to %d, want %d", end, total)
	}

	// Typed sentinels survive the transport in both protocol versions.
	if _, err := c.Fetch("", "nope", 0, 0, 1, 0); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown topic error = %v", err)
	}
	if _, err := c.Fetch("", "ip", 0, -5, 1, 0); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("out-of-range error = %v", err)
	}

	// Concurrent pipelined produces keep working after everything above.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := c.Produce("", "ip", w%4, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestInteropV2ClientV1Server: a current client against a legacy
// server negotiates down to v1 JSON framing and passes the full suite.
func TestInteropV2ClientV1Server(t *testing.T) {
	runWireSuite(t, ProtocolV1, ProtocolV2, ProtocolV1)
}

// TestInteropV1ClientV2Server: a legacy client (which never sends
// OpNegotiate) against a current server is served in v1 framing.
func TestInteropV1ClientV2Server(t *testing.T) {
	runWireSuite(t, ProtocolV2, ProtocolV1, ProtocolV1)
}

// TestInteropV2V2 anchors the same suite on the all-current pairing
// (streaming fetch negotiated and active).
func TestInteropV2V2(t *testing.T) {
	runWireSuite(t, ProtocolV2, ProtocolV2, ProtocolV2)
}

// TestInteropStreamingOffServerSide: a current client against a v2
// server that masked streaming out of negotiation falls back to
// pipelined request/response fetch and passes the identical suite.
func TestInteropStreamingOffServerSide(t *testing.T) {
	runWireSuiteStreaming(t, ProtocolV2, ProtocolV2, ProtocolV2, true, false)
}

// TestInteropStreamingOffClientSide: a client that refuses the
// streaming feature consumes from a streaming-capable server over
// request/response, passing the identical suite.
func TestInteropStreamingOffClientSide(t *testing.T) {
	runWireSuiteStreaming(t, ProtocolV2, ProtocolV2, ProtocolV2, false, true)
}

// TestInteropClusterMetaOffServerSide: a current client against a v2
// server that predates cluster metadata discovery (OpMetadata answered
// as unknown op) falls back to single-address slot hashing and passes
// the identical suite.
func TestInteropClusterMetaOffServerSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{serverNoMeta: true})
}

// TestInteropClusterMetaOffClientSide: a client that masks
// FeatClusterMeta never fetches metadata and slot-hashes over its seed
// address against a cluster-capable server, passing the identical
// suite.
func TestInteropClusterMetaOffClientSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{clientNoMeta: true})
}

// TestInteropSessionOffServerSide: a current client against a v2
// server that predates multiplexed fetch sessions falls back to
// per-partition streams (PR 4 behavior) and passes the identical suite.
func TestInteropSessionOffServerSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{serverNoSession: true})
}

// TestInteropSessionOffClientSide: a client that masks FeatSessionFetch
// consumes over per-partition streams from a session-capable server,
// passing the identical suite.
func TestInteropSessionOffClientSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{clientNoSession: true})
}

// TestInteropSessionAndStreamOff: both multiplexed sessions and
// per-partition streams masked — the consumer rides plain pipelined
// request/response fetch, the PR 3 behavior.
func TestInteropSessionAndStreamOff(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2,
		suiteFeatures{serverNoSession: true, serverNoStream: true})
}

// TestInteropMetaPushOffServerSide: a server that predates pushed
// metadata serves a current client, which re-routes reactively after
// misrouted requests exactly as before the feature.
func TestInteropMetaPushOffServerSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{serverNoPush: true})
}

// TestInteropMetaPushOffClientSide: a client that masks FeatMetaPush
// never receives pushed metadata and falls back to reactive re-fetch.
func TestInteropMetaPushOffClientSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{clientNoPush: true})
}

// TestInteropReplicationOffServerSide: a server that predates
// inter-broker replication refuses OpReplicaFetch/OpReplicaAck as
// unknown ops while the whole data-plane suite passes unchanged — the
// single-replica behavior every pre-replication pairing had.
func TestInteropReplicationOffServerSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{serverNoRepl: true})
}

// TestInteropReplicationOffClientSide: a client (broker peer) that
// masks FeatReplication gets its replication ops refused by a capable
// server, and everything else serves identically.
func TestInteropReplicationOffClientSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{clientNoRepl: true})
}

// TestInteropStatsOffServerSide: a server that predates the
// observability plane refuses OpStats as an unknown op while the whole
// data-plane suite passes unchanged.
func TestInteropStatsOffServerSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{serverNoStats: true})
}

// TestInteropStatsOffClientSide: a client that masks FeatStats gets
// OpStats refused by a stats-capable server, and everything else
// serves identically.
func TestInteropStatsOffClientSide(t *testing.T) {
	runWireSuiteFeatures(t, ProtocolV2, ProtocolV2, ProtocolV2, suiteFeatures{clientNoStats: true})
}
