package wire

import (
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
)

// Client methods for the inter-broker replication ops
// (FeatReplication). They ride the same metadata-driven router as the
// data plane — a replica fetch auto-dials the partition leader's
// advertised address, re-routes on ErrNotLeader, and waits out a
// re-election on ErrNoLeader — which is exactly what a follower's
// fetch loop needs across a failover.

// ReplicaBatch is one decoded replica fetch: the events plus the
// leader's framing state.
type ReplicaBatch struct {
	Events []event.Event
	// LeaderEpoch is the leader's current epoch; ahead of the
	// follower's view it means "truncate and re-fetch".
	LeaderEpoch int64
	// HighWatermark is the partition HW at serve time.
	HighWatermark int64
	// LogStart and LogEnd frame the leader's log (see
	// ReplicaFetchResp).
	LogStart int64
	LogEnd   int64
}

// ReplicaFetch pulls a replication batch from the partition leader at
// offset (the follower's log end, which doubles as its ack), long-
// polling up to wait when the follower is caught up. Events are
// decoded into buf's arena, so a steady-state fetch loop reuses one
// receive buffer; returned events are valid until the next call with
// the same buf.
func (c *Client) ReplicaFetch(follower int, topic string, partition int, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (ReplicaBatch, error) {
	req := ReplicaFetchReq{
		Topic: topic, Partition: partition, Follower: follower,
		LeaderEpoch: epoch, Offset: offset,
		MaxEvents: maxEvents, MaxBytes: maxBytes,
		WaitMaxMS: int(wait / time.Millisecond),
	}
	var resp ReplicaFetchResp
	cl, err := c.dataCall(topic, partition, &req, &resp, nil, buf.Arena[:0])
	if err != nil {
		return ReplicaBatch{}, err
	}
	if cl.arena != nil {
		buf.Arena = cl.arena
	}
	evs, pos, err := event.AppendUnmarshalBatch(buf.Events[:0], cl.data, resp.NumEvents)
	if err != nil {
		return ReplicaBatch{}, fmt.Errorf("wire: %w", err)
	}
	if pos != len(cl.data) {
		return ReplicaBatch{}, fmt.Errorf("wire: %d trailing bytes after %d events", len(cl.data)-pos, resp.NumEvents)
	}
	buf.Events = evs
	resp.Stamp(evs, topic, partition)
	return ReplicaBatch{
		Events:        evs,
		LeaderEpoch:   resp.LeaderEpoch,
		HighWatermark: resp.HighWatermark,
		LogStart:      resp.LogStart,
		LogEnd:        resp.LogEnd,
	}, nil
}

// ReplicaAck pushes the follower's log end offset to the leader right
// after an append, advancing the partition high watermark without
// waiting for the next fetch round trip.
func (c *Client) ReplicaAck(follower int, topic string, partition int, epoch, leo int64) error {
	req := ReplicaAckReq{Topic: topic, Partition: partition, Follower: follower, LeaderEpoch: epoch, LogEnd: leo}
	_, err := c.dataCall(topic, partition, &req, &EmptyResp{}, nil, nil)
	return err
}
