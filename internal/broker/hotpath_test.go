package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
)

func sized(n int, tag string) event.Event {
	v := make([]byte, n)
	copy(v, tag)
	return event.Event{Value: v}
}

func TestFetchMaxBytesSemantics(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "t", 1, 1)
	batch := []event.Event{sized(100, "a"), sized(200, "b"), sized(50, "c"), sized(400, "d")}
	if _, err := f.Produce("", "t", 0, batch, AcksLeader); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		maxBytes int
		want     int
	}{
		{1, 1},   // budget below the first event: still one event
		{100, 1}, // first event exactly consumes the budget
		{300, 1}, // 100+200 reaches the budget: second excluded
		{301, 2},
		{351, 3},
		{0, 4}, // no byte budget
	}
	for _, c := range cases {
		res, err := f.Fetch("", "t", 0, 0, 100, c.maxBytes)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) != c.want {
			t.Fatalf("Fetch(maxBytes=%d) len = %d, want %d", c.maxBytes, len(res.Events), c.want)
		}
		if c.maxBytes > 0 && len(res.Events) > 1 {
			total := 0
			for i := range res.Events {
				total += res.Events[i].Size()
			}
			if total >= c.maxBytes {
				t.Fatalf("Fetch(maxBytes=%d) returned %d bytes: over budget beyond the first event", c.maxBytes, total)
			}
		}
	}
	// Fabric.Fetch and Log.ReadBytes agree cut-for-cut.
	for _, budget := range []int{1, 99, 100, 150, 300, 301, 350, 351, 750, 751} {
		res, err := f.Fetch("", "t", 0, 0, 100, budget)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := f.partitionRoute("t", 0)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := pr.log.ReadBytes(0, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) != len(direct) {
			t.Fatalf("budget=%d: Fetch returned %d events, ReadBytes %d", budget, len(res.Events), len(direct))
		}
	}
}

// TestFailoverAfterCacheWarm exercises the epoch invalidation of the
// routing cache: once produce/fetch have warmed the (topic, partition) →
// leader-log cache, a leader failure must re-route the very next call to
// the newly elected leader, and a restart must restore the original
// replica to service.
func TestFailoverAfterCacheWarm(t *testing.T) {
	f := newFabric(t, 3)
	mkTopic(t, f, "t", 1, 2)
	pm, err := f.Ctl.Partition("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	oldLeader := pm.Leader

	// Warm the routing cache on both paths.
	if _, err := f.Produce("", "t", 0, evs(10, "warm"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("", "t", 0, 0, 100, 0); err != nil {
		t.Fatal(err)
	}

	if err := f.StopBroker(oldLeader); err != nil {
		t.Fatal(err)
	}
	pm, err = f.Ctl.Partition("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Leader == oldLeader || pm.Leader < 0 {
		t.Fatalf("leader after failover = %d (old %d)", pm.Leader, oldLeader)
	}

	// The warmed cache must not route to the dead broker: the next
	// produce and fetch go straight to the new leader with no error.
	if _, err := f.Produce("", "t", 0, evs(5, "post-failover"), AcksLeader); err != nil {
		t.Fatalf("produce after failover: %v", err)
	}
	res, err := f.Fetch("", "t", 0, 0, 100, 0)
	if err != nil {
		t.Fatalf("fetch after failover: %v", err)
	}
	if len(res.Events) != 15 {
		t.Fatalf("events after failover = %d, want 15 (replication must be lossless)", len(res.Events))
	}
	newLeaderNode, _ := f.Node(pm.Leader)
	if l, ok := newLeaderNode.existingLog(TP{Topic: "t", Partition: 0}); !ok || l.EndOffset() != 15 {
		t.Fatal("post-failover writes did not land on the new leader's log")
	}

	// Restart: the old broker catches up, rejoins the ISR, and the cache
	// follows the next epoch bump.
	if err := f.RestartBroker(oldLeader); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("", "t", 0, evs(5, "post-restart"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	res, err = f.Fetch("", "t", 0, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 20 {
		t.Fatalf("events after restart = %d, want 20", len(res.Events))
	}
	// The restarted replica replicated the post-restart batch.
	oldNode, _ := f.Node(oldLeader)
	if l, ok := oldNode.existingLog(TP{Topic: "t", Partition: 0}); !ok || l.EndOffset() != 20 {
		end := int64(-1)
		if ok {
			end = l.EndOffset()
		}
		t.Fatalf("restarted replica end = %d, want 20", end)
	}
}

// TestConcurrentProduceFetchWithFailover hammers the cached hot path from
// many goroutines while a broker bounces, for the race detector: cache
// rebuilds, arena clones and log appends must all be data-race free, and
// the only acceptable produce error is leader unavailability during the
// failover window.
func TestConcurrentProduceFetchWithFailover(t *testing.T) {
	f := newFabric(t, 3)
	mkTopic(t, f, "t", 2, 2)
	const producers, batches = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				batch := []event.Event{
					{Key: []byte(fmt.Sprintf("k%d", g)), Value: []byte(fmt.Sprintf("g%d-%d", g, i))},
					{Value: []byte(fmt.Sprintf("u%d-%d", g, i))},
				}
				if _, err := f.Produce("", "t", -1, batch, AcksLeader); err != nil &&
					!errors.Is(err, ErrLeaderUnavailable) {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var off int64
			for i := 0; i < batches; i++ {
				res, err := f.Fetch("", "t", p, off, 64, 4096)
				if err != nil {
					if errors.Is(err, ErrLeaderUnavailable) {
						continue
					}
					t.Errorf("fetch: %v", err)
					return
				}
				for _, e := range res.Events {
					if e.Offset < off {
						t.Errorf("fetch went backwards: %d < %d", e.Offset, off)
						return
					}
					off = e.Offset + 1
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := f.StopBroker(1); err != nil {
				t.Errorf("stop: %v", err)
				return
			}
			if err := f.RestartBroker(1); err != nil {
				t.Errorf("restart: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestProduceDoesNotAliasCallerBuffers pins the arena-clone contract: the
// producer may reuse its Key/Value buffers after Produce returns without
// corrupting stored records (the guarantee per-event Clone used to give).
func TestProduceDoesNotAliasCallerBuffers(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "t", 1, 1)
	key := []byte("stable-key")
	val := []byte("stable-value")
	if _, err := f.Produce("", "t", 0, []event.Event{{Key: key, Value: val}}, AcksLeader); err != nil {
		t.Fatal(err)
	}
	copy(key, "XXXXXX")
	copy(val, "YYYYYY")
	res, err := f.Fetch("", "t", 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Events[0].Key) != "stable-key" || string(res.Events[0].Value) != "stable-value" {
		t.Fatalf("stored record aliases caller buffers: %q/%q", res.Events[0].Key, res.Events[0].Value)
	}
}

// TestRouteCacheEvictsDeletedTopics pins the churn behavior: deleting a
// topic must not leave its routing entry pinned in the cache forever.
func TestRouteCacheEvictsDeletedTopics(t *testing.T) {
	f := newFabric(t, 1)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("job-%d", i)
		mkTopic(t, f, name, 1, 1)
		if _, err := f.Produce("", name, 0, evs(1, "x"), AcksLeader); err != nil {
			t.Fatal(err)
		}
		if err := f.Ctl.DeleteTopic(name); err != nil {
			t.Fatal(err)
		}
	}
	// The next route build (any topic) sweeps the dead entries.
	mkTopic(t, f, "live", 1, 1)
	if _, err := f.Produce("", "live", 0, evs(1, "x"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	cached := 0
	f.routes.Range(func(k, _ any) bool {
		if k.(string) != "live" {
			t.Fatalf("deleted topic %q still cached", k)
		}
		cached++
		return true
	})
	if cached != 1 {
		t.Fatalf("cache holds %d entries, want 1", cached)
	}
}

// TestRouteCacheFollowsPartitionGrowth covers the non-failover
// invalidation path: growing a topic's partition count must be visible
// to the next produce against the new partition.
func TestRouteCacheFollowsPartitionGrowth(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 1, 1)
	if _, err := f.Produce("", "t", 0, evs(1, "warm"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("", "t", 1, evs(1, "nope"), AcksLeader); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("produce to missing partition: %v", err)
	}
	if _, err := f.Ctl.SetPartitions("t", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("", "t", 2, evs(1, "grown"), AcksLeader); err != nil {
		t.Fatalf("produce to grown partition: %v", err)
	}
	if end, err := f.EndOffset("t", 2); err != nil || end != 1 {
		t.Fatalf("end = %d, %v", end, err)
	}
}
