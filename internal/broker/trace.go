package broker

import (
	"sync"
	"sync/atomic"
)

// Produce-path stage tracing: a 1-in-N sampler over per-partition
// produce calls, recording where each sampled produce spent its time —
// the attribution layer that turns "acks=all costs 9.5 ms" into a
// budget (append vs replication wait vs bookkeeping). Sampled records
// land in a fixed ring buffer on the fabric and are drained off-broker
// through the wire stats op; the unsampled fast path pays one atomic
// increment.

// Trace stage indices. The paper's five produce timestamps (client
// send, leader append, follower replicated, HW advance, ack) reduce to
// three broker-visible durations: the client-send timestamp never
// crosses the wire, and the follower-replicated and HW-advance instants
// coincide inside the tracker's recompute, so the broker attributes its
// produce time to append, replication wait, and ack bookkeeping.
const (
	// StageAppend: request admitted on the partition -> leader log
	// append (including encode + flush for file-backed logs) complete.
	StageAppend = iota
	// StageReplicate: leader append -> high watermark advanced past the
	// batch (the acks=all wait; zero for acks<=1, where the produce
	// does not wait on replication).
	StageReplicate
	// StageAck: replication wait -> produce returns to the transport
	// (metric observes, scratch release).
	StageAck
	// NumTraceStages is the per-record stage count.
	NumTraceStages
)

// TraceStageNames names the stages, index-aligned with StageNs.
var TraceStageNames = [NumTraceStages]string{"leader_append", "replication_hw", "ack"}

// TraceRecord is one sampled per-partition produce.
type TraceRecord struct {
	// StartUnixNano is the wall-clock produce admission time.
	StartUnixNano int64
	// StageNs holds per-stage durations in nanoseconds.
	StageNs [NumTraceStages]int64
	// Events is the batch size appended to the partition.
	Events int32
	// Acks is the producer acknowledgment level of the call.
	Acks int8
}

// Total returns the record's end-to-end duration in nanoseconds.
func (r *TraceRecord) Total() int64 {
	var t int64
	for _, d := range r.StageNs {
		t += d
	}
	return t
}

// defaultTraceEvery samples one per-partition produce in 128 — cheap
// enough to leave on permanently, frequent enough that a ring of 256
// records covers the last ~32k produces.
const defaultTraceEvery = 128

// defaultTraceRing is the ring capacity.
const defaultTraceRing = 256

// ProduceTracer is the fabric's stage-trace sampler and ring buffer.
// The sampling decision is one atomic add; only sampled calls take the
// ring mutex (1-in-N, off the common path).
type ProduceTracer struct {
	every atomic.Uint64
	ctr   atomic.Uint64

	mu    sync.Mutex
	ring  []TraceRecord
	next  int
	total uint64
}

func newProduceTracer(every uint64, size int) *ProduceTracer {
	if every == 0 {
		every = defaultTraceEvery
	}
	if size <= 0 {
		size = defaultTraceRing
	}
	t := &ProduceTracer{ring: make([]TraceRecord, 0, size)}
	t.every.Store(every)
	return t
}

// SetSampleEvery adjusts the sampling rate to one in n (n == 0 disables
// sampling entirely).
func (t *ProduceTracer) SetSampleEvery(n uint64) { t.every.Store(n) }

// SampleEvery reports the current 1-in-N rate (0 = disabled).
func (t *ProduceTracer) SampleEvery() uint64 { return t.every.Load() }

// shouldSample is the hot-path gate: one atomic increment, true for
// every N-th call.
func (t *ProduceTracer) shouldSample() bool {
	n := t.every.Load()
	if n == 0 {
		return false
	}
	return t.ctr.Add(1)%n == 0
}

// record stores one sampled produce, overwriting the oldest entry once
// the ring is full.
func (t *ProduceTracer) record(r TraceRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained records oldest-first, plus the lifetime
// count of sampled produces (which keeps counting after the ring wraps).
func (t *ProduceTracer) Snapshot() (recs []TraceRecord, sampled uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	recs = make([]TraceRecord, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		recs = append(recs, t.ring[t.next:]...)
		recs = append(recs, t.ring[:t.next]...)
	} else {
		recs = append(recs, t.ring...)
	}
	return recs, t.total
}
