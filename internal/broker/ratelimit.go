package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Per-identity rate limiting, the cost-control mechanism of §VII-C:
// "The Octopus service can rate limit invocations on a per-identity
// basis". Limits are token buckets over produced events; a produce that
// would exceed the bucket is rejected with ErrRateLimited, which the
// SDK treats as retryable so well-behaved producers back off rather
// than drop events.

// ErrRateLimited reports a produce rejected by an identity's quota.
var ErrRateLimited error = rateLimitedError{}

type rateLimitedError struct{}

func (rateLimitedError) Error() string   { return "broker: identity rate limit exceeded" }
func (rateLimitedError) Temporary() bool { return true }

// rateLimiter is a token bucket: capacity = burst events, refilled at
// eventsPerSec.
type rateLimiter struct {
	mu           sync.Mutex
	eventsPerSec float64
	burst        float64
	tokens       float64
	last         time.Time
}

func (r *rateLimiter) allow(now time.Time, n int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.last.IsZero() {
		r.last = now
		r.tokens = r.burst
	}
	elapsed := now.Sub(r.last).Seconds()
	if elapsed > 0 {
		r.tokens += elapsed * r.eventsPerSec
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		r.last = now
	}
	if float64(n) > r.tokens {
		return false
	}
	r.tokens -= float64(n)
	return true
}

// Quotas manages per-identity produce limits for a fabric.
type Quotas struct {
	mu       sync.Mutex
	clock    vclock.Clock
	limiters map[string]*rateLimiter
}

// NewQuotas creates an empty quota table.
func NewQuotas(clock vclock.Clock) *Quotas {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Quotas{clock: clock, limiters: make(map[string]*rateLimiter)}
}

// SetLimit installs (or replaces) an identity's produce quota. burst of
// 0 defaults to one second's worth of events. A non-positive
// eventsPerSec removes the limit.
func (q *Quotas) SetLimit(identity string, eventsPerSec float64, burst int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if eventsPerSec <= 0 {
		delete(q.limiters, identity)
		return
	}
	b := float64(burst)
	if b <= 0 {
		b = eventsPerSec
	}
	q.limiters[identity] = &rateLimiter{eventsPerSec: eventsPerSec, burst: b}
}

// Limit returns the identity's configured rate, or 0 if unlimited.
func (q *Quotas) Limit(identity string) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if l, ok := q.limiters[identity]; ok {
		return l.eventsPerSec
	}
	return 0
}

// Admit charges n events against the identity's quota; unlimited
// identities always pass.
func (q *Quotas) Admit(identity string, n int) error {
	if identity == "" {
		return nil // trusted in-process callers are not metered
	}
	q.mu.Lock()
	l, ok := q.limiters[identity]
	q.mu.Unlock()
	if !ok {
		return nil
	}
	if !l.allow(q.clock.Now(), n) {
		return fmt.Errorf("%w: %s", ErrRateLimited, identity)
	}
	return nil
}

// IsRateLimited reports whether err is a quota rejection.
func IsRateLimited(err error) bool { return errors.Is(err, ErrRateLimited) }
