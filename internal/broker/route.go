package broker

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/eventlog"
)

// Routing cache: the produce/fetch hot path must not touch the registry.
//
// Topic metadata lives JSON-encoded in the registry, so the seed resolved
// every produce and fetch through a registry read plus a full TopicMeta
// decode — dozens of allocations per call before a single byte reached a
// log. The fabric now caches a decoded topicRoute per topic: partition
// leaders, their *eventlog.Log handles, and the in-sync follower handles
// replication writes to. Entries are tagged with the controller's
// metadata epoch; any control-plane mutation (leader election, ISR
// change, partition growth, topic delete) bumps the epoch, and the next
// data-plane call on a stale entry rebuilds it. Validity is therefore a
// single atomic comparison per call, and failover correctness reduces to
// "every leader change bumps the epoch", which the controller guarantees.

// partitionRoute is one partition's resolved placement.
type partitionRoute struct {
	// leaderID is the broker id serving the partition, -1 if leaderless.
	leaderID int
	// leader is the resolved leader node (nil when leaderless); its Down
	// flag is still checked per call, covering the window between a
	// broker stopping and the controller's re-election bumping the epoch.
	leader *Node
	// log is the leader's replica log.
	log *eventlog.Log
	// leaderEpoch is the partition's leader epoch at route-build time;
	// replication fetches are fenced against it.
	leaderEpoch int64
	// followers are the in-sync, live follower logs (leader excluded)
	// that synchronous replication appends to.
	followers []*eventlog.Log
	// isr is the ISR size, used by the acks=all admission check.
	isr int
}

// topicRoute is a topic's fully resolved routing table.
type topicRoute struct {
	epoch int64
	meta  *cluster.TopicMeta
	parts []partitionRoute
}

// route returns the topic's routing table, rebuilding it if the metadata
// epoch moved since it was cached.
func (f *Fabric) route(topic string) (*topicRoute, error) {
	epoch := f.Ctl.Epoch()
	if v, ok := f.routes.Load(topic); ok {
		rt := v.(*topicRoute)
		if rt.epoch == epoch {
			return rt, nil
		}
	}
	return f.buildRoute(topic)
}

// buildRoute resolves a topic's metadata into log handles and caches it.
func (f *Fabric) buildRoute(topic string) (*topicRoute, error) {
	// Read the epoch before the metadata: if a mutation lands in between,
	// the entry is stored with the older epoch and the next call rebuilds.
	epoch := f.Ctl.Epoch()
	f.pruneRoutes(epoch)
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		f.routes.Delete(topic)
		return nil, err
	}
	rt := &topicRoute{epoch: epoch, meta: meta, parts: make([]partitionRoute, len(meta.Partitions))}
	lcfg := logConfig(meta.Config)
	if h := f.hot.Load(); h != nil {
		// Newly opened partition logs report append latency and batch
		// bytes into the fabric-wide eventlog histograms. Logs cached
		// from before a SetHotPathMetrics toggle keep their original
		// wiring (observer config is fixed at open).
		lcfg.AppendLatency = h.logAppendNs
		lcfg.AppendBytes = h.logAppendBytes
	}
	for i := range meta.Partitions {
		pm := &meta.Partitions[i]
		pr := &rt.parts[i]
		pr.leaderID = pm.Leader
		pr.isr = len(pm.ISR)
		if pm.Leader < 0 {
			continue
		}
		leader, ok := f.Node(pm.Leader)
		if !ok {
			pr.leaderID = -1
			continue
		}
		tp := TP{Topic: meta.Name, Partition: pm.ID}
		pr.leader = leader
		pr.log, err = leader.log(tp, lcfg)
		if err != nil {
			return nil, err
		}
		pr.leaderEpoch = pm.LeaderEpoch
		for _, r := range pm.ISR {
			if r == pm.Leader {
				continue
			}
			fn, ok := f.Node(r)
			if !ok || fn.Down() {
				continue
			}
			fl, err := fn.log(tp, lcfg)
			if err != nil {
				return nil, err
			}
			pr.followers = append(pr.followers, fl)
		}
	}
	f.routes.Store(topic, rt)
	return rt, nil
}

// pruneRoutes drops cache entries for topics that no longer exist, so a
// churny workload (create topic, produce, delete) cannot grow the cache
// unboundedly: deleted topics are only otherwise evicted when someone
// touches them again. Runs at most once per metadata epoch, and epoch
// bumps are control-plane-rare, so the topic-list walk stays off the
// steady-state path.
func (f *Fabric) pruneRoutes(epoch int64) {
	if f.routePruned.Swap(epoch) == epoch {
		return
	}
	live := make(map[string]bool)
	for _, t := range f.Ctl.Topics() {
		live[t] = true
	}
	f.routes.Range(func(k, _ any) bool {
		if !live[k.(string)] {
			f.routes.Delete(k)
		}
		return true
	})
}

// partitionRoute resolves one partition for the fetch-side paths,
// enforcing leader availability.
func (f *Fabric) partitionRoute(topic string, partition int) (*partitionRoute, error) {
	rt, err := f.route(topic)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(rt.parts) {
		return nil, fmt.Errorf("cluster: %s has no partition %d", topic, partition)
	}
	pr := &rt.parts[partition]
	if pr.leaderID < 0 || pr.leader == nil {
		return nil, fmt.Errorf("%w: %s/%d", ErrNoLeader, topic, partition)
	}
	if pr.leader.Down() {
		return nil, fmt.Errorf("%w: %s/%d", ErrLeaderUnavailable, topic, partition)
	}
	return pr, nil
}

// produceScratch is the reusable per-produce working set: the partition
// assignment of each event and the per-partition buckets events are
// grouped into. Pooled so the steady-state produce path allocates only
// the batch arena.
type produceScratch struct {
	pidx    []int
	order   []int
	buckets [][]event.Event
}

var scratchPool = sync.Pool{New: func() any { return new(produceScratch) }}

// prepare sizes the scratch for nEvents events across parts partitions.
func (s *produceScratch) prepare(nEvents, parts int) {
	if cap(s.pidx) < nEvents {
		s.pidx = make([]int, nEvents)
	}
	s.pidx = s.pidx[:nEvents]
	s.order = s.order[:0]
	if cap(s.buckets) < parts {
		s.buckets = make([][]event.Event, parts)
	}
	s.buckets = s.buckets[:parts]
}

// release clears event references (so the pool does not pin batch arenas
// past the records' lifetime) and returns the scratch to the pool.
func (s *produceScratch) release() {
	for i := range s.buckets {
		clear(s.buckets[i])
		s.buckets[i] = s.buckets[i][:0]
	}
	scratchPool.Put(s)
}

// FNV-1a, inlined: hash/fnv allocates a hasher per call, which is pure
// overhead on the keyed-routing hot path. Constants and algorithm match
// hash/fnv's 32-bit variant exactly, so key→partition routing is stable
// across the change.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv1a(b []byte) uint32 {
	h := uint32(fnvOffset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}

// PartitionForKey is the fabric's keyed partitioner (FNV-1a over the
// key, modulo the partition count), exported so leader-direct wire
// clients can pre-partition a keyed batch on their side and still land
// every event on exactly the partition the fabric itself would pick.
func PartitionForKey(key []byte, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(fnv1a(key) % uint32(parts))
}

// arenaClone deep-copies src into dst buckets (or a single flat batch
// when buckets is nil) using one contiguous arena allocation for all keys
// and values: the per-event Clone of the seed cost one to two allocations
// per event. Headers, when present, still clone per event — the
// steady-state fabric workloads are header-free. Returned events carry
// topic/partition from their bucket assignment.
// bucketDonated is arenaClone for donated batches: the caller has handed
// over ownership of the events' buffers (a decoded wire frame, typically),
// so events are bucketed and stamped with their routing without copying a
// byte. Headers decoded from the wire already own their strings, so they
// are kept as-is too.
func bucketDonated(src []event.Event, pidx []int, topic string, scratch *produceScratch) {
	for i := range src {
		ev := src[i]
		p := pidx[i]
		ev.Topic = topic
		ev.Partition = p
		if len(scratch.buckets[p]) == 0 {
			scratch.order = append(scratch.order, p)
		}
		scratch.buckets[p] = append(scratch.buckets[p], ev)
	}
}

func arenaClone(src []event.Event, pidx []int, topic string, scratch *produceScratch) {
	total := 0
	for i := range src {
		total += len(src[i].Key) + len(src[i].Value)
	}
	arena := make([]byte, 0, total)
	for i := range src {
		ev := src[i]
		if len(ev.Key) > 0 {
			n := len(arena)
			arena = append(arena, ev.Key...)
			ev.Key = arena[n:len(arena):len(arena)]
		}
		if len(ev.Value) > 0 {
			n := len(arena)
			arena = append(arena, ev.Value...)
			ev.Value = arena[n:len(arena):len(arena)]
		}
		if ev.Headers != nil {
			h := make(map[string]string, len(ev.Headers))
			for k, v := range ev.Headers {
				h[k] = v
			}
			ev.Headers = h
		}
		p := pidx[i]
		ev.Topic = topic
		ev.Partition = p
		if len(scratch.buckets[p]) == 0 {
			scratch.order = append(scratch.order, p)
		}
		scratch.buckets[p] = append(scratch.buckets[p], ev)
	}
}
