package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Coordinator manages consumer groups: membership, generation-numbered
// rebalances with range assignment, and committed offsets. Committed
// offsets give the at-least-once delivery guarantee of §IV-F: a consumer
// that crashes resumes from its last commit and may re-see events.
type Coordinator struct {
	fabric *Fabric

	mu     sync.Mutex
	groups map[string]*group
}

// ErrStaleGeneration reports a commit from a member that missed a
// rebalance and must rejoin.
var ErrStaleGeneration = errors.New("broker: stale group generation")

// ErrUnknownMember reports an operation by a member not in the group.
var ErrUnknownMember = errors.New("broker: unknown group member")

type group struct {
	generation  int
	members     map[string][]string // memberID -> subscribed topics
	assignments map[string][]TP     // memberID -> assigned partitions
	offsets     map[TP]int64
}

// NewCoordinator creates the group coordinator for a fabric.
func NewCoordinator(f *Fabric) *Coordinator {
	return &Coordinator{fabric: f, groups: make(map[string]*group)}
}

// Assignment is the result of joining a group.
type Assignment struct {
	Generation int
	Partitions []TP
}

// Join adds (or re-subscribes) a member and rebalances. Every member's
// assignment changes generation; members discover this on their next
// Heartbeat or commit and call Join again to pick up the new assignment.
func (c *Coordinator) Join(groupID, memberID string, topics []string) (Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		g = &group{
			members:     make(map[string][]string),
			assignments: make(map[string][]TP),
			offsets:     make(map[TP]int64),
		}
		c.groups[groupID] = g
	}
	g.members[memberID] = append([]string(nil), topics...)
	if err := c.rebalanceLocked(g); err != nil {
		return Assignment{}, err
	}
	return Assignment{Generation: g.generation, Partitions: append([]TP(nil), g.assignments[memberID]...)}, nil
}

// Leave removes a member and rebalances the remainder.
func (c *Coordinator) Leave(groupID, memberID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return
	}
	delete(g.members, memberID)
	delete(g.assignments, memberID)
	_ = c.rebalanceLocked(g)
}

// rebalanceLocked performs range assignment: for each subscribed topic,
// partitions are split into contiguous ranges across the sorted members
// subscribed to it.
func (c *Coordinator) rebalanceLocked(g *group) error {
	g.generation++
	for m := range g.assignments {
		g.assignments[m] = nil
	}
	// topic -> sorted members subscribed to it
	byTopic := make(map[string][]string)
	for m, topics := range g.members {
		for _, t := range topics {
			byTopic[t] = append(byTopic[t], m)
		}
	}
	for topic, members := range byTopic {
		sort.Strings(members)
		meta, err := c.fabric.Ctl.Topic(topic)
		if err != nil {
			return fmt.Errorf("broker: rebalance: %w", err)
		}
		parts := meta.Config.Partitions
		n := len(members)
		per := parts / n
		extra := parts % n
		p := 0
		for i, m := range members {
			count := per
			if i < extra {
				count++
			}
			for j := 0; j < count; j++ {
				g.assignments[m] = append(g.assignments[m], TP{Topic: topic, Partition: p})
				p++
			}
		}
	}
	return nil
}

// Heartbeat returns the current generation; a member comparing it to its
// joined generation learns whether it must rejoin.
func (c *Coordinator) Heartbeat(groupID, memberID string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return 0, fmt.Errorf("%w: group %s", ErrUnknownMember, groupID)
	}
	if _, ok := g.members[memberID]; !ok {
		return 0, fmt.Errorf("%w: %s in %s", ErrUnknownMember, memberID, groupID)
	}
	return g.generation, nil
}

// Commit records a member's consumed position (the offset of the next
// event to read). Commits from stale generations are rejected so a
// rebalanced-away member cannot clobber the new owner's progress.
func (c *Coordinator) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: group %s", ErrUnknownMember, groupID)
	}
	if _, ok := g.members[memberID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, memberID)
	}
	if generation != g.generation {
		return fmt.Errorf("%w: have %d want %d", ErrStaleGeneration, generation, g.generation)
	}
	tp := TP{Topic: topic, Partition: partition}
	if cur, ok := g.offsets[tp]; !ok || offset > cur {
		g.offsets[tp] = offset
	}
	return nil
}

// CommitDirect records an offset without membership checks, used by
// managed components (triggers) that own their group exclusively.
func (c *Coordinator) CommitDirect(groupID, topic string, partition int, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		g = &group{
			members:     make(map[string][]string),
			assignments: make(map[string][]TP),
			offsets:     make(map[TP]int64),
		}
		c.groups[groupID] = g
	}
	tp := TP{Topic: topic, Partition: partition}
	if cur, ok := g.offsets[tp]; !ok || offset > cur {
		g.offsets[tp] = offset
	}
}

// Committed returns the committed offset for the partition, or -1 if the
// group has no commit there (the consumer then starts from its
// configured auto-offset-reset position).
func (c *Coordinator) Committed(groupID, topic string, partition int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return -1
	}
	off, ok := g.offsets[TP{Topic: topic, Partition: partition}]
	if !ok {
		return -1
	}
	return off
}

// Members returns the sorted member ids of a group.
func (c *Coordinator) Members(groupID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Generation returns the group's current generation (0 if absent).
func (c *Coordinator) Generation(groupID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return 0
	}
	return g.generation
}
