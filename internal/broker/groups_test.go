package broker

import (
	"errors"
	"testing"

	"repro/internal/cluster"
)

func groupFabric(t *testing.T) *Fabric {
	t.Helper()
	f := NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 6, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingleMemberGetsAllPartitions(t *testing.T) {
	f := groupFabric(t)
	asn, err := f.Groups.Join("g", "m1", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Partitions) != 6 {
		t.Fatalf("assigned = %v", asn.Partitions)
	}
	if asn.Generation != 1 {
		t.Fatalf("generation = %d", asn.Generation)
	}
}

func TestRangeAssignmentSplitsEvenly(t *testing.T) {
	f := groupFabric(t)
	if _, err := f.Groups.Join("g", "m1", []string{"t"}); err != nil {
		t.Fatal(err)
	}
	asn2, err := f.Groups.Join("g", "m2", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn2.Partitions) != 3 {
		t.Fatalf("m2 assigned = %v", asn2.Partitions)
	}
	// Re-join as m1 to observe its new assignment.
	asn1, err := f.Groups.Join("g", "m1", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, tp := range append(asn1.Partitions, asn2.Partitions...) {
		if seen[tp.Partition] {
			t.Fatalf("partition %d assigned twice", tp.Partition)
		}
		seen[tp.Partition] = true
	}
	// Note: asn2 reflects generation 2; m1's re-join bumped to 3, but
	// partition sets for 2 members of 6 partitions remain disjoint and
	// complete across generations with the same membership.
	if len(seen) != 6 {
		t.Fatalf("coverage = %v", seen)
	}
}

func TestUnevenPartitionSplit(t *testing.T) {
	f := NewFabric(nil)
	if err := f.AddBrokers(1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("odd", "", cluster.TopicConfig{Partitions: 7, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Groups.Join("g", "a", []string{"odd"})
	_, _ = f.Groups.Join("g", "b", []string{"odd"})
	asnA, _ := f.Groups.Join("g", "a", []string{"odd"})
	asnB, _ := f.Groups.Join("g", "b", []string{"odd"})
	if len(asnA.Partitions)+len(asnB.Partitions) != 7 {
		t.Fatalf("split = %d + %d", len(asnA.Partitions), len(asnB.Partitions))
	}
	diff := len(asnA.Partitions) - len(asnB.Partitions)
	if diff < -1 || diff > 1 {
		t.Fatalf("unbalanced: %d vs %d", len(asnA.Partitions), len(asnB.Partitions))
	}
}

func TestLeaveRebalances(t *testing.T) {
	f := groupFabric(t)
	_, _ = f.Groups.Join("g", "m1", []string{"t"})
	_, _ = f.Groups.Join("g", "m2", []string{"t"})
	f.Groups.Leave("g", "m2")
	asn, err := f.Groups.Join("g", "m1", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Partitions) != 6 {
		t.Fatalf("m1 after leave = %v", asn.Partitions)
	}
	if members := f.Groups.Members("g"); len(members) != 1 || members[0] != "m1" {
		t.Fatalf("members = %v", members)
	}
}

func TestCommitAndCommitted(t *testing.T) {
	f := groupFabric(t)
	asn, _ := f.Groups.Join("g", "m1", []string{"t"})
	if err := f.Groups.Commit("g", "m1", asn.Generation, "t", 0, 42); err != nil {
		t.Fatal(err)
	}
	if off := f.Groups.Committed("g", "t", 0); off != 42 {
		t.Fatalf("committed = %d", off)
	}
	if off := f.Groups.Committed("g", "t", 1); off != -1 {
		t.Fatalf("uncommitted = %d, want -1", off)
	}
	if off := f.Groups.Committed("nogroup", "t", 0); off != -1 {
		t.Fatalf("missing group = %d, want -1", off)
	}
}

func TestCommitNeverRegresses(t *testing.T) {
	f := groupFabric(t)
	asn, _ := f.Groups.Join("g", "m1", []string{"t"})
	_ = f.Groups.Commit("g", "m1", asn.Generation, "t", 0, 100)
	_ = f.Groups.Commit("g", "m1", asn.Generation, "t", 0, 50)
	if off := f.Groups.Committed("g", "t", 0); off != 100 {
		t.Fatalf("committed regressed to %d", off)
	}
}

func TestStaleGenerationCommitRejected(t *testing.T) {
	f := groupFabric(t)
	asn, _ := f.Groups.Join("g", "m1", []string{"t"})
	_, _ = f.Groups.Join("g", "m2", []string{"t"}) // bumps generation
	err := f.Groups.Commit("g", "m1", asn.Generation, "t", 0, 10)
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("err = %v", err)
	}
}

func TestCommitUnknownMember(t *testing.T) {
	f := groupFabric(t)
	_, _ = f.Groups.Join("g", "m1", []string{"t"})
	if err := f.Groups.Commit("g", "ghost", 1, "t", 0, 1); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
	if err := f.Groups.Commit("nogroup", "m", 1, "t", 0, 1); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeartbeatDetectsRebalance(t *testing.T) {
	f := groupFabric(t)
	asn, _ := f.Groups.Join("g", "m1", []string{"t"})
	gen, err := f.Groups.Heartbeat("g", "m1")
	if err != nil || gen != asn.Generation {
		t.Fatalf("gen = %d, %v", gen, err)
	}
	_, _ = f.Groups.Join("g", "m2", []string{"t"})
	gen, _ = f.Groups.Heartbeat("g", "m1")
	if gen == asn.Generation {
		t.Fatal("generation did not advance on rebalance")
	}
	if _, err := f.Groups.Heartbeat("g", "ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("ghost heartbeat: %v", err)
	}
}

func TestCommitDirectCreatesGroup(t *testing.T) {
	f := groupFabric(t)
	f.Groups.CommitDirect("trigger-g", "t", 3, 77)
	if off := f.Groups.Committed("trigger-g", "t", 3); off != 77 {
		t.Fatalf("committed = %d", off)
	}
}

func TestMultiTopicSubscription(t *testing.T) {
	f := groupFabric(t)
	if _, err := f.CreateTopic("t2", "", cluster.TopicConfig{Partitions: 2, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	asn, err := f.Groups.Join("g", "m1", []string{"t", "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Partitions) != 8 {
		t.Fatalf("assigned = %v", asn.Partitions)
	}
}
