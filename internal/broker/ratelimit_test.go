package broker

import (
	"errors"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/cluster"
	"repro/internal/vclock"
)

var rlOrigin = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestQuotaAllowsWithinBudget(t *testing.T) {
	clk := vclock.NewVirtual(rlOrigin)
	q := NewQuotas(clk)
	q.SetLimit("alice", 100, 100)
	if err := q.Admit("alice", 50); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("alice", 50); err != nil {
		t.Fatal(err)
	}
	// Bucket empty: the next event is rejected.
	if err := q.Admit("alice", 1); !IsRateLimited(err) {
		t.Fatalf("err = %v", err)
	}
	// Refill after a second.
	clk.Advance(time.Second)
	if err := q.Admit("alice", 100); err != nil {
		t.Fatalf("post-refill: %v", err)
	}
}

func TestQuotaPartialRefill(t *testing.T) {
	clk := vclock.NewVirtual(rlOrigin)
	q := NewQuotas(clk)
	q.SetLimit("u", 1000, 1000)
	if err := q.Admit("u", 1000); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond) // 100 tokens back
	if err := q.Admit("u", 100); err != nil {
		t.Fatalf("partial refill: %v", err)
	}
	if err := q.Admit("u", 10); !IsRateLimited(err) {
		t.Fatalf("over partial refill: %v", err)
	}
}

func TestQuotaUnlimitedIdentities(t *testing.T) {
	q := NewQuotas(nil)
	if err := q.Admit("nobody-configured", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("", 1<<20); err != nil { // trusted in-process
		t.Fatal(err)
	}
	q.SetLimit("u", 10, 10)
	if q.Limit("u") != 10 {
		t.Fatalf("limit = %v", q.Limit("u"))
	}
	q.SetLimit("u", 0, 0) // remove
	if q.Limit("u") != 0 {
		t.Fatal("limit not removed")
	}
	if err := q.Admit("u", 1<<20); err != nil {
		t.Fatalf("after removal: %v", err)
	}
}

func TestQuotaBurstDefaultsToRate(t *testing.T) {
	clk := vclock.NewVirtual(rlOrigin)
	q := NewQuotas(clk)
	q.SetLimit("u", 250, 0)
	if err := q.Admit("u", 250); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("u", 1); !IsRateLimited(err) {
		t.Fatalf("burst exceeded rate: %v", err)
	}
}

func TestProduceEnforcesQuota(t *testing.T) {
	f := newFabric(t, 1)
	if _, err := f.CreateTopic("metered", "heavy-user", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	f.Quotas.SetLimit("heavy-user", 10, 10)
	if _, err := f.Produce("heavy-user", "metered", 0, evs(10, "a"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	_, err := f.Produce("heavy-user", "metered", 0, evs(1, "b"), AcksLeader)
	if !IsRateLimited(err) {
		t.Fatalf("err = %v", err)
	}
	// The error is retryable for the SDK backoff path.
	var tmp interface{ Temporary() bool }
	if !errors.As(err, &tmp) || !tmp.Temporary() {
		t.Fatal("rate-limit error not temporary")
	}
	if f.Metrics.Counter("fabric.rate_limited").Value() != 1 {
		t.Fatalf("metric = %d", f.Metrics.Counter("fabric.rate_limited").Value())
	}
	// Other identities are unaffected.
	if err := f.ACL.Grant("metered", "light-user", auth.PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("light-user", "metered", 0, evs(5, "c"), AcksLeader); err != nil {
		t.Fatalf("unmetered identity: %v", err)
	}
}
