package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/auth"
	"repro/internal/cluster"
	"repro/internal/event"
)

func newFabric(t *testing.T, brokers int) *Fabric {
	t.Helper()
	f := NewFabric(nil)
	if err := f.AddBrokers(brokers, 2, 8); err != nil {
		t.Fatal(err)
	}
	return f
}

func mkTopic(t *testing.T, f *Fabric, name string, parts, rf int) {
	t.Helper()
	if _, err := f.CreateTopic(name, "", cluster.TopicConfig{Partitions: parts, ReplicationFactor: rf}); err != nil {
		t.Fatal(err)
	}
}

func evs(n int, prefix string) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{Value: []byte(fmt.Sprintf("%s-%d", prefix, i))}
	}
	return out
}

func TestProduceFetchRoundTrip(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 1, 2)
	base, err := f.Produce("", "t", 0, evs(10, "e"), AcksLeader)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("base = %d", base)
	}
	res, err := f.Fetch("", "t", 0, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 10 || res.HighWatermark != 10 {
		t.Fatalf("events = %d, hw = %d", len(res.Events), res.HighWatermark)
	}
	for i, e := range res.Events {
		if e.Offset != int64(i) || e.Topic != "t" || e.Partition != 0 {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestKeyedEventsStayOnOnePartition(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 4, 1)
	batch := make([]event.Event, 20)
	for i := range batch {
		batch[i] = event.Event{Key: []byte("instrument-7"), Value: []byte(fmt.Sprintf("%d", i))}
	}
	if _, err := f.Produce("", "t", -1, batch, AcksLeader); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < 4; p++ {
		end, err := f.EndOffset("t", p)
		if err != nil {
			t.Fatal(err)
		}
		if end > 0 {
			nonEmpty++
			if end != 20 {
				t.Fatalf("partition %d has %d events, want all 20", p, end)
			}
			// Order preserved within the partition.
			res, _ := f.Fetch("", "t", p, 0, 100, 0)
			for i, e := range res.Events {
				if string(e.Value) != fmt.Sprintf("%d", i) {
					t.Fatalf("order broken at %d: %s", i, e.Value)
				}
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("keyed events landed on %d partitions", nonEmpty)
	}
}

func TestUnkeyedEventsSpreadAcrossPartitions(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 4, 1)
	if _, err := f.Produce("", "t", -1, evs(400, "e"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		end, _ := f.EndOffset("t", p)
		if end == 0 {
			t.Fatalf("partition %d got no events", p)
		}
	}
}

func TestProduceUnknownTopicAndPartition(t *testing.T) {
	f := newFabric(t, 1)
	if _, err := f.Produce("", "ghost", 0, evs(1, "e"), AcksLeader); err == nil {
		t.Fatal("produce to missing topic succeeded")
	}
	mkTopic(t, f, "t", 2, 1)
	if _, err := f.Produce("", "t", 7, evs(1, "e"), AcksLeader); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestACLEnforcement(t *testing.T) {
	f := newFabric(t, 1)
	if _, err := f.CreateTopic("secure", "owner-1", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	// Owner can produce and fetch.
	if _, err := f.Produce("owner-1", "secure", 0, evs(1, "e"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("owner-1", "secure", 0, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	// A stranger cannot.
	if _, err := f.Produce("intruder", "secure", 0, evs(1, "e"), AcksLeader); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("produce: %v", err)
	}
	if _, err := f.Fetch("intruder", "secure", 0, 0, 10, 0); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("fetch: %v", err)
	}
	// Granting READ lets the stranger consume but not produce.
	if err := f.ACL.Grant("secure", "intruder", auth.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("intruder", "secure", 0, 0, 10, 0); err != nil {
		t.Fatalf("fetch after grant: %v", err)
	}
	if _, err := f.Produce("intruder", "secure", 0, evs(1, "e"), AcksLeader); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("produce after read grant: %v", err)
	}
}

func TestReplicationKeepsFollowersIdentical(t *testing.T) {
	f := newFabric(t, 3)
	mkTopic(t, f, "t", 1, 3)
	if _, err := f.Produce("", "t", 0, evs(50, "e"), AcksAll); err != nil {
		t.Fatal(err)
	}
	pm, _ := f.Ctl.Partition("t", 0)
	for _, r := range pm.Replicas {
		n, _ := f.Node(r)
		l, ok := n.existingLog(TP{Topic: "t", Partition: 0})
		if !ok {
			t.Fatalf("broker %d has no replica log", r)
		}
		if l.EndOffset() != 50 {
			t.Fatalf("broker %d replica end = %d", r, l.EndOffset())
		}
	}
}

func TestLeaderFailoverPreservesEvents(t *testing.T) {
	f := newFabric(t, 3)
	mkTopic(t, f, "t", 1, 2)
	if _, err := f.Produce("", "t", 0, evs(25, "before"), AcksAll); err != nil {
		t.Fatal(err)
	}
	pm, _ := f.Ctl.Partition("t", 0)
	oldLeader := pm.Leader
	if err := f.StopBroker(oldLeader); err != nil {
		t.Fatal(err)
	}
	// New leader serves the full log.
	res, err := f.Fetch("", "t", 0, 0, 100, 0)
	if err != nil {
		t.Fatalf("fetch after failover: %v", err)
	}
	if len(res.Events) != 25 {
		t.Fatalf("events after failover = %d", len(res.Events))
	}
	// Produces keep working against the new leader.
	if _, err := f.Produce("", "t", 0, evs(5, "after"), AcksLeader); err != nil {
		t.Fatalf("produce after failover: %v", err)
	}
	pm2, _ := f.Ctl.Partition("t", 0)
	if pm2.Leader == oldLeader {
		t.Fatal("leader not re-elected")
	}
}

func TestAcksAllRequiresISR(t *testing.T) {
	f := newFabric(t, 2)
	f.MinInsyncReplicas = 2
	mkTopic(t, f, "t", 1, 2)
	if _, err := f.Produce("", "t", 0, evs(1, "e"), AcksAll); err != nil {
		t.Fatal(err)
	}
	pm, _ := f.Ctl.Partition("t", 0)
	// Stop the follower; ISR shrinks below MinInsyncReplicas.
	follower := pm.Replicas[1]
	if follower == pm.Leader {
		follower = pm.Replicas[0]
	}
	if err := f.StopBroker(follower); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("", "t", 0, evs(1, "e"), AcksAll); !errors.Is(err, ErrNotEnoughReplicas) {
		t.Fatalf("err = %v", err)
	}
	// acks=1 still succeeds.
	if _, err := f.Produce("", "t", 0, evs(1, "e"), AcksLeader); err != nil {
		t.Fatalf("acks=1: %v", err)
	}
}

func TestBrokerRestartCatchesUp(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 1, 2)
	pm, _ := f.Ctl.Partition("t", 0)
	follower := pm.Replicas[1]
	if _, err := f.Produce("", "t", 0, evs(10, "a"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if err := f.StopBroker(follower); err != nil {
		t.Fatal(err)
	}
	// Events appended while the follower is down.
	if _, err := f.Produce("", "t", 0, evs(10, "b"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if err := f.RestartBroker(follower); err != nil {
		t.Fatal(err)
	}
	n, _ := f.Node(follower)
	l, ok := n.existingLog(TP{Topic: "t", Partition: 0})
	if !ok || l.EndOffset() != 20 {
		t.Fatalf("follower end = %v (ok=%v), want 20", l.EndOffset(), ok)
	}
	pm2, _ := f.Ctl.Partition("t", 0)
	if !pm2.InISR(follower) {
		t.Fatal("follower not back in ISR")
	}
}

func TestTotalPartitionFailure(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "t", 1, 1)
	if _, err := f.Produce("", "t", 0, evs(3, "e"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if err := f.StopBroker(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Produce("", "t", 0, evs(1, "e"), AcksLeader); !errors.Is(err, ErrLeaderUnavailable) {
		t.Fatalf("produce: %v", err)
	}
	if _, err := f.Fetch("", "t", 0, 0, 10, 0); !errors.Is(err, ErrLeaderUnavailable) {
		t.Fatalf("fetch: %v", err)
	}
	// Recovery restores service with all data.
	if err := f.RestartBroker(0); err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch("", "t", 0, 0, 10, 0)
	if err != nil || len(res.Events) != 3 {
		t.Fatalf("after restart: %d events, %v", len(res.Events), err)
	}
}

func TestOffsetForTimeThroughFabric(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "t", 1, 1)
	if _, err := f.Produce("", "t", 0, evs(5, "e"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	off, err := f.OffsetForTime("t", 0, f.Clock.Now().Add(1e9))
	if err != nil || off != 5 {
		t.Fatalf("off = %d, %v", off, err)
	}
}

func TestPendingEvents(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "t", 2, 1)
	if _, err := f.Produce("", "t", -1, evs(100, "e"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	pending, err := f.PendingEvents("t", "g")
	if err != nil || pending != 100 {
		t.Fatalf("pending = %d, %v", pending, err)
	}
	f.Groups.CommitDirect("g", "t", 0, 30)
	end0, _ := f.EndOffset("t", 0)
	pending, _ = f.PendingEvents("t", "g")
	want := int64(100) - min64(30, end0)
	if pending != want {
		t.Fatalf("pending = %d, want %d", pending, want)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestConcurrentProducers(t *testing.T) {
	f := newFabric(t, 2)
	mkTopic(t, f, "t", 2, 2)
	var wg sync.WaitGroup
	const producers, each = 8, 100
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := f.Produce("", "t", -1, evs(1, fmt.Sprintf("p%d", id)), AcksLeader); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for p := 0; p < 2; p++ {
		end, _ := f.EndOffset("t", p)
		total += end
	}
	if total != producers*each {
		t.Fatalf("total = %d, want %d", total, producers*each)
	}
}

// Property: producing any batch then fetching returns payloads in
// partition order with dense offsets.
func TestProduceFetchProperty(t *testing.T) {
	f := newFabric(t, 1)
	mkTopic(t, f, "prop", 1, 1)
	var produced int64
	check := func(vals [][]byte) bool {
		if len(vals) == 0 {
			return true
		}
		batch := make([]event.Event, len(vals))
		for i, v := range vals {
			batch[i] = event.Event{Value: v}
		}
		base, err := f.Produce("", "prop", 0, batch, AcksLeader)
		if err != nil || base != produced {
			return false
		}
		res, err := f.Fetch("", "prop", 0, base, len(vals), 0)
		if err != nil || len(res.Events) != len(vals) {
			return false
		}
		for i, e := range res.Events {
			if e.Offset != base+int64(i) || string(e.Value) != string(vals[i]) {
				return false
			}
		}
		produced += int64(len(vals))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactAllOnCompactedTopic(t *testing.T) {
	f := newFabric(t, 2)
	if _, err := f.CreateTopic("state", "", cluster.TopicConfig{
		Partitions: 1, ReplicationFactor: 2, Compact: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Many updates to few keys across several segments (segment size is
	// 64 KiB default events; force rolling with big values).
	big := make([]byte, 8<<10)
	for round := 0; round < 3; round++ {
		batch := make([]event.Event, 0, 200)
		for i := 0; i < 200; i++ {
			batch = append(batch, event.Event{Key: []byte(fmt.Sprintf("k%d", i%5)), Value: big})
		}
		if _, err := f.Produce("", "state", 0, batch, AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := f.Fetch("", "state", 0, 0, 10000, 0)
	removed := f.CompactAll()
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	after, err := f.Fetch("", "state", 0, 0, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Events) >= len(before.Events) {
		t.Fatalf("compaction did not shrink the log: %d -> %d", len(before.Events), len(after.Events))
	}
	// The latest value per key survives.
	latest := map[string]int64{}
	for _, ev := range after.Events {
		latest[string(ev.Key)] = ev.Offset
	}
	if len(latest) != 5 {
		t.Fatalf("keys after compaction = %d, want 5", len(latest))
	}
	// Non-compacted topics are untouched.
	mkTopic(t, f, "plain", 1, 1)
	if _, err := f.Produce("", "plain", 0, evs(10, "x"), AcksLeader); err != nil {
		t.Fatal(err)
	}
	if n := f.CompactAll(); n != 0 {
		t.Fatalf("compacted a non-compacted topic: %d", n)
	}
}

// Property: for any member count 1..8 over any partition count 1..32,
// a full set of joins yields a disjoint, complete partition assignment.
func TestGroupAssignmentCoverageProperty(t *testing.T) {
	check := func(membersN, parts uint8) bool {
		m := int(membersN)%8 + 1
		p := int(parts)%32 + 1
		f := NewFabric(nil)
		if err := f.AddBrokers(1, 2, 8); err != nil {
			return false
		}
		if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: p, ReplicationFactor: 1}); err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			if _, err := f.Groups.Join("g", fmt.Sprintf("m%02d", i), []string{"t"}); err != nil {
				return false
			}
		}
		// Final re-join of each member reads the final assignment.
		seen := map[int]int{}
		for i := 0; i < m; i++ {
			asn, err := f.Groups.Join("g", fmt.Sprintf("m%02d", i), []string{"t"})
			if err != nil {
				return false
			}
			_ = asn
		}
		// After the last join, fetch assignments via one more round
		// (membership unchanged => assignment stable per generation).
		for i := 0; i < m; i++ {
			asn, err := f.Groups.Join("g", fmt.Sprintf("m%02d", i), []string{"t"})
			if err != nil {
				return false
			}
			for _, tp := range asn.Partitions {
				seen[tp.Partition]++
			}
		}
		// The m joins above each bump the generation, but with fixed
		// membership range assignment is deterministic: every partition
		// appears exactly once per full round.
		if len(seen) != p {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
