package broker

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/eventlog"
)

// Replicator is the fabric's hook into the inter-broker replication
// subsystem (internal/replication). When attached, the produce path
// stops copying batches to follower logs in-process: the leader appends
// locally, followers pull over the wire, and acks=all waits for the
// partition high watermark to pass the batch. When nil, the fabric
// keeps its original single-process behavior (synchronous in-process
// replication to follower log handles).
type Replicator interface {
	// LeaderAppended notes that the leader's log for tp now ends at
	// end — the leader's own "ack", which feeds high-watermark
	// accounting exactly like a follower's.
	LeaderAppended(tp TP, end int64)
	// WaitCommitted blocks until the partition's high watermark passes
	// lastOffset (every ISR member has replicated the batch), the
	// replication timeout lapses, or the subsystem shuts down. On
	// timeout the subsystem may shrink lagging followers out of the ISR
	// and succeed, provided min.insync.replicas still holds.
	WaitCommitted(tp TP, lastOffset int64) error
	// HighWatermark returns the tracked high watermark for tp, false if
	// the partition is not tracked (no acks=all produce or replica
	// fetch has touched it yet).
	HighWatermark(tp TP) (int64, bool)
	// ReplicaFetch serves a follower pull on the leader: events from
	// the leader log at offset (long-polling up to wait), fenced by the
	// follower's leader epoch. The fetch offset doubles as an ack for
	// everything below it.
	ReplicaFetch(followerID int, tp TP, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, stop <-chan struct{}, dst []event.Event) (ReplicaFetchResult, error)
	// ReplicaAck records a follower's log end offset after it appended
	// a fetched batch, advancing the high watermark (and the follower
	// back into the ISR once caught up) without waiting for its next
	// fetch round-trip.
	ReplicaAck(followerID int, tp TP, epoch, leo int64) error
	// Status reports the partition's tracked replication state for
	// observability (metadata responses, CLI, metrics).
	Status(tp TP) (ReplicaStatus, bool)
}

// ReplicaFetchResult is the leader's answer to one follower pull.
type ReplicaFetchResult struct {
	Events []event.Event
	// LeaderEpoch echoes the leader's current epoch.
	LeaderEpoch int64
	// HighWatermark is the partition HW at serve time; followers expose
	// it to their own (future follower-read) consumers.
	HighWatermark int64
	// LogStart/LogEnd frame the leader log: a follower fetching below
	// LogStart resets to it (the gap is in tiered storage), one
	// fetching above LogEnd diverged and truncates to LogEnd.
	LogStart int64
	LogEnd   int64
}

// FollowerState is one follower's replication progress.
type FollowerState struct {
	Broker int
	// LogEnd is the follower's last acked log end offset.
	LogEnd int64
}

// ReplicaStatus is a partition's tracked replication state.
type ReplicaStatus struct {
	LeaderEpoch   int64
	HighWatermark int64
	// LogEnd is the leader's log end offset.
	LogEnd    int64
	Followers []FollowerState
}

// TieredReader serves reads below the local log start from archived
// segment objects — the paper's "persisted to reliable cloud storage"
// tier. internal/store's Archive implements it.
type TieredReader interface {
	ReadTier(topic string, partition int, offset int64, maxEvents, maxBytes int, dst []event.Event) ([]event.Event, error)
}

// SetReplicator attaches (or, with nil, detaches) the replication
// subsystem. Attach before serving traffic: produces observe the change
// atomically but are not fenced against it.
func (f *Fabric) SetReplicator(r Replicator) {
	if r == nil {
		f.repl.Store((*replicatorBox)(nil))
		return
	}
	f.repl.Store(&replicatorBox{r})
}

// replicatorBox wraps the interface so atomic.Value tolerates differing
// concrete types (including nil) across Store calls.
type replicatorBox struct{ r Replicator }

// Replicator returns the attached replication subsystem, nil if none.
func (f *Fabric) Replicator() Replicator {
	if b, _ := f.repl.Load().(*replicatorBox); b != nil {
		return b.r
	}
	return nil
}

// SetTieredReader attaches archive-backed tiered reads for offsets
// below local retention.
func (f *Fabric) SetTieredReader(tr TieredReader) {
	if tr == nil {
		f.tiered.Store((*tieredBox)(nil))
		return
	}
	f.tiered.Store(&tieredBox{tr})
}

type tieredBox struct{ tr TieredReader }

func (f *Fabric) tieredReader() TieredReader {
	if b, _ := f.tiered.Load().(*tieredBox); b != nil {
		return b.tr
	}
	return nil
}

// ReplicaFetch is the fabric entry point for the wire server's
// OpReplicaFetch: it verifies this fabric hosts the partition leader and
// delegates to the replication subsystem.
func (f *Fabric) ReplicaFetch(followerID int, topic string, partition int, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, stop <-chan struct{}, dst []event.Event) (ReplicaFetchResult, error) {
	r := f.Replicator()
	if r == nil {
		return ReplicaFetchResult{}, ErrNoReplicator
	}
	return r.ReplicaFetch(followerID, TP{Topic: topic, Partition: partition}, epoch, offset, maxEvents, maxBytes, wait, stop, dst)
}

// ReplicaAck is the fabric entry point for the wire server's
// OpReplicaAck.
func (f *Fabric) ReplicaAck(followerID int, topic string, partition int, epoch, leo int64) error {
	r := f.Replicator()
	if r == nil {
		return ErrNoReplicator
	}
	return r.ReplicaAck(followerID, TP{Topic: topic, Partition: partition}, epoch, leo)
}

// ReplicaStatusFor reports a partition's replication state, false when
// no replication subsystem is attached or the partition is untracked.
func (f *Fabric) ReplicaStatusFor(topic string, partition int) (ReplicaStatus, bool) {
	r := f.Replicator()
	if r == nil {
		return ReplicaStatus{}, false
	}
	return r.Status(TP{Topic: topic, Partition: partition})
}

// LeaderLogInfo resolves a partition's leader log and current leader
// epoch — the read surface the replication subsystem serves follower
// fetches from. Fails like any data-plane call when the partition is
// leaderless (ErrNoLeader) or its leader is down (ErrLeaderUnavailable).
func (f *Fabric) LeaderLogInfo(topic string, partition int) (*eventlog.Log, int64, error) {
	pr, err := f.partitionRoute(topic, partition)
	if err != nil {
		return nil, 0, err
	}
	return pr.log, pr.leaderEpoch, nil
}

// BrokerLog returns broker id's own replica log for the partition,
// opening (and, for DataDir-backed brokers, replaying) it if needed —
// the local log a replication fetch loop appends to.
func (f *Fabric) BrokerLog(id int, topic string, partition int) (*eventlog.Log, error) {
	n, ok := f.Node(id)
	if !ok {
		return nil, fmt.Errorf("broker: unknown broker %d", id)
	}
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(meta.Partitions) {
		return nil, fmt.Errorf("%w: %s/%d", ErrNoPartition, topic, partition)
	}
	return n.log(TP{Topic: topic, Partition: partition}, logConfig(meta.Config))
}

// CrashBroker simulates kill -9: the node's in-memory state is dropped
// on the spot — no graceful leadership handoff, no flush beyond what
// each append batch already persisted — and only then does the control
// plane notice the death (session expiry, leader re-election). Replica
// logs backed by a DataDir keep their segment files and replay them in
// RecoverBroker; in-memory logs are simply gone.
func (f *Fabric) CrashBroker(id int) error {
	n, ok := f.Node(id)
	if !ok {
		return fmt.Errorf("broker: unknown broker %d", id)
	}
	n.down.Store(true)
	n.dropLogs()
	f.Reg.ExpireSession(n.session)
	f.Ctl.HandleBrokerFailure(id)
	f.Metrics.Counter("fabric.broker_failures").Inc()
	return nil
}

// RecoverBroker brings a crashed broker back the durable way: every
// replica log it hosts is reopened (replaying local segment files), the
// broker re-registers, and it starts serving — but unlike
// RestartBroker it does NOT rejoin ISR sets wholesale. The replication
// subsystem's fetch loops truncate each replica to the leader epoch
// fence, catch up over OpReplicaFetch, and expand the ISR per partition
// once the replica's fetch offset reaches the leader's log end.
func (f *Fabric) RecoverBroker(id int) error {
	n, ok := f.Node(id)
	if !ok {
		return fmt.Errorf("broker: unknown broker %d", id)
	}
	if !n.Down() {
		return nil
	}
	for _, topic := range f.Ctl.Topics() {
		meta, err := f.Ctl.Topic(topic)
		if err != nil {
			continue
		}
		for _, pm := range meta.Partitions {
			if !pm.HasReplica(id) {
				continue
			}
			tp := TP{Topic: topic, Partition: pm.ID}
			if _, err := n.log(tp, logConfig(meta.Config)); err != nil {
				return fmt.Errorf("broker: recover %s on %d: %w", tp, id, err)
			}
		}
	}
	sess, err := f.Ctl.RegisterBroker(n.InfoCopy())
	if err != nil {
		return err
	}
	n.session = sess
	n.down.Store(false)
	return nil
}

// tieredFetch serves a fetch whose offset fell below the local log
// start from the archive tier, if one is attached. The error passed in
// is the log's out-of-range error, returned unchanged when tiered reads
// cannot help.
func (f *Fabric) tieredFetch(pr *partitionRoute, topic string, partition int, offset int64, maxEvents, maxBytes int, dst []event.Event, logErr error) (FetchResult, error) {
	tr := f.tieredReader()
	if tr == nil || offset < 0 || !errors.Is(logErr, eventlog.ErrOffsetOutOfRange) || offset >= pr.log.StartOffset() {
		return FetchResult{}, logErr
	}
	evs, err := tr.ReadTier(topic, partition, offset, maxEvents, maxBytes, dst)
	if err != nil || len(evs) == 0 {
		// Archive miss or archive trouble: the original out-of-range
		// error describes the local log truthfully.
		return FetchResult{}, logErr
	}
	f.cFetched.Add(int64(len(evs)))
	return FetchResult{Events: evs, HighWatermark: pr.log.EndOffset(), StartOffset: offset}, nil
}
