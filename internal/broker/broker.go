// Package broker implements the data plane of the Octopus event fabric:
// a cluster of broker nodes hosting replicated, partitioned commit logs
// with Kafka-compatible semantics — keyed partitioning, acks=0/1/all,
// high-watermark reads, consumer groups with committed offsets, leader
// failover, and per-topic ACL enforcement. It is the from-scratch
// replacement for the AWS MSK cluster of §IV-A.
package broker

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/vclock"
	"repro/internal/zk"
)

// Acks is the producer acknowledgment level (§IV-F: "clients can
// configure the number of acknowledgments required").
type Acks int

// Acknowledgment levels.
const (
	// AcksNone returns before any broker has durably appended.
	AcksNone Acks = 0
	// AcksLeader returns once the partition leader has appended.
	AcksLeader Acks = 1
	// AcksAll returns once every in-sync replica has appended.
	AcksAll Acks = -1
)

func (a Acks) String() string {
	switch a {
	case AcksNone:
		return "0"
	case AcksLeader:
		return "1"
	case AcksAll:
		return "all"
	}
	return fmt.Sprintf("Acks(%d)", int(a))
}

// Errors returned by the data plane.
var (
	// ErrLeaderUnavailable reports a produce/fetch against a partition
	// whose leader is down and not yet re-elected.
	ErrLeaderUnavailable = errors.New("broker: partition leader unavailable")
	// ErrNoLeader reports a partition left leaderless (Leader = -1): no
	// in-sync replica survives to elect. It wraps ErrLeaderUnavailable so
	// existing errors.Is(err, ErrLeaderUnavailable) checks keep matching,
	// while routers can distinguish "leader moved, refetch metadata"
	// (ErrLeaderUnavailable alone) from "nobody to route to, back off
	// until a replica returns" (ErrNoLeader).
	ErrNoLeader = fmt.Errorf("no in-sync replica survives: %w", ErrLeaderUnavailable)
	// ErrBrokerDown reports an operation routed to a stopped broker.
	ErrBrokerDown = errors.New("broker: broker is down")
	// ErrNoPartition reports an out-of-range partition id.
	ErrNoPartition = errors.New("broker: no such partition")
	// ErrNotEnoughReplicas reports acks=all with too few in-sync replicas.
	ErrNotEnoughReplicas = errors.New("broker: not enough in-sync replicas")
	// ErrFencedEpoch reports a replica fetch or ack carrying a stale
	// leader epoch: the partition elected a newer leader, and the caller
	// must refetch metadata, truncate to the new leader's log and retry.
	ErrFencedEpoch = errors.New("broker: fenced leader epoch")
	// ErrNoReplicator reports a replication op on a fabric without an
	// attached replication subsystem.
	ErrNoReplicator = errors.New("broker: replication not enabled")
)

// TP identifies a topic partition.
type TP struct {
	Topic     string
	Partition int
}

func (tp TP) String() string { return fmt.Sprintf("%s-%d", tp.Topic, tp.Partition) }

// Node is one broker: a host for partition replica logs.
type Node struct {
	ID      int
	Info    cluster.BrokerInfo
	session int64
	down    atomic.Bool

	mu   sync.RWMutex
	logs map[TP]*eventlog.Log
}

func newNode(info cluster.BrokerInfo) *Node {
	return &Node{ID: info.ID, Info: info, logs: make(map[TP]*eventlog.Log)}
}

// log returns (creating if needed) the replica log for tp. Nodes with a
// DataDir open file-backed logs under <dir>/<topic>-p<partition>,
// replaying any segment files a previous incarnation left behind.
func (n *Node) log(tp TP, cfg eventlog.Config) (*eventlog.Log, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.logs[tp]
	if !ok {
		if n.Info.DataDir != "" {
			cfg.Dir = filepath.Join(n.Info.DataDir, fmt.Sprintf("%s-p%d", tp.Topic, tp.Partition))
		}
		var err error
		l, err = eventlog.Open(cfg)
		if err != nil {
			return nil, fmt.Errorf("broker %d: open log %s: %w", n.ID, tp, err)
		}
		n.logs[tp] = l
	}
	return l, nil
}

// dropLogs abruptly discards the node's in-memory log state — the
// kill -9 half of a crash simulation. File-backed logs keep their
// segment files (reopened and replayed on recovery); purely in-memory
// logs lose everything, exactly like a real process death.
func (n *Node) dropLogs() {
	n.mu.Lock()
	logs := n.logs
	n.logs = make(map[TP]*eventlog.Log)
	n.mu.Unlock()
	for _, l := range logs {
		l.Close()
	}
}

func (n *Node) existingLog(tp TP) (*eventlog.Log, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.logs[tp]
	return l, ok
}

// ReplicaLog returns the node's replica log for tp if it hosts one —
// exported so cluster tests and tools can probe per-broker replica
// state (catch-up progress, end offsets) directly.
func (n *Node) ReplicaLog(tp TP) (*eventlog.Log, bool) {
	return n.existingLog(tp)
}

// Down reports whether the node is stopped (failure injection).
func (n *Node) Down() bool { return n.down.Load() }

// SetAddr records the node's advertised wire address (and keeps it for
// re-registration on restart). The clusternet serving layer calls it
// once per broker after binding the broker's listener.
func (n *Node) SetAddr(addr string) {
	n.mu.Lock()
	n.Info.Addr = addr
	n.mu.Unlock()
}

// InfoCopy returns a consistent copy of the node's description.
func (n *Node) InfoCopy() cluster.BrokerInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.Info
}

// Fabric is the assembled event fabric: controller + broker nodes +
// group coordinator + security. All client-facing operations go through
// Fabric methods; the wire layer (internal/wire) and the SDK
// (internal/client) are thin shims over them.
type Fabric struct {
	Reg   *zk.Registry
	Ctl   *cluster.Controller
	ACL   *auth.ACLStore
	Auth  *auth.Service
	Clock vclock.Clock

	mu    sync.RWMutex
	nodes map[int]*Node

	// routes caches per-topic routing tables (decoded metadata + leader
	// log handles), keyed by the controller's metadata epoch; see route.go.
	routes sync.Map // map[string]*topicRoute
	// routePruned is the last epoch at which deleted topics were swept
	// out of the route cache.
	routePruned atomic.Int64

	Groups  *Coordinator
	Metrics *metrics.Registry
	// Quotas enforces per-identity produce rate limits (§VII-C).
	Quotas *Quotas

	// MinInsyncReplicas is the minimum ISR size accepted by acks=all
	// produces (Kafka's min.insync.replicas; default 1).
	MinInsyncReplicas int

	// repl is the attached inter-broker replication subsystem (nil when
	// the fabric runs in the single-process mode, where replication is a
	// synchronous in-process append). Stored atomically: produce reads
	// it per call.
	repl atomic.Value // Replicator
	// tiered serves reads below the local log start from archived
	// segments (nil = no tiered storage attached).
	tiered atomic.Value // TieredReader

	// Hot-path counters, resolved once so produce/fetch skip the
	// registry's name lookup (and its mutex) per call.
	cProduced    *metrics.Counter
	cFetched     *metrics.Counter
	cRateLimited *metrics.Counter

	// hot is the pre-resolved hot-path histogram set (nil = hot-path
	// metrics disabled, the baseline the instrumentation-overhead gate
	// compares against). Stored atomically so it can be toggled without
	// racing in-flight produces.
	hot atomic.Pointer[fabricHot]
	// tracer samples 1-in-N per-partition produces into a stage-trace
	// ring; see trace.go.
	tracer *ProduceTracer
}

// fabricHot is the fabric's pre-resolved hot-path metric handles: the
// data plane touches these raw pointers only, never a registry map or
// mutex. Latencies are nanoseconds, sizes are events or payload bytes.
type fabricHot struct {
	produceNs    *metrics.BucketHist // fabric.produce_ns
	produceBatch *metrics.BucketHist // fabric.produce_batch_events
	appendNs     *metrics.BucketHist // fabric.append_ns
	commitWaitNs *metrics.BucketHist // fabric.commit_wait_ns
	fetchNs      *metrics.BucketHist // fabric.fetch_ns
	fetchBatch   *metrics.BucketHist // fabric.fetch_batch_events
	bytesIn      *metrics.Counter    // fabric.bytes_in
	bytesOut     *metrics.Counter    // fabric.bytes_out
	// Eventlog-level observers, attached to partition logs at
	// route-build time (eventlog.Config.AppendLatency / AppendBytes).
	logAppendNs    *metrics.BucketHist // eventlog.append_ns
	logAppendBytes *metrics.BucketHist // eventlog.append_bytes
}

func newFabricHot(r *metrics.Registry) *fabricHot {
	return &fabricHot{
		produceNs:      r.BucketHist("fabric.produce_ns"),
		produceBatch:   r.BucketHist("fabric.produce_batch_events"),
		appendNs:       r.BucketHist("fabric.append_ns"),
		commitWaitNs:   r.BucketHist("fabric.commit_wait_ns"),
		fetchNs:        r.BucketHist("fabric.fetch_ns"),
		fetchBatch:     r.BucketHist("fabric.fetch_batch_events"),
		bytesIn:        r.Counter("fabric.bytes_in"),
		bytesOut:       r.Counter("fabric.bytes_out"),
		logAppendNs:    r.BucketHist("eventlog.append_ns"),
		logAppendBytes: r.BucketHist("eventlog.append_bytes"),
	}
}

// SetHotPathMetrics enables or disables the hot-path histogram set.
// Disabling exists for the instrumentation-overhead gate (and for
// callers that want the last fraction of a percent back); counters
// like fabric.produced stay on either way. Logs opened while disabled
// carry no eventlog observers until their route is rebuilt.
func (f *Fabric) SetHotPathMetrics(enabled bool) {
	if enabled {
		f.hot.Store(newFabricHot(f.Metrics))
	} else {
		f.hot.Store(nil)
	}
	// Force route rebuilds so eventlog observer wiring follows suit.
	f.routes.Range(func(k, _ any) bool {
		f.routes.Delete(k)
		return true
	})
}

// Tracer returns the fabric's produce stage tracer.
func (f *Fabric) Tracer() *ProduceTracer { return f.tracer }

// NewFabric assembles a fabric over a fresh registry.
func NewFabric(clock vclock.Clock) *Fabric {
	if clock == nil {
		clock = vclock.Real{}
	}
	reg := zk.NewRegistry()
	f := &Fabric{
		Reg:               reg,
		Ctl:               cluster.NewController(reg, clock),
		ACL:               auth.NewACLStore(reg),
		Auth:              auth.NewService(clock, 0),
		Clock:             clock,
		nodes:             make(map[int]*Node),
		Metrics:           metrics.NewRegistry(),
		Quotas:            NewQuotas(clock),
		MinInsyncReplicas: 1,
	}
	f.Groups = NewCoordinator(f)
	f.cProduced = f.Metrics.Counter("fabric.produced")
	f.cFetched = f.Metrics.Counter("fabric.fetched")
	f.cRateLimited = f.Metrics.Counter("fabric.rate_limited")
	f.hot.Store(newFabricHot(f.Metrics))
	f.tracer = newProduceTracer(defaultTraceEvery, defaultTraceRing)
	return f
}

// AddBroker registers and starts a broker node.
func (f *Fabric) AddBroker(info cluster.BrokerInfo) (*Node, error) {
	n := newNode(info)
	sess, err := f.Ctl.RegisterBroker(info)
	if err != nil {
		return nil, err
	}
	n.session = sess
	f.mu.Lock()
	f.nodes[info.ID] = n
	f.mu.Unlock()
	return n, nil
}

// AddBrokers registers n identical brokers with ids 0..n-1.
func (f *Fabric) AddBrokers(n, vcpus, memGB int) error {
	for i := 0; i < n; i++ {
		if _, err := f.AddBroker(cluster.BrokerInfo{ID: i, VCPUs: vcpus, MemGB: memGB}); err != nil {
			return err
		}
	}
	return nil
}

// Node returns the broker with the given id.
func (f *Fabric) Node(id int) (*Node, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[id]
	return n, ok
}

// NodeIDs returns the ids of every broker ever added (up or down),
// sorted.
func (f *Fabric) NodeIDs() []int {
	f.mu.RLock()
	ids := make([]int, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	f.mu.RUnlock()
	sort.Ints(ids)
	return ids
}

// PartitionLeader resolves the partition's current leader broker id
// through the epoch-keyed route cache (no registry read on the hot
// path). A leaderless partition returns -1 with ErrLeaderUnavailable.
// The per-broker wire servers use it to refuse misrouted data-plane
// requests with ErrNotLeader instead of silently serving them.
func (f *Fabric) PartitionLeader(topic string, partition int) (int, error) {
	rt, err := f.route(topic)
	if err != nil {
		return -1, err
	}
	if partition < 0 || partition >= len(rt.parts) {
		return -1, fmt.Errorf("%w: %s/%d", ErrNoPartition, topic, partition)
	}
	id := rt.parts[partition].leaderID
	if id < 0 {
		return -1, fmt.Errorf("%w: %s/%d", ErrNoLeader, topic, partition)
	}
	return id, nil
}

// BrokerStatus is one broker's entry in a cluster snapshot.
type BrokerStatus struct {
	Info cluster.BrokerInfo
	Up   bool
}

// ClusterSnapshot is the cluster-wide metadata document served by the
// wire layer's OpMetadata: the epoch it was built at, every broker the
// fabric knows (including down ones, so clients can tell "gone" from
// "never existed") and the requested topics' full placement.
type ClusterSnapshot struct {
	Epoch   int64
	Brokers []BrokerStatus
	Topics  []*cluster.TopicMeta
}

// ClusterSnapshot builds the metadata document for the given topics
// (nil or empty = every topic). The epoch is read before the content,
// the same ordering route-cache builds use: a concurrent mutation can
// only make the snapshot look older than it is, so a client keying its
// routing table by the epoch re-fetches rather than trusting stale
// state.
func (f *Fabric) ClusterSnapshot(topics []string) ClusterSnapshot {
	snap := ClusterSnapshot{Epoch: f.Ctl.Epoch()}
	for _, id := range f.NodeIDs() {
		n, ok := f.Node(id)
		if !ok {
			continue
		}
		snap.Brokers = append(snap.Brokers, BrokerStatus{Info: n.InfoCopy(), Up: !n.Down()})
	}
	if len(topics) == 0 {
		topics = f.Ctl.Topics()
	}
	for _, t := range topics {
		meta, err := f.Ctl.Topic(t)
		if err != nil {
			continue // deleted or unknown: simply absent from the response
		}
		snap.Topics = append(snap.Topics, meta)
	}
	return snap
}

// logConfig derives the storage config for a topic.
func logConfig(cfg cluster.TopicConfig) eventlog.Config {
	lc := eventlog.DefaultConfig()
	lc.Retention = cfg.Retention
	lc.Compact = cfg.Compact
	return lc
}

// CreateTopic provisions a topic and grants the owner full permissions,
// combining the controller assignment with the ACL bootstrap that the
// OWS PUT /topic/<topic> route performs.
func (f *Fabric) CreateTopic(name, owner string, cfg cluster.TopicConfig) (*cluster.TopicMeta, error) {
	meta, err := f.Ctl.CreateTopic(name, owner, cfg)
	if err != nil {
		return nil, err
	}
	if owner != "" {
		if err := f.ACL.Grant(name, owner); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

// partitionFor picks the partition for an event: keyed events hash their
// key (stable routing, per-key ordering); unkeyed events round-robin.
var rrCounter atomic.Uint64

func partitionFor(ev *event.Event, parts int) int {
	if parts <= 1 {
		return 0
	}
	if len(ev.Key) > 0 {
		// Shared with the leader-direct wire client's pre-partitioning:
		// both sides MUST place a key identically or client-side
		// bucketing misroutes.
		return PartitionForKey(ev.Key, parts)
	}
	return int(rrCounter.Add(1) % uint64(parts))
}

// Produce appends events to a topic. partition < 0 selects per event by
// key hash / round-robin. identity is checked for WRITE permission
// unless empty (trusted in-process caller). It returns the base offset
// of the first appended event on the (single) chosen partition when all
// events map to one partition, else the offset of the last append.
func (f *Fabric) Produce(identity, topic string, partition int, evs []event.Event, acks Acks) (int64, error) {
	return f.produce(identity, topic, partition, evs, acks, false)
}

// ProduceDonated is Produce for callers that donate ownership of the
// events' underlying buffers to the fabric: the Key/Value bytes are
// stored as-is (no arena clone), so the caller must never modify or
// reuse them afterwards — they live as long as the retained log records.
// The wire server uses it to hand a decoded produce frame straight to
// the log, deleting the second copy the seed made per remote produce.
func (f *Fabric) ProduceDonated(identity, topic string, partition int, evs []event.Event, acks Acks) (int64, error) {
	return f.produce(identity, topic, partition, evs, acks, true)
}

func (f *Fabric) produce(identity, topic string, partition int, evs []event.Event, acks Acks, donated bool) (int64, error) {
	if len(evs) == 0 {
		return 0, nil
	}
	h := f.hot.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	if identity != "" {
		if err := f.ACL.Check(topic, identity, auth.PermWrite); err != nil {
			return 0, err
		}
	}
	if err := f.Quotas.Admit(identity, len(evs)); err != nil {
		f.cRateLimited.Add(int64(len(evs)))
		return 0, err
	}
	rt, err := f.route(topic)
	if err != nil {
		return 0, err
	}
	parts := rt.meta.Config.Partitions
	if partition >= parts {
		return 0, fmt.Errorf("%w: %s/%d", ErrNoPartition, topic, partition)
	}
	// Route each event, then deep-copy the whole batch through one
	// contiguous arena into pooled per-partition buckets: the seed's
	// per-call partition map and per-event Clone were the produce path's
	// dominant allocations. Donated batches skip the copy entirely —
	// their bytes already belong to the fabric.
	sc := scratchPool.Get().(*produceScratch)
	sc.prepare(len(evs), parts)
	for i := range evs {
		p := partition
		if p < 0 {
			// Always in [0, parts): normalize() guarantees parts >= 1.
			p = partitionFor(&evs[i], parts)
		}
		sc.pidx[i] = p
	}
	if donated {
		bucketDonated(evs, sc.pidx, rt.meta.Name, sc)
	} else {
		arenaClone(evs, sc.pidx, rt.meta.Name, sc)
	}
	var base int64 = -1
	for _, p := range sc.order {
		off, err := f.producePartition(rt, p, sc.buckets[p], acks, h)
		if err != nil {
			sc.release()
			return 0, err
		}
		if base < 0 {
			base = off
		}
	}
	sc.release()
	f.cProduced.Add(int64(len(evs)))
	if h != nil {
		var nb int64
		for i := range evs {
			nb += int64(len(evs[i].Key) + len(evs[i].Value))
		}
		h.bytesIn.Add(nb)
		h.produceBatch.Observe(int64(len(evs)))
		h.produceNs.Observe(int64(time.Since(t0)))
	}
	return base, nil
}

func (f *Fabric) producePartition(rt *topicRoute, p int, evs []event.Event, acks Acks, h *fabricHot) (int64, error) {
	pr := &rt.parts[p]
	if pr.leaderID < 0 || pr.leader == nil {
		return 0, fmt.Errorf("%w: %s/%d", ErrNoLeader, rt.meta.Name, p)
	}
	if pr.leader.Down() {
		return 0, fmt.Errorf("%w: %s/%d leader %d", ErrLeaderUnavailable, rt.meta.Name, p, pr.leaderID)
	}
	if acks == AcksAll && pr.isr < f.MinInsyncReplicas {
		return 0, fmt.Errorf("%w: isr=%d min=%d", ErrNotEnoughReplicas, pr.isr, f.MinInsyncReplicas)
	}
	// Stage timestamps are captured when hot-path histograms are on or
	// this call drew the 1-in-N trace sample; the common disabled path
	// pays one atomic increment and no clock reads.
	sampled := f.tracer.shouldSample()
	var t0, tAppend, tRepl time.Time
	if h != nil || sampled {
		t0 = time.Now()
	}
	now := f.Clock.Now()
	base, err := pr.log.AppendBatch(evs, now)
	if err != nil {
		return 0, err
	}
	if h != nil || sampled {
		tAppend = time.Now()
		if h != nil {
			h.appendNs.Observe(int64(tAppend.Sub(t0)))
		}
		tRepl = tAppend
	}
	if r := f.Replicator(); r != nil {
		// Wire replication: followers pull this batch over
		// OpReplicaFetch. The leader's append advances its own entry in
		// the high-watermark accounting; acks=all waits for the HW to
		// pass the batch (every ISR member replicated it) instead of
		// copying to follower logs in-process.
		tp := TP{Topic: rt.meta.Name, Partition: p}
		end := base + int64(len(evs))
		r.LeaderAppended(tp, end)
		if acks == AcksAll {
			if err := r.WaitCommitted(tp, end-1); err != nil {
				return 0, fmt.Errorf("broker: replicate %s-%d: %w", rt.meta.Name, p, err)
			}
			if h != nil || sampled {
				tRepl = time.Now()
				if h != nil {
					h.commitWaitNs.Observe(int64(tRepl.Sub(tAppend)))
				}
			}
		}
		if sampled {
			f.recordTrace(t0, tAppend, tRepl, len(evs), acks)
		}
		return base, nil
	}
	// Single-process mode: replicate to in-sync followers synchronously
	// within the produce call — followers apply the same batch at the
	// same offsets, so logs stay identical and failover is lossless for
	// acks>=1 produces. The follower handles were resolved at
	// route-build time; any ISR change bumps the metadata epoch and
	// rebuilds the route before the next call.
	for _, fl := range pr.followers {
		if _, err := fl.AppendBatch(evs, now); err != nil {
			return 0, fmt.Errorf("broker: replicate %s-%d: %w", rt.meta.Name, p, err)
		}
	}
	if len(pr.followers) > 0 && (h != nil || sampled) {
		tRepl = time.Now()
		if h != nil {
			h.commitWaitNs.Observe(int64(tRepl.Sub(tAppend)))
		}
	}
	if sampled {
		f.recordTrace(t0, tAppend, tRepl, len(evs), acks)
	}
	return base, nil
}

// recordTrace files one sampled produce into the stage-trace ring.
// tAppend/tRepl may be zero when hot metrics were off and the clock
// reads were skipped mid-path; they degrade to zero-length stages.
func (f *Fabric) recordTrace(t0, tAppend, tRepl time.Time, events int, acks Acks) {
	rec := TraceRecord{StartUnixNano: t0.UnixNano(), Events: int32(events), Acks: int8(acks)}
	if !tAppend.IsZero() {
		rec.StageNs[StageAppend] = int64(tAppend.Sub(t0))
		rec.StageNs[StageReplicate] = int64(tRepl.Sub(tAppend))
		rec.StageNs[StageAck] = int64(time.Since(tRepl))
	}
	f.tracer.record(rec)
}

// FetchResult is the response to a Fetch.
type FetchResult struct {
	Events []event.Event
	// HighWatermark is the end offset of the partition at read time.
	HighWatermark int64
	// StartOffset is the earliest retained offset (reads below it fail).
	StartOffset int64
}

// FetchBuffer is a reusable consume-side receive buffer: a byte arena
// that wire transports read response payloads into, and an event slice
// that fetches decode into. A fetch session owns one per partition and
// hands it back on every poll, so the steady-state consume path stops
// allocating once the buffer has grown to the workload's batch size.
// Contents are valid only until the buffer's next use.
type FetchBuffer struct {
	// Arena receives the raw response payload (wire transports only);
	// decoded events alias it.
	Arena []byte
	// Events is the reused result slice.
	Events []event.Event
}

// Fetch reads up to maxEvents events (and at most maxBytes payload bytes,
// if > 0) from the partition starting at offset. identity is checked for
// READ permission unless empty. The byte budget follows Log.ReadBytes
// semantics: at least one event is returned when any is available, and
// only the first event may exceed the budget.
func (f *Fabric) Fetch(identity, topic string, partition int, offset int64, maxEvents, maxBytes int) (FetchResult, error) {
	return f.fetch(identity, topic, partition, offset, maxEvents, maxBytes, nil)
}

// FetchInto is Fetch appending into dst (reusing its capacity) — the
// in-process half of the consumer's zero-copy fetch session. Callers
// pass dst with len 0; the returned FetchResult.Events is the grown
// slice, whose events alias the partition log's records.
func (f *Fabric) FetchInto(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, dst []event.Event) (FetchResult, error) {
	if dst == nil {
		dst = []event.Event{}
	}
	return f.fetch(identity, topic, partition, offset, maxEvents, maxBytes, dst)
}

func (f *Fabric) fetch(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, dst []event.Event) (FetchResult, error) {
	h := f.hot.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	if identity != "" {
		if err := f.ACL.Check(topic, identity, auth.PermRead); err != nil {
			return FetchResult{}, err
		}
	}
	pr, err := f.partitionRoute(topic, partition)
	if err != nil {
		return FetchResult{}, err
	}
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	evs, err := pr.log.ReadBudgetInto(offset, maxEvents, maxBytes, dst)
	if err != nil {
		// An offset below local retention may still live in the archive
		// tier: serve it from there instead of failing the consumer.
		return f.tieredFetch(pr, topic, partition, offset, maxEvents, maxBytes, dst, err)
	}
	f.cFetched.Add(int64(len(evs)))
	if h != nil {
		var nb int64
		for i := range evs {
			nb += int64(len(evs[i].Key) + len(evs[i].Value))
		}
		h.bytesOut.Add(nb)
		h.fetchBatch.Observe(int64(len(evs)))
		h.fetchNs.Observe(int64(time.Since(t0)))
	}
	res := FetchResult{Events: evs, HighWatermark: pr.log.EndOffset(), StartOffset: pr.log.StartOffset()}
	if r := f.Replicator(); r != nil {
		if hw, ok := r.HighWatermark(TP{Topic: topic, Partition: partition}); ok {
			res.HighWatermark = hw
		}
	}
	return res, nil
}

// FetchWaitInto is FetchInto with a long-poll: when the partition has
// nothing at offset, it parks on the leader log's tail waiter for up to
// wait (or until stop closes) and retries once after waking — one
// blocked goroutine instead of a fetch loop against an empty partition.
// A wait of zero degenerates to FetchInto. The wire server's streaming
// fetch pumps and WaitMaxMS long-polls, and the Direct transport's
// long-poll extension, all ride this.
func (f *Fabric) FetchWaitInto(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, stop <-chan struct{}, dst []event.Event) (FetchResult, error) {
	res, err := f.fetch(identity, topic, partition, offset, maxEvents, maxBytes, dst)
	if err != nil || len(res.Events) > 0 || wait <= 0 {
		return res, err
	}
	pr, err := f.partitionRoute(topic, partition)
	if err != nil {
		return FetchResult{}, err
	}
	end, werr := pr.log.WaitAppend(offset, wait, stop)
	if werr != nil || end <= offset {
		// Log closed, timeout, or stop: report the empty result; the
		// caller's next poll (or teardown) takes it from here.
		return res, nil
	}
	return f.fetch(identity, topic, partition, offset, maxEvents, maxBytes, dst)
}

// LeaderLog returns the leader replica's log for a partition — the
// handle behind fetch-side offset queries, exported so tests and tools
// can probe log-level state (read counts, tail waiters) directly.
func (f *Fabric) LeaderLog(topic string, partition int) (*eventlog.Log, error) {
	pr, err := f.partitionRoute(topic, partition)
	if err != nil {
		return nil, err
	}
	return pr.log, nil
}

// EndOffset returns the partition's end offset (the next offset to be
// assigned), i.e. the "latest" consume position.
func (f *Fabric) EndOffset(topic string, partition int) (int64, error) {
	l, err := f.LeaderLog(topic, partition)
	if err != nil {
		return 0, err
	}
	return l.EndOffset(), nil
}

// StartOffset returns the earliest retained offset.
func (f *Fabric) StartOffset(topic string, partition int) (int64, error) {
	l, err := f.LeaderLog(topic, partition)
	if err != nil {
		return 0, err
	}
	return l.StartOffset(), nil
}

// OffsetForTime returns the first offset at or after t (§IV-F: consume
// "after a certain timestamp").
func (f *Fabric) OffsetForTime(topic string, partition int, t time.Time) (int64, error) {
	l, err := f.LeaderLog(topic, partition)
	if err != nil {
		return 0, err
	}
	return l.OffsetForTime(t), nil
}

// PendingEvents returns the total backlog (end offset minus committed
// group offset) across all partitions — the "processing pressure" the
// trigger autoscaler evaluates (§IV-D).
func (f *Fabric) PendingEvents(topic, group string) (int64, error) {
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		return 0, err
	}
	var total int64
	for p := 0; p < meta.Config.Partitions; p++ {
		end, err := f.EndOffset(topic, p)
		if err != nil {
			continue // leaderless partitions contribute no backlog info
		}
		committed := f.Groups.Committed(group, topic, p)
		if committed < 0 {
			committed = 0
		}
		if end > committed {
			total += end - committed
		}
	}
	return total, nil
}

// EnforceRetention applies retention to every replica log; brokers run
// this periodically. It returns total records deleted.
func (f *Fabric) EnforceRetention() int {
	now := f.Clock.Now()
	f.mu.RLock()
	nodes := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.mu.RUnlock()
	deleted := 0
	for _, n := range nodes {
		n.mu.RLock()
		logs := make([]*eventlog.Log, 0, len(n.logs))
		for _, l := range n.logs {
			logs = append(logs, l)
		}
		n.mu.RUnlock()
		for _, l := range logs {
			deleted += l.EnforceRetention(now)
		}
	}
	return deleted
}

// CompactAll runs key compaction on every compaction-enabled topic's
// replica logs (the topic "cleanup policy" of §IV-F). It returns total
// records removed.
func (f *Fabric) CompactAll() int {
	removed := 0
	for _, topic := range f.Ctl.Topics() {
		meta, err := f.Ctl.Topic(topic)
		if err != nil || !meta.Config.Compact {
			continue
		}
		for p := 0; p < meta.Config.Partitions; p++ {
			for _, r := range meta.Partitions[p].Replicas {
				n, ok := f.Node(r)
				if !ok {
					continue
				}
				if l, ok := n.existingLog(TP{Topic: topic, Partition: p}); ok {
					removed += l.Compact()
				}
			}
		}
	}
	return removed
}

// StopBroker simulates a broker failure: the node stops serving, its
// registry session expires, and the controller re-elects leaders.
func (f *Fabric) StopBroker(id int) error {
	n, ok := f.Node(id)
	if !ok {
		return fmt.Errorf("broker: unknown broker %d", id)
	}
	n.down.Store(true)
	f.Reg.ExpireSession(n.session)
	f.Ctl.HandleBrokerFailure(id)
	f.Metrics.Counter("fabric.broker_failures").Inc()
	return nil
}

// RestartBroker brings a stopped broker back: it catches its replicas up
// from the current leaders, re-registers, and rejoins ISR sets.
func (f *Fabric) RestartBroker(id int) error {
	n, ok := f.Node(id)
	if !ok {
		return fmt.Errorf("broker: unknown broker %d", id)
	}
	if !n.Down() {
		return nil
	}
	// Catch up every replica this node hosts from the current leader.
	for _, topic := range f.Ctl.Topics() {
		meta, err := f.Ctl.Topic(topic)
		if err != nil {
			continue
		}
		for _, pm := range meta.Partitions {
			if !pm.HasReplica(id) || pm.Leader < 0 || pm.Leader == id {
				continue
			}
			tp := TP{Topic: topic, Partition: pm.ID}
			leader, ok := f.Node(pm.Leader)
			if !ok || leader.Down() {
				continue
			}
			src, ok := leader.existingLog(tp)
			if !ok {
				continue
			}
			dst, err := n.log(tp, logConfig(meta.Config))
			if err != nil {
				return fmt.Errorf("broker: catch-up %s on %d: %w", tp, id, err)
			}
			from := dst.EndOffset()
			if start := src.StartOffset(); from < start {
				from = start
			}
			missing, err := src.Read(from, 1<<30)
			if err != nil {
				continue
			}
			if len(missing) > 0 {
				if _, err := dst.AppendBatch(missing, f.Clock.Now()); err != nil {
					return fmt.Errorf("broker: catch-up %s on %d: %w", tp, id, err)
				}
			}
		}
	}
	sess, err := f.Ctl.RegisterBroker(n.InfoCopy())
	if err != nil {
		return err
	}
	n.session = sess
	n.down.Store(false)
	f.Ctl.HandleBrokerRecovery(id)
	return nil
}
