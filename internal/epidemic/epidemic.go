// Package epidemic implements the Epidemic Modeling and Response use
// case (§VI-D, Figure 6 right): web data sources whose updates flow as
// events; an ingest stage that cleans and validates records into a
// common schema; an SIR-based model retrained on new data, publishing
// R-value estimates; and threshold alerts for decision makers. The
// paper's platform wires these stages through Octopus triggers; the
// example and benchmarks here do the same.
package epidemic

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Report is the common schema every source is normalized into.
type Report struct {
	Source     string    `json:"source"`
	Region     string    `json:"region"`
	Date       time.Time `json:"date"`
	NewCases   int       `json:"new_cases"`
	Population int       `json:"population"`
}

// RawRecord is an un-validated record as scraped from a source: fields
// arrive as loosely typed strings with source-specific quirks.
type RawRecord struct {
	Source string         `json:"source"`
	Fields map[string]any `json:"fields"`
}

// Errors from validation.
var (
	// ErrMissingField reports a record without a required field.
	ErrMissingField = errors.New("epidemic: missing field")
	// ErrBadValue reports an out-of-range or malformed value.
	ErrBadValue = errors.New("epidemic: bad value")
)

// Clean validates and normalizes one raw record into the common schema
// — the "cleaning and validation" stage of the use case. It rejects
// negative counts, absurd magnitudes, and missing keys.
func Clean(r RawRecord) (Report, error) {
	get := func(key string) (any, error) {
		v, ok := r.Fields[key]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingField, key)
		}
		return v, nil
	}
	region, err := get("region")
	if err != nil {
		return Report{}, err
	}
	regionStr, ok := region.(string)
	if !ok || regionStr == "" {
		return Report{}, fmt.Errorf("%w: region", ErrBadValue)
	}
	casesRaw, err := get("new_cases")
	if err != nil {
		return Report{}, err
	}
	cases, ok := toInt(casesRaw)
	if !ok || cases < 0 || cases > 50_000_000 {
		return Report{}, fmt.Errorf("%w: new_cases=%v", ErrBadValue, casesRaw)
	}
	popRaw, err := get("population")
	if err != nil {
		return Report{}, err
	}
	pop, ok := toInt(popRaw)
	if !ok || pop <= 0 {
		return Report{}, fmt.Errorf("%w: population=%v", ErrBadValue, popRaw)
	}
	var date time.Time
	if d, ok := r.Fields["date"].(string); ok {
		parsed, err := time.Parse("2006-01-02", d)
		if err != nil {
			return Report{}, fmt.Errorf("%w: date %q", ErrBadValue, d)
		}
		date = parsed
	}
	return Report{Source: r.Source, Region: regionStr, Date: date, NewCases: cases, Population: pop}, nil
}

func toInt(v any) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case float64:
		if x != math.Trunc(x) {
			return 0, false
		}
		return int(x), true
	default:
		return 0, false
	}
}

// SIRModel is a discrete-time susceptible-infected-recovered model fit
// to incoming case reports; it supplies the R estimates ("computing R
// values") the platform publishes to decision makers.
type SIRModel struct {
	Region     string
	Population int
	// Gamma is the recovery rate (1/infectious-period days).
	Gamma float64
	// history of daily new cases, oldest first.
	history []int
}

// NewSIRModel creates a model with a 7-day infectious period.
func NewSIRModel(region string, population int) *SIRModel {
	return &SIRModel{Region: region, Population: population, Gamma: 1.0 / 7.0}
}

// Observe appends a day's new-case count.
func (m *SIRModel) Observe(newCases int) {
	if newCases < 0 {
		newCases = 0
	}
	m.history = append(m.history, newCases)
}

// Days returns the number of observed days.
func (m *SIRModel) Days() int { return len(m.history) }

// REstimate computes the effective reproduction number from recent
// growth: R ≈ 1 + g/γ where g is the exponential growth rate of the
// 7-day smoothed case curve.
func (m *SIRModel) REstimate() (float64, error) {
	const window = 7
	if len(m.history) < 2*window {
		return 0, fmt.Errorf("epidemic: need %d days of data, have %d", 2*window, len(m.history))
	}
	recent := mean(m.history[len(m.history)-window:])
	prior := mean(m.history[len(m.history)-2*window : len(m.history)-window])
	if prior <= 0 {
		if recent <= 0 {
			return 1, nil // no circulation observed
		}
		return 3, nil // emergence from zero: report a high R
	}
	growth := math.Log(recent/prior) / window // per-day growth rate
	r := 1 + growth/m.Gamma
	if r < 0 {
		r = 0
	}
	return r, nil
}

// Project runs the SIR forward from the current state for days days and
// returns projected daily new cases — the "model results ... published
// for decision makers".
func (m *SIRModel) Project(days int) ([]int, error) {
	r, err := m.REstimate()
	if err != nil {
		return nil, err
	}
	// Current infected pool approximated by the last infectious period.
	infected := 0.0
	start := len(m.history) - 7
	if start < 0 {
		start = 0
	}
	for _, c := range m.history[start:] {
		infected += float64(c)
	}
	susceptible := float64(m.Population) - infected
	beta := r * m.Gamma
	out := make([]int, days)
	n := float64(m.Population)
	for d := 0; d < days; d++ {
		newInf := beta * infected * susceptible / n
		if newInf > susceptible {
			newInf = susceptible
		}
		recovered := m.Gamma * infected
		infected += newInf - recovered
		susceptible -= newInf
		if infected < 0 {
			infected = 0
		}
		out[d] = int(newInf)
	}
	return out, nil
}

func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Alert is a decision-maker notification.
type Alert struct {
	Region string  `json:"region"`
	R      float64 `json:"r"`
	Level  string  `json:"level"`
}

// Evaluate converts an R estimate into an alert level (the "notifying
// decision makers on observed or predicted trends" output).
func Evaluate(region string, r float64) Alert {
	level := "normal"
	switch {
	case r >= 1.5:
		level = "critical"
	case r >= 1.1:
		level = "elevated"
	}
	return Alert{Region: region, R: r, Level: level}
}

// Source synthesizes one web data source with a deterministic epidemic
// curve (logistic wave plus reporting noise), standing in for the public
// health feeds of the paper's platform.
type Source struct {
	Name       string
	Region     string
	Population int
	// R0 drives the synthetic wave.
	R0  float64
	day int
	rng uint64
}

// NewSource creates a synthetic source.
func NewSource(name, region string, population int, r0 float64) *Source {
	var seed uint64 = 0xDA3E39CB94B95BDB
	for _, c := range name {
		seed = seed*31 + uint64(c)
	}
	return &Source{Name: name, Region: region, Population: population, R0: r0, rng: seed}
}

// Next returns the next day's raw record. Roughly 3 % of records arrive
// malformed (negative counts), exercising the validation stage.
func (s *Source) Next(date time.Time) RawRecord {
	s.day++
	gamma := 1.0 / 7.0
	beta := s.R0 * gamma
	// Deterministic logistic wave peaking around day 60.
	t := float64(s.day)
	wave := float64(s.Population) * 0.002 * beta * math.Exp((beta-gamma)*(t-60)/8) /
		math.Pow(1+math.Exp((beta-gamma)*(t-60)/8), 2) * 40
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	noise := 1 + 0.2*(float64(s.rng>>11)/float64(1<<53)-0.5)
	cases := int(wave * noise)
	// LCG low bits are weak; draw the corruption coin from high bits.
	if (s.rng>>33)%100 < 3 {
		cases = -cases - 1 // corrupt record for the validator to reject
	}
	return RawRecord{
		Source: s.Name,
		Fields: map[string]any{
			"region":     s.Region,
			"date":       date.Format("2006-01-02"),
			"new_cases":  float64(cases),
			"population": float64(s.Population),
		},
	}
}
