package epidemic

import (
	"errors"
	"testing"
	"time"
)

var day0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func validRecord() RawRecord {
	return RawRecord{
		Source: "cdc-feed",
		Fields: map[string]any{
			"region":     "cook-county",
			"date":       "2024-01-15",
			"new_cases":  float64(120),
			"population": float64(5_000_000),
		},
	}
}

func TestCleanAcceptsValidRecord(t *testing.T) {
	rep, err := Clean(validRecord())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Region != "cook-county" || rep.NewCases != 120 || rep.Population != 5_000_000 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Date.Format("2006-01-02") != "2024-01-15" {
		t.Fatalf("date = %v", rep.Date)
	}
}

func TestCleanRejectsBadRecords(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RawRecord)
		want   error
	}{
		{"missing region", func(r *RawRecord) { delete(r.Fields, "region") }, ErrMissingField},
		{"empty region", func(r *RawRecord) { r.Fields["region"] = "" }, ErrBadValue},
		{"missing cases", func(r *RawRecord) { delete(r.Fields, "new_cases") }, ErrMissingField},
		{"negative cases", func(r *RawRecord) { r.Fields["new_cases"] = float64(-5) }, ErrBadValue},
		{"absurd cases", func(r *RawRecord) { r.Fields["new_cases"] = float64(1e9) }, ErrBadValue},
		{"fractional cases", func(r *RawRecord) { r.Fields["new_cases"] = 1.5 }, ErrBadValue},
		{"string cases", func(r *RawRecord) { r.Fields["new_cases"] = "many" }, ErrBadValue},
		{"zero population", func(r *RawRecord) { r.Fields["population"] = float64(0) }, ErrBadValue},
		{"bad date", func(r *RawRecord) { r.Fields["date"] = "Jan 15" }, ErrBadValue},
	}
	for _, c := range cases {
		r := validRecord()
		c.mutate(&r)
		if _, err := Clean(r); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestREstimateGrowth(t *testing.T) {
	m := NewSIRModel("region", 1_000_000)
	// Exponentially growing cases: R must exceed 1.
	cases := 100.0
	for d := 0; d < 20; d++ {
		m.Observe(int(cases))
		cases *= 1.08
	}
	r, err := m.REstimate()
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 {
		t.Fatalf("growing epidemic R = %.2f, want > 1", r)
	}
}

func TestREstimateDecline(t *testing.T) {
	m := NewSIRModel("region", 1_000_000)
	cases := 1000.0
	for d := 0; d < 20; d++ {
		m.Observe(int(cases))
		cases *= 0.9
	}
	r, err := m.REstimate()
	if err != nil {
		t.Fatal(err)
	}
	if r >= 1 {
		t.Fatalf("declining epidemic R = %.2f, want < 1", r)
	}
}

func TestREstimateNeedsData(t *testing.T) {
	m := NewSIRModel("region", 1000)
	for d := 0; d < 5; d++ {
		m.Observe(10)
	}
	if _, err := m.REstimate(); err == nil {
		t.Fatal("R estimate with 5 days accepted")
	}
}

func TestREstimateFlatIsOne(t *testing.T) {
	m := NewSIRModel("region", 1_000_000)
	for d := 0; d < 20; d++ {
		m.Observe(500)
	}
	r, err := m.REstimate()
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 || r > 1.1 {
		t.Fatalf("flat epidemic R = %.2f, want ~1", r)
	}
}

func TestREstimateZeroHistory(t *testing.T) {
	m := NewSIRModel("region", 1000)
	for d := 0; d < 20; d++ {
		m.Observe(0)
	}
	r, err := m.REstimate()
	if err != nil || r != 1 {
		t.Fatalf("no-circulation R = %.2f, %v", r, err)
	}
}

func TestProjectDirectionFollowsR(t *testing.T) {
	grow := NewSIRModel("g", 10_000_000)
	cases := 100.0
	for d := 0; d < 20; d++ {
		grow.Observe(int(cases))
		cases *= 1.1
	}
	proj, err := grow.Project(14)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 14 {
		t.Fatalf("projection days = %d", len(proj))
	}
	if proj[13] <= proj[0] {
		t.Fatalf("growing epidemic projected to shrink: %v", proj)
	}
	// Projections never exceed the population.
	total := 0
	for _, c := range proj {
		if c < 0 {
			t.Fatalf("negative projection: %v", proj)
		}
		total += c
	}
	if total > grow.Population {
		t.Fatalf("projected %d infections in a population of %d", total, grow.Population)
	}
}

func TestEvaluateAlertLevels(t *testing.T) {
	if a := Evaluate("r", 0.8); a.Level != "normal" {
		t.Fatalf("0.8 -> %s", a.Level)
	}
	if a := Evaluate("r", 1.2); a.Level != "elevated" {
		t.Fatalf("1.2 -> %s", a.Level)
	}
	if a := Evaluate("r", 1.8); a.Level != "critical" {
		t.Fatalf("1.8 -> %s", a.Level)
	}
}

func TestSourceProducesWaveWithCorruption(t *testing.T) {
	s := NewSource("cdc", "cook", 5_000_000, 2.5)
	valid, invalid := 0, 0
	peak := 0
	for d := 0; d < 120; d++ {
		rec := s.Next(day0.AddDate(0, 0, d))
		rep, err := Clean(rec)
		if err != nil {
			invalid++
			continue
		}
		valid++
		if rep.NewCases > peak {
			peak = rep.NewCases
		}
	}
	if valid == 0 {
		t.Fatal("no valid records")
	}
	if invalid == 0 {
		t.Fatal("corruption never exercised the validator")
	}
	if float64(invalid)/120 > 0.15 {
		t.Fatalf("too much corruption: %d of 120", invalid)
	}
	if peak == 0 {
		t.Fatal("wave never rose")
	}
}

func TestSourceIsDeterministic(t *testing.T) {
	a := NewSource("x", "r", 1000, 2)
	b := NewSource("x", "r", 1000, 2)
	for d := 0; d < 30; d++ {
		ra := a.Next(day0.AddDate(0, 0, d))
		rb := b.Next(day0.AddDate(0, 0, d))
		if ra.Fields["new_cases"] != rb.Fields["new_cases"] {
			t.Fatalf("day %d differs", d)
		}
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// Source -> Clean -> Model -> Alert, the Figure 6 (right) flow.
	src := NewSource("health-dept", "metro", 8_000_000, 2.2)
	model := NewSIRModel("metro", 8_000_000)
	var lastAlert Alert
	for d := 0; d < 90; d++ {
		rec := src.Next(day0.AddDate(0, 0, d))
		rep, err := Clean(rec)
		if err != nil {
			continue // validation rejects corrupt records
		}
		model.Observe(rep.NewCases)
		if model.Days() >= 14 {
			if r, err := model.REstimate(); err == nil {
				lastAlert = Evaluate("metro", r)
			}
		}
	}
	if lastAlert.Region != "metro" {
		t.Fatal("pipeline produced no alerts")
	}
}
