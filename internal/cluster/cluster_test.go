package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/zk"
)

func newCtl(t *testing.T, brokers int) (*Controller, *zk.Registry, []int64) {
	t.Helper()
	reg := zk.NewRegistry()
	c := NewController(reg, nil)
	var sessions []int64
	for i := 0; i < brokers; i++ {
		s, err := c.RegisterBroker(BrokerInfo{ID: i, VCPUs: 2, MemGB: 8})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	return c, reg, sessions
}

func TestRegisterAndListBrokers(t *testing.T) {
	c, _, _ := newCtl(t, 3)
	ids := c.LiveBrokers()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("brokers = %v", ids)
	}
	info, err := c.BrokerInfo(1)
	if err != nil || info.VCPUs != 2 {
		t.Fatalf("info = %+v, %v", info, err)
	}
}

func TestCreateTopicAssignsReplicas(t *testing.T) {
	c, _, _ := newCtl(t, 4)
	meta, err := c.CreateTopic("instrument-data", "alice", TopicConfig{Partitions: 4, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Partitions) != 4 {
		t.Fatalf("partitions = %d", len(meta.Partitions))
	}
	leaders := map[int]int{}
	for _, p := range meta.Partitions {
		if len(p.Replicas) != 2 {
			t.Fatalf("rf = %d", len(p.Replicas))
		}
		if p.Leader != p.Replicas[0] {
			t.Fatalf("leader %d not first replica %v", p.Leader, p.Replicas)
		}
		if len(p.ISR) != 2 {
			t.Fatalf("isr = %v", p.ISR)
		}
		leaders[p.Leader]++
	}
	// Leaders spread across all four brokers.
	if len(leaders) != 4 {
		t.Fatalf("leader spread = %v", leaders)
	}
}

func TestCreateTopicIdempotentForOwner(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	m1, err := c.CreateTopic("t", "alice", TopicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.CreateTopic("t", "alice", TopicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.CreatedAt.Equal(m2.CreatedAt) {
		t.Fatal("retry returned a different topic")
	}
	if _, err := c.CreateTopic("t", "mallory", TopicConfig{}); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("foreign create: %v", err)
	}
}

func TestCreateTopicDefaults(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	meta, err := c.CreateTopic("t", "u", TopicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := meta.Config
	if cfg.Partitions != 2 || cfg.ReplicationFactor != 2 || cfg.Retention != 7*24*time.Hour {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestCreateTopicClampsRFToBrokers(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	meta, err := c.CreateTopic("t", "u", TopicConfig{ReplicationFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Config.ReplicationFactor != 2 {
		t.Fatalf("rf = %d", meta.Config.ReplicationFactor)
	}
}

func TestCreateTopicNoBrokers(t *testing.T) {
	c := NewController(zk.NewRegistry(), nil)
	if _, err := c.CreateTopic("t", "u", TopicConfig{}); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetPartitionsGrowOnly(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	if _, err := c.CreateTopic("t", "u", TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	meta, err := c.SetPartitions("t", 4)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Config.Partitions != 4 || len(meta.Partitions) != 4 {
		t.Fatalf("partitions = %d/%d", meta.Config.Partitions, len(meta.Partitions))
	}
	if _, err := c.SetPartitions("t", 2); !errors.Is(err, ErrShrinkPartitions) {
		t.Fatalf("shrink: %v", err)
	}
	// Same count is a no-op.
	if _, err := c.SetPartitions("t", 4); err != nil {
		t.Fatal(err)
	}
}

func TestSetConfig(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	if _, err := c.CreateTopic("t", "u", TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	meta, err := c.SetConfig("t", TopicConfig{Retention: time.Hour, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Config.Retention != time.Hour || !meta.Config.Compact {
		t.Fatalf("config = %+v", meta.Config)
	}
	// Partition count untouched.
	if meta.Config.Partitions != 2 {
		t.Fatalf("partitions changed: %d", meta.Config.Partitions)
	}
}

func TestTopicsAndDelete(t *testing.T) {
	c, _, _ := newCtl(t, 1)
	_, _ = c.CreateTopic("b", "u", TopicConfig{})
	_, _ = c.CreateTopic("a", "u", TopicConfig{})
	topics := c.Topics()
	if len(topics) != 2 || topics[0] != "a" {
		t.Fatalf("topics = %v", topics)
	}
	if err := c.DeleteTopic("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Topic("a"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("deleted topic: %v", err)
	}
	if err := c.DeleteTopic("ghost"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestPartitionLookup(t *testing.T) {
	c, _, _ := newCtl(t, 2)
	_, _ = c.CreateTopic("t", "u", TopicConfig{Partitions: 3})
	pm, err := c.Partition("t", 2)
	if err != nil || pm.ID != 2 || pm.Topic != "t" {
		t.Fatalf("pm = %+v, %v", pm, err)
	}
	if _, err := c.Partition("t", 9); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestBrokerFailureElectsNewLeader(t *testing.T) {
	c, reg, sessions := newCtl(t, 3)
	meta, err := c.CreateTopic("t", "u", TopicConfig{Partitions: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	victim := meta.Partitions[0].Leader
	// Expire the victim's session (ephemeral node removal) then fail over.
	reg.ExpireSession(sessions[victim])
	changed := c.HandleBrokerFailure(victim)
	if len(changed) == 0 {
		t.Fatal("no partitions changed")
	}
	after, _ := c.Topic("t")
	for _, p := range after.Partitions {
		if p.Leader == victim {
			t.Fatalf("partition %d still led by failed broker", p.ID)
		}
		for _, r := range p.ISR {
			if r == victim {
				t.Fatalf("failed broker still in ISR of %d", p.ID)
			}
		}
	}
}

func TestBrokerRecoveryRejoinsISR(t *testing.T) {
	c, reg, sessions := newCtl(t, 2)
	meta, _ := c.CreateTopic("t", "u", TopicConfig{Partitions: 2, ReplicationFactor: 2})
	victim := meta.Partitions[0].Leader
	reg.ExpireSession(sessions[victim])
	c.HandleBrokerFailure(victim)
	// Re-register and recover.
	if _, err := c.RegisterBroker(BrokerInfo{ID: victim, VCPUs: 2, MemGB: 8}); err != nil {
		t.Fatal(err)
	}
	c.HandleBrokerRecovery(victim)
	after, _ := c.Topic("t")
	for _, p := range after.Partitions {
		if p.Leader < 0 {
			t.Fatalf("partition %d leaderless after recovery", p.ID)
		}
		if p.HasReplica(victim) && !p.InISR(victim) {
			t.Fatalf("recovered broker missing from ISR of %d", p.ID)
		}
	}
}

func TestTotalFailureLeavesLeaderless(t *testing.T) {
	c, reg, sessions := newCtl(t, 1)
	_, err := c.CreateTopic("t", "u", TopicConfig{Partitions: 1, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg.ExpireSession(sessions[0])
	c.HandleBrokerFailure(0)
	meta, _ := c.Topic("t")
	if meta.Partitions[0].Leader != -1 {
		t.Fatalf("leader = %d, want -1", meta.Partitions[0].Leader)
	}
}

func TestPartitionMetaHelpers(t *testing.T) {
	p := PartitionMeta{Replicas: []int{1, 3}, ISR: []int{3}}
	if !p.HasReplica(1) || p.HasReplica(2) {
		t.Fatal("HasReplica wrong")
	}
	if p.InISR(1) || !p.InISR(3) {
		t.Fatal("InISR wrong")
	}
}
