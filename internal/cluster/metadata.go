// Package cluster implements the control plane of the Octopus event
// fabric: broker membership, topic metadata, partition assignment,
// leader election and in-sync-replica (ISR) tracking. State lives in the
// ZooKeeper-equivalent registry (internal/zk), matching the paper's
// MSK + ZooKeeper deployment (§IV-A, §IV-F).
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Errors returned by the controller.
var (
	// ErrTopicExists reports topic re-creation with conflicting config.
	ErrTopicExists = errors.New("cluster: topic already exists")
	// ErrNoTopic reports an operation on an unknown topic.
	ErrNoTopic = errors.New("cluster: unknown topic")
	// ErrNoBrokers reports topic creation with no live brokers.
	ErrNoBrokers = errors.New("cluster: no live brokers")
	// ErrBadConfig reports an invalid topic configuration.
	ErrBadConfig = errors.New("cluster: invalid topic config")
	// ErrShrinkPartitions reports an attempt to reduce partition count.
	ErrShrinkPartitions = errors.New("cluster: cannot reduce partition count")
)

// TopicConfig is the client-settable topic configuration exposed through
// the OWS POST /topic/<topic> route.
type TopicConfig struct {
	// Partitions is the number of partitions (default 2, as in the
	// paper's baseline experiments).
	Partitions int `json:"partitions"`
	// ReplicationFactor is the number of replicas per partition
	// (default 2).
	ReplicationFactor int `json:"replication_factor"`
	// Retention is how long events are kept (default 7 days, §IV-F).
	Retention time.Duration `json:"retention"`
	// Compact enables key compaction instead of pure time retention.
	Compact bool `json:"compact"`
}

// DefaultTopicConfig returns the paper's defaults.
func DefaultTopicConfig() TopicConfig {
	return TopicConfig{Partitions: 2, ReplicationFactor: 2, Retention: 7 * 24 * time.Hour}
}

func (c *TopicConfig) normalize() error {
	if c.Partitions == 0 {
		c.Partitions = 2
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	if c.Retention == 0 {
		c.Retention = 7 * 24 * time.Hour
	}
	if c.Partitions < 0 || c.ReplicationFactor < 0 {
		return fmt.Errorf("%w: partitions=%d rf=%d", ErrBadConfig, c.Partitions, c.ReplicationFactor)
	}
	return nil
}

// PartitionMeta describes one partition's placement.
type PartitionMeta struct {
	// Topic and ID identify the partition.
	Topic string `json:"topic"`
	ID    int    `json:"id"`
	// Leader is the broker id serving produce/fetch for the partition.
	Leader int `json:"leader"`
	// LeaderEpoch counts leader elections for the partition, starting at
	// 0 with the initial assignment and bumped on every leader change
	// (including to leaderless). Replication fetches carry it so a
	// deposed leader rejects stale followers and a fenced follower
	// truncates to the new leader's log before re-fetching.
	LeaderEpoch int64 `json:"leader_epoch"`
	// Replicas is the full replica set (leader included).
	Replicas []int `json:"replicas"`
	// ISR is the in-sync subset of Replicas.
	ISR []int `json:"isr"`
}

// HasReplica reports whether broker id hosts a replica.
func (p *PartitionMeta) HasReplica(id int) bool {
	for _, r := range p.Replicas {
		if r == id {
			return true
		}
	}
	return false
}

// InISR reports whether broker id is in the in-sync set.
func (p *PartitionMeta) InISR(id int) bool {
	for _, r := range p.ISR {
		if r == id {
			return true
		}
	}
	return false
}

// TopicMeta is the full metadata for a topic.
type TopicMeta struct {
	Name       string          `json:"name"`
	Config     TopicConfig     `json:"config"`
	Partitions []PartitionMeta `json:"partitions"`
	// Owner is the identity that provisioned the topic.
	Owner string `json:"owner"`
	// CreatedAt is the provisioning time.
	CreatedAt time.Time `json:"created_at"`
}

func (t *TopicMeta) marshal() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		panic("cluster: cannot marshal topic meta: " + err.Error())
	}
	return b
}

func unmarshalTopic(b []byte) (*TopicMeta, error) {
	var t TopicMeta
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("cluster: corrupt topic metadata: %w", err)
	}
	return &t, nil
}

// BrokerInfo describes a registered broker.
type BrokerInfo struct {
	ID int `json:"id"`
	// Addr is the broker's listen address (empty for in-process nodes).
	Addr string `json:"addr"`
	// VCPUs and MemGB describe the instance type, used by the capacity
	// model (kafka.m5.large = 2 vCPU / 8 GB, m5.xlarge = 4 / 16).
	VCPUs int `json:"vcpus"`
	MemGB int `json:"mem_gb"`
	// DataDir, when set, backs the broker's replica logs with segment
	// files under this directory, so a crashed broker replays them on
	// restart instead of losing its partitions.
	DataDir string `json:"data_dir,omitempty"`
}
