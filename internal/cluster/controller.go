package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
	"repro/internal/zk"
)

// Controller is the cluster's single control-plane authority, the role
// the MSK control plane plus ZooKeeper play in the paper. It serializes
// topic creation, partition assignment and leader election, persisting
// everything in the registry so brokers (and the web service) observe a
// consistent view.
type Controller struct {
	mu    sync.Mutex
	reg   *zk.Registry
	clock vclock.Clock
	// rr rotates the starting broker for partition assignment so load
	// spreads across the cluster as topics are created.
	rr int
	// epoch increments on every metadata mutation (topic create/delete,
	// partition growth, config change, leader election, ISR change,
	// broker registration). Data-plane caches key their entries by it:
	// comparing two atomic loads replaces a registry read plus JSON
	// decode on every produce/fetch.
	epoch atomic.Int64

	// watchMu guards the epoch watchers. A separate mutex, not c.mu:
	// bumpEpoch runs both with and without c.mu held, and watcher
	// (un)registration must never contend with topic mutation.
	watchMu  sync.Mutex
	watchers map[uint64]chan struct{}
	watchID  uint64
}

// Epoch returns the current metadata epoch. It increases monotonically;
// any change that could affect routing (leaders, ISRs, partition counts)
// bumps it, so a cache entry tagged with an older epoch must be rebuilt.
func (c *Controller) Epoch() int64 { return c.epoch.Load() }

// bumpEpoch invalidates all epoch-tagged metadata caches and pokes
// every registered epoch watcher.
func (c *Controller) bumpEpoch() {
	c.epoch.Add(1)
	c.watchMu.Lock()
	for _, ch := range c.watchers {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending tick; bursts coalesce
		}
	}
	c.watchMu.Unlock()
}

// WatchEpoch registers an epoch watcher: the returned channel receives
// a tick (capacity one, bursts coalesce) after every epoch bump. It is
// the push side of metadata distribution — a broker's wire server
// watches the epoch and pushes fresh metadata to connected clients the
// moment leadership changes, instead of each client discovering the
// change by eating a failed request. Watchers read the channel, then
// Epoch()/topic state, so a coalesced burst still observes the final
// state. The returned cancel function unregisters; it is idempotent
// and must be called to free the watcher.
func (c *Controller) WatchEpoch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	c.watchMu.Lock()
	c.watchID++
	id := c.watchID
	if c.watchers == nil {
		c.watchers = make(map[uint64]chan struct{})
	}
	c.watchers[id] = ch
	c.watchMu.Unlock()
	return ch, func() {
		c.watchMu.Lock()
		delete(c.watchers, id)
		c.watchMu.Unlock()
	}
}

// NewController creates a controller over the registry.
func NewController(reg *zk.Registry, clock vclock.Clock) *Controller {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Controller{reg: reg, clock: clock}
}

func brokerPath(id int) string     { return "/brokers/" + strconv.Itoa(id) }
func topicPath(name string) string { return "/topics/" + name }

// RegisterBroker records a live broker under an ephemeral node bound to
// the returned session. Expiring the session simulates broker failure.
func (c *Controller) RegisterBroker(info BrokerInfo) (int64, error) {
	data, err := json.Marshal(info)
	if err != nil {
		return 0, err
	}
	sess := c.reg.NewSession()
	if err := c.reg.CreateEphemeral(brokerPath(info.ID), data, sess); err != nil {
		return 0, fmt.Errorf("cluster: register broker %d: %w", info.ID, err)
	}
	c.bumpEpoch()
	return sess, nil
}

// SetBrokerAddr updates a registered broker's advertised address — the
// clusternet serving layer binds each broker's wire listener after the
// broker registers (the OS picks ephemeral ports), then publishes the
// bound address here so metadata responses can route clients to it.
// Bumps the metadata epoch: an address change invalidates every
// client-side routing table.
func (c *Controller) SetBrokerAddr(id int, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, _, err := c.reg.Get(brokerPath(id))
	if err != nil {
		return fmt.Errorf("cluster: broker %d: %w", id, err)
	}
	var info BrokerInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return err
	}
	info.Addr = addr
	nd, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if _, err := c.reg.Set(brokerPath(id), nd); err != nil {
		return err
	}
	c.bumpEpoch()
	return nil
}

// LiveBrokers returns the sorted ids of registered brokers.
func (c *Controller) LiveBrokers() []int {
	names := c.reg.Children("/brokers")
	ids := make([]int, 0, len(names))
	for _, n := range names {
		if id, err := strconv.Atoi(n); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// BrokerInfo returns a registered broker's description.
func (c *Controller) BrokerInfo(id int) (BrokerInfo, error) {
	data, _, err := c.reg.Get(brokerPath(id))
	if err != nil {
		return BrokerInfo{}, fmt.Errorf("cluster: broker %d: %w", id, err)
	}
	var info BrokerInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return BrokerInfo{}, err
	}
	return info, nil
}

// CreateTopic provisions a topic, assigning partition replicas across
// live brokers round-robin (leader first, then rf-1 followers on the
// next brokers). Creation is idempotent for an identical owner: the OWS
// PUT route may be retried (§IV-F).
func (c *Controller) CreateTopic(name, owner string, cfg TopicConfig) (*TopicMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if data, _, err := c.reg.Get(topicPath(name)); err == nil {
		existing, err := unmarshalTopic(data)
		if err != nil {
			return nil, err
		}
		if existing.Owner == owner {
			return existing, nil // idempotent retry
		}
		return nil, fmt.Errorf("%w: %s (owned by %s)", ErrTopicExists, name, existing.Owner)
	}
	brokers := c.LiveBrokers()
	if len(brokers) == 0 {
		return nil, ErrNoBrokers
	}
	rf := cfg.ReplicationFactor
	if rf > len(brokers) {
		rf = len(brokers)
		cfg.ReplicationFactor = rf
	}
	meta := &TopicMeta{Name: name, Config: cfg, Owner: owner, CreatedAt: c.clock.Now()}
	for p := 0; p < cfg.Partitions; p++ {
		meta.Partitions = append(meta.Partitions, c.assignLocked(name, p, brokers, rf))
	}
	if err := c.reg.Create(topicPath(name), meta.marshal()); err != nil {
		return nil, err
	}
	c.bumpEpoch()
	return meta, nil
}

// assignLocked picks a replica set for one partition.
func (c *Controller) assignLocked(topic string, id int, brokers []int, rf int) PartitionMeta {
	replicas := make([]int, 0, rf)
	start := c.rr
	c.rr++
	for i := 0; i < rf; i++ {
		replicas = append(replicas, brokers[(start+i)%len(brokers)])
	}
	return PartitionMeta{
		Topic:    topic,
		ID:       id,
		Leader:   replicas[0],
		Replicas: replicas,
		ISR:      append([]int(nil), replicas...),
	}
}

// Topic returns a topic's metadata.
func (c *Controller) Topic(name string) (*TopicMeta, error) {
	data, _, err := c.reg.Get(topicPath(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	return unmarshalTopic(data)
}

// Topics returns all topic names, sorted.
func (c *Controller) Topics() []string {
	return c.reg.Children("/topics")
}

// DeleteTopic removes a topic's metadata.
func (c *Controller) DeleteTopic(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reg.Delete(topicPath(name)); err != nil {
		return fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	c.bumpEpoch()
	return nil
}

// SetPartitions grows a topic's partition count (Kafka forbids
// shrinking; so do we). New partitions are assigned across live brokers.
func (c *Controller) SetPartitions(name string, n int) (*TopicMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, err := c.Topic(name)
	if err != nil {
		return nil, err
	}
	if n < meta.Config.Partitions {
		return nil, fmt.Errorf("%w: %d -> %d", ErrShrinkPartitions, meta.Config.Partitions, n)
	}
	if n == meta.Config.Partitions {
		return meta, nil
	}
	brokers := c.LiveBrokers()
	if len(brokers) == 0 {
		return nil, ErrNoBrokers
	}
	rf := meta.Config.ReplicationFactor
	if rf > len(brokers) {
		rf = len(brokers)
	}
	for p := meta.Config.Partitions; p < n; p++ {
		meta.Partitions = append(meta.Partitions, c.assignLocked(name, p, brokers, rf))
	}
	meta.Config.Partitions = n
	if _, err := c.reg.Set(topicPath(name), meta.marshal()); err != nil {
		return nil, err
	}
	c.bumpEpoch()
	return meta, nil
}

// SetConfig updates retention/compaction settings (partition count and
// replication factor are managed by their dedicated operations).
func (c *Controller) SetConfig(name string, cfg TopicConfig) (*TopicMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, err := c.Topic(name)
	if err != nil {
		return nil, err
	}
	if cfg.Retention > 0 {
		meta.Config.Retention = cfg.Retention
	}
	meta.Config.Compact = cfg.Compact
	if _, err := c.reg.Set(topicPath(name), meta.marshal()); err != nil {
		return nil, err
	}
	c.bumpEpoch()
	return meta, nil
}

// Partition returns one partition's metadata.
func (c *Controller) Partition(topic string, id int) (PartitionMeta, error) {
	meta, err := c.Topic(topic)
	if err != nil {
		return PartitionMeta{}, err
	}
	if id < 0 || id >= len(meta.Partitions) {
		return PartitionMeta{}, fmt.Errorf("cluster: %s has no partition %d", topic, id)
	}
	return meta.Partitions[id], nil
}

// HandleBrokerFailure re-elects leaders for every partition led by the
// failed broker, choosing the first surviving ISR member, and removes
// the broker from ISR sets. Partitions with no surviving ISR member are
// left leaderless (Leader = -1) until the broker returns.
func (c *Controller) HandleBrokerFailure(brokerID int) []PartitionMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	var changed []PartitionMeta
	for _, name := range c.Topics() {
		meta, err := c.Topic(name)
		if err != nil {
			continue
		}
		dirty := false
		for i := range meta.Partitions {
			p := &meta.Partitions[i]
			if !p.HasReplica(brokerID) {
				continue
			}
			isr := p.ISR[:0]
			for _, r := range p.ISR {
				if r != brokerID {
					isr = append(isr, r)
				}
			}
			p.ISR = isr
			if p.Leader == brokerID {
				if len(p.ISR) > 0 {
					p.Leader = p.ISR[0]
				} else {
					p.Leader = -1
				}
				p.LeaderEpoch++
			}
			changed = append(changed, *p)
			dirty = true
		}
		if dirty {
			if _, err := c.reg.Set(topicPath(name), meta.marshal()); err == nil {
				continue
			}
		}
	}
	c.bumpEpoch()
	return changed
}

// HandleBrokerRecovery restores a broker to the ISR of every partition
// that lists it as a replica (the broker must have caught up first) and
// re-elects it leader for leaderless partitions.
func (c *Controller) HandleBrokerRecovery(brokerID int) []PartitionMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	var changed []PartitionMeta
	for _, name := range c.Topics() {
		meta, err := c.Topic(name)
		if err != nil {
			continue
		}
		dirty := false
		for i := range meta.Partitions {
			p := &meta.Partitions[i]
			if !p.HasReplica(brokerID) || p.InISR(brokerID) {
				continue
			}
			p.ISR = append(p.ISR, brokerID)
			sort.Ints(p.ISR)
			if p.Leader == -1 {
				p.Leader = brokerID
				p.LeaderEpoch++
			}
			changed = append(changed, *p)
			dirty = true
		}
		if dirty {
			_, _ = c.reg.Set(topicPath(name), meta.marshal())
		}
	}
	c.bumpEpoch()
	return changed
}

// ExpandISR adds a caught-up replica back to one partition's in-sync
// set — the per-partition rejoin path replication uses once a follower's
// fetch offset reaches the leader's log end. If the partition is
// leaderless the rejoining replica is elected leader (bumping the leader
// epoch). Adding a broker that is not a replica is an error; adding one
// already in the ISR is a no-op.
func (c *Controller) ExpandISR(topic string, id, brokerID int) (PartitionMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, err := c.Topic(topic)
	if err != nil {
		return PartitionMeta{}, err
	}
	if id < 0 || id >= len(meta.Partitions) {
		return PartitionMeta{}, fmt.Errorf("cluster: %s has no partition %d", topic, id)
	}
	p := &meta.Partitions[id]
	if !p.HasReplica(brokerID) {
		return *p, fmt.Errorf("cluster: broker %d is not a replica of %s/%d", brokerID, topic, id)
	}
	if p.InISR(brokerID) {
		return *p, nil
	}
	p.ISR = append(p.ISR, brokerID)
	sort.Ints(p.ISR)
	if p.Leader == -1 {
		p.Leader = brokerID
		p.LeaderEpoch++
	}
	if _, err := c.reg.Set(topicPath(topic), meta.marshal()); err != nil {
		return *p, err
	}
	c.bumpEpoch()
	return *p, nil
}

// ShrinkISR removes a lagging replica from one partition's in-sync set,
// so acks=all produces stop waiting on it. The leader itself is never
// removed this way (leader loss goes through HandleBrokerFailure).
// Removing a broker not in the ISR is a no-op.
func (c *Controller) ShrinkISR(topic string, id, brokerID int) (PartitionMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, err := c.Topic(topic)
	if err != nil {
		return PartitionMeta{}, err
	}
	if id < 0 || id >= len(meta.Partitions) {
		return PartitionMeta{}, fmt.Errorf("cluster: %s has no partition %d", topic, id)
	}
	p := &meta.Partitions[id]
	if p.Leader == brokerID || !p.InISR(brokerID) {
		return *p, nil
	}
	isr := p.ISR[:0]
	for _, r := range p.ISR {
		if r != brokerID {
			isr = append(isr, r)
		}
	}
	p.ISR = isr
	if _, err := c.reg.Set(topicPath(topic), meta.marshal()); err != nil {
		return *p, err
	}
	c.bumpEpoch()
	return *p, nil
}
