package pattern

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func mustMatch(t *testing.T, pat, doc string) {
	t.Helper()
	p, err := Compile([]byte(pat))
	if err != nil {
		t.Fatalf("compile %s: %v", pat, err)
	}
	if !p.MatchJSON([]byte(doc)) {
		t.Fatalf("pattern %s should match %s", pat, doc)
	}
}

func mustNotMatch(t *testing.T, pat, doc string) {
	t.Helper()
	p, err := Compile([]byte(pat))
	if err != nil {
		t.Fatalf("compile %s: %v", pat, err)
	}
	if p.MatchJSON([]byte(doc)) {
		t.Fatalf("pattern %s should NOT match %s", pat, doc)
	}
}

// TestListing1Pattern reproduces the paper's Listing 1: invoke the
// trigger only when event_type is "created".
func TestListing1Pattern(t *testing.T) {
	pat := `{"value": {"event_type": ["created"]}}`
	mustMatch(t, pat, `{"value": {"event_type": "created", "path": "/data/f1"}}`)
	mustNotMatch(t, pat, `{"value": {"event_type": "modified"}}`)
	mustNotMatch(t, pat, `{"value": {}}`)
	mustNotMatch(t, pat, `{"other": 1}`)
}

func TestLiteralMatchers(t *testing.T) {
	mustMatch(t, `{"a": ["x", "y"]}`, `{"a": "y"}`)
	mustNotMatch(t, `{"a": ["x", "y"]}`, `{"a": "z"}`)
	mustMatch(t, `{"n": [42]}`, `{"n": 42}`)
	mustNotMatch(t, `{"n": [42]}`, `{"n": 41}`)
	mustMatch(t, `{"b": [true]}`, `{"b": true}`)
	mustMatch(t, `{"z": [null]}`, `{"z": null}`)
	mustNotMatch(t, `{"z": [null]}`, `{"z": 0}`)
}

func TestAndAcrossFields(t *testing.T) {
	pat := `{"a": ["1"], "b": ["2"]}`
	mustMatch(t, pat, `{"a": "1", "b": "2"}`)
	mustNotMatch(t, pat, `{"a": "1", "b": "3"}`)
	mustNotMatch(t, pat, `{"a": "1"}`)
}

func TestPrefixSuffix(t *testing.T) {
	mustMatch(t, `{"f": [{"prefix": "/data/"}]}`, `{"f": "/data/run7/x.tif"}`)
	mustNotMatch(t, `{"f": [{"prefix": "/data/"}]}`, `{"f": "/scratch/x"}`)
	mustMatch(t, `{"f": [{"suffix": ".tif"}]}`, `{"f": "scan.tif"}`)
	mustNotMatch(t, `{"f": [{"suffix": ".tif"}]}`, `{"f": "scan.h5"}`)
	mustNotMatch(t, `{"f": [{"prefix": "a"}]}`, `{"f": 5}`)
}

func TestEqualsIgnoreCase(t *testing.T) {
	mustMatch(t, `{"s": [{"equals-ignore-case": "CrEaTeD"}]}`, `{"s": "created"}`)
	mustNotMatch(t, `{"s": [{"equals-ignore-case": "created"}]}`, `{"s": "deleted"}`)
}

func TestWildcard(t *testing.T) {
	mustMatch(t, `{"f": [{"wildcard": "/data/*/raw/*.tif"}]}`, `{"f": "/data/run1/raw/a.tif"}`)
	mustNotMatch(t, `{"f": [{"wildcard": "/data/*/raw/*.tif"}]}`, `{"f": "/data/run1/cooked/a.tif"}`)
	mustMatch(t, `{"f": [{"wildcard": "*"}]}`, `{"f": "anything"}`)
	mustMatch(t, `{"f": [{"wildcard": "exact"}]}`, `{"f": "exact"}`)
	mustNotMatch(t, `{"f": [{"wildcard": "exact"}]}`, `{"f": "exactly"}`)
	mustMatch(t, `{"f": [{"wildcard": "a*a"}]}`, `{"f": "aba"}`)
	mustNotMatch(t, `{"f": [{"wildcard": "a*a"}]}`, `{"f": "ab"}`)
}

func TestAnythingBut(t *testing.T) {
	mustMatch(t, `{"t": [{"anything-but": ["deleted"]}]}`, `{"t": "created"}`)
	mustNotMatch(t, `{"t": [{"anything-but": ["deleted"]}]}`, `{"t": "deleted"}`)
	mustNotMatch(t, `{"t": [{"anything-but": ["a", "b"]}]}`, `{"t": "b"}`)
	mustNotMatch(t, `{"t": [{"anything-but": "x"}]}`, `{"missing": 1}`)
}

func TestNumeric(t *testing.T) {
	mustMatch(t, `{"v": [{"numeric": [">", 0, "<=", 5]}]}`, `{"v": 3}`)
	mustMatch(t, `{"v": [{"numeric": [">", 0, "<=", 5]}]}`, `{"v": 5}`)
	mustNotMatch(t, `{"v": [{"numeric": [">", 0, "<=", 5]}]}`, `{"v": 0}`)
	mustNotMatch(t, `{"v": [{"numeric": [">", 0, "<=", 5]}]}`, `{"v": 6}`)
	mustMatch(t, `{"v": [{"numeric": ["=", 2.5]}]}`, `{"v": 2.5}`)
	mustNotMatch(t, `{"v": [{"numeric": [">", 0]}]}`, `{"v": "3"}`)
}

func TestExists(t *testing.T) {
	mustMatch(t, `{"x": [{"exists": true}]}`, `{"x": 0}`)
	mustNotMatch(t, `{"x": [{"exists": true}]}`, `{"y": 0}`)
	mustMatch(t, `{"x": [{"exists": false}]}`, `{"y": 0}`)
	mustNotMatch(t, `{"x": [{"exists": false}]}`, `{"x": null}`)
}

func TestNestedObjects(t *testing.T) {
	pat := `{"detail": {"state": {"status": ["ok"]}}}`
	mustMatch(t, pat, `{"detail": {"state": {"status": "ok"}}}`)
	mustNotMatch(t, pat, `{"detail": {"state": {"status": "bad"}}}`)
	mustNotMatch(t, pat, `{"detail": {"state": "ok"}}`)
	mustNotMatch(t, pat, `{"detail": 5}`)
}

func TestArrayValueSemantics(t *testing.T) {
	// Any element of the event array matching any matcher is a match.
	mustMatch(t, `{"tags": ["urgent"]}`, `{"tags": ["routine", "urgent"]}`)
	mustNotMatch(t, `{"tags": ["urgent"]}`, `{"tags": ["routine"]}`)
	mustNotMatch(t, `{"tags": ["urgent"]}`, `{"tags": []}`)
}

func TestOrWithinField(t *testing.T) {
	pat := `{"t": ["created", {"prefix": "mod"}]}`
	mustMatch(t, pat, `{"t": "created"}`)
	mustMatch(t, pat, `{"t": "modified"}`)
	mustNotMatch(t, pat, `{"t": "deleted"}`)
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`[]`,
		`{}`,
		`{"a": []}`,
		`{"a": "bare"}`,
		`{"a": [{"prefix": 5}]}`,
		`{"a": [{"numeric": ["~", 1]}]}`,
		`{"a": [{"numeric": [">"]}]}`,
		`{"a": [{"exists": "yes"}]}`,
		`{"a": [{"unknown-op": 1}]}`,
		`{"a": [{"prefix": "x", "suffix": "y"}]}`,
		`{"a": {"nested": {}}}`,
	}
	for _, src := range bad {
		if _, err := Compile([]byte(src)); err == nil {
			t.Errorf("Compile(%s) succeeded, want error", src)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustCompile(`{"a": "bad"}`)
}

func TestMatchJSONRejectsInvalid(t *testing.T) {
	p := MustCompile(`{"a": [1]}`)
	if p.MatchJSON([]byte("{{{")) {
		t.Fatal("invalid JSON matched")
	}
}

// Property: a literal pattern built from a document's own field always
// matches that document.
func TestSelfPatternProperty(t *testing.T) {
	f := func(key string, val string) bool {
		if key == "" {
			return true
		}
		doc := map[string]any{key: val}
		patDoc := map[string]any{key: []any{val}}
		patJSON, _ := json.Marshal(patDoc)
		p, err := Compile(patJSON)
		if err != nil {
			return false
		}
		return p.Match(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobMatchEdgeCases(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"", "", true},
		{"*", "", true},
		{"**", "abc", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
		{"*end", "the end", true},
		{"start*", "start here", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}
