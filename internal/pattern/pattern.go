// Package pattern implements the EventBridge-style event pattern language
// Octopus triggers use for filtering (§IV-D, Listing 1). A pattern is a
// JSON document whose structure mirrors the event: object fields recurse,
// and leaf values are arrays of matchers. A pattern matches when every
// field it mentions matches; absent fields fail unless tested with
// {"exists": false}.
//
// Supported matchers, following the AWS content-filtering syntax:
//
//	"literal"                          exact match (string, number, bool, null)
//	{"prefix": "re"}                   string prefix
//	{"suffix": "ed"}                   string suffix
//	{"equals-ignore-case": "ReD"}      case-insensitive equality
//	{"wildcard": "*.tif"}              glob with '*'
//	{"anything-but": ["a", "b"]}       negated equality
//	{"numeric": [">", 0, "<=", 42]}    numeric comparisons
//	{"exists": true}                   field presence test
//
// An array of matchers is an OR; fields are combined with AND.
package pattern

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Pattern is a compiled event pattern.
type Pattern struct {
	fields map[string]*fieldPattern
}

type fieldPattern struct {
	// nested is non-nil when the field recurses into a sub-object.
	nested *Pattern
	// matchers is the OR-list of leaf matchers.
	matchers []matcher
}

type matcher interface {
	match(v any, present bool) bool
}

// Compile parses a JSON pattern document.
func Compile(src []byte) (*Pattern, error) {
	var doc map[string]any
	if err := json.Unmarshal(src, &doc); err != nil {
		return nil, fmt.Errorf("pattern: invalid JSON: %w", err)
	}
	return compileObject(doc)
}

// MustCompile is Compile that panics on error, for static patterns.
func MustCompile(src string) *Pattern {
	p, err := Compile([]byte(src))
	if err != nil {
		panic(err)
	}
	return p
}

func compileObject(doc map[string]any) (*Pattern, error) {
	if len(doc) == 0 {
		return nil, errors.New("pattern: empty pattern object")
	}
	p := &Pattern{fields: make(map[string]*fieldPattern, len(doc))}
	for key, raw := range doc {
		switch v := raw.(type) {
		case map[string]any:
			nested, err := compileObject(v)
			if err != nil {
				return nil, fmt.Errorf("pattern: field %q: %w", key, err)
			}
			p.fields[key] = &fieldPattern{nested: nested}
		case []any:
			if len(v) == 0 {
				return nil, fmt.Errorf("pattern: field %q: matcher list is empty", key)
			}
			fp := &fieldPattern{}
			for _, m := range v {
				cm, err := compileMatcher(m)
				if err != nil {
					return nil, fmt.Errorf("pattern: field %q: %w", key, err)
				}
				fp.matchers = append(fp.matchers, cm)
			}
			p.fields[key] = fp
		default:
			return nil, fmt.Errorf("pattern: field %q: value must be an object or an array of matchers", key)
		}
	}
	return p, nil
}

func compileMatcher(m any) (matcher, error) {
	switch v := m.(type) {
	case string, float64, bool, nil:
		return literalMatcher{want: v}, nil
	case map[string]any:
		if len(v) != 1 {
			return nil, errors.New("matcher object must have exactly one operator")
		}
		for op, arg := range v {
			return compileOp(op, arg)
		}
	}
	return nil, fmt.Errorf("unsupported matcher %v", m)
}

func compileOp(op string, arg any) (matcher, error) {
	switch op {
	case "prefix":
		s, ok := arg.(string)
		if !ok {
			return nil, errors.New("prefix operand must be a string")
		}
		return prefixMatcher(s), nil
	case "suffix":
		s, ok := arg.(string)
		if !ok {
			return nil, errors.New("suffix operand must be a string")
		}
		return suffixMatcher(s), nil
	case "equals-ignore-case":
		s, ok := arg.(string)
		if !ok {
			return nil, errors.New("equals-ignore-case operand must be a string")
		}
		return ciMatcher(s), nil
	case "wildcard":
		s, ok := arg.(string)
		if !ok {
			return nil, errors.New("wildcard operand must be a string")
		}
		return wildcardMatcher(s), nil
	case "anything-but":
		var list []any
		switch a := arg.(type) {
		case []any:
			list = a
		default:
			list = []any{a}
		}
		return anythingButMatcher{not: list}, nil
	case "exists":
		b, ok := arg.(bool)
		if !ok {
			return nil, errors.New("exists operand must be a bool")
		}
		return existsMatcher(b), nil
	case "numeric":
		terms, ok := arg.([]any)
		if !ok || len(terms) == 0 || len(terms)%2 != 0 {
			return nil, errors.New("numeric operand must be [op, value, ...] pairs")
		}
		nm := numericMatcher{}
		for i := 0; i < len(terms); i += 2 {
			cmp, ok := terms[i].(string)
			if !ok {
				return nil, errors.New("numeric comparison operator must be a string")
			}
			val, ok := terms[i+1].(float64)
			if !ok {
				return nil, errors.New("numeric comparison value must be a number")
			}
			switch cmp {
			case "<", "<=", ">", ">=", "=":
				nm.terms = append(nm.terms, numericTerm{op: cmp, val: val})
			default:
				return nil, fmt.Errorf("unsupported numeric comparison %q", cmp)
			}
		}
		return nm, nil
	}
	return nil, fmt.Errorf("unsupported operator %q", op)
}

// Match reports whether the event document satisfies the pattern.
func (p *Pattern) Match(doc map[string]any) bool {
	for key, fp := range p.fields {
		v, present := doc[key]
		if fp.nested != nil {
			sub, ok := v.(map[string]any)
			if !ok || !fp.nested.Match(sub) {
				return false
			}
			continue
		}
		if !matchField(fp.matchers, v, present) {
			return false
		}
	}
	return true
}

// MatchJSON parses raw JSON and evaluates the pattern against it.
func (p *Pattern) MatchJSON(raw []byte) bool {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return false
	}
	return p.Match(doc)
}

// matchField evaluates the OR-list. If the event value is an array, any
// element matching any matcher is a match (EventBridge semantics).
func matchField(ms []matcher, v any, present bool) bool {
	values := []any{v}
	if arr, ok := v.([]any); ok && present {
		values = arr
		if len(arr) == 0 {
			values = []any{nil}
		}
	}
	for _, m := range ms {
		if _, isExists := m.(existsMatcher); isExists {
			if m.match(v, present) {
				return true
			}
			continue
		}
		if !present {
			continue
		}
		for _, val := range values {
			if m.match(val, true) {
				return true
			}
		}
	}
	return false
}

type literalMatcher struct{ want any }

func (m literalMatcher) match(v any, present bool) bool {
	if !present {
		return false
	}
	if wf, ok := m.want.(float64); ok {
		vf, ok := v.(float64)
		return ok && math.Abs(wf-vf) < 1e-12
	}
	return v == m.want
}

type prefixMatcher string

func (m prefixMatcher) match(v any, present bool) bool {
	s, ok := v.(string)
	return present && ok && strings.HasPrefix(s, string(m))
}

type suffixMatcher string

func (m suffixMatcher) match(v any, present bool) bool {
	s, ok := v.(string)
	return present && ok && strings.HasSuffix(s, string(m))
}

type ciMatcher string

func (m ciMatcher) match(v any, present bool) bool {
	s, ok := v.(string)
	return present && ok && strings.EqualFold(s, string(m))
}

type wildcardMatcher string

func (m wildcardMatcher) match(v any, present bool) bool {
	s, ok := v.(string)
	if !present || !ok {
		return false
	}
	return globMatch(string(m), s)
}

// globMatch matches pat against s where '*' matches any run of characters.
func globMatch(pat, s string) bool {
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

type anythingButMatcher struct{ not []any }

func (m anythingButMatcher) match(v any, present bool) bool {
	if !present {
		return false
	}
	for _, n := range m.not {
		if (literalMatcher{want: n}).match(v, true) {
			return false
		}
	}
	return true
}

type existsMatcher bool

func (m existsMatcher) match(_ any, present bool) bool { return present == bool(m) }

type numericTerm struct {
	op  string
	val float64
}

type numericMatcher struct{ terms []numericTerm }

func (m numericMatcher) match(v any, present bool) bool {
	f, ok := v.(float64)
	if !present || !ok {
		return false
	}
	for _, t := range m.terms {
		switch t.op {
		case "<":
			if !(f < t.val) {
				return false
			}
		case "<=":
			if !(f <= t.val) {
				return false
			}
		case ">":
			if !(f > t.val) {
				return false
			}
		case ">=":
			if !(f >= t.val) {
				return false
			}
		case "=":
			if math.Abs(f-t.val) >= 1e-12 {
				return false
			}
		}
	}
	return true
}
