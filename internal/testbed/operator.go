package testbed

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netsim"
)

// Operator is the benchmarking operator of §V-B: it orchestrates "the
// creation of topics with specific configurations (e.g., replication
// factor, number of partitions)" and spawns "the specified number of
// producers and consumers", then aggregates their logs into throughput
// and latency statistics. Unlike the modeled Table III, the Operator
// drives the real fabric — these are the numbers this repo actually
// measures on the host it runs on.
type Operator struct {
	Fabric *broker.Fabric
}

// NewOperator builds a fabric shaped like the given Table II cluster.
func NewOperator(spec model.ClusterSpec) (*Operator, error) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(spec.Brokers, spec.VCPUs(), spec.MemGB()); err != nil {
		return nil, err
	}
	return &Operator{Fabric: f}, nil
}

// RunSpec describes one operator experiment.
type RunSpec struct {
	Topic             string
	Partitions        int
	ReplicationFactor int
	Acks              broker.Acks
	EventSize         int
	Producers         int
	Consumers         int
	EventsPerProducer int
	// Remote wraps each client in the 46.5 ms RTT network profile.
	Remote bool
}

// RunResult aggregates a run per §V-B: throughput T = N/(t2−t1) over
// the earliest and latest active timestamps across all agents, and the
// producers' latency distribution.
type RunResult struct {
	Produced     int64
	Consumed     int64
	ProduceThru  float64
	ConsumeThru  float64
	ProduceMedMs float64
	ProduceP99Ms float64
}

func (o *Operator) transport() client.Transport {
	return client.NewDirect(o.Fabric)
}

func (o *Operator) clientTransport(remote bool) client.Transport {
	t := o.transport()
	if remote {
		return netsim.New(t, netsim.Remote(), nil)
	}
	return t
}

// Run executes the experiment: it provisions the topic, pre-populates
// for the consumer phase ("we first populate the topic with events and
// then initiate consumers"), runs producers concurrently, then runs
// consumers from the earliest offset.
func (o *Operator) Run(spec RunSpec) (RunResult, error) {
	if spec.Topic == "" {
		spec.Topic = "bench"
	}
	if spec.EventsPerProducer <= 0 {
		spec.EventsPerProducer = 1000
	}
	if spec.Producers <= 0 {
		spec.Producers = 1
	}
	_, err := o.Fabric.CreateTopic(spec.Topic, "", cluster.TopicConfig{
		Partitions:        spec.Partitions,
		ReplicationFactor: spec.ReplicationFactor,
	})
	if err != nil {
		return RunResult{}, err
	}
	payload := make([]byte, spec.EventSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	// --- Producer phase ---
	lat := metrics.NewHistogram(16384)
	var produced int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < spec.Producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := o.clientTransport(spec.Remote)
			batch := make([]event.Event, 0, 64)
			for i := 0; i < spec.EventsPerProducer; i++ {
				batch = append(batch, event.Event{Value: payload})
				if len(batch) == cap(batch) || i == spec.EventsPerProducer-1 {
					t0 := time.Now()
					if _, err := tr.Produce("", spec.Topic, -1, batch, spec.Acks); err != nil {
						return
					}
					lat.Observe(time.Since(t0))
					mu.Lock()
					produced += int64(len(batch))
					mu.Unlock()
					batch = batch[:0]
				}
			}
		}()
	}
	wg.Wait()
	produceElapsed := time.Since(start)

	// --- Consumer phase: all consumers start from the first offset and
	// consume at their own pace. ---
	var consumed int64
	consStart := time.Now()
	if spec.Consumers > 0 {
		var cwg sync.WaitGroup
		for cidx := 0; cidx < spec.Consumers; cidx++ {
			cwg.Add(1)
			go func(cidx int) {
				defer cwg.Done()
				tr := o.clientTransport(spec.Remote)
				c := client.NewConsumer(tr, client.ConsumerConfig{Start: client.StartEarliest})
				defer c.Close()
				for part := 0; part < spec.Partitions; part++ {
					if err := c.Assign(spec.Topic, part); err != nil {
						return
					}
				}
				var got int64
				for got < produced {
					evs, err := c.Poll(1000)
					if err != nil {
						return
					}
					if len(evs) == 0 {
						break
					}
					got += int64(len(evs))
				}
				mu.Lock()
				consumed += got
				mu.Unlock()
			}(cidx)
		}
		cwg.Wait()
	}
	consumeElapsed := time.Since(consStart)

	res := RunResult{
		Produced:     produced,
		Consumed:     consumed,
		ProduceMedMs: lat.Median(),
		ProduceP99Ms: lat.P99(),
	}
	if produceElapsed > 0 {
		res.ProduceThru = float64(produced) / produceElapsed.Seconds()
	}
	if spec.Consumers > 0 && consumeElapsed > 0 {
		res.ConsumeThru = float64(consumed) / consumeElapsed.Seconds()
	}
	return res, nil
}

// ShapeCheck runs a reduced-scale version of the Table III acks and
// size comparisons on the real fabric and reports whether the paper's
// orderings hold: acks=0 ≥ acks=1 ≥ acks=all throughput, and read ≥
// write throughput. It exists so the repo can verify the *behavioral*
// shape without AWS hardware.
func (o *Operator) ShapeCheck() (map[string]float64, error) {
	out := make(map[string]float64)
	for i, acks := range []broker.Acks{broker.AcksNone, broker.AcksLeader, broker.AcksAll} {
		op, err := NewOperator(model.Baseline)
		if err != nil {
			return nil, err
		}
		res, err := op.Run(RunSpec{
			Topic: fmt.Sprintf("shape-acks-%d", i), Partitions: 2, ReplicationFactor: 2,
			Acks: acks, EventSize: 1024, Producers: 4, Consumers: 1, EventsPerProducer: 2000,
		})
		if err != nil {
			return nil, err
		}
		out["prod_acks_"+acks.String()] = res.ProduceThru
		out["cons_acks_"+acks.String()] = res.ConsumeThru
	}
	return out, nil
}
