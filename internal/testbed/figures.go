package testbed

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fsmon"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trigger"
	"repro/internal/vclock"
	"repro/internal/wfmon"
)

// --- Figure 3: latency vs throughput for configurations 1–6 ---

// Fig3Point is one (producers, throughput, latency) sample.
type Fig3Point struct {
	Producers  int
	Throughput float64
	MedianMs   float64
	P99Ms      float64
}

// Fig3Series is one experiment's sweep over producer counts.
type Fig3Series struct {
	Label  string
	Points []Fig3Point
}

// RunFigure3 sweeps 20..100 remote producers for experiments 1–6 on the
// baseline cluster, as in Figure 3: throughput rises with producers
// until the cluster saturates, and latency climbs with utilization.
func RunFigure3() []Fig3Series {
	var out []Fig3Series
	for _, exp := range Table3Experiments()[:6] {
		w := model.Workload{
			EventSize:         exp.EventSize,
			Acks:              exp.Acks,
			Partitions:        exp.Partitions,
			ReplicationFactor: exp.RepFactor,
			Locality:          model.Remote,
		}
		cap := model.ProducerThroughput(exp.Cluster, w)
		perProd := model.PerProducerRate(exp.Cluster, w)
		s := Fig3Series{Label: fig3Label(exp)}
		for _, n := range []int{20, 40, 60, 80, 100} {
			offered := float64(n) * perProd
			thru := math.Min(offered, cap)
			util := offered / cap
			s.Points = append(s.Points, Fig3Point{
				Producers:  n,
				Throughput: thru,
				MedianMs:   model.MedianLatencyAt(exp.Cluster, w, util),
				P99Ms:      model.P99LatencyAt(exp.Cluster, w, util),
			})
		}
		out = append(out, s)
	}
	return out
}

func fig3Label(e Experiment) string {
	switch e.Index {
	case 1:
		return "Exp 1: 32 B"
	case 2:
		return "Exp 2: 1 KB (acks=0)"
	case 3:
		return "Exp 3: 1 KB (acks=1)"
	case 4:
		return "Exp 4: 1 KB (acks=all)"
	case 5:
		return "Exp 5: 4 KB"
	default:
		return "Exp 6: 1 KB (pa=4)"
	}
}

// Figure3 renders the sweep as tables (median and P99 vs throughput).
func Figure3() []*Table {
	series := RunFigure3()
	var tables []*Table
	for _, s := range series {
		t := &Table{
			Title:   "Figure 3 series: " + s.Label + " (remote producers, baseline cluster)",
			Columns: []string{"Producers", "Throughput (ev/s)", "Median Lat (ms)", "99%ile Lat (ms)"},
		}
		for _, p := range s.Points {
			t.Add(p.Producers, p.Throughput, fmt.Sprintf("%.0f", p.MedianMs), fmt.Sprintf("%.0f", p.P99Ms))
		}
		tables = append(tables, t)
	}
	return tables
}

// --- Figure 4: trigger autoscaling ---

// Fig4Config matches the paper's synthetic workload: >5000 tasks, each
// sleeping 30 s, buffered evenly across 128 partitions, batch size 1.
type Fig4Config struct {
	Tasks        int
	TaskDuration time.Duration
	Partitions   int
	InitialConc  int
	MaxConc      int
	EvalInterval time.Duration
	Growth       float64
	SampleEvery  time.Duration
}

// DefaultFig4Config returns the paper's parameters.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Tasks:        5120,
		TaskDuration: 30 * time.Second,
		Partitions:   128,
		InitialConc:  3,
		MaxConc:      128,
		EvalInterval: time.Minute,
		Growth:       3.5,
		SampleEvery:  10 * time.Second,
	}
}

// Fig4Result carries the two curves of Figure 4.
type Fig4Result struct {
	QueueDepth  *metrics.Series
	Concurrency *metrics.Series
	// Completed is when the last task finished (relative to start).
	Completed time.Duration
	// PeakConcurrency is the maximum concurrent invocations reached.
	PeakConcurrency int
	// TimeToMaxConc is when concurrency first hit MaxConc.
	TimeToMaxConc time.Duration
}

// RunFigure4 simulates the trigger-scaling experiment in virtual time
// using the production autoscaling policy (trigger.NextConcurrency).
// Lambda-like workers each hold one in-flight invocation of duration
// TaskDuration; the scaler re-evaluates queue pressure every minute.
func RunFigure4(cfg Fig4Config) Fig4Result {
	origin := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	sim := vclock.NewSim(origin)
	res := Fig4Result{
		QueueDepth:  metrics.NewSeries("queue_depth"),
		Concurrency: metrics.NewSeries("concurrent_invocations"),
	}
	queue := cfg.Tasks
	inFlight := 0
	conc := cfg.InitialConc
	var completedAt time.Duration
	reachedMax := time.Duration(-1)

	// launch fills idle capacity from the queue.
	var launch func()
	launch = func() {
		for inFlight < conc && queue > 0 {
			queue--
			inFlight++
			sim.After(cfg.TaskDuration, func() {
				inFlight--
				if queue == 0 && inFlight == 0 {
					completedAt = sim.Now().Sub(origin)
				}
				launch()
			})
		}
	}
	launch()

	// The Lambda-style scaler re-evaluates processing pressure each
	// interval (§IV-D: "Lambda evaluates the processing pressure at
	// 1 min intervals").
	sim.Every(cfg.EvalInterval, func() bool {
		backlog := int64(queue + inFlight)
		conc = trigger.NextConcurrency(conc, backlog, 1, cfg.Partitions, cfg.InitialConc, cfg.MaxConc, cfg.Growth)
		if conc == cfg.MaxConc && reachedMax < 0 {
			reachedMax = sim.Now().Sub(origin)
		}
		launch()
		return queue > 0 || inFlight > 0
	})

	// Sampler for the figure's curves.
	sim.Every(cfg.SampleEvery, func() bool {
		res.QueueDepth.Record(sim.Now(), float64(queue))
		res.Concurrency.Record(sim.Now(), float64(inFlight))
		if p := inFlight; p > res.PeakConcurrency {
			res.PeakConcurrency = p
		}
		return queue > 0 || inFlight > 0
	})

	sim.RunAll()
	res.Completed = completedAt
	res.TimeToMaxConc = reachedMax
	return res
}

// Figure4 renders the autoscaling run.
func Figure4() *Table {
	res := RunFigure4(DefaultFig4Config())
	t := &Table{
		Title:   "Figure 4: Trigger scaling (5120 x 30 s tasks, 128 partitions, batch=1)",
		Columns: []string{"Time (s)", "Queue Depth", "Concurrent Invocations"},
	}
	qs, cs := res.QueueDepth.Points(), res.Concurrency.Points()
	for i := range qs {
		if i >= len(cs) {
			break
		}
		if i%6 != 0 { // sample every minute for the printout
			continue
		}
		t.Add(int(qs[i].T.Sub(qs[0].T).Seconds()), qs[i].V, cs[i].V)
	}
	t.Add("-", "-", "-")
	t.Add(fmt.Sprintf("done=%.0fs", res.Completed.Seconds()),
		fmt.Sprintf("max_conc@%.0fs", res.TimeToMaxConc.Seconds()),
		fmt.Sprintf("peak=%d", res.PeakConcurrency))
	return t
}

// TriggerThroughputTable reproduces the §V-D text numbers: trigger
// consumer throughput by partitions and event size.
func TriggerThroughputTable() *Table {
	t := &Table{
		Title:   "Sec V-D: Trigger throughput (events/s) by partitions and event size",
		Columns: []string{"Partitions", "32 B", "1 KB", "4 KB"},
	}
	for _, parts := range []int{1, 2, 4, 8} {
		t.Add(parts,
			model.TriggerThroughput(32, parts),
			model.TriggerThroughput(1024, parts),
			model.TriggerThroughput(4096, parts))
	}
	return t
}

// --- Figure 5: multi-tenancy ---

// Fig5Point is one (topics, producer thru, consumer thru) sample.
type Fig5Point struct {
	Topics   int
	ProdThru float64
	ConsThru float64
}

// RunFigure5 sweeps 1..32 topics (powers of two), 32 producers and 32
// consumers of 1 KB events on the scale-out cluster, one partition and
// rf=2 per topic (§V-E).
func RunFigure5() []Fig5Point {
	var out []Fig5Point
	for topics := 1; topics <= 32; topics *= 2 {
		out = append(out, Fig5Point{
			Topics:   topics,
			ProdThru: model.TenancyProducerThroughput(topics),
			ConsThru: model.TenancyConsumerThroughput(topics),
		})
	}
	return out
}

// Figure5 renders the tenancy sweep.
func Figure5() *Table {
	t := &Table{
		Title:   "Figure 5: Throughput vs number of topics (32 producers / 32 consumers, 1 KB)",
		Columns: []string{"Topics", "Producer Thru (ev/s)", "Consumer Thru (ev/s)"},
	}
	for _, p := range RunFigure5() {
		t.Add(p.Topics, p.ProdThru, p.ConsThru)
	}
	return t
}

// --- Figure 7: data-automation trigger activity ---

// Fig7Config shapes the FS-synchronization scenario of §VI-B.
type Fig7Config struct {
	// Bursts and BurstInterval drive the FS monitor's activity spikes.
	Bursts        int
	BurstInterval time.Duration
	// TransferTime is how long one Globus-Transfer-like action takes.
	TransferTime time.Duration
	// MaxConc bounds concurrent trigger invocations.
	MaxConc int
	// EvalInterval is the scaler period (shorter than Figure 4's: the
	// paper's Figure 7 window is only ~150 s).
	EvalInterval time.Duration
	SampleEvery  time.Duration
}

// DefaultFig7Config matches the figure's ~150 s window with queue
// depths peaking around 100 and up to 8 concurrent invocations.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Bursts:        6,
		BurstInterval: 20 * time.Second,
		TransferTime:  4 * time.Second,
		MaxConc:       8,
		EvalInterval:  10 * time.Second,
		SampleEvery:   time.Second,
	}
}

// Fig7Result carries the Figure 7 curves and aggregation statistics.
type Fig7Result struct {
	QueueDepth  *metrics.Series
	Concurrency *metrics.Series
	RawEvents   int64
	Forwarded   int64
	Transfers   int
	Reduction   float64
}

// RunFigure7 simulates the hierarchical pipeline: FSMon bursts → local
// aggregator (dedupe) → global topic → create-filtered trigger →
// transfer actions, in virtual time, using the real fsmon generator,
// aggregator, pattern filter and autoscaling policy.
func RunFigure7(cfg Fig7Config) Fig7Result {
	origin := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	sim := vclock.NewSim(origin)
	gen := fsmon.NewGenerator(fsmon.GeneratorConfig{FilesPerBurst: 24, ModifiesPerFile: 10})
	agg := fsmon.NewAggregator(30 * time.Second)
	pat := `{"value": {"event_type": ["created"]}}`
	_ = pat // the filter below implements the same predicate via fsmon types
	res := Fig7Result{
		QueueDepth:  metrics.NewSeries("fs_queue_depth"),
		Concurrency: metrics.NewSeries("transfer_invocations"),
	}
	queue := 0 // create events awaiting transfer
	inFlight := 0
	conc := 1
	var launch func()
	launch = func() {
		for inFlight < conc && queue > 0 {
			queue--
			inFlight++
			res.Transfers++
			sim.After(cfg.TransferTime, func() {
				inFlight--
				launch()
			})
		}
	}
	// FS bursts arrive periodically; the aggregator filters, and only
	// creation events (Listing 1's pattern) enqueue transfers.
	for b := 0; b < cfg.Bursts; b++ {
		at := time.Duration(b) * cfg.BurstInterval
		sim.After(at, func() {
			burst := gen.Burst(sim.Now())
			for _, ev := range agg.Filter(burst) {
				if ev.Type == fsmon.OpCreate {
					queue++
				}
			}
			launch()
		})
	}
	sim.Every(cfg.EvalInterval, func() bool {
		conc = trigger.NextConcurrency(conc, int64(queue+inFlight), 1, 128, 1, cfg.MaxConc, 2.0)
		launch()
		return sim.Now().Sub(origin) < time.Duration(cfg.Bursts+4)*cfg.BurstInterval
	})
	sim.Every(cfg.SampleEvery, func() bool {
		res.QueueDepth.Record(sim.Now(), float64(queue))
		res.Concurrency.Record(sim.Now(), float64(inFlight))
		return sim.Now().Sub(origin) < time.Duration(cfg.Bursts+4)*cfg.BurstInterval
	})
	sim.RunAll()
	res.RawEvents = agg.In
	res.Forwarded = agg.Out
	res.Reduction = agg.ReductionFactor()
	return res
}

// Figure7 renders the data-automation activity trace.
func Figure7() *Table {
	res := RunFigure7(DefaultFig7Config())
	t := &Table{
		Title:   "Figure 7: Data-automation trigger activity (FS events -> aggregator -> transfers)",
		Columns: []string{"Time (s)", "Queue Depth", "Concurrent Invocations"},
	}
	qs, cs := res.QueueDepth.Points(), res.Concurrency.Points()
	for i := range qs {
		if i >= len(cs) || i%10 != 0 {
			continue
		}
		t.Add(int(qs[i].T.Sub(qs[0].T).Seconds()), qs[i].V, cs[i].V)
	}
	t.Add("-", "-", "-")
	t.Add(fmt.Sprintf("raw=%d", res.RawEvents),
		fmt.Sprintf("forwarded=%d", res.Forwarded),
		fmt.Sprintf("transfers=%d (%.1fx reduction)", res.Transfers, res.Reduction))
	return t
}

// --- Figure 8: workflow monitoring overhead ---

// Fig8Cell is one bar of Figure 8.
type Fig8Cell struct {
	Workers  int
	Duration time.Duration
	System   string
	Overhead float64 // ms per event
}

// RunFigure8 computes the full grid: workers 1..64 × durations
// {0, 10 ms, 100 ms} × {HTEX, Octopus}, 128 tasks over 8 nodes.
func RunFigure8() []Fig8Cell {
	var out []Fig8Cell
	for _, dur := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond} {
		for _, workers := range []int{1, 2, 4, 8, 16, 32, 64} {
			cfg := wfmon.RunConfig{Tasks: 128, Nodes: 8, Workers: workers, TaskDuration: dur}
			for _, m := range []wfmon.MonitorModel{wfmon.HTEXModel(), wfmon.OctopusModel()} {
				r := wfmon.SimulateRun(cfg, m)
				out = append(out, Fig8Cell{
					Workers:  workers,
					Duration: dur,
					System:   m.Name,
					Overhead: r.OverheadPerEventMs,
				})
			}
		}
	}
	return out
}

// Figure8 renders the monitoring-overhead grid, one table per duration.
func Figure8() []*Table {
	cells := RunFigure8()
	byDur := map[time.Duration]map[int]map[string]float64{}
	for _, c := range cells {
		if byDur[c.Duration] == nil {
			byDur[c.Duration] = map[int]map[string]float64{}
		}
		if byDur[c.Duration][c.Workers] == nil {
			byDur[c.Duration][c.Workers] = map[string]float64{}
		}
		byDur[c.Duration][c.Workers][c.System] = c.Overhead
	}
	var tables []*Table
	for _, dur := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond} {
		name := "noop"
		if dur > 0 {
			name = fmt.Sprintf("sleep%dms", dur/time.Millisecond)
		}
		t := &Table{
			Title:   "Figure 8 (" + name + "): async overhead per event (ms), 128 tasks / 8 nodes",
			Columns: []string{"Workers", "HTEX", "Octopus"},
		}
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
			t.Add(w,
				fmt.Sprintf("%.2f", byDur[dur][w]["HTEX"]),
				fmt.Sprintf("%.2f", byDur[dur][w]["Octopus"]))
		}
		tables = append(tables, t)
	}
	return tables
}
