package testbed

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/metrics"
)

// CSV export: each figure's data as plottable files, so downstream
// users can regenerate the paper's plots with any tool. Used by
// `octopus-bench -csv <dir>`.

// WriteCSV renders a Table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeSeriesCSV writes (t_seconds, value) pairs relative to the first
// sample.
func writeSeriesCSV(w io.Writer, name string, s *metrics.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", name}); err != nil {
		return err
	}
	pts := s.Points()
	if len(pts) == 0 {
		cw.Flush()
		return cw.Error()
	}
	t0 := pts[0].T
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.T.Sub(t0).Seconds(), 'f', 1, 64),
			strconv.FormatFloat(p.V, 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV writes every experiment's data into dir, one file per
// artifact, and returns the file names written.
func ExportCSV(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	save := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}

	if err := save("table1_use_cases.csv", Table1().WriteCSV); err != nil {
		return written, err
	}
	if err := save("table2_clusters.csv", Table2().WriteCSV); err != nil {
		return written, err
	}
	if err := save("table3_performance.csv", Table3().WriteCSV); err != nil {
		return written, err
	}
	for i, t := range Figure3() {
		if err := save(fmt.Sprintf("figure3_series%d.csv", i+1), t.WriteCSV); err != nil {
			return written, err
		}
	}
	fig4 := RunFigure4(DefaultFig4Config())
	if err := save("figure4_queue_depth.csv", func(w io.Writer) error {
		return writeSeriesCSV(w, "queue_depth", fig4.QueueDepth)
	}); err != nil {
		return written, err
	}
	if err := save("figure4_concurrency.csv", func(w io.Writer) error {
		return writeSeriesCSV(w, "concurrent_invocations", fig4.Concurrency)
	}); err != nil {
		return written, err
	}
	if err := save("figure5_tenancy.csv", Figure5().WriteCSV); err != nil {
		return written, err
	}
	fig7 := RunFigure7(DefaultFig7Config())
	if err := save("figure7_queue_depth.csv", func(w io.Writer) error {
		return writeSeriesCSV(w, "fs_queue_depth", fig7.QueueDepth)
	}); err != nil {
		return written, err
	}
	if err := save("figure7_concurrency.csv", func(w io.Writer) error {
		return writeSeriesCSV(w, "transfer_invocations", fig7.Concurrency)
	}); err != nil {
		return written, err
	}
	for i, t := range Figure8() {
		if err := save(fmt.Sprintf("figure8_grid%d.csv", i+1), t.WriteCSV); err != nil {
			return written, err
		}
	}
	if err := save("cost_model.csv", CostTable().WriteCSV); err != nil {
		return written, err
	}
	if err := save("trigger_throughput.csv", TriggerThroughputTable().WriteCSV); err != nil {
		return written, err
	}
	return written, nil
}
