package testbed

import "fmt"

// CostModel holds the AWS price constants of §VII-C.
type CostModel struct {
	// BrokerHourUSD is the smallest MSK node price ($0.0456/h).
	BrokerHourUSD float64
	// EgressPerGBUSD is MSK-to-remote-consumer egress ($0.09/GB).
	EgressPerGBUSD float64
	// LambdaPerMillionUSD is the trigger cost for 1 M requests at
	// 128 MB / 5 s ($10).
	LambdaPerMillionUSD float64
	// MinBrokers is MSK's two-node minimum.
	MinBrokers int
}

// DefaultCostModel returns the paper's constants.
func DefaultCostModel() CostModel {
	return CostModel{
		BrokerHourUSD:       0.0456,
		EgressPerGBUSD:      0.09,
		LambdaPerMillionUSD: 10,
		MinBrokers:          2,
	}
}

// MonthlyClusterUSD is the standing cluster cost (~$70/month minimum).
func (c CostModel) MonthlyClusterUSD(brokers int) float64 {
	if brokers < c.MinBrokers {
		brokers = c.MinBrokers
	}
	return float64(brokers) * c.BrokerHourUSD * 24 * 30
}

// DailyTriggerUSD prices a trigger workload: invocations per day at the
// Lambda rate.
func (c CostModel) DailyTriggerUSD(invocationsPerDay float64) float64 {
	return invocationsPerDay / 1e6 * c.LambdaPerMillionUSD
}

// DailyEgressUSD prices event egress to remote consumers.
func (c CostModel) DailyEgressUSD(eventsPerDay float64, eventBytes int) float64 {
	gb := eventsPerDay * float64(eventBytes) / (1 << 30)
	return gb * c.EgressPerGBUSD
}

// SchedulingExample reproduces the §VII-C worked example: 10 000
// events/hour for each of 10 resources = 2.4 M lambdas/day ≈ $24/day,
// with negligible egress.
func (c CostModel) SchedulingExample() (invocations float64, triggerUSD, egressUSD float64) {
	invocations = 10000 * 10 * 24
	triggerUSD = c.DailyTriggerUSD(invocations)
	egressUSD = c.DailyEgressUSD(invocations, 4096)
	return
}

// CostTable renders the §VII-C cost analysis, including the mitigation
// the paper highlights: hierarchical aggregation cutting invocations by
// orders of magnitude.
func CostTable() *Table {
	c := DefaultCostModel()
	t := &Table{
		Title:   "Sec VII-C: Cloud cost model",
		Columns: []string{"Item", "Value"},
	}
	t.Add("Cluster minimum (2 brokers, month)", fmt.Sprintf("$%.0f", c.MonthlyClusterUSD(2)))
	inv, trig, egress := c.SchedulingExample()
	t.Add("Scheduling example lambdas/day", fmt.Sprintf("%.1fM", inv/1e6))
	t.Add("Scheduling example trigger cost/day", fmt.Sprintf("$%.0f", trig))
	t.Add("Scheduling example egress cost/day", fmt.Sprintf("$%.2f", egress))
	// Mitigation: a 100x aggregator cuts the trigger bill 100x.
	t.Add("With 100x hierarchical aggregation", fmt.Sprintf("$%.2f/day", c.DailyTriggerUSD(inv/100)))
	return t
}
