package testbed

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/model"
)

func TestTable1HasFiveUseCases(t *testing.T) {
	ucs := Table1UseCases()
	if len(ucs) != 5 {
		t.Fatalf("use cases = %d", len(ucs))
	}
	rendered := Table1().String()
	for _, want := range []string{"SDL", "Data Auto.", "Scheduling", "Epidemic", "Workflow"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	s := Table2().String()
	for _, want := range []string{"Baseline", "Scale-up", "Scale-out", "kafka.m5.large", "kafka.m5.xlarge"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTable3HasNineExperimentsBothLocalities(t *testing.T) {
	rows := RunTable3()
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 9 experiments x 2 localities", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Locality != model.Local || rows[i+1].Locality != model.Remote {
			t.Fatalf("row %d locality ordering broken", i)
		}
		if rows[i].ProdThru <= 0 || rows[i].ConsThru <= 0 {
			t.Fatalf("row %d has zero throughput", i)
		}
	}
	// Spot-check the headline cells: >4.2 M produce, >9.6 M consume.
	if rows[0].ProdThru < 4.2e6 {
		t.Errorf("exp1 local produce = %.0f, want >= 4.2M", rows[0].ProdThru)
	}
	if rows[0].ConsThru < 9.6e6 {
		t.Errorf("exp1 local consume = %.0f, want >= 9.6M", rows[0].ConsThru)
	}
}

func TestFigure3SeriesShape(t *testing.T) {
	series := RunFigure3()
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Throughput < s.Points[i-1].Throughput {
				t.Errorf("%s: throughput decreased with more producers", s.Label)
			}
			if s.Points[i].MedianMs < s.Points[i-1].MedianMs {
				t.Errorf("%s: latency decreased with more load", s.Label)
			}
		}
	}
	// The 32 B series peaks in the millions; 4 KB stays in the tens of K.
	last := func(i int) Fig3Point { return series[i].Points[len(series[i].Points)-1] }
	if last(0).Throughput < 4e6 {
		t.Errorf("32 B peak = %.0f", last(0).Throughput)
	}
	if last(4).Throughput > 50e3 {
		t.Errorf("4 KB peak = %.0f", last(4).Throughput)
	}
	// acks=all saturates far below acks=0.
	if !(last(3).Throughput < last(1).Throughput/2) {
		t.Errorf("acks=all peak %.0f not well below acks=0 peak %.0f", last(3).Throughput, last(1).Throughput)
	}
}

func TestFigure4ReproducesScalingStory(t *testing.T) {
	res := RunFigure4(DefaultFig4Config())
	// Concurrency reaches 128 within ~4 minutes (paper: "scaled up from
	// 3 to 128 within four minutes").
	if res.TimeToMaxConc <= 0 || res.TimeToMaxConc > 5*time.Minute {
		t.Errorf("time to max concurrency = %v, want <= 5 min", res.TimeToMaxConc)
	}
	if res.PeakConcurrency != 128 {
		t.Errorf("peak concurrency = %d, want 128", res.PeakConcurrency)
	}
	// All tasks complete in roughly the paper's 1500 s window.
	if res.Completed < 15*time.Minute || res.Completed > 30*time.Minute {
		t.Errorf("completion = %v, want 15-30 min", res.Completed)
	}
	// Queue drains monotonically after the ramp.
	qs := res.QueueDepth.Points()
	if qs[0].V < 4000 {
		t.Errorf("initial queue = %v", qs[0].V)
	}
	if last := qs[len(qs)-1].V; last > 128 {
		t.Errorf("final queue = %v", last)
	}
}

func TestFigure4ScaleDownBeforeCompletion(t *testing.T) {
	res := RunFigure4(DefaultFig4Config())
	// "scaling down shortly before the workload is complete": the last
	// concurrency samples fall below the peak.
	cs := res.Concurrency.Points()
	tail := cs[len(cs)-1]
	if tail.V >= float64(res.PeakConcurrency) {
		t.Errorf("no scale-down at tail: %v", tail.V)
	}
}

func TestTriggerThroughputTableShape(t *testing.T) {
	s := TriggerThroughputTable().String()
	if !strings.Contains(s, "22K") || !strings.Contains(s, "7K") || !strings.Contains(s, "2K") {
		t.Errorf("1-partition row missing paper numbers:\n%s", s)
	}
}

func TestFigure5Shape(t *testing.T) {
	pts := RunFigure5()
	if len(pts) != 6 { // 1,2,4,8,16,32
		t.Fatalf("points = %d", len(pts))
	}
	// Producer flat after 4 topics; consumer rises to 16.
	var at4, at8, at32 float64
	for _, p := range pts {
		switch p.Topics {
		case 4:
			at4 = p.ProdThru
		case 8:
			at8 = p.ProdThru
		case 32:
			at32 = p.ProdThru
		}
	}
	if at4 != at8 || at8 != at32 {
		t.Errorf("producer tenancy not flat past 4 topics: %v %v %v", at4, at8, at32)
	}
	if pts[0].ConsThru >= pts[4].ConsThru {
		t.Error("consumer tenancy should grow to 16 topics")
	}
}

func TestFigure7PipelineReduction(t *testing.T) {
	res := RunFigure7(DefaultFig7Config())
	if res.RawEvents == 0 || res.Forwarded == 0 {
		t.Fatal("no events flowed")
	}
	// Aggregation cuts volume substantially (modify storms collapse).
	if res.Reduction < 2 {
		t.Errorf("reduction = %.2fx, want >= 2x", res.Reduction)
	}
	// Transfers equal the number of distinct created files (24 files x
	// 6 bursts).
	if res.Transfers != 24*6 {
		t.Errorf("transfers = %d, want %d", res.Transfers, 24*6)
	}
	// Concurrency stayed within the Lambda cap and exercised scaling.
	if res.Concurrency.MaxValue() > 8 {
		t.Errorf("concurrency exceeded cap: %v", res.Concurrency.MaxValue())
	}
	if res.Concurrency.MaxValue() < 2 {
		t.Errorf("concurrency never scaled: %v", res.Concurrency.MaxValue())
	}
	// Queue returns to zero by the end.
	qs := res.QueueDepth.Points()
	if qs[len(qs)-1].V != 0 {
		t.Errorf("queue not drained: %v", qs[len(qs)-1].V)
	}
}

func TestFigure8Shape(t *testing.T) {
	cells := RunFigure8()
	if len(cells) != 3*7*2 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(workers int, dur time.Duration, sys string) float64 {
		for _, c := range cells {
			if c.Workers == workers && c.Duration == dur && c.System == sys {
				return c.Overhead
			}
		}
		t.Fatalf("missing cell %d/%v/%s", workers, dur, sys)
		return 0
	}
	for _, dur := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond} {
		// Octopus beats HTEX everywhere.
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
			h, o := get(w, dur, "HTEX"), get(w, dur, "Octopus")
			if o >= h {
				t.Errorf("dur=%v workers=%d: Octopus %.2f !< HTEX %.2f", dur, w, o, h)
			}
		}
		// Per-event overhead decreases with workers for HTEX... except
		// that a fully serialized DB bottoms out; require 64-worker
		// overhead below 1-worker overhead.
		if get(64, dur, "HTEX") >= get(1, dur, "HTEX") {
			t.Errorf("dur=%v: HTEX overhead did not fall with workers", dur)
		}
	}
}

func TestCostModelExample(t *testing.T) {
	c := DefaultCostModel()
	inv, trig, egress := c.SchedulingExample()
	if inv != 2.4e6 {
		t.Errorf("invocations = %v, want 2.4M", inv)
	}
	// Paper: "costs $24 daily".
	if trig < 23 || trig > 25 {
		t.Errorf("trigger cost = $%.2f, want ~$24", trig)
	}
	// "The incurred egress costs in this example would be negligible."
	if egress > 2 {
		t.Errorf("egress = $%.2f, want negligible", egress)
	}
	// "~$70" monthly minimum.
	if m := c.MonthlyClusterUSD(0); m < 60 || m > 80 {
		t.Errorf("monthly minimum = $%.2f", m)
	}
	// Aggregation mitigation shrinks the bill.
	if c.DailyTriggerUSD(inv/100) >= trig/50 {
		t.Error("aggregation mitigation not effective")
	}
}

func TestOperatorRealFabricShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric shape check is not short")
	}
	op, err := NewOperator(model.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	res, err := op.Run(RunSpec{
		Topic: "op-test", Partitions: 2, ReplicationFactor: 2,
		Acks: broker.AcksLeader, EventSize: 256,
		Producers: 4, Consumers: 2, EventsPerProducer: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Produced != 8000 {
		t.Fatalf("produced = %d", res.Produced)
	}
	if res.Consumed != 16000 { // 2 consumers x full topic
		t.Fatalf("consumed = %d", res.Consumed)
	}
	if res.ProduceThru <= 0 || res.ConsumeThru <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("x", 1234567.0)
	s := tb.String()
	if !strings.Contains(s, "1.23M") {
		t.Errorf("missing M formatting:\n%s", s)
	}
	if !strings.Contains(s, "2.50") {
		t.Errorf("missing float formatting:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 5 { // title, header, sep, 2 rows
		t.Errorf("unexpected layout:\n%s", s)
	}
}

func TestSeriesTable(t *testing.T) {
	tb := SeriesTable("S", "x", []float64{1, 2}, map[string][]float64{"y": {10, 20}}, []string{"y"})
	s := tb.String()
	if !strings.Contains(s, "10") || !strings.Contains(s, "20") {
		t.Errorf("series table missing data:\n%s", s)
	}
}

func TestExportCSV(t *testing.T) {
	dir := t.TempDir()
	files, err := ExportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 12 {
		t.Fatalf("exported %d files: %v", len(files), files)
	}
	// Every file parses as CSV with a header and at least one data row.
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has %d rows", name, len(rows))
		}
	}
}

func TestShapeCheckRunsAllAcksLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("real-fabric shape check is not short")
	}
	op, err := NewOperator(model.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	out, err := op.ShapeCheck()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"prod_acks_0", "prod_acks_1", "prod_acks_all",
		"cons_acks_0", "cons_acks_1", "cons_acks_all",
	} {
		if out[key] <= 0 {
			t.Fatalf("%s = %v", key, out[key])
		}
	}
	// Reads at least match writes on the real in-process fabric.
	if out["cons_acks_0"] < out["prod_acks_0"]*0.5 {
		t.Fatalf("consume (%v) implausibly below produce (%v)", out["cons_acks_0"], out["prod_acks_0"])
	}
}
