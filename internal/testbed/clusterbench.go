package testbed

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/clusternet"
	"repro/internal/event"
	"repro/internal/wire"
)

// ClusterRoutingFixture is the shared leader-direct-vs-proxied routing
// comparison: a multi-broker clusternet fabric with every broker
// behind its own emulated WAN link, plus the same fabric behind one
// unscoped listener reached through a forwarding hop (two chained
// links — what reaching a partition leader through a gateway broker
// costs). The BenchmarkLeaderDirectRouting CI gate and the
// operator-facing octopus-bench -cluster both run exactly this
// fixture, so the number the operator sees is the number CI gates.
type ClusterRoutingFixture struct {
	Cluster *clusternet.Cluster
	// Direct routes by OpMetadata and dials partition leaders through
	// their own links; Proxied funnels everything through the gateway.
	Direct  *wire.Client
	Proxied *wire.Client
	// Topic has 2x brokers partitions at replication factor 2, so
	// every broker leads some of them.
	Topic      string
	Partitions int
	// Workers serial producers each produce Rounds batches of Batch
	// per Run — round-trip-bound, the regime routing hops dominate.
	Workers, Rounds int
	Batch           []event.Event

	closers []func()
}

// NewClusterRoutingFixture builds the fixture over oneWay-delay links.
// Close releases every listener, proxy and client.
func NewClusterRoutingFixture(brokers, workers, rounds, batchEvents, eventSize int, oneWay time.Duration) (*ClusterRoutingFixture, error) {
	x := &ClusterRoutingFixture{
		Topic: "bench", Partitions: 2 * brokers,
		Workers: workers, Rounds: rounds,
	}
	fail := func(err error) (*ClusterRoutingFixture, error) {
		x.Close()
		return nil, err
	}
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(brokers, 2, 8); err != nil {
		return fail(err)
	}
	cnet, err := clusternet.Serve(f, clusternet.Options{
		AllowAnonymous: true,
		Advertise: func(id int, bound string) (string, error) {
			addr, stop, perr := DelayProxy(bound, oneWay)
			if perr != nil {
				return "", perr
			}
			x.closers = append(x.closers, stop)
			return addr, nil
		},
	})
	if err != nil {
		return fail(err)
	}
	x.Cluster = cnet
	x.closers = append(x.closers, cnet.Close)
	if _, err := f.CreateTopic(x.Topic, "", cluster.TopicConfig{Partitions: x.Partitions, ReplicationFactor: 2}); err != nil {
		return fail(err)
	}

	gw := wire.NewServer(f)
	gw.AllowAnonymous = true
	gwAddr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	x.closers = append(x.closers, gw.Close)
	hop, stop1, err := DelayProxy(gwAddr, oneWay)
	if err != nil {
		return fail(err)
	}
	x.closers = append(x.closers, stop1)
	gwRemote, stop2, err := DelayProxy(hop, oneWay)
	if err != nil {
		return fail(err)
	}
	x.closers = append(x.closers, stop2)

	if x.Direct, err = wire.DialOptions(cnet.Addr(0), wire.Options{Anonymous: true}); err != nil {
		return fail(err)
	}
	x.closers = append(x.closers, func() { x.Direct.Close() })
	if !x.Direct.RouterEnabled() {
		return fail(fmt.Errorf("testbed: leader-direct client did not enable metadata routing"))
	}
	if x.Proxied, err = wire.DialOptions(gwRemote, wire.Options{Anonymous: true, DisableClusterMeta: true}); err != nil {
		return fail(err)
	}
	x.closers = append(x.closers, func() { x.Proxied.Close() })

	x.Batch = make([]event.Event, batchEvents)
	for i := range x.Batch {
		x.Batch[i] = event.Event{Value: make([]byte, eventSize)}
	}
	return x, nil
}

// Run drives the workload through one of the fixture's clients and
// returns its throughput in events/s: Workers goroutines, each
// producing Rounds batches serially to its own partition.
func (x *ClusterRoutingFixture) Run(c *wire.Client) (float64, error) {
	errs := make([]error, x.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < x.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < x.Rounds; r++ {
				if _, err := c.Produce("", x.Topic, w%x.Partitions, x.Batch, broker.AcksLeader); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(x.Workers*x.Rounds*len(x.Batch)) / time.Since(start).Seconds(), nil
}

// Close releases everything the fixture opened, in reverse order.
func (x *ClusterRoutingFixture) Close() {
	for i := len(x.closers) - 1; i >= 0; i-- {
		x.closers[i]()
	}
	x.closers = nil
}
