// Package testbed is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§V, §VI-E) from this repo's
// implementations — the calibrated capacity model for the
// hardware-bound microbenchmarks (Table III, Figures 3 and 5) and
// discrete simulations of the real components for the behavioral
// experiments (Figures 4, 7 and 8). The benchmarking operator of §V-B
// (topic creation, producer/consumer spawning, log aggregation) lives in
// operator.go and exercises the real fabric.
package testbed

import (
	"fmt"
	"strings"
)

// Table is a printable result table in the paper's row/column format.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fK", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders (x, y...) series as a table, the textual stand-in
// for the paper's figures.
func SeriesTable(title string, xName string, xs []float64, series map[string][]float64, order []string) *Table {
	t := &Table{Title: title, Columns: append([]string{xName}, order...)}
	for i, x := range xs {
		row := []any{x}
		for _, name := range order {
			ys := series[name]
			if i < len(ys) {
				row = append(row, ys[i])
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}
