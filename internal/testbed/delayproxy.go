package testbed

import (
	"net"
	"time"
)

// DelayProxy listens on an ephemeral loopback port and forwards TCP
// bytes to target in both directions with a fixed one-way delay,
// emulating the WAN round trip of the paper's hybrid deployment
// (remote producers/consumers on edge or HPC resources, fabric in the
// cloud). It is what makes latency-sensitive transport comparisons
// meaningful on a single host: on loopback there is no round trip to
// hide, so pipelined, prefetching and streaming clients all converge
// on per-op CPU cost — the regime the transport was built for is the
// remote one. The CI benchmark gates (perf_test.go) and the
// operator-facing octopus-bench -stream comparison share this one
// implementation so they measure the same link. stop closes the
// listener; established relays drain on their own.
func DelayProxy(target string, oneWay time.Duration) (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() {
		for {
			src, err := ln.Accept()
			if err != nil {
				return
			}
			dst, err := net.Dial("tcp", target)
			if err != nil {
				src.Close()
				continue
			}
			go delayCopy(dst, src, oneWay)
			go delayCopy(src, dst, oneWay)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// delayCopy relays src to dst, releasing each chunk only after the
// one-way delay has elapsed (ordering preserved).
func delayCopy(dst, src net.Conn, oneWay time.Duration) {
	type chunk struct {
		due  time.Time
		data []byte
	}
	ch := make(chan chunk, 4096)
	go func() {
		defer dst.Close()
		for c := range ch {
			time.Sleep(time.Until(c.due))
			if _, err := dst.Write(c.data); err != nil {
				return
			}
		}
	}()
	defer close(ch)
	buf := make([]byte, 64<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			ch <- chunk{due: time.Now().Add(oneWay), data: append([]byte(nil), buf[:n]...)}
		}
		if err != nil {
			return
		}
	}
}
