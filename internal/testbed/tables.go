package testbed

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/model"
)

// UseCase is one row of Table I: the event characteristics of the five
// motivating applications (R = number of managed resources).
type UseCase struct {
	Name          string
	EventsPerHour string // order of magnitude × R
	MeanEventSize string
	Topics        string
	Producers     string
	Consumers     string
}

// Table1UseCases returns the paper's Table I.
func Table1UseCases() []UseCase {
	return []UseCase{
		{"SDL", "O(10^2) x R", "0.5 KB", "1", "R", "1"},
		{"Data Auto.", "O(10^3) x R", "4 KB", "1", "R", "Trigger"},
		{"Scheduling", "O(10^4) x R", "1 KB", "R", "R", "1"},
		{"Epidemic", "O(10) x R", "1 KB", "R", "R", "Trigger"},
		{"Workflow", "O(10^3) x R", "1 KB", "R", "R", "R"},
	}
}

// Table1 renders Table I.
func Table1() *Table {
	t := &Table{
		Title:   "Table I: Characteristics of events for Octopus use cases",
		Columns: []string{"Use Case", "Events/Hour", "Mean Event Size", "Num Topics", "Num Producers", "Num Consumers"},
	}
	for _, u := range Table1UseCases() {
		t.Add(u.Name, u.EventsPerHour, u.MeanEventSize, u.Topics, u.Producers, u.Consumers)
	}
	return t
}

// Table2 renders the testbed cluster configurations (Table II).
func Table2() *Table {
	t := &Table{
		Title:   "Table II: Testbed cluster configurations",
		Columns: []string{"Name", "Number Brokers", "Broker Type", "vCPUs/Broker", "Mem/Broker"},
	}
	for _, c := range []model.ClusterSpec{model.Baseline, model.ScaleUp, model.ScaleOut} {
		t.Add(c.Name, c.Brokers, string(c.Type), c.VCPUs(), fmt.Sprintf("%d GB", c.MemGB()))
	}
	return t
}

// Experiment is one Table III row's configuration.
type Experiment struct {
	Index      int
	Cluster    model.ClusterSpec
	RepFactor  int
	Partitions int
	Acks       broker.Acks
	EventSize  int
}

// Table3Experiments returns the nine experiment configurations of
// Table III.
func Table3Experiments() []Experiment {
	return []Experiment{
		{1, model.Baseline, 2, 2, broker.AcksNone, 32},
		{2, model.Baseline, 2, 2, broker.AcksNone, 1024},
		{3, model.Baseline, 2, 2, broker.AcksLeader, 1024},
		{4, model.Baseline, 2, 2, broker.AcksAll, 1024},
		{5, model.Baseline, 2, 2, broker.AcksNone, 4096},
		{6, model.Baseline, 2, 4, broker.AcksNone, 1024},
		{7, model.ScaleUp, 2, 4, broker.AcksNone, 1024},
		{8, model.ScaleOut, 2, 4, broker.AcksNone, 1024},
		{9, model.ScaleOut, 4, 4, broker.AcksNone, 1024},
	}
}

// Table3Row is the measured/modeled output for one experiment and
// locality.
type Table3Row struct {
	Exp      Experiment
	Locality model.Locality
	ProdThru float64
	MedianMs float64
	P99Ms    float64
	ConsThru float64
}

// RunTable3 computes all Table III cells from the capacity model.
func RunTable3() []Table3Row {
	var rows []Table3Row
	for _, exp := range Table3Experiments() {
		for _, loc := range []model.Locality{model.Local, model.Remote} {
			w := model.Workload{
				EventSize:         exp.EventSize,
				Acks:              exp.Acks,
				Partitions:        exp.Partitions,
				ReplicationFactor: exp.RepFactor,
				Locality:          loc,
			}
			rows = append(rows, Table3Row{
				Exp:      exp,
				Locality: loc,
				ProdThru: model.ProducerThroughput(exp.Cluster, w),
				MedianMs: model.MedianLatency(exp.Cluster, w),
				P99Ms:    model.P99Latency(exp.Cluster, w),
				ConsThru: model.ConsumerThroughput(exp.Cluster, w),
			})
		}
	}
	return rows
}

// sizeLabel formats an event size the way the paper does.
func sizeLabel(bytes int) string {
	if bytes >= 1024 {
		return fmt.Sprintf("%d KB", bytes/1024)
	}
	return fmt.Sprintf("%d B", bytes)
}

// Table3 renders Table III with local and remote client columns.
func Table3() *Table {
	t := &Table{
		Title: "Table III: Baseline performance and scalability (modeled; see DESIGN.md)",
		Columns: []string{
			"Exp", "Cluster", "RF", "Parts", "Acks", "Size",
			"L.Prod", "L.Med", "L.P99", "L.Cons",
			"R.Prod", "R.Med", "R.P99", "R.Cons",
		},
	}
	rows := RunTable3()
	for i := 0; i < len(rows); i += 2 {
		local, remote := rows[i], rows[i+1]
		e := local.Exp
		t.Add(
			e.Index, e.Cluster.Name, e.RepFactor, e.Partitions, e.Acks.String(), sizeLabel(e.EventSize),
			local.ProdThru, fmt.Sprintf("%.0f", local.MedianMs), fmt.Sprintf("%.0f", local.P99Ms), local.ConsThru,
			remote.ProdThru, fmt.Sprintf("%.0f", remote.MedianMs), fmt.Sprintf("%.0f", remote.P99Ms), remote.ConsThru,
		)
	}
	return t
}
