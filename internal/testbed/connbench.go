package testbed

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/wire"
)

// ConnScaleFixture is the shared connection-scale comparison: many
// client connections, each consuming many partitions of one server,
// measured for goroutine footprint and allocation cost under the two
// v2 consume transports — per-partition streams (PR 4, one server pump
// goroutine per partition per connection) and multiplexed fetch
// sessions (PR 6, one pump per connection regardless of partitions).
// The BenchmarkManyConnections CI gate and the operator-facing
// octopus-bench -connections both run exactly this fixture.
type ConnScaleFixture struct {
	// Conns clients × Partitions subscriptions each, over a backlog of
	// PerPartition events per partition.
	Conns, Partitions, PerPartition int

	fabric *broker.Fabric
	srv    *wire.Server
	addr   string
}

// ConnScaleResult is one transport mode's measurement.
type ConnScaleResult struct {
	// GoroutinesPerConn is the process goroutine count added per
	// connection with every subscription live (both endpoints are
	// in-process, so it charges the full client+server cost).
	GoroutinesPerConn float64
	// ServingPerConn is the subset added by the subscriptions alone —
	// the count that scales with partitions on the stream path and must
	// not on the session path.
	ServingPerConn float64
	// AllocsPerEvent is the process-wide allocation count per consumed
	// event, minimum over rounds (the minimum is the clean signal:
	// background allocation only inflates a round).
	AllocsPerEvent float64
	// EventsPerSec is the single-client full-backlog drain throughput.
	EventsPerSec float64
}

// NewConnScaleFixture provisions the fabric, backlog, and listener.
func NewConnScaleFixture(conns, partitions, perPartition, eventSize int) (*ConnScaleFixture, error) {
	x := &ConnScaleFixture{Conns: conns, Partitions: partitions, PerPartition: perPartition}
	x.fabric = broker.NewFabric(nil)
	if err := x.fabric.AddBrokers(2, 2, 8); err != nil {
		return nil, err
	}
	if _, err := x.fabric.CreateTopic("cs", "", cluster.TopicConfig{Partitions: partitions}); err != nil {
		return nil, err
	}
	evs := make([]event.Event, perPartition)
	for i := range evs {
		evs[i] = event.Event{Value: make([]byte, eventSize)}
	}
	for p := 0; p < partitions; p++ {
		if _, err := x.fabric.Produce("", "cs", p, evs, broker.AcksLeader); err != nil {
			return nil, err
		}
	}
	x.srv = wire.NewServer(x.fabric)
	x.srv.AllowAnonymous = true
	addr, err := x.srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	x.addr = addr
	return x, nil
}

// Addr is the fixture server's listen address.
func (x *ConnScaleFixture) Addr() string { return x.addr }

// Close releases the listener.
func (x *ConnScaleFixture) Close() {
	if x.srv != nil {
		x.srv.Close()
	}
}

// stableGoroutines samples the goroutine count until two consecutive
// readings agree (teardown and notify callbacks settle in
// milliseconds), returning the settled count.
func stableGoroutines() int {
	prev := -1
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n := runtime.NumGoroutine()
		if n == prev {
			return n
		}
		prev = n
		time.Sleep(10 * time.Millisecond)
	}
	return prev
}

// Run measures one transport mode: sessioned fetch when sessioned,
// per-partition streams otherwise. It dials Conns clients, opens every
// subscription, measures the goroutine footprint, drains the backlog
// through one client for allocation and throughput numbers, and then
// closes everything — verifying the process returns to its goroutine
// baseline (the leak gate rides along on every run).
func (x *ConnScaleFixture) Run(sessioned bool) (ConnScaleResult, error) {
	var res ConnScaleResult
	g0 := stableGoroutines()

	clients := make([]*wire.Client, 0, x.Conns)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < x.Conns; i++ {
		c, err := wire.DialOptions(x.addr, wire.Options{
			Anonymous: true, PoolSize: 1, DisableSessionFetch: !sessioned,
		})
		if err != nil {
			return res, err
		}
		clients = append(clients, c)
	}
	gConn := stableGoroutines()

	var buf broker.FetchBuffer
	for _, c := range clients {
		for p := 0; p < x.Partitions; p++ {
			if _, err := c.FetchBuffered("", "cs", p, 0, 16, 1<<20, &buf); err != nil {
				return res, err
			}
		}
	}
	gActive := stableGoroutines()
	res.GoroutinesPerConn = float64(gActive-g0) / float64(x.Conns)
	res.ServingPerConn = float64(gActive-gConn) / float64(x.Conns)

	// Drain the full backlog through one client, re-seeking each round.
	drain := func() (int, error) {
		n := 0
		for p := 0; p < x.Partitions; p++ {
			for off := int64(0); off < int64(x.PerPartition); {
				r, err := clients[0].FetchBufferedWait("", "cs", p, off, 100, 1<<20, 5*time.Second, &buf)
				if err != nil {
					return n, err
				}
				if len(r.Events) == 0 {
					return n, fmt.Errorf("testbed: empty fetch at p%d@%d", p, off)
				}
				off = r.Events[len(r.Events)-1].Offset + 1
				n += len(r.Events)
			}
		}
		return n, nil
	}
	if _, err := drain(); err != nil { // warm: pools, subs, routing
		return res, err
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		n, err := drain()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return res, err
		}
		if apc := float64(m1.Mallocs-m0.Mallocs) / float64(n); r == 0 || apc < res.AllocsPerEvent {
			res.AllocsPerEvent = apc
		}
		if thru := float64(n) / elapsed.Seconds(); thru > res.EventsPerSec {
			res.EventsPerSec = thru
		}
	}

	for _, c := range clients {
		c.Close()
	}
	clients = nil
	// The leak gate: all serving goroutines — pumps, read loops, both
	// sides — must return with the connections.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= g0+2 {
			return res, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return res, fmt.Errorf("testbed: %d goroutines after teardown, baseline %d — connection-scale serving leaked",
		runtime.NumGoroutine(), g0)
}
