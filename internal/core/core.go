// Package core is the public face of the Octopus reproduction: it
// assembles the event fabric (brokers + controller + coordination
// registry), the security stack (OAuth-style tokens, IAM keys, topic
// ACLs), the web service, the managed trigger runtime, and the SDK
// factory methods, mirroring the architecture of Figure 2.
//
// A minimal end-to-end flow:
//
//	oct, _ := core.Launch(core.Config{Brokers: 2})
//	defer oct.Shutdown()
//	user, _ := oct.Register("alice@uchicago.edu", "globus")
//	topic, _ := oct.CreateTopic(user, "instrument-data", core.TopicOptions{})
//	p := topic.Producer()
//	p.SendJSON("", map[string]any{"event_type": "created", "path": "/data/x"})
//	p.Flush()
//	c := topic.Consumer(core.FromEarliest())
//	events, _ := c.Poll(100)
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/ows"
	"repro/internal/trigger"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Config sizes a fabric deployment.
type Config struct {
	// Brokers is the cluster size (default 2, the MSK minimum).
	Brokers int
	// VCPUs and MemGB describe the broker instance type
	// (default 2 / 8 GB, kafka.m5.large).
	VCPUs int
	MemGB int
	// Clock supplies time (default real).
	Clock vclock.Clock
	// DataDir, when set, backs every broker's replica logs with durable
	// segment files under <DataDir>/broker-<id> — appends hit disk and
	// a restarted process replays them (truncating any torn tail).
	// Empty keeps the logs in memory.
	DataDir string
}

func (c *Config) fill() {
	if c.Brokers <= 0 {
		c.Brokers = 2
	}
	if c.VCPUs <= 0 {
		c.VCPUs = 2
	}
	if c.MemGB <= 0 {
		c.MemGB = 8
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// Octopus is a running deployment.
type Octopus struct {
	Fabric   *broker.Fabric
	Triggers *trigger.Runtime
	Web      *ows.Server

	wireServer *wire.Server
}

// Launch assembles and starts a deployment.
func Launch(cfg Config) (*Octopus, error) {
	cfg.fill()
	f := broker.NewFabric(cfg.Clock)
	for i := 0; i < cfg.Brokers; i++ {
		info := cluster.BrokerInfo{ID: i, VCPUs: cfg.VCPUs, MemGB: cfg.MemGB}
		if cfg.DataDir != "" {
			info.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("broker-%d", i))
		}
		if _, err := f.AddBroker(info); err != nil {
			return nil, err
		}
	}
	tr := trigger.NewRuntime(f)
	return &Octopus{
		Fabric:   f,
		Triggers: tr,
		Web:      ows.NewServer(f, tr),
	}, nil
}

// Shutdown stops triggers and network listeners.
func (o *Octopus) Shutdown() {
	o.Triggers.StopAll()
	if o.wireServer != nil {
		o.wireServer.Close()
	}
}

// ListenWire exposes the fabric over TCP and returns the bound address.
// Connections must authenticate with an access key (see User.CreateKey).
func (o *Octopus) ListenWire(addr string) (string, error) {
	return o.listenWire(addr, false)
}

// ListenWireAnonymous exposes the fabric without authentication, for
// single-user deployments and tests.
func (o *Octopus) ListenWireAnonymous(addr string) (string, error) {
	return o.listenWire(addr, true)
}

func (o *Octopus) listenWire(addr string, anonymous bool) (string, error) {
	if o.wireServer == nil {
		o.wireServer = wire.NewServer(o.Fabric)
	}
	o.wireServer.AllowAnonymous = anonymous
	return o.wireServer.Listen(addr)
}

// WireServer returns the single-listener wire server, nil before
// ListenWire — the handle a metrics endpoint exports listener-level
// telemetry through.
func (o *Octopus) WireServer() *wire.Server { return o.wireServer }

// User is an authenticated principal with a live token.
type User struct {
	Identity auth.Identity
	Token    *auth.Token
	oct      *Octopus
}

// Register creates (or looks up) an identity and logs it in, the
// Globus-Auth flow of §IV-C collapsed for in-process use.
func (o *Octopus) Register(username, provider string) (*User, error) {
	ident := o.Fabric.Auth.RegisterIdentity(username, provider)
	tok, err := o.Fabric.Auth.Login(username)
	if err != nil {
		return nil, err
	}
	return &User{Identity: ident, Token: tok, oct: o}, nil
}

// CreateKey returns the user's IAM-style fabric credentials.
func (u *User) CreateKey() (auth.Key, error) {
	return u.oct.Fabric.Auth.CreateKey(u.Identity.ID)
}

// TopicOptions configures topic provisioning.
type TopicOptions struct {
	Partitions        int
	ReplicationFactor int
	Retention         time.Duration
	Compact           bool
}

// Topic is a handle for producing and consuming.
type Topic struct {
	Name string
	oct  *Octopus
	user *User
}

// CreateTopic provisions a topic owned by the user (PUT /topic/<topic>).
func (o *Octopus) CreateTopic(u *User, name string, opts TopicOptions) (*Topic, error) {
	_, err := o.Fabric.CreateTopic(name, u.Identity.ID, cluster.TopicConfig{
		Partitions:        opts.Partitions,
		ReplicationFactor: opts.ReplicationFactor,
		Retention:         opts.Retention,
		Compact:           opts.Compact,
	})
	if err != nil {
		return nil, err
	}
	return &Topic{Name: name, oct: o, user: u}, nil
}

// OpenTopic returns a handle for an existing topic the user can access.
func (o *Octopus) OpenTopic(u *User, name string) (*Topic, error) {
	if _, err := o.Fabric.Ctl.Topic(name); err != nil {
		return nil, err
	}
	if err := o.Fabric.ACL.Check(name, u.Identity.ID, auth.PermDescribe); err != nil {
		return nil, err
	}
	return &Topic{Name: name, oct: o, user: u}, nil
}

// Grant shares the topic with another user (POST /topic/<topic>/user).
func (t *Topic) Grant(other *User, perms ...auth.Permission) error {
	meta, err := t.oct.Fabric.Ctl.Topic(t.Name)
	if err != nil {
		return err
	}
	if meta.Owner != t.user.Identity.ID {
		return fmt.Errorf("%w: only the owner may grant", auth.ErrDenied)
	}
	return t.oct.Fabric.ACL.Grant(t.Name, other.Identity.ID, perms...)
}

// Transport returns the user's in-process transport.
func (t *Topic) Transport() client.Transport {
	return client.NewDirect(t.oct.Fabric)
}

// RemoteTransport returns a transport with the 46.5 ms WAN profile, for
// experiments with geographically remote clients.
func (t *Topic) RemoteTransport() client.Transport {
	return netsim.New(client.NewDirect(t.oct.Fabric), netsim.Remote(), t.oct.Fabric.Clock)
}

// Producer opens an SDK producer bound to the user's identity.
func (t *Topic) Producer() *client.Producer {
	return client.NewProducer(t.Transport(), t.Name, client.ProducerConfig{
		Identity: t.user.Identity.ID,
		Clock:    t.oct.Fabric.Clock,
	})
}

// ConsumerOption configures Consumer.
type ConsumerOption func(*client.ConsumerConfig)

// FromEarliest starts consumption at the earliest retained offset.
func FromEarliest() ConsumerOption {
	return func(c *client.ConsumerConfig) { c.Start = client.StartEarliest }
}

// FromLatest starts at the partition end.
func FromLatest() ConsumerOption {
	return func(c *client.ConsumerConfig) { c.Start = client.StartLatest }
}

// FromTime starts at the first event at or after ts.
func FromTime(ts time.Time) ConsumerOption {
	return func(c *client.ConsumerConfig) { c.Start = client.StartAtTime; c.StartTime = ts }
}

// InGroup makes the consumer part of a coordinated group.
func InGroup(group string) ConsumerOption {
	return func(c *client.ConsumerConfig) { c.Group = group; c.AutoCommit = true }
}

// Consumer opens an SDK consumer over every partition of the topic (or
// subscribed via group when InGroup is used).
func (t *Topic) Consumer(opts ...ConsumerOption) *client.Consumer {
	cfg := client.ConsumerConfig{Identity: t.user.Identity.ID, Clock: t.oct.Fabric.Clock}
	for _, o := range opts {
		o(&cfg)
	}
	c := client.NewConsumer(t.Transport(), cfg)
	if cfg.Group != "" {
		_ = c.Subscribe(t.Name)
		return c
	}
	if meta, err := t.oct.Fabric.Ctl.Topic(t.Name); err == nil {
		for p := 0; p < meta.Config.Partitions; p++ {
			_ = c.Assign(t.Name, p)
		}
	}
	return c
}

// TriggerOptions configures AddTrigger.
type TriggerOptions struct {
	// Pattern is an EventBridge-style filter (Listing 1); empty matches
	// all events.
	Pattern string
	// BatchSize caps events per invocation.
	BatchSize int
	// MaxConcurrency caps parallel invocations.
	MaxConcurrency int
}

// AddTrigger deploys a trigger on the topic running fn, acting on the
// user's behalf via a delegated token.
func (t *Topic) AddTrigger(id string, opts TriggerOptions, fn trigger.Action) (*trigger.Trigger, error) {
	if _, err := t.oct.Fabric.Auth.Delegate(t.user.Token.Value, auth.ScopeConsume); err != nil {
		return nil, err
	}
	cfg := trigger.Config{
		ID:             id,
		Topic:          t.Name,
		PatternJSON:    opts.Pattern,
		BatchSize:      opts.BatchSize,
		MaxConcurrency: opts.MaxConcurrency,
		BatchWindow:    5 * time.Millisecond,
		EvalInterval:   50 * time.Millisecond,
		OnBehalfOf:     t.user.Identity.ID,
	}
	return t.oct.Triggers.DeployFunc(cfg, fn)
}
