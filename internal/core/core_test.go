package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/event"
	"repro/internal/trigger"
)

func launch(t *testing.T) *Octopus {
	t.Helper()
	oct, err := Launch(Config{Brokers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oct.Shutdown)
	return oct
}

func TestQuickstartFlow(t *testing.T) {
	oct := launch(t)
	user, err := oct.Register("alice@uchicago.edu", "globus")
	if err != nil {
		t.Fatal(err)
	}
	topic, err := oct.CreateTopic(user, "instrument-data", TopicOptions{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := topic.Producer()
	defer p.Close()
	for i := 0; i < 20; i++ {
		if err := p.SendJSON("", map[string]any{"seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	c := topic.Consumer(FromEarliest())
	defer c.Close()
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < 20 && time.Now().Before(deadline) {
		evs, err := c.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		got += len(evs)
	}
	if got != 20 {
		t.Fatalf("consumed %d", got)
	}
}

func TestAccessControlAcrossUsers(t *testing.T) {
	oct := launch(t)
	alice, _ := oct.Register("alice@uchicago.edu", "globus")
	bob, _ := oct.Register("bob@anl.gov", "globus")
	topic, err := oct.CreateTopic(alice, "private", TopicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Bob cannot open or produce before the grant.
	if _, err := oct.OpenTopic(bob, "private"); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("open: %v", err)
	}
	// Grant read+describe; bob can open and consume, not produce.
	if err := topic.Grant(bob, auth.PermRead, auth.PermDescribe); err != nil {
		t.Fatal(err)
	}
	bt, err := oct.OpenTopic(bob, "private")
	if err != nil {
		t.Fatal(err)
	}
	p := bt.Producer()
	defer p.Close()
	if _, err := p.SendSync(event.New("", map[string]any{"x": 1})); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("bob produce: %v", err)
	}
	// Only the owner may grant.
	if err := bt.Grant(alice, auth.PermRead); !errors.Is(err, auth.ErrDenied) {
		t.Fatalf("non-owner grant: %v", err)
	}
}

func TestTriggerViaFacade(t *testing.T) {
	oct := launch(t)
	user, _ := oct.Register("alice@uchicago.edu", "globus")
	topic, err := oct.CreateTopic(user, "fs-events", TopicOptions{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var created []string
	_, err = topic.AddTrigger("replicate", TriggerOptions{
		Pattern: `{"value": {"event_type": ["created"]}}`,
	}, func(inv *trigger.Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range inv.Events {
			doc, _ := e.JSON()
			created = append(created, doc["value"].(map[string]any)["path"].(string))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := topic.Producer()
	defer p.Close()
	_ = p.SendJSON("", map[string]any{"value": map[string]any{"event_type": "created", "path": "/a"}})
	_ = p.SendJSON("", map[string]any{"value": map[string]any{"event_type": "modified", "path": "/b"}})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(created)
		mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(created) != 1 || created[0] != "/a" {
		t.Fatalf("created = %v", created)
	}
}

func TestGroupConsumptionViaFacade(t *testing.T) {
	oct := launch(t)
	user, _ := oct.Register("alice@uchicago.edu", "globus")
	topic, err := oct.CreateTopic(user, "grouped", TopicOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := topic.Producer()
	for i := 0; i < 40; i++ {
		_ = p.SendJSON("", map[string]any{"i": i})
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	c1 := topic.Consumer(InGroup("workers"), FromEarliest())
	defer c1.Close()
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < 40 && time.Now().Before(deadline) {
		evs, err := c1.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		got += len(evs)
	}
	if got != 40 {
		t.Fatalf("group consumed %d", got)
	}
}

func TestFromTimeConsumer(t *testing.T) {
	oct := launch(t)
	user, _ := oct.Register("alice@uchicago.edu", "globus")
	topic, _ := oct.CreateTopic(user, "timed", TopicOptions{Partitions: 1})
	p := topic.Producer()
	defer p.Close()
	_ = p.SendJSON("", map[string]any{"phase": "old"})
	_ = p.Flush()
	time.Sleep(2 * time.Millisecond)
	cut := time.Now()
	time.Sleep(2 * time.Millisecond)
	_ = p.SendJSON("", map[string]any{"phase": "new"})
	_ = p.Flush()
	c := topic.Consumer(FromTime(cut))
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		evs, err := c.Poll(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) > 0 {
			doc, _ := evs[0].JSON()
			if doc["phase"] != "new" {
				t.Fatalf("saw %v", doc)
			}
			return
		}
	}
	t.Fatal("no events after time seek")
}

func TestCreateKeyViaFacade(t *testing.T) {
	oct := launch(t)
	user, _ := oct.Register("alice@uchicago.edu", "globus")
	k, err := user.CreateKey()
	if err != nil || k.AccessKeyID == "" {
		t.Fatalf("key = %+v, %v", k, err)
	}
}

func TestWireListener(t *testing.T) {
	oct := launch(t)
	oct.Fabric.Auth.RegisterIdentity("u", "p")
	addr, err := oct.ListenWire("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("no address")
	}
}

func TestRemoteTransportSlowerThanLocal(t *testing.T) {
	oct := launch(t)
	user, _ := oct.Register("alice@uchicago.edu", "globus")
	topic, _ := oct.CreateTopic(user, "lat", TopicOptions{Partitions: 1})
	start := time.Now()
	if _, err := topic.RemoteTransport().EndOffset("lat", 0); err != nil {
		t.Fatal(err)
	}
	remote := time.Since(start)
	if remote < 40*time.Millisecond {
		t.Fatalf("remote RTT not applied: %v", remote)
	}
	start = time.Now()
	if _, err := topic.Transport().EndOffset("lat", 0); err != nil {
		t.Fatal(err)
	}
	if local := time.Since(start); local > remote/2 {
		t.Fatalf("local (%v) not faster than remote (%v)", local, remote)
	}
}
