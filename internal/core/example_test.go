package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trigger"
)

// Example demonstrates the end-to-end flow from the package comment:
// launch, authenticate, provision, trigger, produce, consume.
func Example() {
	oct, err := core.Launch(core.Config{Brokers: 2})
	if err != nil {
		fmt.Println("launch:", err)
		return
	}
	defer oct.Shutdown()

	alice, err := oct.Register("alice@uchicago.edu", "globus")
	if err != nil {
		fmt.Println("register:", err)
		return
	}
	topic, err := oct.CreateTopic(alice, "instrument-data", core.TopicOptions{Partitions: 2})
	if err != nil {
		fmt.Println("create:", err)
		return
	}

	fired := make(chan string, 1)
	_, err = topic.AddTrigger("on-create", core.TriggerOptions{
		Pattern: `{"value": {"event_type": ["created"]}}`,
	}, func(inv *trigger.Invocation) error {
		doc, err := inv.Events[0].JSON()
		if err != nil {
			return err
		}
		fired <- doc["value"].(map[string]any)["path"].(string)
		return nil
	})
	if err != nil {
		fmt.Println("trigger:", err)
		return
	}

	p := topic.Producer()
	defer p.Close()
	_ = p.SendJSON("", map[string]any{"value": map[string]any{"event_type": "created", "path": "/data/scan-1.tif"}})
	if err := p.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}

	select {
	case path := <-fired:
		fmt.Println("trigger fired for", path)
	case <-time.After(5 * time.Second):
		fmt.Println("trigger did not fire")
	}
	// Output: trigger fired for /data/scan-1.tif
}
