package trigger

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
)

// This file provides the built-in action library. §IV-D's triggers are
// "polyvalent — they can perform many different actions"; the paper's
// deployments call Globus Transfer and Globus Flows over HTTP, chain
// events into derived topics, and notify users. These constructors
// cover those shapes so applications rarely need custom code.

// WebhookPayload is the JSON body a webhook action posts: the batch of
// matched events plus trigger identity, the shape a remote action
// provider (e.g. a transfer service) consumes.
type WebhookPayload struct {
	TriggerID  string         `json:"trigger_id"`
	OnBehalfOf string         `json:"on_behalf_of,omitempty"`
	Attempt    int            `json:"attempt"`
	Events     []WebhookEvent `json:"events"`
}

// WebhookEvent is one event in a webhook payload.
type WebhookEvent struct {
	Topic     string          `json:"topic"`
	Partition int             `json:"partition"`
	Offset    int64           `json:"offset"`
	Key       string          `json:"key,omitempty"`
	Value     json.RawMessage `json:"value"`
}

// Webhook returns an action that POSTs each batch to url as JSON. A
// non-2xx response or transport error is returned to the runtime,
// which retries per the trigger's MaxRetries — giving webhooks the
// robustness property of §IV-D.
func Webhook(url string, client *http.Client) Action {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return func(inv *Invocation) error {
		payload := WebhookPayload{
			TriggerID:  inv.TriggerID,
			OnBehalfOf: inv.OnBehalfOf,
			Attempt:    inv.Attempt,
		}
		for _, ev := range inv.Events {
			we := WebhookEvent{
				Topic:     ev.Topic,
				Partition: ev.Partition,
				Offset:    ev.Offset,
				Key:       string(ev.Key),
			}
			if json.Valid(ev.Value) {
				we.Value = json.RawMessage(ev.Value)
			} else {
				raw, _ := json.Marshal(string(ev.Value))
				we.Value = raw
			}
			payload.Events = append(payload.Events, we)
		}
		body, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("trigger: webhook marshal: %w", err)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("trigger: webhook post: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return fmt.Errorf("trigger: webhook %s returned %d", url, resp.StatusCode)
		}
		return nil
	}
}

// Chain returns an action that republishes matched events to another
// topic on the same fabric — the "events generating more events"
// pattern that composes multi-stage automations (e.g. transfer-done →
// analysis → email of §I).
func Chain(f *broker.Fabric, destTopic string) Action {
	return func(inv *Invocation) error {
		evs := make([]event.Event, len(inv.Events))
		for i, ev := range inv.Events {
			c := ev.Clone()
			if c.Headers == nil {
				c.Headers = make(map[string]string, 2)
			}
			c.Headers["x-octopus-chained-from"] = fmt.Sprintf("%s/%d@%d", ev.Topic, ev.Partition, ev.Offset)
			c.Headers["x-octopus-trigger"] = inv.TriggerID
			evs[i] = c
		}
		_, err := f.Produce(inv.OnBehalfOf, destTopic, -1, evs, broker.AcksLeader)
		return err
	}
}

// Tee returns an action running several actions in order, failing on
// the first error (the runtime then retries the whole batch; actions
// should therefore be idempotent, the caveat §VII-B raises).
func Tee(actions ...Action) Action {
	return func(inv *Invocation) error {
		for _, a := range actions {
			if err := a(inv); err != nil {
				return err
			}
		}
		return nil
	}
}

// DeadLetterTopic wraps an action so that batches which exhaust their
// retries are published to dlTopic instead of being dropped — turning
// the runtime's dead-letter counter into a recoverable queue.
//
// It must be installed via Runtime.DeployFunc with the trigger's
// MaxRetries set on the wrapped config; the wrapper performs its own
// final-attempt detection using Invocation.Attempt.
func DeadLetterTopic(f *broker.Fabric, dlTopic string, maxRetries int, inner Action) Action {
	return func(inv *Invocation) error {
		err := inner(inv)
		if err == nil {
			return nil
		}
		if inv.Attempt > maxRetries {
			evs := make([]event.Event, len(inv.Events))
			for i, ev := range inv.Events {
				c := ev.Clone()
				if c.Headers == nil {
					c.Headers = make(map[string]string, 2)
				}
				c.Headers["x-octopus-dead-letter-reason"] = err.Error()
				c.Headers["x-octopus-source"] = fmt.Sprintf("%s/%d@%d", ev.Topic, ev.Partition, ev.Offset)
				evs[i] = c
			}
			if _, perr := f.Produce("", dlTopic, -1, evs, broker.AcksLeader); perr != nil {
				return fmt.Errorf("trigger: dead-letter publish failed: %w (original: %v)", perr, err)
			}
			// Swallow the error: the batch is parked in the DL topic.
			return nil
		}
		return err
	}
}
