package trigger

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
)

func TestWebhookPostsBatch(t *testing.T) {
	var mu sync.Mutex
	var payloads []WebhookPayload
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var p WebhookPayload
		if err := json.Unmarshal(body, &p); err != nil {
			t.Errorf("bad payload: %v", err)
		}
		mu.Lock()
		payloads = append(payloads, p)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	act := Webhook(srv.URL, nil)
	inv := &Invocation{
		TriggerID:  "transfer",
		OnBehalfOf: "alice",
		Attempt:    1,
		Events: []event.Event{
			{Topic: "fs", Partition: 1, Offset: 7, Key: []byte("k"), Value: []byte(`{"path": "/a"}`)},
			{Topic: "fs", Partition: 1, Offset: 8, Value: []byte("not-json")},
		},
	}
	if err := act(inv); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(payloads) != 1 {
		t.Fatalf("posts = %d", len(payloads))
	}
	p := payloads[0]
	if p.TriggerID != "transfer" || p.OnBehalfOf != "alice" || len(p.Events) != 2 {
		t.Fatalf("payload = %+v", p)
	}
	if p.Events[0].Offset != 7 || p.Events[0].Key != "k" {
		t.Fatalf("event meta = %+v", p.Events[0])
	}
	// Non-JSON payloads are shipped as JSON strings.
	var s string
	if err := json.Unmarshal(p.Events[1].Value, &s); err != nil || s != "not-json" {
		t.Fatalf("non-json wrapping: %q, %v", p.Events[1].Value, err)
	}
}

func TestWebhookErrorsOnNon2xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()
	act := Webhook(srv.URL, nil)
	if err := act(&Invocation{Events: []event.Event{{Value: []byte("{}")}}}); err == nil {
		t.Fatal("502 treated as success")
	}
	// Unreachable endpoint errors too.
	down := Webhook("http://127.0.0.1:1", &http.Client{Timeout: 100 * time.Millisecond})
	if err := down(&Invocation{Events: []event.Event{{Value: []byte("{}")}}}); err == nil {
		t.Fatal("unreachable endpoint treated as success")
	}
}

func TestWebhookDrivenByRuntimeRetries(t *testing.T) {
	f := newFabric(t, "hooked", 1)
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			w.WriteHeader(http.StatusServiceUnavailable) // transient failure
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	cfg := fastCfg("hook", "hooked")
	cfg.MaxRetries = 3
	tr, err := New(f, cfg, Webhook(srv.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "hooked", map[string]any{"x": 1})
	waitFor(t, func() bool { return tr.Stats().EventsDelivered == 1 }, "retried webhook delivery")
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (fail then succeed)", calls)
	}
}

func TestChainRepublishes(t *testing.T) {
	f := newFabric(t, "src", 2)
	if _, err := f.CreateTopic("derived", "", cluster.TopicConfig{Partitions: 2, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	act := Chain(f, "derived")
	err := act(&Invocation{
		TriggerID: "chain-1",
		Events: []event.Event{
			{Topic: "src", Partition: 0, Offset: 3, Key: []byte("k"), Value: []byte(`{"a":1}`)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var found *event.Event
	for p := 0; p < 2; p++ {
		res, err := f.Fetch("", "derived", p, 0, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) > 0 {
			found = &res.Events[0]
		}
	}
	if found == nil {
		t.Fatal("nothing chained")
	}
	if found.Headers["x-octopus-chained-from"] != "src/0@3" {
		t.Fatalf("provenance header = %q", found.Headers["x-octopus-chained-from"])
	}
	if found.Headers["x-octopus-trigger"] != "chain-1" {
		t.Fatalf("trigger header = %q", found.Headers["x-octopus-trigger"])
	}
}

func TestChainRespectsACLs(t *testing.T) {
	f := newFabric(t, "src", 1)
	if _, err := f.CreateTopic("locked", "owner", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	act := Chain(f, "locked")
	err := act(&Invocation{
		OnBehalfOf: "stranger",
		Events:     []event.Event{{Value: []byte("{}")}},
	})
	if err == nil {
		t.Fatal("chain bypassed topic ACL")
	}
}

func TestTeeRunsInOrderAndStopsOnError(t *testing.T) {
	var order []string
	mk := func(name string, fail bool) Action {
		return func(*Invocation) error {
			order = append(order, name)
			if fail {
				return errors.New(name + " failed")
			}
			return nil
		}
	}
	act := Tee(mk("a", false), mk("b", true), mk("c", false))
	if err := act(&Invocation{}); err == nil {
		t.Fatal("error swallowed")
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadLetterTopicParksFailedBatches(t *testing.T) {
	f := newFabric(t, "work", 1)
	if _, err := f.CreateTopic("work-dl", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	failing := func(*Invocation) error { return errors.New("downstream permanently broken") }
	const maxRetries = 2
	act := DeadLetterTopic(f, "work-dl", maxRetries, failing)
	// Attempts 1..maxRetries return errors (runtime would retry)...
	for attempt := 1; attempt <= maxRetries; attempt++ {
		if err := act(&Invocation{Attempt: attempt, Events: []event.Event{{Topic: "work", Value: []byte("{}")}}}); err == nil {
			t.Fatalf("attempt %d should propagate the error", attempt)
		}
	}
	// ...the final attempt parks the batch and succeeds.
	err := act(&Invocation{Attempt: maxRetries + 1, Events: []event.Event{{Topic: "work", Offset: 5, Value: []byte(`{"job":9}`)}}})
	if err != nil {
		t.Fatalf("final attempt: %v", err)
	}
	res, err := f.Fetch("", "work-dl", 0, 0, 10, 0)
	if err != nil || len(res.Events) != 1 {
		t.Fatalf("dead letters = %d, %v", len(res.Events), err)
	}
	dl := res.Events[0]
	if dl.Headers["x-octopus-dead-letter-reason"] == "" || dl.Headers["x-octopus-source"] != "work/0@5" {
		t.Fatalf("dead-letter headers = %v", dl.Headers)
	}
}

func TestDeadLetterEndToEndThroughRuntime(t *testing.T) {
	f := newFabric(t, "jobs", 1)
	if _, err := f.CreateTopic("jobs-dl", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("dl", "jobs")
	cfg.MaxRetries = 1
	failing := func(*Invocation) error { return errors.New("no") }
	tr, err := New(f, cfg, DeadLetterTopic(f, "jobs-dl", cfg.MaxRetries, failing))
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "jobs", map[string]any{"job": 1})
	waitFor(t, func() bool {
		end, _ := f.EndOffset("jobs-dl", 0)
		return end == 1
	}, "dead letter through runtime")
	// The batch counts as delivered (parked), not dead-lettered-dropped.
	if tr.Stats().DeadLettered != 0 {
		t.Fatalf("runtime dropped a batch that was parked: %+v", tr.Stats())
	}
}
