package trigger

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

func newFabric(t *testing.T, topic string, parts int) *broker.Fabric {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts, ReplicationFactor: 1}); err != nil {
		t.Fatal(err)
	}
	return f
}

func fastCfg(id, topic string) Config {
	return Config{
		ID:           id,
		Topic:        topic,
		BatchWindow:  time.Millisecond,
		EvalInterval: 5 * time.Millisecond,
	}
}

func produceJSON(t *testing.T, f *broker.Fabric, topic string, docs ...map[string]any) {
	t.Helper()
	evs := make([]event.Event, len(docs))
	for i, d := range docs {
		evs[i] = event.New("", d)
	}
	if _, err := f.Produce("", topic, -1, evs, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestTriggerInvokesOnEvents(t *testing.T) {
	f := newFabric(t, "t", 2)
	var mu sync.Mutex
	var got []string
	tr, err := New(f, fastCfg("tg", "t"), func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range inv.Events {
			got = append(got, string(e.Value))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "t",
		map[string]any{"n": 1},
		map[string]any{"n": 2},
		map[string]any{"n": 3})
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	}, "trigger delivery")
	st := tr.Stats()
	if st.EventsDelivered != 3 || st.Invocations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTriggerPatternFiltering reproduces the Listing 1 behavior: only
// file-creation events invoke the action.
func TestTriggerPatternFiltering(t *testing.T) {
	f := newFabric(t, "fs", 1)
	cfg := fastCfg("filter", "fs")
	cfg.PatternJSON = `{"value": {"event_type": ["created"]}}`
	var delivered sync.Map
	var mu sync.Mutex
	n := 0
	tr, err := New(f, cfg, func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range inv.Events {
			doc, _ := e.JSON()
			delivered.Store(doc["value"].(map[string]any)["path"], true)
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "fs",
		map[string]any{"value": map[string]any{"event_type": "created", "path": "/a"}},
		map[string]any{"value": map[string]any{"event_type": "modified", "path": "/b"}},
		map[string]any{"value": map[string]any{"event_type": "created", "path": "/c"}},
		map[string]any{"value": map[string]any{"event_type": "deleted", "path": "/d"}})
	waitFor(t, func() bool {
		return tr.Stats().EventsFiltered == 2
	}, "pattern filtering")
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return n == 2
	}, "filtered delivery")
	if _, ok := delivered.Load("/a"); !ok {
		t.Fatal("/a not delivered")
	}
	if _, ok := delivered.Load("/b"); ok {
		t.Fatal("/b (modified) delivered despite filter")
	}
}

func TestTriggerRetriesThenDeadLetters(t *testing.T) {
	f := newFabric(t, "t", 1)
	cfg := fastCfg("retry", "t")
	cfg.MaxRetries = 2
	var mu sync.Mutex
	attempts := 0
	tr, err := New(f, cfg, func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		return errors.New("downstream unavailable")
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "t", map[string]any{"x": 1})
	waitFor(t, func() bool {
		return tr.Stats().DeadLettered == 1
	}, "dead letter")
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestTriggerRecoversFromPanic(t *testing.T) {
	f := newFabric(t, "t", 1)
	cfg := fastCfg("panic", "t")
	cfg.MaxRetries = -1 // no retries: the panicking batch dead-letters
	var mu sync.Mutex
	calls := 0
	tr, err := New(f, cfg, func(inv *Invocation) error {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			panic("bad batch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	produceJSON(t, f, "t", map[string]any{"a": 1})
	waitFor(t, func() bool { return tr.Stats().DeadLettered == 1 }, "panic handled")
	// The runtime survives: later events still deliver.
	produceJSON(t, f, "t", map[string]any{"a": 2})
	waitFor(t, func() bool { return tr.Stats().EventsDelivered == 1 }, "post-panic delivery")
}

func TestTriggerBatchSize(t *testing.T) {
	f := newFabric(t, "t", 1)
	// Pre-populate, then start the trigger so batches fill.
	docs := make([]map[string]any, 10)
	for i := range docs {
		docs[i] = map[string]any{"i": i}
	}
	produceJSON(t, f, "t", docs...)
	cfg := fastCfg("batch", "t")
	cfg.BatchSize = 4
	var mu sync.Mutex
	var sizes []int
	tr, err := New(f, cfg, func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		sizes = append(sizes, len(inv.Events))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	defer tr.Stop()
	waitFor(t, func() bool { return tr.Stats().EventsDelivered == 10 }, "batched delivery")
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sizes {
		if s > 4 {
			t.Fatalf("batch of %d exceeds limit 4 (sizes %v)", s, sizes)
		}
	}
}

func TestTriggerProgressSurvivesRestart(t *testing.T) {
	f := newFabric(t, "t", 1)
	cfg := fastCfg("resume", "t")
	var mu sync.Mutex
	var got []string
	act := func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range inv.Events {
			got = append(got, string(e.Value))
		}
		return nil
	}
	tr, err := New(f, cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	produceJSON(t, f, "t", map[string]any{"phase": 1})
	waitFor(t, func() bool { return tr.Stats().EventsDelivered == 1 }, "first delivery")
	tr.Stop()
	// New instance with the same group resumes where the old one left off.
	tr2, err := New(f, cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Start()
	defer tr2.Stop()
	produceJSON(t, f, "t", map[string]any{"phase": 2})
	waitFor(t, func() bool { return tr2.Stats().EventsDelivered == 1 }, "resumed delivery")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v (duplicate or loss across restart)", got)
	}
}

func TestNextConcurrencyPolicy(t *testing.T) {
	// Scale-up path: 3 -> 128 within four evaluations with growth 3.5
	// and a deep backlog over 128 partitions (Figure 4).
	cur := 3
	var path []int
	for i := 0; i < 6; i++ {
		cur = NextConcurrency(cur, 5000, 1, 128, 1, 128, 3.5)
		path = append(path, cur)
	}
	if path[3] != 128 {
		t.Fatalf("did not reach 128 in four evaluations: %v", path)
	}
	// Scale-down path: small backlog snaps down to what is needed.
	if got := NextConcurrency(128, 10, 1, 128, 1, 128, 3.5); got != 10 {
		t.Fatalf("scale down = %d, want 10", got)
	}
	// Idle snaps to minimum.
	if got := NextConcurrency(64, 0, 1, 128, 3, 128, 3.5); got != 3 {
		t.Fatalf("idle = %d, want 3", got)
	}
	// Never exceeds partitions.
	if got := NextConcurrency(1, 1e6, 1, 8, 1, 128, 3.5); got > 8 {
		t.Fatalf("exceeded partitions: %d", got)
	}
	// Steady state unchanged.
	if got := NextConcurrency(5, 5, 1, 128, 1, 128, 3.5); got != 5 {
		t.Fatalf("steady = %d", got)
	}
}

func TestTriggerAutoscalesUnderPressure(t *testing.T) {
	f := newFabric(t, "t", 8)
	cfg := fastCfg("scale", "t")
	cfg.BatchSize = 1
	cfg.MinConcurrency = 1
	cfg.MaxConcurrency = 8
	cfg.EvalInterval = 2 * time.Millisecond
	block := make(chan struct{})
	tr, err := New(f, cfg, func(inv *Invocation) error {
		<-block // hold invocations open to keep backlog high
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]map[string]any, 64)
	for i := range docs {
		docs[i] = map[string]any{"i": i}
	}
	produceJSON(t, f, "t", docs...)
	tr.Start()
	waitFor(t, func() bool {
		return tr.Stats().Concurrency == 8
	}, "scale up to 8")
	close(block)
	waitFor(t, func() bool {
		return tr.Stats().Backlog == 0
	}, "drain")
	tr.Stop()
	if tr.ConcurrencySeries.MaxValue() != 8 {
		t.Fatalf("concurrency series max = %v", tr.ConcurrencySeries.MaxValue())
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFabric(t, "t", 1)
	if _, err := New(f, Config{Topic: "t"}, func(*Invocation) error { return nil }); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, err := New(f, Config{ID: "x"}, func(*Invocation) error { return nil }); err == nil {
		t.Fatal("missing topic accepted")
	}
	if _, err := New(f, Config{ID: "x", Topic: "ghost"}, func(*Invocation) error { return nil }); err == nil {
		t.Fatal("missing topic in fabric accepted")
	}
	if _, err := New(f, Config{ID: "x", Topic: "t"}, nil); err == nil {
		t.Fatal("nil action accepted")
	}
	if _, err := New(f, Config{ID: "x", Topic: "t", PatternJSON: "{bad"}, func(*Invocation) error { return nil }); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestRuntimeDeployLifecycle(t *testing.T) {
	f := newFabric(t, "t", 1)
	rt := NewRuntime(f)
	var mu sync.Mutex
	count := 0
	rt.RegisterAction("count", func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		count += len(inv.Events)
		return nil
	})
	if _, err := rt.Deploy(fastCfg("a", "t"), "nope"); !errors.Is(err, ErrNoAction) {
		t.Fatalf("unknown action: %v", err)
	}
	tr, err := rt.Deploy(fastCfg("a", "t"), "count")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Deploy(fastCfg("a", "t"), "count"); !errors.Is(err, ErrTriggerExists) {
		t.Fatalf("duplicate deploy: %v", err)
	}
	if got, err := rt.Get("a"); err != nil || got != tr {
		t.Fatalf("get: %v", err)
	}
	if ids := rt.List(); len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("list = %v", ids)
	}
	produceJSON(t, f, "t", map[string]any{"x": 1})
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 1
	}, "deployed trigger ran")
	if err := rt.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get("a"); !errors.Is(err, ErrNoTrigger) {
		t.Fatalf("after remove: %v", err)
	}
	if err := rt.Remove("a"); !errors.Is(err, ErrNoTrigger) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRuntimeUpdatePreservesProgress(t *testing.T) {
	f := newFabric(t, "t", 1)
	rt := NewRuntime(f)
	var mu sync.Mutex
	var got []string
	rt.RegisterAction("collect", func(inv *Invocation) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range inv.Events {
			got = append(got, string(e.Value))
		}
		return nil
	})
	if _, err := rt.Deploy(fastCfg("u", "t"), "collect"); err != nil {
		t.Fatal(err)
	}
	produceJSON(t, f, "t", map[string]any{"phase": 1})
	waitFor(t, func() bool {
		tr, _ := rt.Get("u")
		return tr.Stats().EventsDelivered == 1
	}, "pre-update delivery")
	// Update batch size; progress must not rewind.
	if _, err := rt.Update("u", func(c *Config) { c.BatchSize = 7 }); err != nil {
		t.Fatal(err)
	}
	tr, _ := rt.Get("u")
	if tr.Config().BatchSize != 7 {
		t.Fatalf("batch size = %d", tr.Config().BatchSize)
	}
	produceJSON(t, f, "t", map[string]any{"phase": 2})
	waitFor(t, func() bool { return tr.Stats().EventsDelivered == 1 }, "post-update delivery")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestRuntimeStopAll(t *testing.T) {
	f := newFabric(t, "t", 1)
	rt := NewRuntime(f)
	rt.RegisterAction("noop", func(*Invocation) error { return nil })
	for i := 0; i < 3; i++ {
		if _, err := rt.Deploy(fastCfg(fmt.Sprintf("t%d", i), "t"), "noop"); err != nil {
			t.Fatal(err)
		}
	}
	rt.StopAll() // must not hang or panic
}
