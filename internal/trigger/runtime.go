package trigger

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/broker"
)

// Runtime is the managed trigger service: it deploys, describes,
// updates and removes triggers, backing the OWS /trigger routes. Every
// trigger gets its own consumer group so "many instances of the Lambda
// function can retrieve events without affecting other consumers of the
// topic" (§IV-D).
type Runtime struct {
	fabric *broker.Fabric

	mu       sync.Mutex
	triggers map[string]*Trigger
	// actions is the registry of deployable functions by name, standing
	// in for the Lambda function catalog.
	actions map[string]Action
}

// Errors returned by the runtime.
var (
	// ErrTriggerExists reports a duplicate deploy.
	ErrTriggerExists = errors.New("trigger: already deployed")
	// ErrNoTrigger reports an operation on an unknown trigger.
	ErrNoTrigger = errors.New("trigger: not found")
	// ErrNoAction reports a deploy referencing an unregistered function.
	ErrNoAction = errors.New("trigger: unknown action")
)

// NewRuntime creates an empty runtime over a fabric.
func NewRuntime(f *broker.Fabric) *Runtime {
	return &Runtime{
		fabric:   f,
		triggers: make(map[string]*Trigger),
		actions:  make(map[string]Action),
	}
}

// RegisterAction publishes a named function users can attach triggers to
// (the "users can specify the Lambda function" step of §IV-D).
func (r *Runtime) RegisterAction(name string, fn Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.actions[name] = fn
}

// Deploy creates and starts a trigger running the named action.
func (r *Runtime) Deploy(cfg Config, actionName string) (*Trigger, error) {
	r.mu.Lock()
	fn, ok := r.actions[actionName]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoAction, actionName)
	}
	if _, dup := r.triggers[cfg.ID]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrTriggerExists, cfg.ID)
	}
	r.mu.Unlock()

	t, err := New(r.fabric, cfg, fn)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, dup := r.triggers[cfg.ID]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrTriggerExists, cfg.ID)
	}
	r.triggers[cfg.ID] = t
	r.mu.Unlock()
	t.Start()
	return t, nil
}

// DeployFunc deploys a trigger with an inline function (SDK-style use).
func (r *Runtime) DeployFunc(cfg Config, fn Action) (*Trigger, error) {
	name := "inline-" + cfg.ID
	r.RegisterAction(name, fn)
	return r.Deploy(cfg, name)
}

// Get returns a deployed trigger.
func (r *Runtime) Get(id string) (*Trigger, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.triggers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTrigger, id)
	}
	return t, nil
}

// List returns deployed trigger ids, sorted.
func (r *Runtime) List() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.triggers))
	for id := range r.triggers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Update applies a new configuration to a running trigger (the OWS POST
// /trigger/<id> route: batch size, batch window, filtering criteria).
// The trigger is restarted under the new config; its consumer group and
// therefore its committed progress are preserved.
func (r *Runtime) Update(id string, mutate func(*Config)) (*Trigger, error) {
	r.mu.Lock()
	old, ok := r.triggers[id]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoTrigger, id)
	}
	r.mu.Unlock()
	old.Stop()
	cfg := old.cfg
	mutate(&cfg)
	cfg.ID = id               // id is immutable
	cfg.Group = old.cfg.Group // group (and progress) is preserved
	t, err := New(r.fabric, cfg, old.action)
	if err != nil {
		// Restart the old trigger so a bad update is not destructive.
		restarted, rerr := New(r.fabric, old.cfg, old.action)
		if rerr == nil {
			restarted.Start()
			r.mu.Lock()
			r.triggers[id] = restarted
			r.mu.Unlock()
		}
		return nil, err
	}
	r.mu.Lock()
	r.triggers[id] = t
	r.mu.Unlock()
	t.Start()
	return t, nil
}

// Remove stops and deletes a trigger.
func (r *Runtime) Remove(id string) error {
	r.mu.Lock()
	t, ok := r.triggers[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoTrigger, id)
	}
	delete(r.triggers, id)
	r.mu.Unlock()
	t.Stop()
	return nil
}

// StopAll stops every trigger (shutdown path).
func (r *Runtime) StopAll() {
	r.mu.Lock()
	ts := make([]*Trigger, 0, len(r.triggers))
	for _, t := range r.triggers {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	for _, t := range ts {
		t.Stop()
	}
}
