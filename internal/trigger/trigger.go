// Package trigger implements Octopus Triggers (§IV-D): managed,
// FaaS-style event handlers. Each trigger owns a consumer group on its
// topic, optionally filters events through an EventBridge-style pattern,
// invokes a user function with batches of up to 10 000 events / 6 MB,
// retries failures, and autoscales its concurrency by re-evaluating the
// topic's processing pressure at a fixed interval — the behavior of the
// AWS Lambda + EventBridge deployment the paper uses.
package trigger

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/vclock"
)

// Action is the user function a trigger invokes. Implementations may
// call external services (the paper's Globus Transfer requests), publish
// derived events, or update local state. A non-nil error causes a retry
// up to Config.MaxRetries.
type Action func(inv *Invocation) error

// Invocation carries one batch delivery to an Action.
type Invocation struct {
	// TriggerID identifies the trigger.
	TriggerID string
	// Events is the filtered batch (pattern matches only).
	Events []event.Event
	// Partition is the source partition.
	Partition int
	// Attempt counts delivery attempts for this batch (1 = first).
	Attempt int
	// OnBehalfOf is the delegated identity the trigger acts as.
	OnBehalfOf string
}

// Config describes a trigger deployment, the payload of the OWS
// PUT /trigger route.
type Config struct {
	// ID names the trigger (unique within the runtime).
	ID string
	// Topic is the source topic.
	Topic string
	// Group is the trigger's private consumer group
	// (default "trigger-<ID>").
	Group string
	// Pattern optionally filters events; nil invokes on everything.
	// The JSON source form is kept so OWS can round-trip it.
	PatternJSON string
	// BatchSize caps events per invocation (default 100, max 10 000).
	BatchSize int
	// BatchBytes caps payload bytes per invocation (default 6 MB).
	BatchBytes int
	// BatchWindow is the poll interval while idle (default 100 ms).
	BatchWindow time.Duration
	// MinConcurrency / MaxConcurrency bound the worker pool
	// (defaults 1 and 128; concurrency never exceeds partition count).
	MinConcurrency int
	MaxConcurrency int
	// EvalInterval is the pressure re-evaluation period (default 1 min,
	// matching Lambda's behavior in §IV-D).
	EvalInterval time.Duration
	// Growth is the per-evaluation concurrency multiplier while under
	// pressure (default 3.5: 3 → 128 in four evaluations, Figure 4).
	Growth float64
	// MaxRetries bounds redelivery of a failing batch (default 2).
	MaxRetries int
	// OnBehalfOf is the identity the trigger acts for.
	OnBehalfOf string
}

func (c *Config) fill() error {
	if c.ID == "" {
		return errors.New("trigger: config needs an ID")
	}
	if c.Topic == "" {
		return errors.New("trigger: config needs a Topic")
	}
	if c.Group == "" {
		c.Group = "trigger-" + c.ID
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchSize > 10000 {
		c.BatchSize = 10000
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 6 << 20
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 100 * time.Millisecond
	}
	if c.MinConcurrency <= 0 {
		c.MinConcurrency = 1
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 128
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = time.Minute
	}
	if c.Growth <= 1 {
		c.Growth = 3.5
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	return nil
}

// NextConcurrency is the autoscaling policy: given the current
// concurrency and observed backlog, it returns the next concurrency.
// It is a pure function shared by the live runtime and the testbed
// simulator (Figure 4).
//
// Scaling up multiplies by growth while backlog exceeds what the current
// workers can drain in one evaluation interval; scaling down snaps to
// the needed level. Concurrency is clamped to [min, min(max, parts)].
func NextConcurrency(cur int, backlog int64, batch, parts, minC, maxC int, growth float64) int {
	limit := maxC
	if parts < limit {
		limit = parts
	}
	if limit < minC {
		limit = minC
	}
	// needed is how many single-batch workers the backlog justifies.
	needed := int(math.Ceil(float64(backlog) / float64(batch)))
	switch {
	case needed > cur:
		next := int(math.Ceil(float64(cur) * growth))
		if next > needed {
			next = needed
		}
		if next > limit {
			next = limit
		}
		return next
	case needed < cur:
		next := needed
		if next < minC {
			next = minC
		}
		return next
	default:
		return cur
	}
}

// Stats is a live snapshot of a trigger's activity.
type Stats struct {
	Concurrency       int
	ActiveInvocations int
	Invocations       int64
	EventsDelivered   int64
	EventsFiltered    int64
	Failures          int64
	DeadLettered      int64
	Backlog           int64
}

// Trigger is a deployed trigger instance.
type Trigger struct {
	cfg     Config
	pat     *pattern.Pattern
	action  Action
	fabric  *broker.Fabric
	clock   vclock.Clock
	metrics *metrics.Registry

	mu          sync.Mutex
	concurrency int
	active      int
	parts       []int
	stopCh      chan struct{}
	stopped     bool
	wg          sync.WaitGroup
	epoch       int // bumps on resize; workers of old epochs exit

	invocations     int64
	eventsDelivered int64
	eventsFiltered  int64
	failures        int64
	deadLettered    int64

	// ConcurrencySeries and BacklogSeries record the Figure 4/7 curves.
	ConcurrencySeries *metrics.Series
	BacklogSeries     *metrics.Series
}

// New validates the config and builds a trigger bound to a fabric.
func New(f *broker.Fabric, cfg Config, action Action) (*Trigger, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if action == nil {
		return nil, errors.New("trigger: nil action")
	}
	var pat *pattern.Pattern
	if cfg.PatternJSON != "" {
		p, err := pattern.Compile([]byte(cfg.PatternJSON))
		if err != nil {
			return nil, fmt.Errorf("trigger %s: %w", cfg.ID, err)
		}
		pat = p
	}
	meta, err := f.Ctl.Topic(cfg.Topic)
	if err != nil {
		return nil, err
	}
	parts := make([]int, meta.Config.Partitions)
	for i := range parts {
		parts[i] = i
	}
	t := &Trigger{
		cfg:               cfg,
		pat:               pat,
		action:            action,
		fabric:            f,
		clock:             f.Clock,
		metrics:           f.Metrics,
		concurrency:       cfg.MinConcurrency,
		parts:             parts,
		stopCh:            make(chan struct{}),
		ConcurrencySeries: metrics.NewSeries(cfg.ID + ".concurrency"),
		BacklogSeries:     metrics.NewSeries(cfg.ID + ".backlog"),
	}
	return t, nil
}

// Config returns the trigger's (filled) configuration.
func (t *Trigger) Config() Config { return t.cfg }

// Start launches the workers and the autoscaler.
func (t *Trigger) Start() {
	t.mu.Lock()
	n := t.concurrency
	t.mu.Unlock()
	t.spawnWorkers(n)
	t.wg.Add(1)
	go t.scaleLoop()
}

// Stop halts workers and the autoscaler and waits for them.
func (t *Trigger) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	close(t.stopCh)
	t.mu.Unlock()
	t.wg.Wait()
}

// spawnWorkers bumps the epoch and starts n workers; workers from prior
// epochs notice and exit, so a resize is a full worker-set replacement.
func (t *Trigger) spawnWorkers(n int) {
	t.mu.Lock()
	t.epoch++
	epoch := t.epoch
	t.concurrency = n
	t.mu.Unlock()
	for i := 0; i < n; i++ {
		t.wg.Add(1)
		go t.worker(i, n, epoch)
	}
}

func (t *Trigger) currentEpoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// worker services the partitions congruent to idx modulo n.
func (t *Trigger) worker(idx, n, epoch int) {
	defer t.wg.Done()
	positions := make(map[int]int64)
	for {
		select {
		case <-t.stopCh:
			return
		default:
		}
		if t.currentEpoch() != epoch {
			return
		}
		progressed := false
		for p := idx; p < len(t.parts); p += n {
			if t.processOne(p, positions) {
				progressed = true
			}
		}
		if !progressed {
			select {
			case <-t.stopCh:
				return
			case <-t.clock.After(t.cfg.BatchWindow):
			}
		}
	}
}

// processOne fetches and handles one batch from partition p; it reports
// whether any events were consumed.
func (t *Trigger) processOne(p int, positions map[int]int64) bool {
	pos, ok := positions[p]
	if !ok {
		if off := t.fabric.Groups.Committed(t.cfg.Group, t.cfg.Topic, p); off >= 0 {
			pos = off
		} else {
			start, err := t.fabric.StartOffset(t.cfg.Topic, p)
			if err != nil {
				return false
			}
			pos = start
		}
		positions[p] = pos
	}
	res, err := t.fabric.Fetch("", t.cfg.Topic, p, pos, t.cfg.BatchSize, t.cfg.BatchBytes)
	if err != nil || len(res.Events) == 0 {
		return false
	}
	batch := res.Events
	matched := batch
	if t.pat != nil {
		matched = matched[:0:0]
		for _, ev := range batch {
			if t.pat.MatchJSON(ev.Value) {
				matched = append(matched, ev)
			} else {
				t.mu.Lock()
				t.eventsFiltered++
				t.mu.Unlock()
			}
		}
	}
	if len(matched) > 0 {
		t.invoke(p, matched)
	}
	last := batch[len(batch)-1]
	positions[p] = last.Offset + 1
	t.fabric.Groups.CommitDirect(t.cfg.Group, t.cfg.Topic, p, last.Offset+1)
	return true
}

func (t *Trigger) invoke(p int, evs []event.Event) {
	t.mu.Lock()
	t.active++
	t.invocations++
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.active--
		t.mu.Unlock()
	}()
	for attempt := 1; ; attempt++ {
		err := t.safeAction(&Invocation{
			TriggerID:  t.cfg.ID,
			Events:     evs,
			Partition:  p,
			Attempt:    attempt,
			OnBehalfOf: t.cfg.OnBehalfOf,
		})
		if err == nil {
			t.mu.Lock()
			t.eventsDelivered += int64(len(evs))
			t.mu.Unlock()
			return
		}
		t.mu.Lock()
		t.failures++
		t.mu.Unlock()
		if attempt > t.cfg.MaxRetries {
			t.mu.Lock()
			t.deadLettered += int64(len(evs))
			t.mu.Unlock()
			t.metrics.Counter("trigger." + t.cfg.ID + ".dead_lettered").Add(int64(len(evs)))
			return
		}
		t.clock.Sleep(t.cfg.BatchWindow)
	}
}

// safeAction isolates panicking user functions, converting them to
// errors so one bad batch cannot take down the runtime.
func (t *Trigger) safeAction(inv *Invocation) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trigger %s: action panic: %v", t.cfg.ID, r)
		}
	}()
	return t.action(inv)
}

// scaleLoop re-evaluates processing pressure every EvalInterval and
// resizes the worker pool, mirroring Lambda's per-minute scaling.
func (t *Trigger) scaleLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.stopCh:
			return
		case <-t.clock.After(t.cfg.EvalInterval):
		}
		backlog, err := t.fabric.PendingEvents(t.cfg.Topic, t.cfg.Group)
		if err != nil {
			continue
		}
		now := t.clock.Now()
		t.BacklogSeries.Record(now, float64(backlog))
		t.mu.Lock()
		cur := t.concurrency
		t.mu.Unlock()
		next := NextConcurrency(cur, backlog, t.cfg.BatchSize, len(t.parts), t.cfg.MinConcurrency, t.cfg.MaxConcurrency, t.cfg.Growth)
		t.ConcurrencySeries.Record(now, float64(next))
		if next != cur {
			t.spawnWorkers(next)
		}
	}
}

// Stats returns a snapshot of trigger activity.
func (t *Trigger) Stats() Stats {
	backlog, _ := t.fabric.PendingEvents(t.cfg.Topic, t.cfg.Group)
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Concurrency:       t.concurrency,
		ActiveInvocations: t.active,
		Invocations:       t.invocations,
		EventsDelivered:   t.eventsDelivered,
		EventsFiltered:    t.eventsFiltered,
		Failures:          t.failures,
		DeadLettered:      t.deadLettered,
		Backlog:           backlog,
	}
}
