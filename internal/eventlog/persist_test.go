package eventlog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/event"
)

var persistOrigin = time.Unix(1_700_000_000, 0)

func openDurable(t *testing.T, dir string, mut func(*Config)) *Log {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dir = dir
	if mut != nil {
		mut(&cfg)
	}
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendValues(t *testing.T, l *Log, n int) {
	t.Helper()
	evs := make([]event.Event, n)
	start := l.EndOffset()
	for i := range evs {
		evs[i] = event.Event{Value: []byte(fmt.Sprintf("v%03d", start+int64(i)))}
	}
	if _, err := l.AppendBatch(evs, persistOrigin.Add(time.Duration(start)*time.Second)); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
}

func checkDense(t *testing.T, l *Log, from, to int64) {
	t.Helper()
	evs, err := l.Read(from, int(to-from))
	if err != nil {
		t.Fatalf("Read(%d): %v", from, err)
	}
	if int64(len(evs)) != to-from {
		t.Fatalf("read %d events from %d; want %d", len(evs), from, to-from)
	}
	for i, ev := range evs {
		off := from + int64(i)
		if ev.Offset != off || string(ev.Value) != fmt.Sprintf("v%03d", off) {
			t.Fatalf("event %d: offset %d value %q", i, ev.Offset, ev.Value)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, nil)
	evs := []event.Event{
		{Key: []byte("k"), Value: []byte("v000"), Headers: map[string]string{"h": "x"}},
		{Value: []byte("v001")},
	}
	if _, err := l.AppendBatch(evs, persistOrigin); err != nil {
		t.Fatal(err)
	}
	appendValues(t, l, 3)
	l.Close()

	r := openDurable(t, dir, nil)
	defer r.Close()
	if r.StartOffset() != 0 || r.EndOffset() != 5 {
		t.Fatalf("replayed range [%d,%d)", r.StartOffset(), r.EndOffset())
	}
	checkDense(t, r, 1, 5)
	got, err := r.Read(0, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("read first: %v", err)
	}
	if string(got[0].Key) != "k" || got[0].Headers["h"] != "x" || !got[0].Timestamp.Equal(persistOrigin) {
		t.Fatalf("first record lost fields: %+v", got[0])
	}
	// The reopened log keeps appending where the old one stopped.
	appendValues(t, r, 2)
	checkDense(t, r, 5, 7)
}

func TestReplaySpansSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	for i := 0; i < 3; i++ {
		appendValues(t, l, 4)
	}
	appendValues(t, l, 2) // 14 records: 3 sealed files + active
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(files) < 3 {
		t.Fatalf("expected multiple segment files, got %v", files)
	}
	r := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	defer r.Close()
	if r.EndOffset() != 14 {
		t.Fatalf("replayed end = %d", r.EndOffset())
	}
	checkDense(t, r, 0, 14)
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, nil)
	appendValues(t, l, 6)
	l.Close()
	// Crash mid-write: chop the file inside the last frame.
	path := filepath.Join(dir, segFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, nil)
	if r.EndOffset() != 5 {
		t.Fatalf("end after torn tail = %d; want 5", r.EndOffset())
	}
	checkDense(t, r, 0, 5)
	// The torn bytes are gone from disk too: appending and replaying
	// again yields a clean, contiguous log.
	appendValues(t, r, 1)
	r.Close()
	r2 := openDurable(t, dir, nil)
	defer r2.Close()
	checkDense(t, r2, 0, 6)
}

func TestReplayCorruptMiddleDropsLaterFiles(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	appendValues(t, l, 10) // files at base 0, 4, 8
	l.Close()
	// Flip a byte inside the second file's first frame body.
	path := filepath.Join(dir, segFileName(4))
	data, _ := os.ReadFile(path)
	data[recordHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	defer r.Close()
	// Replay keeps the intact prefix and discards everything from the
	// corrupt frame on — including the file at base 8 — so offsets
	// stay contiguous.
	if r.EndOffset() != 4 {
		t.Fatalf("end after mid-log corruption = %d; want 4", r.EndOffset())
	}
	checkDense(t, r, 0, 4)
	if _, err := os.Stat(filepath.Join(dir, segFileName(8))); !os.IsNotExist(err) {
		t.Fatalf("orphaned later segment file survived: %v", err)
	}
}

func TestTruncatePersists(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	appendValues(t, l, 10)
	if err := l.Truncate(6); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if l.EndOffset() != 6 {
		t.Fatalf("end after truncate = %d", l.EndOffset())
	}
	checkDense(t, l, 0, 6)
	// New appends continue from the cut.
	appendValues(t, l, 2)
	checkDense(t, l, 0, 8)
	l.Close()
	r := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	defer r.Close()
	if r.EndOffset() != 8 {
		t.Fatalf("replayed end after truncate = %d; want 8", r.EndOffset())
	}
	checkDense(t, r, 0, 8)
}

func TestRetentionDeletesSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, func(c *Config) {
		c.SegmentEvents = 4
		c.Retention = time.Minute
	})
	appendValues(t, l, 9) // one batch, rolls files at bases 0, 4, 8
	deleted := l.EnforceRetention(persistOrigin.Add(10 * time.Minute))
	if deleted != 8 {
		t.Fatalf("retention deleted %d; want 8", deleted)
	}
	if l.StartOffset() != 8 {
		t.Fatalf("start after retention = %d", l.StartOffset())
	}
	for _, base := range []int64{0, 4} {
		if _, err := os.Stat(filepath.Join(dir, segFileName(base))); !os.IsNotExist(err) {
			t.Fatalf("expired segment file %d survived: %v", base, err)
		}
	}
	l.Close()
	r := openDurable(t, dir, func(c *Config) { c.SegmentEvents = 4 })
	defer r.Close()
	if r.StartOffset() != 8 || r.EndOffset() != 9 {
		t.Fatalf("replayed range after retention [%d,%d)", r.StartOffset(), r.EndOffset())
	}
}

func TestAppendReplicatedPreservesOffsetsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	l := openDurable(t, dir, nil)
	evs := make([]event.Event, 5)
	for i := range evs {
		evs[i] = event.Event{
			Offset:    int64(i),
			Value:     []byte(fmt.Sprintf("v%03d", i)),
			Timestamp: persistOrigin.Add(time.Duration(i) * time.Second),
		}
	}
	if err := l.AppendReplicated(evs); err != nil {
		t.Fatal(err)
	}
	// Records below the log end are duplicates of what is already
	// replicated: ignored, not re-appended.
	if err := l.AppendReplicated(evs[2:4]); err != nil {
		t.Fatal(err)
	}
	if l.EndOffset() != 5 {
		t.Fatalf("end = %d", l.EndOffset())
	}
	l.Close()
	r := openDurable(t, dir, nil)
	defer r.Close()
	checkDense(t, r, 0, 5)
	if got, _ := r.Read(3, 1); !got[0].Timestamp.Equal(persistOrigin.Add(3 * time.Second)) {
		t.Fatalf("leader timestamp lost: %v", got[0].Timestamp)
	}
}

func TestAppendReplicatedGapRollsSegment(t *testing.T) {
	// A follower fetching above a tiered-away gap lands records at a
	// base offset past its local end: the log seals the active segment
	// and rolls a fresh one at the gap target, keeping the dense-active
	// invariant. Reads inside the gap skip forward to the next record,
	// exactly like compaction holes.
	dir := t.TempDir()
	l := openDurable(t, dir, nil)
	appendValues(t, l, 3)
	gap := []event.Event{
		{Offset: 10, Value: []byte("v010"), Timestamp: persistOrigin},
		{Offset: 11, Value: []byte("v011"), Timestamp: persistOrigin},
	}
	if err := l.AppendReplicated(gap); err != nil {
		t.Fatal(err)
	}
	if l.EndOffset() != 12 {
		t.Fatalf("end after gap = %d", l.EndOffset())
	}
	if got, err := l.Read(5, 1); err != nil || len(got) != 1 || got[0].Offset != 10 {
		t.Fatalf("read inside gap: %v, %v", got, err)
	}
	got, err := l.Read(10, 5)
	if err != nil || len(got) != 2 || got[0].Offset != 10 {
		t.Fatalf("read past gap: %d events, %v", len(got), err)
	}
	l.Close()
	r := openDurable(t, dir, nil)
	defer r.Close()
	if r.EndOffset() != 12 {
		t.Fatalf("replayed end after gap = %d", r.EndOffset())
	}
	got, err = r.Read(10, 5)
	if err != nil || len(got) != 2 || string(got[1].Value) != "v011" {
		t.Fatalf("replayed gap read: %d events, %v", len(got), err)
	}
}

func TestInMemoryLogUnaffectedByDurableAPIs(t *testing.T) {
	l, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendValues(t, l, 4)
	if l.Dir() != "" {
		t.Fatalf("in-memory log has dir %q", l.Dir())
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync on in-memory log: %v", err)
	}
	if err := l.Truncate(2); err != nil {
		t.Fatalf("Truncate on in-memory log: %v", err)
	}
	if l.EndOffset() != 2 {
		t.Fatalf("end after in-memory truncate = %d", l.EndOffset())
	}
	appendValues(t, l, 1)
	checkDense(t, l, 0, 3)
}
