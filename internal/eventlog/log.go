// Package eventlog implements the storage engine behind a topic
// partition: an append-only, offset-addressed, segmented commit log with
// time-indexed lookup, retention enforcement and key compaction. It is
// the moral equivalent of Kafka's log layer (§IV-A of the paper), built
// from scratch on Go slices, with optional file-backed persistence.
//
// Persistence (Config.Dir) maps each in-memory segment to one file,
// <dir>/<baseOffset, 20 decimal digits>.seg, holding framed records:
//
//	u32 crc32(IEEE, over body) | u32 bodyLen | body
//	body = u64 offset | event.Marshal (key, value, timestamp, headers)
//
// Appends are encoded into a pending buffer and written with one write
// per Append/AppendBatch call (fsync only when Config.Fsync is set), so
// a batch is the durability unit. Open replays the segment files to
// rebuild the index: records stream back in base-offset order, and the
// first frame that fails its crc or length check — the torn tail of a
// crash — truncates that file at the last intact boundary and deletes
// any later files, keeping the recovered offset space contiguous.
// Retention deletes whole segment files; compaction and Truncate
// rewrite the affected file via temp file + rename.
package eventlog

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
)

// Errors returned by log reads.
var (
	// ErrOffsetOutOfRange reports a read before the log start (records
	// deleted by retention) or a negative offset.
	ErrOffsetOutOfRange = errors.New("eventlog: offset out of range")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("eventlog: log closed")
)

// Config controls segment rolling and retention for a partition log.
type Config struct {
	// SegmentBytes rolls a new segment when the active one reaches this
	// many payload bytes. Default 4 MiB.
	SegmentBytes int
	// SegmentEvents rolls a new segment after this many records.
	// Default 65536.
	SegmentEvents int
	// Retention is the maximum age of a segment before it is eligible
	// for deletion; the paper's default topic retention is seven days.
	Retention time.Duration
	// RetentionBytes caps the total stored bytes (0 = unlimited).
	RetentionBytes int64
	// Compact enables key compaction: on Compact(), only the latest
	// record per key in sealed segments is retained.
	Compact bool
	// Dir enables file-backed persistence: appends are framed into
	// per-segment files under this directory and Open replays them.
	// Empty means in-memory only.
	Dir string
	// Fsync forces an fsync after every persisted append batch. Off by
	// default: the durability unit is then the OS page cache, which
	// survives process crashes (the failure mode replication recovery
	// exercises) but not host power loss.
	Fsync bool
	// AppendLatency, when non-nil, observes the wall-clock nanoseconds
	// of every append batch (lock wait + encode + flush + optional
	// fsync) — the storage-engine slice of the produce latency budget.
	// Fixed at open; typically a fabric-wide histogram shared by every
	// partition log.
	AppendLatency *metrics.BucketHist
	// AppendBytes, when non-nil, observes the payload bytes appended
	// per batch.
	AppendBytes *metrics.BucketHist
}

// DefaultConfig returns the paper's defaults (7-day retention).
func DefaultConfig() Config {
	return Config{
		SegmentBytes:  4 << 20,
		SegmentEvents: 65536,
		Retention:     7 * 24 * time.Hour,
	}
}

func (c *Config) fill() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.SegmentEvents <= 0 {
		c.SegmentEvents = 65536
	}
	if c.Retention <= 0 {
		c.Retention = 7 * 24 * time.Hour
	}
}

type record struct {
	offset int64
	// size caches ev.Size() at append time so fetch-side byte budgeting,
	// retention and compaction never re-walk key/value/header lengths.
	size int
	ev   event.Event
}

// segment is a run of records covering the offset range
// [baseOffset, nextOffset()). Compaction may remove records from sealed
// segments, so the range is fixed at seal time rather than derived from
// the record count.
type segment struct {
	baseOffset int64
	records    []record
	bytes      int
	created    time.Time
	lastAppend time.Time
	sealed     bool
	// end is the offset one past the segment's last assigned record,
	// frozen when the segment seals. Deriving it from len(records) would
	// undercount once compaction punches holes, making surviving records
	// unreachable from mid-segment read offsets.
	end int64
}

func (s *segment) nextOffset() int64 {
	if s.sealed {
		return s.end
	}
	// The active segment is dense from baseOffset: compaction only
	// touches sealed segments.
	return s.baseOffset + int64(len(s.records))
}

// Log is a single partition's commit log. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.RWMutex
	cfg      Config
	segments []*segment
	// start is the lowest retained offset (advances under retention).
	start int64
	// next is the offset the next appended record will receive.
	next   int64
	bytes  int64
	closed bool
	// waitCh is the tail-waiter broadcast channel: lazily created by the
	// first WaitAppend that finds no data, closed (waking every waiter)
	// by the next append or by Close. One channel serves any number of
	// waiters, and an idle log with no waiters carries none at all.
	waitCh chan struct{}
	// notifies are the registered one-shot append callbacks (NotifyAppend):
	// the multi-log waiter primitive behind session fetch, where one pump
	// goroutine waits on "any of these logs appended" without parking a
	// goroutine per log. Lazily allocated; an idle log carries none.
	notifies map[uint64]appendNotify
	notifyID uint64
	// reads counts ReadBudgetInto calls — the probe the long-poll
	// regression tests use to prove an idle consumer performs no log
	// reads between appends.
	reads atomic.Int64
	// File-backed persistence state ("" / nil for in-memory logs):
	// the backing directory, the active segment's append handle, and
	// the pending encoded frames flushed once per append batch.
	dir        string
	activeFile *os.File
	wbuf       []byte
}

// New creates an empty log with the given configuration. With cfg.Dir
// set it opens (and replays) the backing directory, panicking on I/O
// errors — callers that want to handle those use Open directly.
func New(cfg Config) *Log {
	l, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// appendLocked stores one event on the active segment, rolling first if
// the active segment is full. Callers hold l.mu. The returned error is
// only ever non-nil for file-backed logs (segment roll I/O).
func (l *Log) appendLocked(ev event.Event, now time.Time) error {
	active := l.segments[len(l.segments)-1]
	if active.bytes >= l.cfg.SegmentBytes || len(active.records) >= l.cfg.SegmentEvents {
		active.end = l.next
		active.sealed = true
		if err := l.persistRollLocked(l.next); err != nil {
			active.sealed = false
			active.end = 0
			return err
		}
		active = &segment{baseOffset: l.next, created: now}
		l.segments = append(l.segments, active)
	}
	if len(active.records) == 0 {
		active.created = now
	}
	ev.Offset = l.next
	ev.Timestamp = now
	sz := ev.Size()
	active.records = append(active.records, record{offset: l.next, size: sz, ev: ev})
	active.bytes += sz
	active.lastAppend = now
	l.bytes += int64(sz)
	l.next++
	if l.dir != "" {
		l.wbuf = appendRecordFrame(l.wbuf, ev.Offset, &ev)
	}
	return nil
}

// Append assigns the next offset and stores the event, stamping it with
// now. It returns the assigned offset.
func (l *Log) Append(ev event.Event, now time.Time) (int64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	off := l.next
	err := l.appendLocked(ev, now)
	if err == nil {
		err = l.flushLocked()
	}
	fired := l.notifyLocked()
	l.mu.Unlock()
	runNotifies(fired)
	if err != nil {
		return 0, err
	}
	return off, nil
}

// AppendBatch appends events in order, returning the first assigned
// offset. A batch is appended atomically with respect to readers, and
// for file-backed logs it is also the durability unit: one write (and
// optional fsync) covers the whole batch.
func (l *Log) AppendBatch(evs []event.Event, now time.Time) (int64, error) {
	var t0 time.Time
	if l.cfg.AppendLatency != nil {
		t0 = time.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	first := l.next
	startBytes := l.bytes
	var err error
	for i := range evs {
		if err = l.appendLocked(evs[i], now); err != nil {
			break
		}
	}
	if err == nil {
		err = l.flushLocked()
	}
	appended := l.bytes - startBytes
	var fired []func()
	if len(evs) > 0 {
		fired = l.notifyLocked()
	}
	l.mu.Unlock()
	runNotifies(fired)
	if l.cfg.AppendLatency != nil {
		l.cfg.AppendLatency.Observe(int64(time.Since(t0)))
		if l.cfg.AppendBytes != nil {
			l.cfg.AppendBytes.Observe(appended)
		}
	}
	if err != nil {
		return 0, err
	}
	return first, nil
}

// AppendReplicated appends a batch fetched from the partition leader,
// preserving the leader-assigned offsets and timestamps instead of
// assigning fresh ones — the follower side of replication, which must
// produce a byte-identical offset space or a promoted follower would
// re-serve acked offsets with different events. Records at offsets the
// log already holds are skipped (re-fetch overlap after a truncate),
// and a gap — the leader compacted or retention-deleted records
// between the follower's position and the batch — seals the active
// segment at the current end and rolls a fresh one at the gap's far
// side, preserving the active-segment density invariant. Like
// AppendBatch, the whole call is one durability unit.
func (l *Log) AppendReplicated(evs []event.Event) error {
	var t0 time.Time
	if l.cfg.AppendLatency != nil {
		t0 = time.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	startBytes := l.bytes
	var err error
	appended := false
	for i := range evs {
		ev := evs[i]
		if ev.Offset < l.next {
			continue
		}
		if ev.Offset > l.next {
			if err = l.rollToLocked(ev.Offset); err != nil {
				break
			}
		}
		if err = l.appendLocked(ev, ev.Timestamp); err != nil {
			break
		}
		appended = true
	}
	if err == nil {
		err = l.flushLocked()
	}
	addedBytes := l.bytes - startBytes
	var fired []func()
	if appended {
		fired = l.notifyLocked()
	}
	l.mu.Unlock()
	runNotifies(fired)
	if l.cfg.AppendLatency != nil && appended {
		l.cfg.AppendLatency.Observe(int64(time.Since(t0)))
		if l.cfg.AppendBytes != nil {
			l.cfg.AppendBytes.Observe(addedBytes)
		}
	}
	return err
}

// rollToLocked seals the active segment at the current end and starts
// a fresh one at base (> l.next), so replicated records landing past a
// leader-side hole never break the active segment's density.
func (l *Log) rollToLocked(base int64) error {
	active := l.segments[len(l.segments)-1]
	active.end = l.next
	active.sealed = true
	if err := l.persistRollLocked(base); err != nil {
		active.sealed = false
		active.end = 0
		return err
	}
	l.segments = append(l.segments, &segment{baseOffset: base, created: l.lastNow()})
	l.next = base
	return nil
}

// lastNow approximates "now" for bookkeeping timestamps on replica
// rolls from the newest record the log holds; replicated records carry
// their own leader-stamped timestamps, so this never reaches a reader.
func (l *Log) lastNow() time.Time {
	for i := len(l.segments) - 1; i >= 0; i-- {
		if rs := l.segments[i].records; len(rs) > 0 {
			return rs[len(rs)-1].ev.Timestamp
		}
	}
	return time.Time{}
}

// notifyLocked wakes every tail waiter and collects the registered
// append callbacks whose offsets became readable. Callers hold l.mu and
// have just appended (or are closing the log); the returned callbacks
// must be invoked after l.mu is released — a callback is free to take
// locks of its own, and running it under l.mu would order l.mu inside
// them, the inverse of the registration path. One broadcast per batch,
// not per record: waiters re-check the end offset themselves.
func (l *Log) notifyLocked() []func() {
	if l.waitCh != nil {
		close(l.waitCh)
		l.waitCh = nil
	}
	if len(l.notifies) == 0 {
		return nil
	}
	var fired []func()
	for id, n := range l.notifies {
		if n.offset < l.next || l.closed {
			fired = append(fired, n.fn)
			delete(l.notifies, id)
		}
	}
	return fired
}

// runNotifies invokes fired append callbacks, outside l.mu.
func runNotifies(fired []func()) {
	for _, fn := range fired {
		fn()
	}
}

// appendNotify is one registered one-shot append callback.
type appendNotify struct {
	offset int64
	fn     func()
}

// NotifyAppend registers fn to run once, when the log end advances past
// offset (data becomes readable at offset) or the log closes. If data
// is already readable at offset — or the log is already closed — fn is
// NOT invoked and registered is false: the caller's state is already
// actionable and it should proceed directly.
//
// This is the callback flavor of WaitAppend, built for multiplexed
// fetch sessions: one session pump subscribes to dozens of partition
// logs, and parking a goroutine per log (one WaitAppend each) would
// recreate exactly the per-partition cost sessions exist to remove.
// Instead the pump registers a callback per dry log and parks once;
// whichever log appends first wakes it. Callbacks run outside the log
// lock but on the appender's goroutine, so they must be cheap and
// non-blocking — set a flag, poke a channel — never fetch or block.
//
// The registration is one-shot: after fn runs it is forgotten, and
// re-arming requires another NotifyAppend. Cancel with CancelNotify; a
// callback already collected by a concurrent append may still run one
// last time after CancelNotify returns, so callbacks must tolerate
// late invocation.
func (l *Log) NotifyAppend(offset int64, fn func()) (handle uint64, registered bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.next > offset {
		return 0, false
	}
	l.notifyID++
	if l.notifies == nil {
		l.notifies = make(map[uint64]appendNotify, 4)
	}
	l.notifies[l.notifyID] = appendNotify{offset: offset, fn: fn}
	return l.notifyID, true
}

// CancelNotify drops a NotifyAppend registration. Idempotent; unknown
// (or already-fired) handles are ignored.
func (l *Log) CancelNotify(handle uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.notifies, handle)
}

// WaitAppend blocks until the log end advances past offset (data is
// readable at offset), the timeout elapses, or stop is closed. It
// returns the current end offset; callers distinguish the outcomes by
// comparing it to offset. A nil stop channel never fires. Closing the
// log fails all waiters with ErrClosed.
//
// This is the tail-waiter primitive behind the wire server's streaming
// fetch pumps and long-poll fetches: an idle consumer parks here
// instead of re-reading an empty partition in a loop, so the idle cost
// of a subscribed partition is one blocked goroutine, not a poll churn.
func (l *Log) WaitAppend(offset int64, timeout time.Duration, stop <-chan struct{}) (int64, error) {
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, ErrClosed
		}
		if l.next > offset {
			end := l.next
			l.mu.Unlock()
			return end, nil
		}
		if l.waitCh == nil {
			l.waitCh = make(chan struct{})
		}
		ch := l.waitCh
		l.mu.Unlock()
		if timer == nil {
			if timeout <= 0 {
				return offset, nil
			}
			timer = time.NewTimer(timeout)
			timeoutCh = timer.C
		}
		select {
		case <-ch:
		case <-timeoutCh:
			return l.EndOffset(), nil
		case <-stop:
			return l.EndOffset(), nil
		}
	}
}

// Reads reports the cumulative number of read calls served by the log —
// a test probe for asserting that blocked consumers are not busy-polling.
func (l *Log) Reads() int64 { return l.reads.Load() }

// findSegment returns the index of the first segment that may contain
// records at or above offset: the last segment with baseOffset <= offset,
// stepping forward if that segment ends below offset. Segments are sorted
// by baseOffset and cover contiguous offset ranges, so this is a binary
// search rather than the linear scan a long-lived partition cannot afford.
func (l *Log) findSegment(offset int64) int {
	lo, hi := 0, len(l.segments)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.segments[mid].baseOffset <= offset {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first segment with baseOffset > offset; the candidate is
	// the one before it.
	if lo > 0 {
		lo--
	}
	for lo < len(l.segments) && l.segments[lo].nextOffset() <= offset {
		lo++
	}
	return lo
}

// Read returns up to max events starting at offset. A read exactly at the
// log end returns an empty slice and no error (the caller polls or waits).
func (l *Log) Read(offset int64, max int) ([]event.Event, error) {
	if max <= 0 {
		max = 0
	}
	return l.ReadBudget(offset, max, 0)
}

// ReadBudget returns events starting at offset, bounded by both an event
// count (max < 0 means unbounded; max == 0 returns no events) and a
// payload byte budget (maxBytes <= 0 means unbounded). The byte budget is soft on the first event only:
// at least one event is returned when any is available, and no event
// beyond the first may push the cumulative size to or past maxBytes —
// the semantics Fabric.Fetch and Log.ReadBytes share. Events stream out
// of the segment index directly; nothing beyond the returned slice is
// materialized.
func (l *Log) ReadBudget(offset int64, max, maxBytes int) ([]event.Event, error) {
	return l.ReadBudgetInto(offset, max, maxBytes, nil)
}

// ReadBudgetInto is ReadBudget appending into dst (reusing its
// capacity), so a steady-state consumer fetch allocates nothing once its
// receive slice has grown: the fetch session hands the same slice back
// on every poll. Returned events alias the log's records, as with
// ReadBudget. A nil dst behaves exactly like ReadBudget.
func (l *Log) ReadBudgetInto(offset int64, max, maxBytes int, dst []event.Event) ([]event.Event, error) {
	l.reads.Add(1)
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	if offset < l.start || offset > l.next {
		return nil, fmt.Errorf("%w: offset %d not in [%d,%d]", ErrOffsetOutOfRange, offset, l.start, l.next)
	}
	if offset == l.next || max == 0 {
		return dst, nil
	}
	if max < 0 {
		max = 1 << 30
	}
	out := dst
	if out == nil {
		hint := max
		if hint > 64 {
			hint = 64
		}
		out = make([]event.Event, 0, hint)
	}
	total := 0
	for si := l.findSegment(offset); si < len(l.segments); si++ {
		seg := l.segments[si]
		idx := 0
		if offset > seg.baseOffset {
			// Records within a segment may start above baseOffset after
			// compaction; binary-search the first record >= offset.
			idx = searchRecords(seg.records, offset)
		}
		for ; idx < len(seg.records); idx++ {
			r := &seg.records[idx]
			if maxBytes > 0 {
				if total+r.size >= maxBytes && len(out) > 0 {
					return out, nil
				}
				total += r.size
			}
			out = append(out, r.ev)
			if len(out) >= max || (maxBytes > 0 && total >= maxBytes) {
				return out, nil
			}
		}
	}
	return out, nil
}

// ReadBytes returns events starting at offset until maxBytes of payload
// have been accumulated (at least one event is returned if available).
func (l *Log) ReadBytes(offset int64, maxBytes int) ([]event.Event, error) {
	return l.ReadBudget(offset, -1, maxBytes)
}

// OffsetForTime returns the first offset whose record timestamp is at or
// after t — the "consume after a certain timestamp" interface of §IV-F.
// If every record is older than t, the end offset is returned. Append
// timestamps are non-decreasing, so the lookup is a two-level binary
// search: first across segments (by each segment's last record), then
// within the segment's records.
func (l *Log) OffsetForTime(t time.Time) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	// Find the first non-empty segment whose last record is at or after
	// t. Empty segments (a freshly rolled active segment, or a sealed
	// segment compaction emptied entirely) carry no ordering information
	// and would break the predicate's monotonicity, so the probe steps
	// past them and the found candidate is tracked explicitly.
	best := len(l.segments)
	lo, hi := 0, len(l.segments)
	for lo < hi {
		mid := (lo + hi) / 2
		j := mid
		for j < hi && len(l.segments[j].records) == 0 {
			j++
		}
		if j == hi {
			// [mid, hi) holds no records; the answer, if any, is earlier.
			hi = mid
			continue
		}
		rs := l.segments[j].records
		if rs[len(rs)-1].ev.Timestamp.Before(t) {
			lo = j + 1
		} else {
			// Segment j qualifies; keep looking for an earlier one in
			// [lo, mid) — everything in [mid, j) is empty.
			best = j
			hi = mid
		}
	}
	if best == len(l.segments) {
		return l.next
	}
	rs := l.segments[best].records
	rlo, rhi := 0, len(rs)
	for rlo < rhi {
		mid := (rlo + rhi) / 2
		if rs[mid].ev.Timestamp.Before(t) {
			rlo = mid + 1
		} else {
			rhi = mid
		}
	}
	return rs[rlo].offset
}

// StartOffset returns the earliest retained offset.
func (l *Log) StartOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.start
}

// EndOffset returns the offset one past the last appended record.
func (l *Log) EndOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.next
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, seg := range l.segments {
		n += len(seg.records)
	}
	return n
}

// Bytes returns the total retained payload bytes.
func (l *Log) Bytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// EnforceRetention drops sealed segments older than the retention window
// or in excess of RetentionBytes, advancing the start offset. It returns
// the number of records deleted.
func (l *Log) EnforceRetention(now time.Time) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	deleted := 0
	var dropped []*segment
	for len(l.segments) > 1 {
		seg := l.segments[0]
		expired := l.cfg.Retention > 0 && !seg.lastAppend.IsZero() && now.Sub(seg.lastAppend) > l.cfg.Retention
		overBytes := l.cfg.RetentionBytes > 0 && l.bytes > l.cfg.RetentionBytes
		if !expired && !overBytes {
			break
		}
		deleted += len(seg.records)
		l.bytes -= int64(seg.bytes)
		l.start = seg.nextOffset()
		dropped = append(dropped, seg)
		l.segments = l.segments[1:]
	}
	l.removeSegmentFiles(dropped)
	return deleted
}

// Compact removes superseded records (same key, older offset) from sealed
// segments, retaining only the most recent record per key, as configured
// via the topic "cleanup policy" of §IV-F. Records with nil keys are
// always retained. It returns the number of records removed.
func (l *Log) Compact() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cfg.Compact {
		return 0
	}
	latest := make(map[string]int64)
	for _, seg := range l.segments {
		for _, r := range seg.records {
			if r.ev.Key != nil {
				latest[string(r.ev.Key)] = r.offset
			}
		}
	}
	removed := 0
	for _, seg := range l.segments {
		if !seg.sealed {
			continue
		}
		before := len(seg.records)
		kept := seg.records[:0]
		for _, r := range seg.records {
			if r.ev.Key != nil && latest[string(r.ev.Key)] != r.offset {
				removed++
				l.bytes -= int64(r.size)
				seg.bytes -= r.size
				continue
			}
			kept = append(kept, r)
		}
		seg.records = kept
		if len(seg.records) != before {
			// Persist the hole-punched segment so replay does not
			// resurrect superseded records.
			l.rewriteSegmentLocked(seg)
		}
	}
	return removed
}

// Close marks the log closed; subsequent operations fail with ErrClosed,
// blocked tail waiters wake immediately, and every registered append
// callback fires one final time (callers re-check the log and observe
// ErrClosed).
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	if l.dir != "" {
		l.flushLocked()
		if l.activeFile != nil {
			l.activeFile.Close()
			l.activeFile = nil
		}
	}
	fired := l.notifyLocked()
	l.mu.Unlock()
	runNotifies(fired)
}

// searchRecords returns the index of the first record with offset >= off.
func searchRecords(rs []record, off int64) int {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].offset < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
