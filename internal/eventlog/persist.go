package eventlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
)

// On-disk layout (one directory per partition log):
//
//	<dir>/<baseOffset, 20 decimal digits>.seg
//
// Each segment file is a sequence of framed records:
//
//	u32 crc32(IEEE, over body) | u32 bodyLen | body
//	body = u64 offset | event.Marshal bytes (key, value, timestamp, headers)
//
// Records are appended with one write per batch and no fsync unless
// Config.Fsync is set. Replay reads files in base-offset order and stops
// at the first frame whose crc or length does not check out — a torn
// tail from a crash — truncating the file at the last good boundary and
// deleting any later segment files so the offset space stays contiguous.

const recordHeaderLen = 8 // u32 crc | u32 bodyLen

func segFileName(base int64) string {
	return fmt.Sprintf("%020d.seg", base)
}

func segFilePath(dir string, base int64) string {
	return filepath.Join(dir, segFileName(base))
}

// appendRecordFrame encodes one record frame into buf.
func appendRecordFrame(buf []byte, offset int64, ev *event.Event) []byte {
	hdrAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // crc + len placeholders
	bodyAt := len(buf)
	buf = binary.BigEndian.AppendUint64(buf, uint64(offset))
	buf = ev.AppendMarshal(buf)
	body := buf[bodyAt:]
	binary.BigEndian.PutUint32(buf[hdrAt:], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(buf[hdrAt+4:], uint32(len(body)))
	return buf
}

// decodeRecordFrame decodes one frame from b, returning the record and
// the number of bytes consumed. A short, oversized or corrupt frame
// returns ok=false: replay treats it as the torn tail of a crash.
func decodeRecordFrame(b []byte) (rec record, n int, ok bool) {
	if len(b) < recordHeaderLen {
		return record{}, 0, false
	}
	crc := binary.BigEndian.Uint32(b)
	bodyLen := int(binary.BigEndian.Uint32(b[4:]))
	if bodyLen < 8 || bodyLen > len(b)-recordHeaderLen {
		return record{}, 0, false
	}
	body := b[recordHeaderLen : recordHeaderLen+bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return record{}, 0, false
	}
	off := int64(binary.BigEndian.Uint64(body))
	ev, used, err := event.Unmarshal(body[8:])
	if err != nil || used != bodyLen-8 {
		return record{}, 0, false
	}
	ev.Offset = off
	return record{offset: off, size: ev.Size(), ev: ev}, recordHeaderLen + bodyLen, true
}

// Open creates a log from cfg. With cfg.Dir unset it is equivalent to
// New. With cfg.Dir set, existing segment files under the directory are
// replayed to rebuild the in-memory index (recovering the start/next
// offsets and every surviving record), a torn tail is truncated at the
// last intact frame, and subsequent appends persist to segment files.
func Open(cfg Config) (*Log, error) {
	cfg.fill()
	l := &Log{cfg: cfg}
	if cfg.Dir == "" {
		l.segments = []*segment{{}}
		return l, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: open %s: %w", cfg.Dir, err)
	}
	l.dir = cfg.Dir
	bases, err := listSegFiles(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		l.segments = []*segment{{}}
		return l, l.openActiveFile(0)
	}
	if err := l.replay(bases); err != nil {
		return nil, err
	}
	return l, nil
}

// listSegFiles returns the base offsets of every segment file in dir,
// sorted ascending.
func listSegFiles(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: read dir %s: %w", dir, err)
	}
	var bases []int64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseInt(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// replay rebuilds the in-memory segment index from the files named by
// bases. The last file becomes the active segment; earlier files are
// sealed with end = the next file's base offset. On a corrupt or torn
// frame the file is truncated at the last good boundary and every later
// file is deleted, so recovery always yields a contiguous offset space.
func (l *Log) replay(bases []int64) error {
	l.start = bases[0]
	l.next = bases[0]
	for i, base := range bases {
		path := segFilePath(l.dir, base)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("eventlog: replay %s: %w", path, err)
		}
		seg := &segment{baseOffset: base}
		good := 0
		corrupt := false
		for len(data[good:]) > 0 {
			rec, n, ok := decodeRecordFrame(data[good:])
			if !ok {
				corrupt = true
				break
			}
			seg.records = append(seg.records, rec)
			seg.bytes += rec.size
			if seg.created.IsZero() {
				seg.created = rec.ev.Timestamp
			}
			seg.lastAppend = rec.ev.Timestamp
			l.next = rec.offset + 1
			good += n
		}
		l.bytes += int64(seg.bytes)
		l.segments = append(l.segments, seg)
		if corrupt {
			if err := os.Truncate(path, int64(good)); err != nil {
				return fmt.Errorf("eventlog: truncate torn tail %s: %w", path, err)
			}
			for _, later := range bases[i+1:] {
				os.Remove(segFilePath(l.dir, later))
			}
			break
		}
	}
	// Seal everything but the last replayed segment; the last one
	// becomes the active segment and receives new appends.
	for i := 0; i < len(l.segments)-1; i++ {
		l.segments[i].sealed = true
		l.segments[i].end = l.segments[i+1].baseOffset
	}
	active := l.segments[len(l.segments)-1]
	if active.sealed {
		active.sealed = false
	}
	return l.openActiveFile(active.baseOffset)
}

// openActiveFile opens (creating if needed) the append handle for the
// active segment's file.
func (l *Log) openActiveFile(base int64) error {
	f, err := os.OpenFile(segFilePath(l.dir, base), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: open segment: %w", err)
	}
	l.activeFile = f
	return nil
}

// persistRollLocked flushes pending frames to the old active file,
// closes it and opens the file for the new segment. Callers hold l.mu.
func (l *Log) persistRollLocked(newBase int64) error {
	if l.dir == "" {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.activeFile != nil {
		l.activeFile.Close()
		l.activeFile = nil
	}
	return l.openActiveFile(newBase)
}

// flushLocked writes the pending encoded frames to the active segment
// file in one write. Callers hold l.mu.
func (l *Log) flushLocked() error {
	if l.dir == "" || len(l.wbuf) == 0 {
		return nil
	}
	if l.activeFile == nil {
		return fmt.Errorf("eventlog: no active segment file")
	}
	if _, err := l.activeFile.Write(l.wbuf); err != nil {
		return fmt.Errorf("eventlog: append segment: %w", err)
	}
	l.wbuf = l.wbuf[:0]
	if l.cfg.Fsync {
		if err := l.activeFile.Sync(); err != nil {
			return fmt.Errorf("eventlog: fsync segment: %w", err)
		}
	}
	return nil
}

// rewriteSegmentLocked re-encodes a segment's surviving records into its
// file via a temp file + rename, used by Compact and Truncate. Callers
// hold l.mu. If the rewritten segment is the active one, the append
// handle is reopened on the new file.
func (l *Log) rewriteSegmentLocked(seg *segment) error {
	if l.dir == "" {
		return nil
	}
	path := segFilePath(l.dir, seg.baseOffset)
	var buf []byte
	for i := range seg.records {
		r := &seg.records[i]
		buf = appendRecordFrame(buf, r.offset, &r.ev)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("eventlog: rewrite segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("eventlog: rewrite segment: %w", err)
	}
	if !seg.sealed {
		if l.activeFile != nil {
			l.activeFile.Close()
		}
		return l.openActiveFile(seg.baseOffset)
	}
	return nil
}

// removeSegmentFiles deletes the files backing dropped segments
// (best effort — a leftover file below the start offset is skipped by
// the next replay's contiguity rules only if deletion succeeded, so
// callers should treat persistent failures as disk trouble).
func (l *Log) removeSegmentFiles(segs []*segment) {
	if l.dir == "" {
		return
	}
	for _, seg := range segs {
		os.Remove(segFilePath(l.dir, seg.baseOffset))
	}
}

// Truncate discards every record at or above offset — the fencing step
// a follower takes when a new leader's log ends below its own. The log
// end moves back to max(offset, start); segment files above the cut are
// deleted, the cut segment is rewritten and sealed at the cut, and a
// fresh active segment starts at the new end. Truncating at or past the
// current end is a no-op.
func (l *Log) Truncate(offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if offset >= l.next {
		return nil
	}
	if offset < l.start {
		offset = l.start
	}
	// Drop whole segments above the cut, then trim the cut segment.
	cut := l.findSegment(offset)
	if cut >= len(l.segments) {
		cut = len(l.segments) - 1
	}
	dropped := l.segments[cut+1:]
	for _, seg := range dropped {
		for i := range seg.records {
			l.bytes -= int64(seg.records[i].size)
		}
	}
	l.removeSegmentFiles(dropped)
	l.segments = l.segments[:cut+1]
	seg := l.segments[cut]
	keep := searchRecords(seg.records, offset)
	for i := keep; i < len(seg.records); i++ {
		l.bytes -= int64(seg.records[i].size)
		seg.bytes -= seg.records[i].size
	}
	seg.records = seg.records[:keep]
	l.next = offset
	l.wbuf = l.wbuf[:0]
	if l.dir != "" && l.activeFile != nil {
		l.activeFile.Close()
		l.activeFile = nil
	}
	// The cut segment may carry compaction holes, which the active
	// segment must never have (reads derive its end from the record
	// count). Seal it at the cut and roll a fresh, empty active segment
	// at the new end — unless the cut emptied it and it shares the new
	// active's base offset, in which case it is simply replaced.
	if len(seg.records) == 0 && seg.baseOffset == offset {
		l.segments = l.segments[:cut]
	} else {
		seg.sealed = true
		seg.end = offset
		if err := l.rewriteSegmentLocked(seg); err != nil {
			return err
		}
	}
	l.segments = append(l.segments, &segment{baseOffset: offset})
	if l.dir != "" {
		// Rewriting the (empty) new active segment truncates any stale
		// file sharing its base offset and reopens the append handle.
		return l.rewriteSegmentLocked(l.segments[len(l.segments)-1])
	}
	return nil
}

// Dir returns the backing directory ("" for an in-memory log).
func (l *Log) Dir() string { return l.dir }

// Sync flushes pending frames and, when file-backed, fsyncs the active
// segment file regardless of Config.Fsync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dir == "" {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.activeFile != nil {
		if err := l.activeFile.Sync(); err != nil {
			return fmt.Errorf("eventlog: fsync segment: %w", err)
		}
	}
	return nil
}
