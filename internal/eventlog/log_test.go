package eventlog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func ev(val string) event.Event { return event.Event{Value: []byte(val)} }

func kev(key, val string) event.Event {
	return event.Event{Key: []byte(key), Value: []byte(val)}
}

func TestAppendAssignsDenseOffsets(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 100; i++ {
		off, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	if l.EndOffset() != 100 || l.StartOffset() != 0 {
		t.Fatalf("range [%d,%d), want [0,100)", l.StartOffset(), l.EndOffset())
	}
}

func TestReadReturnsInOrder(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 50; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Read(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Offset != int64(10+i) || string(e.Value) != fmt.Sprintf("e%d", 10+i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestReadAtEndReturnsEmpty(t *testing.T) {
	l := New(Config{})
	if _, err := l.Append(ev("x"), t0); err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events at end", len(got))
	}
}

func TestReadOutOfRange(t *testing.T) {
	l := New(Config{})
	if _, err := l.Read(5, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("err = %v, want ErrOffsetOutOfRange", err)
	}
	if _, err := l.Read(-1, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("err = %v, want ErrOffsetOutOfRange", err)
	}
}

func TestAppendBatchAtomicOffsets(t *testing.T) {
	l := New(Config{})
	batch := []event.Event{ev("a"), ev("b"), ev("c")}
	first, err := l.AppendBatch(batch, t0)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
	got, _ := l.Read(0, 10)
	if len(got) != 3 || string(got[2].Value) != "c" || got[2].Offset != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestSegmentRollingPreservesReads(t *testing.T) {
	l := New(Config{SegmentEvents: 10})
	for i := 0; i < 95; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Read(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 95 {
		t.Fatalf("len = %d, want 95", len(got))
	}
	for i, e := range got {
		if e.Offset != int64(i) {
			t.Fatalf("offset %d at index %d", e.Offset, i)
		}
	}
	// Read spanning a segment boundary.
	got, err = l.Read(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Offset != 8 || got[4].Offset != 12 {
		t.Fatalf("cross-segment read: %+v", got)
	}
}

func TestOffsetForTime(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if off := l.OffsetForTime(t0.Add(5 * time.Minute)); off != 5 {
		t.Fatalf("exact: %d, want 5", off)
	}
	if off := l.OffsetForTime(t0.Add(4*time.Minute + 30*time.Second)); off != 5 {
		t.Fatalf("between: %d, want 5", off)
	}
	if off := l.OffsetForTime(t0.Add(-time.Hour)); off != 0 {
		t.Fatalf("before all: %d, want 0", off)
	}
	if off := l.OffsetForTime(t0.Add(time.Hour)); off != 10 {
		t.Fatalf("after all: %d, want 10 (end)", off)
	}
}

func TestRetentionDropsOldSegments(t *testing.T) {
	l := New(Config{SegmentEvents: 10, Retention: time.Hour})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// At t0+3h, segment 0 (last append t0+9m) and segment 1 (t0+19m)
	// are expired; segment 2 ends at t0+29m which is also > 1h old, but
	// the active segment is never deleted.
	deleted := l.EnforceRetention(t0.Add(3 * time.Hour))
	if deleted != 20 {
		t.Fatalf("deleted = %d, want 20", deleted)
	}
	if l.StartOffset() != 20 {
		t.Fatalf("start = %d, want 20", l.StartOffset())
	}
	if _, err := l.Read(0, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("read before start: %v", err)
	}
	got, err := l.Read(20, 100)
	if err != nil || len(got) != 10 {
		t.Fatalf("read after retention: %v, %d events", err, len(got))
	}
}

func TestRetentionBytes(t *testing.T) {
	l := New(Config{SegmentEvents: 10, RetentionBytes: 150, Retention: 365 * 24 * time.Hour})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(ev("0123456789"), t0); err != nil { // 10 bytes each
			t.Fatal(err)
		}
	}
	l.EnforceRetention(t0)
	if l.Bytes() > 200 {
		t.Fatalf("bytes = %d after byte retention", l.Bytes())
	}
	if l.StartOffset() == 0 {
		t.Fatal("start offset did not advance")
	}
}

func TestCompactionKeepsLatestPerKey(t *testing.T) {
	l := New(Config{SegmentEvents: 4, Compact: true})
	keys := []string{"a", "b", "a", "c", "a", "b", "d", "a"}
	for i, k := range keys {
		if _, err := l.Append(kev(k, fmt.Sprintf("v%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	removed := l.Compact()
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	got, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	latest := map[string]string{}
	for _, e := range got {
		latest[string(e.Key)] = string(e.Value)
	}
	// The final value for each key must survive.
	if latest["a"] != "v7" || latest["b"] != "v5" || latest["c"] != "v3" || latest["d"] != "v6" {
		t.Fatalf("latest = %v", latest)
	}
	// Offsets remain strictly increasing after compaction.
	for i := 1; i < len(got); i++ {
		if got[i].Offset <= got[i-1].Offset {
			t.Fatalf("offsets not increasing: %d then %d", got[i-1].Offset, got[i].Offset)
		}
	}
}

func TestCompactDisabledIsNoop(t *testing.T) {
	l := New(Config{SegmentEvents: 2})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(kev("k", "v"), t0); err != nil {
			t.Fatal(err)
		}
	}
	if removed := l.Compact(); removed != 0 {
		t.Fatalf("removed = %d on non-compacted log", removed)
	}
}

func TestReadBytesBounded(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(ev("0123456789"), t0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReadBytes(0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // the 4th event would cross the 35-byte bound
		t.Fatalf("len = %d, want 3", len(got))
	}
	// At least one event is returned even if it exceeds the budget.
	got, err = l.ReadBytes(0, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("min one event: %v, %d", err, len(got))
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	l := New(Config{})
	l.Close()
	if _, err := l.Append(ev("x"), t0); !errors.Is(err, ErrClosed) {
		t.Fatalf("append: %v", err)
	}
	if _, err := l.Read(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("read: %v", err)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	l := New(Config{SegmentEvents: 64})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if _, err := l.Append(ev("payload"), t0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		end := l.EndOffset()
		if _, err := l.Read(0, int(end)); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			if l.EndOffset() != 2000 {
				t.Fatalf("end = %d", l.EndOffset())
			}
			return
		default:
		}
	}
}

// Property: for any sequence of appends, reading from any valid offset
// returns exactly the suffix of appended events.
func TestReadSuffixProperty(t *testing.T) {
	f := func(payloads [][]byte, start uint8) bool {
		if len(payloads) == 0 {
			return true
		}
		l := New(Config{SegmentEvents: 3})
		for _, p := range payloads {
			if _, err := l.Append(event.Event{Value: p}, t0); err != nil {
				return false
			}
		}
		from := int64(start) % int64(len(payloads))
		got, err := l.Read(from, len(payloads))
		if err != nil {
			return false
		}
		if len(got) != len(payloads)-int(from) {
			return false
		}
		for i, e := range got {
			if e.Offset != from+int64(i) {
				return false
			}
			if string(e.Value) != string(payloads[from+int64(i)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetForTimeAfterRetention(t *testing.T) {
	l := New(Config{SegmentEvents: 5, Retention: time.Minute})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	l.EnforceRetention(t0.Add(time.Hour))
	start := l.StartOffset()
	if start == 0 {
		t.Fatal("retention removed nothing")
	}
	// Seeking to a pre-retention time lands at the first retained record.
	if off := l.OffsetForTime(t0); off != start {
		t.Fatalf("OffsetForTime = %d, want start %d", off, start)
	}
}

func TestConcurrentRetentionAndRead(t *testing.T) {
	l := New(Config{SegmentEvents: 16, Retention: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = l.Append(ev("x"), t0.Add(time.Duration(i)*time.Millisecond))
			l.EnforceRetention(t0.Add(time.Duration(i+100) * time.Millisecond))
		}
	}()
	for i := 0; i < 500; i++ {
		start := l.StartOffset()
		if _, err := l.Read(start, 64); err != nil && !errors.Is(err, ErrOffsetOutOfRange) {
			t.Fatal(err) // racing retention may move start; other errors are bugs
		}
	}
	close(stop)
	wg.Wait()
}

func TestCompactionPreservesReadAfterRetention(t *testing.T) {
	l := New(Config{SegmentEvents: 4, Compact: true, Retention: 365 * 24 * time.Hour})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(kev(fmt.Sprintf("k%d", i%2), fmt.Sprintf("v%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	l.Compact()
	l.Compact() // idempotent second pass
	got, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, e := range got {
		vals[string(e.Key)] = string(e.Value)
	}
	if vals["k0"] != "v38" || vals["k1"] != "v39" {
		t.Fatalf("latest values = %v", vals)
	}
}

// --- tail waiters (PR 4) ---

// TestWaitAppendReturnsImmediatelyWhenDataAvailable: a wait below the
// end offset never blocks.
func TestWaitAppendReturnsImmediatelyWhenDataAvailable(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 3; i++ {
		l.Append(ev(fmt.Sprintf("e%d", i)), t0)
	}
	start := time.Now()
	end, err := l.WaitAppend(1, 5*time.Second, nil)
	if err != nil || end != 3 {
		t.Fatalf("WaitAppend = %d, %v", end, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitAppend blocked with data available")
	}
}

// TestWaitAppendWakesOnAppend: waiters parked at the tail wake when a
// record arrives, and every concurrent waiter observes it.
func TestWaitAppendWakesOnAppend(t *testing.T) {
	l := New(Config{})
	l.Append(ev("a"), t0)
	const waiters = 4
	var wg sync.WaitGroup
	results := make([]int64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			end, err := l.WaitAppend(1, 5*time.Second, nil)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = end
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	l.Append(ev("b"), t0)
	wg.Wait()
	for i, end := range results {
		if end != 2 {
			t.Fatalf("waiter %d woke with end %d, want 2", i, end)
		}
	}
}

// TestWaitAppendTimeout: a wait on a dry log returns at the deadline
// with the unchanged end offset and no error.
func TestWaitAppendTimeout(t *testing.T) {
	l := New(Config{})
	start := time.Now()
	end, err := l.WaitAppend(0, 50*time.Millisecond, nil)
	if err != nil || end != 0 {
		t.Fatalf("WaitAppend = %d, %v", end, err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("timeout fired after %v", d)
	}
}

// TestWaitAppendStopChannel: closing the stop channel releases the
// waiter before the timeout.
func TestWaitAppendStopChannel(t *testing.T) {
	l := New(Config{})
	stop := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(stop)
	}()
	start := time.Now()
	if _, err := l.WaitAppend(0, 10*time.Second, stop); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("stop channel did not release the waiter")
	}
}

// TestWaitAppendCloseFailsWaiters: Close wakes parked waiters with
// ErrClosed instead of leaving them blocked.
func TestWaitAppendCloseFailsWaiters(t *testing.T) {
	l := New(Config{})
	errCh := make(chan error, 1)
	go func() {
		_, err := l.WaitAppend(0, 10*time.Second, nil)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close left the waiter parked")
	}
}

// TestWaitAppendBatchWakes: AppendBatch notifies once per batch and the
// waiter sees the full batch.
func TestWaitAppendBatchWakes(t *testing.T) {
	l := New(Config{})
	done := make(chan int64, 1)
	go func() {
		end, _ := l.WaitAppend(0, 5*time.Second, nil)
		done <- end
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := l.AppendBatch([]event.Event{ev("a"), ev("b"), ev("c")}, t0); err != nil {
		t.Fatal(err)
	}
	select {
	case end := <-done:
		if end != 3 {
			t.Fatalf("woke with end %d, want 3", end)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch append did not wake the waiter")
	}
}

// TestReadsCounter: the read probe counts ReadBudgetInto calls across
// every read entry point.
func TestReadsCounter(t *testing.T) {
	l := New(Config{})
	l.Append(ev("a"), t0)
	if n := l.Reads(); n != 0 {
		t.Fatalf("fresh log reports %d reads", n)
	}
	if _, err := l.Read(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadBytes(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if n := l.Reads(); n != 2 {
		t.Fatalf("Reads = %d, want 2", n)
	}
}
