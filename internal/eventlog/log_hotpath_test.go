package eventlog

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/event"
)

// sizedEv returns an event with a payload of exactly n bytes.
func sizedEv(n int, tag string) event.Event {
	v := make([]byte, n)
	copy(v, tag)
	return event.Event{Value: v}
}

func TestAppendBatchSpansSegments(t *testing.T) {
	l := New(Config{SegmentEvents: 10})
	batch := make([]event.Event, 35) // spans 4 segments at 10 records each
	for i := range batch {
		batch[i] = ev(fmt.Sprintf("e%d", i))
	}
	base, err := l.AppendBatch(batch, t0)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("base = %d", base)
	}
	if got := len(l.segments); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	for i, seg := range l.segments {
		if seg.baseOffset != int64(i*10) {
			t.Fatalf("segment %d baseOffset = %d, want %d", i, seg.baseOffset, i*10)
		}
		sealed := i < 3
		if seg.sealed != sealed {
			t.Fatalf("segment %d sealed = %v, want %v", i, seg.sealed, sealed)
		}
	}
	// Reads that start exactly on, before, and after each roll boundary.
	for _, start := range []int64{0, 9, 10, 11, 19, 20, 29, 30, 34} {
		got, err := l.Read(start, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != int(35-start) {
			t.Fatalf("Read(%d) len = %d, want %d", start, len(got), 35-start)
		}
		for j, e := range got {
			if e.Offset != start+int64(j) || string(e.Value) != fmt.Sprintf("e%d", start+int64(j)) {
				t.Fatalf("Read(%d)[%d] = %+v", start, j, e)
			}
		}
	}
	// A second batch continues on the open segment without re-rolling.
	if _, err := l.AppendBatch(batch[:5], t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := len(l.segments); got != 4 {
		t.Fatalf("segments after second batch = %d, want 4", got)
	}
	if l.EndOffset() != 40 {
		t.Fatalf("end = %d, want 40", l.EndOffset())
	}
}

func TestReadAfterCompactGaps(t *testing.T) {
	l := New(Config{Compact: true, SegmentEvents: 8})
	// Keys cycle 0..3; after compaction only the final write per key in
	// sealed segments survives, leaving offset gaps inside segments.
	for i := 0; i < 32; i++ {
		if _, err := l.Append(kev(fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	removed := l.Compact()
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	// Every retained record must still be readable, in offset order, from
	// any starting offset — including offsets that now fall in gaps.
	for start := int64(0); start < 32; start++ {
		got, err := l.Read(start, 100)
		if err != nil {
			t.Fatalf("Read(%d): %v", start, err)
		}
		last := start - 1
		for _, e := range got {
			if e.Offset < start || e.Offset <= last {
				t.Fatalf("Read(%d) returned offset %d after %d", start, e.Offset, last)
			}
			last = e.Offset
		}
	}
	// The last occurrence of every key survives.
	got, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, e := range got {
		seen[string(e.Key)] = string(e.Value)
	}
	for k := 0; k < 4; k++ {
		want := fmt.Sprintf("v%d", 28+k)
		if seen[fmt.Sprintf("k%d", k)] != want {
			t.Fatalf("key k%d = %q, want %q", k, seen[fmt.Sprintf("k%d", k)], want)
		}
	}
}

func TestOffsetForTimeBinarySearch(t *testing.T) {
	l := New(Config{SegmentEvents: 7})
	for i := 0; i < 50; i++ {
		if _, err := l.Append(ev(fmt.Sprintf("e%d", i)), t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		t    time.Time
		want int64
	}{
		{t0.Add(-time.Hour), 0},
		{t0, 0},
		{t0.Add(1 * time.Minute), 1},
		{t0.Add(90 * time.Second), 2},  // between records: first at-or-after
		{t0.Add(13 * time.Minute), 13}, // near a 7-record segment boundary
		{t0.Add(14 * time.Minute), 14},
		{t0.Add(49 * time.Minute), 49},
		{t0.Add(time.Hour), 50}, // past the end: end offset
	}
	for _, c := range cases {
		if got := l.OffsetForTime(c.t); got != c.want {
			t.Fatalf("OffsetForTime(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestOffsetForTimeWithCompactedGaps(t *testing.T) {
	l := New(Config{Compact: true, SegmentEvents: 6})
	// 24 records over 4 keys, one per second. Compaction leaves sparse,
	// still time-ordered records; the seek must land on retained offsets.
	for i := 0; i < 24; i++ {
		if _, err := l.Append(kev(fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Compact() == 0 {
		t.Fatal("compaction removed nothing")
	}
	retained, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// For a spread of probe times, the answer must equal the first
	// retained record with Timestamp >= t (the linear-scan definition).
	for s := -2; s < 28; s++ {
		probe := t0.Add(time.Duration(s) * time.Second)
		want := l.EndOffset()
		for _, e := range retained {
			if !e.Timestamp.Before(probe) {
				want = e.Offset
				break
			}
		}
		if got := l.OffsetForTime(probe); got != want {
			t.Fatalf("OffsetForTime(t0+%ds) = %d, want %d", s, got, want)
		}
	}
}

func TestOffsetForTimeWithEmptiedMiddleSegment(t *testing.T) {
	// Compaction can empty a sealed segment entirely; the segment-level
	// binary search must not treat it as "before t" (which once made the
	// seek skip every earlier segment).
	l := New(Config{Compact: true, SegmentEvents: 2})
	ts := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }
	for i, k := range []string{"a", "b", "c", "d", "c", "d"} {
		if _, err := l.Append(kev(k, fmt.Sprintf("v%d", i)), ts(i)); err != nil {
			t.Fatal(err)
		}
	}
	// seg0: a,b (kept); seg1: c,d (both superseded -> emptied); seg2: c,d.
	if l.Compact() != 2 {
		t.Fatal("expected compaction to empty the middle segment")
	}
	if len(l.segments[1].records) != 0 {
		t.Fatalf("middle segment still holds %d records", len(l.segments[1].records))
	}
	for i := 0; i < 6; i++ {
		want := l.EndOffset()
		for _, e := range mustRead(t, l, 0, 100) {
			if !e.Timestamp.Before(ts(i)) {
				want = e.Offset
				break
			}
		}
		if got := l.OffsetForTime(ts(i)); got != want {
			t.Fatalf("OffsetForTime(t0+%ds) = %d, want %d", i, got, want)
		}
	}
}

func TestReadMidSegmentAfterHeavyCompaction(t *testing.T) {
	// A sealed segment keeps its offset range when compaction removes
	// most of its records: a reader resuming from a mid-segment offset
	// must still see the survivors at the segment's tail.
	l := New(Config{Compact: true, SegmentEvents: 100})
	for i := 0; i < 100; i++ {
		if _, err := l.Append(kev("k", fmt.Sprintf("v%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 105; i++ {
		if _, err := l.Append(kev("k2", fmt.Sprintf("v%d", i)), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Compact() != 99 {
		t.Fatal("expected 99 superseded records removed from the sealed segment")
	}
	got := mustRead(t, l, 50, 10)
	if len(got) == 0 || got[0].Offset != 99 {
		t.Fatalf("Read(50) = %+v, want to start at surviving offset 99", got)
	}
}

func mustRead(t *testing.T, l *Log, off int64, max int) []event.Event {
	t.Helper()
	got, err := l.Read(off, max)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReadBytesBudgetSemantics(t *testing.T) {
	l := New(Config{})
	sizes := []int{100, 200, 50, 400, 25}
	for i, n := range sizes {
		if _, err := l.Append(sizedEv(n, fmt.Sprintf("e%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		budget int
		want   int
	}{
		{1, 1},   // smaller than the first event: first is still returned
		{100, 1}, // exactly the first event: stop at the budget
		{101, 1}, // second event would reach 300 >= 101
		{300, 1}, // 100+200 == 300 >= 300: second excluded
		{301, 2}, // 100+200 < 301
		{351, 3}, // +50 = 350 < 351
		{10_000, 5},
	}
	for _, c := range cases {
		got, err := l.ReadBytes(0, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != c.want {
			t.Fatalf("ReadBytes(budget=%d) len = %d, want %d", c.budget, len(got), c.want)
		}
		if len(got) > 1 {
			total := 0
			for _, e := range got {
				total += e.Size()
			}
			if total >= c.budget {
				t.Fatalf("ReadBytes(budget=%d) returned %d bytes over budget beyond the first event", c.budget, total)
			}
		}
	}
	// The event-count bound composes with the byte budget.
	got, err := l.ReadBudget(0, 2, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ReadBudget(max=2) len = %d", len(got))
	}
}

func TestReadBudgetStartsMidLog(t *testing.T) {
	l := New(Config{SegmentEvents: 4})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(sizedEv(100, fmt.Sprintf("e%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReadBudget(13, 100, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Offset != 13 || got[1].Offset != 14 {
		t.Fatalf("ReadBudget(13) = %+v", got)
	}
}
