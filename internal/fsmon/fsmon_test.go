package fsmon

import (
	"testing"
	"time"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestBurstShape(t *testing.T) {
	g := NewGenerator(GeneratorConfig{FilesPerBurst: 10, ModifiesPerFile: 4, DeleteFraction: 0.5})
	burst := g.Burst(t0)
	if len(burst) != g.EventsPerBurst() {
		t.Fatalf("burst = %d events, EventsPerBurst = %d", len(burst), g.EventsPerBurst())
	}
	counts := map[OpType]int{}
	for _, ev := range burst {
		counts[ev.Type]++
	}
	if counts[OpCreate] != 10 {
		t.Fatalf("creates = %d", counts[OpCreate])
	}
	if counts[OpModify] != 40 {
		t.Fatalf("modifies = %d", counts[OpModify])
	}
	if counts[OpDelete] != 5 {
		t.Fatalf("deletes = %d", counts[OpDelete])
	}
}

func TestBurstsAreDeterministic(t *testing.T) {
	g1 := NewGenerator(GeneratorConfig{Seed: 42})
	g2 := NewGenerator(GeneratorConfig{Seed: 42})
	b1, b2 := g1.Burst(t0), g2.Burst(t0)
	if len(b1) != len(b2) {
		t.Fatal("lengths differ")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, b1[i], b2[i])
		}
	}
}

func TestBurstPathsAreUniquePerBurst(t *testing.T) {
	g := NewGenerator(GeneratorConfig{})
	seen := map[string]bool{}
	for b := 0; b < 3; b++ {
		for _, ev := range g.Burst(t0) {
			if ev.Type == OpCreate {
				if seen[ev.Path] {
					t.Fatalf("duplicate created path %s", ev.Path)
				}
				seen[ev.Path] = true
			}
		}
	}
}

func TestDocMatchesListing1Shape(t *testing.T) {
	ev := FSEvent{Type: OpCreate, Path: "/fs1/x", FS: "fs1"}
	doc := ev.Doc()
	val, ok := doc["value"].(map[string]any)
	if !ok {
		t.Fatalf("doc = %v", doc)
	}
	if val["event_type"] != "created" || val["path"] != "/fs1/x" {
		t.Fatalf("value = %v", val)
	}
}

func TestAggregatorDeduplicatesModifyStorms(t *testing.T) {
	a := NewAggregator(time.Minute)
	var evs []FSEvent
	// One file modified 10 times within the window.
	for i := 0; i < 10; i++ {
		evs = append(evs, FSEvent{Type: OpModify, Path: "/f", Time: t0.Add(time.Duration(i) * time.Second)})
	}
	out := a.Filter(evs)
	if len(out) != 1 {
		t.Fatalf("forwarded %d of 10 duplicate modifies", len(out))
	}
	// After the window, the next modify forwards again.
	out = a.Filter([]FSEvent{{Type: OpModify, Path: "/f", Time: t0.Add(2 * time.Minute)}})
	if len(out) != 1 {
		t.Fatalf("post-window modify suppressed")
	}
}

func TestAggregatorAlwaysForwardsCreatesAndDeletes(t *testing.T) {
	a := NewAggregator(time.Minute)
	evs := []FSEvent{
		{Type: OpCreate, Path: "/f", Time: t0},
		{Type: OpCreate, Path: "/f", Time: t0},
		{Type: OpDelete, Path: "/f", Time: t0},
	}
	out := a.Filter(evs)
	if len(out) != 3 {
		t.Fatalf("forwarded %d of 3", len(out))
	}
}

func TestAggregatorTypeFilter(t *testing.T) {
	a := NewAggregator(time.Minute)
	a.ForwardTypes = map[OpType]bool{OpCreate: true} // creates only
	out := a.Filter([]FSEvent{
		{Type: OpCreate, Path: "/a", Time: t0},
		{Type: OpModify, Path: "/a", Time: t0},
		{Type: OpDelete, Path: "/a", Time: t0},
	})
	if len(out) != 1 || out[0].Type != OpCreate {
		t.Fatalf("out = %v", out)
	}
}

func TestReductionFactor(t *testing.T) {
	g := NewGenerator(GeneratorConfig{FilesPerBurst: 8, ModifiesPerFile: 20})
	a := NewAggregator(time.Hour)
	for b := 0; b < 5; b++ {
		a.Filter(g.Burst(t0.Add(time.Duration(b) * time.Second)))
	}
	// 20 modifies per file collapse to 1: expect substantial reduction.
	if rf := a.ReductionFactor(); rf < 5 {
		t.Fatalf("reduction = %.1f, want >= 5", rf)
	}
	if a.In <= a.Out {
		t.Fatal("aggregation did not reduce volume")
	}
}

func TestReductionFactorEmpty(t *testing.T) {
	a := NewAggregator(time.Minute)
	if a.ReductionFactor() != 0 {
		t.Fatal("empty aggregator should report 0")
	}
}
