// Package fsmon implements the Scientific Data Automation substrate of
// §VI-B: a parallel-filesystem event source (the FSMonitor of the
// paper's prior work [31]) and the hierarchical aggregator that filters
// "important and unique" events from a local topic up to the global
// Octopus fabric, as depicted in Figure 6 (left).
//
// Real Lustre/GPFS watchers are not available here; Generator produces a
// statistically similar synthetic stream — bursts of create/modify/
// delete operations with heavy modify-duplication, which is what makes
// hierarchical aggregation worthwhile (§VII-B: aggregation reduces
// trigger invocations "by orders of magnitude").
package fsmon

import (
	"fmt"
	"time"
)

// OpType is a filesystem operation kind.
type OpType string

// Filesystem operations.
const (
	OpCreate OpType = "created"
	OpModify OpType = "modified"
	OpDelete OpType = "deleted"
)

// FSEvent is one filesystem event observed by the monitor.
type FSEvent struct {
	Type OpType    `json:"event_type"`
	Path string    `json:"path"`
	Size int64     `json:"size"`
	FS   string    `json:"fs"`
	Time time.Time `json:"time"`
}

// Doc renders the event in the nested JSON shape the paper's
// EventBridge pattern (Listing 1) matches against:
// {"value": {"event_type": ...}}.
func (e FSEvent) Doc() map[string]any {
	return map[string]any{
		"value": map[string]any{
			"event_type": string(e.Type),
			"path":       e.Path,
			"size":       e.Size,
			"fs":         e.FS,
		},
	}
}

// GeneratorConfig shapes the synthetic FS workload.
type GeneratorConfig struct {
	// FS names the filesystem ("fs1").
	FS string
	// FilesPerBurst is how many distinct files a burst touches.
	FilesPerBurst int
	// ModifiesPerFile is how many modify events follow each create
	// (parallel writers flush repeatedly — the duplication the
	// aggregator removes).
	ModifiesPerFile int
	// DeleteFraction is the fraction of burst files that are temporary
	// and deleted at burst end.
	DeleteFraction float64
	// Seed makes the stream reproducible.
	Seed uint64
}

func (c *GeneratorConfig) fill() {
	if c.FS == "" {
		c.FS = "fs1"
	}
	if c.FilesPerBurst <= 0 {
		c.FilesPerBurst = 16
	}
	if c.ModifiesPerFile <= 0 {
		c.ModifiesPerFile = 8
	}
	if c.DeleteFraction < 0 || c.DeleteFraction > 1 {
		c.DeleteFraction = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
}

// Generator produces deterministic synthetic bursts of FS events.
type Generator struct {
	cfg   GeneratorConfig
	rng   uint64
	burst int
}

// NewGenerator creates a generator.
func NewGenerator(cfg GeneratorConfig) *Generator {
	cfg.fill()
	return &Generator{cfg: cfg, rng: cfg.Seed}
}

func (g *Generator) rand() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 11
}

// Burst returns the events of the next burst, stamped at now. The shape
// per file is: 1 create, ModifiesPerFile modifies, and (for the delete
// fraction) 1 delete — so creates are a small minority of raw events.
func (g *Generator) Burst(now time.Time) []FSEvent {
	g.burst++
	var out []FSEvent
	deletes := int(float64(g.cfg.FilesPerBurst) * g.cfg.DeleteFraction)
	for i := 0; i < g.cfg.FilesPerBurst; i++ {
		path := fmt.Sprintf("/%s/run%04d/file%03d.h5", g.cfg.FS, g.burst, i)
		size := int64(1<<20) + int64(g.rand()%uint64(64<<20))
		out = append(out, FSEvent{Type: OpCreate, Path: path, Size: 0, FS: g.cfg.FS, Time: now})
		for m := 0; m < g.cfg.ModifiesPerFile; m++ {
			out = append(out, FSEvent{Type: OpModify, Path: path, Size: size * int64(m+1) / int64(g.cfg.ModifiesPerFile), FS: g.cfg.FS, Time: now})
		}
		if i < deletes {
			out = append(out, FSEvent{Type: OpDelete, Path: path, Size: 0, FS: g.cfg.FS, Time: now})
		}
	}
	return out
}

// EventsPerBurst returns the raw event count of one burst.
func (g *Generator) EventsPerBurst() int {
	n := g.cfg.FilesPerBurst * (1 + g.cfg.ModifiesPerFile)
	n += int(float64(g.cfg.FilesPerBurst) * g.cfg.DeleteFraction)
	return n
}

// Aggregator is the site-local reduction stage: it deduplicates modify
// storms and forwards only unique, important events ("a local aggregator
// selects important and unique events for publication to Octopus").
type Aggregator struct {
	// Window is the dedupe horizon: repeated modifies of one path within
	// the window collapse to one event.
	Window time.Duration
	// ForwardTypes are the operation types worth global publication.
	ForwardTypes map[OpType]bool

	lastSeen map[string]time.Time

	// In and Out count raw and forwarded events.
	In, Out int64
}

// NewAggregator creates an aggregator forwarding creates and deletes
// always, and modifies deduplicated within the window.
func NewAggregator(window time.Duration) *Aggregator {
	if window <= 0 {
		window = 10 * time.Second
	}
	return &Aggregator{
		Window:       window,
		ForwardTypes: map[OpType]bool{OpCreate: true, OpModify: true, OpDelete: true},
		lastSeen:     make(map[string]time.Time),
	}
}

// Filter returns the subset of events that should be forwarded to the
// global fabric.
func (a *Aggregator) Filter(evs []FSEvent) []FSEvent {
	var out []FSEvent
	for _, ev := range evs {
		a.In++
		if !a.ForwardTypes[ev.Type] {
			continue
		}
		if ev.Type == OpModify {
			key := string(ev.Type) + ":" + ev.Path
			if last, ok := a.lastSeen[key]; ok && ev.Time.Sub(last) < a.Window {
				continue
			}
			a.lastSeen[key] = ev.Time
		}
		a.Out++
		out = append(out, ev)
	}
	return out
}

// ReductionFactor reports raw/forwarded, the headline benefit of
// hierarchical aggregation.
func (a *Aggregator) ReductionFactor() float64 {
	if a.Out == 0 {
		return 0
	}
	return float64(a.In) / float64(a.Out)
}
