package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/vclock"
)

var origin = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func newFixture(t *testing.T) (*broker.Fabric, client.Transport) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	return f, client.NewDirect(f)
}

// fakeClock records sleeps without real delay.
type fakeClock struct {
	vclock.Real
	slept []time.Duration
}

func (c *fakeClock) Sleep(d time.Duration) { c.slept = append(c.slept, d) }

func (c *fakeClock) total() time.Duration {
	var t time.Duration
	for _, d := range c.slept {
		t += d
	}
	return t
}

func TestProfiles(t *testing.T) {
	l, r := Local(), Remote()
	if l.RTT >= r.RTT {
		t.Fatal("local RTT should be far below remote")
	}
	// Remote matches the paper: 46-47 ms, <0.1% deviation.
	if r.RTT < 46*time.Millisecond || r.RTT > 47*time.Millisecond {
		t.Fatalf("remote RTT = %v", r.RTT)
	}
	if r.Jitter > 0.001 {
		t.Fatalf("remote jitter = %v", r.Jitter)
	}
}

func TestAcksDelayStructure(t *testing.T) {
	_, inner := newFixture(t)
	clk := &fakeClock{}
	tr := New(inner, Remote(), clk)
	ev := []event.Event{{Value: []byte("x")}}

	// acks=0: half RTT (one-way).
	clk.slept = nil
	if _, err := tr.Produce("", "t", 0, ev, broker.AcksNone); err != nil {
		t.Fatal(err)
	}
	if d := clk.total(); d < 20*time.Millisecond || d > 26*time.Millisecond {
		t.Fatalf("acks=0 delay = %v, want ~RTT/2", d)
	}

	// acks=1: full RTT.
	clk.slept = nil
	if _, err := tr.Produce("", "t", 0, ev, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	if d := clk.total(); d < 44*time.Millisecond || d > 49*time.Millisecond {
		t.Fatalf("acks=1 delay = %v, want ~RTT", d)
	}

	// acks=all: RTT + replication RTT.
	clk.slept = nil
	if _, err := tr.Produce("", "t", 0, ev, broker.AcksAll); err != nil {
		t.Fatal(err)
	}
	if d := clk.total(); d <= 46*time.Millisecond {
		t.Fatalf("acks=all delay = %v, want > RTT", d)
	}
}

func TestFetchPaysRTT(t *testing.T) {
	_, inner := newFixture(t)
	clk := &fakeClock{}
	tr := New(inner, Remote(), clk)
	if _, err := tr.Fetch("", "t", 0, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	if d := clk.total(); d < 44*time.Millisecond {
		t.Fatalf("fetch delay = %v", d)
	}
}

func TestJitterBounded(t *testing.T) {
	_, inner := newFixture(t)
	clk := &fakeClock{}
	tr := New(inner, Remote(), clk)
	for i := 0; i < 200; i++ {
		if _, err := tr.EndOffset("t", 0); err != nil {
			t.Fatal(err)
		}
	}
	rtt := float64(Remote().RTT)
	for _, d := range clk.slept {
		dev := (float64(d) - rtt) / rtt
		if dev < -0.0011 || dev > 0.0011 {
			t.Fatalf("jitter %.5f exceeds 0.1%%", dev)
		}
	}
}

func TestLocalProfileIsFast(t *testing.T) {
	_, inner := newFixture(t)
	clk := &fakeClock{}
	tr := New(inner, Local(), clk)
	if _, err := tr.EndOffset("t", 0); err != nil {
		t.Fatal(err)
	}
	if d := clk.total(); d > time.Millisecond {
		t.Fatalf("local delay = %v", d)
	}
}

func TestTransportIsFunctionallyTransparent(t *testing.T) {
	_, inner := newFixture(t)
	tr := New(inner, Local(), vclock.Real{})
	if _, err := tr.Produce("", "t", 0, []event.Event{{Value: []byte("a")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fetch("", "t", 0, 0, 10, 0)
	if err != nil || len(res.Events) != 1 || string(res.Events[0].Value) != "a" {
		t.Fatalf("fetch through netsim: %+v, %v", res, err)
	}
	asn, err := tr.JoinGroup("g", "m", []string{"t"})
	if err != nil || len(asn.Partitions) != 1 {
		t.Fatalf("join: %+v, %v", asn, err)
	}
	if err := tr.Commit("g", "m", asn.Generation, "t", 0, 1); err != nil {
		t.Fatal(err)
	}
	if off := tr.Committed("g", "t", 0); off != 1 {
		t.Fatalf("committed = %d", off)
	}
	if gen, err := tr.Heartbeat("g", "m"); err != nil || gen != asn.Generation {
		t.Fatalf("heartbeat: %d, %v", gen, err)
	}
	tr.LeaveGroup("g", "m")
	meta, err := tr.TopicMeta("t")
	if err != nil || meta.Name != "t" {
		t.Fatalf("meta: %v", err)
	}
	if _, err := tr.StartOffset("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.OffsetForTime("t", 0, origin); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFailsThenHeals(t *testing.T) {
	_, inner := newFixture(t)
	tr := New(inner, Local(), vclock.Real{})
	tr.SetPartitioned(true)
	if !tr.Partitioned() {
		t.Fatal("partition flag lost")
	}
	if _, err := tr.Produce("", "t", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("produce during partition: %v", err)
	}
	if _, err := tr.Fetch("", "t", 0, 0, 1, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("fetch during partition: %v", err)
	}
	tr.SetPartitioned(false)
	if _, err := tr.Produce("", "t", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader); err != nil {
		t.Fatalf("produce after heal: %v", err)
	}
}

// TestProducerBuffersThroughPartition shows the §VII-B mitigation: the
// SDK producer's buffer caches events during a partition and delivers
// them once it heals, with no loss.
func TestProducerBuffersThroughPartition(t *testing.T) {
	_, inner := newFixture(t)
	tr := New(inner, Local(), vclock.Real{})
	p := client.NewProducer(tr, "t", client.ProducerConfig{
		Retries:      50,
		RetryBackoff: time.Millisecond,
		Linger:       time.Hour, // flush manually
	})
	defer p.Close()
	tr.SetPartitioned(true)
	for i := 0; i < 10; i++ {
		if err := p.Send(event.Event{Value: []byte("queued")}); err != nil {
			t.Fatal(err)
		}
	}
	// Heal the partition while the flush retries.
	go func() {
		time.Sleep(10 * time.Millisecond)
		tr.SetPartitioned(false)
	}()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush through partition: %v", err)
	}
	end, err := inner.EndOffset("t", 0)
	if err != nil || end != 10 {
		t.Fatalf("delivered %d of 10 after heal, %v", end, err)
	}
}
