// Package netsim simulates the network between clients and the
// cloud-hosted fabric. The paper's evaluation splits clients into
// "local" (EC2 instances in the same region as the MSK cluster) and
// "remote" (Chameleon Cloud at TACC, 46–47 ms median RTT with <0.1 %
// deviation, §V-A). netsim wraps a client.Transport and injects the
// corresponding round-trip delay — and, for acks=all produces, the extra
// intra-cluster replication wait — so that experiments reproduce the
// local/remote latency split without a WAN.
package netsim

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/vclock"
)

// ErrPartitioned reports an operation attempted while the transport is
// network-partitioned from the fabric (§VII-B: "Network partitions
// between Octopus' cloud service and producers/consumers may render
// the system unusable"). It implements Temporary() so the SDK treats it
// as retryable: producer buffers act as the caching the paper
// prescribes — events queue client-side and deliver once the partition
// heals.
var ErrPartitioned error = partitionError{}

type partitionError struct{}

func (partitionError) Error() string   { return "netsim: network partitioned" }
func (partitionError) Temporary() bool { return true }

// Profile describes a client's network position.
type Profile struct {
	// Name labels the profile ("local", "remote").
	Name string
	// RTT is the median round-trip time to the fabric.
	RTT time.Duration
	// Jitter is the relative deviation of the RTT (0.001 = 0.1 %).
	Jitter float64
}

// Local approximates a same-region EC2 client (~0.5 ms RTT).
func Local() Profile { return Profile{Name: "local", RTT: 500 * time.Microsecond, Jitter: 0.05} }

// Remote approximates the Chameleon@TACC clients of §V-A: 46–47 ms
// median RTT, <0.1 % deviation.
func Remote() Profile { return Profile{Name: "remote", RTT: 46500 * time.Microsecond, Jitter: 0.001} }

// Transport wraps an inner transport, delaying each round trip by the
// profile's RTT. acks=all produces pay an extra intra-cluster
// replication round trip per §V-C's acknowledgment experiments.
type Transport struct {
	Inner   client.Transport
	Profile Profile
	// Clock supplies Sleep; a Virtual clock lets simulations compress
	// the delays.
	Clock vclock.Clock
	// ReplicaRTT is the intra-cluster RTT paid per required follower ack
	// (default 1 ms, AZ-to-AZ).
	ReplicaRTT time.Duration

	partitioned atomic.Bool

	mu  sync.Mutex
	rng uint64
}

// SetPartitioned toggles a WAN partition: while set, every operation
// fails with ErrPartitioned after the one-way send delay.
func (t *Transport) SetPartitioned(p bool) { t.partitioned.Store(p) }

// Partitioned reports the current partition state.
func (t *Transport) Partitioned() bool { return t.partitioned.Load() }

// checkPartition pays the send delay then fails if partitioned.
func (t *Transport) checkPartition() error {
	if t.partitioned.Load() {
		t.delay(t.Profile.RTT / 2) // the packet leaves, nothing returns
		return ErrPartitioned
	}
	return nil
}

// New creates a latency-injecting transport.
func New(inner client.Transport, p Profile, clock vclock.Clock) *Transport {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Transport{Inner: inner, Profile: p, Clock: clock, ReplicaRTT: time.Millisecond, rng: 0x853C49E6748FEA9B}
}

// delay sleeps one RTT with jitter.
func (t *Transport) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	t.rng = t.rng*6364136223846793005 + 1442695040888963407
	u := float64(t.rng>>11) / float64(1<<53) // uniform [0,1)
	t.mu.Unlock()
	jit := 1 + t.Profile.Jitter*(2*u-1)
	t.Clock.Sleep(time.Duration(math.Max(0, float64(d)*jit)))
}

// Produce implements client.Transport. acks=0 pays only the one-way
// send (the producer does not wait for a response); acks=1 pays a full
// RTT; acks=all additionally pays the replication wait.
func (t *Transport) Produce(identity, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	if err := t.checkPartition(); err != nil {
		return 0, err
	}
	switch acks {
	case broker.AcksNone:
		t.delay(t.Profile.RTT / 2)
	case broker.AcksLeader:
		t.delay(t.Profile.RTT)
	case broker.AcksAll:
		t.delay(t.Profile.RTT)
		t.delay(t.ReplicaRTT)
	}
	return t.Inner.Produce(identity, topic, partition, evs, acks)
}

// Fetch implements client.Transport.
func (t *Transport) Fetch(identity, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error) {
	if err := t.checkPartition(); err != nil {
		return broker.FetchResult{}, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.Fetch(identity, topic, partition, offset, maxEvents, maxBytes)
}

// EndOffset implements client.Transport.
func (t *Transport) EndOffset(topic string, partition int) (int64, error) {
	if err := t.checkPartition(); err != nil {
		return 0, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.EndOffset(topic, partition)
}

// StartOffset implements client.Transport.
func (t *Transport) StartOffset(topic string, partition int) (int64, error) {
	if err := t.checkPartition(); err != nil {
		return 0, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.StartOffset(topic, partition)
}

// OffsetForTime implements client.Transport.
func (t *Transport) OffsetForTime(topic string, partition int, at time.Time) (int64, error) {
	if err := t.checkPartition(); err != nil {
		return 0, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.OffsetForTime(topic, partition, at)
}

// TopicMeta implements client.Transport.
func (t *Transport) TopicMeta(topic string) (*cluster.TopicMeta, error) {
	if err := t.checkPartition(); err != nil {
		return nil, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.TopicMeta(topic)
}

// JoinGroup implements client.Transport.
func (t *Transport) JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error) {
	if err := t.checkPartition(); err != nil {
		return broker.Assignment{}, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.JoinGroup(groupID, memberID, topics)
}

// LeaveGroup implements client.Transport.
func (t *Transport) LeaveGroup(groupID, memberID string) {
	t.delay(t.Profile.RTT)
	t.Inner.LeaveGroup(groupID, memberID)
}

// Heartbeat implements client.Transport.
func (t *Transport) Heartbeat(groupID, memberID string) (int, error) {
	if err := t.checkPartition(); err != nil {
		return 0, err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.Heartbeat(groupID, memberID)
}

// Commit implements client.Transport.
func (t *Transport) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	if err := t.checkPartition(); err != nil {
		return err
	}
	t.delay(t.Profile.RTT)
	return t.Inner.Commit(groupID, memberID, generation, topic, partition, offset)
}

// Committed implements client.Transport.
func (t *Transport) Committed(groupID, topic string, partition int) int64 {
	t.delay(t.Profile.RTT)
	return t.Inner.Committed(groupID, topic, partition)
}
