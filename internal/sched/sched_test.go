package sched

import (
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/telemetry"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func fixture(t *testing.T, policy Policy) (*broker.Fabric, *telemetry.Fleet, *client.Producer, *Scheduler) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("telemetry", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	tr := client.NewDirect(f)
	fleet := telemetry.NewFleet(3)
	p := client.NewProducer(tr, "telemetry", client.ProducerConfig{Linger: time.Millisecond})
	t.Cleanup(func() { _ = p.Close() })
	s, err := New(tr, "telemetry", policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	for _, smp := range fleet.Samplers {
		s.RegisterResource(smp.Spec.Name, smp.Spec.Cores)
	}
	return f, fleet, p, s
}

func ingestAll(t *testing.T, s *Scheduler, want int) {
	t.Helper()
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < want && time.Now().Before(deadline) {
		n, err := s.Ingest()
		if err != nil {
			t.Fatal(err)
		}
		got += n
		if n == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if got < want {
		t.Fatalf("ingested %d of %d", got, want)
	}
}

func TestIngestBuildsViews(t *testing.T) {
	_, fleet, p, s := fixture(t, PolicyEnergyAware)
	fleet.Samplers[0].SetRunning(10)
	if err := PublishSamples(p, fleet, t0); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, 3)
	v, ok := s.View(fleet.Samplers[0].Spec.Name)
	if !ok {
		t.Fatal("no view")
	}
	if v.Running != 10 || v.PowerWatts <= 0 {
		t.Fatalf("view = %+v", v)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	_, fleet, p, s := fixture(t, PolicyRoundRobin)
	if err := PublishSamples(p, fleet, t0); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, 3)
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		r, err := s.Place()
		if err != nil {
			t.Fatal(err)
		}
		seen[r]++
	}
	for name, n := range seen {
		if n != 3 {
			t.Fatalf("round robin uneven: %s got %d", name, n)
		}
	}
}

func TestLeastLoadedPrefersIdle(t *testing.T) {
	_, fleet, p, s := fixture(t, PolicyLeastLoaded)
	fleet.Samplers[0].SetRunning(fleet.Samplers[0].Spec.Cores) // saturated
	fleet.Samplers[1].SetRunning(0)                            // idle
	fleet.Samplers[2].SetRunning(fleet.Samplers[2].Spec.Cores / 2)
	if err := PublishSamples(p, fleet, t0); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, 3)
	r, err := s.Place()
	if err != nil {
		t.Fatal(err)
	}
	if r != fleet.Samplers[1].Spec.Name {
		t.Fatalf("placed on %s, want idle resource", r)
	}
}

func TestEnergyAwareAvoidsPowerHungryNodes(t *testing.T) {
	_, fleet, p, s := fixture(t, PolicyEnergyAware)
	// Feed several rounds of telemetry at varying load so the scheduler
	// can regress each resource's power envelope.
	for round := 0; round < 5; round++ {
		for _, smp := range fleet.Samplers {
			smp.SetRunning(round * smp.Spec.Cores / 5)
		}
		if err := PublishSamples(p, fleet, t0.Add(time.Duration(round)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	for _, smp := range fleet.Samplers {
		smp.SetRunning(0)
	}
	if err := PublishSamples(p, fleet, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, 18)
	// Place a burst of tasks; the legacy power-hungry node (index 2,
	// 150->500 W) should receive the fewest.
	for i := 0; i < 30; i++ {
		if _, err := s.Place(); err != nil {
			t.Fatal(err)
		}
	}
	hungry := s.Placements["resource-02"]
	efficient := s.Placements["resource-00"] + s.Placements["resource-01"]
	if hungry >= efficient {
		t.Fatalf("energy-aware placed %d on the power-hungry node vs %d elsewhere", hungry, efficient)
	}
}

func TestPlaceWithoutResources(t *testing.T) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("telemetry", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := New(client.NewDirect(f), "telemetry", PolicyRoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Place(); err != ErrNoResources {
		t.Fatalf("err = %v", err)
	}
}

func TestCompleteReleasesCapacity(t *testing.T) {
	_, fleet, p, s := fixture(t, PolicyRoundRobin)
	if err := PublishSamples(p, fleet, t0); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, 3)
	r, _ := s.Place()
	v, _ := s.View(r)
	before := v.Running
	s.Complete(r)
	v, _ = s.View(r)
	if v.Running != before-1 {
		t.Fatalf("running = %d, want %d", v.Running, before-1)
	}
	s.Complete(r) // extra completes never go negative
	s.Complete(r)
	v, _ = s.View(r)
	if v.Running < 0 {
		t.Fatal("running went negative")
	}
}

func TestIngestIgnoresMalformedEvents(t *testing.T) {
	f, _, _, s := fixture(t, PolicyRoundRobin)
	// Publish garbage alongside a valid-looking but incomplete event.
	garbage := []event.Event{
		{Value: []byte("not json at all")},
		{Value: []byte(`{"resource": ""}`)},
		{Value: []byte(`{"no_resource_field": 1}`)},
	}
	if _, err := f.Produce("", "telemetry", 0, garbage, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	n, err := s.Ingest() // no panic, garbage skipped
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ingested %d raw events", n)
	}
}
