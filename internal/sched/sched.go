// Package sched implements the Online Task Scheduling use case (§VI-C):
// a FaaS scheduler that consumes near-real-time resource telemetry from
// the event fabric and uses it "to guide subsequent task placement and
// to train performance prediction models". Placement policies range
// from telemetry-blind round-robin to the energy-aware policy of the
// paper's GreenFaaS work; the benchmark harness compares their fleet
// energy, the design point the use case motivates.
package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Policy selects a resource for the next task.
type Policy string

// Placement policies.
const (
	// PolicyRoundRobin ignores telemetry.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyLeastLoaded places on the lowest-utilization resource.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyEnergyAware minimizes estimated marginal power draw.
	PolicyEnergyAware Policy = "energy-aware"
)

// ResourceView is the scheduler's model of one resource, built entirely
// from consumed telemetry events (the scheduler never touches the
// resource directly — that is the point of the EDA).
type ResourceView struct {
	Name string
	// EWMA-smoothed observations.
	CPUUtil    float64
	PowerWatts float64
	Running    int
	// IdleWatts / PeakWatts are regressed online from (util, power)
	// pairs — the "performance prediction models" of the use case.
	IdleWatts float64
	PeakWatts float64
	LastSeen  time.Time
	samples   int
}

// marginalPower predicts the extra watts of one more task from the
// regressed envelope; resources never observed yet predict pessimally.
func (v *ResourceView) marginalPower(cores int) float64 {
	if v.samples == 0 || cores <= 0 {
		return math.MaxFloat64
	}
	cur := float64(v.Running) / float64(cores)
	next := float64(v.Running+1) / float64(cores)
	if next > 1 {
		return math.MaxFloat64
	}
	span := v.PeakWatts - v.IdleWatts
	if span <= 0 {
		span = 100
	}
	return span * (math.Pow(next, 0.9) - math.Pow(cur, 0.9))
}

// Scheduler consumes telemetry and places tasks.
type Scheduler struct {
	policy   Policy
	consumer *client.Consumer
	clock    vclock.Clock

	mu    sync.Mutex
	views map[string]*ResourceView
	cores map[string]int
	rr    int
	// Placements counts tasks per resource, for the benchmark report.
	Placements map[string]int
}

// New creates a scheduler consuming telemetry from topic.
func New(t client.Transport, topic string, policy Policy, clock vclock.Clock) (*Scheduler, error) {
	if clock == nil {
		clock = vclock.Real{}
	}
	c := client.NewConsumer(t, client.ConsumerConfig{Start: client.StartEarliest})
	meta, err := t.TopicMeta(topic)
	if err != nil {
		return nil, err
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(topic, p); err != nil {
			return nil, err
		}
	}
	return &Scheduler{
		policy:     policy,
		consumer:   c,
		clock:      clock,
		views:      make(map[string]*ResourceView),
		cores:      make(map[string]int),
		Placements: make(map[string]int),
	}, nil
}

// RegisterResource tells the scheduler a resource's core count (static
// catalog data; telemetry carries the dynamic part).
func (s *Scheduler) RegisterResource(name string, cores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cores[name] = cores
	if _, ok := s.views[name]; !ok {
		s.views[name] = &ResourceView{Name: name, IdleWatts: 100, PeakWatts: 400}
	}
}

// Ingest drains available telemetry events and updates resource views.
// It returns the number of events consumed.
func (s *Scheduler) Ingest() (int, error) {
	evs, err := s.consumer.Poll(0)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range evs {
		doc, err := ev.JSON()
		if err != nil {
			continue
		}
		name, _ := doc["resource"].(string)
		if name == "" {
			continue
		}
		v, ok := s.views[name]
		if !ok {
			v = &ResourceView{Name: name, IdleWatts: 100, PeakWatts: 400}
			s.views[name] = v
		}
		util, _ := doc["cpu_util"].(float64)
		power, _ := doc["power_watts"].(float64)
		running, _ := doc["running_tasks"].(float64)
		const alpha = 0.3
		if v.samples == 0 {
			v.CPUUtil, v.PowerWatts = util, power
		} else {
			v.CPUUtil = alpha*util + (1-alpha)*v.CPUUtil
			v.PowerWatts = alpha*power + (1-alpha)*v.PowerWatts
		}
		v.Running = int(running)
		v.LastSeen = ev.Timestamp
		// Online envelope regression: idle from near-zero-util samples,
		// peak from high-util samples.
		if util < 0.05 {
			v.IdleWatts = alpha*power + (1-alpha)*v.IdleWatts
		}
		if util > 0.8 {
			v.PeakWatts = alpha*power + (1-alpha)*v.PeakWatts
		}
		v.samples++
	}
	return len(evs), nil
}

// ErrNoResources reports placement with an empty catalog.
var ErrNoResources = fmt.Errorf("sched: no resources registered")

// Place selects a resource for one task under the configured policy and
// records the placement.
func (s *Scheduler) Place() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.views))
	for n := range s.views {
		names = append(names, n)
	}
	if len(names) == 0 {
		return "", ErrNoResources
	}
	sort.Strings(names)
	var pick string
	switch s.policy {
	case PolicyLeastLoaded:
		best := math.MaxFloat64
		for _, n := range names {
			v := s.views[n]
			load := v.CPUUtil
			if load < best {
				best = load
				pick = n
			}
		}
	case PolicyEnergyAware:
		best := math.MaxFloat64
		for _, n := range names {
			v := s.views[n]
			mp := v.marginalPower(s.cores[n])
			if mp < best {
				best = mp
				pick = n
			}
		}
		if pick == "" {
			pick = names[s.rr%len(names)]
			s.rr++
		}
	default: // round robin
		pick = names[s.rr%len(names)]
		s.rr++
	}
	s.views[pick].Running++
	s.Placements[pick]++
	return pick, nil
}

// Complete releases a placed task.
func (s *Scheduler) Complete(resource string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[resource]; ok && v.Running > 0 {
		v.Running--
	}
}

// View returns a copy of the scheduler's model of a resource.
func (s *Scheduler) View(name string) (ResourceView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[name]
	if !ok {
		return ResourceView{}, false
	}
	return *v, true
}

// Close releases the telemetry consumer.
func (s *Scheduler) Close() error { return s.consumer.Close() }

// PublishSamples is the monitor side: it samples the fleet and
// publishes one event per resource to the telemetry topic, as the
// paper's RAPL/psutil monitor does.
func PublishSamples(p *client.Producer, fleet *telemetry.Fleet, now time.Time) error {
	for _, s := range fleet.Samplers {
		if err := p.Send(event.New(s.Spec.Name, s.Sample(now))); err != nil {
			return err
		}
	}
	return p.Flush()
}
