// Package vclock provides the clock abstraction used throughout Octopus.
//
// Components never call time.Now or time.Sleep directly; they take a
// Clock. In production (cmd/octopus-broker etc.) the clock is the real
// wall clock. In the testbed simulator and in tests it is a Virtual
// discrete-event clock, which lets experiments such as Figure 4 (a
// 25-minute trigger-autoscaling run) execute in milliseconds while
// preserving exact timing relationships.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source components depend on.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d on this clock.
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time after d.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After calls time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a discrete-event simulation clock. Goroutines that Sleep or
// wait on After are suspended until the simulation driver advances time
// past their deadline with Advance or Run.
//
// A Virtual clock tracks the number of goroutines blocked on it; the
// driver advances time only when every registered worker is blocked,
// giving deterministic execution (a conservative discrete-event engine).
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	// blocked counts goroutines currently suspended in Sleep/After.
	blocked int
	// workers is the number of goroutines participating in the
	// simulation; Advance only proceeds when blocked == workers, unless
	// workers == 0 (untracked mode, useful for simple tests).
	workers int
	cond    *sync.Cond
}

// NewVirtual creates a virtual clock starting at the given origin.
func NewVirtual(origin time.Time) *Virtual {
	v := &Virtual{now: origin}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep suspends the caller until virtual time advances by d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel that fires when virtual time reaches now+d.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	w := &waiter{deadline: v.now.Add(d), ch: ch}
	heap.Push(&v.waiters, w)
	v.blocked++
	v.cond.Broadcast()
	return ch
}

// AddWorkers registers n goroutines as simulation participants.
func (v *Virtual) AddWorkers(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.workers += n
	v.cond.Broadcast()
}

// DoneWorkers unregisters n goroutines.
func (v *Virtual) DoneWorkers(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.workers -= n
	v.cond.Broadcast()
}

// Advance moves virtual time forward by d, waking every waiter whose
// deadline falls within the window in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	v.advanceTo(target)
}

// Step advances to the next pending deadline, if any, and reports whether
// a waiter was released. It waits until all registered workers are
// blocked before stepping, so event ordering is deterministic.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.workers > 0 && v.blocked < v.workers {
		v.cond.Wait()
	}
	if v.waiters.Len() == 0 {
		return false
	}
	next := v.waiters[0].deadline
	v.advanceTo(next)
	return true
}

// Run steps the simulation until no waiters remain or until virtual time
// exceeds horizon. It returns the final virtual time.
func (v *Virtual) Run(horizon time.Time) time.Time {
	for {
		v.mu.Lock()
		for v.workers > 0 && v.blocked < v.workers {
			v.cond.Wait()
		}
		if v.waiters.Len() == 0 || v.waiters[0].deadline.After(horizon) {
			now := v.now
			v.mu.Unlock()
			return now
		}
		next := v.waiters[0].deadline
		v.advanceTo(next)
		v.mu.Unlock()
	}
}

// advanceTo must be called with mu held.
func (v *Virtual) advanceTo(target time.Time) {
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		if w.deadline.After(v.now) {
			v.now = w.deadline
		}
		w.ch <- v.now
		v.blocked--
	}
	if target.After(v.now) {
		v.now = target
	}
}

// Pending returns the number of goroutines waiting on the clock.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x any)        { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
