package vclock

import (
	"container/heap"
	"time"
)

// Sim is a single-threaded discrete-event simulator: callbacks are
// scheduled at absolute virtual times and executed in time order. It is
// the engine behind the testbed experiments (Figures 4, 7 and 8), where
// thousands of seconds of simulated activity must run in milliseconds.
//
// Sim is intentionally not safe for concurrent use: determinism is the
// point. Callbacks run on the caller's goroutine inside Run.
type Sim struct {
	now   time.Time
	queue simHeap
	seq   int64
}

// NewSim creates a simulator starting at origin.
func NewSim(origin time.Time) *Sim { return &Sim{now: origin} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Time { return s.now }

// At schedules fn to run at absolute time t. Times in the past run
// immediately at the current time on the next Run step.
func (s *Sim) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &simEvent{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Every schedules fn to run every period until it returns false.
func (s *Sim) Every(period time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
}

// Run executes queued events in time order until the queue is empty or
// simulated time would exceed horizon. It returns the final time.
func (s *Sim) Run(horizon time.Time) time.Time {
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.at.After(horizon) {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
	}
	return s.now
}

// RunAll executes queued events until none remain.
func (s *Sim) RunAll() time.Time {
	for s.queue.Len() > 0 {
		next := heap.Pop(&s.queue).(*simEvent)
		s.now = next.at
		next.fn()
	}
	return s.now
}

// Pending reports the number of scheduled, unexecuted events.
func (s *Sim) Pending() int { return s.queue.Len() }

type simEvent struct {
	at  time.Time
	seq int64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type simHeap []*simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
