package vclock

import (
	"sync"
	"testing"
	"time"
)

var origin = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowStartsAtOrigin(t *testing.T) {
	v := NewVirtual(origin)
	if !v.Now().Equal(origin) {
		t.Fatalf("Now = %v, want %v", v.Now(), origin)
	}
}

func TestVirtualAdvanceWakesSleepers(t *testing.T) {
	v := NewVirtual(origin)
	done := make(chan time.Time, 1)
	go func() {
		v.Sleep(10 * time.Second)
		done <- v.Now()
	}()
	// Wait until the sleeper has registered.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(10 * time.Second)
	got := <-done
	if want := origin.Add(10 * time.Second); !got.Equal(want) {
		t.Fatalf("woke at %v, want %v", got, want)
	}
}

func TestVirtualAdvancePartial(t *testing.T) {
	v := NewVirtual(origin)
	ch := v.After(10 * time.Second)
	v.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("woke too early")
	default:
	}
	v.Advance(5 * time.Second)
	select {
	case ts := <-ch:
		if want := origin.Add(10 * time.Second); !ts.Equal(want) {
			t.Fatalf("fired at %v, want %v", ts, want)
		}
	default:
		t.Fatal("timer did not fire")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(origin)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
}

func TestVirtualWaitersWakeInDeadlineOrder(t *testing.T) {
	v := NewVirtual(origin)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range delays {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	for v.Pending() < len(delays) {
		time.Sleep(time.Millisecond)
	}
	// Advance in two steps: the 10 s and 20 s sleepers wake first.
	v.Advance(25 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	firstTwo := append([]int(nil), order...)
	mu.Unlock()
	if (firstTwo[0] != 1 && firstTwo[0] != 2) || (firstTwo[1] != 1 && firstTwo[1] != 2) || firstTwo[0] == firstTwo[1] {
		t.Fatalf("first wave = %v, want {1,2}", firstTwo)
	}
	v.Advance(10 * time.Second)
	wg.Wait()
	if order[2] != 0 {
		t.Fatalf("wake order = %v, want sleeper 0 last", order)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(before) {
		t.Fatal("real clock did not advance")
	}
}

func TestSimRunsCallbacksInTimeOrder(t *testing.T) {
	s := NewSim(origin)
	var order []string
	s.After(3*time.Second, func() { order = append(order, "c") })
	s.After(1*time.Second, func() { order = append(order, "a") })
	s.After(2*time.Second, func() { order = append(order, "b") })
	s.RunAll()
	if got := len(order); got != 3 {
		t.Fatalf("ran %d callbacks", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if want := origin.Add(3 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("final time %v, want %v", s.Now(), want)
	}
}

func TestSimEqualTimesRunInScheduleOrder(t *testing.T) {
	s := NewSim(origin)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(origin)
	hits := 0
	s.After(time.Second, func() {
		hits++
		s.After(time.Second, func() { hits++ })
	})
	s.RunAll()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if want := origin.Add(2 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("final %v, want %v", s.Now(), want)
	}
}

func TestSimRunHorizonStops(t *testing.T) {
	s := NewSim(origin)
	ran := false
	s.After(10*time.Second, func() { ran = true })
	s.Run(origin.Add(5 * time.Second))
	if ran {
		t.Fatal("callback beyond horizon ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(origin.Add(20 * time.Second))
	if !ran {
		t.Fatal("callback within horizon did not run")
	}
}

func TestSimEvery(t *testing.T) {
	s := NewSim(origin)
	n := 0
	s.Every(time.Second, func() bool {
		n++
		return n < 5
	})
	s.RunAll()
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if want := origin.Add(5 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("final %v, want %v", s.Now(), want)
	}
}

func TestSimPastSchedulingClampsToNow(t *testing.T) {
	s := NewSim(origin)
	s.After(5*time.Second, func() {
		s.At(origin, func() {}) // in the past; must not rewind time
	})
	s.RunAll()
	if s.Now().Before(origin.Add(5 * time.Second)) {
		t.Fatalf("time went backwards: %v", s.Now())
	}
}
