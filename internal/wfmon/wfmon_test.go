package wfmon

import (
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
)

func TestSimulateHTEXOverheadFallsWithWorkers(t *testing.T) {
	cfg := RunConfig{Tasks: 128, Nodes: 8, TaskDuration: 10 * time.Millisecond}
	prev := -1.0
	for _, w := range []int{1, 4, 16, 64} {
		cfg.Workers = w
		r := SimulateRun(cfg, HTEXModel())
		if prev >= 0 && r.OverheadPerEventMs >= prev {
			t.Fatalf("overhead did not fall at %d workers: %.3f >= %.3f", w, r.OverheadPerEventMs, prev)
		}
		prev = r.OverheadPerEventMs
	}
}

func TestSimulateOctopusBeatsHTEX(t *testing.T) {
	for _, dur := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond} {
		for _, w := range []int{1, 8, 64} {
			cfg := RunConfig{Tasks: 128, Nodes: 8, Workers: w, TaskDuration: dur}
			h := SimulateRun(cfg, HTEXModel())
			o := SimulateRun(cfg, OctopusModel())
			if o.OverheadPerEventMs >= h.OverheadPerEventMs {
				t.Errorf("dur=%v w=%d: octopus %.3f >= htex %.3f", dur, w, o.OverheadPerEventMs, h.OverheadPerEventMs)
			}
		}
	}
}

func TestSimulateIdealAccounting(t *testing.T) {
	cfg := RunConfig{Tasks: 128, Nodes: 8, Workers: 16, TaskDuration: 10 * time.Millisecond}
	r := SimulateRun(cfg, MonitorModel{Name: "free"})
	// No monitoring cost: makespan equals the ideal.
	if r.Makespan != r.Ideal {
		t.Fatalf("makespan %v != ideal %v with free monitor", r.Makespan, r.Ideal)
	}
	if r.OverheadPerEventMs != 0 {
		t.Fatalf("overhead = %v", r.OverheadPerEventMs)
	}
	if r.Events != 128*4 {
		t.Fatalf("events = %d", r.Events)
	}
	// ideal = ceil(128/16) waves * 10 ms.
	if r.Ideal != 80*time.Millisecond {
		t.Fatalf("ideal = %v", r.Ideal)
	}
}

func TestSimulateSerializedResource(t *testing.T) {
	// A fully serialized monitor bottlenecks on the shared lock:
	// makespan >= events x cost regardless of worker count.
	cfg := RunConfig{Tasks: 32, Nodes: 8, Workers: 32, TaskDuration: 0}
	m := MonitorModel{Name: "lock", SyncCost: time.Millisecond, Serialized: true}
	r := SimulateRun(cfg, m)
	if r.Makespan < time.Duration(r.Events)*time.Millisecond {
		t.Fatalf("serialized makespan = %v, want >= %v", r.Makespan, time.Duration(r.Events)*time.Millisecond)
	}
}

func TestSimulateAsyncDrainExtendsMakespan(t *testing.T) {
	// Zero-duration tasks, zero sync cost: only the async tail remains.
	cfg := RunConfig{Tasks: 128, Nodes: 8, Workers: 64, TaskDuration: 0}
	m := MonitorModel{Name: "async", AsyncBatch: 64, AsyncBatchCost: 10 * time.Millisecond}
	r := SimulateRun(cfg, m)
	// 512 events / 64 per batch = 8 batches x 10 ms pipelined.
	if r.Makespan < 80*time.Millisecond {
		t.Fatalf("drain not accounted: %v", r.Makespan)
	}
}

func TestRealRunWithHTEXMonitor(t *testing.T) {
	m := NewHTEXMonitor(0) // no artificial latency in unit tests
	r := Run(RunConfig{Tasks: 16, Nodes: 2, Workers: 4, TaskDuration: time.Millisecond, EventsPerTask: 3}, m)
	if m.Count() != 48 {
		t.Fatalf("rows = %d, want 48", m.Count())
	}
	if r.Events != 48 {
		t.Fatalf("events = %d", r.Events)
	}
	if r.Makespan <= 0 {
		t.Fatal("no makespan measured")
	}
}

func TestRealRunWithOctopusMonitor(t *testing.T) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("wf-monitoring", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	m := NewOctopusMonitor(client.NewDirect(f), "wf-monitoring")
	defer m.Close()
	r := Run(RunConfig{Tasks: 16, Nodes: 2, Workers: 4, TaskDuration: time.Millisecond}, m)
	if r.Events != 64 {
		t.Fatalf("events = %d", r.Events)
	}
	// Every event landed in the fabric after Flush.
	var total int64
	for p := 0; p < 2; p++ {
		end, err := f.EndOffset("wf-monitoring", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != 64 {
		t.Fatalf("fabric holds %d events, want 64", total)
	}
}

func TestRealRunEventKinds(t *testing.T) {
	m := NewHTEXMonitor(0)
	Run(RunConfig{Tasks: 4, Nodes: 1, Workers: 1, EventsPerTask: 4}, m)
	kinds := map[string]int{}
	for _, ev := range m.Rows {
		kinds[ev.Kind]++
	}
	if kinds["launch"] != 4 || kinds["result"] != 4 || kinds["resource"] != 8 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestRunConfigDefaults(t *testing.T) {
	cfg := RunConfig{}
	cfg.fill()
	if cfg.Tasks != 128 || cfg.Nodes != 8 || cfg.Workers != 1 || cfg.EventsPerTask != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
