// Package wfmon reproduces the Dynamic Workflow Management use case
// (§VI-E): a Parsl-like task executor whose monitoring layer is
// pluggable — either HTEX-style (each monitoring event is a synchronous
// write to a shared central database, serialized by the database lock)
// or Octopus-style (events are batched and published asynchronously to
// the event fabric, off the workers' critical path).
//
// Figure 8 compares the two by "async overhead per event": makespan
// minus ideal compute time, divided by the number of monitoring events.
// SimulateRun computes this with a deterministic list-scheduling model;
// Executor + the Monitor implementations run the same workload for real
// against a fabric (used by tests and examples/workflow).
package wfmon

import (
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/event"
)

// TaskEvent is one monitoring record: task launched / completed plus
// resource info, the events the Octopus-based Parsl monitor publishes.
type TaskEvent struct {
	Task     int       `json:"task"`
	Node     int       `json:"node"`
	Worker   int       `json:"worker"`
	Kind     string    `json:"kind"` // "launch", "result", "resource", "failure"
	Time     time.Time `json:"time"`
	Duration float64   `json:"duration_ms,omitempty"`
}

// Monitor receives task events from the executor.
type Monitor interface {
	// Record observes one event; implementations decide whether the
	// caller blocks (HTEX) or not (Octopus).
	Record(ev TaskEvent)
	// Flush blocks until all recorded events are durable.
	Flush()
}

// --- Real implementations ---

// HTEXMonitor emulates Parsl's default monitoring: synchronous inserts
// into one shared database guarded by a lock. WriteLatency models the
// insert cost (SQLite over shared filesystems on HPC is tens of ms).
type HTEXMonitor struct {
	WriteLatency time.Duration
	mu           sync.Mutex
	Rows         []TaskEvent
}

// NewHTEXMonitor creates the database-backed monitor.
func NewHTEXMonitor(writeLatency time.Duration) *HTEXMonitor {
	return &HTEXMonitor{WriteLatency: writeLatency}
}

// Record blocks the calling worker for the (serialized) DB write.
func (m *HTEXMonitor) Record(ev TaskEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.WriteLatency > 0 {
		time.Sleep(m.WriteLatency)
	}
	m.Rows = append(m.Rows, ev)
}

// Flush is a no-op: writes are already durable.
func (m *HTEXMonitor) Flush() {}

// Count returns stored rows.
func (m *HTEXMonitor) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Rows)
}

// OctopusMonitor publishes monitoring events through the SDK producer:
// batched, asynchronous, off the worker critical path.
type OctopusMonitor struct {
	producer *client.Producer
}

// NewOctopusMonitor creates a fabric-backed monitor publishing to topic.
func NewOctopusMonitor(t client.Transport, topic string) *OctopusMonitor {
	return &OctopusMonitor{
		producer: client.NewProducer(t, topic, client.ProducerConfig{
			BatchEvents: 128,
			Linger:      2 * time.Millisecond,
		}),
	}
}

// Record enqueues the event; workers do not wait for delivery.
func (m *OctopusMonitor) Record(ev TaskEvent) {
	_ = m.producer.Send(event.New("", ev))
}

// Flush drains the producer buffer.
func (m *OctopusMonitor) Flush() { _ = m.producer.Flush() }

// Close stops the underlying producer.
func (m *OctopusMonitor) Close() { _ = m.producer.Close() }

// --- Executor ---

// RunConfig describes one Figure 8 cell.
type RunConfig struct {
	// Tasks is the task count (paper: 128).
	Tasks int
	// Nodes and WorkersPerNode give the worker layout (paper: 8 nodes,
	// 1–64 workers total; workers = total across nodes).
	Nodes   int
	Workers int
	// TaskDuration is the per-task compute time (0, 10 ms, 100 ms).
	TaskDuration time.Duration
	// EventsPerTask is how many monitoring events each task emits
	// (launch + result + resource snapshots; default 4).
	EventsPerTask int
}

func (c *RunConfig) fill() {
	if c.Tasks <= 0 {
		c.Tasks = 128
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.EventsPerTask <= 0 {
		c.EventsPerTask = 4
	}
}

// Result summarizes one run.
type Result struct {
	Makespan time.Duration
	// Ideal is the monitoring-free compute makespan:
	// ceil(tasks/workers) × duration.
	Ideal  time.Duration
	Events int
	// OverheadPerEventMs is Figure 8's y-axis.
	OverheadPerEventMs float64
}

// Run executes the workload for real: Workers goroutines drain a task
// queue, each task sleeps TaskDuration and reports EventsPerTask events
// to the monitor. The reported overhead uses wall-clock time.
func Run(cfg RunConfig, m Monitor) Result {
	cfg.fill()
	tasks := make(chan int, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		tasks <- i
	}
	close(tasks)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			node := worker % cfg.Nodes
			for task := range tasks {
				m.Record(TaskEvent{Task: task, Node: node, Worker: worker, Kind: "launch", Time: time.Now()})
				if cfg.TaskDuration > 0 {
					time.Sleep(cfg.TaskDuration)
				}
				for e := 0; e < cfg.EventsPerTask-2; e++ {
					m.Record(TaskEvent{Task: task, Node: node, Worker: worker, Kind: "resource", Time: time.Now()})
				}
				m.Record(TaskEvent{
					Task: task, Node: node, Worker: worker, Kind: "result",
					Time: time.Now(), Duration: float64(cfg.TaskDuration) / float64(time.Millisecond),
				})
			}
		}(w)
	}
	wg.Wait()
	m.Flush()
	makespan := time.Since(start)
	return summarize(cfg, makespan)
}

func summarize(cfg RunConfig, makespan time.Duration) Result {
	waves := (cfg.Tasks + cfg.Workers - 1) / cfg.Workers
	ideal := time.Duration(waves) * cfg.TaskDuration
	events := cfg.Tasks * cfg.EventsPerTask
	overhead := makespan - ideal
	if overhead < 0 {
		overhead = 0
	}
	return Result{
		Makespan:           makespan,
		Ideal:              ideal,
		Events:             events,
		OverheadPerEventMs: float64(overhead) / float64(time.Millisecond) / float64(events),
	}
}

// --- Deterministic model (Figure 8 regeneration) ---

// MonitorModel parameterizes the analytic run for one monitoring system.
type MonitorModel struct {
	Name string
	// SyncCost blocks the worker per event (HTEX: the DB insert;
	// Octopus: the local enqueue).
	SyncCost time.Duration
	// Serialized marks SyncCost as globally serialized (one DB lock).
	Serialized bool
	// AsyncBatch and AsyncBatchCost model a background publisher that
	// drains batches off the critical path; the final drain extends the
	// makespan if it outlives the compute.
	AsyncBatch     int
	AsyncBatchCost time.Duration
}

// HTEXModel matches Parsl HTEX monitoring on an HPC shared filesystem:
// each event is a ~35 ms synchronous insert on the worker's critical
// path. Writes from different workers proceed concurrently (the DB
// serializes internally at far finer granularity), which is what makes
// the per-event overhead fall as 1/workers in Figure 8 — "the
// relatively static cost of writing events to a database" amortized
// over parallel workers.
func HTEXModel() MonitorModel {
	return MonitorModel{Name: "HTEX", SyncCost: 35 * time.Millisecond}
}

// OctopusModel matches the SDK producer path: ~0.3 ms local enqueue,
// background batches of 128 events costing one 47 ms remote RTT each.
func OctopusModel() MonitorModel {
	return MonitorModel{
		Name:           "Octopus",
		SyncCost:       300 * time.Microsecond,
		AsyncBatch:     128,
		AsyncBatchCost: 47 * time.Millisecond,
	}
}

// SimulateRun computes the run deterministically: workers advance task
// by task; serialized sync costs contend on a shared resource; async
// publishing proceeds in the background and only the final drain can
// extend the makespan.
func SimulateRun(cfg RunConfig, m MonitorModel) Result {
	cfg.fill()
	workerFree := make([]time.Duration, cfg.Workers)
	var dbFree time.Duration      // shared-lock availability (HTEX)
	var lastEnqueue time.Duration // async path
	events := 0
	for task := 0; task < cfg.Tasks; task++ {
		// List scheduling: next task goes to the earliest-free worker.
		w := 0
		for i := 1; i < cfg.Workers; i++ {
			if workerFree[i] < workerFree[w] {
				w = i
			}
		}
		t := workerFree[w] + cfg.TaskDuration
		for e := 0; e < cfg.EventsPerTask; e++ {
			events++
			if m.Serialized {
				start := t
				if dbFree > start {
					start = dbFree
				}
				t = start + m.SyncCost
				dbFree = t
			} else {
				t += m.SyncCost
			}
		}
		if t > lastEnqueue {
			lastEnqueue = t
		}
		workerFree[w] = t
	}
	makespan := time.Duration(0)
	for _, f := range workerFree {
		if f > makespan {
			makespan = f
		}
	}
	if m.AsyncBatch > 0 {
		// Background publisher drains concurrently with compute; only
		// the tail batch extends the makespan.
		batches := (events + m.AsyncBatch - 1) / m.AsyncBatch
		drainDone := lastEnqueue + m.AsyncBatchCost
		pipelined := time.Duration(batches) * m.AsyncBatchCost
		if pipelined > drainDone {
			drainDone = pipelined
		}
		if drainDone > makespan {
			makespan = drainDone
		}
	}
	return summarize(cfg, makespan)
}
