package wfmon

import (
	"sort"
	"sync"
	"time"

	"repro/internal/client"
)

// Steering implements the paper's stated future work for the workflow
// use case (§VI-E): "we will extend Parsl to use this information in
// various ways, for example, by retrying failed tasks, blacklisting
// under-performing nodes, or elastically rescheduling tasks". It
// consumes the Octopus monitoring stream and emits healing decisions:
// retries for failed tasks and blacklists for straggler nodes.
type Steering struct {
	consumer *client.Consumer

	// StragglerFactor marks a node as under-performing when its mean
	// task duration exceeds the fleet mean by this factor (default 2).
	StragglerFactor float64
	// MinSamples is how many completed tasks a node needs before it can
	// be judged (default 5).
	MinSamples int
	// MaxRetries bounds per-task retry decisions (default 3).
	MaxRetries int

	mu        sync.Mutex
	nodeStats map[int]*nodeStat
	retries   map[int]int // task -> retries issued
	blacklist map[int]bool
}

type nodeStat struct {
	completed int
	totalMs   float64
}

func (n *nodeStat) mean() float64 {
	if n.completed == 0 {
		return 0
	}
	return n.totalMs / float64(n.completed)
}

// Decision is one steering output.
type Decision struct {
	// Kind is "retry" or "blacklist".
	Kind string
	// Task is set for retries.
	Task int
	// Node is set for blacklists.
	Node int
	// Reason explains the decision for operators.
	Reason string
}

// NewSteering attaches a steering engine to the monitoring topic.
func NewSteering(t client.Transport, topic string) (*Steering, error) {
	c := client.NewConsumer(t, client.ConsumerConfig{Start: client.StartEarliest})
	meta, err := t.TopicMeta(topic)
	if err != nil {
		return nil, err
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(topic, p); err != nil {
			return nil, err
		}
	}
	return &Steering{
		consumer:        c,
		StragglerFactor: 2,
		MinSamples:      5,
		MaxRetries:      3,
		nodeStats:       make(map[int]*nodeStat),
		retries:         make(map[int]int),
		blacklist:       make(map[int]bool),
	}, nil
}

// Close releases the monitoring consumer.
func (s *Steering) Close() error { return s.consumer.Close() }

// Step drains available monitoring events and returns the healing
// decisions they imply. It is deterministic given the event stream, so
// callers can drive it from a poll loop or a trigger.
func (s *Steering) Step() ([]Decision, error) {
	evs, err := s.consumer.Poll(0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Decision
	for _, ev := range evs {
		doc, err := ev.JSON()
		if err != nil {
			continue
		}
		kind, _ := doc["kind"].(string)
		taskF, _ := doc["task"].(float64)
		nodeF, _ := doc["node"].(float64)
		task, node := int(taskF), int(nodeF)
		switch kind {
		case "failure":
			if s.retries[task] < s.MaxRetries {
				s.retries[task]++
				out = append(out, Decision{
					Kind: "retry", Task: task, Node: node,
					Reason: "task failure reported by monitor",
				})
			}
		case "result":
			dur, _ := doc["duration_ms"].(float64)
			st, ok := s.nodeStats[node]
			if !ok {
				st = &nodeStat{}
				s.nodeStats[node] = st
			}
			st.completed++
			st.totalMs += dur
		}
	}
	// Straggler detection over the accumulated per-node statistics.
	out = append(out, s.detectStragglersLocked()...)
	return out, nil
}

func (s *Steering) detectStragglersLocked() []Decision {
	var totals float64
	var n int
	for _, st := range s.nodeStats {
		if st.completed >= s.MinSamples {
			totals += st.mean()
			n++
		}
	}
	if n < 2 {
		return nil // need a fleet to compare against
	}
	fleetMean := totals / float64(n)
	if fleetMean <= 0 {
		return nil
	}
	var out []Decision
	nodes := make([]int, 0, len(s.nodeStats))
	for node := range s.nodeStats {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		st := s.nodeStats[node]
		if s.blacklist[node] || st.completed < s.MinSamples {
			continue
		}
		if st.mean() > fleetMean*s.StragglerFactor {
			s.blacklist[node] = true
			out = append(out, Decision{
				Kind: "blacklist", Node: node,
				Reason: "mean task duration exceeds fleet mean",
			})
		}
	}
	return out
}

// Blacklisted reports whether a node has been blacklisted.
func (s *Steering) Blacklisted(node int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blacklist[node]
}

// RetryCount returns the retries issued for a task.
func (s *Steering) RetryCount(task int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries[task]
}

// ReportFailure is a producer-side helper: publish a task-failure event
// the steering engine will react to.
func ReportFailure(m Monitor, task, node, worker int, at time.Time) {
	m.Record(TaskEvent{Task: task, Node: node, Worker: worker, Kind: "failure", Time: at})
}
