package wfmon

import (
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

func steeringFixture(t *testing.T) (client.Transport, *client.Producer, *Steering) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(1, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("wf-mon", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	tr := client.NewDirect(f)
	p := client.NewProducer(tr, "wf-mon", client.ProducerConfig{Linger: time.Millisecond})
	t.Cleanup(func() { _ = p.Close() })
	s, err := NewSteering(tr, "wf-mon")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return tr, p, s
}

func publish(t *testing.T, p *client.Producer, ev TaskEvent) {
	t.Helper()
	if err := p.Send(event.New("", ev)); err != nil {
		t.Fatal(err)
	}
}

func stepAll(t *testing.T, s *Steering) []Decision {
	t.Helper()
	var out []Decision
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ds, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds...)
		if len(ds) == 0 {
			return out
		}
	}
	return out
}

func TestSteeringRetriesFailedTasks(t *testing.T) {
	_, p, s := steeringFixture(t)
	publish(t, p, TaskEvent{Task: 7, Node: 1, Kind: "failure", Time: time.Now()})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	ds := stepAll(t, s)
	if len(ds) != 1 || ds[0].Kind != "retry" || ds[0].Task != 7 {
		t.Fatalf("decisions = %+v", ds)
	}
	if s.RetryCount(7) != 1 {
		t.Fatalf("retry count = %d", s.RetryCount(7))
	}
}

func TestSteeringBoundsRetries(t *testing.T) {
	_, p, s := steeringFixture(t)
	s.MaxRetries = 2
	for i := 0; i < 5; i++ {
		publish(t, p, TaskEvent{Task: 3, Node: 0, Kind: "failure", Time: time.Now()})
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	ds := stepAll(t, s)
	retries := 0
	for _, d := range ds {
		if d.Kind == "retry" {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want MaxRetries=2", retries)
	}
}

func TestSteeringBlacklistsStragglers(t *testing.T) {
	_, p, s := steeringFixture(t)
	// Nodes 0 and 1 complete tasks in 10 ms; node 2 takes 100 ms.
	task := 0
	for node := 0; node < 3; node++ {
		dur := 10.0
		if node == 2 {
			dur = 100.0
		}
		for i := 0; i < 6; i++ {
			publish(t, p, TaskEvent{Task: task, Node: node, Kind: "result", Duration: dur, Time: time.Now()})
			task++
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	ds := stepAll(t, s)
	var blacklisted []int
	for _, d := range ds {
		if d.Kind == "blacklist" {
			blacklisted = append(blacklisted, d.Node)
		}
	}
	if len(blacklisted) != 1 || blacklisted[0] != 2 {
		t.Fatalf("blacklisted = %v, want [2]", blacklisted)
	}
	if !s.Blacklisted(2) || s.Blacklisted(0) {
		t.Fatal("blacklist state wrong")
	}
	// A node is blacklisted at most once.
	ds = stepAll(t, s)
	for _, d := range ds {
		if d.Kind == "blacklist" {
			t.Fatalf("duplicate blacklist: %+v", d)
		}
	}
}

func TestSteeringNeedsFleetContext(t *testing.T) {
	_, p, s := steeringFixture(t)
	// Only one node reporting: no straggler judgment possible.
	for i := 0; i < 10; i++ {
		publish(t, p, TaskEvent{Task: i, Node: 0, Kind: "result", Duration: 500, Time: time.Now()})
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range stepAll(t, s) {
		if d.Kind == "blacklist" {
			t.Fatalf("blacklisted with no fleet baseline: %+v", d)
		}
	}
}

func TestSteeringIgnoresSparseNodes(t *testing.T) {
	_, p, s := steeringFixture(t)
	// Node 2 is slow but has too few samples to judge.
	for node := 0; node < 2; node++ {
		for i := 0; i < 6; i++ {
			publish(t, p, TaskEvent{Task: node*10 + i, Node: node, Kind: "result", Duration: 10, Time: time.Now()})
		}
	}
	publish(t, p, TaskEvent{Task: 99, Node: 2, Kind: "result", Duration: 1000, Time: time.Now()})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range stepAll(t, s) {
		if d.Kind == "blacklist" && d.Node == 2 {
			t.Fatal("judged a node below MinSamples")
		}
	}
}

func TestSteeringEndToEndWithExecutor(t *testing.T) {
	tr, p, s := steeringFixture(t)
	// Run a real workload through the Octopus monitor, then inject a
	// failure event, and let steering react to the combined stream.
	m := NewOctopusMonitor(tr, "wf-mon")
	defer m.Close()
	Run(RunConfig{Tasks: 8, Nodes: 2, Workers: 4, TaskDuration: time.Millisecond}, m)
	ReportFailure(m, 5, 1, 0, time.Now())
	m.Flush()
	_ = p
	ds := stepAll(t, s)
	found := false
	for _, d := range ds {
		if d.Kind == "retry" && d.Task == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("steering missed the failure: %+v", ds)
	}
}
