package auth

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/zk"
)

// Permission is a topic-level right, following the Kafka/MSK ACL model
// the paper relies on: READ, WRITE and DESCRIBE per topic per identity.
type Permission string

// Topic permissions.
const (
	PermRead     Permission = "READ"
	PermWrite    Permission = "WRITE"
	PermDescribe Permission = "DESCRIBE"
)

// AllPermissions returns the full grant given to a topic's creator.
func AllPermissions() []Permission {
	return []Permission{PermRead, PermWrite, PermDescribe}
}

// ErrDenied reports a failed authorization check.
var ErrDenied = errors.New("auth: permission denied")

// aclEntry is the stored form of one identity's grant on one topic.
type aclEntry struct {
	Identity    string   `json:"identity"`
	Permissions []string `json:"permissions"`
}

// ACLStore enforces fine-grained, self-managed topic access control
// (requirement "Fine-grained access control" of §III-B). Grants are
// persisted in the coordination registry so that, as in the paper, the
// registry is the source of truth replicated to the IAM layer.
type ACLStore struct {
	reg *zk.Registry
}

// NewACLStore creates an ACL store backed by the registry.
func NewACLStore(reg *zk.Registry) *ACLStore { return &ACLStore{reg: reg} }

func aclPath(topic, identity string) string {
	return "/acls/" + topic + "/" + identity
}

// Grant adds permissions for identity on topic (idempotent union).
func (a *ACLStore) Grant(topic, identity string, perms ...Permission) error {
	if len(perms) == 0 {
		perms = AllPermissions()
	}
	path := aclPath(topic, identity)
	cur := map[string]bool{}
	if data, _, err := a.reg.Get(path); err == nil {
		var e aclEntry
		if err := json.Unmarshal(data, &e); err == nil {
			for _, p := range e.Permissions {
				cur[p] = true
			}
		}
	}
	for _, p := range perms {
		cur[string(p)] = true
	}
	return a.store(path, identity, cur)
}

// Revoke removes permissions for identity on topic. Revoking all
// permissions deletes the entry.
func (a *ACLStore) Revoke(topic, identity string, perms ...Permission) error {
	path := aclPath(topic, identity)
	data, _, err := a.reg.Get(path)
	if err != nil {
		return nil // nothing granted, nothing to revoke
	}
	var e aclEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Errorf("auth: corrupt ACL at %s: %w", path, err)
	}
	cur := map[string]bool{}
	for _, p := range e.Permissions {
		cur[p] = true
	}
	if len(perms) == 0 {
		cur = map[string]bool{}
	}
	for _, p := range perms {
		delete(cur, string(p))
	}
	if len(cur) == 0 {
		return a.reg.Delete(path)
	}
	return a.store(path, identity, cur)
}

// RevokeAllForTopic removes every grant on the topic (topic release).
func (a *ACLStore) RevokeAllForTopic(topic string) {
	for _, p := range a.reg.List("/acls/" + topic) {
		_ = a.reg.Delete(p)
	}
}

func (a *ACLStore) store(path, identity string, perms map[string]bool) error {
	list := make([]string, 0, len(perms))
	for p := range perms {
		list = append(list, p)
	}
	sort.Strings(list)
	data, err := json.Marshal(aclEntry{Identity: identity, Permissions: list})
	if err != nil {
		return err
	}
	a.reg.SetOrCreate(path, data)
	return nil
}

// Check returns nil if identity holds perm on topic.
func (a *ACLStore) Check(topic, identity string, perm Permission) error {
	data, _, err := a.reg.Get(aclPath(topic, identity))
	if err != nil {
		return fmt.Errorf("%w: %s on %s for %s", ErrDenied, perm, topic, identity)
	}
	var e aclEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Errorf("auth: corrupt ACL: %w", err)
	}
	for _, p := range e.Permissions {
		if p == string(perm) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s on %s for %s", ErrDenied, perm, topic, identity)
}

// Allowed reports whether identity holds perm on topic.
func (a *ACLStore) Allowed(topic, identity string, perm Permission) bool {
	return a.Check(topic, identity, perm) == nil
}

// Permissions returns the sorted permissions identity holds on topic.
func (a *ACLStore) Permissions(topic, identity string) []Permission {
	data, _, err := a.reg.Get(aclPath(topic, identity))
	if err != nil {
		return nil
	}
	var e aclEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil
	}
	out := make([]Permission, 0, len(e.Permissions))
	for _, p := range e.Permissions {
		out = append(out, Permission(p))
	}
	return out
}

// TopicsFor returns the sorted topics on which the identity holds
// DESCRIBE, backing the GET /topics route.
func (a *ACLStore) TopicsFor(identity string) []string {
	var topics []string
	for _, path := range a.reg.List("/acls") {
		rest := strings.TrimPrefix(path, "/acls/")
		topic, id, ok := strings.Cut(rest, "/")
		if !ok || id != identity {
			continue
		}
		if a.Allowed(topic, identity, PermDescribe) {
			topics = append(topics, topic)
		}
	}
	sort.Strings(topics)
	return topics
}

// IdentitiesFor returns identities holding any grant on topic.
func (a *ACLStore) IdentitiesFor(topic string) []string {
	var ids []string
	for _, path := range a.reg.List("/acls/" + topic) {
		rest := strings.TrimPrefix(path, "/acls/"+topic+"/")
		if rest != "" && !strings.Contains(rest, "/") {
			ids = append(ids, rest)
		}
	}
	sort.Strings(ids)
	return ids
}
