package auth

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/vclock"
	"repro/internal/zk"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestRegisterIdentityIdempotent(t *testing.T) {
	s := NewService(nil, 0)
	a := s.RegisterIdentity("alice@uchicago.edu", "globus")
	b := s.RegisterIdentity("alice@uchicago.edu", "globus")
	if a.ID != b.ID {
		t.Fatalf("re-registration produced a new identity: %s vs %s", a.ID, b.ID)
	}
	got, err := s.Identity(a.ID)
	if err != nil || got.Username != "alice@uchicago.edu" {
		t.Fatalf("lookup: %+v, %v", got, err)
	}
}

func TestLoginIssuesScopedToken(t *testing.T) {
	s := NewService(nil, 0)
	s.RegisterIdentity("bob@anl.gov", "globus")
	tok, err := s.Login("bob@anl.gov", ScopeProduce)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.HasScope(ScopeProduce) || tok.HasScope(ScopeTopics) {
		t.Fatalf("scopes = %v", tok.Scopes)
	}
	back, err := s.Validate(tok.Value)
	if err != nil || back.Identity.Username != "bob@anl.gov" {
		t.Fatalf("validate: %+v, %v", back, err)
	}
}

func TestLoginUnknownUser(t *testing.T) {
	s := NewService(nil, 0)
	if _, err := s.Login("ghost@nowhere"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoginDefaultScopesAreAll(t *testing.T) {
	s := NewService(nil, 0)
	s.RegisterIdentity("u", "p")
	tok, err := s.Login("u")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tok.Scopes, AllScopes()) {
		t.Fatalf("scopes = %v", tok.Scopes)
	}
}

func TestTokenExpiry(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	s := NewService(clk, time.Hour)
	s.RegisterIdentity("u", "p")
	tok, err := s.Login("u")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	if _, err := s.Validate(tok.Value); !errors.Is(err, ErrExpiredToken) {
		t.Fatalf("err = %v, want expired", err)
	}
	// Refresh mints a live token.
	fresh, err := s.Refresh(tok.RefreshValue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Validate(fresh.Value); err != nil {
		t.Fatalf("refreshed token invalid: %v", err)
	}
	// The old refresh token is single-use.
	if _, err := s.Refresh(tok.RefreshValue); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("refresh reuse: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	s := NewService(nil, 0)
	s.RegisterIdentity("u", "p")
	tok, _ := s.Login("u")
	s.Revoke(tok.Value)
	if _, err := s.Validate(tok.Value); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestRequireScope(t *testing.T) {
	s := NewService(nil, 0)
	s.RegisterIdentity("u", "p")
	tok, _ := s.Login("u", ScopeConsume)
	if _, err := s.Require(tok.Value, ScopeConsume); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Require(tok.Value, ScopeTriggers); !errors.Is(err, ErrScope) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelegation(t *testing.T) {
	s := NewService(nil, 0)
	ident := s.RegisterIdentity("pi@lab.edu", "globus")
	parent, _ := s.Login("pi@lab.edu", ScopeProduce, ScopeTriggers)
	dep, err := s.Delegate(parent.Value, ScopeProduce)
	if err != nil {
		t.Fatal(err)
	}
	if dep.OnBehalfOf != ident.ID {
		t.Fatalf("OnBehalfOf = %q, want %q", dep.OnBehalfOf, ident.ID)
	}
	if dep.HasScope(ScopeTriggers) {
		t.Fatal("dependent token gained un-requested scope")
	}
	// Delegation cannot escalate beyond the parent's scopes.
	if _, err := s.Delegate(parent.Value, ScopeTopics); !errors.Is(err, ErrScope) {
		t.Fatalf("escalation: %v", err)
	}
}

func TestCreateKeyIdempotentAndAuthenticates(t *testing.T) {
	s := NewService(nil, 0)
	ident := s.RegisterIdentity("u", "p")
	k1, err := s.CreateKey(ident.ID)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.CreateKey(ident.ID)
	if k1.AccessKeyID != k2.AccessKeyID {
		t.Fatal("create_key is not idempotent")
	}
	got, err := s.Authenticate(k1.AccessKeyID, k1.Secret)
	if err != nil || got.ID != ident.ID {
		t.Fatalf("authenticate: %+v, %v", got, err)
	}
	if _, err := s.Authenticate(k1.AccessKeyID, "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("bad secret: %v", err)
	}
	if _, err := s.CreateKey("nobody"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown identity: %v", err)
	}
}

func TestRotateKeyInvalidatesOld(t *testing.T) {
	s := NewService(nil, 0)
	ident := s.RegisterIdentity("u", "p")
	old, _ := s.CreateKey(ident.ID)
	fresh, err := s.RotateKey(ident.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.AccessKeyID == old.AccessKeyID {
		t.Fatal("rotation returned the same key")
	}
	if _, err := s.Authenticate(old.AccessKeyID, old.Secret); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("old key still valid: %v", err)
	}
	if _, err := s.Authenticate(fresh.AccessKeyID, fresh.Secret); err != nil {
		t.Fatalf("new key invalid: %v", err)
	}
}

func TestACLGrantCheckRevoke(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	if err := a.Grant("topic1", "alice", PermRead, PermDescribe); err != nil {
		t.Fatal(err)
	}
	if err := a.Check("topic1", "alice", PermRead); err != nil {
		t.Fatal(err)
	}
	if err := a.Check("topic1", "alice", PermWrite); !errors.Is(err, ErrDenied) {
		t.Fatalf("write: %v", err)
	}
	if err := a.Check("topic1", "bob", PermRead); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob: %v", err)
	}
	if err := a.Revoke("topic1", "alice", PermRead); err != nil {
		t.Fatal(err)
	}
	if a.Allowed("topic1", "alice", PermRead) {
		t.Fatal("read survived revoke")
	}
	if !a.Allowed("topic1", "alice", PermDescribe) {
		t.Fatal("describe lost on partial revoke")
	}
}

func TestACLGrantDefaultsToAll(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	if err := a.Grant("t", "u"); err != nil {
		t.Fatal(err)
	}
	for _, p := range AllPermissions() {
		if !a.Allowed("t", "u", p) {
			t.Fatalf("missing %s", p)
		}
	}
}

func TestACLRevokeAllDeletesEntry(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	if err := a.Grant("t", "u"); err != nil {
		t.Fatal(err)
	}
	if err := a.Revoke("t", "u"); err != nil {
		t.Fatal(err)
	}
	if got := a.Permissions("t", "u"); got != nil {
		t.Fatalf("perms = %v", got)
	}
	// Revoking a non-existent grant is not an error.
	if err := a.Revoke("t", "nobody", PermRead); err != nil {
		t.Fatal(err)
	}
}

func TestACLTopicsFor(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	for _, topic := range []string{"zeta", "alpha", "mid"} {
		if err := a.Grant(topic, "u"); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Grant("hidden", "u", PermWrite); err != nil { // no DESCRIBE
		t.Fatal(err)
	}
	got := a.TopicsFor("u")
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("topics = %v, want %v", got, want)
	}
}

func TestACLIdentitiesFor(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	_ = a.Grant("t", "bob")
	_ = a.Grant("t", "alice")
	got := a.IdentitiesFor("t")
	if !reflect.DeepEqual(got, []string{"alice", "bob"}) {
		t.Fatalf("identities = %v", got)
	}
}

func TestACLRevokeAllForTopic(t *testing.T) {
	a := NewACLStore(zk.NewRegistry())
	_ = a.Grant("t", "a")
	_ = a.Grant("t", "b")
	a.RevokeAllForTopic("t")
	if len(a.IdentitiesFor("t")) != 0 {
		t.Fatal("grants survived topic release")
	}
}
