// Package auth implements the Octopus security model of §IV-C: an
// OAuth 2.0-style token service standing in for Globus Auth (identities
// from many providers, scoped access tokens, refresh tokens, and the
// delegation model via dependent tokens), plus IAM-style key/secret
// credentials for the event fabric, and topic ACLs whose source of truth
// lives in the ZooKeeper-equivalent registry.
package auth

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Errors returned by the token service.
var (
	// ErrInvalidToken reports an unknown, revoked, or malformed token.
	ErrInvalidToken = errors.New("auth: invalid token")
	// ErrExpiredToken reports a token past its lifetime.
	ErrExpiredToken = errors.New("auth: token expired")
	// ErrScope reports a token lacking a required scope.
	ErrScope = errors.New("auth: insufficient scope")
	// ErrUnknownIdentity reports an operation for an unregistered user.
	ErrUnknownIdentity = errors.New("auth: unknown identity")
	// ErrBadCredentials reports an IAM key/secret mismatch.
	ErrBadCredentials = errors.New("auth: bad credentials")
)

// Scopes understood by the Octopus web service.
const (
	// ScopeTopics allows topic provisioning and configuration.
	ScopeTopics = "octopus:topics"
	// ScopeTriggers allows trigger management.
	ScopeTriggers = "octopus:triggers"
	// ScopeProduce allows publishing events.
	ScopeProduce = "octopus:produce"
	// ScopeConsume allows consuming events.
	ScopeConsume = "octopus:consume"
)

// AllScopes lists every scope, granted by default on login.
func AllScopes() []string {
	return []string{ScopeTopics, ScopeTriggers, ScopeProduce, ScopeConsume}
}

// Identity is a principal known to the identity provider: a user, a
// service, or a trigger acting on a user's behalf.
type Identity struct {
	// ID is the stable unique identifier (like a Globus Auth UUID).
	ID string
	// Username is the human-readable name, e.g. "researcher@uchicago.edu".
	Username string
	// Provider names the identity provider that vouched for the user.
	Provider string
}

// Token is an issued OAuth-style access token.
type Token struct {
	// Value is the opaque bearer string presented on API calls.
	Value string
	// RefreshValue renews the token after expiry.
	RefreshValue string
	// Identity is the authenticated principal.
	Identity Identity
	// Scopes are the authorized scopes.
	Scopes []string
	// IssuedAt and ExpiresAt bound the token lifetime.
	IssuedAt  time.Time
	ExpiresAt time.Time
	// OnBehalfOf is non-empty for dependent (delegated) tokens: the
	// identity that authorized the delegation.
	OnBehalfOf string
}

// HasScope reports whether the token carries the scope.
func (t *Token) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Key is an IAM-style access key/secret pair mapped to an identity,
// returned by the OWS create_key route and presented by Kafka clients.
type Key struct {
	AccessKeyID string
	Secret      string
	Identity    string // identity ID
	CreatedAt   time.Time
}

// Service is the combined identity provider + IAM credential issuer.
type Service struct {
	mu         sync.Mutex
	clock      vclock.Clock
	lifetime   time.Duration
	identities map[string]Identity // by ID
	byName     map[string]string   // username -> ID
	tokens     map[string]*Token   // by access token value
	refresh    map[string]*Token   // by refresh token value
	keys       map[string]Key      // by access key id
	keyByIdent map[string]string   // identity -> access key id
	revoked    map[string]bool
}

// NewService creates a token service with the given token lifetime
// (48 h if zero, mirroring Globus Auth defaults).
func NewService(clock vclock.Clock, lifetime time.Duration) *Service {
	if clock == nil {
		clock = vclock.Real{}
	}
	if lifetime <= 0 {
		lifetime = 48 * time.Hour
	}
	return &Service{
		clock:      clock,
		lifetime:   lifetime,
		identities: make(map[string]Identity),
		byName:     make(map[string]string),
		tokens:     make(map[string]*Token),
		refresh:    make(map[string]*Token),
		keys:       make(map[string]Key),
		keyByIdent: make(map[string]string),
		revoked:    make(map[string]bool),
	}
}

// RegisterIdentity records a principal from an identity provider and
// returns its Identity. Registering the same username twice returns the
// existing identity (idempotent, per §IV-F).
func (s *Service) RegisterIdentity(username, provider string) Identity {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byName[username]; ok {
		return s.identities[id]
	}
	ident := Identity{ID: randomID("id"), Username: username, Provider: provider}
	s.identities[ident.ID] = ident
	s.byName[username] = ident.ID
	return ident
}

// Identity looks up a principal by ID.
func (s *Service) Identity(id string) (Identity, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ident, ok := s.identities[id]
	if !ok {
		return Identity{}, ErrUnknownIdentity
	}
	return ident, nil
}

// Login performs the authentication flow for a registered username and
// returns a bearer token with the requested scopes (all scopes if none
// given).
func (s *Service) Login(username string, scopes ...string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byName[username]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, username)
	}
	if len(scopes) == 0 {
		scopes = AllScopes()
	}
	return s.issueLocked(s.identities[id], scopes, ""), nil
}

// Delegate issues a dependent token: a token that lets the holder (for
// example a trigger's function runtime) act with the given scopes on
// behalf of the identity that owns parent. This is the Globus Auth
// delegation model the paper highlights (§IV-C item 3).
func (s *Service) Delegate(parent string, scopes ...string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tok, err := s.validateLocked(parent)
	if err != nil {
		return nil, err
	}
	for _, sc := range scopes {
		if !tok.HasScope(sc) {
			return nil, fmt.Errorf("%w: delegating %s", ErrScope, sc)
		}
	}
	if len(scopes) == 0 {
		scopes = tok.Scopes
	}
	return s.issueLocked(tok.Identity, scopes, tok.Identity.ID), nil
}

func (s *Service) issueLocked(ident Identity, scopes []string, onBehalfOf string) *Token {
	now := s.clock.Now()
	tok := &Token{
		Value:        randomID("tok"),
		RefreshValue: randomID("ref"),
		Identity:     ident,
		Scopes:       append([]string(nil), scopes...),
		IssuedAt:     now,
		ExpiresAt:    now.Add(s.lifetime),
		OnBehalfOf:   onBehalfOf,
	}
	s.tokens[tok.Value] = tok
	s.refresh[tok.RefreshValue] = tok
	return tok
}

// Validate checks a bearer token and returns it if live.
func (s *Service) Validate(value string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validateLocked(value)
}

func (s *Service) validateLocked(value string) (*Token, error) {
	tok, ok := s.tokens[value]
	if !ok || s.revoked[value] {
		return nil, ErrInvalidToken
	}
	if s.clock.Now().After(tok.ExpiresAt) {
		return nil, ErrExpiredToken
	}
	return tok, nil
}

// Require validates the token and checks it carries the scope.
func (s *Service) Require(value, scope string) (*Token, error) {
	tok, err := s.Validate(value)
	if err != nil {
		return nil, err
	}
	if !tok.HasScope(scope) {
		return nil, fmt.Errorf("%w: need %s", ErrScope, scope)
	}
	return tok, nil
}

// Refresh exchanges a refresh token for a new access token, the SDK's
// automatic token renewal path (§IV-E).
func (s *Service) Refresh(refreshValue string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.refresh[refreshValue]
	if !ok {
		return nil, ErrInvalidToken
	}
	delete(s.refresh, refreshValue)
	delete(s.tokens, old.Value)
	return s.issueLocked(old.Identity, old.Scopes, old.OnBehalfOf), nil
}

// Revoke invalidates an access token.
func (s *Service) Revoke(value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[value] = true
}

// CreateKey returns IAM-style credentials for the identity, creating them
// on first call and returning the same key thereafter (idempotent). This
// is the GET create_key route's backend.
func (s *Service) CreateKey(identityID string) (Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.identities[identityID]; !ok {
		return Key{}, ErrUnknownIdentity
	}
	if kid, ok := s.keyByIdent[identityID]; ok {
		return s.keys[kid], nil
	}
	k := Key{
		AccessKeyID: randomID("AKIA"),
		Secret:      randomID("sec"),
		Identity:    identityID,
		CreatedAt:   s.clock.Now(),
	}
	s.keys[k.AccessKeyID] = k
	s.keyByIdent[identityID] = k.AccessKeyID
	return k, nil
}

// RotateKey replaces the identity's key with a fresh one; the old key
// stops validating immediately.
func (s *Service) RotateKey(identityID string) (Key, error) {
	s.mu.Lock()
	if kid, ok := s.keyByIdent[identityID]; ok {
		delete(s.keys, kid)
		delete(s.keyByIdent, identityID)
	}
	s.mu.Unlock()
	return s.CreateKey(identityID)
}

// Authenticate validates an access key/secret pair and returns the
// identity it maps to — the broker-side SASL check.
func (s *Service) Authenticate(accessKeyID, secret string) (Identity, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.keys[accessKeyID]
	if !ok || subtleNeq(k.Secret, secret) {
		return Identity{}, ErrBadCredentials
	}
	return s.identities[k.Identity], nil
}

// subtleNeq compares secrets via hashes to keep timing uniform.
func subtleNeq(a, b string) bool {
	ha := sha256.Sum256([]byte(a))
	hb := sha256.Sum256([]byte(b))
	return ha != hb
}

func randomID(prefix string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("auth: crypto/rand unavailable: " + err.Error())
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}
