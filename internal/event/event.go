// Package event defines the Octopus event model.
//
// An event is the unit of communication in the Octopus fabric. Following
// §II of the paper, events carry a small envelope of routing metadata
// (topic, key, timestamp, headers) and an opaque payload. Scientific
// events may be much larger than conventional EDA events, so payloads are
// byte slices rather than fixed schemas, and a flexible JSON view is
// provided for trigger pattern matching.
package event

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Event is a single record flowing through the fabric.
//
// The zero value is a valid, empty event. Producers typically set Key,
// Value and Headers; the fabric assigns Topic, Partition, Offset and
// Timestamp on append.
type Event struct {
	// Topic is the topic the event was published to.
	Topic string
	// Partition is the partition within the topic.
	Partition int
	// Offset is the position within the partition. Offsets are dense and
	// strictly increasing within a partition.
	Offset int64
	// Key is an optional routing key. Events with equal keys map to the
	// same partition and are therefore totally ordered w.r.t. each other.
	Key []byte
	// Value is the event payload.
	Value []byte
	// Timestamp is the broker-assigned append time.
	Timestamp time.Time
	// Headers carry application metadata (experiment ids, provenance...).
	Headers map[string]string
}

// Size returns the wire size of the event in bytes: key + value + headers.
// It is the quantity the capacity model and quota accounting charge for.
func (e *Event) Size() int {
	n := len(e.Key) + len(e.Value)
	for k, v := range e.Headers {
		n += len(k) + len(v)
	}
	return n
}

// Clone returns a deep copy of the event. The fabric clones events at the
// produce boundary so that producer-side reuse of buffers cannot corrupt
// stored records.
func (e *Event) Clone() Event {
	c := *e
	if e.Key != nil {
		c.Key = append([]byte(nil), e.Key...)
	}
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	if e.Headers != nil {
		c.Headers = make(map[string]string, len(e.Headers))
		for k, v := range e.Headers {
			c.Headers[k] = v
		}
	}
	return c
}

// JSON decodes the payload as a JSON document, the form consumed by the
// trigger pattern language. It returns an error if the payload is not
// valid JSON.
func (e *Event) JSON() (map[string]any, error) {
	var m map[string]any
	if err := json.Unmarshal(e.Value, &m); err != nil {
		return nil, fmt.Errorf("event: payload is not a JSON object: %w", err)
	}
	return m, nil
}

// New creates an event with the given key and a JSON-encoded payload.
// It panics only if v cannot be marshaled, which indicates a programming
// error (e.g. a channel in the payload).
func New(key string, v any) Event {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("event: cannot marshal payload: %v", err))
	}
	var k []byte
	if key != "" {
		k = []byte(key)
	}
	return Event{Key: k, Value: b}
}

// Marshal encodes the event into a compact binary form used by the wire
// protocol and the on-disk log. Layout (big endian):
//
//	u32 keyLen  | key bytes
//	u32 valLen  | value bytes
//	i64 unix-nano timestamp
//	u32 headerCount | (u32 kLen, k, u32 vLen, v)*
//
// Topic/partition/offset are contextual and carried by the container.
func (e *Event) Marshal() []byte {
	return e.AppendMarshal(make([]byte, 0, e.MarshaledSize()))
}

// MarshaledSize returns the exact encoded size of the event, letting
// batch encoders size one buffer for a whole batch up front.
func (e *Event) MarshaledSize() int {
	n := 4 + len(e.Key) + 4 + len(e.Value) + 8 + 4
	for k, v := range e.Headers {
		n += 8 + len(k) + len(v)
	}
	return n
}

// AppendMarshal appends the binary encoding to buf and returns the
// extended slice, so batch encoders reuse one growing buffer instead of
// allocating per event.
func (e *Event) AppendMarshal(buf []byte) []byte {
	buf = appendBytes(buf, e.Key)
	buf = appendBytes(buf, e.Value)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Timestamp.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Headers)))
	for k, v := range e.Headers {
		buf = appendBytes(buf, []byte(k))
		buf = appendBytes(buf, []byte(v))
	}
	return buf
}

// ErrTruncated reports a malformed or truncated binary event.
var ErrTruncated = errors.New("event: truncated record")

// Unmarshal decodes an event encoded by Marshal. It returns the number of
// bytes consumed so that records can be decoded from a concatenated batch.
// Key and Value are copied out of b, so the caller may reuse the buffer.
func Unmarshal(b []byte) (Event, int, error) {
	return unmarshal(b, true)
}

func unmarshal(b []byte, copyBytes bool) (Event, int, error) {
	read := readBytesZC
	if copyBytes {
		read = readBytes
	}
	var e Event
	pos := 0
	key, n, err := read(b[pos:])
	if err != nil {
		return e, 0, err
	}
	pos += n
	val, n, err := read(b[pos:])
	if err != nil {
		return e, 0, err
	}
	pos += n
	if len(b[pos:]) < 12 {
		return e, 0, ErrTruncated
	}
	ts := int64(binary.BigEndian.Uint64(b[pos:]))
	pos += 8
	hc := int(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	var headers map[string]string
	if hc > 0 {
		headers = make(map[string]string, hc)
		for i := 0; i < hc; i++ {
			// Header bytes become strings (their own copies) either way,
			// so the zero-copy reader is always safe here.
			k, n, err := readBytesZC(b[pos:])
			if err != nil {
				return e, 0, err
			}
			pos += n
			v, n, err := readBytesZC(b[pos:])
			if err != nil {
				return e, 0, err
			}
			pos += n
			headers[string(k)] = string(v)
		}
	}
	if len(key) == 0 {
		key = nil
	}
	e = Event{Key: key, Value: val, Timestamp: time.Unix(0, ts), Headers: headers}
	return e, pos, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func readBytes(b []byte) ([]byte, int, error) {
	if len(b) < 4 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, 0, ErrTruncated
	}
	if n == 0 {
		return nil, 4, nil
	}
	return append([]byte(nil), b[4:4+n]...), 4 + n, nil
}

// readBytesZC is readBytes without the defensive copy: the returned slice
// aliases b. Used by the batch decode path, where the caller owns the
// buffer for the lifetime of the decoded events.
func readBytesZC(b []byte) ([]byte, int, error) {
	if len(b) < 4 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, 0, ErrTruncated
	}
	if n == 0 {
		return nil, 4, nil
	}
	return b[4 : 4+n : 4+n], 4 + n, nil
}

// AppendBatchMarshal encodes evs back-to-back into one buffer sized
// exactly once — the wire payload form.
func AppendBatchMarshal(buf []byte, evs []Event) []byte {
	total := 0
	for i := range evs {
		total += evs[i].MarshaledSize()
	}
	if cap(buf)-len(buf) < total {
		grown := make([]byte, len(buf), len(buf)+total)
		copy(grown, buf)
		buf = grown
	}
	for i := range evs {
		buf = evs[i].AppendMarshal(buf)
	}
	return buf
}

// UnmarshalBatch decodes n concatenated records from b into one slice.
// The decoded Key/Value fields alias b — b is the batch arena — so the
// caller must not modify b afterwards. It returns the events and the
// total bytes consumed. This is the fetch-side mirror of the broker's
// produce arena: one events slice and zero per-field copies regardless
// of batch size.
func UnmarshalBatch(b []byte, n int) ([]Event, int, error) {
	return AppendUnmarshalBatch(make([]Event, 0, n), b, n)
}

// AppendUnmarshalBatch is UnmarshalBatch decoding into dst (appending,
// reusing its capacity), so a steady-state consumer can poll with zero
// slice allocations: the fetch session hands the same slice back every
// poll. The aliasing contract is UnmarshalBatch's: decoded Key/Value
// fields alias b for as long as the returned events are live.
func AppendUnmarshalBatch(dst []Event, b []byte, n int) ([]Event, int, error) {
	pos := 0
	for i := 0; i < n; i++ {
		ev, sz, err := unmarshal(b[pos:], false)
		if err != nil {
			return nil, 0, fmt.Errorf("event: record %d of %d: %w", i, n, err)
		}
		pos += sz
		dst = append(dst, ev)
	}
	return dst, pos, nil
}
