package event

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func batchOf(n int) []Event {
	ts := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			Key:       []byte{byte('a' + i)},
			Value:     bytes.Repeat([]byte{byte(i)}, 10+i),
			Timestamp: ts.Add(time.Duration(i) * time.Second),
		}
	}
	out[0].Headers = map[string]string{"experiment": "e-1"}
	return out
}

func TestAppendBatchMarshalMatchesPerEventMarshal(t *testing.T) {
	evs := batchOf(5)
	var want []byte
	for i := range evs {
		want = append(want, evs[i].Marshal()...)
	}
	got := AppendBatchMarshal(nil, evs)
	if !bytes.Equal(got, want) {
		t.Fatal("batch encoding differs from concatenated per-event encoding")
	}
	// Appending onto an existing prefix preserves it.
	got2 := AppendBatchMarshal([]byte("prefix"), evs)
	if string(got2[:6]) != "prefix" || !bytes.Equal(got2[6:], want) {
		t.Fatal("batch encoding clobbered the prefix")
	}
}

func TestUnmarshalBatchRoundTrip(t *testing.T) {
	evs := batchOf(6)
	buf := AppendBatchMarshal(nil, evs)
	got, n, err := UnmarshalBatch(buf, len(evs))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if !bytes.Equal(got[i].Key, evs[i].Key) || !bytes.Equal(got[i].Value, evs[i].Value) {
			t.Fatalf("event %d: key/value mismatch", i)
		}
		if !got[i].Timestamp.Equal(evs[i].Timestamp) {
			t.Fatalf("event %d: timestamp %v != %v", i, got[i].Timestamp, evs[i].Timestamp)
		}
	}
	if got[0].Headers["experiment"] != "e-1" {
		t.Fatalf("headers = %v", got[0].Headers)
	}
}

func TestUnmarshalBatchAliasesArena(t *testing.T) {
	evs := []Event{{Key: []byte("k"), Value: []byte("hello")}}
	buf := AppendBatchMarshal(nil, evs)
	got, _, err := UnmarshalBatch(buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded value aliases the arena — that is the documented
	// zero-copy contract the fetch path relies on.
	buf[bytes.Index(buf, []byte("hello"))] = 'H'
	if string(got[0].Value) != "Hello" {
		t.Fatalf("decoded value does not alias the batch arena: %q", got[0].Value)
	}
}

func TestUnmarshalBatchTruncated(t *testing.T) {
	evs := batchOf(3)
	buf := AppendBatchMarshal(nil, evs)
	if _, _, err := UnmarshalBatch(buf[:len(buf)-3], 3); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if _, _, err := UnmarshalBatch(buf, 4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated (count past payload)", err)
	}
}

func TestUnmarshalStillCopies(t *testing.T) {
	evs := []Event{{Key: []byte("k"), Value: []byte("hello")}}
	buf := AppendBatchMarshal(nil, evs)
	got, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[bytes.Index(buf, []byte("hello"))] = 'H'
	if string(got.Value) != "hello" {
		t.Fatalf("single-record Unmarshal must copy (got %q)", got.Value)
	}
}
