package event

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestNewJSONRoundTrip(t *testing.T) {
	ev := New("k1", map[string]any{"event_type": "created", "size": 42.0})
	if string(ev.Key) != "k1" {
		t.Fatalf("key = %q, want k1", ev.Key)
	}
	doc, err := ev.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if doc["event_type"] != "created" || doc["size"] != 42.0 {
		t.Fatalf("decoded doc = %v", doc)
	}
}

func TestNewEmptyKey(t *testing.T) {
	ev := New("", map[string]any{"a": 1})
	if ev.Key != nil {
		t.Fatalf("empty key should produce nil Key, got %q", ev.Key)
	}
}

func TestJSONInvalidPayload(t *testing.T) {
	ev := Event{Value: []byte("not json")}
	if _, err := ev.JSON(); err == nil {
		t.Fatal("want error for non-JSON payload")
	}
}

func TestSizeCountsKeyValueHeaders(t *testing.T) {
	ev := Event{
		Key:     []byte("abc"),
		Value:   []byte("0123456789"),
		Headers: map[string]string{"hk": "hv12"},
	}
	want := 3 + 10 + 2 + 4
	if got := ev.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ev := Event{
		Key:     []byte("key"),
		Value:   []byte("val"),
		Headers: map[string]string{"a": "b"},
	}
	c := ev.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'X'
	c.Headers["a"] = "mutated"
	if ev.Key[0] != 'k' || ev.Value[0] != 'v' || ev.Headers["a"] != "b" {
		t.Fatal("Clone shares memory with original")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	ev := Event{
		Key:       []byte("route-7"),
		Value:     []byte(`{"instrument":"xrd-2","action":"scan"}`),
		Timestamp: time.Unix(1700000000, 12345),
		Headers:   map[string]string{"experiment": "e-99", "site": "anl"},
	}
	buf := ev.Marshal()
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !bytes.Equal(got.Key, ev.Key) || !bytes.Equal(got.Value, ev.Value) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, ev)
	}
	if !got.Timestamp.Equal(ev.Timestamp) {
		t.Fatalf("timestamp mismatch: %v vs %v", got.Timestamp, ev.Timestamp)
	}
	if !reflect.DeepEqual(got.Headers, ev.Headers) {
		t.Fatalf("headers mismatch: %v vs %v", got.Headers, ev.Headers)
	}
}

func TestUnmarshalConcatenatedRecords(t *testing.T) {
	a := Event{Value: []byte("first"), Timestamp: time.Unix(1, 0)}
	b := Event{Key: []byte("k"), Value: []byte("second"), Timestamp: time.Unix(2, 0)}
	buf := append(a.Marshal(), b.Marshal()...)
	gotA, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	gotB, m, err := Unmarshal(buf[n:])
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d, want %d", n+m, len(buf))
	}
	if string(gotA.Value) != "first" || string(gotB.Value) != "second" {
		t.Fatalf("values: %q %q", gotA.Value, gotB.Value)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	ev := Event{Key: []byte("abc"), Value: []byte("defghij"), Headers: map[string]string{"x": "y"}}
	buf := ev.Marshal()
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(key, value []byte, ts int64) bool {
		ev := Event{Key: key, Value: value, Timestamp: time.Unix(0, ts)}
		got, n, err := Unmarshal(ev.Marshal())
		if err != nil || n != len(ev.Marshal()) {
			return false
		}
		if len(key) == 0 {
			if got.Key != nil {
				return false
			}
		} else if !bytes.Equal(got.Key, key) {
			return false
		}
		return bytes.Equal(got.Value, value) && got.Timestamp.UnixNano() == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnUnmarshalable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unmarshalable payload")
		}
	}()
	New("k", make(chan int))
}

func TestJSONNumbersDecodeAsFloat(t *testing.T) {
	ev := New("", map[string]any{"n": 3})
	doc, err := ev.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["n"].(float64); !ok {
		t.Fatalf("want float64, got %T", doc["n"])
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(ev.Value, &raw); err != nil {
		t.Fatal(err)
	}
}
