package zk

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateGetDelete(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("/a/b", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, ver, err := r.Get("/a/b")
	if err != nil || string(data) != "v1" || ver != 1 {
		t.Fatalf("get: %q v%d err=%v", data, ver, err)
	}
	if err := r.Create("/a/b", []byte("dup")); !errors.Is(err, ErrExists) {
		t.Fatalf("dup create: %v", err)
	}
	if err := r.Delete("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := r.Delete("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPathNormalization(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("x/y", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("/x/y"); err != nil {
		t.Fatalf("normalized get: %v", err)
	}
	if _, _, err := r.Get("/x/y/"); err != nil {
		t.Fatalf("trailing slash get: %v", err)
	}
}

func TestSetIncrementsVersion(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("/n", []byte("a")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Set("/n", []byte("b"))
	if err != nil || v != 2 {
		t.Fatalf("set: v=%d err=%v", v, err)
	}
	if _, err := r.Set("/missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("set missing: %v", err)
	}
}

func TestCompareAndSet(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("/cas", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CompareAndSet("/cas", []byte("b"), 99); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale cas: %v", err)
	}
	v, err := r.CompareAndSet("/cas", []byte("b"), 1)
	if err != nil || v != 2 {
		t.Fatalf("cas: v=%d err=%v", v, err)
	}
	data, _, _ := r.Get("/cas")
	if string(data) != "b" {
		t.Fatalf("data = %q", data)
	}
}

func TestCASSerializesConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("/ctr", []byte("0")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for {
					data, ver, err := r.Get("/ctr")
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(string(data), "%d", &n)
					_, err = r.CompareAndSet("/ctr", []byte(fmt.Sprintf("%d", n+1)), ver)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBadVersion) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	data, _, _ := r.Get("/ctr")
	var n int
	fmt.Sscanf(string(data), "%d", &n)
	if n != writers*perWriter {
		t.Fatalf("counter = %d, want %d (lost updates)", n, writers*perWriter)
	}
}

func TestChildrenAndList(t *testing.T) {
	r := NewRegistry()
	for _, p := range []string{"/t/b", "/t/a", "/t/c/deep", "/other"} {
		if err := r.Create(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Children("/t"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("children = %v", got)
	}
	if got := r.List("/t"); len(got) != 3 {
		t.Fatalf("list = %v", got)
	}
	if got := r.Children("/none"); len(got) != 0 {
		t.Fatalf("children of missing = %v", got)
	}
}

func TestWatchDeliversCreateChangeDelete(t *testing.T) {
	r := NewRegistry()
	ch := r.Watch("/w")
	if err := r.Create("/w", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Set("/w", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("/w"); err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventCreated, EventChanged, EventDeleted}
	for i, w := range want {
		ev := <-ch
		if ev.Type != w || ev.Path != "/w" {
			t.Fatalf("event %d = %+v, want type %v", i, ev, w)
		}
	}
}

func TestWatchChildrenSeesSubtree(t *testing.T) {
	r := NewRegistry()
	ch := r.WatchChildren("/topics")
	if err := r.Create("/topics/t1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.Path != "/topics/t1" || ev.Type != EventCreated {
		t.Fatalf("event = %+v", ev)
	}
	// Unrelated paths do not notify.
	if err := r.Create("/acls/t1", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestEphemeralNodesDieWithSession(t *testing.T) {
	r := NewRegistry()
	s := r.NewSession()
	if err := r.CreateEphemeral("/brokers/1", []byte("b1"), s); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateEphemeral("/brokers/2", []byte("b2"), s); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("/brokers/1") {
		t.Fatal("ephemeral node missing")
	}
	ch := r.Watch("/brokers/1")
	r.ExpireSession(s)
	if r.Exists("/brokers/1") || r.Exists("/brokers/2") {
		t.Fatal("ephemeral nodes survived session expiry")
	}
	ev := <-ch
	if ev.Type != EventDeleted {
		t.Fatalf("watch saw %+v, want delete", ev)
	}
}

func TestEphemeralWithDeadSession(t *testing.T) {
	r := NewRegistry()
	if err := r.CreateEphemeral("/x", nil, 42); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestSetOrCreateUpserts(t *testing.T) {
	r := NewRegistry()
	if v := r.SetOrCreate("/u", []byte("a")); v != 1 {
		t.Fatalf("create version = %d", v)
	}
	if v := r.SetOrCreate("/u", []byte("b")); v != 2 {
		t.Fatalf("update version = %d", v)
	}
	data, _, _ := r.Get("/u")
	if string(data) != "b" {
		t.Fatalf("data = %q", data)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := NewRegistry()
	if err := r.Create("/c", []byte("orig")); err != nil {
		t.Fatal(err)
	}
	data, _, _ := r.Get("/c")
	data[0] = 'X'
	again, _, _ := r.Get("/c")
	if string(again) != "orig" {
		t.Fatal("Get exposed internal buffer")
	}
}

// TestRegistryModelProperty drives random operation sequences against
// the registry and an oracle map, checking observable equivalence.
func TestRegistryModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		r := NewRegistry()
		oracle := map[string]string{}
		paths := []string{"/a", "/a/b", "/c", "/c/d/e"}
		for i, op := range ops {
			path := paths[int(op)%len(paths)]
			val := fmt.Sprintf("v%d", i)
			switch (op / 4) % 3 {
			case 0: // create
				err := r.Create(path, []byte(val))
				_, exists := oracle[path]
				if exists != (err != nil) {
					return false
				}
				if err == nil {
					oracle[path] = val
				}
			case 1: // set-or-create
				r.SetOrCreate(path, []byte(val))
				oracle[path] = val
			case 2: // delete
				err := r.Delete(path)
				_, exists := oracle[path]
				if exists == (err != nil) {
					return false
				}
				delete(oracle, path)
			}
			// Observable state must match the oracle.
			for _, p := range paths {
				data, _, err := r.Get(p)
				want, exists := oracle[p]
				if exists != (err == nil) {
					return false
				}
				if exists && string(data) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
