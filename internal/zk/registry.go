// Package zk implements the coordination substrate Octopus relies on: a
// strongly consistent, versioned, hierarchical key-value registry with
// watches and ephemeral (session-bound) nodes — the role Apache
// ZooKeeper plays for AWS MSK in the paper (§IV-C, §IV-F). The cluster
// controller stores topic metadata and access-control lists here; it is
// the "source of truth about which topics are owned by which identities".
//
// All mutations are serialized through a single mutex, giving
// linearizable semantics; the paper notes ownership updates are
// infrequent so this is not a bottleneck.
package zk

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// Errors returned by registry operations.
var (
	// ErrNotFound reports a missing node.
	ErrNotFound = errors.New("zk: node not found")
	// ErrExists reports a create over an existing node.
	ErrExists = errors.New("zk: node already exists")
	// ErrBadVersion reports a compare-and-set version mismatch.
	ErrBadVersion = errors.New("zk: version mismatch")
	// ErrNoSession reports an ephemeral create with an expired session.
	ErrNoSession = errors.New("zk: session expired")
)

// EventType classifies a watch notification.
type EventType int

// Watch notification kinds.
const (
	EventCreated EventType = iota
	EventChanged
	EventDeleted
)

func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventChanged:
		return "changed"
	case EventDeleted:
		return "deleted"
	}
	return "unknown"
}

// WatchEvent is delivered to watchers when a node changes.
type WatchEvent struct {
	Type    EventType
	Path    string
	Data    []byte
	Version int64
}

type node struct {
	data      []byte
	version   int64
	ephemeral int64 // owning session id, 0 if persistent
}

// Registry is the in-memory coordination store.
type Registry struct {
	mu       sync.Mutex
	nodes    map[string]*node
	watches  map[string][]chan WatchEvent // exact-path watches
	children map[string][]chan WatchEvent // child watches on a prefix
	sessions map[int64]map[string]bool
	nextSess int64
	closed   bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		nodes:    make(map[string]*node),
		watches:  make(map[string][]chan WatchEvent),
		children: make(map[string][]chan WatchEvent),
		sessions: make(map[int64]map[string]bool),
	}
}

func clean(path string) string {
	path = strings.TrimRight(path, "/")
	if path == "" {
		return "/"
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return path
}

// Create stores a new node. It fails with ErrExists if the path is taken.
func (r *Registry) Create(path string, data []byte) error {
	return r.create(path, data, 0)
}

// CreateEphemeral stores a node bound to a session: when the session
// expires, the node is deleted and watchers notified. This is how broker
// liveness is tracked by the controller.
func (r *Registry) CreateEphemeral(path string, data []byte, session int64) error {
	return r.create(path, data, session)
}

func (r *Registry) create(path string, data []byte, session int64) error {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[path]; ok {
		return ErrExists
	}
	if session != 0 {
		owned, ok := r.sessions[session]
		if !ok {
			return ErrNoSession
		}
		owned[path] = true
	}
	r.nodes[path] = &node{data: append([]byte(nil), data...), version: 1, ephemeral: session}
	r.notifyLocked(path, WatchEvent{Type: EventCreated, Path: path, Data: append([]byte(nil), data...), Version: 1})
	return nil
}

// Get returns the node's data and version.
func (r *Registry) Get(path string) ([]byte, int64, error) {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[path]
	if !ok {
		return nil, 0, ErrNotFound
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Set replaces a node's data unconditionally and returns the new version.
func (r *Registry) Set(path string, data []byte) (int64, error) {
	return r.set(path, data, -1)
}

// CompareAndSet replaces the data only if the stored version matches.
func (r *Registry) CompareAndSet(path string, data []byte, version int64) (int64, error) {
	return r.set(path, data, version)
}

func (r *Registry) set(path string, data []byte, version int64) (int64, error) {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[path]
	if !ok {
		return 0, ErrNotFound
	}
	if version >= 0 && n.version != version {
		return 0, ErrBadVersion
	}
	n.data = append([]byte(nil), data...)
	n.version++
	r.notifyLocked(path, WatchEvent{Type: EventChanged, Path: path, Data: append([]byte(nil), data...), Version: n.version})
	return n.version, nil
}

// SetOrCreate upserts a node, creating it if absent.
func (r *Registry) SetOrCreate(path string, data []byte) int64 {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[path]
	if !ok {
		r.nodes[path] = &node{data: append([]byte(nil), data...), version: 1}
		r.notifyLocked(path, WatchEvent{Type: EventCreated, Path: path, Data: append([]byte(nil), data...), Version: 1})
		return 1
	}
	n.data = append([]byte(nil), data...)
	n.version++
	r.notifyLocked(path, WatchEvent{Type: EventChanged, Path: path, Data: append([]byte(nil), data...), Version: n.version})
	return n.version
}

// Delete removes a node.
func (r *Registry) Delete(path string) error {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deleteLocked(path)
}

func (r *Registry) deleteLocked(path string) error {
	n, ok := r.nodes[path]
	if !ok {
		return ErrNotFound
	}
	delete(r.nodes, path)
	if n.ephemeral != 0 {
		if owned, ok := r.sessions[n.ephemeral]; ok {
			delete(owned, path)
		}
	}
	r.notifyLocked(path, WatchEvent{Type: EventDeleted, Path: path, Version: n.version})
	return nil
}

// Children returns the sorted immediate child names under a path.
func (r *Registry) Children(path string) []string {
	path = clean(path)
	prefix := path
	if prefix != "/" {
		prefix += "/"
	} else {
		prefix = "/"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for p := range r.nodes {
		if !strings.HasPrefix(p, prefix) || p == path {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		name, _, _ := strings.Cut(rest, "/")
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns all paths with the given prefix, sorted.
func (r *Registry) List(prefix string) []string {
	prefix = clean(prefix)
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for p := range r.nodes {
		if p == prefix || strings.HasPrefix(p, prefix+"/") || prefix == "/" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Watch registers for change notifications on an exact path. The channel
// is buffered; notifications that overflow the buffer are dropped, so
// watchers should treat events as hints and re-read state.
func (r *Registry) Watch(path string) <-chan WatchEvent {
	path = clean(path)
	ch := make(chan WatchEvent, 64)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watches[path] = append(r.watches[path], ch)
	return ch
}

// WatchChildren registers for notifications on any path under prefix.
func (r *Registry) WatchChildren(prefix string) <-chan WatchEvent {
	prefix = clean(prefix)
	ch := make(chan WatchEvent, 64)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.children[prefix] = append(r.children[prefix], ch)
	return ch
}

func (r *Registry) notifyLocked(path string, ev WatchEvent) {
	for _, ch := range r.watches[path] {
		select {
		case ch <- ev:
		default:
		}
	}
	for prefix, chans := range r.children {
		if prefix == "/" || strings.HasPrefix(path, prefix+"/") || path == prefix {
			for _, ch := range chans {
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}
}

// NewSession opens a session for ephemeral nodes and returns its id.
func (r *Registry) NewSession() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSess++
	id := r.nextSess
	r.sessions[id] = make(map[string]bool)
	return id
}

// ExpireSession removes the session and deletes its ephemeral nodes,
// simulating a broker losing its ZooKeeper connection.
func (r *Registry) ExpireSession(id int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	owned, ok := r.sessions[id]
	if !ok {
		return
	}
	delete(r.sessions, id)
	paths := make([]string, 0, len(owned))
	for p := range owned {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		// deleteLocked ignores already-removed nodes.
		_ = r.deleteLocked(p)
	}
}

// Exists reports whether the path is present.
func (r *Registry) Exists(path string) bool {
	path = clean(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.nodes[path]
	return ok
}
