package ows

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/trigger"
)

type fixture struct {
	fabric *broker.Fabric
	rt     *trigger.Runtime
	srv    *httptest.Server
	token  string
	ident  string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	rt := trigger.NewRuntime(f)
	rt.RegisterAction("noop", func(*trigger.Invocation) error { return nil })
	srv := httptest.NewServer(NewServer(f, rt))
	t.Cleanup(srv.Close)
	t.Cleanup(rt.StopAll)
	ident := f.Auth.RegisterIdentity("alice@uchicago.edu", "globus")
	tok, err := f.Auth.Login("alice@uchicago.edu")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{fabric: f, rt: rt, srv: srv, token: tok.Value, ident: ident.ID}
}

// call performs an authenticated request and decodes the JSON response.
func (fx *fixture) call(t *testing.T, method, path string, body any, token string) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, fx.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestMissingTokenRejected(t *testing.T) {
	fx := newFixture(t)
	code, _ := fx.call(t, "GET", "/topics", nil, "")
	if code != http.StatusUnauthorized {
		t.Fatalf("code = %d", code)
	}
	code, _ = fx.call(t, "GET", "/topics", nil, "tok-garbage")
	if code != http.StatusUnauthorized {
		t.Fatalf("garbage token code = %d", code)
	}
}

func TestTopicLifecycle(t *testing.T) {
	fx := newFixture(t)
	// PUT /topic/<topic> registers and grants RWD.
	code, body := fx.call(t, "PUT", "/topic/instrument", TopicConfigRequest{Partitions: 4}, fx.token)
	if code != http.StatusOK {
		t.Fatalf("create: %d %v", code, body)
	}
	if body["partitions"].(float64) != 4 {
		t.Fatalf("partitions = %v", body["partitions"])
	}
	perms := body["permissions"].([]any)
	if len(perms) != 3 {
		t.Fatalf("creator permissions = %v", perms)
	}
	// Idempotent retry.
	code, _ = fx.call(t, "PUT", "/topic/instrument", TopicConfigRequest{Partitions: 4}, fx.token)
	if code != http.StatusOK {
		t.Fatalf("retry: %d", code)
	}
	// GET /topics lists it.
	code, body = fx.call(t, "GET", "/topics", nil, fx.token)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	topics := body["topics"].([]any)
	if len(topics) != 1 || topics[0] != "instrument" {
		t.Fatalf("topics = %v", topics)
	}
	// GET /topic/<topic> describes it.
	code, body = fx.call(t, "GET", "/topic/instrument", nil, fx.token)
	if code != http.StatusOK || body["name"] != "instrument" {
		t.Fatalf("describe: %d %v", code, body)
	}
	// POST /topic/<topic> updates retention.
	code, body = fx.call(t, "POST", "/topic/instrument", TopicConfigRequest{RetentionHours: 48}, fx.token)
	if code != http.StatusOK || body["retention_hours"].(float64) != 48 {
		t.Fatalf("config: %d %v", code, body)
	}
	// POST /topic/<topic>/partitions grows partitions.
	code, body = fx.call(t, "POST", "/topic/instrument/partitions", PartitionsRequest{Partitions: 8}, fx.token)
	if code != http.StatusOK || body["partitions"].(float64) != 8 {
		t.Fatalf("partitions: %d %v", code, body)
	}
	// Shrinking fails with 400.
	code, _ = fx.call(t, "POST", "/topic/instrument/partitions", PartitionsRequest{Partitions: 2}, fx.token)
	if code != http.StatusBadRequest {
		t.Fatalf("shrink: %d", code)
	}
	// DELETE removes it.
	code, _ = fx.call(t, "DELETE", "/topic/instrument", nil, fx.token)
	if code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	code, _ = fx.call(t, "GET", "/topic/instrument", nil, fx.token)
	if code != http.StatusForbidden && code != http.StatusNotFound {
		t.Fatalf("after delete: %d", code)
	}
}

func TestTopicOwnershipEnforced(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/mine", nil, fx.token)
	// A second user cannot reconfigure or see the topic.
	fx.fabric.Auth.RegisterIdentity("bob@anl.gov", "globus")
	btok, _ := fx.fabric.Auth.Login("bob@anl.gov")
	code, _ := fx.call(t, "GET", "/topic/mine", nil, btok.Value)
	if code != http.StatusForbidden {
		t.Fatalf("foreign describe: %d", code)
	}
	code, _ = fx.call(t, "POST", "/topic/mine", TopicConfigRequest{RetentionHours: 1}, btok.Value)
	if code != http.StatusForbidden {
		t.Fatalf("foreign config: %d", code)
	}
	// Creating a topic that exists under another owner conflicts.
	code, _ = fx.call(t, "PUT", "/topic/mine", nil, btok.Value)
	if code != http.StatusConflict {
		t.Fatalf("foreign create: %d", code)
	}
}

func TestUserGrantAndRevoke(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/shared", nil, fx.token)
	bob := fx.fabric.Auth.RegisterIdentity("bob@anl.gov", "globus")
	btok, _ := fx.fabric.Auth.Login("bob@anl.gov")
	// Grant bob READ+DESCRIBE.
	code, body := fx.call(t, "POST", "/topic/shared/user",
		UserGrantRequest{Identity: bob.ID, Permissions: []string{"READ", "DESCRIBE"}}, fx.token)
	if code != http.StatusOK {
		t.Fatalf("grant: %d %v", code, body)
	}
	// Bob can now describe.
	code, _ = fx.call(t, "GET", "/topic/shared", nil, btok.Value)
	if code != http.StatusOK {
		t.Fatalf("bob describe after grant: %d", code)
	}
	// And consume, but not produce.
	if !fx.fabric.ACL.Allowed("shared", bob.ID, "READ") {
		t.Fatal("READ not granted")
	}
	if fx.fabric.ACL.Allowed("shared", bob.ID, "WRITE") {
		t.Fatal("WRITE over-granted")
	}
	// Revoke.
	code, _ = fx.call(t, "POST", "/topic/shared/user",
		UserGrantRequest{Identity: bob.ID, Revoke: true}, fx.token)
	if code != http.StatusOK {
		t.Fatalf("revoke: %d", code)
	}
	if fx.fabric.ACL.Allowed("shared", bob.ID, "READ") {
		t.Fatal("grant survived revoke")
	}
}

func TestCreateKeyRoute(t *testing.T) {
	fx := newFixture(t)
	code, body := fx.call(t, "GET", "/create_key", nil, fx.token)
	if code != http.StatusOK {
		t.Fatalf("create_key: %d %v", code, body)
	}
	keyID := body["access_key_id"].(string)
	secret := body["secret_access_key"].(string)
	if keyID == "" || secret == "" {
		t.Fatalf("empty credentials: %v", body)
	}
	// Idempotent: same key on repeat.
	_, body2 := fx.call(t, "GET", "/create_key", nil, fx.token)
	if body2["access_key_id"] != keyID {
		t.Fatal("create_key not idempotent")
	}
	// The key authenticates to the fabric as the same identity.
	ident, err := fx.fabric.Auth.Authenticate(keyID, secret)
	if err != nil || ident.ID != fx.ident {
		t.Fatalf("authenticate: %+v, %v", ident, err)
	}
}

func TestTriggerRoutes(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/fs", nil, fx.token)
	// Deploy (Listing 1 pattern).
	code, body := fx.call(t, "PUT", "/trigger", TriggerRequest{
		ID: "transfer", Topic: "fs", Action: "noop",
		Pattern:       `{"value": {"event_type": ["created"]}}`,
		BatchSize:     50,
		BatchWindowMs: 1,
	}, fx.token)
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %v", code, body)
	}
	if body["batch_size"].(float64) != 50 {
		t.Fatalf("batch = %v", body["batch_size"])
	}
	// Duplicate deploy conflicts.
	code, _ = fx.call(t, "PUT", "/trigger", TriggerRequest{ID: "transfer", Topic: "fs", Action: "noop"}, fx.token)
	if code != http.StatusConflict {
		t.Fatalf("dup deploy: %d", code)
	}
	// Unknown action 500s but does not create anything.
	code, _ = fx.call(t, "PUT", "/trigger", TriggerRequest{ID: "x", Topic: "fs", Action: "ghost"}, fx.token)
	if code == http.StatusOK {
		t.Fatal("ghost action accepted")
	}
	// List shows the trigger.
	code, body = fx.call(t, "GET", "/triggers", nil, fx.token)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if n := len(body["triggers"].([]any)); n != 1 {
		t.Fatalf("triggers = %d", n)
	}
	// Update batch size.
	code, body = fx.call(t, "POST", "/trigger/transfer", TriggerRequest{BatchSize: 99}, fx.token)
	if code != http.StatusOK || body["batch_size"].(float64) != 99 {
		t.Fatalf("update: %d %v", code, body)
	}
	// The trigger actually fires on matching events.
	if _, err := fx.fabric.Produce("", "fs", -1, []event.Event{
		event.New("", map[string]any{"value": map[string]any{"event_type": "created"}}),
		event.New("", map[string]any{"value": map[string]any{"event_type": "deleted"}}),
	}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	tr, err := fx.rt.Get("transfer")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := tr.Stats()
		if st.EventsDelivered == 1 && st.EventsFiltered == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := tr.Stats()
	if st.EventsDelivered != 1 || st.EventsFiltered != 1 {
		t.Fatalf("trigger stats = %+v", st)
	}
	// Delete.
	code, _ = fx.call(t, "DELETE", "/trigger/transfer", nil, fx.token)
	if code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	code, _ = fx.call(t, "GET", "/triggers", nil, fx.token)
	if n := len(getList(t, fx, "/triggers", "triggers")); n != 0 {
		t.Fatalf("triggers after delete = %d", n)
	}
	_ = code
}

func getList(t *testing.T, fx *fixture, path, key string) []any {
	t.Helper()
	_, body := fx.call(t, "GET", path, nil, fx.token)
	return body[key].([]any)
}

func TestTriggerRequiresTopicRead(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/private", nil, fx.token)
	fx.fabric.Auth.RegisterIdentity("bob@anl.gov", "globus")
	btok, _ := fx.fabric.Auth.Login("bob@anl.gov")
	code, _ := fx.call(t, "PUT", "/trigger", TriggerRequest{ID: "spy", Topic: "private", Action: "noop"}, btok.Value)
	if code != http.StatusForbidden {
		t.Fatalf("unauthorized trigger deploy: %d", code)
	}
}

func TestTriggerOwnershipEnforced(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/fs", nil, fx.token)
	fx.call(t, "PUT", "/trigger", TriggerRequest{ID: "t1", Topic: "fs", Action: "noop"}, fx.token)
	fx.fabric.Auth.RegisterIdentity("bob@anl.gov", "globus")
	btok, _ := fx.fabric.Auth.Login("bob@anl.gov")
	if code, _ := fx.call(t, "POST", "/trigger/t1", TriggerRequest{BatchSize: 1}, btok.Value); code != http.StatusForbidden {
		t.Fatalf("foreign update: %d", code)
	}
	if code, _ := fx.call(t, "DELETE", "/trigger/t1", nil, btok.Value); code != http.StatusForbidden {
		t.Fatalf("foreign delete: %d", code)
	}
	// Bob's list does not leak alice's trigger.
	_, body := fx.call(t, "GET", "/triggers", nil, btok.Value)
	if n := len(body["triggers"].([]any)); n != 0 {
		t.Fatalf("leaked triggers = %d", n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fx := newFixture(t)
	fx.fabric.Metrics.Counter("fabric.produced").Add(5)
	resp, err := http.Get(fx.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fabric.produced 5") {
		t.Fatalf("metrics output:\n%s", buf.String())
	}
}

func TestScopeEnforcement(t *testing.T) {
	fx := newFixture(t)
	// A token with only the consume scope cannot manage topics.
	narrow, err := fx.fabric.Auth.Login("alice@uchicago.edu", "octopus:consume")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := fx.call(t, "PUT", "/topic/x", nil, narrow.Value)
	if code != http.StatusForbidden {
		t.Fatalf("scope bypass: %d", code)
	}
}

func TestBadJSONBody(t *testing.T) {
	fx := newFixture(t)
	req, _ := http.NewRequest("PUT", fx.srv.URL+"/topic/x", strings.NewReader("{not json"))
	req.Header.Set("Authorization", "Bearer "+fx.token)
	req.ContentLength = 9
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}
	_ = cluster.TopicConfig{}
}

func TestStatusEndpoint(t *testing.T) {
	fx := newFixture(t)
	fx.call(t, "PUT", "/topic/health", nil, fx.token)
	resp, err := http.Get(fx.srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Brokers) != 2 {
		t.Fatalf("brokers = %+v", st.Brokers)
	}
	for _, b := range st.Brokers {
		if !b.Live || b.VCPUs != 2 {
			t.Fatalf("broker = %+v", b)
		}
	}
	if len(st.Topics) != 1 || st.Topics[0].Name != "health" {
		t.Fatalf("topics = %+v", st.Topics)
	}
	if st.Topics[0].UnderReplicated != 0 || st.Topics[0].Leaderless != 0 {
		t.Fatalf("healthy topic reported degraded: %+v", st.Topics[0])
	}
	// Kill a broker: status reflects under-replication.
	pm, _ := fx.fabric.Ctl.Partition("health", 0)
	if err := fx.fabric.StopBroker(pm.Leader); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(fx.srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 StatusResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if len(st2.Brokers) != 1 {
		t.Fatalf("live brokers after kill = %d", len(st2.Brokers))
	}
	if st2.Topics[0].UnderReplicated == 0 {
		t.Fatalf("under-replication not surfaced: %+v", st2.Topics[0])
	}
}
