// Package ows implements the Octopus Web Service (§IV-B): the RESTful
// control plane through which users provision, configure and share
// topics, acquire IAM-style fabric credentials, and manage triggers.
// Requests carry OAuth bearer tokens (internal/auth); operations are
// idempotent so retries cannot leave the system inconsistent (§IV-F).
//
// Routes (verbatim from the paper):
//
//	PUT  /topic/{topic}             register topic, grant creator RWD
//	GET  /topics                    topics the caller may describe
//	GET  /topic/{topic}             topic configuration
//	POST /topic/{topic}             set configuration (retention, ...)
//	POST /topic/{topic}/partitions  set partition count
//	POST /topic/{topic}/user        grant/revoke an identity's access
//	GET  /create_key                create IAM identity + access key
//	PUT  /trigger                   deploy a trigger
//	GET  /triggers                  describe deployed triggers
//	POST /trigger/{trigger_id}      update trigger configuration
//	DELETE /trigger/{trigger_id}    remove a trigger
//	GET  /metrics                   admin console snapshot
package ows

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/auth"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/trigger"
)

// Server is the web service. It implements http.Handler.
type Server struct {
	Fabric   *broker.Fabric
	Triggers *trigger.Runtime
	mux      *http.ServeMux
}

// NewServer wires the service over a fabric and trigger runtime.
func NewServer(f *broker.Fabric, tr *trigger.Runtime) *Server {
	s := &Server{Fabric: f, Triggers: tr, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /topic/{topic}", s.auth(auth.ScopeTopics, s.createTopic))
	s.mux.HandleFunc("GET /topics", s.auth(auth.ScopeTopics, s.listTopics))
	s.mux.HandleFunc("GET /topic/{topic}", s.auth(auth.ScopeTopics, s.getTopic))
	s.mux.HandleFunc("POST /topic/{topic}", s.auth(auth.ScopeTopics, s.setTopicConfig))
	s.mux.HandleFunc("POST /topic/{topic}/partitions", s.auth(auth.ScopeTopics, s.setPartitions))
	s.mux.HandleFunc("POST /topic/{topic}/user", s.auth(auth.ScopeTopics, s.setTopicUser))
	s.mux.HandleFunc("DELETE /topic/{topic}", s.auth(auth.ScopeTopics, s.deleteTopic))
	s.mux.HandleFunc("GET /create_key", s.auth(auth.ScopeTopics, s.createKey))
	s.mux.HandleFunc("PUT /trigger", s.auth(auth.ScopeTriggers, s.deployTrigger))
	s.mux.HandleFunc("GET /triggers", s.auth(auth.ScopeTriggers, s.listTriggers))
	s.mux.HandleFunc("POST /trigger/{id}", s.auth(auth.ScopeTriggers, s.updateTrigger))
	s.mux.HandleFunc("DELETE /trigger/{id}", s.auth(auth.ScopeTriggers, s.deleteTrigger))
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /status", s.status)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// statusFor maps domain errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, auth.ErrDenied), errors.Is(err, auth.ErrScope):
		return http.StatusForbidden
	case errors.Is(err, auth.ErrInvalidToken), errors.Is(err, auth.ErrExpiredToken), errors.Is(err, auth.ErrBadCredentials):
		return http.StatusUnauthorized
	case errors.Is(err, cluster.ErrNoTopic), errors.Is(err, trigger.ErrNoTrigger):
		return http.StatusNotFound
	case errors.Is(err, cluster.ErrTopicExists), errors.Is(err, trigger.ErrTriggerExists):
		return http.StatusConflict
	case errors.Is(err, cluster.ErrBadConfig), errors.Is(err, cluster.ErrShrinkPartitions):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

type handler func(w http.ResponseWriter, r *http.Request, tok *auth.Token)

// auth wraps a handler with bearer-token validation and a scope check.
func (s *Server) auth(scope string, h handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if raw == "" || raw == r.Header.Get("Authorization") {
			writeErr(w, http.StatusUnauthorized, errors.New("ows: missing bearer token"))
			return
		}
		tok, err := s.Fabric.Auth.Require(raw, scope)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		h(w, r, tok)
	}
}

// TopicResponse is the JSON view of a topic.
type TopicResponse struct {
	Name              string   `json:"name"`
	Partitions        int      `json:"partitions"`
	ReplicationFactor int      `json:"replication_factor"`
	RetentionHours    float64  `json:"retention_hours"`
	Compact           bool     `json:"compact"`
	Owner             string   `json:"owner"`
	Permissions       []string `json:"permissions"`
}

func topicResponse(meta *cluster.TopicMeta, perms []auth.Permission) TopicResponse {
	ps := make([]string, len(perms))
	for i, p := range perms {
		ps[i] = string(p)
	}
	return TopicResponse{
		Name:              meta.Name,
		Partitions:        meta.Config.Partitions,
		ReplicationFactor: meta.Config.ReplicationFactor,
		RetentionHours:    meta.Config.Retention.Hours(),
		Compact:           meta.Config.Compact,
		Owner:             meta.Owner,
		Permissions:       ps,
	}
}

// TopicConfigRequest is the body of PUT/POST /topic/{topic}.
type TopicConfigRequest struct {
	Partitions        int     `json:"partitions,omitempty"`
	ReplicationFactor int     `json:"replication_factor,omitempty"`
	RetentionHours    float64 `json:"retention_hours,omitempty"`
	Compact           bool    `json:"compact,omitempty"`
}

func (req *TopicConfigRequest) toConfig() cluster.TopicConfig {
	return cluster.TopicConfig{
		Partitions:        req.Partitions,
		ReplicationFactor: req.ReplicationFactor,
		Retention:         time.Duration(req.RetentionHours * float64(time.Hour)),
		Compact:           req.Compact,
	}
}

func (s *Server) createTopic(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	var req TopicConfigRequest
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("ows: bad body: %w", err))
			return
		}
	}
	meta, err := s.Fabric.CreateTopic(name, tok.Identity.ID, req.toConfig())
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, topicResponse(meta, s.Fabric.ACL.Permissions(name, tok.Identity.ID)))
}

func (s *Server) listTopics(w http.ResponseWriter, _ *http.Request, tok *auth.Token) {
	topics := s.Fabric.ACL.TopicsFor(tok.Identity.ID)
	if topics == nil {
		topics = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"topics": topics})
}

func (s *Server) getTopic(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	if err := s.Fabric.ACL.Check(name, tok.Identity.ID, auth.PermDescribe); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	meta, err := s.Fabric.Ctl.Topic(name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, topicResponse(meta, s.Fabric.ACL.Permissions(name, tok.Identity.ID)))
}

func (s *Server) setTopicConfig(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	if err := s.requireOwner(name, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var req TopicConfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("ows: bad body: %w", err))
		return
	}
	meta, err := s.Fabric.Ctl.SetConfig(name, req.toConfig())
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, topicResponse(meta, s.Fabric.ACL.Permissions(name, tok.Identity.ID)))
}

// PartitionsRequest is the body of POST /topic/{topic}/partitions.
type PartitionsRequest struct {
	Partitions int `json:"partitions"`
}

func (s *Server) setPartitions(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	if err := s.requireOwner(name, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var req PartitionsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("ows: bad body: %w", err))
		return
	}
	meta, err := s.Fabric.Ctl.SetPartitions(name, req.Partitions)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, topicResponse(meta, s.Fabric.ACL.Permissions(name, tok.Identity.ID)))
}

// UserGrantRequest is the body of POST /topic/{topic}/user: grant or
// revoke (§IV-B "Grant (or revoke) an identity access to the topic").
type UserGrantRequest struct {
	Identity    string   `json:"identity"`
	Permissions []string `json:"permissions,omitempty"`
	Revoke      bool     `json:"revoke,omitempty"`
}

func (s *Server) setTopicUser(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	if err := s.requireOwner(name, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var req UserGrantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Identity == "" {
		writeErr(w, http.StatusBadRequest, errors.New("ows: body needs an identity"))
		return
	}
	perms := make([]auth.Permission, 0, len(req.Permissions))
	for _, p := range req.Permissions {
		perms = append(perms, auth.Permission(p))
	}
	var err error
	if req.Revoke {
		err = s.Fabric.ACL.Revoke(name, req.Identity, perms...)
	} else {
		err = s.Fabric.ACL.Grant(name, req.Identity, perms...)
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"topic":       name,
		"identity":    req.Identity,
		"permissions": s.Fabric.ACL.Permissions(name, req.Identity),
	})
}

func (s *Server) deleteTopic(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	name := r.PathValue("topic")
	if err := s.requireOwner(name, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if err := s.Fabric.Ctl.DeleteTopic(name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.Fabric.ACL.RevokeAllForTopic(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// requireOwner restricts mutating topic operations to the owner.
func (s *Server) requireOwner(topic string, tok *auth.Token) error {
	meta, err := s.Fabric.Ctl.Topic(topic)
	if err != nil {
		return err
	}
	if meta.Owner != tok.Identity.ID {
		return fmt.Errorf("%w: %s is not the owner of %s", auth.ErrDenied, tok.Identity.Username, topic)
	}
	return nil
}

// KeyResponse is the body of GET /create_key.
type KeyResponse struct {
	AccessKeyID string `json:"access_key_id"`
	Secret      string `json:"secret_access_key"`
	Identity    string `json:"identity"`
	Username    string `json:"username"`
}

func (s *Server) createKey(w http.ResponseWriter, _ *http.Request, tok *auth.Token) {
	key, err := s.Fabric.Auth.CreateKey(tok.Identity.ID)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, KeyResponse{
		AccessKeyID: key.AccessKeyID,
		Secret:      key.Secret,
		Identity:    tok.Identity.ID,
		Username:    tok.Identity.Username,
	})
}

// TriggerRequest is the body of PUT /trigger and POST /trigger/{id}.
type TriggerRequest struct {
	ID             string `json:"id"`
	Topic          string `json:"topic"`
	Action         string `json:"action"`
	Pattern        string `json:"pattern,omitempty"`
	BatchSize      int    `json:"batch_size,omitempty"`
	BatchWindowMs  int    `json:"batch_window_ms,omitempty"`
	MaxConcurrency int    `json:"max_concurrency,omitempty"`
}

// TriggerResponse describes a deployed trigger.
type TriggerResponse struct {
	ID             string `json:"id"`
	Topic          string `json:"topic"`
	Group          string `json:"group"`
	Pattern        string `json:"pattern,omitempty"`
	BatchSize      int    `json:"batch_size"`
	MaxConcurrency int    `json:"max_concurrency"`
	Concurrency    int    `json:"concurrency"`
	Invocations    int64  `json:"invocations"`
	Delivered      int64  `json:"events_delivered"`
	Filtered       int64  `json:"events_filtered"`
	Backlog        int64  `json:"backlog"`
}

func triggerResponse(t *trigger.Trigger) TriggerResponse {
	cfg := t.Config()
	st := t.Stats()
	return TriggerResponse{
		ID:             cfg.ID,
		Topic:          cfg.Topic,
		Group:          cfg.Group,
		Pattern:        cfg.PatternJSON,
		BatchSize:      cfg.BatchSize,
		MaxConcurrency: cfg.MaxConcurrency,
		Concurrency:    st.Concurrency,
		Invocations:    st.Invocations,
		Delivered:      st.EventsDelivered,
		Filtered:       st.EventsFiltered,
		Backlog:        st.Backlog,
	}
}

func (s *Server) deployTrigger(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	var req TriggerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("ows: bad body: %w", err))
		return
	}
	// The trigger consumes the topic on the user's behalf, so the user
	// must hold READ on it.
	if err := s.Fabric.ACL.Check(req.Topic, tok.Identity.ID, auth.PermRead); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	cfg := trigger.Config{
		ID:             req.ID,
		Topic:          req.Topic,
		PatternJSON:    req.Pattern,
		BatchSize:      req.BatchSize,
		BatchWindow:    time.Duration(req.BatchWindowMs) * time.Millisecond,
		MaxConcurrency: req.MaxConcurrency,
		OnBehalfOf:     tok.Identity.ID,
	}
	t, err := s.Triggers.Deploy(cfg, req.Action)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, triggerResponse(t))
}

func (s *Server) listTriggers(w http.ResponseWriter, _ *http.Request, tok *auth.Token) {
	var out []TriggerResponse
	for _, id := range s.Triggers.List() {
		t, err := s.Triggers.Get(id)
		if err != nil {
			continue
		}
		if t.Config().OnBehalfOf != tok.Identity.ID {
			continue
		}
		out = append(out, triggerResponse(t))
	}
	if out == nil {
		out = []TriggerResponse{}
	}
	writeJSON(w, http.StatusOK, map[string][]TriggerResponse{"triggers": out})
}

func (s *Server) requireTriggerOwner(id string, tok *auth.Token) (*trigger.Trigger, error) {
	t, err := s.Triggers.Get(id)
	if err != nil {
		return nil, err
	}
	if t.Config().OnBehalfOf != tok.Identity.ID {
		return nil, fmt.Errorf("%w: trigger %s", auth.ErrDenied, id)
	}
	return t, nil
}

func (s *Server) updateTrigger(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	id := r.PathValue("id")
	if _, err := s.requireTriggerOwner(id, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var req TriggerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("ows: bad body: %w", err))
		return
	}
	t, err := s.Triggers.Update(id, func(c *trigger.Config) {
		if req.BatchSize > 0 {
			c.BatchSize = req.BatchSize
		}
		if req.BatchWindowMs > 0 {
			c.BatchWindow = time.Duration(req.BatchWindowMs) * time.Millisecond
		}
		if req.MaxConcurrency > 0 {
			c.MaxConcurrency = req.MaxConcurrency
		}
		if req.Pattern != "" {
			c.PatternJSON = req.Pattern
		}
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, triggerResponse(t))
}

func (s *Server) deleteTrigger(w http.ResponseWriter, r *http.Request, tok *auth.Token) {
	id := r.PathValue("id")
	if _, err := s.requireTriggerOwner(id, tok); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if err := s.Triggers.Remove(id); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// metrics is the unauthenticated admin console endpoint (the Grafana /
// Kafka UI stand-in of Figure 2).
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, line := range s.Fabric.Metrics.Snapshot() {
		fmt.Fprintln(w, line)
	}
}

// StatusResponse is the admin cluster view: live brokers and per-topic
// partition health (leader, ISR size), the "system's live status" the
// Kafka UI console of Figure 2 shows.
type StatusResponse struct {
	Brokers []BrokerStatus `json:"brokers"`
	Topics  []TopicStatus  `json:"topics"`
}

// BrokerStatus describes one broker node.
type BrokerStatus struct {
	ID    int  `json:"id"`
	VCPUs int  `json:"vcpus"`
	MemGB int  `json:"mem_gb"`
	Live  bool `json:"live"`
}

// TopicStatus summarizes a topic's partition health.
type TopicStatus struct {
	Name             string         `json:"name"`
	Partitions       int            `json:"partitions"`
	UnderReplicated  int            `json:"under_replicated"`
	Leaderless       int            `json:"leaderless"`
	PartitionLeaders map[string]int `json:"partition_leaders"`
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	var resp StatusResponse
	for _, id := range s.Fabric.Ctl.LiveBrokers() {
		info, err := s.Fabric.Ctl.BrokerInfo(id)
		if err != nil {
			continue
		}
		live := true
		if n, ok := s.Fabric.Node(id); ok {
			live = !n.Down()
		}
		resp.Brokers = append(resp.Brokers, BrokerStatus{ID: id, VCPUs: info.VCPUs, MemGB: info.MemGB, Live: live})
	}
	for _, name := range s.Fabric.Ctl.Topics() {
		meta, err := s.Fabric.Ctl.Topic(name)
		if err != nil {
			continue
		}
		ts := TopicStatus{
			Name:             name,
			Partitions:       meta.Config.Partitions,
			PartitionLeaders: make(map[string]int, len(meta.Partitions)),
		}
		for _, pm := range meta.Partitions {
			ts.PartitionLeaders[fmt.Sprintf("%d", pm.ID)] = pm.Leader
			if pm.Leader < 0 {
				ts.Leaderless++
			}
			if len(pm.ISR) < len(pm.Replicas) {
				ts.UnderReplicated++
			}
		}
		resp.Topics = append(resp.Topics, ts)
	}
	writeJSON(w, http.StatusOK, resp)
}
